package road_test

import (
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented enforces the documentation contract of
// the public package: every exported type, function, method, and
// const/var group in package road carries a doc comment. It is the
// test-shaped half of the CI docs-lint step (gofmt + staticcheck
// ST-class checks cover formatting and comment form; this covers
// presence, which staticcheck does not).
func TestExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["road"]
	if !ok {
		t.Fatalf("package road not found; parsed %v", pkgs)
	}
	d := doc.New(pkg, "road", 0)

	var missing []string
	requireDoc := func(kind, name, docText string) {
		if !ast.IsExported(name) {
			return
		}
		if strings.TrimSpace(docText) == "" {
			missing = append(missing, kind+" "+name)
		}
	}
	for _, f := range d.Funcs {
		requireDoc("func", f.Name, f.Doc)
	}
	for _, typ := range d.Types {
		requireDoc("type", typ.Name, typ.Doc)
		for _, f := range typ.Funcs {
			requireDoc("func", f.Name, f.Doc)
		}
		for _, m := range typ.Methods {
			requireDoc("method", typ.Name+"."+m.Name, m.Doc)
		}
		for _, grp := range append(append([]*doc.Value(nil), typ.Consts...), typ.Vars...) {
			for _, name := range grp.Names {
				requireDoc("value", name, grp.Doc+declDoc(grp.Decl, name))
			}
		}
	}
	for _, grp := range append(append([]*doc.Value(nil), d.Consts...), d.Vars...) {
		for _, name := range grp.Names {
			requireDoc("value", name, grp.Doc+declDoc(grp.Decl, name))
		}
	}
	if len(missing) > 0 {
		t.Fatalf("exported symbols without doc comments:\n  %s", strings.Join(missing, "\n  "))
	}
}

// declDoc returns the per-spec doc or line comment of one name inside a
// grouped const/var declaration, so a documented group member counts
// even when the group itself has no doc block.
func declDoc(decl *ast.GenDecl, name string) string {
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, n := range vs.Names {
			if n.Name == name {
				var out string
				if vs.Doc != nil {
					out += vs.Doc.Text()
				}
				if vs.Comment != nil {
					out += vs.Comment.Text()
				}
				return out
			}
		}
	}
	return ""
}
