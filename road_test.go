package road

import (
	"math"
	"testing"

	"road/internal/dataset"
)

// buildChain builds a 6-node chain network 0-1-2-3-4-5 with unit roads.
func buildChain(t *testing.T) (*NetworkBuilder, []NodeID, []EdgeID) {
	t.Helper()
	b := NewNetworkBuilder()
	var nodes []NodeID
	for i := 0; i < 6; i++ {
		nodes = append(nodes, b.AddNode(float64(i), 0))
	}
	var edges []EdgeID
	for i := 0; i < 5; i++ {
		e, err := b.AddRoad(nodes[i], nodes[i+1], 1)
		if err != nil {
			t.Fatal(err)
		}
		edges = append(edges, e)
	}
	return b, nodes, edges
}

func TestOpenRejectsTinyNetwork(t *testing.T) {
	b := NewNetworkBuilder()
	b.AddNode(0, 0)
	if _, err := Open(b, Options{}); err == nil {
		t.Fatal("1-node network accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	b, nodes, edges := buildChain(t)
	db, err := Open(b, Options{Fanout: 2, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Object in the middle of road 2-3 (offset 0.5 from node 2).
	o, err := db.AddObject(edges[2], 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ := testKNN(db, nodes[0], 1, AnyAttr)
	if len(hits) != 1 || hits[0].Object.ID != o.ID {
		t.Fatalf("KNN = %v", hits)
	}
	if math.Abs(hits[0].Dist-2.5) > 1e-12 {
		t.Fatalf("dist = %g, want 2.5", hits[0].Dist)
	}
	within, _ := testWithin(db, nodes[0], 2.0, AnyAttr)
	if len(within) != 0 {
		t.Fatal("object at 2.5 returned for radius 2.0")
	}
	within, _ = testWithin(db, nodes[0], 3.0, AnyAttr)
	if len(within) != 1 {
		t.Fatal("object at 2.5 missing for radius 3.0")
	}
}

func TestAttributeQueries(t *testing.T) {
	b, nodes, edges := buildChain(t)
	db, err := Open(b, Options{Fanout: 2, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	db.AddObject(edges[0], 0.5, 1) // nearer, wrong type
	want, _ := db.AddObject(edges[3], 0.5, 2)
	hits, _ := testKNN(db, nodes[0], 1, 2)
	if len(hits) != 1 || hits[0].Object.ID != want.ID {
		t.Fatalf("typed KNN = %v", hits)
	}
}

func TestRoadMaintenanceFlow(t *testing.T) {
	b, nodes, edges := buildChain(t)
	db, err := Open(b, Options{Fanout: 2, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := db.AddObject(edges[4], 0.5, 0) // between nodes 4 and 5
	// Traffic jam on road 0-1: distance 1 -> 10.
	if err := db.SetRoadDistance(edges[0], 10); err != nil {
		t.Fatal(err)
	}
	hits, _ := testKNN(db, nodes[0], 1, AnyAttr)
	if math.Abs(hits[0].Dist-13.5) > 1e-12 {
		t.Fatalf("dist after jam = %g, want 13.5", hits[0].Dist)
	}
	// Build a bypass road 0-2 of distance 1.
	if _, err := db.AddRoad(nodes[0], nodes[2], 1); err != nil {
		t.Fatal(err)
	}
	hits, _ = testKNN(db, nodes[0], 1, AnyAttr)
	if math.Abs(hits[0].Dist-3.5) > 1e-12 {
		t.Fatalf("dist via bypass = %g, want 3.5", hits[0].Dist)
	}
	// Close the road the object lives on: the object disappears.
	if err := db.CloseRoad(edges[4]); err != nil {
		t.Fatal(err)
	}
	hits, _ = testKNN(db, nodes[0], 1, AnyAttr)
	if len(hits) != 0 {
		t.Fatalf("object survived CloseRoad: %v", hits)
	}
	_ = o
	// Reopen and the road is usable again (object stays gone).
	if err := db.ReopenRoad(edges[4]); err != nil {
		t.Fatal(err)
	}
	o2, err := db.AddObject(edges[4], 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ = testKNN(db, nodes[5], 1, AnyAttr)
	if len(hits) != 1 || hits[0].Object.ID != o2.ID {
		t.Fatalf("KNN after reopen = %v", hits)
	}
}

func TestObjectLifecycle(t *testing.T) {
	b, nodes, edges := buildChain(t)
	db, err := Open(b, Options{Fanout: 2, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := db.AddObject(edges[1], 0.5, 1)
	if err := db.SetObjectAttr(o.ID, 9); err != nil {
		t.Fatal(err)
	}
	hits, _ := testKNN(db, nodes[0], 1, 9)
	if len(hits) != 1 {
		t.Fatal("attr change not visible")
	}
	if err := db.RemoveObject(o.ID); err != nil {
		t.Fatal(err)
	}
	hits, _ = testKNN(db, nodes[0], 1, AnyAttr)
	if len(hits) != 0 {
		t.Fatal("object survived removal")
	}
	if err := db.RemoveObject(o.ID); err == nil {
		t.Fatal("double removal succeeded")
	}
}

func TestOpenWithObjects(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 300, Edges: 350, Seed: 1})
	objects := dataset.PlaceUniform(g, 20, 2)
	b := FromGraph(g)
	db, err := OpenWithObjects(b, objects, Options{Fanout: 4, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	hits, stats := testKNN(db, 0, 5, AnyAttr)
	if len(hits) != 5 {
		t.Fatalf("KNN returned %d", len(hits))
	}
	if stats.NodesPopped == 0 {
		t.Fatal("stats empty")
	}
	if db.IndexSizeBytes() <= 0 {
		t.Fatal("IndexSizeBytes = 0")
	}
}

func TestOpenWithObjectsRejectsForeignSet(t *testing.T) {
	g1 := dataset.MustGenerate(dataset.Spec{Name: "a", Nodes: 100, Edges: 120, Seed: 1})
	g2 := dataset.MustGenerate(dataset.Spec{Name: "b", Nodes: 100, Edges: 120, Seed: 2})
	objects := dataset.PlaceUniform(g2, 5, 3)
	if _, err := OpenWithObjects(FromGraph(g1), objects, Options{}); err == nil {
		t.Fatal("foreign object set accepted")
	}
}

func TestPathToFacade(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "pt", Nodes: 300, Edges: 350, Seed: 5})
	objects := dataset.PlaceUniform(g, 10, 6)
	db, err := OpenWithObjects(FromGraph(g), objects, Options{StorePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	from := dataset.RandomNodes(g, 1, 7)[0]
	hits, _ := testKNN(db, from, 1, AnyAttr)
	if len(hits) == 0 {
		t.Fatal("no result")
	}
	path, dist, err := testPathTo(db, from, hits[0].Object.ID)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist-hits[0].Dist) > 1e-9*math.Max(1, dist) {
		t.Fatalf("PathTo dist %g != KNN dist %g", dist, hits[0].Dist)
	}
	if len(path) == 0 || path[0] != from {
		t.Fatalf("path = %v", path)
	}
	// Without StorePaths the facade reports a clean error.
	gc := g.Clone()
	db2, err := OpenWithObjects(FromGraph(gc), objects.Clone(gc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := testPathTo(db2, from, hits[0].Object.ID); err == nil {
		t.Fatal("PathTo without StorePaths accepted")
	}
}

func TestSessionFacade(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "sf", Nodes: 300, Edges: 350, Seed: 8})
	objects := dataset.PlaceUniform(g, 15, 9)
	db, err := OpenWithObjects(FromGraph(g), objects, Options{})
	if err != nil {
		t.Fatal(err)
	}
	from := dataset.RandomNodes(g, 1, 10)[0]
	want, _ := testKNN(db, from, 3, AnyAttr)
	s := db.NewSession()
	got, _ := testKNN(s, from, 3, AnyAttr)
	if len(got) != len(want) {
		t.Fatalf("session KNN %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Object.ID != want[i].Object.ID {
			t.Fatalf("session result %d differs", i)
		}
	}
	within, _ := testWithin(s, from, g.EstimateDiameter()*0.1, AnyAttr)
	wantW, _ := testWithin(db, from, g.EstimateDiameter()*0.1, AnyAttr)
	if len(within) != len(wantW) {
		t.Fatal("session Within mismatch")
	}
}

func TestDisableIOSim(t *testing.T) {
	b, nodes, edges := buildChain(t)
	db, err := Open(b, Options{Fanout: 2, Levels: 2, DisableIOSim: true})
	if err != nil {
		t.Fatal(err)
	}
	db.AddObject(edges[2], 0.5, 0)
	_, stats := testKNN(db, nodes[0], 1, AnyAttr)
	if stats.IO.Reads != 0 {
		t.Fatal("I/O recorded with simulation disabled")
	}
}
