package road

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// This file is the public-API half of the CSR differential harness (the
// exact, traversal-level half lives in internal/core/csr_test.go). It
// storms seeded query+mutation interleavings through every deployment
// shape at once — monolithic DB, in-process ShardedDB, and a two-host
// RemoteDB fleet over real TCP — holding the retained page-store
// reference implementation as ground truth. The CSR session on the same
// index must agree rank-for-rank with bit-identical distances; the
// sharded and remote shapes must agree as distance multisets (their
// border-table sums associate differently). CI runs this storm under
// -race: the CSR rebuild path (generation check + slab swap inside
// WarmAfterMutation) and the concurrent fleet transport are exactly
// where a data race would hide.

// assertExactResults demands rank-for-rank identity including
// bit-identical distances — the CSR-vs-reference contract on a shared
// index (cf. assertSameResults' tie-tolerant multiset comparison, the
// right bar for cross-shape legs).
func assertExactResults(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Object.ID != got[i].Object.ID || want[i].Dist != got[i].Dist {
			t.Fatalf("%s: rank %d: reference (obj %d, %v) vs CSR (obj %d, %v)",
				label, i, want[i].Object.ID, want[i].Dist, got[i].Object.ID, got[i].Dist)
		}
	}
}

func assertSameTypedError(t *testing.T, label string, want, got error) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: error %v vs %v", label, want, got)
	}
	if want == nil {
		return
	}
	for _, typed := range []error{
		ErrCanceled, ErrBudgetExhausted, ErrInvalidRequest, ErrNoSuchNode,
		ErrNoSuchObject, ErrAttrMismatch, ErrUnreachable, ErrPathsNotStored,
	} {
		if errors.Is(want, typed) != errors.Is(got, typed) {
			t.Fatalf("%s: typed mismatch for %v: %v vs %v", label, typed, want, got)
		}
	}
}

// TestDifferentialCSRStorm interleaves randomized mutation bursts with
// differential queries across four legs sharing one logical road
// network: reference session (ground truth), CSR session (must be
// exact), ShardedDB and a two-host RemoteDB fleet (must match as
// multisets, including typed errors across the wire).
func TestDifferentialCSRStorm(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{13, 31} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const nodes, objects, shards = 340, 55, 4
			db, sdb := shardedPair(t, seed, nodes, objects, shards)
			_, rdb, _ := remoteTriple(t, seed, nodes, objects, shards)

			csr := db.NewSession()
			ref := db.NewSession()
			ref.s.UseReferencePath(true)

			rng := rand.New(rand.NewSource(seed * 7))
			legs := []struct {
				name string
				s    Store
			}{{"sharded", sdb}, {"remote", rdb}}

			check := func(phase string) {
				numObjects := db.NumObjects() + 8 // reach past live IDs to hit deleted ones too
				for i := 0; i < 10; i++ {
					n := NodeID(rng.Intn(db.NumNodes()))
					k := 1 + rng.Intn(6)
					radius := 0.5 + 3*rng.Float64()
					label := fmt.Sprintf("%s seed%d q%d node=%d", phase, seed, i, n)

					wantK, _, errK := ref.KNNContext(ctx, NewKNN(n, k))
					gotK, _, errC := csr.KNNContext(ctx, NewKNN(n, k))
					assertSameTypedError(t, label+" knn csr", errK, errC)
					assertExactResults(t, label+" knn csr", wantK, gotK)
					wantW, _, errW := ref.WithinContext(ctx, NewWithin(n, radius))
					gotW, _, errC2 := csr.WithinContext(ctx, NewWithin(n, radius))
					assertSameTypedError(t, label+" within csr", errW, errC2)
					assertExactResults(t, label+" within csr", wantW, gotW)

					for _, leg := range legs {
						got, _, err := leg.s.KNNContext(ctx, NewKNN(n, k))
						if errK != nil || err != nil {
							t.Fatalf("%s knn %s: %v / %v", label, leg.name, errK, err)
						}
						assertSameResults(t, label+" knn "+leg.name, wantK, got)
						got, _, err = leg.s.WithinContext(ctx, NewWithin(n, radius))
						if errW != nil || err != nil {
							t.Fatalf("%s within %s: %v / %v", label, leg.name, errW, err)
						}
						assertSameResults(t, label+" within "+leg.name, wantW, got)
					}

					// Paths: the CSR leg must match the reference hop for hop;
					// cross-shape legs recompute per shard, so equal shortest
					// distances are the contract there. Dead object IDs are in
					// range, checking ErrNoSuchObject crosses the wire intact.
					obj := ObjectID(rng.Intn(numObjects))
					wantP, _, wantErr := ref.PathToContext(ctx, NewPath(n, obj))
					gotP, _, gotErr := csr.PathToContext(ctx, NewPath(n, obj))
					assertSameTypedError(t, label+" path csr", wantErr, gotErr)
					if wantErr == nil {
						if wantP.Dist != gotP.Dist || len(wantP.Nodes) != len(gotP.Nodes) {
							t.Fatalf("%s path csr: (%v, %d hops) vs (%v, %d hops)",
								label, gotP.Dist, len(gotP.Nodes), wantP.Dist, len(wantP.Nodes))
						}
						for j := range wantP.Nodes {
							if wantP.Nodes[j] != gotP.Nodes[j] {
								t.Fatalf("%s path csr: hop %d: %d vs %d", label, j, gotP.Nodes[j], wantP.Nodes[j])
							}
						}
					}
					for _, leg := range legs {
						legP, _, legErr := leg.s.PathToContext(ctx, NewPath(n, obj))
						assertSameTypedError(t, label+" path "+leg.name, wantErr, legErr)
						if wantErr != nil {
							continue
						}
						if math.Abs(wantP.Dist-legP.Dist) > 1e-9*math.Max(1, wantP.Dist) {
							t.Fatalf("%s path %s: dist %g, want %g", label, leg.name, legP.Dist, wantP.Dist)
						}
					}

					// Budget exhaustion must truncate identically on both
					// in-process paths (typed error + valid prefix).
					lim := NewKNN(n, 8, WithBudget(1+rng.Intn(40)))
					wantL, _, errL := ref.KNNContext(ctx, lim)
					gotL, _, errLC := csr.KNNContext(ctx, lim)
					assertSameTypedError(t, label+" knnlim csr", errL, errLC)
					assertExactResults(t, label+" knnlim csr", wantL, gotL)
				}
			}

			// The same mutation stream through the Store interface of all
			// three deployment shapes; sessions observe each burst after the
			// serving-layer WarmAfterMutation fence.
			mutate := func(label string, op func(s Store) error) {
				errs := []error{op(db), op(sdb), op(rdb)}
				for i := 1; i < len(errs); i++ {
					if (errs[0] == nil) != (errs[i] == nil) {
						t.Fatalf("%s: mutation divergence: %v vs %v", label, errs[0], errs[i])
					}
				}
			}

			check("initial")
			for round := 0; round < 4; round++ {
				for m := 0; m < 6; m++ {
					e := EdgeID(rng.Intn(db.NumRoads()))
					switch rng.Intn(5) {
					case 0:
						w := 0.2 + 3*rng.Float64()
						mutate("set-distance", func(s Store) error { return s.SetRoadDistance(e, w) })
					case 1:
						mutate("close", func(s Store) error { return s.CloseRoad(e) })
					case 2:
						mutate("reopen", func(s Store) error { return s.ReopenRoad(e) })
					case 3:
						off := rng.Float64() * 0.1
						attr := int32(rng.Intn(3))
						mutate("insert", func(s Store) error {
							_, err := s.AddObject(e, off, attr)
							return err
						})
					case 4:
						id := ObjectID(rng.Intn(objects + round*3))
						mutate("delete", func(s Store) error { return s.RemoveObject(id) })
					}
				}
				db.WarmAfterMutation()
				sdb.WarmAfterMutation()
				rdb.WarmAfterMutation()
				check(fmt.Sprintf("round%d", round))
			}
		})
	}
}
