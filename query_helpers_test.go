package road

import "context"

// Test shorthands matching the shape of the removed v0 wrappers, so the
// assertions below stay focused on search semantics rather than request
// plumbing. They deliberately drop the error like v0 did; tests that
// care about errors call the Context methods directly.

func testKNN(q Querier, from NodeID, k int, attr int32) ([]Result, Stats) {
	res, stats, _ := q.KNNContext(context.Background(), NewKNN(from, k, WithAttr(attr)))
	return res, stats
}

func testWithin(q Querier, from NodeID, radius float64, attr int32) ([]Result, Stats) {
	res, stats, _ := q.WithinContext(context.Background(), NewWithin(from, radius, WithAttr(attr)))
	return res, stats
}

func testPathTo(q Querier, from NodeID, obj ObjectID) ([]NodeID, float64, error) {
	p, _, err := q.PathToContext(context.Background(), NewPath(from, obj))
	return p.Nodes, p.Dist, err
}
