package road

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"road/internal/dataset"
)

// shardedPair builds a DB and a ShardedDB over identical random networks
// and object sets (independent copies — the indexes adopt their graphs).
func shardedPair(t *testing.T, seed int64, nodes, objects, shards int) (*DB, *ShardedDB) {
	t.Helper()
	g := dataset.MustGenerate(dataset.Spec{Name: "pair", Nodes: nodes, Edges: nodes + nodes/3, Seed: seed})
	set := dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3)
	g2 := g.Clone()
	set2 := set.Clone(g2)

	db, err := OpenWithObjects(FromGraph(g), set, Options{Seed: seed, StorePaths: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sdb, err := OpenShardedWithObjects(FromGraph(g2), set2, Options{Seed: seed}, shards)
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	return db, sdb
}

// assertSameResults compares result lists as distance multisets with an
// FP tolerance (shortcut and border-table sums associate differently),
// allowing arbitrary tie order.
func assertSameResults(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	const eps = 1e-9
	for i := range want {
		if math.Abs(want[i].Dist-got[i].Dist) > eps*math.Max(1, want[i].Dist) {
			t.Fatalf("%s: result %d dist %g, want %g", label, i, got[i].Dist, want[i].Dist)
		}
		// IDs must match except inside exact-distance tie groups.
		if want[i].Object.ID != got[i].Object.ID {
			tie := false
			for j := range want {
				if want[j].Object.ID == got[i].Object.ID &&
					math.Abs(want[j].Dist-want[i].Dist) <= eps*math.Max(1, want[i].Dist) {
					tie = true
				}
			}
			if !tie {
				t.Fatalf("%s: result %d is object %d, want %d", label, i, got[i].Object.ID, want[i].Object.ID)
			}
		}
	}
}

// TestShardedEquivalence is the randomized sharded-vs-monolithic
// acceptance test, written ONCE against the road.Store interface: both
// deployment shapes are driven through identical Store calls — queries
// via the v1 context API, maintenance via the shared mutation surface —
// and must agree across shard boundaries, before and after maintenance.
func TestShardedEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 17} {
		db, sdb := shardedPair(t, seed, 320, 60, 4)
		// The interface IS the suite's surface: mono is the reference
		// implementation, test the other one against it.
		var mono, other Store = db, sdb
		rng := rand.New(rand.NewSource(seed))

		// Query nodes: borders first (cross-shard by construction), then a
		// random sample.
		var qnodes []NodeID
		for i := 0; i < sdb.NumShards(); i++ {
			qnodes = append(qnodes, sdb.Router().Shard(i).Borders()...)
			if len(qnodes) > 30 {
				break
			}
		}
		for i := 0; i < 25; i++ {
			qnodes = append(qnodes, NodeID(rng.Intn(other.NumNodes())))
		}

		check := func(phase string) {
			for _, n := range qnodes {
				for _, k := range []int{1, 4} {
					want, _, errA := mono.KNNContext(ctx, NewKNN(n, k))
					got, _, errB := other.KNNContext(ctx, NewKNN(n, k))
					if errA != nil || errB != nil {
						t.Fatalf("%s knn(%d,%d): %v / %v", phase, n, k, errA, errB)
					}
					assertSameResults(t, phase+" knn", want, got)
				}
				want, _, errA := mono.WithinContext(ctx, NewWithin(n, 3.5))
				got, _, errB := other.WithinContext(ctx, NewWithin(n, 3.5))
				if errA != nil || errB != nil {
					t.Fatalf("%s within(%d): %v / %v", phase, n, errA, errB)
				}
				assertSameResults(t, phase+" within", want, got)
			}
			// PathTo: distances must agree (routes may differ between equal
			// shortest paths).
			for i := 0; i < 30; i++ {
				n := qnodes[rng.Intn(len(qnodes))]
				obj := ObjectID(rng.Intn(60))
				wantP, _, wantErr := mono.PathToContext(ctx, NewPath(n, obj))
				gotP, _, gotErr := other.PathToContext(ctx, NewPath(n, obj))
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s path(%d,%d): err %v vs %v", phase, n, obj, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if math.Abs(wantP.Dist-gotP.Dist) > 1e-9*math.Max(1, wantP.Dist) {
					t.Fatalf("%s path(%d,%d): dist %g, want %g", phase, n, obj, gotP.Dist, wantP.Dist)
				}
				if len(wantP.Nodes) == 0 || len(gotP.Nodes) == 0 {
					t.Fatalf("%s path(%d,%d): empty route", phase, n, obj)
				}
				if gotP.Nodes[0] != n {
					t.Fatalf("%s path(%d,%d): route starts at %d", phase, n, obj, gotP.Nodes[0])
				}
			}
			// Batched equivalence: the same queries through Store.Query
			// must match the single-shot answers.
			reqs := make([]Request, 0, len(qnodes))
			for _, n := range qnodes {
				k := NewKNN(n, 4)
				reqs = append(reqs, Request{KNN: &k})
			}
			ansA := mono.Query(ctx, reqs)
			ansB := other.Query(ctx, reqs)
			for i := range reqs {
				if ansA[i].Err != nil || ansB[i].Err != nil {
					t.Fatalf("%s batch entry %d: %v / %v", phase, i, ansA[i].Err, ansB[i].Err)
				}
				assertSameResults(t, phase+" batch", ansA[i].Results, ansB[i].Results)
			}
		}
		check("initial")

		// The same maintenance stream on both sides of the interface:
		// re-weights, closures, reopenings, object churn — including on
		// border-adjacent edges.
		mutate := func(label string, op func(s Store) error) {
			errA := op(mono)
			errB := op(other)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s divergence: %v vs %v", label, errA, errB)
			}
		}
		for i := 0; i < 30; i++ {
			e := EdgeID(rng.Intn(other.NumRoads()))
			switch rng.Intn(5) {
			case 0:
				w := 0.2 + 3*rng.Float64()
				mutate("set-distance", func(s Store) error { return s.SetRoadDistance(e, w) })
			case 1:
				mutate("close", func(s Store) error { return s.CloseRoad(e) })
			case 2:
				mutate("reopen", func(s Store) error { return s.ReopenRoad(e) })
			case 3:
				off := rng.Float64() * 0.1
				var ids []ObjectID
				mutate("insert", func(s Store) error {
					o, err := s.AddObject(e, off, 1)
					if err == nil {
						ids = append(ids, o.ID)
					}
					return err
				})
				if len(ids) == 2 && ids[0] != ids[1] {
					t.Fatalf("insert assigned object %d vs %d", ids[0], ids[1])
				}
			case 4:
				id := ObjectID(rng.Intn(60))
				mutate("delete", func(s Store) error { return s.RemoveObject(id) })
			}
		}
		check("after maintenance")
	}
}

// TestShardedInterleavedMutationEquivalence interleaves queries BETWEEN
// the mutations of a long random maintenance stream, so every
// incremental border-table refresh (filter-and-refresh, §5.2) is
// checked against the monolithic reference before the next mutation
// builds on it — a stale arc surviving one refresh cannot hide behind a
// later full pass.
func TestShardedInterleavedMutationEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{11, 29} {
		db, sdb := shardedPair(t, seed, 300, 50, 4)
		var mono, other Store = db, sdb
		rng := rand.New(rand.NewSource(seed * 13))

		// A fixed probe panel: borders (cross-shard by construction) plus
		// random interior nodes, re-queried after every mutation.
		var probes []NodeID
		for i := 0; i < sdb.NumShards() && len(probes) < 12; i++ {
			b := sdb.Router().Shard(i).Borders()
			if len(b) > 3 {
				b = b[:3]
			}
			probes = append(probes, b...)
		}
		for i := 0; i < 6; i++ {
			probes = append(probes, NodeID(rng.Intn(other.NumNodes())))
		}

		check := func(step int) {
			for _, n := range probes {
				want, _, errA := mono.KNNContext(ctx, NewKNN(n, 4))
				got, _, errB := other.KNNContext(ctx, NewKNN(n, 4))
				if errA != nil || errB != nil {
					t.Fatalf("step %d knn(%d): %v / %v", step, n, errA, errB)
				}
				assertSameResults(t, "interleaved knn", want, got)
				want, _, errA = mono.WithinContext(ctx, NewWithin(n, 2.5))
				got, _, errB = other.WithinContext(ctx, NewWithin(n, 2.5))
				if errA != nil || errB != nil {
					t.Fatalf("step %d within(%d): %v / %v", step, n, errA, errB)
				}
				assertSameResults(t, "interleaved within", want, got)
			}
		}

		check(-1)
		for i := 0; i < 40; i++ {
			e := EdgeID(rng.Intn(other.NumRoads()))
			var errA, errB error
			switch rng.Intn(4) {
			case 0:
				w := 0.1 + 4*rng.Float64()
				errA, errB = mono.SetRoadDistance(e, w), other.SetRoadDistance(e, w)
			case 1:
				errA, errB = mono.CloseRoad(e), other.CloseRoad(e)
			case 2:
				errA, errB = mono.ReopenRoad(e), other.ReopenRoad(e)
			case 3:
				off := rng.Float64() * 0.05
				var oa, ob Object
				oa, errA = mono.AddObject(e, off, 1)
				ob, errB = other.AddObject(e, off, 1)
				if errA == nil && errB == nil && oa.ID != ob.ID {
					t.Fatalf("step %d: object IDs diverged: %d vs %d", i, oa.ID, ob.ID)
				}
			}
			if (errA == nil) != (errB == nil) {
				t.Fatalf("step %d: mutation divergence: %v vs %v", i, errA, errB)
			}
			check(i)
		}
	}
}

// TestShardedAddRoad exercises same-shard road addition and the
// cross-shard rejection contract.
func TestShardedAddRoad(t *testing.T) {
	_, sdb := shardedPair(t, 5, 300, 40, 4)
	r := sdb.Router()

	// Same-shard: two nodes of shard 0.
	s0 := r.Shard(0)
	u := s0.GlobalNodes()[0]
	v := s0.GlobalNodes()[len(s0.GlobalNodes())/2]
	if u == v {
		t.Skip("degenerate shard")
	}
	e, err := sdb.AddRoad(u, v, 2.5)
	if err != nil {
		t.Fatalf("AddRoad same shard: %v", err)
	}
	if int(e) != sdb.NumRoads()-1 {
		t.Fatalf("new road got ID %d, want %d", e, sdb.NumRoads()-1)
	}
	if err := sdb.SetRoadDistance(e, 1.5); err != nil {
		t.Fatalf("re-weighting the new road: %v", err)
	}
	if _, err := sdb.AddObject(e, 0.5, 2); err != nil {
		t.Fatalf("placing an object on the new road: %v", err)
	}

	// Cross-shard: find two interior nodes of different shards.
	interior := func(id int) NodeID {
		s := r.Shard(id)
		for _, gn := range s.GlobalNodes() {
			isBorder := false
			for _, b := range s.Borders() {
				if b == gn {
					isBorder = true
					break
				}
			}
			if !isBorder {
				return gn
			}
		}
		t.Skip("shard has no interior nodes")
		return 0
	}
	if _, err := sdb.AddRoad(interior(0), interior(1), 1); err == nil {
		t.Fatal("cross-shard AddRoad unexpectedly succeeded")
	}
}

// TestShardedPersistenceRoundTrip saves per-shard snapshots + journals,
// applies post-snapshot mutations, and verifies a reopened ShardedDB
// matches the live one — including journal-replayed global edge and
// object IDs.
func TestShardedPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snapPrefix := filepath.Join(dir, "net.snap")
	walPrefix := filepath.Join(dir, "net.wal")

	g := dataset.MustGenerate(dataset.Spec{Name: "persist", Nodes: 280, Edges: 360, Seed: 11})
	set := dataset.PlaceUniform(g, 50, 11, 0, 1, 2)
	sdb, err := OpenShardedWithObjects(FromGraph(g), set, Options{Seed: 11}, 4)
	if err != nil {
		t.Fatal(err)
	}
	journals, err := sdb.OpenShardJournals(walPrefix, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.ReplayJournals(journals); err != nil {
		t.Fatal(err)
	}
	if err := sdb.AttachJournals(journals); err != nil {
		t.Fatal(err)
	}

	// Pre-snapshot mutations.
	if err := sdb.SetRoadDistance(3, 4.5); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.AddObject(10, 0.2, 3); err != nil {
		t.Fatal(err)
	}
	if err := sdb.SaveSnapshotFiles(snapPrefix); err != nil {
		t.Fatal(err)
	}

	// Post-snapshot mutations — these live only in the journals, and
	// exercise global-ID reconstruction on replay.
	r := sdb.Router()
	s0 := r.Shard(0)
	u, v := s0.GlobalNodes()[1], s0.GlobalNodes()[len(s0.GlobalNodes())-2]
	newRoad, err := sdb.AddRoad(u, v, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	newObj, err := sdb.AddObject(newRoad, 1.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sdb.CloseRoad(7); err != nil {
		t.Fatal(err)
	}
	if err := sdb.RemoveObject(5); err != nil {
		t.Fatal(err)
	}
	// Mutations through the replay-assigned global IDs: the reopened side
	// must resolve them identically.
	if err := sdb.SetObjectAttr(newObj.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := sdb.SetRoadDistance(newRoad, 2.2); err != nil {
		t.Fatal(err)
	}
	if err := sdb.CloseJournals(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshots + journal replay.
	sdb2, err := OpenShardedSnapshotFiles(snapPrefix)
	if err != nil {
		t.Fatal(err)
	}
	journals2, err := sdb2.OpenShardJournals(walPrefix, false)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := sdb2.ReplayJournals(journals2)
	if err != nil && !IsReplayOpError(err) {
		t.Fatalf("replay: %v", err)
	}
	if applied == 0 {
		t.Fatal("replay applied nothing; post-snapshot ops lost")
	}
	if err := sdb2.AttachJournals(journals2); err != nil {
		t.Fatal(err)
	}
	defer sdb2.CloseJournals()

	if sdb2.Epoch() != sdb.Epoch() {
		t.Fatalf("reopened epoch %d, want %d", sdb2.Epoch(), sdb.Epoch())
	}
	if sdb2.NumRoads() != sdb.NumRoads() || sdb2.NumObjects() != sdb.NumObjects() {
		t.Fatalf("reopened %d roads / %d objects, want %d / %d",
			sdb2.NumRoads(), sdb2.NumObjects(), sdb.NumRoads(), sdb.NumObjects())
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 40; i++ {
		n := NodeID(rng.Intn(sdb.NumNodes()))
		want, _ := testKNN(sdb, n, 5, AnyAttr)
		got, _ := testKNN(sdb2, n, 5, AnyAttr)
		assertSameResults(t, "reopened knn", want, got)
		wantW, _ := testWithin(sdb, n, 4, AnyAttr)
		gotW, _ := testWithin(sdb2, n, 4, AnyAttr)
		assertSameResults(t, "reopened within", wantW, gotW)
	}

	// The replay-assigned global IDs stay live on the reopened side.
	if err := sdb2.SetObjectAttr(newObj.ID, 2); err != nil {
		t.Fatalf("replayed object %d unusable: %v", newObj.ID, err)
	}
	if err := sdb2.SetRoadDistance(newRoad, 1.7); err != nil {
		t.Fatalf("replayed road %d unusable: %v", newRoad, err)
	}
}

// TestJournalRotation verifies CompactJournal drops exactly the
// snapshot-covered entries and that recovery still works afterwards —
// while a stale (pre-rotation) snapshot is refused.
func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "db.snap")
	stalePath := filepath.Join(dir, "stale.snap")
	walPath := filepath.Join(dir, "db.wal")

	g := dataset.MustGenerate(dataset.Spec{Name: "rot", Nodes: 120, Edges: 150, Seed: 2})
	set := dataset.PlaceUniform(g, 20, 2, 0, 1)
	db, err := OpenWithObjects(FromGraph(g), set, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachJournal(j); err != nil {
		t.Fatal(err)
	}

	// A stale snapshot, then journaled ops beyond it.
	if err := db.SaveSnapshotFile(stalePath); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.SetRoadDistance(EdgeID(i), 2+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	grown := db.JournalSizeBytes()

	// Snapshot + rotate: journal shrinks to its header.
	if err := db.SaveSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := db.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	if got := db.JournalSizeBytes(); got >= grown {
		t.Fatalf("journal did not shrink: %d -> %d bytes", grown, got)
	}

	// Ops after rotation land in the rotated journal with continued seqs.
	if err := db.SetRoadDistance(0, 9.5); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery with the matching snapshot applies only the tail op.
	db2, err := OpenSnapshotFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(walPath)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := db2.ReplayJournal(j2)
	if err != nil {
		t.Fatalf("replay over rotated journal: %v", err)
	}
	if applied != 1 {
		t.Fatalf("replayed %d ops, want 1", applied)
	}
	if db2.Epoch() != db.Epoch() {
		t.Fatalf("epoch %d, want %d", db2.Epoch(), db.Epoch())
	}
	j2.Close()

	// The stale snapshot predates the rotation watermark: the rotated
	// journal no longer holds the ops in between and must refuse.
	dbStale, err := OpenSnapshotFile(stalePath)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if _, err := dbStale.ReplayJournal(j3); err == nil || IsReplayOpError(err) {
		t.Fatalf("replay over a pre-rotation snapshot did not fail fatally: %v", err)
	}
}
