// Command roadlog analyzes roadd's sampled JSONL query log (-query-log)
// into a workload model: query mix, per-shard heat, top hot source
// nodes (space-saving counters), latency and inter-arrival
// distributions, cache behaviour, and concrete follow-up actions (hot
// shards → replication/repartition candidates, repeat-query clusters →
// semantic-cache candidates).
//
// Usage:
//
//	roadlog -log queries.jsonl [-json workload.json] [-top 20] [-hot-factor 2]
//	roadlog file1.jsonl file2.jsonl ...
//
// -log reads the named log plus its rotated segment (<path>.1) when one
// exists, oldest first; positional arguments name further segments.
// Malformed lines (torn by a crash, corrupted on disk) are counted and
// skipped, never fatal. The human report goes to stdout; -json writes
// the machine-readable model. Exits 1 when no records parse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"road/internal/obs/analytics"
	"road/internal/version"
)

func main() {
	var (
		logPath   = flag.String("log", "", "query log file; its rotated segment <path>.1 is read too")
		jsonOut   = flag.String("json", "", "write the machine-readable workload model to this file")
		topK      = flag.Int("top", 20, "entries in the hot-node and repeat-query lists")
		hotFactor = flag.Float64("hot-factor", 2.0, "load multiple of the mean that flags a shard as hot")
		repeatMin = flag.Uint64("repeat-min", 10, "minimum identical-query count for a semantic-cache candidate")
		showVer   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("roadlog"))
		return
	}

	var paths []string
	if *logPath != "" {
		paths = analytics.LogSegments(*logPath)
	}
	paths = append(paths, flag.Args()...)
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "roadlog: no input; pass -log FILE or positional log files")
		flag.Usage()
		os.Exit(2)
	}

	b := analytics.NewBuilder(analytics.Config{
		TopK:      *topK,
		HotFactor: *hotFactor,
		RepeatMin: *repeatMin,
	})
	if err := analytics.ScanFiles(b, paths...); err != nil {
		fmt.Fprintf(os.Stderr, "roadlog: %v\n", err)
		os.Exit(1)
	}
	m := b.Build()

	if *jsonOut != "" {
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "roadlog: encoding model: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "roadlog: %v\n", err)
			os.Exit(1)
		}
	}

	analytics.Report(os.Stdout, m)
	if m.Queries == 0 {
		fmt.Fprintln(os.Stderr, "roadlog: no query records parsed")
		os.Exit(1)
	}
}
