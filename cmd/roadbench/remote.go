package main

// The -remote scenario: an out-of-process fleet benchmark. roadbench
// builds the deployment files, re-execs itself twice as shard-host
// processes (the same internal/shard/remote.Host that cmd/roadshard
// runs), assembles a router over them, verifies the fleet answers
// rank-for-rank like a single-process index, drives the load mixes at
// both, SIGKILLs one host mid-load to measure graceful degradation and
// recovery, and writes BENCH_remote.json.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"road"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/obs"
	"road/internal/server"
	"road/internal/shard"
	"road/internal/shard/remote"
)

// hostEnvAddr marks a re-exec'd roadbench process as a shard host; the
// companion variables carry its configuration. Checked in main before
// flag parsing.
const (
	hostEnvAddr    = "ROADBENCH_SHARD_HOST"
	hostEnvIDs     = "ROADBENCH_SHARD_IDS"
	hostEnvSnap    = "ROADBENCH_SHARD_SNAP"
	hostEnvJournal = "ROADBENCH_SHARD_JOURNAL"
)

// shardHostMain is the child side of the re-exec: one shard-host process
// serving the shard IDs named in the environment, exactly as a
// standalone roadshard would.
func shardHostMain() error {
	addr := os.Getenv(hostEnvAddr)
	var ids []int
	for _, p := range strings.Split(os.Getenv(hostEnvIDs), ",") {
		id, err := strconv.Atoi(p)
		if err != nil {
			return fmt.Errorf("bad shard id %q", p)
		}
		ids = append(ids, id)
	}
	host, err := remote.OpenHost(ids, remote.HostConfig{
		SnapshotPrefix: os.Getenv(hostEnvSnap),
		JournalPrefix:  os.Getenv(hostEnvJournal),
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: host.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		host.Close()
		return err
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			httpSrv.Close()
		}
		if err := host.SnapshotAll(); err != nil {
			host.Close()
			return err
		}
		return host.Close()
	}
}

// remoteBenchRun pairs one mix's load reports: the fleet versus the
// single-process index serving the identical network.
type remoteBenchRun struct {
	Mix    string            `json:"mix"`
	Remote server.LoadReport `json:"remote"`
	Mono   server.LoadReport `json:"mono"`
	// Overhead is mono QPS / remote QPS (≥ 1; the price of the wire).
	Overhead float64 `json:"overhead"`
}

// remoteKillPhase reports the SIGKILL-one-host experiment.
type remoteKillPhase struct {
	KilledHost   string `json:"killed_host"`
	KilledShards []int  `json:"killed_shards"`
	// Load is the uncached mixed run during which the host was killed:
	// Errors counts the failed calls (the killed shards' share), Requests
	// the traffic the surviving shards kept serving.
	Load server.LoadReport `json:"load"`
	// DeadTyped confirms queries homed in a killed shard failed with the
	// typed shard-unavailable error (not a timeout or a wrong answer).
	DeadTyped bool `json:"dead_typed_errors"`
	// AliveServed confirms queries homed in surviving shards kept
	// answering while the host was dead.
	AliveServed bool `json:"alive_served"`
	// RecoveryMS is restart-to-first-correct-answer: process spawn,
	// journal replay, health probe, router re-adoption.
	RecoveryMS int64 `json:"recovery_ms"`
	// Reverified confirms the full verification sample matched the mono
	// index again after recovery, without a router restart.
	Reverified bool `json:"reverified_after_recovery"`
}

// remoteBenchResult is the schema of BENCH_remote.json.
type remoteBenchResult struct {
	GeneratedUnix  int64   `json:"generated_unix"`
	Network        string  `json:"network"`
	Scale          float64 `json:"scale"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	Objects        int     `json:"objects"`
	Shards         int     `json:"shards"`
	Hosts          int     `json:"hosts"`
	Concurrency    int     `json:"concurrency"`
	MonoBuildMS    int64   `json:"mono_build_ms"`
	ShardedBuildMS int64   `json:"sharded_build_ms"`
	SaveMS         int64   `json:"save_ms"`
	HostBootMS     int64   `json:"host_boot_ms"`
	ConnectMS      int64   `json:"connect_ms"`
	// Verified confirms the fleet answered the query sample rank-for-rank
	// (object IDs in order, distances to 1e-9) like the mono index.
	Verified bool `json:"verified"`
	// MutationsVerified confirms identical mutations applied to both
	// deployments left them answering identically.
	MutationsVerified bool             `json:"mutations_verified"`
	Runs              []remoteBenchRun `json:"runs"`
	Kill              remoteKillPhase  `json:"kill"`
	// RouterMetrics is the router's /metrics scrape after everything ran,
	// including the road_remote_* families (RPC latency, errors, hedges,
	// host up/down, re-adoptions).
	RouterMetrics map[string]float64 `json:"router_metrics,omitempty"`
}

func runRemoteBench(scale float64, objects, concurrency int, duration time.Duration, cacheSize, shards int, outPath string) error {
	if shards < 2 {
		shards = 2
	}
	spec := dataset.Scaled(dataset.CA(), scale)
	fmt.Printf("remote bench: generating %s ×%.2f (%d nodes)...\n", spec.Name, scale, spec.Nodes)
	g := dataset.MustGenerate(spec)
	set := dataset.PlaceUniform(g, objects, 1, 0, 1, 2, 3)
	radius := g.EstimateDiameter() * 0.02
	gSharded := g.Clone()
	setSharded := set.Clone(gSharded)

	result := remoteBenchResult{
		GeneratedUnix: time.Now().Unix(),
		Network:       spec.Name,
		Scale:         scale,
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		Objects:       objects,
		Shards:        shards,
		Hosts:         2,
		Concurrency:   concurrency,
	}

	// Reference single-process index (StorePaths so /path is comparable).
	start := time.Now()
	mono, err := road.OpenWithObjects(road.FromGraph(g), set, road.Options{Seed: 1, StorePaths: true})
	if err != nil {
		return err
	}
	result.MonoBuildMS = time.Since(start).Milliseconds()

	// Deployment files the hosts boot from.
	start = time.Now()
	sharded, err := road.OpenShardedWithObjects(road.FromGraph(gSharded), setSharded, road.Options{Seed: 1}, shards)
	if err != nil {
		return err
	}
	result.ShardedBuildMS = time.Since(start).Milliseconds()
	dir, err := os.MkdirTemp("", "roadbench-remote-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snapPrefix := filepath.Join(dir, "fleet")
	jourPrefix := filepath.Join(dir, "wal")
	start = time.Now()
	if err := sharded.SaveSnapshotFiles(snapPrefix); err != nil {
		return err
	}
	result.SaveMS = time.Since(start).Milliseconds()
	manifest := &shard.Manifest{}
	if err := readJSONInto(road.ShardManifestPath(snapPrefix), manifest); err != nil {
		return err
	}
	sharded = nil // hosts own the deployment from here

	// Two host processes, shards split evenly.
	split := shards / 2
	hostA, err := spawnHost(rangeIDs(0, split), snapPrefix, jourPrefix)
	if err != nil {
		return err
	}
	defer hostA.stop()
	hostB, err := spawnHost(rangeIDs(split, shards), snapPrefix, jourPrefix)
	if err != nil {
		return err
	}
	defer hostB.stop()
	start = time.Now()
	for _, h := range []*benchHost{hostA, hostB} {
		if err := waitHealthy(h.addr, 60*time.Second); err != nil {
			return err
		}
	}
	result.HostBootMS = time.Since(start).Milliseconds()
	fmt.Printf("remote bench: 2 hosts up in %dms (shards %v + %v)\n", result.HostBootMS, hostA.ids, hostB.ids)

	// Router over the fleet.
	reg := obs.NewRegistry()
	start = time.Now()
	fleet, err := road.OpenRemote(context.Background(), []string{hostA.addr, hostB.addr}, road.RemoteOptions{
		Registry: reg,
		Logf:     func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	defer fleet.Close()
	result.ConnectMS = time.Since(start).Milliseconds()

	// Rank-for-rank equivalence before any load.
	verify := func() bool {
		sess := fleet.OpenSession()
		for _, n := range dataset.RandomNodes(g, 50, 7) {
			want, _, werr := mono.KNNContext(context.Background(), road.NewKNN(n, 5))
			got, _, gerr := sess.KNNContext(context.Background(), road.NewKNN(n, 5))
			if werr != nil || gerr != nil || !sameResults(want, got) {
				return false
			}
			want, _, werr = mono.WithinContext(context.Background(), road.NewWithin(n, radius))
			got, _, gerr = sess.WithinContext(context.Background(), road.NewWithin(n, radius))
			if werr != nil || gerr != nil || !sameResults(want, got) {
				return false
			}
		}
		return true
	}
	result.Verified = verify()
	if !result.Verified {
		return fmt.Errorf("fleet diverged from the single-process index on the verification sample")
	}
	fmt.Println("remote bench: verified fleet answers rank-for-rank with the mono index")

	// Identical mutations against both deployments (journaled host-side),
	// then re-verify: the maintenance path crosses the wire too.
	result.MutationsVerified = true
	for i := 0; i < 20; i++ {
		e := road.EdgeID(int64(i*17) % int64(g.NumEdges()))
		w := g.Edge(e).Weight
		if w <= 0 || math.IsInf(w, 1) {
			continue
		}
		if err := mono.SetRoadDistance(e, w*1.1); err != nil {
			continue // e.g. edge closed on both sides identically
		}
		if err := fleet.SetRoadDistance(e, w*1.1); err != nil {
			return fmt.Errorf("fleet rejected mutation the mono index accepted: %w", err)
		}
	}
	mo, err := mono.AddObject(road.EdgeID(1), 0.5, 2)
	if err == nil {
		fo, ferr := fleet.AddObject(road.EdgeID(1), 0.5, 2)
		if ferr != nil || fo.ID != mo.ID {
			return fmt.Errorf("fleet AddObject diverged (mono ID %d): %v", mo.ID, ferr)
		}
	}
	if !verify() {
		result.MutationsVerified = false
		return fmt.Errorf("fleet diverged after identical mutations")
	}
	fmt.Println("remote bench: verified fleet still matches after identical mutations on both")

	// Serve both deployments and drive the mixes.
	startServer := func(store road.Store, cache int, aux ...*obs.Registry) (string, func(), error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		srv := server.New(store, server.Options{CacheSize: cache, AuxMetrics: aux})
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		return "http://" + ln.Addr().String(), func() { httpSrv.Close() }, nil
	}
	monoTarget, stopMono, err := startServer(mono, cacheSize)
	if err != nil {
		return err
	}
	defer stopMono()
	fleetTarget, stopFleet, err := startServer(fleet, cacheSize, reg)
	if err != nil {
		return err
	}
	defer stopFleet()

	for _, mix := range []string{"knn", "within", "mixed"} {
		run := remoteBenchRun{Mix: mix}
		opts := server.LoadOptions{
			Concurrency: concurrency, Duration: duration, Mix: mix,
			K: 5, Radius: radius, Seed: 1,
		}
		opts.Target = monoTarget
		if run.Mono, err = server.RunLoad(opts); err != nil {
			return fmt.Errorf("mono load %q: %w", mix, err)
		}
		opts.Target = fleetTarget
		if run.Remote, err = server.RunLoad(opts); err != nil {
			return fmt.Errorf("remote load %q: %w", mix, err)
		}
		if run.Remote.QPS > 0 {
			run.Overhead = run.Mono.QPS / run.Remote.QPS
		}
		fmt.Printf("remote bench: %-6s fleet %8.0f qps p99 %6dµs | mono %8.0f qps p99 %6dµs | wire cost ×%.2f\n",
			mix, run.Remote.QPS, run.Remote.P99US, run.Mono.QPS, run.Mono.P99US, run.Overhead)
		result.Runs = append(result.Runs, run)
	}

	// Kill phase: SIGKILL host B mid-load. The killed shards' in-flight
	// and subsequent calls must fail with the typed unavailable error;
	// the surviving shards must keep answering; the restarted host must
	// be re-adopted without touching the router.
	kill := &result.Kill
	kill.KilledHost = hostB.addr
	kill.KilledShards = hostB.ids
	deadNodes := interiorNodes(manifest, hostB.ids[0])
	aliveNodes := interiorNodes(manifest, hostA.ids[0])
	if len(deadNodes) == 0 || len(aliveNodes) == 0 {
		return fmt.Errorf("no interior nodes to probe (shards too small for the kill experiment)")
	}

	// The kill-phase load drives an UNCACHED server over the same fleet:
	// the main runs warmed the fleet server's result cache over the whole
	// node space, and cached answers would absorb the outage and hide the
	// failure split this phase exists to measure.
	killTarget, stopKill, err := startServer(fleet, -1, reg)
	if err != nil {
		return err
	}
	defer stopKill()

	loadDone := make(chan error, 1)
	loadDur := max64(duration, 3*time.Second)
	go func() {
		rep, lerr := server.RunLoad(server.LoadOptions{
			Target: killTarget, Concurrency: concurrency, Duration: loadDur,
			Mix: "mixed", K: 5, Radius: radius, Seed: 2,
		})
		kill.Load = rep
		loadDone <- lerr
	}()
	time.Sleep(loadDur / 3)
	if err := hostB.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("killing host B: %w", err)
	}
	fmt.Printf("remote bench: SIGKILLed host %s (shards %v) mid-load\n", hostB.addr, hostB.ids)

	// Probe typed failure and graceful degradation while the host is dead.
	probe := fleet.OpenSession()
	for _, n := range sampleNodes(deadNodes, 10) {
		_, _, perr := probe.KNNContext(context.Background(), road.NewKNN(n, 3))
		if perr != nil && errors.Is(perr, road.ErrShardUnavailable) {
			kill.DeadTyped = true
			break
		}
	}
	for _, n := range sampleNodes(aliveNodes, 30) {
		if _, _, perr := probe.KNNContext(context.Background(), road.NewKNN(n, 3)); perr == nil {
			kill.AliveServed = true
			break
		}
	}
	if err := <-loadDone; err != nil {
		return fmt.Errorf("kill-phase load: %w", err)
	}
	if !kill.DeadTyped {
		return fmt.Errorf("killed shards did not fail with the typed shard-unavailable error")
	}
	if !kill.AliveServed {
		return fmt.Errorf("surviving shards stopped answering while one host was dead")
	}
	if kill.Load.Errors == 0 {
		return fmt.Errorf("kill-phase load saw no failed calls despite a dead host")
	}
	if kill.Load.Requests == 0 {
		return fmt.Errorf("kill-phase load saw no successful calls: surviving shards wedged")
	}
	fmt.Printf("remote bench: degradation confirmed — %d kill-phase calls failed (dead shards' share), %d kept being served\n",
		kill.Load.Errors, kill.Load.Requests)

	// Restart the host on the same address; the fleet's health loop must
	// re-adopt it (journal-replayed state) without a router restart.
	start = time.Now()
	hostB2, err := spawnHostAt(hostB.addr, hostB.ids, snapPrefix, jourPrefix)
	if err != nil {
		return err
	}
	defer hostB2.stop()
	recovered := false
	recoverDeadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(recoverDeadline) {
		want, _, werr := mono.KNNContext(context.Background(), road.NewKNN(deadNodes[0], 5))
		got, _, gerr := probe.KNNContext(context.Background(), road.NewKNN(deadNodes[0], 5))
		if werr == nil && gerr == nil && sameResults(want, got) {
			recovered = true
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if !recovered {
		return fmt.Errorf("fleet did not recover within 90s of the host restart")
	}
	kill.RecoveryMS = time.Since(start).Milliseconds()
	kill.Reverified = verify()
	if !kill.Reverified {
		return fmt.Errorf("fleet diverged from the mono index after recovery")
	}
	fmt.Printf("remote bench: host re-adopted and reverified in %dms, no router restart\n", kill.RecoveryMS)

	if m, err := server.ScrapeMetrics(fleetTarget); err == nil {
		result.RouterMetrics = m
	}
	if err := writeJSONFile(outPath, result); err != nil {
		return err
	}
	fmt.Printf("remote bench: wrote %s\n", outPath)
	return nil
}

// benchHost is one spawned shard-host child process.
type benchHost struct {
	cmd  *exec.Cmd
	addr string
	ids  []int
}

func (h *benchHost) stop() {
	if h.cmd.Process != nil {
		h.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { h.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			h.cmd.Process.Kill()
			<-done
		}
	}
}

func spawnHost(ids []int, snapPrefix, jourPrefix string) (*benchHost, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	ln.Close()
	return spawnHostAt(addr, ids, snapPrefix, jourPrefix)
}

func spawnHostAt(addr string, ids []int, snapPrefix, jourPrefix string) (*benchHost, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	idStrs := make([]string, len(ids))
	for i, id := range ids {
		idStrs[i] = strconv.Itoa(id)
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(),
		hostEnvAddr+"="+addr,
		hostEnvIDs+"="+strings.Join(idStrs, ","),
		hostEnvSnap+"="+snapPrefix,
		hostEnvJournal+"="+jourPrefix,
	)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &benchHost{cmd: cmd, addr: addr, ids: ids}, nil
}

func waitHealthy(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("host %s not healthy after %v", addr, timeout)
}

// interiorNodes returns shard id's nodes that belong to no other shard:
// queries from them are homed in that shard, so they fail determin-
// istically when its host dies and succeed only once it is re-adopted.
func interiorNodes(m *shard.Manifest, id int) []graph.NodeID {
	other := make(map[graph.NodeID]bool)
	for j := range m.PerShard {
		if j == id {
			continue
		}
		for _, n := range m.PerShard[j].GlobalNode {
			other[n] = true
		}
	}
	var out []graph.NodeID
	for _, n := range m.PerShard[id].GlobalNode {
		if !other[n] {
			out = append(out, n)
		}
	}
	return out
}

func rangeIDs(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func sampleNodes(nodes []graph.NodeID, n int) []graph.NodeID {
	if len(nodes) <= n {
		return nodes
	}
	step := len(nodes) / n
	out := make([]graph.NodeID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, nodes[i*step])
	}
	return out
}

func sameResults(a, b []road.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Object.ID != b[i].Object.ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-9*math.Max(1, a[i].Dist) {
			return false
		}
	}
	return true
}

func readJSONInto(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func max64(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
