package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"road/internal/core"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/shard"
	"road/internal/snapshot"
)

// maintainSide is one deployment's half of BENCH_maintain.json: the pure
// cost of its border-table maintenance (quiet phase, no readers), then
// the same maintenance interleaved with reader traffic and the read
// throughput sustained while that mixed stream ran — mutation latency
// under load includes lock wait, which is the serving-facing number.
type maintainSide struct {
	QuietMeanUS float64 `json:"quiet_maint_mean_us"`
	QuietP50US  int64   `json:"quiet_maint_p50_us"`
	QuietP99US  int64   `json:"quiet_maint_p99_us"`

	MaintMeanUS  float64 `json:"maint_mean_us"`
	MaintP50US   int64   `json:"maint_p50_us"`
	MaintP99US   int64   `json:"maint_p99_us"`
	MaintTotalMS float64 `json:"maint_total_ms"`
	Reads        int64   `json:"reads"`
	ReadQPS      float64 `json:"read_qps"`
	Seconds      float64 `json:"seconds"`
}

// maintainBenchResult is the schema of BENCH_maintain.json: an identical
// mixed read/write workload driven at two sharded routers over the same
// network — one maintaining border tables incrementally
// (filter-and-refresh, §5.2), one rebuilding them whole-shard per
// mutation (the pre-incremental behaviour, kept as a baseline).
type maintainBenchResult struct {
	GeneratedUnix int64   `json:"generated_unix"`
	Network       string  `json:"network"`
	Scale         float64 `json:"scale"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Objects       int     `json:"objects"`
	Shards        int     `json:"shards"`
	Borders       int     `json:"borders"`
	Mutations     int     `json:"mutations"`
	Readers       int     `json:"readers"`

	Incremental maintainSide `json:"incremental"`
	FullRebuild maintainSide `json:"full_rebuild"`

	// QuietMaintSpeedup is full-rebuild mean maintenance latency over
	// incremental mean with no concurrent readers: the pure §5.2
	// filter-and-refresh win.
	QuietMaintSpeedup float64 `json:"quiet_maint_speedup"`
	// MaintSpeedup is the same ratio under the mixed read/write load
	// (includes lock wait; > 1 means filter-and-refresh wins end to end).
	MaintSpeedup float64 `json:"maint_speedup"`
	// ReadSpeedup is incremental read QPS over full-rebuild read QPS
	// under the same write load (> 1 means readers stall less).
	ReadSpeedup float64 `json:"read_speedup"`
	// Verified confirms both routers answered a query sample identically
	// after the identical mutation streams.
	Verified bool `json:"verified"`
}

// recordedOp is one network mutation of the shared stream, addressed to
// its owning shard in journal form — replayable verbatim on the second
// router because both start from identical builds.
type recordedOp struct {
	sid shard.ID
	op  snapshot.Op
}

// runMaintainBench builds the scaled CA network twice behind identical
// shard routers — incremental vs whole-shard border refresh — drives the
// same mutation stream through each while reader goroutines hammer
// queries, verifies the two still answer identically, and writes the
// comparison to outPath.
func runMaintainBench(scale float64, objects, readers, mutations, shards int, outPath string) error {
	spec := dataset.Scaled(dataset.CA(), scale)
	fmt.Printf("maintain bench: generating %s ×%.2f (%d nodes)...\n", spec.Name, scale, spec.Nodes)
	g := dataset.MustGenerate(spec)
	set := dataset.PlaceUniform(g, objects, 1, 0, 1, 2, 3)
	gFull := g.Clone()
	setFull := set.Clone(gFull)

	build := func(g2 *graph.Graph, s2 *graph.ObjectSet, full bool) (*shard.Router, error) {
		return shard.Build(g2, s2, shard.Options{
			Shards:      shards,
			Seed:        1,
			Core:        core.Config{BufferPages: -1},
			FullRefresh: full,
		})
	}
	incr, err := build(g, set, false)
	if err != nil {
		return err
	}
	full, err := build(gFull, setFull, true)
	if err != nil {
		return err
	}
	borders := 0
	for _, info := range incr.Infos() {
		borders += info.Borders
	}
	fmt.Printf("maintain bench: %d shards, %d border incidences, %d mutations, %d readers\n",
		shards, borders, mutations, readers)

	// The mutation stream is generated once, against the incremental
	// router's evolving state, and recorded; the full-rebuild router
	// replays it verbatim. Mix: re-weights (the §5.2 update event),
	// closures and reopenings.
	var script []recordedOp
	gen := func(r *shard.Router, rng *rand.Rand) (shard.ID, snapshot.Op, bool) {
		ge := graph.EdgeID(rng.Intn(r.Graph().NumEdges()))
		removed := r.Graph().Edge(ge).Removed
		var sid shard.ID
		var op snapshot.Op
		var err error
		switch rng.Intn(4) {
		case 0, 1: // re-weight
			if removed {
				return 0, snapshot.Op{}, false
			}
			sid, op, err = r.EncodeSetDistance(ge, 0.05+rng.Float64()*4)
		case 2: // close
			if removed {
				return 0, snapshot.Op{}, false
			}
			sid, op, err = r.EncodeClose(ge)
		default: // reopen
			if !removed {
				return 0, snapshot.Op{}, false
			}
			sid, op, err = r.EncodeReopen(ge)
		}
		return sid, op, err == nil
	}

	diam := g.EstimateDiameter()

	// runStream drives one mutation stream at r: either generating it
	// fresh (replay nil; the ops are recorded and returned) or replaying
	// a recorded one verbatim. With quiet set there are no readers and no
	// pacing — pure maintenance cost; otherwise reader goroutines hammer
	// queries while mutations are paced across a ~2s window, so the two
	// sides' different write-stall scopes show up as a read-throughput
	// difference rather than vanishing into a burst.
	runStream := func(r *shard.Router, replay []recordedOp, quiet bool) ([]time.Duration, []recordedOp, int64, float64) {
		var stop atomic.Bool
		var reads atomic.Int64
		var wg sync.WaitGroup
		gap := time.Duration(0)
		if !quiet {
			gap = 2 * time.Second / time.Duration(mutations)
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					sess := r.NewSession()
					for !stop.Load() {
						n := graph.NodeID(rng.Intn(r.Graph().NumNodes()))
						if rng.Intn(2) == 0 {
							sess.KNN(n, 5, 0)
						} else {
							sess.Within(n, diam*0.02, 0)
						}
						reads.Add(1)
					}
				}(int64(w) + 7)
			}
		}

		seed := int64(42)
		if quiet {
			seed = 41 // quiet and mixed phases draw disjoint op streams
		}
		rng := rand.New(rand.NewSource(seed))
		lat := make([]time.Duration, 0, mutations)
		var recorded []recordedOp
		start := time.Now()
		for done := 0; done < mutations; {
			var sid shard.ID
			var op snapshot.Op
			if replay != nil {
				sid, op = replay[done].sid, replay[done].op
			} else {
				var ok bool
				sid, op, ok = gen(r, rng)
				if !ok {
					continue
				}
				recorded = append(recorded, recordedOp{sid, op})
			}
			t0 := time.Now()
			r.Mutate(
				func() (shard.ID, snapshot.Op, error) { return sid, op, nil },
				func(id shard.ID, o snapshot.Op) error { return r.ApplyOp(id, o, true) },
			)
			lat = append(lat, time.Since(t0))
			done++
			if gap > 0 {
				time.Sleep(gap)
			}
		}
		seconds := time.Since(start).Seconds()
		stop.Store(true)
		wg.Wait()
		return lat, recorded, reads.Load(), seconds
	}

	stats := func(lat []time.Duration) (mean float64, p50, p99 int64, totalMS float64) {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var total time.Duration
		for _, d := range lat {
			total += d
		}
		return float64(total.Microseconds()) / float64(len(lat)),
			lat[len(lat)/2].Microseconds(),
			lat[len(lat)*99/100].Microseconds(),
			float64(total.Microseconds()) / 1000
	}

	measure := func(label string, r *shard.Router, quietReplay, mixedReplay []recordedOp) (maintainSide, []recordedOp, []recordedOp) {
		var side maintainSide
		qlat, qRecorded, _, _ := runStream(r, quietReplay, true)
		side.QuietMeanUS, side.QuietP50US, side.QuietP99US, _ = stats(qlat)
		mlat, mRecorded, reads, seconds := runStream(r, mixedReplay, false)
		side.MaintMeanUS, side.MaintP50US, side.MaintP99US, side.MaintTotalMS = stats(mlat)
		side.Reads = reads
		side.Seconds = seconds
		side.ReadQPS = float64(reads) / seconds
		fmt.Printf("maintain bench: %-12s quiet mean %8.0fµs  mixed mean %8.0fµs  p99 %8dµs  reads %8d (%8.0f qps)\n",
			label, side.QuietMeanUS, side.MaintMeanUS, side.MaintP99US, side.Reads, side.ReadQPS)
		return side, qRecorded, mRecorded
	}

	incrSide, quietScript, mixedScript := measure("incremental", incr, nil, nil)
	script = mixedScript
	fullSide, _, _ := measure("full-rebuild", full, quietScript, script)

	// Verification: identical mutation streams must leave identical
	// answers (the incremental tables are exact, not approximate).
	verified := true
	sessI, sessF := incr.NewSession(), full.NewSession()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200 && verified; i++ {
		n := graph.NodeID(rng.Intn(g.NumNodes()))
		want, _ := sessF.KNN(n, 5, 0)
		got, _ := sessI.KNN(n, 5, 0)
		if len(want) != len(got) {
			verified = false
			break
		}
		for j := range want {
			// Distances must agree rank-for-rank (IDs may swap only
			// inside equal-distance ties, which this check admits).
			if math.Abs(want[j].Dist-got[j].Dist) > 1e-9*math.Max(1, want[j].Dist) {
				verified = false
			}
		}
	}
	if !verified {
		return fmt.Errorf("incremental router diverged from full-rebuild router after identical mutations")
	}
	fmt.Println("maintain bench: verified incremental answers match whole-shard rebuild")

	result := maintainBenchResult{
		GeneratedUnix: time.Now().Unix(),
		Network:       spec.Name,
		Scale:         scale,
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		Objects:       objects,
		Shards:        shards,
		Borders:       borders,
		Mutations:     mutations,
		Readers:       readers,
		Incremental:   incrSide,
		FullRebuild:   fullSide,
		Verified:      verified,
	}
	if incrSide.QuietMeanUS > 0 {
		result.QuietMaintSpeedup = fullSide.QuietMeanUS / incrSide.QuietMeanUS
	}
	if incrSide.MaintMeanUS > 0 {
		result.MaintSpeedup = fullSide.MaintMeanUS / incrSide.MaintMeanUS
	}
	if fullSide.ReadQPS > 0 {
		result.ReadSpeedup = incrSide.ReadQPS / fullSide.ReadQPS
	}
	fmt.Printf("maintain bench: maintenance ×%.1f faster quiet, ×%.1f under load; reads ×%.2f under write load\n",
		result.QuietMaintSpeedup, result.MaintSpeedup, result.ReadSpeedup)

	if err := writeJSONFile(outPath, result); err != nil {
		return err
	}
	fmt.Printf("maintain bench: wrote %s\n", outPath)
	return nil
}
