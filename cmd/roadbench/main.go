// Command roadbench regenerates the paper's evaluation (§6): every table
// and figure, or a selected subset, printed as aligned text tables. With
// -serve it instead benchmarks the roadd serving subsystem in-process
// (load generator against an ephemeral HTTP server) and writes a
// machine-readable BENCH_serve.json for the perf trajectory.
//
// Usage:
//
//	roadbench                  # run every experiment at default scale
//	roadbench -fig fig17a      # one experiment
//	roadbench -list            # list experiment IDs
//	roadbench -full            # paper-scale NA/SF (slower)
//	roadbench -queries 100 -trials 100   # the paper's workload sizes
//	roadbench -serve           # serving benchmark -> BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"road"
	"road/internal/bench"
	"road/internal/dataset"
	"road/internal/server"
	"road/internal/version"
)

func main() {
	// Re-exec'd as a shard-host child of the -remote scenario?
	if os.Getenv(hostEnvAddr) != "" {
		if err := shardHostMain(); err != nil {
			fmt.Fprintln(os.Stderr, "roadbench(host):", err)
			os.Exit(1)
		}
		return
	}
	var (
		fig     = flag.String("fig", "", "experiment ID to run (default: all)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		full    = flag.Bool("full", false, "run NA/SF at full paper scale")
		queries = flag.Int("queries", 50, "queries per data point")
		trials  = flag.Int("trials", 20, "trials per update experiment")
		budget  = flag.Float64("budget", 30, "soft per-approach seconds budget for update trials")

		serve       = flag.Bool("serve", false, "benchmark the roadd serving subsystem instead of the paper experiments")
		out         = flag.String("out", "", "serve/snapshot mode: output file (default BENCH_serve.json / BENCH_snapshot.json)")
		scale       = flag.Float64("scale", 0.25, "serve mode: CA network scale factor (0,1]")
		objects     = flag.Int("objects", 2000, "serve/snapshot mode: objects placed uniformly")
		concurrency = flag.Int("concurrency", 8, "serve mode: load-generator workers")
		duration    = flag.Duration("duration", 5*time.Second, "serve mode: load length per mix")
		cacheSize   = flag.Int("cache", 0, "serve mode: result cache entries (negative disables)")

		snapshotM = flag.Bool("snapshot", false, "benchmark snapshot save/load against a cold index build on the default CA network")

		shardsM = flag.Int("shards", 0, "benchmark sharded serving (this many region shards) against single-index serving on the CA network -> BENCH_shard.json")

		maintainM = flag.Bool("maintain", false, "benchmark incremental border-table maintenance (filter-and-refresh) against whole-shard rebuild under a mixed read/write load on the CA network -> BENCH_maintain.json")
		mutations = flag.Int("mutations", 120, "maintain mode: network mutations per side")

		remoteM = flag.Bool("remote", false, "benchmark an out-of-process fleet (2 spawned shard-host processes behind a router) against single-process serving, including a kill-one-host recovery experiment -> BENCH_remote.json")

		hotpathM   = flag.Bool("hotpath", false, "benchmark the CSR session hot path against the retained page-store reference implementation (kNN/range/path percentiles incl. p999) on CA full + NA half scale -> BENCH_hotpath.json")
		minSpeedup = flag.Float64("min-speedup", 0, "hotpath mode: fail unless every kNN and range p50 speedup reaches this factor (CI regression gate; 0 disables)")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("roadbench"))
		return
	}

	if *hotpathM {
		outPath := *out
		if outPath == "" {
			outPath = "BENCH_hotpath.json"
		}
		// The hot path is a scaling story: default to the paper's CA
		// network at full scale plus a half-scale NA. An explicit -scale
		// narrows the run to CA at that scale (the CI smoke uses this).
		specs := []dataset.Spec{dataset.CA(), dataset.Scaled(dataset.NA(), 0.5)}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				specs = []dataset.Spec{dataset.Scaled(dataset.CA(), *scale)}
			}
		})
		// 50 queries (the paper-experiment default) is too thin for p999;
		// sample 3000 per leg unless -queries is set explicitly.
		hotQueries := 3000
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "queries" {
				hotQueries = *queries
			}
		})
		if err := runHotpathBench(specs, *objects, hotQueries, 10, *minSpeedup, outPath); err != nil {
			fmt.Fprintln(os.Stderr, "roadbench:", err)
			os.Exit(1)
		}
		return
	}

	if *remoteM {
		outPath := *out
		if outPath == "" {
			outPath = "BENCH_remote.json"
		}
		fleetShards := *shardsM
		if fleetShards < 2 {
			fleetShards = 2
		}
		if err := runRemoteBench(*scale, *objects, *concurrency, *duration, *cacheSize, fleetShards, outPath); err != nil {
			fmt.Fprintln(os.Stderr, "roadbench:", err)
			os.Exit(1)
		}
		return
	}

	if *maintainM {
		outPath := *out
		if outPath == "" {
			outPath = "BENCH_maintain.json"
		}
		// Like -shards, maintenance cost is a scaling story: default to
		// the full CA network unless -scale is given explicitly.
		maintainScale := 1.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				maintainScale = *scale
			}
		})
		maintainShards := 4
		if *shardsM > 1 {
			maintainShards = *shardsM
		}
		if err := runMaintainBench(maintainScale, *objects, *concurrency, *mutations, maintainShards, outPath); err != nil {
			fmt.Fprintln(os.Stderr, "roadbench:", err)
			os.Exit(1)
		}
		return
	}

	if *shardsM > 1 {
		outPath := *out
		if outPath == "" {
			outPath = "BENCH_shard.json"
		}
		// Sharding is a scaling mechanism: its benchmark defaults to the
		// full CA network (the -serve default of 0.25 exists to keep that
		// quick mode snappy). An explicit -scale still wins.
		shardScale := 1.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				shardScale = *scale
			}
		})
		if err := runShardBench(shardScale, *objects, *concurrency, *duration, *cacheSize, *shardsM, outPath); err != nil {
			fmt.Fprintln(os.Stderr, "roadbench:", err)
			os.Exit(1)
		}
		return
	}

	if *serve {
		outPath := *out
		if outPath == "" {
			outPath = "BENCH_serve.json"
		}
		if err := runServeBench(*scale, *objects, *concurrency, *duration, *cacheSize, outPath); err != nil {
			fmt.Fprintln(os.Stderr, "roadbench:", err)
			os.Exit(1)
		}
		return
	}
	if *snapshotM {
		outPath := *out
		if outPath == "" {
			outPath = "BENCH_snapshot.json"
		}
		if err := runSnapshotBench(*objects, outPath); err != nil {
			fmt.Fprintln(os.Stderr, "roadbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}

	opt := bench.DefaultOptions()
	opt.Full = opt.Full || *full
	opt.Queries = *queries
	opt.Trials = *trials
	opt.MaxApproachSeconds = *budget

	ids := bench.Order
	if *fig != "" {
		if _, ok := bench.Registry[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "roadbench: unknown experiment %q (use -list)\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	for _, id := range ids {
		start := time.Now()
		tbl, err := bench.Registry[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roadbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// writeJSONFile writes v to path as indented JSON.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// snapshotBenchResult is the schema of BENCH_snapshot.json: cold index
// construction versus snapshot save/load on the default CA network — the
// restart-cost trade the persistence subsystem exists for.
type snapshotBenchResult struct {
	GeneratedUnix int64   `json:"generated_unix"`
	Network       string  `json:"network"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Objects       int     `json:"objects"`
	IndexKB       int64   `json:"index_kb"`
	SnapshotKB    int64   `json:"snapshot_kb"`
	BuildMS       float64 `json:"build_ms"`
	SaveMS        float64 `json:"save_ms"`
	LoadMS        float64 `json:"load_ms"`
	// WarmMS is the post-load WarmTrees cost: shortcut-tree caches are
	// restored lazily, so the first queries (or an explicit warm) pay
	// this — reported separately so the load number is honest about what
	// it defers versus what it avoids.
	WarmMS float64 `json:"warm_ms"`
	// SpeedupLoadVsBuild is BuildMS / LoadMS: how many times faster a
	// snapshot restart is than a cold rebuild.
	SpeedupLoadVsBuild float64 `json:"speedup_load_vs_build"`
	// SpeedupWarmVsBuild is BuildMS / (LoadMS + WarmMS): restart-to-warm
	// versus cold rebuild (the cold build materializes trees during
	// construction).
	SpeedupWarmVsBuild float64 `json:"speedup_warm_vs_build"`
	// Verified confirms the loaded index answered a query sample
	// identically to the built one.
	Verified bool `json:"verified"`
}

// runSnapshotBench builds the default CA index cold, saves and reloads a
// snapshot of it, verifies the reloaded index answers like the original,
// and writes the timing comparison to outPath.
func runSnapshotBench(objects int, outPath string) error {
	spec := dataset.CA()
	fmt.Printf("snapshot bench: generating %s (%d nodes)...\n", spec.Name, spec.Nodes)
	g := dataset.MustGenerate(spec)
	set := dataset.PlaceUniform(g, objects, 1, 0, 1, 2, 3)

	// Quiesce the collector before each timed phase so generation garbage
	// is not billed to the phase that happens to trigger its collection.
	runtime.GC()
	buildStart := time.Now()
	db, err := road.OpenWithObjects(road.FromGraph(g), set, road.Options{Seed: 1})
	if err != nil {
		return err
	}
	buildMS := float64(time.Since(buildStart).Microseconds()) / 1000
	fmt.Printf("snapshot bench: cold build %.1fms, index ≈ %d KB\n", buildMS, db.IndexSizeBytes()/1024)

	dir, err := os.MkdirTemp("", "roadbench-snapshot-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "ca.snap")

	saveStart := time.Now()
	if err := db.SaveSnapshotFile(snapPath); err != nil {
		return err
	}
	saveMS := float64(time.Since(saveStart).Microseconds()) / 1000
	info, err := os.Stat(snapPath)
	if err != nil {
		return err
	}
	fmt.Printf("snapshot bench: save %.1fms, snapshot %d KB\n", saveMS, info.Size()/1024)

	runtime.GC()
	loadStart := time.Now()
	db2, err := road.OpenSnapshotFile(snapPath)
	if err != nil {
		return err
	}
	loadMS := float64(time.Since(loadStart).Microseconds()) / 1000
	speedup := buildMS / loadMS
	fmt.Printf("snapshot bench: load %.1fms — %.1f× faster than cold build\n", loadMS, speedup)

	warmStart := time.Now()
	db2.Framework().WarmTrees()
	warmMS := float64(time.Since(warmStart).Microseconds()) / 1000
	speedupWarm := buildMS / (loadMS + warmMS)
	fmt.Printf("snapshot bench: tree warm %.1fms — load+warm %.1f× faster than cold build\n", warmMS, speedupWarm)

	verified := true
	for _, n := range dataset.RandomNodes(g, 50, 7) {
		want, _, _ := db.KNNContext(context.Background(), road.NewKNN(n, 5))
		got, _, _ := db2.KNNContext(context.Background(), road.NewKNN(n, 5))
		if len(want) != len(got) {
			verified = false
			break
		}
		for i := range want {
			if want[i].Object != got[i].Object || want[i].Dist != got[i].Dist {
				verified = false
			}
		}
	}
	if !verified {
		return fmt.Errorf("loaded snapshot diverged from built index")
	}
	fmt.Println("snapshot bench: verified loaded index answers identically")

	result := snapshotBenchResult{
		GeneratedUnix:      time.Now().Unix(),
		Network:            spec.Name,
		Nodes:              g.NumNodes(),
		Edges:              g.NumEdges(),
		Objects:            set.Len(),
		IndexKB:            db.IndexSizeBytes() / 1024,
		SnapshotKB:         info.Size() / 1024,
		BuildMS:            buildMS,
		SaveMS:             saveMS,
		LoadMS:             loadMS,
		WarmMS:             warmMS,
		SpeedupLoadVsBuild: speedup,
		SpeedupWarmVsBuild: speedupWarm,
		Verified:           verified,
	}
	if err := writeJSONFile(outPath, result); err != nil {
		return err
	}
	fmt.Printf("snapshot bench: wrote %s\n", outPath)
	return nil
}

// shardBenchRun pairs one workload mix's load reports against the two
// deployments.
type shardBenchRun struct {
	Mix     string            `json:"mix"`
	Single  server.LoadReport `json:"single"`
	Sharded server.LoadReport `json:"sharded"`
	// Speedup is sharded QPS / single QPS (≥ 1 means sharding wins).
	Speedup float64 `json:"speedup"`
}

// shardBenchResult is the schema of BENCH_shard.json: the same mixed load
// driven at a single-index roadd and at a sharded one over the identical
// network and object set.
type shardBenchResult struct {
	GeneratedUnix  int64   `json:"generated_unix"`
	Network        string  `json:"network"`
	Scale          float64 `json:"scale"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	Objects        int     `json:"objects"`
	Shards         int     `json:"shards"`
	Borders        int     `json:"borders"`
	SingleBuildMS  int64   `json:"single_build_ms"`
	ShardedBuildMS int64   `json:"sharded_build_ms"`
	SingleIndexKB  int64   `json:"single_index_kb"`
	ShardedIndexKB int64   `json:"sharded_index_kb"`
	CacheEntries   int     `json:"cache_entries"`
	Concurrency    int     `json:"concurrency"`
	// Verified confirms the sharded deployment answered a query sample
	// identically to the single index before load was applied.
	Verified bool            `json:"verified"`
	Runs     []shardBenchRun `json:"runs"`
	// SingleMetrics / ShardedMetrics are each deployment's /metrics
	// series (buckets elided) scraped after all mixes ran: server-side
	// counters — node pops, cache traffic, per-shard load — to read the
	// client-side latency numbers against.
	SingleMetrics  map[string]float64 `json:"single_metrics,omitempty"`
	ShardedMetrics map[string]float64 `json:"sharded_metrics,omitempty"`
}

// runShardBench builds the scaled CA network once, indexes it both as a
// single framework and as K region shards, verifies the two agree on a
// query sample, then drives the identical load mixes at each and writes
// the comparison to outPath.
func runShardBench(scale float64, objects, concurrency int, duration time.Duration, cacheSize, shards int, outPath string) error {
	spec := dataset.Scaled(dataset.CA(), scale)
	fmt.Printf("shard bench: generating %s ×%.2f (%d nodes)...\n", spec.Name, scale, spec.Nodes)
	g := dataset.MustGenerate(spec)
	set := dataset.PlaceUniform(g, objects, 1, 0, 1, 2, 3)
	radius := g.EstimateDiameter() * 0.02

	gSharded := g.Clone()
	setSharded := set.Clone(gSharded)

	buildStart := time.Now()
	single, err := road.OpenWithObjects(road.FromGraph(g), set, road.Options{Seed: 1})
	if err != nil {
		return err
	}
	singleBuildMS := time.Since(buildStart).Milliseconds()
	fmt.Printf("shard bench: single index built in %dms, ≈ %d KB\n", singleBuildMS, single.IndexSizeBytes()/1024)

	buildStart = time.Now()
	sharded, err := road.OpenShardedWithObjects(road.FromGraph(gSharded), setSharded, road.Options{Seed: 1}, shards)
	if err != nil {
		return err
	}
	shardedBuildMS := time.Since(buildStart).Milliseconds()
	borders := 0
	for _, info := range sharded.ShardInfos() {
		borders += info.Borders
	}
	fmt.Printf("shard bench: %d shards built in %dms, ≈ %d KB, %d border incidences\n",
		shards, shardedBuildMS, sharded.IndexSizeBytes()/1024, borders)

	// Equivalence spot check before applying load — run through the
	// road.Store interface, which both deployment shapes satisfy.
	verified := true
	var monoStore, shardStore road.Store = single, sharded
	for _, n := range dataset.RandomNodes(g, 50, 7) {
		want, _, _ := monoStore.KNNContext(context.Background(), road.NewKNN(n, 5))
		got, _, _ := shardStore.KNNContext(context.Background(), road.NewKNN(n, 5))
		if len(want) != len(got) {
			verified = false
			break
		}
		for i := range want {
			if want[i].Object.ID != got[i].Object.ID || math.Abs(want[i].Dist-got[i].Dist) > 1e-9*math.Max(1, want[i].Dist) {
				verified = false
			}
		}
	}
	if !verified {
		return fmt.Errorf("sharded deployment diverged from the single index on the verification sample")
	}
	fmt.Println("shard bench: verified sharded answers match the single index")

	effCache := cacheSize
	switch {
	case effCache < 0:
		effCache = 0
	case effCache == 0:
		effCache = server.DefaultCacheSize
	}
	result := shardBenchResult{
		GeneratedUnix:  time.Now().Unix(),
		Network:        spec.Name,
		Scale:          scale,
		Nodes:          g.NumNodes(),
		Edges:          g.NumEdges(),
		Objects:        objects,
		Shards:         shards,
		Borders:        borders,
		SingleBuildMS:  singleBuildMS,
		ShardedBuildMS: shardedBuildMS,
		SingleIndexKB:  single.IndexSizeBytes() / 1024,
		ShardedIndexKB: sharded.IndexSizeBytes() / 1024,
		CacheEntries:   effCache,
		Concurrency:    concurrency,
		Verified:       verified,
	}

	// Both deployments serve for the whole benchmark; each mix is driven
	// at them back-to-back so environmental drift (this is often a small,
	// shared box) lands on both sides of every comparison equally.
	startServer := func(srv *server.Server) (string, func(), error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		return "http://" + ln.Addr().String(), func() { httpSrv.Close() }, nil
	}
	singleTarget, stopSingle, err := startServer(server.New(single, server.Options{CacheSize: cacheSize}))
	if err != nil {
		return err
	}
	defer stopSingle()
	shardedTarget, stopSharded, err := startServer(server.New(sharded, server.Options{CacheSize: cacheSize}))
	if err != nil {
		return err
	}
	defer stopSharded()

	drive := func(label, target, mix string) (server.LoadReport, error) {
		report, err := server.RunLoad(server.LoadOptions{
			Target:      target,
			Concurrency: concurrency,
			Duration:    duration,
			Mix:         mix,
			K:           5,
			Radius:      radius,
			Seed:        1,
		})
		if err != nil {
			return report, fmt.Errorf("%s load run %q: %w", label, mix, err)
		}
		fmt.Printf("shard bench: %-7s %-6s %8.0f qps  p50 %6dµs  p95 %6dµs  p99 %6dµs  hit rate %4.1f%%\n",
			label, mix, report.QPS, report.P50US, report.P95US, report.P99US, 100*report.CacheHitRate)
		return report, nil
	}
	for _, mix := range []string{"knn", "within", "mixed"} {
		run := shardBenchRun{Mix: mix}
		if run.Single, err = drive("single", singleTarget, mix); err != nil {
			return err
		}
		if run.Sharded, err = drive("sharded", shardedTarget, mix); err != nil {
			return err
		}
		if run.Single.QPS > 0 {
			run.Speedup = run.Sharded.QPS / run.Single.QPS
		}
		result.Runs = append(result.Runs, run)
		fmt.Printf("shard bench: %-6s sharded/single throughput ×%.2f\n", mix, run.Speedup)
	}
	if m, err := server.ScrapeMetrics(singleTarget); err == nil {
		result.SingleMetrics = m
	}
	if m, err := server.ScrapeMetrics(shardedTarget); err == nil {
		result.ShardedMetrics = m
	}

	if err := writeJSONFile(outPath, result); err != nil {
		return err
	}
	fmt.Printf("shard bench: wrote %s\n", outPath)
	return nil
}

// serveBenchResult is the schema of BENCH_serve.json: one serving
// benchmark run per workload mix against a single in-process roadd.
type serveBenchResult struct {
	GeneratedUnix int64               `json:"generated_unix"`
	Network       string              `json:"network"`
	Scale         float64             `json:"scale"`
	Nodes         int                 `json:"nodes"`
	Edges         int                 `json:"edges"`
	Objects       int                 `json:"objects"`
	BuildMS       int64               `json:"build_ms"`
	IndexKB       int64               `json:"index_kb"`
	CacheEntries  int                 `json:"cache_entries"`
	Runs          []server.LoadReport `json:"runs"`
	// Metrics is the server's /metrics series (buckets elided) scraped
	// after all mixes ran — the server-side counter view of the load the
	// runs applied: total pops, cache traffic, error counts.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// runServeBench builds a scaled CA index, serves it on an ephemeral
// localhost port, drives the load generator through each workload mix,
// and writes the aggregate report to outPath.
func runServeBench(scale float64, objects, concurrency int, duration time.Duration, cacheSize int, outPath string) error {
	spec := dataset.Scaled(dataset.CA(), scale)
	fmt.Printf("serve bench: generating %s ×%.2f (%d nodes)...\n", spec.Name, scale, spec.Nodes)
	g := dataset.MustGenerate(spec)
	set := dataset.PlaceUniform(g, objects, 1, 0, 1, 2, 3)

	buildStart := time.Now()
	db, err := road.OpenWithObjects(road.FromGraph(g), set, road.Options{Seed: 1})
	if err != nil {
		return err
	}
	buildMS := time.Since(buildStart).Milliseconds()
	fmt.Printf("serve bench: built in %dms, index ≈ %d KB\n", buildMS, db.IndexSizeBytes()/1024)

	// Record the capacity the server actually resolves, not the raw flag.
	effCache := cacheSize
	switch {
	case effCache < 0:
		effCache = 0
	case effCache == 0:
		effCache = server.DefaultCacheSize
	}

	srv := server.New(db, server.Options{CacheSize: cacheSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	target := "http://" + ln.Addr().String()

	// A radius that keeps range queries selective at any scale: ~2% of
	// the network diameter.
	radius := g.EstimateDiameter() * 0.02

	result := serveBenchResult{
		GeneratedUnix: time.Now().Unix(),
		Network:       spec.Name,
		Scale:         scale,
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		Objects:       set.Len(),
		BuildMS:       buildMS,
		IndexKB:       db.IndexSizeBytes() / 1024,
		CacheEntries:  effCache,
	}
	for _, mix := range []string{"knn", "within", "mixed"} {
		report, err := server.RunLoad(server.LoadOptions{
			Target:      target,
			Concurrency: concurrency,
			Duration:    duration,
			Mix:         mix,
			K:           5,
			Radius:      radius,
			Seed:        1,
		})
		if err != nil {
			return fmt.Errorf("load run %q: %w", mix, err)
		}
		fmt.Printf("serve bench: %-6s %8.0f qps  p50 %6dµs  p95 %6dµs  p99 %6dµs  hit rate %4.1f%%\n",
			mix, report.QPS, report.P50US, report.P95US, report.P99US, 100*report.CacheHitRate)
		result.Runs = append(result.Runs, report)
	}
	if m, err := server.ScrapeMetrics(target); err == nil {
		result.Metrics = m
	}

	if err := writeJSONFile(outPath, result); err != nil {
		return err
	}
	fmt.Printf("serve bench: wrote %s\n", outPath)
	return nil
}
