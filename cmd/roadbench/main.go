// Command roadbench regenerates the paper's evaluation (§6): every table
// and figure, or a selected subset, printed as aligned text tables. With
// -serve it instead benchmarks the roadd serving subsystem in-process
// (load generator against an ephemeral HTTP server) and writes a
// machine-readable BENCH_serve.json for the perf trajectory.
//
// Usage:
//
//	roadbench                  # run every experiment at default scale
//	roadbench -fig fig17a      # one experiment
//	roadbench -list            # list experiment IDs
//	roadbench -full            # paper-scale NA/SF (slower)
//	roadbench -queries 100 -trials 100   # the paper's workload sizes
//	roadbench -serve           # serving benchmark -> BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"road"
	"road/internal/bench"
	"road/internal/dataset"
	"road/internal/server"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment ID to run (default: all)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		full    = flag.Bool("full", false, "run NA/SF at full paper scale")
		queries = flag.Int("queries", 50, "queries per data point")
		trials  = flag.Int("trials", 20, "trials per update experiment")
		budget  = flag.Float64("budget", 30, "soft per-approach seconds budget for update trials")

		serve       = flag.Bool("serve", false, "benchmark the roadd serving subsystem instead of the paper experiments")
		out         = flag.String("out", "BENCH_serve.json", "serve mode: output file")
		scale       = flag.Float64("scale", 0.25, "serve mode: CA network scale factor (0,1]")
		objects     = flag.Int("objects", 2000, "serve mode: objects placed uniformly")
		concurrency = flag.Int("concurrency", 8, "serve mode: load-generator workers")
		duration    = flag.Duration("duration", 5*time.Second, "serve mode: load length per mix")
		cacheSize   = flag.Int("cache", 0, "serve mode: result cache entries (negative disables)")
	)
	flag.Parse()

	if *serve {
		if err := runServeBench(*scale, *objects, *concurrency, *duration, *cacheSize, *out); err != nil {
			fmt.Fprintln(os.Stderr, "roadbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}

	opt := bench.DefaultOptions()
	opt.Full = opt.Full || *full
	opt.Queries = *queries
	opt.Trials = *trials
	opt.MaxApproachSeconds = *budget

	ids := bench.Order
	if *fig != "" {
		if _, ok := bench.Registry[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "roadbench: unknown experiment %q (use -list)\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	for _, id := range ids {
		start := time.Now()
		tbl, err := bench.Registry[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roadbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// serveBenchResult is the schema of BENCH_serve.json: one serving
// benchmark run per workload mix against a single in-process roadd.
type serveBenchResult struct {
	GeneratedUnix int64   `json:"generated_unix"`
	Network       string  `json:"network"`
	Scale         float64 `json:"scale"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Objects       int     `json:"objects"`
	BuildMS       int64   `json:"build_ms"`
	IndexKB       int64   `json:"index_kb"`
	CacheEntries  int     `json:"cache_entries"`
	Runs          []server.LoadReport `json:"runs"`
}

// runServeBench builds a scaled CA index, serves it on an ephemeral
// localhost port, drives the load generator through each workload mix,
// and writes the aggregate report to outPath.
func runServeBench(scale float64, objects, concurrency int, duration time.Duration, cacheSize int, outPath string) error {
	spec := dataset.Scaled(dataset.CA(), scale)
	fmt.Printf("serve bench: generating %s ×%.2f (%d nodes)...\n", spec.Name, scale, spec.Nodes)
	g := dataset.MustGenerate(spec)
	set := dataset.PlaceUniform(g, objects, 1, 0, 1, 2, 3)

	buildStart := time.Now()
	db, err := road.OpenWithObjects(road.FromGraph(g), set, road.Options{Seed: 1})
	if err != nil {
		return err
	}
	buildMS := time.Since(buildStart).Milliseconds()
	fmt.Printf("serve bench: built in %dms, index ≈ %d KB\n", buildMS, db.IndexSizeBytes()/1024)

	// Record the capacity the server actually resolves, not the raw flag.
	effCache := cacheSize
	switch {
	case effCache < 0:
		effCache = 0
	case effCache == 0:
		effCache = server.DefaultCacheSize
	}

	srv := server.New(db, server.Options{CacheSize: cacheSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	target := "http://" + ln.Addr().String()

	// A radius that keeps range queries selective at any scale: ~2% of
	// the network diameter.
	radius := g.EstimateDiameter() * 0.02

	result := serveBenchResult{
		GeneratedUnix: time.Now().Unix(),
		Network:       spec.Name,
		Scale:         scale,
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		Objects:       set.Len(),
		BuildMS:       buildMS,
		IndexKB:       db.IndexSizeBytes() / 1024,
		CacheEntries:  effCache,
	}
	for _, mix := range []string{"knn", "within", "mixed"} {
		report, err := server.RunLoad(server.LoadOptions{
			Target:      target,
			Concurrency: concurrency,
			Duration:    duration,
			Mix:         mix,
			K:           5,
			Radius:      radius,
			Seed:        1,
		})
		if err != nil {
			return fmt.Errorf("load run %q: %w", mix, err)
		}
		fmt.Printf("serve bench: %-6s %8.0f qps  p50 %6dµs  p99 %6dµs  hit rate %4.1f%%\n",
			mix, report.QPS, report.P50US, report.P99US, 100*report.CacheHitRate)
		result.Runs = append(result.Runs, report)
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(result); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("serve bench: wrote %s\n", outPath)
	return nil
}
