// Command roadbench regenerates the paper's evaluation (§6): every table
// and figure, or a selected subset, printed as aligned text tables.
//
// Usage:
//
//	roadbench                  # run every experiment at default scale
//	roadbench -fig fig17a      # one experiment
//	roadbench -list            # list experiment IDs
//	roadbench -full            # paper-scale NA/SF (slower)
//	roadbench -queries 100 -trials 100   # the paper's workload sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"road/internal/bench"
)

func main() {
	var (
		fig     = flag.String("fig", "", "experiment ID to run (default: all)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		full    = flag.Bool("full", false, "run NA/SF at full paper scale")
		queries = flag.Int("queries", 50, "queries per data point")
		trials  = flag.Int("trials", 20, "trials per update experiment")
		budget  = flag.Float64("budget", 30, "soft per-approach seconds budget for update trials")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}

	opt := bench.DefaultOptions()
	opt.Full = opt.Full || *full
	opt.Queries = *queries
	opt.Trials = *trials
	opt.MaxApproachSeconds = *budget

	ids := bench.Order
	if *fig != "" {
		if _, ok := bench.Registry[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "roadbench: unknown experiment %q (use -list)\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	for _, id := range ids {
		start := time.Now()
		tbl, err := bench.Registry[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "roadbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
