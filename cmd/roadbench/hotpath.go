package main

import (
	"fmt"
	"sort"
	"time"

	"road/internal/core"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/obs"
	"road/internal/rnet"
)

// hotpathLeg is one implementation's latency distribution over the query
// sample (microseconds, measured per query in-process).
type hotpathLeg struct {
	MeanUS float64 `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P90US  int64   `json:"p90_us"`
	P99US  int64   `json:"p99_us"`
	P999US int64   `json:"p999_us"`
	MaxUS  int64   `json:"max_us"`
}

// hotpathComparison pits the CSR session path against the retained
// page-store reference (same framework, same queries, same workspace
// discipline — the only variable is the traversal implementation).
type hotpathComparison struct {
	CSR         hotpathLeg `json:"csr"`
	Reference   hotpathLeg `json:"reference"`
	SpeedupP50  float64    `json:"speedup_p50"`
	SpeedupMean float64    `json:"speedup_mean"`
}

// hotpathNetResult is one network's section of BENCH_hotpath.json.
type hotpathNetResult struct {
	Network string  `json:"network"`
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	Objects int     `json:"objects"`
	BuildMS float64 `json:"build_ms"`
	// Radius is the derived range-query radius (the median 10-NN depth,
	// so range answers average ~10 objects on any network scale).
	Radius float64            `json:"radius"`
	KNN    hotpathComparison  `json:"knn"`
	Within hotpathComparison  `json:"within"`
	Path   *hotpathComparison `json:"path,omitempty"`
}

// hotpathBenchResult is the schema of BENCH_hotpath.json: the CSR
// hot-path overhaul measured against the reference implementation it
// replaced, on the paper's CA network at full scale plus a larger one.
type hotpathBenchResult struct {
	GeneratedUnix int64              `json:"generated_unix"`
	Queries       int                `json:"queries"`
	K             int                `json:"k"`
	MinSpeedup    float64            `json:"min_speedup,omitempty"`
	Networks      []hotpathNetResult `json:"networks"`
}

// measureLeg times fn once per query node (after a full warm-up pass
// that grows session scratch and materializes shortcut trees) and
// returns the latency distribution.
func measureLeg(starts []graph.NodeID, fn func(n graph.NodeID)) hotpathLeg {
	for _, n := range starts {
		fn(n)
	}
	lat := make([]time.Duration, 0, len(starts))
	var sum time.Duration
	for _, n := range starts {
		t0 := time.Now()
		fn(n)
		d := time.Since(t0)
		lat = append(lat, d)
		sum += d
	}
	obs.SortDurations(lat)
	return hotpathLeg{
		MeanUS: float64(sum.Microseconds()) / float64(len(lat)),
		P50US:  obs.PercentileDuration(lat, 0.50).Microseconds(),
		P90US:  obs.PercentileDuration(lat, 0.90).Microseconds(),
		P99US:  obs.PercentileDuration(lat, 0.99).Microseconds(),
		P999US: obs.PercentileDuration(lat, 0.999).Microseconds(),
		MaxUS:  lat[len(lat)-1].Microseconds(),
	}
}

func compareLegs(starts []graph.NodeID, ref, csr func(n graph.NodeID)) hotpathComparison {
	c := hotpathComparison{
		Reference: measureLeg(starts, ref),
		CSR:       measureLeg(starts, csr),
	}
	if c.CSR.P50US > 0 {
		c.SpeedupP50 = float64(c.Reference.P50US) / float64(c.CSR.P50US)
	}
	if c.CSR.MeanUS > 0 {
		c.SpeedupMean = c.Reference.MeanUS / c.CSR.MeanUS
	}
	return c
}

func runHotpathNet(spec dataset.Spec, objects, queries, k int) (hotpathNetResult, error) {
	fmt.Printf("hotpath bench: generating %s (%d nodes)...\n", spec.Name, spec.Nodes)
	g := dataset.MustGenerate(spec)
	set := dataset.PlaceUniform(g, objects, 7, 0, 1, 2, 3)
	cfg := core.Config{Rnet: rnet.DefaultConfig(g.NumNodes()), BufferPages: -1}
	cfg.Rnet.StorePaths = true
	buildStart := time.Now()
	f, err := core.Build(g, set, cfg)
	if err != nil {
		return hotpathNetResult{}, fmt.Errorf("building %s: %w", spec.Name, err)
	}
	res := hotpathNetResult{
		Network: spec.Name,
		Nodes:   g.NumNodes(),
		Edges:   g.NumEdges(),
		Objects: objects,
		BuildMS: float64(time.Since(buildStart).Microseconds()) / 1000,
	}

	csr := f.NewSession()
	ref := f.NewSession()
	ref.UseReferencePath(true)
	starts := dataset.RandomNodes(g, queries, 11)

	// Derive a self-scaling range radius: the median k-NN depth, so range
	// answers average ~k objects regardless of network scale or metric.
	probe := dataset.RandomNodes(g, 64, 13)
	var depths []float64
	for _, n := range probe {
		if r, _ := csr.KNN(core.Query{Node: n}, k); len(r) == k {
			depths = append(depths, r[k-1].Dist)
		}
	}
	if len(depths) == 0 {
		return hotpathNetResult{}, fmt.Errorf("%s: no node reaches %d objects", spec.Name, k)
	}
	sort.Float64s(depths)
	res.Radius = depths[len(depths)/2]

	buf := make([]core.Result, 0, 4096)
	fmt.Printf("hotpath bench: %s kNN (k=%d, %d queries per leg)...\n", spec.Name, k, queries)
	res.KNN = compareLegs(starts,
		func(n graph.NodeID) { buf, _ = ref.KNNAppend(buf[:0], core.Query{Node: n}, k) },
		func(n graph.NodeID) { buf, _ = csr.KNNAppend(buf[:0], core.Query{Node: n}, k) })
	fmt.Printf("hotpath bench: %s range (radius=%.3f)...\n", spec.Name, res.Radius)
	res.Within = compareLegs(starts,
		func(n graph.NodeID) { buf, _ = ref.RangeAppend(buf[:0], core.Query{Node: n}, res.Radius) },
		func(n graph.NodeID) { buf, _ = csr.RangeAppend(buf[:0], core.Query{Node: n}, res.Radius) })

	all := set.All()
	targets := make([]graph.ObjectID, len(starts))
	for i := range targets {
		targets[i] = all[(i*31)%len(all)].ID
	}
	fmt.Printf("hotpath bench: %s paths...\n", spec.Name)
	idx := 0
	pathLeg := func(s *core.Session) func(n graph.NodeID) {
		return func(n graph.NodeID) {
			_, _, _ = s.PathTo(core.Query{Node: n}, targets[idx%len(targets)])
			idx++
		}
	}
	p := compareLegs(starts, pathLeg(ref), pathLeg(csr))
	res.Path = &p
	return res, nil
}

// runHotpathBench measures the CSR hot path against the retained
// reference implementation on the paper's CA network at full scale plus
// a half-scale NA network, and writes BENCH_hotpath.json. When
// minSpeedup > 0 the run fails unless every network's kNN and range p50
// speedups reach it — the CI regression gate for the hot path.
func runHotpathBench(specs []dataset.Spec, objects, queries, k int, minSpeedup float64, outPath string) error {
	if queries < 100 {
		queries = 100
	}
	result := hotpathBenchResult{
		GeneratedUnix: time.Now().Unix(),
		Queries:       queries,
		K:             k,
		MinSpeedup:    minSpeedup,
	}
	for _, spec := range specs {
		net, err := runHotpathNet(spec, objects, queries, k)
		if err != nil {
			return err
		}
		fmt.Printf("hotpath bench: %s: kNN p50 %dus -> %dus (%.2fx), range p50 %dus -> %dus (%.2fx), path p50 %dus -> %dus (%.2fx)\n",
			net.Network,
			net.KNN.Reference.P50US, net.KNN.CSR.P50US, net.KNN.SpeedupP50,
			net.Within.Reference.P50US, net.Within.CSR.P50US, net.Within.SpeedupP50,
			net.Path.Reference.P50US, net.Path.CSR.P50US, net.Path.SpeedupP50)
		result.Networks = append(result.Networks, net)
	}
	if err := writeJSONFile(outPath, result); err != nil {
		return err
	}
	fmt.Printf("hotpath bench: wrote %s\n", outPath)
	if minSpeedup > 0 {
		for _, net := range result.Networks {
			for _, c := range []struct {
				kind string
				cmp  hotpathComparison
			}{{"knn", net.KNN}, {"within", net.Within}} {
				if c.cmp.SpeedupP50 < minSpeedup {
					return fmt.Errorf("%s %s p50 speedup %.2fx below required %.2fx",
						net.Network, c.kind, c.cmp.SpeedupP50, minSpeedup)
				}
			}
		}
		fmt.Printf("hotpath bench: all p50 speedups >= %.2fx\n", minSpeedup)
	}
	return nil
}
