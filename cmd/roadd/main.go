// Command roadd serves a ROAD index over HTTP/JSON: concurrent kNN /
// range / path queries on pooled sessions, epoch-guarded maintenance
// (edge re-weighting, road closures, object churn), an LRU result cache
// invalidated by maintenance, and a /stats endpoint.
//
// Usage:
//
//	roadd -net CA -objects 1000                 # synthetic network
//	roadd -load network.csv -addr :8080         # roadgen CSV
//
// Endpoints (see internal/server for the full reference):
//
//	GET  /knn?node=N&k=K[&attr=A]
//	GET  /within?node=N&radius=R[&attr=A]
//	GET  /path?node=N&object=O
//	POST /maintenance/{set-distance,close,reopen,add-road,
//	                   insert-object,delete-object,set-attr}
//	GET  /stats
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"road"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		load       = flag.String("load", "", "load network+objects from a roadgen CSV file instead of generating")
		net        = flag.String("net", "CA", "synthetic network: CA, NA or SF")
		scale      = flag.Float64("scale", 1, "network scale factor (0,1]")
		objects    = flag.Int("objects", 1000, "objects placed uniformly when generating")
		levels     = flag.Int("levels", 0, "Rnet hierarchy depth (0 = default)")
		seed       = flag.Int64("seed", 1, "placement seed")
		cacheSize  = flag.Int("cache", 0, "result cache entries (0 = default, negative disables)")
		storePaths = flag.Bool("paths", true, "retain shortcut waypoints so /path works (costs memory)")
	)
	flag.Parse()

	g, set, err := loadOrGenerate(*load, *net, *scale, *objects, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roadd:", err)
		os.Exit(1)
	}

	fmt.Printf("roadd: building index over %d nodes, %d edges, %d objects...\n",
		g.NumNodes(), g.NumEdges(), set.Len())
	start := time.Now()
	db, err := road.OpenWithObjects(road.FromGraph(g), set, road.Options{
		Levels:     *levels,
		StorePaths: *storePaths,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roadd:", err)
		os.Exit(1)
	}
	fmt.Printf("roadd: built in %v, index ≈ %d KB\n",
		time.Since(start).Round(time.Millisecond), db.IndexSizeBytes()/1024)

	srv := server.New(db, server.Options{CacheSize: *cacheSize})
	fmt.Printf("roadd: serving on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "roadd:", err)
		os.Exit(1)
	}
}

func loadOrGenerate(load, netName string, scale float64, objects int, seed int64) (*graph.Graph, *graph.ObjectSet, error) {
	if load != "" {
		file, err := os.Open(load)
		if err != nil {
			return nil, nil, err
		}
		defer file.Close()
		g, set, err := dataset.ReadCSV(file)
		if err != nil {
			return nil, nil, err
		}
		if set.Len() == 0 {
			set = dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3)
		}
		return g, set, nil
	}
	var spec dataset.Spec
	switch netName {
	case "CA":
		spec = dataset.CA()
	case "NA":
		spec = dataset.NA()
	case "SF":
		spec = dataset.SF()
	default:
		return nil, nil, fmt.Errorf("unknown network %q (want CA, NA or SF)", netName)
	}
	if scale != 1 {
		spec = dataset.Scaled(spec, scale)
	}
	g := dataset.MustGenerate(spec)
	return g, dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3), nil
}
