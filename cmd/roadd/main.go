// Command roadd serves a ROAD index over HTTP/JSON: concurrent kNN /
// range / path queries on pooled sessions, epoch-guarded maintenance
// (edge re-weighting, road closures, object churn), an LRU result cache
// invalidated by maintenance, a /stats endpoint — and durable restarts:
// with -snapshot the daemon reopens a previously saved index in O(load)
// instead of rebuilding in O(build), and with -journal every maintenance
// op is write-ahead logged and replayed over the snapshot on startup.
//
// With -shards K the network is split into K region shards along its
// top-level partition boundaries, one full ROAD index per shard behind a
// query router that answers cross-shard queries through recorded border
// distances. Each shard persists its own snapshot and journal (plus one
// manifest tying the global ID space together), /stats reports per-shard
// load, and every shard keeps its own epoch.
//
// Usage:
//
//	roadd -net CA -objects 1000                 # synthetic network
//	roadd -load network.csv -addr :8080         # roadgen CSV
//	roadd -net CA -snapshot ca.snap -journal ca.wal
//	                                            # durable: first start
//	                                            # builds + saves, later
//	                                            # starts load + replay
//	roadd -net CA -shards 4                     # sharded serving
//	roadd -net CA -shards 4 -snapshot ca.snap -journal ca.wal
//	                                            # per-shard ca.snap.N +
//	                                            # ca.snap.manifest, ca.wal.N
//	roadd -snapshot ca.snap -journal ca.wal -journal-max-bytes 1048576
//	                                            # auto-snapshot (and rotate
//	                                            # the journal) once it
//	                                            # outgrows 1 MiB
//
// With -shard-hosts the shards live in other processes entirely: roadd
// becomes a router over a fleet of roadshard hosts, keeping only the
// global mirror (identity maps, border tables) and shipping all shard
// compute over HTTP/JSON with pooled connections, bounded retries and
// hedged duplicates for straggling cross-shard reads. Hosts are health-
// checked continuously; a dead host fails only its own shards' calls
// (HTTP 503, code "shard_unavailable") and is re-adopted on return
// without a router restart. Persistence is host-owned in this mode:
// /admin/snapshot fans out to the fleet.
//
//	roadd -shard-hosts localhost:7071,localhost:7072
//
// With -query-timeout every read query runs under a per-request deadline
// plumbed through the road.Store context machinery: an expired search
// aborts cooperatively mid-expansion and the client receives HTTP 503
// with a typed error body ({"error":...,"code":"deadline_exceeded"}).
//
// Observability: GET /metrics exposes Prometheus text-format metrics
// (request rates and latency histograms per endpoint, per-query cost
// histograms, cache/pool/journal counters, per-shard load). Read
// queries accept &trace=1 to return a per-leg trace of the phases and
// shards the search visited. -slow-query DUR logs queries slower than
// DUR — with their traces — as JSON lines on stderr, and -query-log
// FILE records a sampled structured log of every query served (one
// JSON line each, size-rotated; see -query-log-sample and
// -query-log-max-bytes). Every query is stamped with a request ID that
// appears in the response, the query log and any slow-query line, so
// the three views of one request join trivially. GET /admin/workload
// reports the live workload model (query mix, per-shard heat, hot
// nodes, repeat-query clusters) over an in-memory rolling window of
// recent queries (-workload-window); the roadlog tool computes the
// same model offline from a -query-log file. On a -shard-hosts router,
// GET /fleet reports per-host health, RPC latency percentiles and
// hedging counters, and &trace=1 traces continue across process
// boundaries: each rpc leg nests the host-side legs (queue wait,
// search compute, journal fsync) under sub, with wire time separated.
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
//
// Endpoints (see internal/server for the full reference):
//
//	GET  /knn?node=N&k=K[&attr=A][&budget=B][&trace=1]
//	GET  /within?node=N&radius=R[&attr=A][&budget=B][&trace=1]
//	GET  /path?node=N&object=O[&trace=1]
//	POST /batch                      [{"knn":{"from":N,"k":K}},...]
//	POST /maintenance/{set-distance,close,reopen,add-road,
//	                   insert-object,delete-object,set-attr}
//	POST /admin/snapshot
//	GET  /admin/workload
//	GET  /stats
//	GET  /metrics
//	GET  /fleet                      (remote deployments)
//	GET  /healthz
//
// On SIGTERM/SIGINT a -snapshot daemon persists a final snapshot (with
// the store quiesced, so it is epoch-consistent) before exiting. Every
// successful snapshot save also rotates the journal(s), dropping entries
// the snapshot already includes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"road"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/obs"
	"road/internal/server"
	"road/internal/version"
)

// config collects the daemon's flag values; a struct rather than a
// parameter list so call sites cannot silently transpose same-typed
// arguments.
type config struct {
	addr            string
	load            string
	net             string
	scale           float64
	objects         int
	levels          int
	seed            int64
	cacheSize       int
	storePaths      bool
	shards          int
	shardHosts      string
	queryTimeout    time.Duration
	snapPath        string
	journalPath     string
	journalSync     bool
	journalMaxBytes int64
	slowQuery       time.Duration
	queryLogPath    string
	queryLogSample  int
	queryLogMax     int64
	workloadWindow  int
	pprof           bool

	qlog *obs.QueryLog // opened from queryLogPath before the server starts
}

// serverOptions translates the daemon flags shared by both deployment
// shapes into serving-subsystem options.
func (c config) serverOptions() server.Options {
	return server.Options{
		CacheSize:          c.cacheSize,
		QueryTimeout:       c.queryTimeout,
		SlowQueryThreshold: c.slowQuery,
		QueryLog:           c.qlog,
		WorkloadWindow:     c.workloadWindow,
		Pprof:              c.pprof,
	}
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7070", "listen address")
	flag.StringVar(&cfg.load, "load", "", "load network+objects from a roadgen CSV file instead of generating")
	flag.StringVar(&cfg.net, "net", "CA", "synthetic network: CA, NA or SF")
	flag.Float64Var(&cfg.scale, "scale", 1, "network scale factor (0,1]")
	flag.IntVar(&cfg.objects, "objects", 1000, "objects placed uniformly when generating")
	flag.IntVar(&cfg.levels, "levels", 0, "Rnet hierarchy depth (0 = default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "placement seed")
	flag.IntVar(&cfg.cacheSize, "cache", 0, "result cache entries (0 = default, negative disables)")
	flag.BoolVar(&cfg.storePaths, "paths", true, "retain shortcut waypoints so /path works (costs memory; sharded serving reconstructs paths without them)")
	flag.IntVar(&cfg.shards, "shards", 1, "serve K region shards behind a query router (power of two ≥ 2; 1 = single index)")
	flag.StringVar(&cfg.shardHosts, "shard-hosts", "", "serve as a router over out-of-process roadshard hosts (comma-separated addresses); every shard of the deployment must be served by exactly one host")
	flag.DurationVar(&cfg.queryTimeout, "query-timeout", 0, "per-request deadline for read queries; an expired query aborts mid-search and answers HTTP 503 with code \"deadline_exceeded\" (0 disables)")
	flag.StringVar(&cfg.snapPath, "snapshot", "", "snapshot file: load it if present (skipping the build), create it otherwise; enables /admin/snapshot and snapshot-on-SIGTERM. With -shards this is a path prefix (prefix.N per shard + prefix.manifest)")
	flag.StringVar(&cfg.journalPath, "journal", "", "write-ahead journal file: maintenance ops are logged before they apply and replayed over the snapshot on startup. With -shards this is a path prefix (prefix.N per shard)")
	flag.BoolVar(&cfg.journalSync, "journal-sync", false, "fsync the journal after every op (durable against machine crashes, slower)")
	flag.Int64Var(&cfg.journalMaxBytes, "journal-max-bytes", 0, "auto-snapshot (and rotate the journal) when the journal exceeds this many bytes (0 disables)")
	flag.DurationVar(&cfg.slowQuery, "slow-query", 0, "log queries slower than this — with per-leg traces — as JSON lines on stderr (0 disables)")
	flag.StringVar(&cfg.queryLogPath, "query-log", "", "append a sampled structured query log (JSON lines) to this file")
	flag.IntVar(&cfg.queryLogSample, "query-log-sample", 1, "log every Nth query (1 logs all)")
	flag.Int64Var(&cfg.queryLogMax, "query-log-max-bytes", 0, "rotate the query log to FILE.1 when it exceeds this many bytes (0 = 64 MiB)")
	flag.IntVar(&cfg.workloadWindow, "workload-window", 0, "queries kept in the in-memory rolling window behind /admin/workload (0 = default 4096, negative disables the endpoint)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("roadd"))
		return
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "roadd:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.queryLogPath != "" {
		qlog, err := obs.OpenQueryLog(cfg.queryLogPath, cfg.queryLogSample, cfg.queryLogMax)
		if err != nil {
			return err
		}
		defer qlog.Close()
		cfg.qlog = qlog
	}
	var srv *server.Server
	var journalSize func() int64
	var closeJournals func() error
	var err error
	switch {
	case cfg.shardHosts != "":
		srv, journalSize, closeJournals, err = setupRemote(cfg)
	case cfg.shards > 1:
		srv, journalSize, closeJournals, err = setupSharded(cfg)
	default:
		srv, journalSize, closeJournals, err = setupSingle(cfg)
	}
	if err != nil {
		return err
	}
	if closeJournals != nil {
		// Close (and thereby fsync) the journals on the way out, so a
		// clean shutdown leaves every acknowledged op on stable storage
		// even without -journal-sync.
		defer closeJournals()
	}
	return serve(cfg, srv, journalSize)
}

// serve runs the HTTP front end, the optional journal-size watcher, and
// the shutdown path shared by single-index and sharded deployments.
func serve(cfg config, srv *server.Server, journalSize func() int64) error {
	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("roadd: serving on %s\n", cfg.addr)

	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	if cfg.journalMaxBytes > 0 && cfg.snapPath != "" && cfg.journalPath != "" {
		go watchJournal(srv, journalSize, cfg.journalMaxBytes, stopWatch, watchDone)
	} else {
		close(watchDone)
	}
	// stopWatcher joins the auto-snapshot goroutine so an in-flight
	// snapshot cannot race the final snapshot or the journal close.
	stopWatcher := func() {
		close(stopWatch)
		<-watchDone
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		stopWatcher()
		return err
	case sig := <-sigc:
		stopWatcher()
		fmt.Printf("roadd: %v: shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Drain in-flight requests before the final snapshot: an apply
		// still running while the snapshot rotates (and the deferred
		// close closes) the journals could be acknowledged but lost. If
		// the drain deadline expires, hard-close the stragglers so
		// nothing races the persistence below.
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Printf("roadd: drain incomplete (%v), closing connections\n", err)
			httpSrv.Close()
		}
		if cfg.snapPath != "" {
			epoch, seq, bytes, err := srv.TakeSnapshot()
			if err != nil {
				return fmt.Errorf("final snapshot: %w", err)
			}
			fmt.Printf("roadd: final snapshot %s (epoch %d, journal seq %d, %d bytes)\n", cfg.snapPath, epoch, seq, bytes)
		}
		return nil
	}
}

// watchJournal polls the journal size and triggers an auto-snapshot —
// which rotates the journal, shrinking it back to its header — whenever
// the configured bound is exceeded.
func watchJournal(srv *server.Server, size func() int64, maxBytes int64, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if size() <= maxBytes {
				continue
			}
			epoch, seq, bytes, err := srv.TakeSnapshot()
			if err != nil {
				fmt.Printf("roadd: auto-snapshot failed: %v\n", err)
				continue
			}
			fmt.Printf("roadd: journal exceeded %d bytes: auto-snapshot (epoch %d, seq %d, %d bytes), journal rotated\n",
				maxBytes, epoch, seq, bytes)
		}
	}
}

// --- Single-index deployment ---

func setupSingle(cfg config) (*server.Server, func() int64, func() error, error) {
	// Stat the snapshot exactly once: "absent" means build-and-create, but
	// any other stat failure (unreadable parent, permission) must surface —
	// silently running unpersisted would only be discovered at the next
	// restart.
	snapExists, err := usableFile(cfg.snapPath)
	if err != nil {
		return nil, nil, nil, err
	}

	db, err := openDB(cfg, snapExists)
	if err != nil {
		return nil, nil, nil, err
	}

	// Journal: replay whatever the base state (snapshot or fresh build)
	// does not include, then attach so new ops are write-ahead logged.
	closeJournal := func() error { return nil }
	if cfg.journalPath != "" {
		journal, err := road.OpenJournal(cfg.journalPath)
		if err != nil {
			return nil, nil, nil, err
		}
		closeJournal = journal.Close
		journal.SyncEachAppend = cfg.journalSync
		start := time.Now()
		applied, rerr := db.ReplayJournal(journal)
		if rerr != nil {
			if !road.IsReplayOpError(rerr) {
				// Fatal: the journal could not be fully read; serving now
				// would silently drop the unapplied tail.
				return nil, nil, nil, fmt.Errorf("journal replay: %w", rerr)
			}
			// Expected: an op that failed live fails identically on replay.
			fmt.Printf("roadd: journal replay note: %v\n", rerr)
		}
		if applied > 0 {
			fmt.Printf("roadd: replayed %d journaled ops in %v (epoch %d)\n",
				applied, time.Since(start).Round(time.Millisecond), db.Epoch())
		}
		if err := db.AttachJournal(journal); err != nil {
			return nil, nil, nil, err
		}
	}

	// First run with -snapshot: persist the built (and replayed) index so
	// the next start is O(load).
	if cfg.snapPath != "" && !snapExists {
		if err := db.SaveSnapshotFile(cfg.snapPath); err != nil {
			return nil, nil, nil, err
		}
		fmt.Printf("roadd: wrote initial snapshot %s\n", cfg.snapPath)
	}

	opts := cfg.serverOptions()
	if cfg.snapPath != "" {
		opts.SnapshotSave = func() (int64, error) {
			if err := db.Save(cfg.snapPath); err != nil {
				return 0, err
			}
			// Rotate right after the save, under the same exclusion: the
			// dropped entries are exactly the ones the snapshot includes.
			if err := db.CompactJournal(); err != nil {
				return 0, fmt.Errorf("rotating journal: %w", err)
			}
			return fileSize(cfg.snapPath), nil
		}
	}
	return server.New(db, opts), db.JournalSizeBytes, closeJournal, nil
}

// --- Sharded deployment ---

func setupSharded(cfg config) (*server.Server, func() int64, func() error, error) {
	snapExists, err := usableFile(manifestPathOrEmpty(cfg.snapPath))
	if err != nil {
		return nil, nil, nil, err
	}

	var db *road.ShardedDB
	if snapExists {
		start := time.Now()
		db, err = road.OpenShardedSnapshotFiles(cfg.snapPath)
		if err != nil {
			return nil, nil, nil, err
		}
		fmt.Printf("roadd: loaded %d shard snapshots under %s in %v (%d nodes, %d edges, %d objects)\n",
			db.NumShards(), cfg.snapPath, time.Since(start).Round(time.Millisecond),
			db.NumNodes(), db.NumRoads(), db.NumObjects())
	} else {
		g, set, err := loadOrGenerate(cfg.load, cfg.net, cfg.scale, cfg.objects, cfg.seed)
		if err != nil {
			return nil, nil, nil, err
		}
		fmt.Printf("roadd: building %d shards over %d nodes, %d edges, %d objects...\n",
			cfg.shards, g.NumNodes(), g.NumEdges(), set.Len())
		start := time.Now()
		db, err = road.OpenShardedWithObjects(road.FromGraph(g), set, road.Options{
			Levels: cfg.levels,
			Seed:   cfg.seed,
		}, cfg.shards)
		if err != nil {
			return nil, nil, nil, err
		}
		fmt.Printf("roadd: built in %v, index ≈ %d KB across %d shards\n",
			time.Since(start).Round(time.Millisecond), db.IndexSizeBytes()/1024, db.NumShards())
	}

	if cfg.journalPath != "" {
		journals, err := db.OpenShardJournals(cfg.journalPath, cfg.journalSync)
		if err != nil {
			return nil, nil, nil, err
		}
		start := time.Now()
		applied, rerr := db.ReplayJournals(journals)
		if rerr != nil {
			if !road.IsReplayOpError(rerr) {
				return nil, nil, nil, fmt.Errorf("shard journal replay: %w", rerr)
			}
			fmt.Printf("roadd: journal replay note: %v\n", rerr)
		}
		if applied > 0 {
			fmt.Printf("roadd: replayed %d journaled ops across %d shard journals in %v (epoch %d)\n",
				applied, db.NumShards(), time.Since(start).Round(time.Millisecond), db.Epoch())
		}
		if err := db.AttachJournals(journals); err != nil {
			return nil, nil, nil, err
		}
	}

	if cfg.snapPath != "" && !snapExists {
		if err := db.SaveSnapshotFiles(cfg.snapPath); err != nil {
			return nil, nil, nil, err
		}
		fmt.Printf("roadd: wrote initial shard snapshots under %s\n", cfg.snapPath)
	}

	opts := cfg.serverOptions()
	if cfg.snapPath != "" {
		opts.SnapshotSave = func() (int64, error) {
			if err := db.Save(cfg.snapPath); err != nil {
				return 0, err
			}
			if err := db.CompactJournal(); err != nil {
				return 0, fmt.Errorf("rotating shard journals: %w", err)
			}
			total := fileSize(road.ShardManifestPath(cfg.snapPath))
			for i := 0; i < db.NumShards(); i++ {
				total += fileSize(road.ShardSnapshotPath(cfg.snapPath, i))
			}
			return total, nil
		}
	}
	return server.New(db, opts), db.JournalSizeBytes, db.CloseJournals, nil
}

// --- Remote deployment (router over roadshard hosts) ---

// setupRemote connects the router to a fleet of out-of-process roadshard
// hosts. Persistence is host-owned: /admin/snapshot fans out to every
// host (each snapshots its shards and rotates its journals), and
// snapshot-on-shutdown is skipped — hosts persist on their own SIGTERM.
func setupRemote(cfg config) (*server.Server, func() int64, func() error, error) {
	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	hosts := strings.Split(cfg.shardHosts, ",")
	for i := range hosts {
		hosts[i] = strings.TrimSpace(hosts[i])
	}
	start := time.Now()
	db, err := road.OpenRemote(ctx, hosts, road.RemoteOptions{Registry: reg})
	if err != nil {
		return nil, nil, nil, err
	}
	fmt.Printf("roadd: assembled router over %d hosts serving %d shards in %v (%d nodes, %d edges, %d objects)\n",
		len(hosts), db.NumShards(), time.Since(start).Round(time.Millisecond),
		db.NumNodes(), db.NumRoads(), db.NumObjects())

	opts := cfg.serverOptions()
	opts.AuxMetrics = []*obs.Registry{reg}
	opts.SnapshotSave = func() (int64, error) {
		// Size is host-local; report 0 rather than guessing.
		return 0, db.Save("")
	}
	closeFleet := func() error { db.Close(); return nil }
	return server.New(db, opts), db.JournalSizeBytes, closeFleet, nil
}

// --- Shared helpers ---

// usableFile reports whether path names an existing file; an empty path
// is simply absent, any stat error other than non-existence is fatal.
func usableFile(path string) (bool, error) {
	if path == "" {
		return false, nil
	}
	switch _, err := os.Stat(path); {
	case err == nil:
		return true, nil
	case os.IsNotExist(err):
		return false, nil
	default:
		return false, fmt.Errorf("snapshot %s: %w", path, err)
	}
}

func manifestPathOrEmpty(prefix string) string {
	if prefix == "" {
		return ""
	}
	return road.ShardManifestPath(prefix)
}

func fileSize(path string) int64 {
	info, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return info.Size()
}

// openDB produces the base DB state: a snapshot load when -snapshot names
// an existing file, a fresh build otherwise.
func openDB(cfg config, snapExists bool) (*road.DB, error) {
	if snapExists {
		start := time.Now()
		db, err := road.OpenSnapshotFile(cfg.snapPath)
		if err != nil {
			return nil, err
		}
		f := db.Framework()
		fmt.Printf("roadd: loaded snapshot %s in %v (%d nodes, %d edges, %d objects; built in %v originally)\n",
			cfg.snapPath, time.Since(start).Round(time.Millisecond),
			f.Graph().NumNodes(), f.Graph().NumEdges(), f.Objects().Len(),
			f.BuildTime.Round(time.Millisecond))
		return db, nil
	}

	g, set, err := loadOrGenerate(cfg.load, cfg.net, cfg.scale, cfg.objects, cfg.seed)
	if err != nil {
		return nil, err
	}
	fmt.Printf("roadd: building index over %d nodes, %d edges, %d objects...\n",
		g.NumNodes(), g.NumEdges(), set.Len())
	start := time.Now()
	db, err := road.OpenWithObjects(road.FromGraph(g), set, road.Options{
		Levels:     cfg.levels,
		StorePaths: cfg.storePaths,
		Seed:       cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("roadd: built in %v, index ≈ %d KB\n",
		time.Since(start).Round(time.Millisecond), db.IndexSizeBytes()/1024)
	return db, nil
}

func loadOrGenerate(load, netName string, scale float64, objects int, seed int64) (*graph.Graph, *graph.ObjectSet, error) {
	if load != "" {
		file, err := os.Open(load)
		if err != nil {
			return nil, nil, err
		}
		defer file.Close()
		g, set, err := dataset.ReadCSV(file)
		if err != nil {
			return nil, nil, err
		}
		if set.Len() == 0 {
			set = dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3)
		}
		return g, set, nil
	}
	var spec dataset.Spec
	switch netName {
	case "CA":
		spec = dataset.CA()
	case "NA":
		spec = dataset.NA()
	case "SF":
		spec = dataset.SF()
	default:
		return nil, nil, fmt.Errorf("unknown network %q (want CA, NA or SF)", netName)
	}
	if scale != 1 {
		spec = dataset.Scaled(spec, scale)
	}
	g := dataset.MustGenerate(spec)
	return g, dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3), nil
}
