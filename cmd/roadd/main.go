// Command roadd serves a ROAD index over HTTP/JSON: concurrent kNN /
// range / path queries on pooled sessions, epoch-guarded maintenance
// (edge re-weighting, road closures, object churn), an LRU result cache
// invalidated by maintenance, a /stats endpoint — and durable restarts:
// with -snapshot the daemon reopens a previously saved index in O(load)
// instead of rebuilding in O(build), and with -journal every maintenance
// op is write-ahead logged and replayed over the snapshot on startup.
//
// Usage:
//
//	roadd -net CA -objects 1000                 # synthetic network
//	roadd -load network.csv -addr :8080         # roadgen CSV
//	roadd -net CA -snapshot ca.snap -journal ca.wal
//	                                            # durable: first start
//	                                            # builds + saves, later
//	                                            # starts load + replay
//
// Endpoints (see internal/server for the full reference):
//
//	GET  /knn?node=N&k=K[&attr=A]
//	GET  /within?node=N&radius=R[&attr=A]
//	GET  /path?node=N&object=O
//	POST /maintenance/{set-distance,close,reopen,add-road,
//	                   insert-object,delete-object,set-attr}
//	POST /admin/snapshot
//	GET  /stats
//	GET  /healthz
//
// On SIGTERM/SIGINT a -snapshot daemon persists a final snapshot (under
// the write lock, so it is epoch-consistent) before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"road"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/server"
)

// config collects the daemon's flag values; a struct rather than a
// parameter list so call sites cannot silently transpose same-typed
// arguments.
type config struct {
	addr        string
	load        string
	net         string
	scale       float64
	objects     int
	levels      int
	seed        int64
	cacheSize   int
	storePaths  bool
	snapPath    string
	journalPath string
	journalSync bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7070", "listen address")
	flag.StringVar(&cfg.load, "load", "", "load network+objects from a roadgen CSV file instead of generating")
	flag.StringVar(&cfg.net, "net", "CA", "synthetic network: CA, NA or SF")
	flag.Float64Var(&cfg.scale, "scale", 1, "network scale factor (0,1]")
	flag.IntVar(&cfg.objects, "objects", 1000, "objects placed uniformly when generating")
	flag.IntVar(&cfg.levels, "levels", 0, "Rnet hierarchy depth (0 = default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "placement seed")
	flag.IntVar(&cfg.cacheSize, "cache", 0, "result cache entries (0 = default, negative disables)")
	flag.BoolVar(&cfg.storePaths, "paths", true, "retain shortcut waypoints so /path works (costs memory)")
	flag.StringVar(&cfg.snapPath, "snapshot", "", "snapshot file: load it if present (skipping the build), create it otherwise; enables /admin/snapshot and snapshot-on-SIGTERM")
	flag.StringVar(&cfg.journalPath, "journal", "", "write-ahead journal file: maintenance ops are logged before they apply and replayed over the snapshot on startup")
	flag.BoolVar(&cfg.journalSync, "journal-sync", false, "fsync the journal after every op (durable against machine crashes, slower)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "roadd:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	// Stat the snapshot exactly once: "absent" means build-and-create, but
	// any other stat failure (unreadable parent, permission) must surface —
	// silently running unpersisted would only be discovered at the next
	// restart.
	snapExists := false
	if cfg.snapPath != "" {
		switch _, err := os.Stat(cfg.snapPath); {
		case err == nil:
			snapExists = true
		case os.IsNotExist(err):
		default:
			return fmt.Errorf("snapshot %s: %w", cfg.snapPath, err)
		}
	}

	db, err := openDB(cfg, snapExists)
	if err != nil {
		return err
	}

	// Journal: replay whatever the base state (snapshot or fresh build)
	// does not include, then attach so new ops are write-ahead logged.
	var journal *road.Journal
	if cfg.journalPath != "" {
		journal, err = road.OpenJournal(cfg.journalPath)
		if err != nil {
			return err
		}
		defer journal.Close()
		journal.SyncEachAppend = cfg.journalSync
		start := time.Now()
		applied, rerr := db.ReplayJournal(journal)
		if rerr != nil {
			if !road.IsReplayOpError(rerr) {
				// Fatal: the journal could not be fully read; serving now
				// would silently drop the unapplied tail.
				return fmt.Errorf("journal replay: %w", rerr)
			}
			// Expected: an op that failed live fails identically on replay.
			fmt.Printf("roadd: journal replay note: %v\n", rerr)
		}
		if applied > 0 {
			fmt.Printf("roadd: replayed %d journaled ops in %v (epoch %d)\n",
				applied, time.Since(start).Round(time.Millisecond), db.Epoch())
		}
		if err := db.AttachJournal(journal); err != nil {
			return err
		}
	}

	// First run with -snapshot: persist the built (and replayed) index so
	// the next start is O(load).
	if cfg.snapPath != "" && !snapExists {
		if err := db.SaveSnapshotFile(cfg.snapPath); err != nil {
			return err
		}
		fmt.Printf("roadd: wrote initial snapshot %s\n", cfg.snapPath)
	}

	opts := server.Options{CacheSize: cfg.cacheSize}
	if cfg.snapPath != "" {
		opts.SnapshotSave = func() error { return db.SaveSnapshotFile(cfg.snapPath) }
	}
	srv := server.New(db, opts)

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("roadd: serving on %s\n", cfg.addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("roadd: %v: shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		if cfg.snapPath != "" {
			epoch, seq, err := srv.TakeSnapshot()
			if err != nil {
				return fmt.Errorf("final snapshot: %w", err)
			}
			fmt.Printf("roadd: final snapshot %s (epoch %d, journal seq %d)\n", cfg.snapPath, epoch, seq)
		}
		return nil
	}
}

// openDB produces the base DB state: a snapshot load when -snapshot names
// an existing file, a fresh build otherwise.
func openDB(cfg config, snapExists bool) (*road.DB, error) {
	if snapExists {
		start := time.Now()
		db, err := road.OpenSnapshotFile(cfg.snapPath)
		if err != nil {
			return nil, err
		}
		f := db.Framework()
		fmt.Printf("roadd: loaded snapshot %s in %v (%d nodes, %d edges, %d objects; built in %v originally)\n",
			cfg.snapPath, time.Since(start).Round(time.Millisecond),
			f.Graph().NumNodes(), f.Graph().NumEdges(), f.Objects().Len(),
			f.BuildTime.Round(time.Millisecond))
		return db, nil
	}

	g, set, err := loadOrGenerate(cfg.load, cfg.net, cfg.scale, cfg.objects, cfg.seed)
	if err != nil {
		return nil, err
	}
	fmt.Printf("roadd: building index over %d nodes, %d edges, %d objects...\n",
		g.NumNodes(), g.NumEdges(), set.Len())
	start := time.Now()
	db, err := road.OpenWithObjects(road.FromGraph(g), set, road.Options{
		Levels:     cfg.levels,
		StorePaths: cfg.storePaths,
		Seed:       cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("roadd: built in %v, index ≈ %d KB\n",
		time.Since(start).Round(time.Millisecond), db.IndexSizeBytes()/1024)
	return db, nil
}

func loadOrGenerate(load, netName string, scale float64, objects int, seed int64) (*graph.Graph, *graph.ObjectSet, error) {
	if load != "" {
		file, err := os.Open(load)
		if err != nil {
			return nil, nil, err
		}
		defer file.Close()
		g, set, err := dataset.ReadCSV(file)
		if err != nil {
			return nil, nil, err
		}
		if set.Len() == 0 {
			set = dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3)
		}
		return g, set, nil
	}
	var spec dataset.Spec
	switch netName {
	case "CA":
		spec = dataset.CA()
	case "NA":
		spec = dataset.NA()
	case "SF":
		spec = dataset.SF()
	default:
		return nil, nil, fmt.Errorf("unknown network %q (want CA, NA or SF)", netName)
	}
	if scale != 1 {
		spec = dataset.Scaled(spec, scale)
	}
	g := dataset.MustGenerate(spec)
	return g, dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3), nil
}
