// Command roadshard hosts a subset of a sharded ROAD deployment's region
// shards in its own process, serving the shard compute surface over
// HTTP/JSON to a roadd router running with -shard-hosts: watched searches
// with entry-distance bounds, per-shard path legs, journaled mutation
// applies, routing-state export for router (re-)adoption, and snapshot
// administration.
//
// A host boots from the same on-disk layout the in-process sharded
// deployment writes (prefix.N snapshots + prefix.manifest), replays its
// write-ahead journals over the loaded snapshots, and serves only the
// shard IDs named by -shards. Mutations are journaled BEFORE they are
// applied or acknowledged, so a crashed host recovers every op it
// acknowledged — the router re-adopts it without restarting.
//
// Usage:
//
//	# Bootstrap: first host builds the 4-shard deployment files, serves 0,1.
//	roadshard -snapshot /data/ca -journal /data/ca.wal -net CA \
//	          -fleet-shards 4 -shards 0,1 -addr :7071
//	# Second host serves 2,3 off the same files.
//	roadshard -snapshot /data/ca -journal /data/ca.wal -shards 2,3 -addr :7072
//	# Router over both.
//	roadd -shard-hosts localhost:7071,localhost:7072
//
// Endpoints (see internal/shard/remote for the wire contract):
//
//	GET  /healthz               served shard IDs + journal seqs + version
//	GET  /state/{id}            exported routing state (borders, btable, ids)
//	POST /shard/{id}/search     watched search (entry-distance bounded)
//	POST /shard/{id}/leg        path leg reconstruction
//	POST /shard/{id}/apply      journaled mutation apply
//	GET  /shard/{id}/object/{lo}
//	POST /admin/snapshot        snapshot all served shards, rotate journals
//	GET  /metrics
//
// On SIGTERM/SIGINT the host drains in-flight requests, persists a final
// snapshot of every served shard, and closes its journals.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"road"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/obs"
	"road/internal/shard/remote"
	"road/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", ":7071", "listen address")
		shards      = flag.String("shards", "", "comma-separated shard IDs this host serves (required), e.g. 0,1")
		snapPrefix  = flag.String("snapshot", "", "deployment snapshot path prefix (required): prefix.N per shard + prefix.manifest")
		jourPrefix  = flag.String("journal", "", "write-ahead journal path prefix: prefix.N per served shard (default: <snapshot>.wal)")
		jourSync    = flag.Bool("journal-sync", false, "fsync the journal after every op before acknowledging")
		netName     = flag.String("net", "", "bootstrap: if the manifest is absent, build this synthetic network (CA, NA or SF) and write the deployment files first")
		load        = flag.String("load", "", "bootstrap from a roadgen CSV file instead of a synthetic network")
		scale       = flag.Float64("scale", 1, "bootstrap network scale factor (0,1]")
		objects     = flag.Int("objects", 1000, "bootstrap objects placed uniformly")
		levels      = flag.Int("levels", 0, "bootstrap Rnet hierarchy depth (0 = default)")
		seed        = flag.Int64("seed", 1, "bootstrap placement seed")
		fleetShards = flag.Int("fleet-shards", 2, "bootstrap: total shards in the deployment (power of two ≥ 2)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("roadshard"))
		return
	}
	if err := run(*addr, *shards, *snapPrefix, *jourPrefix, *jourSync,
		*netName, *load, *scale, *objects, *levels, *seed, *fleetShards, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "roadshard:", err)
		os.Exit(1)
	}
}

func run(addr, shards, snapPrefix, jourPrefix string, jourSync bool,
	netName, load string, scale float64, objects, levels int, seed int64, fleetShards int, pprofOn bool) error {
	if snapPrefix == "" {
		return fmt.Errorf("-snapshot is required")
	}
	ids, err := parseShardIDs(shards)
	if err != nil {
		return err
	}
	if jourPrefix == "" {
		jourPrefix = snapPrefix + ".wal"
	}

	if netName != "" || load != "" {
		if err := bootstrap(snapPrefix, netName, load, scale, objects, levels, seed, fleetShards); err != nil {
			return err
		}
	}

	reg := obs.NewRegistry()
	start := time.Now()
	host, err := remote.OpenHost(ids, remote.HostConfig{
		SnapshotPrefix: snapPrefix,
		JournalPrefix:  jourPrefix,
		SyncJournal:    jourSync,
		Registry:       reg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("roadshard: serving shards %v of %s on %s (loaded in %v)\n",
		host.ShardIDs(), snapPrefix, addr, time.Since(start).Round(time.Millisecond))

	handler := host.Handler()
	if pprofOn {
		// The host's mux is private, so profiling mounts on a wrapper:
		// /debug/pprof/ is answered here, everything else falls through.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		host.Close()
		return err
	case sig := <-sigc:
		fmt.Printf("roadshard: %v: shutting down\n", sig)
		// Drain in-flight RPCs before the final snapshot closes the
		// journals; if the drain deadline expires, hard-close the
		// remaining connections so no apply can race the close.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Printf("roadshard: drain incomplete (%v), closing connections\n", err)
			httpSrv.Close()
		}
		if err := host.SnapshotAll(); err != nil {
			host.Close()
			return fmt.Errorf("final snapshot: %w", err)
		}
		fmt.Printf("roadshard: final snapshot under %s\n", snapPrefix)
		return host.Close()
	}
}

func parseShardIDs(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-shards is required (comma-separated IDs, e.g. 0,1)")
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	seen := make(map[int]bool)
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad shard ID %q", p)
		}
		if seen[id] {
			return nil, fmt.Errorf("shard ID %d listed twice", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	return ids, nil
}

// bootstrap builds the full sharded deployment in-process and writes its
// snapshot files under the prefix — but only when the manifest is absent,
// so restarting a bootstrap host is a plain load.
func bootstrap(prefix, netName, load string, scale float64, objects, levels int, seed int64, fleetShards int) error {
	switch _, err := os.Stat(road.ShardManifestPath(prefix)); {
	case err == nil:
		return nil // already deployed; boot from the files
	case !os.IsNotExist(err):
		return fmt.Errorf("manifest: %w", err)
	}
	g, set, err := loadOrGenerate(load, netName, scale, objects, seed)
	if err != nil {
		return err
	}
	fmt.Printf("roadshard: bootstrapping %d-shard deployment over %d nodes, %d edges, %d objects...\n",
		fleetShards, g.NumNodes(), g.NumEdges(), set.Len())
	start := time.Now()
	db, err := road.OpenShardedWithObjects(road.FromGraph(g), set, road.Options{
		Levels: levels,
		Seed:   seed,
	}, fleetShards)
	if err != nil {
		return err
	}
	if err := db.SaveSnapshotFiles(prefix); err != nil {
		return err
	}
	fmt.Printf("roadshard: wrote deployment files under %s in %v\n",
		prefix, time.Since(start).Round(time.Millisecond))
	return nil
}

func loadOrGenerate(load, netName string, scale float64, objects int, seed int64) (*graph.Graph, *graph.ObjectSet, error) {
	if load != "" {
		file, err := os.Open(load)
		if err != nil {
			return nil, nil, err
		}
		defer file.Close()
		g, set, err := dataset.ReadCSV(file)
		if err != nil {
			return nil, nil, err
		}
		if set.Len() == 0 {
			set = dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3)
		}
		return g, set, nil
	}
	var spec dataset.Spec
	switch netName {
	case "CA":
		spec = dataset.CA()
	case "NA":
		spec = dataset.NA()
	case "SF":
		spec = dataset.SF()
	default:
		return nil, nil, fmt.Errorf("unknown network %q (want CA, NA or SF)", netName)
	}
	if scale != 1 {
		spec = dataset.Scaled(spec, scale)
	}
	g := dataset.MustGenerate(spec)
	return g, dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3), nil
}
