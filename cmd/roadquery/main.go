// Command roadquery builds a ROAD index over a synthetic network and
// answers ad-hoc queries from the command line — a minimal interactive
// demonstration of the framework.
//
// Usage:
//
//	roadquery -net CA -objects 100 -knn 5 -from 1234
//	roadquery -net CA -objects 100 -range 0.1 -from 1234
//
// -from defaults to a random node; -range is a fraction of the network
// diameter.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"road/internal/core"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/rnet"
)

func main() {
	var (
		load    = flag.String("load", "", "load network+objects from a roadgen CSV file instead of generating")
		net     = flag.String("net", "CA", "network: CA, NA or SF")
		scale   = flag.Float64("scale", 1, "network scale factor (0,1]")
		objects = flag.Int("objects", 100, "objects placed uniformly")
		knn     = flag.Int("knn", 0, "k for a kNN query")
		rangeFr = flag.Float64("range", 0, "range radius as a fraction of the diameter")
		from    = flag.Int("from", -1, "query node (default: random)")
		attr    = flag.Int("attr", 0, "attribute predicate (0 = any)")
		levels  = flag.Int("levels", 0, "Rnet hierarchy depth (0 = default)")
		seed    = flag.Int64("seed", 1, "placement/query seed")
	)
	flag.Parse()

	var g *graph.Graph
	var set *graph.ObjectSet
	if *load != "" {
		file, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadquery:", err)
			os.Exit(1)
		}
		g, set, err = dataset.ReadCSV(file)
		file.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadquery:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s (%d nodes, %d edges, %d objects)\n",
			*load, g.NumNodes(), g.NumEdges(), set.Len())
		if set.Len() == 0 {
			set = dataset.PlaceUniform(g, *objects, *seed, 0, 1, 2, 3)
		}
	} else {
		var spec dataset.Spec
		switch *net {
		case "CA":
			spec = dataset.CA()
		case "NA":
			spec = dataset.NA()
		case "SF":
			spec = dataset.SF()
		default:
			fmt.Fprintf(os.Stderr, "roadquery: unknown network %q\n", *net)
			os.Exit(2)
		}
		if *scale != 1 {
			spec = dataset.Scaled(spec, *scale)
		}
		fmt.Printf("generating %s (%d nodes, %d edges)...\n", spec.Name, spec.Nodes, spec.Edges)
		g = dataset.MustGenerate(spec)
		set = dataset.PlaceUniform(g, *objects, *seed, 0, 1, 2, 3)
	}

	rcfg := rnet.DefaultConfig(g.NumNodes())
	if *levels != 0 {
		rcfg.Levels = *levels
	}
	fmt.Printf("building ROAD (p=%d, l=%d)...\n", rcfg.Fanout, rcfg.Levels)
	start := time.Now()
	f, err := core.Build(g, set, core.Config{Rnet: rcfg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "roadquery:", err)
		os.Exit(1)
	}
	fmt.Printf("built in %v: %d Rnets, %d shortcuts, index ≈ %d KB\n",
		time.Since(start).Round(time.Millisecond), f.Hierarchy().NumRnets(),
		f.Hierarchy().ShortcutCount(), f.IndexSizeBytes()/1024)

	qnode := graph.NodeID(*from)
	if *from < 0 {
		qnode = dataset.RandomNodes(g, 1, *seed+7)[0]
	}
	q := core.Query{Node: qnode, Attr: int32(*attr)}

	switch {
	case *knn > 0:
		start = time.Now()
		res, st := f.KNN(q, *knn)
		report(res, st, time.Since(start), qnode)
	case *rangeFr > 0:
		radius := g.EstimateDiameter() * *rangeFr
		fmt.Printf("range radius: %.3f\n", radius)
		start = time.Now()
		res, st := f.Range(q, radius)
		report(res, st, time.Since(start), qnode)
	default:
		fmt.Fprintln(os.Stderr, "roadquery: pass -knn K or -range FRACTION")
		os.Exit(2)
	}
}

func report(res []core.Result, st core.QueryStats, elapsed time.Duration, q graph.NodeID) {
	fmt.Printf("query node %d -> %d results in %v (%d nodes settled, %d Rnets bypassed, %d page reads)\n",
		q, len(res), elapsed.Round(time.Microsecond), st.NodesPopped, st.RnetsBypassed, st.IO.Reads)
	for i, r := range res {
		fmt.Printf("  %2d. object %d on edge %d (attr %d) at network distance %.4f\n",
			i+1, r.Object.ID, r.Object.Edge, r.Object.Attr, r.Dist)
	}
}
