// Command roadquery builds a ROAD index over a synthetic network and
// answers ad-hoc queries from the command line — a minimal interactive
// demonstration of the framework — or, with -target, generates query
// load against a running roadd server and reports throughput/latency.
//
// Usage:
//
//	roadquery -net CA -objects 100 -knn 5 -from 1234
//	roadquery -net CA -objects 100 -range 0.1 -from 1234
//	roadquery -net CA -objects 100 -knn 5 -json      # machine-readable
//	roadquery -target http://localhost:7070 -concurrency 16 -duration 10s
//
// -from defaults to a random node; -range is a fraction of the network
// diameter. -json switches both query answers and load reports to the
// same JSON encoding roadd serves.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"road"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/server"
	"road/internal/version"
)

// logf writes progress chatter; in -json mode it goes to stderr so stdout
// stays a single machine-readable document.
var logf = func(format string, args ...any) { fmt.Printf(format, args...) }

func main() {
	var (
		load    = flag.String("load", "", "load network+objects from a roadgen CSV file instead of generating")
		net     = flag.String("net", "CA", "network: CA, NA or SF")
		scale   = flag.Float64("scale", 1, "network scale factor (0,1]")
		objects = flag.Int("objects", 100, "objects placed uniformly")
		knn     = flag.Int("knn", 0, "k for a kNN query")
		rangeFr = flag.Float64("range", 0, "range radius as a fraction of the diameter")
		from    = flag.Int("from", -1, "query node (default: random)")
		attr    = flag.Int("attr", 0, "attribute predicate (0 = any)")
		shards  = flag.Int("shards", 1, "answer through K region shards behind a query router (power of two ≥ 2; 1 = single index)")
		levels  = flag.Int("levels", 0, "Rnet hierarchy depth (0 = default)")
		seed    = flag.Int64("seed", 1, "placement/query seed")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON (roadd's wire encoding)")

		target      = flag.String("target", "", "load-generator mode: base URL of a roadd server")
		concurrency = flag.Int("concurrency", 8, "load generator: parallel workers")
		duration    = flag.Duration("duration", 5*time.Second, "load generator: run length")
		requests    = flag.Int("requests", 0, "load generator: total request cap (overrides -duration)")
		mix         = flag.String("mix", "mixed", "load generator: knn, within or mixed")
		radius      = flag.Float64("radius", 0.05, "load generator: within-query radius (network units)")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("roadquery"))
		return
	}

	if *target != "" {
		report, err := server.RunLoad(server.LoadOptions{
			Target:      *target,
			Concurrency: *concurrency,
			Duration:    *duration,
			Requests:    *requests,
			Mix:         *mix,
			K:           max(*knn, 0),
			Radius:      *radius,
			Attr:        int32(*attr),
			Seed:        *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadquery:", err)
			os.Exit(1)
		}
		if *jsonOut {
			json.NewEncoder(os.Stdout).Encode(report)
			return
		}
		fmt.Printf("%s against %s: %d requests (%d errors) in %.2fs = %.0f qps\n",
			report.Mix, report.Target, report.Requests, report.Errors, report.Seconds, report.QPS)
		fmt.Printf("latency: mean %.0fµs  p50 %dµs  p90 %dµs  p99 %dµs  max %dµs  cache hit rate %.1f%%\n",
			report.MeanUS, report.P50US, report.P90US, report.P99US, report.MaxUS, 100*report.CacheHitRate)
		return
	}

	if *jsonOut {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format, args...) }
	}

	var g *graph.Graph
	var set *graph.ObjectSet
	if *load != "" {
		file, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadquery:", err)
			os.Exit(1)
		}
		g, set, err = dataset.ReadCSV(file)
		file.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadquery:", err)
			os.Exit(1)
		}
		logf("loaded %s (%d nodes, %d edges, %d objects)\n",
			*load, g.NumNodes(), g.NumEdges(), set.Len())
		if set.Len() == 0 {
			set = dataset.PlaceUniform(g, *objects, *seed, 0, 1, 2, 3)
		}
	} else {
		var spec dataset.Spec
		switch *net {
		case "CA":
			spec = dataset.CA()
		case "NA":
			spec = dataset.NA()
		case "SF":
			spec = dataset.SF()
		default:
			fmt.Fprintf(os.Stderr, "roadquery: unknown network %q\n", *net)
			os.Exit(2)
		}
		if *scale != 1 {
			spec = dataset.Scaled(spec, *scale)
		}
		logf("generating %s (%d nodes, %d edges)...\n", spec.Name, spec.Nodes, spec.Edges)
		g = dataset.MustGenerate(spec)
		set = dataset.PlaceUniform(g, *objects, *seed, 0, 1, 2, 3)
	}

	qnode := graph.NodeID(*from)
	if *from < 0 {
		qnode = dataset.RandomNodes(g, 1, *seed+7)[0]
	}

	// Resolve the range radius before the graph is adopted by an index.
	var rangeRadius float64
	if *rangeFr > 0 {
		rangeRadius = g.EstimateDiameter() * *rangeFr
	}

	// Both deployment shapes land behind the same road.Store interface;
	// everything below this block is shape-agnostic v1 API.
	var store road.Store
	if *shards > 1 {
		logf("building %d region shards...\n", *shards)
		start := time.Now()
		db, err := road.OpenShardedWithObjects(road.FromGraph(g), set, road.Options{
			Levels: *levels,
			Seed:   *seed,
		}, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadquery:", err)
			os.Exit(1)
		}
		logf("built in %v: %d shards, index ≈ %d KB\n",
			time.Since(start).Round(time.Millisecond), db.NumShards(), db.IndexSizeBytes()/1024)
		store = db
	} else {
		logf("building ROAD index...\n")
		start := time.Now()
		db, err := road.OpenWithObjects(road.FromGraph(g), set, road.Options{
			Levels: *levels,
			Seed:   *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadquery:", err)
			os.Exit(1)
		}
		h := db.Framework().Hierarchy()
		logf("built in %v: %d Rnets, %d shortcuts, index ≈ %d KB\n",
			time.Since(start).Round(time.Millisecond), h.NumRnets(),
			h.ShortcutCount(), db.IndexSizeBytes()/1024)
		store = db
	}

	ctx := context.Background()
	attrOpt := road.WithAttr(int32(*attr))
	switch {
	case *knn > 0:
		start := time.Now()
		res, st, err := store.KNNContext(ctx, road.NewKNN(qnode, *knn, attrOpt))
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadquery:", err)
			os.Exit(1)
		}
		report(res, st, time.Since(start), qnode, *jsonOut)
	case *rangeFr > 0:
		logf("range radius: %.3f\n", rangeRadius)
		start := time.Now()
		res, st, err := store.WithinContext(ctx, road.NewWithin(qnode, rangeRadius, attrOpt))
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadquery:", err)
			os.Exit(1)
		}
		report(res, st, time.Since(start), qnode, *jsonOut)
	default:
		fmt.Fprintln(os.Stderr, "roadquery: pass -knn K or -range FRACTION, or -target URL")
		os.Exit(2)
	}
}

func report(res []road.Result, st road.Stats, elapsed time.Duration, q graph.NodeID, jsonOut bool) {
	if jsonOut {
		out := server.QueryResponse{
			Node:      q,
			Results:   server.EncodeResults(res),
			Stats:     server.EncodeStats(st),
			ElapsedUS: elapsed.Microseconds(),
		}
		json.NewEncoder(os.Stdout).Encode(out)
		return
	}
	fmt.Printf("query node %d -> %d results in %v (%d nodes settled, %d Rnets bypassed, %d page reads)\n",
		q, len(res), elapsed.Round(time.Microsecond), st.NodesPopped, st.RnetsBypassed, st.IO.Reads)
	for i, r := range res {
		fmt.Printf("  %2d. object %d on edge %d (attr %d) at network distance %.4f\n",
			i+1, r.Object.ID, r.Object.Edge, r.Object.Attr, r.Dist)
	}
}
