// Command roadvet is the project's static-analysis driver: five
// analyzers that mechanically enforce the invariants the design docs
// state in prose (lock ordering, write-ahead journaling, typed-error
// wire fidelity, context discipline, observability naming).
//
// It runs two ways:
//
//	roadvet ./...                          # standalone, like staticcheck
//	go vet -vettool=$(which roadvet) ./... # as a vet tool
//
// The second form speaks cmd/go's unitchecker protocol: respond to
// -V=full with a version line for the build cache, respond to -flags
// with a JSON flag table, and otherwise accept a single *.cfg argument
// describing one already-listed package (file set, import map, export
// data) to check. Findings go to stderr as file:line:col lines and the
// exit status is non-zero, which go vet surfaces per package.
//
// A finding is suppressed by a `//roadvet:ignore <reason>` comment on
// the flagged line or the line above; the reason is mandatory and a
// bare directive is itself a finding.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"road/internal/analysis"
	"road/internal/analysis/ctxflow"
	"road/internal/analysis/errwire"
	"road/internal/analysis/journalorder"
	"road/internal/analysis/lockorder"
	"road/internal/analysis/obsnames"
)

// analyzers is the full suite, in report order.
var analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	errwire.Analyzer,
	journalorder.Analyzer,
	lockorder.Analyzer,
	obsnames.Analyzer,
}

func main() {
	progname := filepath.Base(os.Args[0])
	progname = strings.TrimSuffix(progname, ".exe")

	// Unitchecker protocol, step 1: cmd/go keys its build cache on the
	// tool's version line. For "devel" tools it requires the executable
	// path, the literal word "version", and a trailing buildID= field —
	// a content hash of the binary, so rebuilding roadvet invalidates
	// cached vet results.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V=") {
		if err := printVersion(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(2)
		}
		return
	}
	// Step 2: cmd/go asks for the tool's flag table to validate any
	// pass-through vet flags. Roadvet keeps analyzer selection out of
	// the vet path, so the table is empty.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-list] [-only a,b] package...\n", progname)
		fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(which %s) package...\n", progname)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}

	args := flag.Args()
	// Step 3: a single *.cfg argument means cmd/go is driving.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(progname, args[0], suite))
	}

	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(runStandalone(progname, args, suite))
}

// printVersion emits the -V=full line cmd/go parses for its build
// cache: "<executable> version devel <notes> buildID=<content hash>".
func printVersion() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel roadvet-suite buildID=%x\n", exe, h.Sum(nil))
	return nil
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var suite []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		suite = append(suite, a)
	}
	return suite, nil
}

// report prints active findings and returns (active, suppressed) counts.
func report(diags []analysis.Diagnostic) (active, suppressed int) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			continue
		}
		active++
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	return active, suppressed
}

func runStandalone(progname string, patterns []string, suite []*analysis.Analyzer) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunAnalyzers(pkg, suite)...)
	}
	active, suppressed := report(diags)
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d finding(s) suppressed by //roadvet:ignore\n", progname, suppressed)
	}
	if active > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet config file roadvet consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(progname, cfgPath string, suite []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing %s: %v\n", progname, cfgPath, err)
		return 2
	}
	// Roadvet exchanges no cross-package facts, so its .vetx outputs are
	// empty — but cmd/go still requires the file to exist. Dependency
	// packages are vetted with VetxOnly, which therefore reduces to
	// touching the output: only the packages the user named are analyzed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := analysis.LoadFromParts(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	active, _ := report(analysis.RunAnalyzers(pkg, suite))
	if active > 0 {
		return 2
	}
	return 0
}
