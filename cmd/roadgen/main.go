// Command roadgen emits a synthetic road network (and optionally an object
// placement) as CSV on stdout, for inspection or for use by external tools.
//
// Usage:
//
//	roadgen -net CA                 # the CA-class network
//	roadgen -nodes 5000 -edges 5600 # custom size
//	roadgen -net NA -scale 0.1      # scaled stand-in
//	roadgen -net CA -objects 100    # append an object section
//
// Output format:
//
//	node,<id>,<x>,<y>
//	edge,<id>,<u>,<v>,<weight>
//	object,<id>,<edge>,<du>,<attr>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"road/internal/dataset"
	"road/internal/graph"
)

func main() {
	var (
		net     = flag.String("net", "", "named network: CA, NA or SF")
		nodes   = flag.Int("nodes", 0, "custom node count")
		edges   = flag.Int("edges", 0, "custom edge count")
		scale   = flag.Float64("scale", 1, "scale factor for named networks (0,1]")
		objects = flag.Int("objects", 0, "number of objects to place uniformly")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var spec dataset.Spec
	switch *net {
	case "CA":
		spec = dataset.CA()
	case "NA":
		spec = dataset.NA()
	case "SF":
		spec = dataset.SF()
	case "":
		if *nodes == 0 {
			fmt.Fprintln(os.Stderr, "roadgen: need -net or -nodes/-edges")
			os.Exit(2)
		}
		spec = dataset.Spec{Name: "custom", Nodes: *nodes, Edges: *edges, Seed: *seed}
		if spec.Edges == 0 {
			spec.Edges = spec.Nodes + spec.Nodes/10
		}
	default:
		fmt.Fprintf(os.Stderr, "roadgen: unknown network %q\n", *net)
		os.Exit(2)
	}
	if *scale != 1 {
		spec = dataset.Scaled(spec, *scale)
	}

	g, err := dataset.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roadgen:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for n := 0; n < g.NumNodes(); n++ {
		p := g.Coord(graph.NodeID(n))
		fmt.Fprintf(w, "node,%d,%g,%g\n", n, p.X, p.Y)
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		fmt.Fprintf(w, "edge,%d,%d,%d,%g\n", e, ed.U, ed.V, ed.Weight)
	}
	if *objects > 0 {
		set := dataset.PlaceUniform(g, *objects, *seed+1)
		for _, o := range set.All() {
			fmt.Fprintf(w, "object,%d,%d,%g,%d\n", o.ID, o.Edge, o.DU, o.Attr)
		}
	}
}
