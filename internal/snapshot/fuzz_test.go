package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzLoad hammers the snapshot parser with arbitrary bytes: whatever the
// input, Load must return an error or a framework — never panic, never
// spin, never allocate unboundedly. The committed seed corpus
// (testdata/fuzz/FuzzLoad) contains a valid snapshot, a bare header, and
// assorted near-valid mutations; run with `go test -fuzz=FuzzLoad` to
// explore further.
func FuzzLoad(f *testing.F) {
	valid := fuzzFixtureBytes(f)
	f.Add(valid)
	f.Add(valid[:len(Magic)+8])         // magic + version + count only
	f.Add(valid[:len(valid)/2])         // mid-file truncation
	f.Add([]byte{})                     // empty
	f.Add([]byte("ROADSNAPgarbage"))    // magic with a garbage tail
	f.Add(bytes.Repeat(valid, 2)[:300]) // repeated prefix

	// Header with an absurd section count (count checks must fire before
	// any allocation sized by it).
	bogus := append([]byte(nil), valid[:len(Magic)+8]...)
	binary.LittleEndian.PutUint32(bogus[len(Magic)+4:], 0xFFFFFFFF)
	f.Add(bogus)

	// A header-CRC-valid file whose section payload is corrupt: flips a
	// payload byte and repairs the section CRC in the table, so decoding
	// (not checksumming) has to reject it.
	tampered := append([]byte(nil), valid...)
	count := int(binary.LittleEndian.Uint32(tampered[len(Magic)+4:]))
	tableEnd := len(Magic) + 8 + count*16
	payloadStart := tableEnd + 4
	if payloadStart+16 < len(tampered) {
		tampered[payloadStart+8] ^= 0xFF
		first := tampered[payloadStart : payloadStart+int(binary.LittleEndian.Uint64(tampered[len(Magic)+8+4:]))]
		binary.LittleEndian.PutUint32(tampered[len(Magic)+8+12:], crc32.Checksum(first, crcTable))
		fixHeaderCRC(tampered)
		f.Add(tampered)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fw, _, err := Load(bytes.NewReader(data))
		if err == nil && fw == nil {
			t.Fatal("Load returned neither framework nor error")
		}
		if err != nil && err.Error() == "" {
			t.Fatal("Load returned an empty error")
		}
	})
}

// fuzzFixtureBytes serializes a tiny deterministic framework for corpus
// seeding (small inputs keep fuzz executions fast).
func fuzzFixtureBytes(f *testing.F) []byte {
	f.Helper()
	fw := tinyFixture(f)
	var buf bytes.Buffer
	if err := Save(fw, 3, &buf); err != nil {
		f.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}
