package snapshot

import (
	"bytes"
	"testing"

	"road/internal/core"
	"road/internal/dataset"
	"road/internal/rnet"
)

// benchCAFramework builds the default CA index once per benchmark run.
func benchCAFramework(b *testing.B) *core.Framework {
	b.Helper()
	g := dataset.MustGenerate(dataset.CA())
	set := dataset.PlaceUniform(g, 2000, 1, 0, 1, 2, 3)
	f, err := core.Build(g, set, core.Config{Rnet: rnet.Config{}})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkSaveCA measures serializing the default CA index.
func BenchmarkSaveCA(b *testing.B) {
	f := benchCAFramework(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Save(f, 0, &buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkLoadCA measures reopening the default CA index from an
// in-memory snapshot — the restart path the subsystem exists to shorten.
func BenchmarkLoadCA(b *testing.B) {
	f := benchCAFramework(b)
	var buf bytes.Buffer
	if err := Save(f, 0, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
