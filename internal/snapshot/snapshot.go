// Package snapshot persists a built ROAD index to disk and reopens it
// without rebuilding. It defines a versioned, checksummed binary snapshot
// format (see FORMAT.md) holding the graph, the Rnet hierarchy with its
// shortcuts and build-time leaf assignments, the object set, and the
// Association Directory — plus a write-ahead journal of maintenance
// operations (journal.go) that is appended before each mutation is applied
// and replayed on top of a loaded snapshot to recover post-snapshot state.
//
// Restart cost drops from O(index build) — partitioning, hierarchical
// shortcut computation, directory construction, the paper's
// index-construction metric — to O(load): a sequential read plus
// checksum verification and reassembly of derived structures.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"road/internal/core"
	"road/internal/geom"
	"road/internal/graph"
	"road/internal/rnet"
	"road/internal/storage"
)

// Magic identifies a ROAD snapshot file.
var Magic = [8]byte{'R', 'O', 'A', 'D', 'S', 'N', 'A', 'P'}

// FormatVersion is the current snapshot format version. Load rejects
// snapshots written by a newer version; older versions are migrated
// per-section as the format evolves (none exist yet).
const FormatVersion = 1

// Section tags, in required file order.
var (
	tagMeta      = [4]byte{'M', 'E', 'T', 'A'}
	tagGraph     = [4]byte{'G', 'R', 'P', 'H'}
	tagObjects   = [4]byte{'O', 'B', 'J', 'S'}
	tagHierarchy = [4]byte{'R', 'N', 'E', 'T'}
	tagShortcuts = [4]byte{'S', 'H', 'C', 'T'}
	tagDirectory = [4]byte{'A', 'D', 'I', 'R'}
	tagPageLayts = [4]byte{'P', 'G', 'L', 'Y'}
)

var sectionOrder = [][4]byte{tagMeta, tagGraph, tagObjects, tagHierarchy, tagShortcuts, tagDirectory, tagPageLayts}

// maxSections bounds the section table so corrupt counts cannot trigger
// huge allocations.
const maxSections = 64

var crcTable = crc32.IEEETable

// Save serializes the framework and the journal watermark it includes
// (the last applied journal sequence number, 0 when no journal is in use)
// to w. The caller must exclude concurrent mutations — roadd snapshots
// under the coordinator's write lock so the image is epoch-consistent.
func Save(f *core.Framework, lastSeq uint64, w io.Writer) error {
	sections := make([][]byte, len(sectionOrder))
	sections[0] = encodeMeta(f, lastSeq)
	sections[1] = encodeGraph(f.Graph())
	sections[2] = encodeObjects(f.Objects())
	hs := f.Hierarchy().ExportState()
	sections[3] = encodeHierarchy(hs)
	sections[4] = encodeShortcuts(hs)
	sections[5] = encodeDirectory(f.Directory().ExportState())
	sections[6] = encodePageLayouts(f)

	var header bytes.Buffer
	header.Write(Magic[:])
	writeU32(&header, FormatVersion)
	writeU32(&header, uint32(len(sections)))
	for i, payload := range sections {
		header.Write(sectionOrder[i][:])
		writeU64(&header, uint64(len(payload)))
		writeU32(&header, crc32.Checksum(payload, crcTable))
	}
	writeU32(&header, crc32.Checksum(header.Bytes(), crcTable))

	if _, err := w.Write(header.Bytes()); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	for i, payload := range sections {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("snapshot: writing section %s: %w", sectionOrder[i], err)
		}
	}
	return nil
}

// SaveFile atomically writes a snapshot to path: the image lands in a
// temporary file in the same directory and is renamed into place, so a
// crash mid-save never clobbers the previous snapshot.
func SaveFile(f *core.Framework, lastSeq uint64, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".roadsnap-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Save(f, lastSeq, tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot and reassembles a live Framework, returning the
// journal sequence watermark recorded at save time. Any corruption —
// truncation, bit flips, a foreign file, a future format version — yields
// a descriptive error, never a panic.
func Load(r io.Reader) (*core.Framework, uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot: reading: %w", err)
	}
	return loadBytes(data)
}

// LoadFile loads a snapshot from path in one stat-sized read, with no
// second copy of the image.
func LoadFile(path string) (*core.Framework, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot: %w", err)
	}
	return loadBytes(data)
}

// loadBytes parses and reassembles a snapshot already in memory.
// Derived search state is deliberately NOT part of the image: shortcut
// trees rematerialize lazily and the CSR slabs rebuild on the first
// WarmTrees (or session prewarm), so the format is indifferent to
// hot-path representation changes.
func loadBytes(data []byte) (*core.Framework, uint64, error) {
	sections, err := parseContainer(data)
	if err != nil {
		return nil, 0, err
	}

	meta, err := decodeMeta(sections[0])
	if err != nil {
		return nil, 0, err
	}
	g, err := decodeGraph(sections[1])
	if err != nil {
		return nil, 0, err
	}
	objects, err := decodeObjects(sections[2], g)
	if err != nil {
		return nil, 0, err
	}
	hs, err := decodeHierarchy(sections[3])
	if err != nil {
		return nil, 0, err
	}
	if err := decodeShortcuts(sections[4], hs); err != nil {
		return nil, 0, err
	}
	h, err := rnet.ImportHierarchy(g, hs)
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot: %w", err)
	}
	dir, err := decodeDirectory(sections[5])
	if err != nil {
		return nil, 0, err
	}
	order, allocated, roLayout, adLayout, err := decodePageLayouts(sections[6])
	if err != nil {
		return nil, 0, err
	}
	f, err := core.Restore(core.RestoreSpec{
		Graph:          g,
		Objects:        objects,
		Hierarchy:      h,
		Dir:            dir,
		BufferPages:    meta.bufferPages,
		StoreAllocated: allocated,
		OverlayLayout:  roLayout,
		DirLayout:      adLayout,
		OverlayOrder:   order,
		Epoch:          meta.epoch,
		BuildTime:      time.Duration(meta.buildTimeNS),
	})
	if err != nil {
		return nil, 0, fmt.Errorf("snapshot: %w", err)
	}
	return f, meta.lastSeq, nil
}

// parseContainer validates magic, version, section table and checksums,
// returning the six section payloads in canonical order.
func parseContainer(data []byte) ([][]byte, error) {
	headFixed := len(Magic) + 4 + 4
	if len(data) < headFixed {
		return nil, fmt.Errorf("snapshot: truncated header (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(Magic)], Magic[:]) {
		return nil, fmt.Errorf("snapshot: bad magic %q: not a ROAD snapshot", data[:len(Magic)])
	}
	version := binary.LittleEndian.Uint32(data[len(Magic):])
	if version == 0 || version > FormatVersion {
		return nil, fmt.Errorf("snapshot: format version %d not supported (this build reads ≤ %d)", version, FormatVersion)
	}
	count := binary.LittleEndian.Uint32(data[len(Magic)+4:])
	if count == 0 || count > maxSections {
		return nil, fmt.Errorf("snapshot: implausible section count %d", count)
	}
	if int(count) != len(sectionOrder) {
		return nil, fmt.Errorf("snapshot: %d sections, format v%d requires %d", count, version, len(sectionOrder))
	}
	const entrySize = 4 + 8 + 4
	tableEnd := headFixed + int(count)*entrySize
	if len(data) < tableEnd+4 {
		return nil, fmt.Errorf("snapshot: truncated section table")
	}
	gotCRC := binary.LittleEndian.Uint32(data[tableEnd:])
	if want := crc32.Checksum(data[:tableEnd], crcTable); gotCRC != want {
		return nil, fmt.Errorf("snapshot: header checksum mismatch (file %08x, computed %08x)", gotCRC, want)
	}

	sections := make([][]byte, count)
	offset := tableEnd + 4
	for i := 0; i < int(count); i++ {
		entry := data[headFixed+i*entrySize:]
		var tag [4]byte
		copy(tag[:], entry[:4])
		if tag != sectionOrder[i] {
			return nil, fmt.Errorf("snapshot: section %d is %q, want %q", i, tag, sectionOrder[i])
		}
		length := binary.LittleEndian.Uint64(entry[4:])
		crc := binary.LittleEndian.Uint32(entry[12:])
		if length > uint64(len(data)-offset) {
			return nil, fmt.Errorf("snapshot: section %q truncated: need %d bytes, %d remain", tag, length, len(data)-offset)
		}
		payload := data[offset : offset+int(length)]
		if got := crc32.Checksum(payload, crcTable); got != crc {
			return nil, fmt.Errorf("snapshot: section %q checksum mismatch (file %08x, computed %08x)", tag, crc, got)
		}
		sections[i] = payload
		offset += int(length)
	}
	if offset != len(data) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after last section", len(data)-offset)
	}
	return sections, nil
}

// --- META section ---

type metaState struct {
	epoch       uint64
	lastSeq     uint64
	buildTimeNS int64
	bufferPages int
}

func encodeMeta(f *core.Framework, lastSeq uint64) []byte {
	var b bytes.Buffer
	writeU64(&b, f.Epoch())
	writeU64(&b, lastSeq)
	writeU64(&b, uint64(f.BuildTime.Nanoseconds()))
	writeI32(&b, int32(f.BufferPages()))
	return b.Bytes()
}

func decodeMeta(payload []byte) (metaState, error) {
	d := newDecoder("META", payload)
	var m metaState
	m.epoch = d.u64()
	m.lastSeq = d.u64()
	m.buildTimeNS = int64(d.u64())
	m.bufferPages = int(d.i32())
	if err := d.finish(); err != nil {
		return metaState{}, err
	}
	return m, nil
}

// --- GRPH section ---

func encodeGraph(g *graph.Graph) []byte {
	var b bytes.Buffer
	writeU32(&b, uint32(g.NumNodes()))
	for n := 0; n < g.NumNodes(); n++ {
		p := g.Coord(graph.NodeID(n))
		writeF64(&b, p.X)
		writeF64(&b, p.Y)
	}
	writeU32(&b, uint32(g.NumEdges()))
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		writeI32(&b, ed.U)
		writeI32(&b, ed.V)
		writeF64(&b, ed.Weight)
		if ed.Removed {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	}
	return b.Bytes()
}

func decodeGraph(payload []byte) (*graph.Graph, error) {
	d := newDecoder("GRPH", payload)
	numNodes := d.count(16)
	g := graph.New(numNodes, 0)
	for i := 0; i < numNodes; i++ {
		g.AddNode(geom.Point{X: d.f64(), Y: d.f64()})
	}
	// Edge count arrives after the node block; graph capacity for it is a
	// hint only, so sizing it late is fine.
	numEdges := d.count(17)
	g.ReserveEdges(numEdges)
	var removed []graph.EdgeID
	for i := 0; i < numEdges; i++ {
		u, v := d.i32(), d.i32()
		w := d.f64()
		isRemoved := d.u8() != 0
		if d.err != nil {
			break
		}
		id, err := g.AddEdge(u, v, w)
		if err != nil {
			return nil, fmt.Errorf("snapshot: GRPH: edge %d: %w", i, err)
		}
		if int(id) != i {
			return nil, fmt.Errorf("snapshot: GRPH: edge %d assigned ID %d", i, id)
		}
		if isRemoved {
			removed = append(removed, id)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	for _, e := range removed {
		if err := g.RemoveEdge(e); err != nil {
			return nil, fmt.Errorf("snapshot: GRPH: %w", err)
		}
	}
	return g, nil
}

// --- OBJS section ---

func encodeObjects(set *graph.ObjectSet) []byte {
	var b bytes.Buffer
	writeI32(&b, set.NextID())
	objs := set.All()
	writeU32(&b, uint32(len(objs)))
	for _, o := range objs {
		writeI32(&b, o.ID)
		writeI32(&b, o.Edge)
		writeF64(&b, o.DU)
		writeF64(&b, o.DV)
		writeI32(&b, o.Attr)
	}
	return b.Bytes()
}

func decodeObjects(payload []byte, g *graph.Graph) (*graph.ObjectSet, error) {
	d := newDecoder("OBJS", payload)
	nextID := d.i32()
	count := d.count(28)
	set := graph.NewObjectSet(g)
	for i := 0; i < count; i++ {
		o := graph.Object{ID: d.i32(), Edge: d.i32(), DU: d.f64(), DV: d.f64(), Attr: d.i32()}
		if d.err != nil {
			break
		}
		if err := set.RestoreObject(o); err != nil {
			return nil, fmt.Errorf("snapshot: OBJS: %w", err)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	if nextID < set.NextID() {
		return nil, fmt.Errorf("snapshot: OBJS: stored next ID %d below restored objects", nextID)
	}
	set.SetNextID(nextID)
	return set, nil
}

// --- RNET section ---

func encodeHierarchy(hs *rnet.HierarchyState) []byte {
	var b bytes.Buffer
	cfg := hs.Config
	writeI32(&b, int32(cfg.Fanout))
	writeI32(&b, int32(cfg.Levels))
	writeI32(&b, int32(cfg.KLPasses))
	writeU64(&b, uint64(cfg.Seed))
	if cfg.StorePaths {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	writeI32(&b, int32(cfg.PruneMaxBorders))
	writeU32(&b, uint32(len(hs.Rnets)))
	for i := range hs.Rnets {
		r := &hs.Rnets[i]
		writeI32(&b, int32(r.Level))
		writeI32(&b, r.Parent)
		writeU32(&b, uint32(len(r.Children)))
		for _, c := range r.Children {
			writeI32(&b, c)
		}
		writeU32(&b, uint32(len(r.Borders)))
		for _, n := range r.Borders {
			writeI32(&b, n)
		}
		writeU32(&b, uint32(len(r.Edges)))
		for _, e := range r.Edges {
			writeI32(&b, e)
		}
	}
	writeU32(&b, uint32(len(hs.LeafOf)))
	for _, r := range hs.LeafOf {
		writeI32(&b, r)
	}
	writeU32(&b, uint32(len(hs.OriginLeaf)))
	for _, r := range hs.OriginLeaf {
		writeI32(&b, r)
	}
	return b.Bytes()
}

func decodeHierarchy(payload []byte) (*rnet.HierarchyState, error) {
	d := newDecoder("RNET", payload)
	hs := &rnet.HierarchyState{}
	hs.Config.Fanout = int(d.i32())
	hs.Config.Levels = int(d.i32())
	hs.Config.KLPasses = int(d.i32())
	hs.Config.Seed = int64(d.u64())
	hs.Config.StorePaths = d.u8() != 0
	hs.Config.PruneMaxBorders = int(d.i32())
	numRnets := d.count(20)
	hs.Rnets = make([]rnet.Rnet, 0, numRnets)
	for i := 0; i < numRnets; i++ {
		r := rnet.Rnet{ID: rnet.RnetID(i)}
		r.Level = int(d.i32())
		r.Parent = d.i32()
		r.Children = d.i32s(d.count(4))
		r.Borders = d.i32s(d.count(4))
		r.Edges = d.i32s(d.count(4))
		if d.err != nil {
			break
		}
		hs.Rnets = append(hs.Rnets, r)
	}
	hs.LeafOf = d.i32s(d.count(4))
	hs.OriginLeaf = d.i32s(d.count(4))
	if err := d.finish(); err != nil {
		return nil, err
	}
	return hs, nil
}

// --- SHCT section ---

func encodeShortcuts(hs *rnet.HierarchyState) []byte {
	var b bytes.Buffer
	writeU32(&b, uint32(len(hs.Shortcuts)))
	for _, set := range hs.Shortcuts {
		writeU32(&b, uint32(len(set.Entries)))
		for _, entry := range set.Entries {
			writeI32(&b, entry.From)
			writeU32(&b, uint32(len(entry.Shortcuts)))
			for _, sc := range entry.Shortcuts {
				writeI32(&b, sc.To)
				writeF64(&b, sc.Dist)
				writeU32(&b, uint32(len(sc.Via)))
				for _, via := range sc.Via {
					writeI32(&b, via)
				}
			}
		}
	}
	return b.Bytes()
}

func decodeShortcuts(payload []byte, hs *rnet.HierarchyState) error {
	d := newDecoder("SHCT", payload)
	numSets := d.count(4)
	hs.Shortcuts = make([]rnet.ShortcutSet, 0, numSets)
	for i := 0; i < numSets && d.err == nil; i++ {
		set := rnet.ShortcutSet{}
		numEntries := d.count(8)
		set.Entries = make([]rnet.ShortcutEntry, 0, numEntries)
		for j := 0; j < numEntries && d.err == nil; j++ {
			entry := rnet.ShortcutEntry{From: d.i32()}
			numScs := d.count(16)
			entry.Shortcuts = make([]rnet.Shortcut, 0, numScs)
			for s := 0; s < numScs && d.err == nil; s++ {
				sc := rnet.Shortcut{From: entry.From, To: d.i32(), Dist: d.f64()}
				sc.Via = d.i32s(d.count(4))
				entry.Shortcuts = append(entry.Shortcuts, sc)
			}
			set.Entries = append(set.Entries, entry)
		}
		hs.Shortcuts = append(hs.Shortcuts, set)
	}
	return d.finish()
}

// --- ADIR section ---

func encodeDirectory(st *core.AssocDirState) []byte {
	var b bytes.Buffer
	writeI32(&b, int32(st.Kind))
	writeU32(&b, uint32(len(st.Nodes)))
	for _, entry := range st.Nodes {
		writeI32(&b, entry.Node)
		writeU32(&b, uint32(len(entry.Assocs)))
		for _, a := range entry.Assocs {
			writeI32(&b, a.Obj)
			writeF64(&b, a.Dist)
			writeI32(&b, a.Attr)
		}
	}
	writeU32(&b, uint32(len(st.Abstracts)))
	for _, entry := range st.Abstracts {
		writeI32(&b, int32(entry.Rnet))
		writeU32(&b, uint32(len(entry.Counts)))
		for _, c := range entry.Counts {
			writeI32(&b, c.Attr)
			writeI32(&b, c.Count)
		}
	}
	return b.Bytes()
}

func decodeDirectory(payload []byte) (*core.AssocDirState, error) {
	d := newDecoder("ADIR", payload)
	st := &core.AssocDirState{Kind: core.AbstractKind(d.i32())}
	numNodes := d.count(8)
	for i := 0; i < numNodes && d.err == nil; i++ {
		entry := core.NodeAssocState{Node: d.i32()}
		numAssocs := d.count(16)
		for j := 0; j < numAssocs && d.err == nil; j++ {
			entry.Assocs = append(entry.Assocs, core.ObjAssocState{
				Obj: d.i32(), Dist: d.f64(), Attr: d.i32(),
			})
		}
		st.Nodes = append(st.Nodes, entry)
	}
	numAbstracts := d.count(8)
	for i := 0; i < numAbstracts && d.err == nil; i++ {
		entry := core.AbstractState{Rnet: d.i32()}
		numCounts := d.count(8)
		for j := 0; j < numCounts && d.err == nil; j++ {
			entry.Counts = append(entry.Counts, core.AttrCount{Attr: d.i32(), Count: d.i32()})
		}
		st.Abstracts = append(st.Abstracts, entry)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return st, nil
}

// --- PGLY section ---

// encodePageLayouts serializes the simulated-store bookkeeping: the
// overlay's record clustering order (Hilbert/CCAM), the page allocation
// watermark and the overlay/directory record layouts. Without these, a
// load would have to re-rank every coordinate and rebuild every shortcut
// tree just to re-derive page placement — the dominant costs of
// reconstruction.
func encodePageLayouts(f *core.Framework) []byte {
	var b bytes.Buffer
	order := f.OverlayOrder()
	writeU32(&b, uint32(len(order)))
	for _, n := range order {
		writeI32(&b, n)
	}
	allocated, overlay, dir := f.ExportLayouts()
	if overlay == nil {
		b.WriteByte(0) // I/O simulation disabled
		return b.Bytes()
	}
	b.WriteByte(1)
	writeU64(&b, uint64(allocated))
	encodeLayout(&b, overlay)
	encodeLayout(&b, dir)
	return b.Bytes()
}

func encodeLayout(b *bytes.Buffer, st *storage.LayoutState) {
	writeU64(b, uint64(st.First))
	writeU64(b, uint64(st.CurPage))
	writeU32(b, uint32(st.CurUsed))
	writeU64(b, uint64(st.Bytes))
	writeU32(b, uint32(len(st.Spans)))
	for _, sp := range st.Spans {
		writeU64(b, uint64(sp.Key))
		writeU64(b, uint64(sp.First))
		writeU32(b, uint32(sp.Pages))
	}
}

func decodePageLayouts(payload []byte) (order []graph.NodeID, allocated storage.PageID, overlay, dir *storage.LayoutState, err error) {
	d := newDecoder("PGLY", payload)
	order = d.i32s(d.count(4))
	if d.u8() == 0 {
		return order, 0, nil, nil, d.finish()
	}
	allocated = storage.PageID(d.u64())
	overlay = decodeLayout(d)
	dir = decodeLayout(d)
	if err := d.finish(); err != nil {
		return nil, 0, nil, nil, err
	}
	return order, allocated, overlay, dir, nil
}

func decodeLayout(d *decoder) *storage.LayoutState {
	st := &storage.LayoutState{
		First:   storage.PageID(d.u64()),
		CurPage: storage.PageID(d.u64()),
		CurUsed: int(d.u32()),
		Bytes:   int64(d.u64()),
	}
	n := d.count(20)
	st.Spans = make([]storage.SpanState, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		st.Spans = append(st.Spans, storage.SpanState{
			Key:   int64(d.u64()),
			First: storage.PageID(d.u64()),
			Pages: int32(d.u32()),
		})
	}
	return st
}

// --- encoding primitives ---

func writeU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func writeU64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}

func writeI32(b *bytes.Buffer, v int32) { writeU32(b, uint32(v)) }

func writeF64(b *bytes.Buffer, v float64) { writeU64(b, math.Float64bits(v)) }

// decoder reads little-endian primitives from a section payload with
// sticky error handling: the first short read or implausible count poisons
// the decoder, subsequent reads return zero values, and finish() reports
// the error (or leftover bytes).
type decoder struct {
	section string
	data    []byte
	off     int
	err     error
}

func newDecoder(section string, data []byte) *decoder {
	return &decoder{section: section, data: data}
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: %s: %s", d.section, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.data) {
		d.fail("truncated at byte %d (need %d more)", d.off, d.off+n-len(d.data))
		return nil
	}
	out := d.data[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i32() int32 { return int32(d.u32()) }

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads an element count and sanity-checks it against the bytes
// remaining: each element needs at least minElemSize bytes, so a count
// beyond remaining/minElemSize proves corruption without allocating.
func (d *decoder) count(minElemSize int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if minElemSize > 0 && int(n) > (len(d.data)-d.off)/minElemSize {
		d.fail("implausible count %d at byte %d (%d bytes remain)", n, d.off-4, len(d.data)-d.off)
		return 0
	}
	return int(n)
}

func (d *decoder) i32s(n int) []int32 {
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.i32()
	}
	return out
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("snapshot: %s: %d trailing bytes", d.section, len(d.data)-d.off)
	}
	return nil
}
