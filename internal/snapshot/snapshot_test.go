package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"road/internal/core"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/rnet"
)

// buildFixture constructs a framework over a small synthetic network with
// objects, path storage on (so PathTo works) and pruning off (total
// shortcut coverage makes divergence loud).
func buildFixture(t testing.TB, seed int64) *core.Framework {
	t.Helper()
	g := dataset.MustGenerate(dataset.Spec{Name: "snap", Nodes: 260, Edges: 300, Seed: seed})
	set := dataset.PlaceUniform(g, 60, seed+1, 0, 1, 2, 3)
	f, err := core.Build(g, set, core.Config{
		Rnet:     rnet.Config{Fanout: 2, Levels: 3, KLPasses: -1, StorePaths: true, Seed: seed},
		Abstract: core.AbstractBloom,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

// tinyFixture is a minimal framework for corpus seeds and cheap checks.
func tinyFixture(t testing.TB) *core.Framework {
	t.Helper()
	g := dataset.MustGenerate(dataset.Spec{Name: "tiny", Nodes: 24, Edges: 30, Seed: 5})
	set := dataset.PlaceUniform(g, 6, 6, 0, 1, 2)
	f, err := core.Build(g, set, core.Config{
		Rnet:     rnet.Config{Fanout: 2, Levels: 2, KLPasses: -1, StorePaths: true, Seed: 5},
		Abstract: core.AbstractSet,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

// mutate applies a deterministic pseudo-random maintenance sequence:
// re-weights, closures and reopenings, object churn — every op kind the
// journal records.
func mutate(t testing.TB, f *core.Framework, rng *rand.Rand, ops int) {
	t.Helper()
	g := f.Graph()
	var closed []graph.EdgeID
	for i := 0; i < ops; i++ {
		switch rng.Intn(6) {
		case 0: // re-weight
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			if g.Edge(e).Removed {
				continue
			}
			w := g.Weight(e) * (0.5 + rng.Float64())
			if _, err := f.SetEdgeWeight(e, w); err != nil {
				t.Fatalf("SetEdgeWeight(%d): %v", e, err)
			}
		case 1: // close
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			if g.Edge(e).Removed {
				continue
			}
			if _, err := f.DeleteEdge(e); err != nil {
				t.Fatalf("DeleteEdge(%d): %v", e, err)
			}
			closed = append(closed, e)
		case 2: // reopen
			if len(closed) == 0 {
				continue
			}
			e := closed[len(closed)-1]
			closed = closed[:len(closed)-1]
			if _, err := f.RestoreEdge(e); err != nil {
				t.Fatalf("RestoreEdge(%d): %v", e, err)
			}
		case 3: // insert object
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			if g.Edge(e).Removed {
				continue
			}
			if _, err := f.InsertObject(e, rng.Float64()*g.Weight(e), int32(rng.Intn(4))); err != nil {
				t.Fatalf("InsertObject: %v", err)
			}
		case 4: // delete object
			objs := f.Objects().All()
			if len(objs) == 0 {
				continue
			}
			if err := f.DeleteObject(objs[rng.Intn(len(objs))].ID); err != nil {
				t.Fatalf("DeleteObject: %v", err)
			}
		case 5: // change attribute
			objs := f.Objects().All()
			if len(objs) == 0 {
				continue
			}
			if err := f.UpdateObjectAttr(objs[rng.Intn(len(objs))].ID, int32(rng.Intn(4))); err != nil {
				t.Fatalf("UpdateObjectAttr: %v", err)
			}
		}
	}
}

// assertSameAnswers runs a randomized KNN/range/path workload against both
// frameworks and requires byte-identical answers.
func assertSameAnswers(t *testing.T, want, got *core.Framework, seed int64) {
	t.Helper()
	if we, ge := want.Epoch(), got.Epoch(); we != ge {
		t.Fatalf("epoch diverged: %d vs %d", we, ge)
	}
	rng := rand.New(rand.NewSource(seed))
	n := want.Graph().NumNodes()
	diam := want.Graph().EstimateDiameter()
	for q := 0; q < 60; q++ {
		node := graph.NodeID(rng.Intn(n))
		attr := int32(rng.Intn(5)) - 1 // -1 never matches, 0 = any, 1..3 real
		if attr < 0 {
			attr = 4 // rarely-used category
		}
		k := 1 + rng.Intn(8)
		wres, _ := want.KNN(core.Query{Node: node, Attr: attr}, k)
		gres, _ := got.KNN(core.Query{Node: node, Attr: attr}, k)
		compareResults(t, "KNN", node, wres, gres)

		radius := rng.Float64() * diam * 0.3
		wres, _ = want.Range(core.Query{Node: node, Attr: attr}, radius)
		gres, _ = got.Range(core.Query{Node: node, Attr: attr}, radius)
		compareResults(t, "Range", node, wres, gres)

		if len(wres) > 0 {
			target := wres[rng.Intn(len(wres))].Object.ID
			wp, wd, werr := want.PathTo(core.Query{Node: node}, target)
			gp, gd, gerr := got.PathTo(core.Query{Node: node}, target)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("PathTo(%d,%d): error diverged: %v vs %v", node, target, werr, gerr)
			}
			if werr == nil {
				if math.Abs(wd-gd) > 1e-9*math.Max(1, wd) {
					t.Fatalf("PathTo(%d,%d): dist %g vs %g", node, target, wd, gd)
				}
				if len(wp) != len(gp) {
					t.Fatalf("PathTo(%d,%d): path length %d vs %d", node, target, len(wp), len(gp))
				}
				for i := range wp {
					if wp[i] != gp[i] {
						t.Fatalf("PathTo(%d,%d): path[%d] = %d vs %d", node, target, i, wp[i], gp[i])
					}
				}
			}
		}
	}
}

func compareResults(t *testing.T, what string, node graph.NodeID, want, got []core.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s from %d: %d results vs %d", what, node, len(want), len(got))
	}
	for i := range want {
		if want[i].Object != got[i].Object || want[i].Dist != got[i].Dist {
			t.Fatalf("%s from %d: result %d = %+v vs %+v", what, node, i, want[i], got[i])
		}
	}
}

func saveToBytes(t testing.TB, f *core.Framework, lastSeq uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(f, lastSeq, &buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

func loadFromBytes(t testing.TB, data []byte) (*core.Framework, uint64) {
	t.Helper()
	f, seq, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return f, seq
}

func TestRoundTripFreshBuild(t *testing.T) {
	f := buildFixture(t, 11)
	data := saveToBytes(t, f, 0)
	g, seq := loadFromBytes(t, data)
	if seq != 0 {
		t.Fatalf("lastSeq = %d, want 0", seq)
	}
	assertSameAnswers(t, f, g, 100)
	if w, g := f.IndexSizeBytes(), g.IndexSizeBytes(); w != g {
		t.Fatalf("index size diverged: %d vs %d", w, g)
	}
}

// TestRoundTripAfterMutations is the build → mutate → save → load property
// test: a snapshot taken after arbitrary maintenance answers every query
// exactly like the live instance.
func TestRoundTripAfterMutations(t *testing.T) {
	for _, seed := range []int64{21, 22, 23} {
		f := buildFixture(t, seed)
		mutate(t, f, rand.New(rand.NewSource(seed*7)), 60)
		data := saveToBytes(t, f, 0)
		g, _ := loadFromBytes(t, data)
		assertSameAnswers(t, f, g, 200+seed)
	}
}

// TestRoundTripSecondGeneration: a snapshot of a loaded-and-then-mutated
// framework must still round-trip (save → load → mutate → save → load).
func TestRoundTripSecondGeneration(t *testing.T) {
	f := buildFixture(t, 31)
	g1, _ := loadFromBytes(t, saveToBytes(t, f, 0))
	rng := rand.New(rand.NewSource(99))
	mutate(t, f, rng, 30)
	mutate(t, g1, rand.New(rand.NewSource(99)), 30)
	g2, _ := loadFromBytes(t, saveToBytes(t, g1, 0))
	assertSameAnswers(t, f, g2, 300)
}

// TestRoundTripAfterFailedAddEdge: a rolled-back AddEdge still consumes
// an edge ID (the removed stub); a snapshot taken afterwards — and one
// taken after the stub is later reopened — must still round-trip.
func TestRoundTripAfterFailedAddEdge(t *testing.T) {
	f := tinyFixture(t)
	g := f.Graph()
	// Fully isolate nodes 0 and 1.
	var u, v graph.NodeID = 0, 1
	for _, n := range [2]graph.NodeID{u, v} {
		for len(g.Neighbors(n)) > 0 {
			if _, err := f.DeleteEdge(g.Neighbors(n)[0].Edge); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := f.AddEdge(u, v, 1.5); err == nil {
		t.Fatal("AddEdge between isolated nodes succeeded")
	}
	stub := graph.EdgeID(g.NumEdges() - 1)
	loaded, _ := loadFromBytes(t, saveToBytes(t, f, 0))
	assertSameAnswers(t, f, loaded, 600)

	// Reopen the stub (it has no origin leaf, but its endpoints regain a
	// live edge first) and snapshot again.
	restoreAll := func(fr *core.Framework) {
		for e := 0; e < fr.Graph().NumEdges(); e++ {
			if fr.Graph().Edge(graph.EdgeID(e)).Removed {
				if _, err := fr.RestoreEdge(graph.EdgeID(e)); err != nil {
					t.Fatalf("RestoreEdge(%d): %v", e, err)
				}
			}
		}
	}
	restoreAll(f)
	restoreAll(loaded)
	if f.Hierarchy().LeafOf(stub) == rnet.NoRnet {
		t.Fatalf("reopened stub edge %d not hosted", stub)
	}
	reloaded, _ := loadFromBytes(t, saveToBytes(t, f, 0))
	assertSameAnswers(t, f, reloaded, 601)
	assertSameAnswers(t, f, loaded, 602)
}

// TestJournalReplayEquivalence: snapshot@seq N + journal replay of
// everything after N reproduces the live state exactly — the crash
// recovery path.
func TestJournalReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "ops.wal")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()

	live := buildFixture(t, 41)
	g := live.Graph()
	rng := rand.New(rand.NewSource(77))

	// Generate a stream of ops; journal each before applying (write-ahead),
	// exactly as road.DB does.
	apply := func(op Op) {
		if _, err := j.Append(op); err != nil {
			t.Fatalf("Append: %v", err)
		}
		// Application errors are fine: failed ops replay to the same failure.
		_ = ApplyOp(live, op)
	}
	randOp := func() Op {
		switch rng.Intn(6) {
		case 0:
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			return Op{Kind: OpSetDistance, Edge: e, Value: 0.1 + rng.Float64()*3}
		case 1:
			return Op{Kind: OpClose, Edge: graph.EdgeID(rng.Intn(g.NumEdges()))}
		case 2:
			return Op{Kind: OpReopen, Edge: graph.EdgeID(rng.Intn(g.NumEdges()))}
		case 3:
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			return Op{Kind: OpInsertObject, Edge: e, Value: rng.Float64() * 0.5, Attr: int32(rng.Intn(4))}
		case 4:
			return Op{Kind: OpDeleteObject, Object: graph.ObjectID(rng.Intn(80))}
		default:
			return Op{Kind: OpSetObjectAttr, Object: graph.ObjectID(rng.Intn(80)), Attr: int32(rng.Intn(4))}
		}
	}

	for i := 0; i < 40; i++ {
		apply(randOp())
	}
	// Mid-stream snapshot, watermarked with the ops applied so far.
	data := saveToBytes(t, live, j.LastSeq())
	for i := 0; i < 40; i++ {
		apply(randOp())
	}

	// "Restart": load the snapshot, replay the journal tail.
	restored, afterSeq := loadFromBytes(t, data)
	if afterSeq == 0 {
		t.Fatal("snapshot lost its journal watermark")
	}
	if _, err := j.Replay(restored, afterSeq); err != nil {
		t.Logf("replay reported op error (expected when ops failed live): %v", err)
	}
	assertSameAnswers(t, live, restored, 400)

	// A second replay at the new watermark must be a no-op.
	n, _ := j.Replay(restored, j.LastSeq())
	if n != 0 {
		t.Fatalf("replay past the end applied %d ops", n)
	}
}

// TestApplyOpRejectsForeignIDs: a journal paired with the wrong (smaller)
// base state must produce errors, not index-out-of-range panics.
func TestApplyOpRejectsForeignIDs(t *testing.T) {
	f := tinyFixture(t)
	for _, op := range []Op{
		{Kind: OpSetDistance, Edge: 99999, Value: 2},
		{Kind: OpClose, Edge: 99999},
		{Kind: OpReopen, Edge: -1},
		{Kind: OpInsertObject, Edge: 99999, Value: 0.5},
		{Kind: OpAddRoad, U: -5, V: 99999, Value: 1},
		{Kind: OpDeleteObject, Object: 99999},
		{Kind: OpSetObjectAttr, Object: 99999, Attr: 1},
		{Kind: OpKind(200)},
	} {
		if err := ApplyOp(f, op); err == nil {
			t.Fatalf("ApplyOp(%+v) accepted a foreign ID", op)
		}
	}
}

// TestReplayDistinguishesOpErrors: per-op failures come back as *OpError
// (replay completed), unlike fatal read errors.
func TestReplayDistinguishesOpErrors(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "ops.wal")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Append(Op{Kind: OpClose, Edge: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Op{Kind: OpClose, Edge: 0}); err != nil { // will fail: already closed
		t.Fatal(err)
	}
	f := tinyFixture(t)
	applied, rerr := j.Replay(f, 0)
	if applied != 1 {
		t.Fatalf("applied %d ops, want 1", applied)
	}
	var opErr *OpError
	if !errors.As(rerr, &opErr) {
		t.Fatalf("replay error %v is not a *OpError", rerr)
	}
	if opErr.Seq != 2 || opErr.Op.Kind != OpClose {
		t.Fatalf("OpError = %+v, want seq 2 close", opErr)
	}
}

// TestJournalRecoversTornTail: a crash mid-append leaves a partial entry;
// reopening truncates it and keeps the intact prefix.
func TestJournalRecoversTornTail(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "torn.wal")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := j.Append(Op{Kind: OpClose, Edge: graph.EdgeID(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last entry in half.
	if err := os.WriteFile(jpath, data[:len(data)-entrySize/2], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatalf("OpenJournal after tear: %v", err)
	}
	defer j2.Close()
	if j2.LastSeq() != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", j2.LastSeq())
	}
	// Appending continues from the repaired position.
	seq, err := j2.Append(Op{Kind: OpReopen, Edge: 0})
	if err != nil || seq != 3 {
		t.Fatalf("Append after repair = (%d, %v), want (3, nil)", seq, err)
	}
}

// TestJournalRejectsMidFileCorruption: a damaged entry with intact
// entries after it is corruption, not a torn tail — silently truncating
// would discard committed ops, so the open must fail.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "mid.wal")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := j.Append(Op{Kind: OpClose, Edge: graph.EdgeID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	data[journalHeaderSize+entrySize+4] ^= 0xFF // damage entry 2 of 3
	if err := os.WriteFile(jpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(jpath); err == nil {
		t.Fatal("OpenJournal silently accepted mid-file corruption")
	}
}

// TestJournalFingerprintRejectsWrongBase: a journal stamped against one
// build must refuse to replay over a different base at the same
// watermark.
func TestJournalFingerprintRejectsWrongBase(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "fp.wal")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	base := tinyFixture(t)
	if err := j.BindBase(base, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Op{Kind: OpClose, Edge: 0}); err != nil {
		t.Fatal(err)
	}
	// Same base: replay passes the check and applies the op.
	if applied, err := j.Replay(base, 0); err != nil || applied != 1 {
		t.Fatalf("replay over the stamped base = (%d, %v), want (1, nil)", applied, err)
	}
	// Different base (other topology/weights): fatal, and NOT an OpError.
	other := buildFixture(t, 83)
	_, err = j.Replay(other, 0)
	if err == nil {
		t.Fatal("replay accepted a foreign base state")
	}
	var opErr *OpError
	if errors.As(err, &opErr) {
		t.Fatalf("fingerprint mismatch surfaced as per-op error: %v", err)
	}
	j.Close()
}

// TestJournalRejectsForeignFile: opening a non-journal file fails with a
// descriptive error instead of replaying garbage.
func TestJournalRejectsForeignFile(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "not-a.wal")
	if err := os.WriteFile(jpath, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(jpath); err == nil {
		t.Fatal("OpenJournal accepted a foreign file")
	}
}

// --- Corruption hardening: Load must fail descriptively, never panic ---

func TestLoadRejectsWrongMagic(t *testing.T) {
	data := saveToBytes(t, buildFixture(t, 51), 0)
	data[0] ^= 0xFF
	if _, _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("Load accepted bad magic")
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	data := saveToBytes(t, buildFixture(t, 51), 0)
	// Version field sits right after the magic; bump it far beyond current
	// and repair the header CRC so only the version check can fire.
	data[len(Magic)] = 0xEE
	fixHeaderCRC(data)
	_, _, err := Load(bytes.NewReader(data))
	if err == nil {
		t.Fatal("Load accepted a future format version")
	}
	if want := "version"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	data := saveToBytes(t, buildFixture(t, 51), 0)
	for _, n := range []int{0, 3, len(Magic), 15, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, _, err := Load(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("Load accepted a file truncated to %d bytes", n)
		}
	}
}

func TestLoadRejectsFlippedBytes(t *testing.T) {
	data := saveToBytes(t, buildFixture(t, 51), 0)
	// Flip one byte at a spread of offsets; every flip must be caught (by
	// the header CRC, a section CRC, or — if the flip lands in a CRC field
	// itself — the mismatch against the recomputed value).
	for _, off := range []int{1, 9, 13, 20, 40, 100, len(data) / 3, len(data) / 2, len(data) - 2} {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x40
		if _, _, err := Load(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("Load accepted a byte flip at offset %d", off)
		}
	}
}

func TestLoadRejectsTrailingGarbage(t *testing.T) {
	data := saveToBytes(t, buildFixture(t, 51), 0)
	if _, _, err := Load(bytes.NewReader(append(data, 0xAB))); err == nil {
		t.Fatal("Load accepted trailing garbage")
	}
}

// fixHeaderCRC recomputes the header checksum after a deliberate header
// edit, so tests can reach validation stages beyond it.
func fixHeaderCRC(data []byte) {
	headFixed := len(Magic) + 8
	count := int(binary.LittleEndian.Uint32(data[len(Magic)+4:]))
	tableEnd := headFixed + count*16
	if tableEnd+4 > len(data) {
		return
	}
	binary.LittleEndian.PutUint32(data[tableEnd:], crc32.Checksum(data[:tableEnd], crcTable))
}

func TestSaveFileAtomicAndLoadFile(t *testing.T) {
	f := buildFixture(t, 61)
	path := filepath.Join(t.TempDir(), "index.snap")
	if err := SaveFile(f, 7, path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	g, seq, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if seq != 7 {
		t.Fatalf("lastSeq = %d, want 7", seq)
	}
	assertSameAnswers(t, f, g, 500)
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after SaveFile: %v", entries)
	}
}
