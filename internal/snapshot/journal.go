package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"road/internal/core"
	"road/internal/graph"
)

// JournalMagic identifies a ROAD write-ahead journal file.
var JournalMagic = [8]byte{'R', 'O', 'A', 'D', 'J', 'R', 'N', 'L'}

// JournalVersion is the current journal format version.
const JournalVersion = 1

// OpKind enumerates the maintenance operations the journal records — the
// full mutation surface of the framework (§5.1 object updates, §5.2
// network updates).
type OpKind uint8

const (
	// OpSetDistance re-weights an edge (Value = new distance).
	OpSetDistance OpKind = 1
	// OpClose removes an edge (road closure).
	OpClose OpKind = 2
	// OpReopen restores a previously closed edge.
	OpReopen OpKind = 3
	// OpAddRoad inserts a new edge U–V (Value = distance).
	OpAddRoad OpKind = 4
	// OpInsertObject places an object on Edge (Value = offset from U).
	OpInsertObject OpKind = 5
	// OpDeleteObject removes Object.
	OpDeleteObject OpKind = 6
	// OpSetObjectAttr changes Object's attribute to Attr.
	OpSetObjectAttr OpKind = 7
)

// String names the op for logs and errors.
func (k OpKind) String() string {
	switch k {
	case OpSetDistance:
		return "set-distance"
	case OpClose:
		return "close"
	case OpReopen:
		return "reopen"
	case OpAddRoad:
		return "add-road"
	case OpInsertObject:
		return "insert-object"
	case OpDeleteObject:
		return "delete-object"
	case OpSetObjectAttr:
		return "set-attr"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one journaled maintenance operation. Unused fields are zero.
type Op struct {
	Kind   OpKind
	Edge   graph.EdgeID
	U, V   graph.NodeID
	Object graph.ObjectID
	Attr   int32
	// Value carries the op's scalar: distance for OpSetDistance/OpAddRoad,
	// offset for OpInsertObject.
	Value float64
}

// entrySize is the fixed on-disk size of one journal entry:
// seq(8) + kind(1) + edge(4) + u(4) + v(4) + object(4) + attr(4) +
// value(8) + crc(4).
const entrySize = 8 + 1 + 4 + 4 + 4 + 4 + 4 + 8 + 4

// journalHeaderSize is magic(8) + version(4) + base stamp: the sequence
// number (8) and state fingerprint (8) of the base state the journal was
// first attached to. Zeros until stamped (see BindBase).
const journalHeaderSize = 8 + 4 + 8 + 8

// Journal is an append-only write-ahead log of maintenance operations.
// Each op is appended — and optionally fsynced — BEFORE it is applied to
// the framework, so a crash mid-apply is recovered by replaying the entry
// on top of the last snapshot (ops are deterministic, and re-applying an
// op that failed live fails identically, converging to the same state).
// Entries carry a strictly increasing sequence number; a snapshot records
// the highest sequence it includes, and replay skips entries at or below
// that watermark.
//
// Append is safe for one writer at a time (roadd serializes mutations
// under the coordinator's write lock); the internal mutex additionally
// guards against misuse.
type Journal struct {
	// SyncEachAppend fsyncs after every append, making the journal
	// durable against machine crashes, not just process crashes, at a
	// per-op latency cost. Off by default.
	SyncEachAppend bool

	mu      sync.Mutex
	f       *os.File
	path    string
	lastSeq uint64
	size    int64

	// stampSeq/stampFP bind the journal to the base state it was first
	// attached to (stampFP == 0 means unstamped). Replay over a base at
	// exactly stampSeq verifies the fingerprint, turning a journal paired
	// with the wrong build or snapshot into a descriptive error instead
	// of silently mutating the wrong roads.
	stampSeq uint64
	stampFP  uint64
}

// OpenJournal opens (or creates) the journal at path, validates its
// header, scans existing entries to find the last sequence number, and
// truncates a torn tail entry left by a crash mid-append.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover validates the header (writing a fresh one into an empty file)
// and scans entries, truncating after the last intact one.
func (j *Journal) recover() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if info.Size() == 0 {
		var header [journalHeaderSize]byte
		copy(header[:], JournalMagic[:])
		binary.LittleEndian.PutUint32(header[8:], JournalVersion)
		// Base stamp stays zero until BindBase.
		if _, err := j.f.Write(header[:]); err != nil {
			return fmt.Errorf("journal: writing header: %w", err)
		}
		j.size = journalHeaderSize
		return nil
	}
	var header [journalHeaderSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(j.f, 0, journalHeaderSize), header[:]); err != nil {
		return fmt.Errorf("journal: truncated header: %w", err)
	}
	if [8]byte(header[:8]) != JournalMagic {
		return fmt.Errorf("journal: bad magic %q: not a ROAD journal", header[:8])
	}
	if v := binary.LittleEndian.Uint32(header[8:]); v == 0 || v > JournalVersion {
		return fmt.Errorf("journal: format version %d not supported (this build reads ≤ %d)", v, JournalVersion)
	}
	j.stampSeq = binary.LittleEndian.Uint64(header[12:])
	j.stampFP = binary.LittleEndian.Uint64(header[20:])
	offset := int64(journalHeaderSize)
	var buf [entrySize]byte
	for {
		if _, err := j.f.ReadAt(buf[:], offset); err != nil {
			break // clean EOF or a partial final record
		}
		seq, _, ok := decodeEntry(buf[:])
		if !ok || seq <= j.lastSeq {
			// A crash mid-append can only damage the FINAL record. A bad or
			// out-of-order entry with further entries behind it is mid-file
			// corruption: truncating would silently discard committed
			// (possibly fsynced) ops, so refuse to open instead.
			if info.Size()-offset > entrySize {
				return fmt.Errorf("journal: corrupt entry at offset %d with %d bytes after it (not a torn tail); refusing to open",
					offset, info.Size()-offset-entrySize)
			}
			break // torn tail: drop the damaged final record
		}
		j.lastSeq = seq
		offset += entrySize
	}
	if offset < info.Size() {
		if err := j.f.Truncate(offset); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	j.size = offset
	return nil
}

// LastSeq returns the sequence number of the most recent entry (0 when
// the journal is empty).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSeq
}

// Size returns the journal file's current size in bytes (header
// included). roadd's -journal-max-bytes auto-snapshot trigger polls it.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Rotate compacts the journal after a successful snapshot save: entries
// with sequence numbers at or below upTo — all included in the snapshot —
// are dropped, and the journal is re-stamped so a later replay refuses
// any base state older than upTo (those ops are gone). The rewrite is
// crash-safe: a fresh journal is assembled in a temp file and atomically
// renamed over the old one.
//
// f must be the framework the journal is attached to, in its current
// state. When the rotation drops every entry (upTo == LastSeq(), the
// normal snapshot-then-rotate flow under one write lock), the new base
// stamp carries f's fingerprint; when entries survive, the at-upTo state
// no longer exists to fingerprint, so only the watermark guard is kept.
func (j *Journal) Rotate(f *core.Framework, upTo uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if upTo > j.lastSeq {
		return fmt.Errorf("journal: rotate watermark %d beyond last sequence %d", upTo, j.lastSeq)
	}
	if j.path == "" {
		return fmt.Errorf("journal: not file-backed")
	}

	var fp uint64
	if upTo == j.lastSeq {
		fp = Fingerprint(f)
	}
	var header [journalHeaderSize]byte
	copy(header[:], JournalMagic[:])
	binary.LittleEndian.PutUint32(header[8:], JournalVersion)
	binary.LittleEndian.PutUint64(header[12:], upTo)
	binary.LittleEndian.PutUint64(header[20:], fp)

	tmpPath := j.path + ".rotate"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotating: %w", err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmpPath) }
	if _, err := tmp.Write(header[:]); err != nil {
		cleanup()
		return fmt.Errorf("journal: rotating: %w", err)
	}
	// Copy surviving entries (seq > upTo) verbatim.
	kept := int64(0)
	var buf [entrySize]byte
	for offset := int64(journalHeaderSize); offset+entrySize <= j.size; offset += entrySize {
		if _, err := j.f.ReadAt(buf[:], offset); err != nil {
			cleanup()
			return fmt.Errorf("journal: rotating: reading entry at %d: %w", offset, err)
		}
		seq, _, ok := decodeEntry(buf[:])
		if !ok {
			cleanup()
			return fmt.Errorf("journal: rotating: corrupt entry at offset %d", offset)
		}
		if seq <= upTo {
			continue
		}
		if _, err := tmp.Write(buf[:]); err != nil {
			cleanup()
			return fmt.Errorf("journal: rotating: %w", err)
		}
		kept++
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("journal: rotating: %w", err)
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		cleanup()
		return fmt.Errorf("journal: rotating: %w", err)
	}
	// Keep writing through the already-open tmp handle: after the rename
	// it IS the file at j.path (same inode), so there is no reopen that
	// could fail and leave the journal appending to an unlinked file.
	j.f.Close()
	j.f = tmp
	j.size = journalHeaderSize + kept*entrySize
	j.stampSeq = upTo
	j.stampFP = fp
	// lastSeq is unchanged: the sequence space keeps counting forward.
	return nil
}

// Entries iterates the journal's intact entries with sequence numbers
// greater than afterSeq, in order, invoking fn for each. A non-nil error
// from fn aborts the iteration and is returned verbatim; read or
// corruption errors abort with a descriptive error. Unlike Replay it
// applies nothing and performs no base-stamp validation — callers that
// replay through their own apply path (the sharded router) must run
// CheckBase first.
func (j *Journal) Entries(afterSeq uint64, fn func(seq uint64, op Op) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var buf [entrySize]byte
	for offset := int64(journalHeaderSize); offset+entrySize <= j.size; offset += entrySize {
		if _, err := j.f.ReadAt(buf[:], offset); err != nil {
			return fmt.Errorf("journal: reading entry at %d: %w", offset, err)
		}
		seq, op, ok := decodeEntry(buf[:])
		if !ok {
			return fmt.Errorf("journal: corrupt entry at offset %d", offset)
		}
		if seq <= afterSeq {
			continue
		}
		if err := fn(seq, op); err != nil {
			return err
		}
	}
	return nil
}

// CheckBase validates that a base state (watermark afterSeq, framework f)
// is a legal replay target for this journal — the same guard Replay runs
// internally, exposed for callers that iterate with Entries.
func (j *Journal) CheckBase(f *core.Framework, afterSeq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkBaseLocked(f, afterSeq)
}

func (j *Journal) checkBaseLocked(f *core.Framework, afterSeq uint64) error {
	if j.stampSeq == 0 && j.stampFP == 0 {
		return nil // never stamped
	}
	// A base OLDER than the journal's stamped watermark is missing the
	// ops 1..stampSeq that lived before this journal existed (rotated
	// away, or recorded before the journal was created) — replaying the
	// tail onto it would produce silently wrong roads.
	if afterSeq < j.stampSeq {
		return fmt.Errorf("journal: base state watermark %d predates the journal's base %d: the ops in between are not in this journal (rotated away?)", afterSeq, j.stampSeq)
	}
	if afterSeq == j.stampSeq && j.stampFP != 0 {
		if fp := Fingerprint(f); fp != j.stampFP {
			return fmt.Errorf("journal: base state fingerprint %016x does not match the journal's %016x (journal was recorded against a different build or snapshot)", fp, j.stampFP)
		}
	}
	return nil
}

// Fingerprint computes a cheap identity of the framework's current
// state: graph shape, a topology/weight sample, object ID watermark and
// epoch. Two states with different builds (other flags, seeds, datasets)
// fingerprint differently; the same state restored from a snapshot
// fingerprints identically. Never returns 0 (0 marks "unstamped").
func Fingerprint(f *core.Framework) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= prime64
			v >>= 8
		}
	}
	g := f.Graph()
	mix(uint64(g.NumNodes()))
	mix(uint64(g.NumEdges()))
	mix(uint64(f.Objects().NextID()))
	mix(f.Epoch())
	for e := 0; e < g.NumEdges() && e < 64; e++ {
		ed := g.Edge(graph.EdgeID(e))
		mix(uint64(uint32(ed.U))<<32 | uint64(uint32(ed.V)))
		mix(math.Float64bits(ed.Weight))
	}
	if h == 0 {
		h = 1
	}
	return h
}

// BindBase stamps an empty, unstamped journal with the identity of the
// base state it is being attached to: the watermark sequence and the
// state fingerprint. Already-stamped or non-empty journals are left
// untouched (their binding happened when they were first used).
func (j *Journal) BindBase(f *core.Framework, baseSeq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stampFP != 0 || j.size > journalHeaderSize {
		return nil
	}
	var stamp [16]byte
	fp := Fingerprint(f)
	binary.LittleEndian.PutUint64(stamp[:], baseSeq)
	binary.LittleEndian.PutUint64(stamp[8:], fp)
	if _, err := j.f.WriteAt(stamp[:], 12); err != nil {
		return fmt.Errorf("journal: stamping base: %w", err)
	}
	j.stampSeq = baseSeq
	j.stampFP = fp
	return nil
}

// EnsureSeq fast-forwards the sequence counter to at least seq, without
// writing anything. A DB whose state already includes journal sequence N
// (from a loaded snapshot) must attach a fresh or rotated journal with
// EnsureSeq(N), so new appends land at N+1 and a later replay-after-N
// does not skip them.
func (j *Journal) EnsureSeq(seq uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq > j.lastSeq {
		j.lastSeq = seq
	}
}

// Append writes op as the next entry and returns its sequence number.
// Call it BEFORE applying the op (write-ahead ordering).
func (j *Journal) Append(op Op) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := j.lastSeq + 1
	buf := encodeEntry(seq, op)
	if _, err := j.f.WriteAt(buf, j.size); err != nil {
		return 0, fmt.Errorf("journal: appending op %s: %w", op.Kind, err)
	}
	if j.SyncEachAppend {
		if err := j.f.Sync(); err != nil {
			return 0, fmt.Errorf("journal: syncing: %w", err)
		}
	}
	j.lastSeq = seq
	j.size += entrySize
	return seq, nil
}

// Sync flushes buffered journal writes to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// OpError reports a journal entry whose application failed during
// replay. It is EXPECTED, not fatal: an op that failed when first
// executed fails identically on replay (ops are deterministic), leaving
// the same state behind. Callers distinguish it from fatal replay errors
// (unreadable file, corrupt entry — the journal could not be fully
// processed) with errors.As.
type OpError struct {
	Seq uint64
	Op  Op
	Err error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("journal: replaying seq %d (%s): %v", e.Seq, e.Op.Kind, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// Replay applies every entry with sequence number greater than afterSeq
// to f, in order, and returns how many were applied. A non-nil error is
// either a *OpError (the last expected per-op failure; replay completed)
// or a fatal read/corruption error (replay aborted mid-journal — the
// framework is missing the remaining ops and must not serve).
func (j *Journal) Replay(f *core.Framework, afterSeq uint64) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Guard the base pairing: the base must not predate the journal's
	// stamp (rotation discards older ops), and a base exactly AT the
	// stamp must fingerprint-match the state the journal was bound to.
	if err := j.checkBaseLocked(f, afterSeq); err != nil {
		return 0, err
	}
	applied := 0
	var lastOpErr error
	offset := int64(journalHeaderSize)
	var buf [entrySize]byte
	for offset+entrySize <= j.size {
		if _, err := j.f.ReadAt(buf[:], offset); err != nil {
			return applied, fmt.Errorf("journal: reading entry at %d: %w", offset, err)
		}
		offset += entrySize
		seq, op, ok := decodeEntry(buf[:])
		if !ok {
			return applied, fmt.Errorf("journal: corrupt entry at offset %d", offset-entrySize)
		}
		if seq <= afterSeq {
			continue
		}
		if err := ApplyOp(f, op); err != nil {
			lastOpErr = &OpError{Seq: seq, Op: op, Err: err}
			continue
		}
		applied++
	}
	return applied, lastOpErr
}

// ErrUnknownOp reports a journal entry whose kind this build cannot apply.
var ErrUnknownOp = errors.New("journal: unknown op kind")

// ApplyOp executes one journaled operation against the framework, through
// the exact same entry points live maintenance uses. IDs are bounds-
// checked first: the graph layer indexes dense arrays and would panic on
// an edge ID from a journal paired with the wrong (smaller) base state,
// and replay promises descriptive errors, never panics.
func ApplyOp(f *core.Framework, op Op) error {
	checkEdge := func(e graph.EdgeID) error {
		if e < 0 || int(e) >= f.Graph().NumEdges() {
			return fmt.Errorf("edge %d outside base state (%d edges): journal does not match this snapshot/build", e, f.Graph().NumEdges())
		}
		return nil
	}
	switch op.Kind {
	case OpSetDistance:
		if err := checkEdge(op.Edge); err != nil {
			return err
		}
		_, err := f.SetEdgeWeight(op.Edge, op.Value)
		return err
	case OpClose:
		if err := checkEdge(op.Edge); err != nil {
			return err
		}
		_, err := f.DeleteEdge(op.Edge)
		return err
	case OpReopen:
		if err := checkEdge(op.Edge); err != nil {
			return err
		}
		_, err := f.RestoreEdge(op.Edge)
		return err
	case OpAddRoad:
		_, _, err := f.AddEdge(op.U, op.V, op.Value)
		return err
	case OpInsertObject:
		if err := checkEdge(op.Edge); err != nil {
			return err
		}
		_, err := f.InsertObject(op.Edge, op.Value, op.Attr)
		return err
	case OpDeleteObject:
		return f.DeleteObject(op.Object)
	case OpSetObjectAttr:
		return f.UpdateObjectAttr(op.Object, op.Attr)
	}
	return fmt.Errorf("%w: %d", ErrUnknownOp, op.Kind)
}

// encodeEntry serializes one entry with its trailing CRC.
func encodeEntry(seq uint64, op Op) []byte {
	buf := make([]byte, entrySize)
	binary.LittleEndian.PutUint64(buf[0:], seq)
	buf[8] = byte(op.Kind)
	binary.LittleEndian.PutUint32(buf[9:], uint32(op.Edge))
	binary.LittleEndian.PutUint32(buf[13:], uint32(op.U))
	binary.LittleEndian.PutUint32(buf[17:], uint32(op.V))
	binary.LittleEndian.PutUint32(buf[21:], uint32(op.Object))
	binary.LittleEndian.PutUint32(buf[25:], uint32(op.Attr))
	binary.LittleEndian.PutUint64(buf[29:], math.Float64bits(op.Value))
	crc := crc32.Checksum(buf[:entrySize-4], crcTable)
	binary.LittleEndian.PutUint32(buf[entrySize-4:], crc)
	return buf
}

// decodeEntry parses one entry, reporting ok=false on checksum mismatch
// or an unknown op kind.
func decodeEntry(buf []byte) (uint64, Op, bool) {
	crc := binary.LittleEndian.Uint32(buf[entrySize-4:])
	if crc32.Checksum(buf[:entrySize-4], crcTable) != crc {
		return 0, Op{}, false
	}
	seq := binary.LittleEndian.Uint64(buf[0:])
	op := Op{
		Kind:   OpKind(buf[8]),
		Edge:   graph.EdgeID(binary.LittleEndian.Uint32(buf[9:])),
		U:      graph.NodeID(binary.LittleEndian.Uint32(buf[13:])),
		V:      graph.NodeID(binary.LittleEndian.Uint32(buf[17:])),
		Object: graph.ObjectID(binary.LittleEndian.Uint32(buf[21:])),
		Attr:   int32(binary.LittleEndian.Uint32(buf[25:])),
		Value:  math.Float64frombits(binary.LittleEndian.Uint64(buf[29:])),
	}
	if op.Kind < OpSetDistance || op.Kind > OpSetObjectAttr {
		return 0, Op{}, false
	}
	return seq, op, true
}
