package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"road/internal/geom"
	"road/internal/graph"
)

// WriteCSV emits a network (and optionally its objects) in the simple
// line-per-record format cmd/roadgen produces:
//
//	node,<id>,<x>,<y>
//	edge,<id>,<u>,<v>,<weight>
//	object,<id>,<edge>,<du>,<attr>
//
// Node and edge IDs are written in order, so a round trip preserves them.
// Removed edges are skipped.
func WriteCSV(w io.Writer, g *graph.Graph, objects *graph.ObjectSet) error {
	bw := bufio.NewWriter(w)
	for n := 0; n < g.NumNodes(); n++ {
		p := g.Coord(graph.NodeID(n))
		fmt.Fprintf(bw, "node,%d,%g,%g\n", n, p.X, p.Y)
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.Removed {
			continue
		}
		fmt.Fprintf(bw, "edge,%d,%d,%d,%g\n", e, ed.U, ed.V, ed.Weight)
	}
	if objects != nil {
		for _, o := range objects.All() {
			fmt.Fprintf(bw, "object,%d,%d,%g,%d\n", o.ID, o.Edge, o.DU, o.Attr)
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format back into a network and object set.
// Node records must precede the edges that use them, and edge records the
// objects on them — the order WriteCSV produces. Edge and node IDs must
// appear in ascending dense order (gaps from removed edges are rejected;
// regenerate the file for compacted IDs).
func ReadCSV(r io.Reader) (*graph.Graph, *graph.ObjectSet, error) {
	g := graph.New(0, 0)
	var objects *graph.ObjectSet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		switch fields[0] {
		case "node":
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("dataset: line %d: node wants 4 fields", lineNo)
			}
			id, err1 := strconv.Atoi(fields[1])
			x, err2 := strconv.ParseFloat(fields[2], 64)
			y, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, nil, fmt.Errorf("dataset: line %d: bad node record", lineNo)
			}
			if got := g.AddNode(geom.Point{X: x, Y: y}); int(got) != id {
				return nil, nil, fmt.Errorf("dataset: line %d: node ID %d out of order (expected %d)", lineNo, id, got)
			}
		case "edge":
			if len(fields) != 5 {
				return nil, nil, fmt.Errorf("dataset: line %d: edge wants 5 fields", lineNo)
			}
			id, err1 := strconv.Atoi(fields[1])
			u, err2 := strconv.Atoi(fields[2])
			v, err3 := strconv.Atoi(fields[3])
			wgt, err4 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, nil, fmt.Errorf("dataset: line %d: bad edge record", lineNo)
			}
			got, err := g.AddEdge(graph.NodeID(u), graph.NodeID(v), wgt)
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
			}
			if int(got) != id {
				return nil, nil, fmt.Errorf("dataset: line %d: edge ID %d out of order (expected %d)", lineNo, id, got)
			}
		case "object":
			if len(fields) != 5 {
				return nil, nil, fmt.Errorf("dataset: line %d: object wants 5 fields", lineNo)
			}
			if objects == nil {
				objects = graph.NewObjectSet(g)
			}
			e, err1 := strconv.Atoi(fields[2])
			du, err2 := strconv.ParseFloat(fields[3], 64)
			attr, err3 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, nil, fmt.Errorf("dataset: line %d: bad object record", lineNo)
			}
			if _, err := objects.Add(graph.EdgeID(e), du, int32(attr)); err != nil {
				return nil, nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
			}
		default:
			return nil, nil, fmt.Errorf("dataset: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if objects == nil {
		objects = graph.NewObjectSet(g)
	}
	return g, objects, nil
}
