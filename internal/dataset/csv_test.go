package dataset

import (
	"bytes"
	"strings"
	"testing"

	"road/internal/graph"
)

func TestCSVRoundTrip(t *testing.T) {
	g := MustGenerate(Spec{Name: "rt", Nodes: 200, Edges: 230, Seed: 1})
	objects := PlaceUniform(g, 20, 2, 0, 7)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, g, objects); err != nil {
		t.Fatal(err)
	}
	g2, objects2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip sizes: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for n := 0; n < g.NumNodes(); n++ {
		if g.Coord(graph.NodeID(n)) != g2.Coord(graph.NodeID(n)) {
			t.Fatalf("node %d coords differ", n)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		a, b := g.Edge(graph.EdgeID(e)), g2.Edge(graph.EdgeID(e))
		if a.U != b.U || a.V != b.V || a.Weight != b.Weight {
			t.Fatalf("edge %d differs: %+v vs %+v", e, a, b)
		}
	}
	if objects2.Len() != objects.Len() {
		t.Fatalf("objects: %d vs %d", objects2.Len(), objects.Len())
	}
	wantObjs, gotObjs := objects.All(), objects2.All()
	for i := range wantObjs {
		if wantObjs[i].Edge != gotObjs[i].Edge || wantObjs[i].Attr != gotObjs[i].Attr {
			t.Fatalf("object %d differs", i)
		}
	}
}

func TestCSVSkipsRemovedEdges(t *testing.T) {
	g := MustGenerate(Spec{Name: "rm", Nodes: 50, Edges: 60, Seed: 3})
	g.RemoveEdge(5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	// Removed edge breaks dense ordering: reader must reject.
	if _, _, err := ReadCSV(&buf); err == nil {
		t.Fatal("gapped edge IDs accepted")
	}
}

func TestCSVCommentsAndBlanks(t *testing.T) {
	in := strings.NewReader(`
# a comment
node,0,0,0
node,1,1,0

edge,0,0,1,2.5
object,0,0,1.0,3
`)
	g, objects, err := ReadCSV(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 || objects.Len() != 1 {
		t.Fatalf("parsed %d nodes %d edges %d objects", g.NumNodes(), g.NumEdges(), objects.Len())
	}
	o := objects.All()[0]
	if o.Attr != 3 || o.DU != 1.0 {
		t.Fatalf("object = %+v", o)
	}
}

func TestCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"frob,1,2",
		"node,0,0",                              // too few fields
		"node,5,0,0",                            // out-of-order node ID
		"edge,0,0,1,1",                          // endpoints not declared
		"node,0,x,0",                            // bad float
		"node,0,0,0\nnode,1,0,0\nedge,0,0,1,-4", // negative weight
		"node,0,0,0\nnode,1,0,0\nedge,0,0,1,1\nobject,0,0,9,0", // offset beyond edge
	}
	for _, c := range cases {
		if _, _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("malformed input accepted: %q", c)
		}
	}
}

func TestCSVEmptyInput(t *testing.T) {
	g, objects, err := ReadCSV(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || objects.Len() != 0 {
		t.Fatal("empty input produced content")
	}
}
