package dataset

import (
	"math"
	"testing"

	"road/internal/graph"
)

func TestGenerateSmall(t *testing.T) {
	s := Spec{Name: "tiny", Nodes: 100, Edges: 120, Seed: 1}
	g := MustGenerate(s)
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d, want 100", g.NumNodes())
	}
	if g.NumEdges() != 120 {
		t.Fatalf("edges = %d, want 120", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("generated network not connected")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Spec{Name: "d", Nodes: 200, Edges: 230, Seed: 7}
	a := MustGenerate(s)
	b := MustGenerate(s)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same spec produced different sizes")
	}
	for e := 0; e < a.NumEdges(); e++ {
		ea, eb := a.Edge(graph.EdgeID(e)), b.Edge(graph.EdgeID(e))
		if ea != eb {
			t.Fatalf("edge %d differs: %+v vs %+v", e, ea, eb)
		}
	}
	for n := 0; n < a.NumNodes(); n++ {
		if a.Coord(graph.NodeID(n)) != b.Coord(graph.NodeID(n)) {
			t.Fatalf("node %d coordinates differ", n)
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	if _, err := Generate(Spec{Nodes: 1, Edges: 5}); err == nil {
		t.Fatal("1-node spec accepted")
	}
	if _, err := Generate(Spec{Nodes: 10, Edges: 3}); err == nil {
		t.Fatal("sub-spanning-tree edge count accepted")
	}
}

func TestGenerateTreeOnly(t *testing.T) {
	// Exactly Nodes-1 edges: a spanning tree.
	g := MustGenerate(Spec{Name: "tree", Nodes: 64, Edges: 63, Seed: 3})
	if !g.Connected() {
		t.Fatal("spanning tree not connected")
	}
	if g.NumEdges() != 63 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestGenerateWeightsExceedEuclidean(t *testing.T) {
	// The Euclidean lower bound the IER baseline needs must hold.
	g := MustGenerate(Spec{Name: "w", Nodes: 500, Edges: 600, Seed: 5})
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		eu := g.Coord(ed.U).Dist(g.Coord(ed.V))
		if ed.Weight < eu-1e-12 {
			t.Fatalf("edge %d: weight %g below euclidean %g", e, ed.Weight, eu)
		}
	}
	if graph.EuclideanScale(g) < 1-1e-12 {
		t.Fatalf("EuclideanScale = %g, want ≥ 1", graph.EuclideanScale(g))
	}
}

func TestGenerateSparsityMatchesSpec(t *testing.T) {
	// Average degree of the CA-class generator should sit near the real
	// network's ≈2.06.
	g := MustGenerate(Scaled(CA(), 0.05))
	avg := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if avg < 1.9 || avg > 2.3 {
		t.Fatalf("average degree %g outside road-network band", avg)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled(NA(), 0.1)
	if s.Nodes != 17581 {
		t.Fatalf("scaled nodes = %d", s.Nodes)
	}
	if s.Edges < s.Nodes-1 {
		t.Fatal("scaled spec under-edged")
	}
	if Scaled(CA(), 0) != CA() {
		t.Fatal("invalid factor should return spec unchanged")
	}
	if Scaled(CA(), 2) != CA() {
		t.Fatal("factor > 1 should return spec unchanged")
	}
	tiny := Scaled(CA(), 1e-9)
	if tiny.Nodes < 16 {
		t.Fatal("scaled below minimum size")
	}
}

func TestSpecConstants(t *testing.T) {
	cases := []struct {
		s    Spec
		n, m int
	}{
		{CA(), 21048, 21693},
		{NA(), 175813, 179179},
		{SF(), 174956, 223001},
	}
	for _, c := range cases {
		if c.s.Nodes != c.n || c.s.Edges != c.m {
			t.Fatalf("%s spec = %d/%d, want %d/%d", c.s.Name, c.s.Nodes, c.s.Edges, c.n, c.m)
		}
	}
}

func TestPlaceUniform(t *testing.T) {
	g := MustGenerate(Spec{Name: "p", Nodes: 300, Edges: 350, Seed: 11})
	os := PlaceUniform(g, 50, 42)
	if os.Len() != 50 {
		t.Fatalf("placed %d objects, want 50", os.Len())
	}
	for _, o := range os.All() {
		ed := g.Edge(o.Edge)
		if o.DU < 0 || o.DU > ed.Weight {
			t.Fatalf("object %d offset %g outside edge weight %g", o.ID, o.DU, ed.Weight)
		}
		if math.Abs(o.DU+o.DV-ed.Weight) > 1e-9 {
			t.Fatalf("object %d offsets do not sum to weight", o.ID)
		}
	}
	// Determinism.
	os2 := PlaceUniform(g, 50, 42)
	a, b := os.All(), os2.All()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different placements")
		}
	}
}

func TestPlaceUniformAttrsCycle(t *testing.T) {
	g := MustGenerate(Spec{Name: "a", Nodes: 100, Edges: 120, Seed: 2})
	os := PlaceUniform(g, 6, 1, 10, 20, 30)
	counts := map[int32]int{}
	for _, o := range os.All() {
		counts[o.Attr]++
	}
	if counts[10] != 2 || counts[20] != 2 || counts[30] != 2 {
		t.Fatalf("attr cycle counts = %v", counts)
	}
}

func TestPlaceClusteredIsConcentrated(t *testing.T) {
	g := MustGenerate(Spec{Name: "c", Nodes: 2500, Edges: 2800, Seed: 13})
	clustered := PlaceClustered(g, 200, 3, 99)
	uniform := PlaceUniform(g, 200, 99)
	if clustered.Len() != 200 {
		t.Fatalf("clustered placed %d", clustered.Len())
	}
	// Mean pairwise midpoint distance should be clearly smaller for the
	// clustered placement.
	spread := func(os *graph.ObjectSet) float64 {
		objs := os.All()
		var sum float64
		var cnt int
		for i := 0; i < len(objs); i += 5 {
			for j := i + 5; j < len(objs); j += 5 {
				ei, ej := g.Edge(objs[i].Edge), g.Edge(objs[j].Edge)
				sum += g.Coord(ei.U).Dist(g.Coord(ej.U))
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	if spread(clustered) >= spread(uniform)*0.8 {
		t.Fatalf("clustered spread %g not clearly below uniform %g", spread(clustered), spread(uniform))
	}
}

func TestRandomNodes(t *testing.T) {
	g := MustGenerate(Spec{Name: "q", Nodes: 100, Edges: 110, Seed: 4})
	qs := RandomNodes(g, 30, 5)
	if len(qs) != 30 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		if q < 0 || int(q) >= g.NumNodes() {
			t.Fatalf("query node %d out of range", q)
		}
	}
	qs2 := RandomNodes(g, 30, 5)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("same seed produced different query nodes")
		}
	}
}

func TestUnionFind(t *testing.T) {
	u := newUnionFind(5)
	if !u.union(0, 1) {
		t.Fatal("first union returned false")
	}
	if u.union(1, 0) {
		t.Fatal("repeated union returned true")
	}
	u.union(2, 3)
	if u.find(0) == u.find(2) {
		t.Fatal("disjoint sets merged")
	}
	u.union(1, 3)
	if u.find(0) != u.find(2) {
		t.Fatal("sets not merged after chain union")
	}
	if u.find(4) == u.find(0) {
		t.Fatal("singleton joined spuriously")
	}
}
