// Package dataset generates the synthetic road networks, object
// placements and query workloads used throughout the evaluation.
//
// The paper experiments on three real networks from [14]: CA (California
// highways), NA (North America highways) and SF (San Francisco streets).
// Those datasets cannot be redistributed here, so this package builds
// seeded synthetic stand-ins matched to their published node/edge counts
// and sparsity (average degree ≈ 2.0–2.6 — road networks are barely denser
// than trees). Networks are produced as jittered grids: a random spanning
// tree over grid adjacency (giving winding, road-like corridors) topped up
// with extra nearby links until the target edge count is reached. Edge
// weights are Euclidean lengths times a detour factor ≥ 1, so the Euclidean
// lower bound the IER baseline depends on holds, just as it does on real
// road data.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"road/internal/geom"
	"road/internal/graph"
)

// Spec describes a synthetic network to generate.
type Spec struct {
	Name  string
	Nodes int
	Edges int // target edge count; must be ≥ Nodes-1 (spanning tree)
	Seed  int64
}

// CA returns the spec matching the California highway network
// (21,048 nodes / 21,693 edges).
func CA() Spec { return Spec{Name: "CA", Nodes: 21048, Edges: 21693, Seed: 0xca} }

// NA returns the spec matching the North America highway network
// (175,813 nodes / 179,179 edges).
func NA() Spec { return Spec{Name: "NA", Nodes: 175813, Edges: 179179, Seed: 0x4a} }

// SF returns the spec matching the San Francisco road map
// (174,956 nodes / 223,001 edges).
func SF() Spec { return Spec{Name: "SF", Nodes: 174956, Edges: 223001, Seed: 0x5f} }

// Scaled returns a copy of s shrunk by factor (> 0, ≤ 1), preserving the
// edge/node ratio. Used to run the NA/SF experiments at laptop scale while
// keeping the topology class.
func Scaled(s Spec, factor float64) Spec {
	if factor <= 0 || factor > 1 {
		return s
	}
	n := int(float64(s.Nodes) * factor)
	if n < 16 {
		n = 16
	}
	m := int(float64(s.Edges) * factor)
	if m < n-1 {
		m = n - 1
	}
	return Spec{
		Name:  fmt.Sprintf("%s/%.3g", s.Name, factor),
		Nodes: n,
		Edges: m,
		Seed:  s.Seed,
	}
}

// Generate builds the network described by s. The result is connected and
// deterministic for a given spec.
func Generate(s Spec) (*graph.Graph, error) {
	if s.Nodes < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 nodes, got %d", s.Nodes)
	}
	if s.Edges < s.Nodes-1 {
		return nil, fmt.Errorf("dataset: %d edges cannot connect %d nodes", s.Edges, s.Nodes)
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Lay nodes on a jittered w×h grid covering a square map.
	w := int(math.Ceil(math.Sqrt(float64(s.Nodes))))
	h := (s.Nodes + w - 1) / w
	const cell = 1.0
	g := graph.New(s.Nodes, s.Edges)
	idAt := make([]graph.NodeID, w*h)
	for i := range idAt {
		idAt[i] = graph.NoNode
	}
	count := 0
	for y := 0; y < h && count < s.Nodes; y++ {
		for x := 0; x < w && count < s.Nodes; x++ {
			jx := (rng.Float64() - 0.5) * 0.6 * cell
			jy := (rng.Float64() - 0.5) * 0.6 * cell
			id := g.AddNode(geom.Point{X: float64(x)*cell + jx, Y: float64(y)*cell + jy})
			idAt[y*w+x] = id
			count++
		}
	}

	// Candidate edges: 4-neighbour grid adjacency plus occasional diagonal
	// links, each with a random priority. Kruskal over the priorities gives
	// a uniform-ish random spanning tree with winding corridors; remaining
	// lowest-priority candidates top up to the edge target.
	type cand struct {
		u, v graph.NodeID
		prio float64
	}
	var cands []cand
	addCand := func(u, v graph.NodeID) {
		if u == graph.NoNode || v == graph.NoNode {
			return
		}
		cands = append(cands, cand{u: u, v: v, prio: rng.Float64()})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := idAt[y*w+x]
			if x+1 < w {
				addCand(u, idAt[y*w+x+1])
			}
			if y+1 < h {
				addCand(u, idAt[(y+1)*w+x])
			}
			// Sparse diagonals mimic highway shortcuts.
			if x+1 < w && y+1 < h && rng.Float64() < 0.15 {
				addCand(u, idAt[(y+1)*w+x+1])
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].prio < cands[j].prio })

	uf := newUnionFind(s.Nodes)
	weight := func(u, v graph.NodeID) float64 {
		detour := 1 + rng.Float64()*0.4
		return g.Coord(u).Dist(g.Coord(v)) * detour
	}
	added := 0
	var leftovers []cand
	for _, c := range cands {
		if uf.union(int(c.u), int(c.v)) {
			g.MustAddEdge(c.u, c.v, weight(c.u, c.v))
			added++
		} else {
			leftovers = append(leftovers, c)
		}
	}
	// The grid is connected, so the tree has exactly Nodes-1 edges.
	for _, c := range leftovers {
		if added >= s.Edges {
			break
		}
		g.MustAddEdge(c.u, c.v, weight(c.u, c.v))
		added++
	}
	if added < s.Edges {
		// Extremely dense targets can exhaust grid candidates; join random
		// nearby rows to finish.
		for added < s.Edges {
			u := graph.NodeID(rng.Intn(s.Nodes))
			v := graph.NodeID(rng.Intn(s.Nodes))
			if u == v {
				continue
			}
			g.MustAddEdge(u, v, weight(u, v))
			added++
		}
	}
	return g, nil
}

// MustGenerate is Generate that panics on error; for tests and benches.
func MustGenerate(s Spec) *graph.Graph {
	g, err := Generate(s)
	if err != nil {
		panic(err)
	}
	return g
}

// PlaceUniform places n objects uniformly at random across edges ("evenly
// distributed over those road networks", §6): edges are drawn uniformly,
// offsets uniformly along the edge. attrs, when non-empty, is cycled to
// assign attribute categories; otherwise all objects get attribute 0.
func PlaceUniform(g *graph.Graph, n int, seed int64, attrs ...int32) *graph.ObjectSet {
	rng := rand.New(rand.NewSource(seed))
	os := graph.NewObjectSet(g)
	m := g.NumEdges()
	for i := 0; i < n; i++ {
		var attr int32
		if len(attrs) > 0 {
			attr = attrs[i%len(attrs)]
		}
		for {
			e := graph.EdgeID(rng.Intn(m))
			ed := g.Edge(e)
			if ed.Removed {
				continue
			}
			os.MustAdd(e, rng.Float64()*ed.Weight, attr)
			break
		}
	}
	return os
}

// PlaceClustered places n objects concentrated around k map hot-spots (the
// skewed distribution footnote 3 says favours ROAD even more): each object
// picks a hot-spot, then the edge whose midpoint is nearest to a Gaussian
// sample around it.
func PlaceClustered(g *graph.Graph, n, k int, seed int64, attrs ...int32) *graph.ObjectSet {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	bounds := g.Bounds()
	spanX := bounds.Max.X - bounds.Min.X
	spanY := bounds.Max.Y - bounds.Min.Y
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{
			X: bounds.Min.X + rng.Float64()*spanX,
			Y: bounds.Min.Y + rng.Float64()*spanY,
		}
	}
	// Index edge midpoints on a coarse grid for nearest-edge lookup.
	const gridN = 64
	cellsX := make([][]graph.EdgeID, gridN*gridN)
	cellOf := func(p geom.Point) int {
		cx := clampIdx((p.X - bounds.Min.X) / spanX * gridN)
		cy := clampIdx((p.Y - bounds.Min.Y) / spanY * gridN)
		return cy*gridN + cx
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		if ed.Removed {
			continue
		}
		mid := geom.Point{
			X: (g.Coord(ed.U).X + g.Coord(ed.V).X) / 2,
			Y: (g.Coord(ed.U).Y + g.Coord(ed.V).Y) / 2,
		}
		c := cellOf(mid)
		cellsX[c] = append(cellsX[c], graph.EdgeID(e))
	}
	sigma := math.Max(spanX, spanY) * 0.03
	os := graph.NewObjectSet(g)
	for i := 0; i < n; i++ {
		var attr int32
		if len(attrs) > 0 {
			attr = attrs[i%len(attrs)]
		}
		c := centers[rng.Intn(k)]
		for {
			p := geom.Point{X: c.X + rng.NormFloat64()*sigma, Y: c.Y + rng.NormFloat64()*sigma}
			cell := cellsX[cellOf(p)]
			if len(cell) == 0 {
				continue
			}
			e := cell[rng.Intn(len(cell))]
			ed := g.Edge(e)
			os.MustAdd(e, rng.Float64()*ed.Weight, attr)
			break
		}
	}
	return os
}

func clampIdx(v float64) int {
	const gridN = 64
	i := int(v)
	if i < 0 {
		return 0
	}
	if i >= gridN {
		return gridN - 1
	}
	return i
}

// RandomNodes draws count query nodes uniformly at random (the evaluation
// issues 100 queries at random positions per data point).
func RandomNodes(g *graph.Graph, count int, seed int64) []graph.NodeID {
	rng := rand.New(rand.NewSource(seed))
	out := make([]graph.NodeID, count)
	for i := range out {
		out[i] = graph.NodeID(rng.Intn(g.NumNodes()))
	}
	return out
}

// unionFind is a plain disjoint-set with path halving and union by size.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int32 {
	p := int32(x)
	for u.parent[p] != p {
		u.parent[p] = u.parent[u.parent[p]]
		p = u.parent[p]
	}
	return p
}

// union merges the sets of a and b, reporting whether they were distinct.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}
