// Package apicompat is a compile-time guard over the deprecated v0 query
// surface: every wrapper the Store v1 redesign kept for compatibility is
// pinned here with its exact signature, so `go build ./...` (and the CI
// job running it) fails the moment one of them drifts or disappears
// before the planned removal PR. Nothing imports this package and none of
// these bindings are ever called — the assignments only have to type-check.
package apicompat

import "road"

// The deprecated ctx-less query wrappers, by exact signature.
var (
	_ func(road.NodeID, int, int32) ([]road.Result, road.Stats)        = (*road.DB)(nil).KNN
	_ func(road.NodeID, float64, int32) ([]road.Result, road.Stats)    = (*road.DB)(nil).Within
	_ func(road.NodeID, road.ObjectID) ([]road.NodeID, float64, error) = (*road.DB)(nil).PathTo

	_ func(road.NodeID, int, int32) ([]road.Result, road.Stats)        = (*road.Session)(nil).KNN
	_ func(road.NodeID, float64, int32) ([]road.Result, road.Stats)    = (*road.Session)(nil).Within
	_ func(road.NodeID, road.ObjectID) ([]road.NodeID, float64, error) = (*road.Session)(nil).PathTo

	_ func(road.NodeID, int, int32) ([]road.Result, road.Stats)        = (*road.ShardedDB)(nil).KNN
	_ func(road.NodeID, float64, int32) ([]road.Result, road.Stats)    = (*road.ShardedDB)(nil).Within
	_ func(road.NodeID, road.ObjectID) ([]road.NodeID, float64, error) = (*road.ShardedDB)(nil).PathTo

	_ func(road.NodeID, int, int32) ([]road.Result, road.Stats)        = (*road.ShardedSession)(nil).KNN
	_ func(road.NodeID, float64, int32) ([]road.Result, road.Stats)    = (*road.ShardedSession)(nil).Within
	_ func(road.NodeID, road.ObjectID) ([]road.NodeID, float64, error) = (*road.ShardedSession)(nil).PathTo
)

// Session constructors still hand out the concrete types.
var (
	_ func() *road.Session        = (*road.DB)(nil).NewSession
	_ func() *road.ShardedSession = (*road.ShardedDB)(nil).NewSession
)

// Persistence entry points predating Store.Save / Store.CompactJournal.
var (
	_ func(string) error = (*road.DB)(nil).SaveSnapshotFile
	_ func() error       = (*road.DB)(nil).CompactJournal
	_ func(string) error = (*road.ShardedDB)(nil).SaveSnapshotFiles
	_ func() error       = (*road.ShardedDB)(nil).CompactJournals
)
