package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Fatalf("Dist = %g, want 5", got)
	}
	if got := a.DistSq(b); got != 25 {
		t.Fatalf("DistSq = %g, want 25", got)
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 {
		t.Fatalf("empty rect area = %g", e.Area())
	}
	p := Point{1, 2}
	got := e.Extend(p)
	if got != RectOf(p) {
		t.Fatalf("Extend(empty, p) = %v, want %v", got, RectOf(p))
	}
	r := Rect{Point{0, 0}, Point{1, 1}}
	if e.Union(r) != r || r.Union(e) != r {
		t.Fatal("Union with empty is not identity")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 5}}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 2}, true},
		{Point{0, 0}, true},  // corner inclusive
		{Point{10, 5}, true}, // corner inclusive
		{Point{11, 2}, false},
		{Point{5, -0.1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	b := Rect{Point{1, 1}, Point{3, 3}}
	c := Rect{Point{2.5, 2.5}, Point{4, 4}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping rects reported disjoint")
	}
	if a.Intersects(c) {
		t.Fatal("disjoint rects reported overlapping")
	}
	// Touching edges count as intersecting.
	d := Rect{Point{2, 0}, Point{3, 2}}
	if !a.Intersects(d) {
		t.Fatal("edge-touching rects reported disjoint")
	}
}

func TestRectUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := Rect{Point{math.Min(ax, bx), math.Min(ay, by)}, Point{math.Max(ax, bx), math.Max(ay, by)}}
		s := Rect{Point{math.Min(cx, dx), math.Min(cy, dy)}, Point{math.Max(cx, dx), math.Max(cy, dy)}}
		u := r.Union(s)
		return u.ContainsRect(r) && u.ContainsRect(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{Point{0, 0}, Point{2, 2}}
	if got := r.MinDist(Point{1, 1}); got != 0 {
		t.Fatalf("MinDist inside = %g, want 0", got)
	}
	if got := r.MinDist(Point{5, 2}); got != 3 {
		t.Fatalf("MinDist right = %g, want 3", got)
	}
	if got := r.MinDist(Point{5, 6}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("MinDist corner = %g, want 5", got)
	}
}

func TestMinDistIsLowerBound(t *testing.T) {
	// MINDIST(p, r) must lower-bound the distance from p to any point in r.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		r := Rect{
			Point{rng.Float64() * 10, rng.Float64() * 10},
			Point{},
		}
		r.Max = Point{r.Min.X + rng.Float64()*10, r.Min.Y + rng.Float64()*10}
		p := Point{rng.Float64()*40 - 10, rng.Float64()*40 - 10}
		// Sample a point inside r.
		in := Point{
			r.Min.X + rng.Float64()*(r.Max.X-r.Min.X),
			r.Min.Y + rng.Float64()*(r.Max.Y-r.Min.Y),
		}
		if md := r.MinDist(p); md > p.Dist(in)+1e-9 {
			t.Fatalf("MinDist %g exceeds actual distance %g", md, p.Dist(in))
		}
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	const order = 8
	n := uint64(1) << (2 * order)
	for d := uint64(0); d < n; d += 97 {
		x, y := HilbertD2XY(order, d)
		if got := HilbertXY2D(order, x, y); got != d {
			t.Fatalf("round trip d=%d -> (%d,%d) -> %d", d, x, y, got)
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive curve positions are adjacent grid cells (the locality
	// property the storage clustering relies on).
	const order = 6
	n := uint64(1) << (2 * order)
	px, py := HilbertD2XY(order, 0)
	for d := uint64(1); d < n; d++ {
		x, y := HilbertD2XY(order, d)
		manhattan := absDiff(x, px) + absDiff(y, py)
		if manhattan != 1 {
			t.Fatalf("cells at d=%d and d=%d are not adjacent: (%d,%d) vs (%d,%d)", d-1, d, px, py, x, y)
		}
		px, py = x, y
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestHilbertRankBounds(t *testing.T) {
	bounds := Rect{Point{0, 0}, Point{100, 100}}
	const order = 10
	max := uint64(1)<<(2*order) - 1
	cases := []Point{{0, 0}, {100, 100}, {50, 50}, {-5, 50}, {105, 105}}
	for _, p := range cases {
		r := HilbertRank(order, bounds, p)
		if r > max {
			t.Fatalf("rank %d out of range for %v", r, p)
		}
	}
	if HilbertRank(order, Rect{Point{1, 1}, Point{1, 1}}, Point{1, 1}) != 0 {
		t.Fatal("degenerate bounds should map to rank 0")
	}
}

func TestHilbertRankLocality(t *testing.T) {
	// Nearby points should usually have closer ranks than far points.
	// Statistical check: mean |rank delta| for close pairs < for far pairs.
	bounds := Rect{Point{0, 0}, Point{1, 1}}
	const order = 10
	rng := rand.New(rand.NewSource(11))
	var closeSum, farSum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		q := Point{p.X + (rng.Float64()-0.5)*0.01, p.Y + (rng.Float64()-0.5)*0.01}
		f := Point{rng.Float64(), rng.Float64()}
		rp := float64(HilbertRank(order, bounds, p))
		closeSum += math.Abs(rp - float64(HilbertRank(order, bounds, q)))
		farSum += math.Abs(rp - float64(HilbertRank(order, bounds, f)))
	}
	if closeSum >= farSum {
		t.Fatalf("Hilbert locality violated: close-pair rank delta %g >= far-pair %g", closeSum/trials, farSum/trials)
	}
}
