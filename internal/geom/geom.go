// Package geom supplies the small amount of planar geometry the road-network
// stack needs: points, axis-aligned rectangles, Euclidean distances, and a
// Hilbert space-filling curve used to cluster node records onto disk pages
// (the CCAM-style storage layout of the paper's evaluation, §6).
package geom

import "math"

// Point is a location in the plane. For road networks the coordinates are
// arbitrary map units; only relative distances matter.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance, avoiding the square root
// when only comparisons are needed.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Rect is an axis-aligned rectangle with Min ≤ Max on both axes.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns a rectangle that is the identity for Union: any point
// or rectangle extended into it yields that point or rectangle.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// RectOf returns the degenerate rectangle covering the single point p.
func RectOf(p Point) Rect { return Rect{Min: p, Max: p} }

// IsEmpty reports whether the rectangle covers no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Contains reports whether p lies in r (borders inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Extend returns the smallest rectangle covering r and the point p.
func (r Rect) Extend(p Point) Rect { return r.Union(RectOf(p)) }

// Area returns the rectangle's area (0 for empty or degenerate rectangles).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.Max.X - r.Min.X) * (r.Max.Y - r.Min.Y)
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// MinDist returns the smallest Euclidean distance from p to any point of r,
// 0 when p is inside r. This is the classic R-tree MINDIST bound.
func (r Rect) MinDist(p Point) float64 {
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// HilbertD2XY and HilbertXY2D implement the order-n Hilbert curve on a
// 2^order × 2^order grid. Mapping node coordinates to Hilbert ranks gives a
// locality-preserving 1-D ordering: nodes close on the map land on nearby
// disk pages, approximating CCAM's connectivity clustering.

// HilbertXY2D converts grid cell (x, y) to its distance along the Hilbert
// curve of the given order. x and y must be in [0, 2^order).
func HilbertXY2D(order uint, x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// HilbertD2XY converts a distance along the Hilbert curve of the given order
// back to its grid cell. It is the inverse of HilbertXY2D.
func HilbertD2XY(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < uint32(1)<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & (uint32(t) ^ rx)
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

func hilbertRot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// HilbertRank maps a point inside bounds onto the Hilbert curve of the given
// order. Points outside bounds are clamped. A zero-area bounds yields rank 0.
func HilbertRank(order uint, bounds Rect, p Point) uint64 {
	side := float64(uint64(1) << order)
	w := bounds.Max.X - bounds.Min.X
	h := bounds.Max.Y - bounds.Min.Y
	if w <= 0 || h <= 0 {
		return 0
	}
	fx := (p.X - bounds.Min.X) / w * side
	fy := (p.Y - bounds.Min.Y) / h * side
	x := clampU32(fx, side)
	y := clampU32(fy, side)
	return HilbertXY2D(order, x, y)
}

func clampU32(v, side float64) uint32 {
	if v < 0 {
		return 0
	}
	if v >= side {
		return uint32(side) - 1
	}
	return uint32(v)
}
