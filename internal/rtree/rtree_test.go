package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"road/internal/geom"
)

func randomEntries(rng *rand.Rand, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{P: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, ID: int32(i)}
	}
	return es
}

// bruteNN returns entries sorted by distance from q.
func bruteNN(es []Entry, q geom.Point) []Entry {
	out := append([]Entry(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := q.Dist(out[i].P), q.Dist(out[j].P)
		if di != dj {
			return di < dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if es, _ := tr.NN(geom.Point{}, 3); len(es) != 0 {
		t.Fatalf("NN on empty tree = %v", es)
	}
	if got := tr.WithinRadius(geom.Point{}, 10); len(got) != 0 {
		t.Fatalf("WithinRadius on empty tree = %v", got)
	}
	tr2 := BulkLoad(nil, 0)
	if tr2.Len() != 0 {
		t.Fatal("BulkLoad(nil) not empty")
	}
}

func TestBulkLoadAllSearchable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	es := randomEntries(rng, 1000)
	tr := BulkLoad(es, 16)
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Search(geom.Rect{Min: geom.Point{X: -1, Y: -1}, Max: geom.Point{X: 101, Y: 101}})
	if len(got) != 1000 {
		t.Fatalf("full-extent search returned %d, want 1000", len(got))
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	es := randomEntries(rng, 500)
	tr := BulkLoad(es, 8)
	for trial := 0; trial < 50; trial++ {
		r := geom.Rect{
			Min: geom.Point{X: rng.Float64() * 80, Y: rng.Float64() * 80},
		}
		r.Max = geom.Point{X: r.Min.X + rng.Float64()*30, Y: r.Min.Y + rng.Float64()*30}
		want := map[int32]bool{}
		for _, e := range es {
			if r.Contains(e.P) {
				want[e.ID] = true
			}
		}
		got := tr.Search(r)
		if len(got) != len(want) {
			t.Fatalf("trial %d: search returned %d, want %d", trial, len(got), len(want))
		}
		for _, e := range got {
			if !want[e.ID] {
				t.Fatalf("trial %d: unexpected entry %d", trial, e.ID)
			}
		}
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	es := randomEntries(rng, 300)
	tr := BulkLoad(es, 8)
	for trial := 0; trial < 30; trial++ {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		want := bruteNN(es, q)
		got, ds := tr.NN(q, 10)
		if len(got) != 10 {
			t.Fatalf("NN returned %d entries", len(got))
		}
		for i := range got {
			if q.Dist(got[i].P) != ds[i] {
				t.Fatalf("distance mismatch at %d", i)
			}
			// Compare by distance (ties may reorder IDs).
			if ds[i] != q.Dist(want[i].P) {
				t.Fatalf("trial %d: NN[%d] dist %g, brute %g", trial, i, ds[i], q.Dist(want[i].P))
			}
		}
		// Distances must be non-decreasing.
		for i := 1; i < len(ds); i++ {
			if ds[i] < ds[i-1] {
				t.Fatal("NN distances decrease")
			}
		}
	}
}

func TestNNIterExhausts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	es := randomEntries(rng, 100)
	tr := BulkLoad(es, 8)
	it := tr.NewNNIter(geom.Point{X: 50, Y: 50})
	count := 0
	for {
		_, _, ok := it.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 100 {
		t.Fatalf("iterator yielded %d entries, want 100", count)
	}
	if it.NodesVisited == 0 {
		t.Fatal("NodesVisited not counted")
	}
}

func TestWithinRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	es := randomEntries(rng, 400)
	tr := BulkLoad(es, 8)
	for trial := 0; trial < 30; trial++ {
		c := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		radius := rng.Float64() * 30
		want := 0
		for _, e := range es {
			if c.Dist(e.P) <= radius {
				want++
			}
		}
		got := tr.WithinRadius(c, radius)
		if len(got) != want {
			t.Fatalf("trial %d: WithinRadius = %d, want %d", trial, len(got), want)
		}
		for _, e := range got {
			if c.Dist(e.P) > radius {
				t.Fatalf("entry %d outside radius", e.ID)
			}
		}
	}
}

func TestDynamicInsertMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	es := randomEntries(rng, 500)
	tr := New(8)
	for _, e := range es {
		tr.Insert(e)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	q := geom.Point{X: 42, Y: 17}
	want := bruteNN(es, q)
	got, ds := tr.NN(q, 5)
	for i := range got {
		if ds[i] != q.Dist(want[i].P) {
			t.Fatalf("NN[%d] dist %g, brute %g", i, ds[i], q.Dist(want[i].P))
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	es := randomEntries(rng, 200)
	tr := BulkLoad(es, 8)
	// Delete half, verify NN never returns deleted entries.
	deleted := map[int32]bool{}
	for i := 0; i < 100; i++ {
		e := es[i]
		if !tr.Delete(e.P, e.ID) {
			t.Fatalf("Delete(%d) = false", e.ID)
		}
		deleted[e.ID] = true
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d after deletes", tr.Len())
	}
	got := tr.Search(geom.Rect{Min: geom.Point{X: -1, Y: -1}, Max: geom.Point{X: 101, Y: 101}})
	if len(got) != 100 {
		t.Fatalf("search after deletes = %d entries", len(got))
	}
	for _, e := range got {
		if deleted[e.ID] {
			t.Fatalf("deleted entry %d still indexed", e.ID)
		}
	}
	// Deleting a non-existent entry returns false.
	if tr.Delete(geom.Point{X: -50, Y: -50}, 9999) {
		t.Fatal("Delete of absent entry returned true")
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	es := randomEntries(rng, 50)
	tr := BulkLoad(es, 4)
	for _, e := range es {
		if !tr.Delete(e.P, e.ID) {
			t.Fatalf("Delete(%d) failed", e.ID)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.Insert(Entry{P: geom.Point{X: 1, Y: 1}, ID: 777})
	got, _ := tr.NN(geom.Point{}, 1)
	if len(got) != 1 || got[0].ID != 777 {
		t.Fatalf("NN after reuse = %v", got)
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Multiple entries at the same coordinates must all be retrievable.
	tr := New(4)
	p := geom.Point{X: 5, Y: 5}
	for i := int32(0); i < 10; i++ {
		tr.Insert(Entry{P: p, ID: i})
	}
	got := tr.WithinRadius(p, 0.001)
	if len(got) != 10 {
		t.Fatalf("duplicate-point search = %d entries, want 10", len(got))
	}
}
