// Package rtree provides the point R-tree used by the Euclidean
// distance-bound baseline ([16,19], §2): objects are indexed by their map
// coordinates, candidate objects are produced in increasing Euclidean
// distance (an incremental best-first NN iterator), and range queries
// return all points within a Euclidean radius. Construction is STR bulk
// loading; dynamic inserts and deletes support the update experiments.
package rtree

import (
	"sort"

	"road/internal/geom"
	"road/internal/pqueue"
)

// DefaultMaxEntries is the default node fan-out, sized so a node roughly
// fills a 4 KB page of (point, id) entries.
const DefaultMaxEntries = 64

// Entry is an indexed point with caller-defined identifier.
type Entry struct {
	P  geom.Point
	ID int32
}

type rnode struct {
	id       int32
	rect     geom.Rect
	leaf     bool
	entries  []Entry  // leaf
	children []*rnode // internal
}

func (n *rnode) recompute() {
	r := geom.EmptyRect()
	if n.leaf {
		for _, e := range n.entries {
			r = r.Extend(e.P)
		}
	} else {
		for _, c := range n.children {
			r = r.Union(c.rect)
		}
	}
	n.rect = r
}

// Tree is a point R-tree. The zero value is not usable; call New or BulkLoad.
type Tree struct {
	root       *rnode
	size       int
	maxEntries int
	nodes      int
	nextID     int32

	// OnNodeVisit, when non-nil, is invoked with the ID of every tree node
	// expanded during searches — one call per simulated index page.
	OnNodeVisit func(id int32)
}

func (t *Tree) newNode(leaf bool) *rnode {
	n := &rnode{id: t.nextID, leaf: leaf, rect: geom.EmptyRect()}
	t.nextID++
	t.nodes++
	return n
}

func (t *Tree) visit(n *rnode) {
	if t.OnNodeVisit != nil {
		t.OnNodeVisit(n.id)
	}
}

// New returns an empty tree with the given fan-out (DefaultMaxEntries if 0).
func New(maxEntries int) *Tree {
	if maxEntries == 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	t := &Tree{maxEntries: maxEntries}
	t.root = t.newNode(true)
	return t
}

// BulkLoad builds a tree over entries using Sort-Tile-Recursive packing.
func BulkLoad(entries []Entry, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(entries) == 0 {
		return t
	}
	es := append([]Entry(nil), entries...)
	t.root = t.strPack(es)
	t.size = len(es)
	return t
}

// strPack recursively packs entries into leaves and leaves into internals.
func (t *Tree) strPack(es []Entry) *rnode {
	m := t.maxEntries
	if len(es) <= m {
		n := t.newNode(true)
		n.entries = es
		n.recompute()
		return n
	}
	// STR: sort by x, cut into vertical slabs of ~sqrt(leafCount) leaves,
	// sort each slab by y, emit leaves.
	nLeaves := (len(es) + m - 1) / m
	nSlabs := intSqrtCeil(nLeaves)
	perSlab := ((nLeaves + nSlabs - 1) / nSlabs) * m

	sort.Slice(es, func(i, j int) bool { return es[i].P.X < es[j].P.X })
	var leaves []*rnode
	for start := 0; start < len(es); start += perSlab {
		end := min(start+perSlab, len(es))
		slab := es[start:end]
		sort.Slice(slab, func(i, j int) bool { return slab[i].P.Y < slab[j].P.Y })
		for ls := 0; ls < len(slab); ls += m {
			le := min(ls+m, len(slab))
			leaf := t.newNode(true)
			leaf.entries = append([]Entry(nil), slab[ls:le]...)
			leaf.recompute()
			leaves = append(leaves, leaf)
		}
	}
	// Pack node levels upward until a single root remains.
	level := leaves
	for len(level) > 1 {
		var next []*rnode
		for start := 0; start < len(level); start += m {
			end := min(start+m, len(level))
			n := t.newNode(false)
			n.children = append([]*rnode(nil), level[start:end]...)
			n.recompute()
			next = append(next, n)
		}
		level = next
	}
	return level[0]
}

func intSqrtCeil(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Nodes returns the number of tree nodes, a proxy for index pages.
func (t *Tree) Nodes() int { return t.nodes }

// Insert adds an entry.
func (t *Tree) Insert(e Entry) {
	split := t.insert(t.root, e)
	if split != nil {
		newRoot := t.newNode(false)
		newRoot.children = []*rnode{t.root, split}
		newRoot.recompute()
		t.root = newRoot
	}
	t.size++
}

func (t *Tree) insert(n *rnode, e Entry) *rnode {
	n.rect = n.rect.Extend(e.P)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitLeaf(n)
		}
		return nil
	}
	best := t.chooseChild(n, e.P)
	if split := t.insert(n.children[best], e); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.maxEntries {
			return t.splitInternal(n)
		}
	}
	return nil
}

// chooseChild picks the child whose rectangle needs least enlargement.
func (t *Tree) chooseChild(n *rnode, p geom.Point) int {
	best, bestGrow, bestArea := 0, 0.0, 0.0
	for i, c := range n.children {
		grow := c.rect.Extend(p).Area() - c.rect.Area()
		area := c.rect.Area()
		if i == 0 || grow < bestGrow || (grow == bestGrow && area < bestArea) {
			best, bestGrow, bestArea = i, grow, area
		}
	}
	return best
}

// splitLeaf splits an overfull leaf along its longer axis at the median.
func (t *Tree) splitLeaf(n *rnode) *rnode {
	byX := n.rect.Max.X-n.rect.Min.X >= n.rect.Max.Y-n.rect.Min.Y
	sort.Slice(n.entries, func(i, j int) bool {
		if byX {
			return n.entries[i].P.X < n.entries[j].P.X
		}
		return n.entries[i].P.Y < n.entries[j].P.Y
	})
	mid := len(n.entries) / 2
	sib := t.newNode(true)
	sib.entries = append([]Entry(nil), n.entries[mid:]...)
	n.entries = n.entries[:mid:mid]
	n.recompute()
	sib.recompute()
	return sib
}

func (t *Tree) splitInternal(n *rnode) *rnode {
	byX := n.rect.Max.X-n.rect.Min.X >= n.rect.Max.Y-n.rect.Min.Y
	sort.Slice(n.children, func(i, j int) bool {
		ci, cj := n.children[i].rect.Center(), n.children[j].rect.Center()
		if byX {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
	mid := len(n.children) / 2
	sib := t.newNode(false)
	sib.children = append([]*rnode(nil), n.children[mid:]...)
	n.children = n.children[:mid:mid]
	n.recompute()
	sib.recompute()
	return sib
}

// Delete removes the entry with the given ID at point p. It reports whether
// the entry was found. Underflow handling is simple subtree condensation:
// emptied nodes are pruned.
func (t *Tree) Delete(p geom.Point, id int32) bool {
	if !t.delete(t.root, p, id) {
		return false
	}
	t.size--
	// Collapse a root with a single internal child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.nodes--
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = t.newNode(true)
	}
	return true
}

func (t *Tree) delete(n *rnode, p geom.Point, id int32) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.ID == id && e.P == p {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				n.recompute()
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !c.rect.Contains(p) {
			continue
		}
		if t.delete(c, p, id) {
			if (c.leaf && len(c.entries) == 0) || (!c.leaf && len(c.children) == 0) {
				n.children = append(n.children[:i], n.children[i+1:]...)
				t.nodes--
			}
			n.recompute()
			return true
		}
	}
	return false
}

// Search returns all entries within rect.
func (t *Tree) Search(rect geom.Rect) []Entry {
	var out []Entry
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if !n.rect.Intersects(rect) {
			return
		}
		t.visit(n)
		if n.leaf {
			for _, e := range n.entries {
				if rect.Contains(e.P) {
					out = append(out, e)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// WithinRadius returns all entries within Euclidean distance radius of c.
func (t *Tree) WithinRadius(c geom.Point, radius float64) []Entry {
	box := geom.Rect{
		Min: geom.Point{X: c.X - radius, Y: c.Y - radius},
		Max: geom.Point{X: c.X + radius, Y: c.Y + radius},
	}
	var out []Entry
	for _, e := range t.Search(box) {
		if c.Dist(e.P) <= radius {
			out = append(out, e)
		}
	}
	return out
}

// NN returns the k entries nearest to q in Euclidean distance, closest
// first, along with their distances.
func (t *Tree) NN(q geom.Point, k int) ([]Entry, []float64) {
	it := t.NewNNIter(q)
	var es []Entry
	var ds []float64
	for len(es) < k {
		e, d, ok := it.Next()
		if !ok {
			break
		}
		es = append(es, e)
		ds = append(ds, d)
	}
	return es, ds
}

// NNIter yields indexed entries in non-decreasing Euclidean distance from a
// query point — the incremental candidate stream of the IER algorithm.
type NNIter struct {
	t *Tree
	q geom.Point
	h pqueue.Queue
	// NodesVisited counts internal/leaf nodes expanded, a proxy for index
	// page reads.
	NodesVisited int
}

type nnEntry struct {
	e Entry
}

// NewNNIter starts an incremental nearest-neighbour scan from q.
func (t *Tree) NewNNIter(q geom.Point) *NNIter {
	it := &NNIter{t: t, q: q}
	it.h.Push(t.root, t.root.rect.MinDist(q))
	return it
}

// Next returns the next-nearest entry and its Euclidean distance.
// ok is false when the index is exhausted.
func (it *NNIter) Next() (Entry, float64, bool) {
	for {
		item, ok := it.h.Pop()
		if !ok {
			return Entry{}, 0, false
		}
		switch v := item.Value.(type) {
		case *rnode:
			it.NodesVisited++
			it.t.visit(v)
			if v.leaf {
				for _, e := range v.entries {
					it.h.Push(nnEntry{e}, it.q.Dist(e.P))
				}
			} else {
				for _, c := range v.children {
					it.h.Push(c, c.rect.MinDist(it.q))
				}
			}
		case nnEntry:
			return v.e, item.Priority, true
		}
	}
}
