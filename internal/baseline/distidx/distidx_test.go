package distidx

import (
	"math"
	"sort"
	"testing"

	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/storage"
)

func brute(g *graph.Graph, objects *graph.ObjectSet, q graph.NodeID, attr int32) []Result {
	s := graph.NewSearch(g)
	s.Run(q, graph.Options{})
	var out []Result
	for _, o := range objects.All() {
		if attr != 0 && o.Attr != attr {
			continue
		}
		e := g.Edge(o.Edge)
		if e.Removed {
			continue
		}
		d := math.Inf(1)
		if du := s.Dist(e.U); !math.IsInf(du, 1) {
			d = du + o.DU
		}
		if dv := s.Dist(e.V); !math.IsInf(dv, 1) && dv+o.DV < d {
			d = dv + o.DV
		}
		if !math.IsInf(d, 1) {
			out = append(out, Result{Object: o, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Object.ID < out[j].Object.ID
	})
	return out
}

func fixture(t *testing.T, seed int64) (*Index, *graph.Graph, *graph.ObjectSet) {
	t.Helper()
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 300, Edges: 350, Seed: seed})
	objects := dataset.PlaceUniform(g, 15, seed+1, 0, 7)
	return New(g, objects, storage.NewStore(0)), g, objects
}

func TestKNNMatchesBruteForce(t *testing.T) {
	ix, g, objects := fixture(t, 1)
	for _, q := range dataset.RandomNodes(g, 30, 2) {
		for _, k := range []int{1, 5} {
			got, _ := ix.KNN(q, 0, k)
			want := brute(g, objects, q, 0)
			if len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("knn: %d results, want %d", len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*math.Max(1, want[i].Dist) {
					t.Fatalf("knn result %d dist %g, want %g", i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	ix, g, objects := fixture(t, 3)
	diam := g.EstimateDiameter()
	for _, q := range dataset.RandomNodes(g, 20, 4) {
		r := diam * 0.1
		got, _ := ix.Range(q, 0, r)
		all := brute(g, objects, q, 0)
		var want []Result
		for _, x := range all {
			if x.Dist <= r {
				want = append(want, x)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range: %d results, want %d", len(got), len(want))
		}
	}
}

func TestAttributeFilter(t *testing.T) {
	ix, g, _ := fixture(t, 5)
	for _, q := range dataset.RandomNodes(g, 10, 6) {
		got, _ := ix.KNN(q, 7, 3)
		for _, r := range got {
			if r.Object.Attr != 7 {
				t.Fatal("attribute predicate violated")
			}
		}
	}
}

func TestNextHopChainReachesObject(t *testing.T) {
	// Chasing next pointers from any node must walk a shortest path to the
	// object's edge: distances decrease by exactly the traversed edge
	// weight each hop.
	ix, g, objects := fixture(t, 7)
	o := objects.All()[0]
	for _, start := range dataset.RandomNodes(g, 10, 8) {
		n := start
		steps := 0
		for steps < g.NumNodes() {
			next, ok := ix.NextHop(n, o.ID)
			if !ok {
				t.Fatalf("node %d has no signature entry for object %d", n, o.ID)
			}
			if next == graph.NoNode {
				// Arrived at an endpoint of the object's edge.
				e := g.Edge(o.Edge)
				if n != e.U && n != e.V {
					t.Fatalf("chain ended at %d, not an endpoint of object edge", n)
				}
				break
			}
			// The hop must shorten the remaining distance by the edge weight.
			cur := sigDist(t, ix, n, o.ID)
			nxt := sigDist(t, ix, next, o.ID)
			w := g.Weight(g.EdgeBetween(n, next))
			if math.Abs(cur-(nxt+w)) > 1e-9*math.Max(1, cur) {
				t.Fatalf("hop %d->%d: dist %g != %g+%g", n, next, cur, nxt, w)
			}
			n = next
			steps++
		}
	}
}

func sigDist(t *testing.T, ix *Index, n graph.NodeID, obj graph.ObjectID) float64 {
	t.Helper()
	for _, e := range ix.sigs[n] {
		if e.obj == obj {
			return e.dist
		}
	}
	t.Fatalf("no signature entry at node %d for object %d", n, obj)
	return 0
}

func TestIndexSizeGrowsLinearlyWithObjects(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 300, Edges: 350, Seed: 9})
	small := New(g, dataset.PlaceUniform(g, 5, 10), nil)
	large := New(g, dataset.PlaceUniform(g, 50, 11), nil)
	ratio := float64(large.IndexSizeBytes()) / float64(small.IndexSizeBytes())
	if ratio < 5 {
		t.Fatalf("size ratio %g for 10× objects; expected near-linear growth", ratio)
	}
}

func TestObjectInsertDelete(t *testing.T) {
	ix, g, objects := fixture(t, 12)
	o, err := ix.InsertObject(3, g.Weight(3)/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ix.KNN(g.Edge(3).U, 0, 1)
	if len(got) == 0 {
		t.Fatal("no result after insert")
	}
	if !ix.DeleteObject(o.ID) {
		t.Fatal("delete failed")
	}
	for _, q := range dataset.RandomNodes(g, 10, 13) {
		got, _ := ix.KNN(q, 0, 3)
		want := brute(g, objects, q, 0)
		if len(want) > 3 {
			want = want[:3]
		}
		if len(got) != len(want) {
			t.Fatal("post-churn knn mismatch")
		}
	}
}

func TestEdgeUpdateRecomputesSignatures(t *testing.T) {
	ix, g, objects := fixture(t, 14)
	e := graph.EdgeID(5)
	if err := ix.SetEdgeWeight(e, g.Weight(e)*4); err != nil {
		t.Fatal(err)
	}
	for _, q := range dataset.RandomNodes(g, 15, 15) {
		got, _ := ix.KNN(q, 0, 3)
		want := brute(g, objects, q, 0)
		if len(want) > 3 {
			want = want[:3]
		}
		if len(got) != len(want) {
			t.Fatalf("post-reweight knn: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*math.Max(1, want[i].Dist) {
				t.Fatalf("post-reweight dist mismatch at %d", q)
			}
		}
	}
}

func TestQueryConsultsSignatureAndChasesResults(t *testing.T) {
	// The solution-based approach answers from the query node's signature
	// (no network expansion), then materializes each answer by chasing its
	// precomputed next-pointers.
	ix, g, _ := fixture(t, 16)
	res, st := ix.KNN(dataset.RandomNodes(g, 1, 17)[0], 0, 5)
	if st.SignatureEntries == 0 {
		t.Fatal("signature not consulted")
	}
	if len(res) > 0 && st.Hops == 0 {
		t.Fatal("results returned without chasing their precomputed paths")
	}
}
