// Package distidx implements the Distance Index baseline ([6]; §2
// "Solution based approaches"): every network node stores a distance
// signature — one entry per object carrying the object's exact network
// distance and the next-hop node toward it. Queries answer straight from
// the signature of the query node, but signatures are bulky (O(|O|) per
// node, O(|O|·|N|) total) and every object or network change must touch
// signatures across the whole network: the crushing precomputation,
// storage and maintenance costs Figure 13–16 report. Per §6, exact
// distances are stored, giving this baseline its best-case search
// performance.
package distidx

import (
	"math"
	"sort"
	"time"

	"road/internal/graph"
	"road/internal/storage"
)

// Result is one answer object with its network distance.
type Result struct {
	Object graph.Object
	Dist   float64
}

// Stats reports the cost of one query.
type Stats struct {
	// SignatureEntries counts signature entries scanned.
	SignatureEntries int
	// Hops counts next-pointer chases (0 with exact distances).
	Hops int
	IO   storage.Stats
}

// sigEntry is one object's entry in a node's distance signature.
type sigEntry struct {
	obj  graph.ObjectID
	attr int32
	dist float64
	next graph.NodeID // next hop toward the object (NoNode at the object's edge)
}

// Index holds per-node distance signatures.
type Index struct {
	g       *graph.Graph
	objects *graph.ObjectSet
	sigs    [][]sigEntry // node -> signature, sorted by object ID
	search  *graph.Search
	store   *storage.Store
	layout  *storage.Layout
	genID   int64 // layout key generation (records are re-placed on growth)

	BuildTime time.Duration
}

// New precomputes signatures for all objects: one whole-network Dijkstra
// per object. store may be nil to skip I/O simulation.
func New(g *graph.Graph, objects *graph.ObjectSet, store *storage.Store) *Index {
	start := time.Now()
	ix := &Index{
		g:       g,
		objects: objects,
		sigs:    make([][]sigEntry, g.NumNodes()),
		search:  graph.NewSearch(g),
		store:   store,
	}
	for _, o := range objects.All() {
		ix.addObjectEntries(o)
	}
	ix.rebuildLayout()
	ix.BuildTime = time.Since(start)
	return ix
}

// addObjectEntries runs the per-object Dijkstra and appends the object's
// entry to every reachable node's signature.
func (ix *Index) addObjectEntries(o graph.Object) {
	dist, parent := ix.objectDijkstra(o)
	for n := 0; n < ix.g.NumNodes(); n++ {
		if math.IsInf(dist[n], 1) {
			continue
		}
		ix.sigs[n] = insertSorted(ix.sigs[n], sigEntry{
			obj:  o.ID,
			attr: o.Attr,
			dist: dist[n],
			next: parent[n],
		})
	}
}

// objectDijkstra computes, for every node, the distance to object o and
// the next hop toward it, by expanding from the object's two endpoint
// nodes with their offsets as initial distances.
func (ix *Index) objectDijkstra(o graph.Object) ([]float64, []graph.NodeID) {
	g := ix.g
	e := g.Edge(o.Edge)
	n := g.NumNodes()
	dist := make([]float64, n)
	parent := make([]graph.NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = graph.NoNode
	}
	// Multi-source expansion: temporary virtual object node feeding U and V.
	s := ix.search
	s.Run(e.U, graph.Options{})
	du := make([]float64, n)
	for i := range du {
		du[i] = s.Dist(graph.NodeID(i))
	}
	pu := make([]graph.NodeID, n)
	for i := range pu {
		pu[i] = ix.stepToward(s, graph.NodeID(i))
	}
	s.Run(e.V, graph.Options{})
	for i := 0; i < n; i++ {
		viaU := du[i] + o.DU
		viaV := s.Dist(graph.NodeID(i)) + o.DV
		if viaU <= viaV {
			dist[i] = viaU
			parent[i] = pu[i]
		} else {
			dist[i] = viaV
			parent[i] = ix.stepToward(s, graph.NodeID(i))
		}
	}
	return dist, parent
}

// stepToward returns the first hop from node i back toward the last run's
// source (the next-pointer of the signature): i's search-tree parent.
func (ix *Index) stepToward(s *graph.Search, i graph.NodeID) graph.NodeID {
	if !s.Reached(i) {
		return graph.NoNode
	}
	return s.Parent(i)
}

func insertSorted(sig []sigEntry, e sigEntry) []sigEntry {
	i := sort.Search(len(sig), func(i int) bool { return sig[i].obj >= e.obj })
	if i < len(sig) && sig[i].obj == e.obj {
		sig[i] = e
		return sig
	}
	sig = append(sig, sigEntry{})
	copy(sig[i+1:], sig[i:])
	sig[i] = e
	return sig
}

func removeEntry(sig []sigEntry, id graph.ObjectID) []sigEntry {
	i := sort.Search(len(sig), func(i int) bool { return sig[i].obj >= id })
	if i < len(sig) && sig[i].obj == id {
		return append(sig[:i], sig[i+1:]...)
	}
	return sig
}

// rebuildLayout re-places all node signature records (signatures change
// size with every object change, so records are re-laid out wholesale —
// mirroring the massive rewrite cost the paper measures).
func (ix *Index) rebuildLayout() {
	if ix.store == nil {
		return
	}
	ix.layout = storage.NewLayout(ix.store)
	ix.genID++
	for _, n := range storage.ClusterNodes(ix.g) {
		ix.layout.Place(int64(n), 16+20*len(ix.sigs[n]))
		ix.layout.Write(int64(n))
	}
}

// IndexSizeBytes reports signature storage: 20 bytes per entry plus node
// overhead — O(|O|·|N|), the explosive growth of Figure 13(b).
func (ix *Index) IndexSizeBytes() int64 {
	var total int64
	for _, sig := range ix.sigs {
		total += 16 + 20*int64(len(sig))
	}
	return total
}

// Store returns the simulated page store (nil when disabled).
func (ix *Index) Store() *storage.Store { return ix.store }

// KNN answers from the query node's signature: load it, filter by
// attribute, take the k smallest distances.
func (ix *Index) KNN(q graph.NodeID, attr int32, k int) ([]Result, Stats) {
	var stats Stats
	var mark storage.Stats
	if ix.store != nil {
		mark = ix.store.Stats()
		ix.layout.Read(int64(q))
	}
	sig := ix.sigs[q]
	stats.SignatureEntries = len(sig)
	res := make([]Result, 0, k)
	for _, e := range sig {
		if attr != 0 && e.attr != attr {
			continue
		}
		if o, ok := ix.objects.Get(e.obj); ok {
			res = append(res, Result{Object: o, Dist: e.dist})
		}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].Object.ID < res[j].Object.ID
	})
	if len(res) > k {
		res = res[:k]
	}
	for _, r := range res {
		ix.chase(q, r.Object.ID, &stats)
	}
	if ix.store != nil {
		stats.IO = ix.store.Stats().Sub(mark)
	}
	return res, stats
}

// chase follows the signature next-pointers from q to an answer object —
// the precomputed-path traversal of [6] that materializes the result (and
// its route), reading the signature record of every node on the way. This
// is the I/O the paper's Figure 11(d) shows trailing toward the answers.
func (ix *Index) chase(q graph.NodeID, obj graph.ObjectID, stats *Stats) {
	n := q
	for steps := 0; steps < ix.g.NumNodes(); steps++ {
		next, ok := ix.NextHop(n, obj)
		if !ok || next == graph.NoNode {
			return
		}
		stats.Hops++
		if ix.layout != nil {
			ix.layout.Read(int64(next))
		}
		n = next
	}
}

// Range answers from the query node's signature with a distance cut-off.
func (ix *Index) Range(q graph.NodeID, attr int32, radius float64) ([]Result, Stats) {
	var stats Stats
	var mark storage.Stats
	if ix.store != nil {
		mark = ix.store.Stats()
		ix.layout.Read(int64(q))
	}
	sig := ix.sigs[q]
	stats.SignatureEntries = len(sig)
	var res []Result
	for _, e := range sig {
		if e.dist > radius || (attr != 0 && e.attr != attr) {
			continue
		}
		if o, ok := ix.objects.Get(e.obj); ok {
			res = append(res, Result{Object: o, Dist: e.dist})
		}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].Object.ID < res[j].Object.ID
	})
	for _, r := range res {
		ix.chase(q, r.Object.ID, &stats)
	}
	if ix.store != nil {
		stats.IO = ix.store.Stats().Sub(mark)
	}
	return res, stats
}

// NextHop exposes the signature's next-pointer toward an object from node
// n (the pointer-chasing mechanism of [6]).
func (ix *Index) NextHop(n graph.NodeID, obj graph.ObjectID) (graph.NodeID, bool) {
	sig := ix.sigs[n]
	i := sort.Search(len(sig), func(i int) bool { return sig[i].obj >= obj })
	if i < len(sig) && sig[i].obj == obj {
		return sig[i].next, true
	}
	return graph.NoNode, false
}

// InsertObject adds an object: one whole-network Dijkstra plus a rewrite
// of every node signature.
func (ix *Index) InsertObject(e graph.EdgeID, du float64, attr int32) (graph.Object, error) {
	o, err := ix.objects.Add(e, du, attr)
	if err != nil {
		return graph.Object{}, err
	}
	ix.addObjectEntries(o)
	ix.rebuildLayout()
	return o, nil
}

// DeleteObject removes an object's entry from every node signature.
func (ix *Index) DeleteObject(id graph.ObjectID) bool {
	if _, ok := ix.objects.Get(id); !ok {
		return false
	}
	ix.objects.Remove(id)
	for n := range ix.sigs {
		ix.sigs[n] = removeEntry(ix.sigs[n], id)
	}
	ix.rebuildLayout()
	return true
}

// SetEdgeWeight re-derives every object's distances from scratch — the
// full-network reexamination the paper measures for this baseline.
func (ix *Index) SetEdgeWeight(e graph.EdgeID, w float64) error {
	if err := ix.g.SetWeight(e, w); err != nil {
		return err
	}
	ix.recomputeAll()
	return nil
}

// DeleteEdge removes a segment and recomputes all signatures.
func (ix *Index) DeleteEdge(e graph.EdgeID) error {
	for _, oid := range ix.objects.OnEdge(e) {
		ix.objects.Remove(oid)
	}
	if err := ix.g.RemoveEdge(e); err != nil {
		return err
	}
	ix.recomputeAll()
	return nil
}

// RestoreEdge re-attaches a segment and recomputes all signatures.
func (ix *Index) RestoreEdge(e graph.EdgeID) error {
	if err := ix.g.RestoreEdge(e); err != nil {
		return err
	}
	ix.recomputeAll()
	return nil
}

func (ix *Index) recomputeAll() {
	for n := range ix.sigs {
		ix.sigs[n] = ix.sigs[n][:0]
	}
	for _, o := range ix.objects.All() {
		ix.addObjectEntries(o)
	}
	ix.rebuildLayout()
}

// Graph returns the underlying network.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// ObjectSet returns the mapped objects.
func (ix *Index) ObjectSet() *graph.ObjectSet { return ix.objects }
