package netexpand

import (
	"math"
	"sort"
	"testing"

	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/storage"
)

func brute(g *graph.Graph, objects *graph.ObjectSet, q graph.NodeID, attr int32) []Result {
	s := graph.NewSearch(g)
	s.Run(q, graph.Options{})
	var out []Result
	for _, o := range objects.All() {
		if attr != 0 && o.Attr != attr {
			continue
		}
		e := g.Edge(o.Edge)
		if e.Removed {
			continue
		}
		d := math.Inf(1)
		if du := s.Dist(e.U); !math.IsInf(du, 1) {
			d = du + o.DU
		}
		if dv := s.Dist(e.V); !math.IsInf(dv, 1) && dv+o.DV < d {
			d = dv + o.DV
		}
		if !math.IsInf(d, 1) {
			out = append(out, Result{Object: o, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Object.ID < out[j].Object.ID
	})
	return out
}

func distsMatch(t *testing.T, got, want []Result, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*math.Max(1, want[i].Dist) {
			t.Fatalf("%s: result %d dist %g, want %g", label, i, got[i].Dist, want[i].Dist)
		}
	}
}

func fixture(t *testing.T, seed int64) (*Index, *graph.Graph, *graph.ObjectSet) {
	t.Helper()
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 400, Edges: 460, Seed: seed})
	objects := dataset.PlaceUniform(g, 25, seed+1, 0, 7)
	return New(g, objects, storage.NewStore(0)), g, objects
}

func TestKNNMatchesBruteForce(t *testing.T) {
	ix, g, objects := fixture(t, 1)
	for _, q := range dataset.RandomNodes(g, 30, 2) {
		for _, k := range []int{1, 5} {
			got, _ := ix.KNN(q, 0, k)
			want := brute(g, objects, q, 0)
			if len(want) > k {
				want = want[:k]
			}
			distsMatch(t, got, want, "knn")
		}
	}
}

func TestKNNAttributeFilter(t *testing.T) {
	ix, g, objects := fixture(t, 3)
	for _, q := range dataset.RandomNodes(g, 15, 4) {
		got, _ := ix.KNN(q, 7, 5)
		want := brute(g, objects, q, 7)
		if len(want) > 5 {
			want = want[:5]
		}
		distsMatch(t, got, want, "attr knn")
		for _, r := range got {
			if r.Object.Attr != 7 {
				t.Fatal("attribute predicate violated")
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	ix, g, objects := fixture(t, 5)
	diam := g.EstimateDiameter()
	for _, q := range dataset.RandomNodes(g, 20, 6) {
		r := diam * 0.1
		got, _ := ix.Range(q, 0, r)
		all := brute(g, objects, q, 0)
		var want []Result
		for _, x := range all {
			if x.Dist <= r {
				want = append(want, x)
			}
		}
		distsMatch(t, got, want, "range")
	}
}

func TestQueryIOCounted(t *testing.T) {
	ix, g, _ := fixture(t, 7)
	ix.Store().DropCache()
	_, st := ix.KNN(dataset.RandomNodes(g, 1, 8)[0], 0, 5)
	if st.IO.Reads == 0 || st.NodesPopped == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestObjectUpdates(t *testing.T) {
	ix, g, objects := fixture(t, 9)
	o, err := ix.InsertObject(3, g.Weight(3)/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ix.KNN(g.Edge(3).U, 0, 1)
	if len(got) == 0 {
		t.Fatal("no result after insert")
	}
	if !ix.DeleteObject(o.ID) {
		t.Fatal("delete failed")
	}
	if ix.DeleteObject(o.ID) {
		t.Fatal("double delete succeeded")
	}
	_ = objects
}

func TestNetworkUpdates(t *testing.T) {
	ix, g, objects := fixture(t, 10)
	if err := ix.SetEdgeWeight(4, g.Weight(4)*2); err != nil {
		t.Fatal(err)
	}
	// Pick a removable edge.
	var e graph.EdgeID = graph.NoEdge
	for i := 0; i < g.NumEdges(); i++ {
		ed := g.Edge(graph.EdgeID(i))
		if g.Degree(ed.U) > 1 && g.Degree(ed.V) > 1 && len(objects.OnEdge(graph.EdgeID(i))) == 0 {
			e = graph.EdgeID(i)
			break
		}
	}
	if e == graph.NoEdge {
		t.Skip("no removable edge")
	}
	if err := ix.DeleteEdge(e); err != nil {
		t.Fatal(err)
	}
	if err := ix.RestoreEdge(e); err != nil {
		t.Fatal(err)
	}
	// Queries stay exact after updates.
	for _, q := range dataset.RandomNodes(g, 10, 11) {
		got, _ := ix.KNN(q, 0, 3)
		want := brute(g, objects, q, 0)
		if len(want) > 3 {
			want = want[:3]
		}
		distsMatch(t, got, want, "post-update knn")
	}
}

func TestIndexSize(t *testing.T) {
	ix, _, _ := fixture(t, 12)
	if ix.IndexSizeBytes() <= 0 {
		t.Fatal("IndexSizeBytes = 0")
	}
	if ix.BuildTime < 0 {
		t.Fatal("BuildTime negative")
	}
}
