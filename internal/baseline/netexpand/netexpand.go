// Package netexpand implements the network-expansion baseline (INE, [16];
// §2 "Network expansion based approaches"): objects are stored with the
// network nodes (CCAM-clustered records [18]), and a query grows a
// Dijkstra spanning tree from the query point, examining every node it
// settles until enough objects are found. No precomputation: index
// construction is trivial and updates are cheap, but large empty regions
// are scanned node by node — the inefficiency ROAD's pruning removes.
package netexpand

import (
	"time"

	"road/internal/graph"
	"road/internal/pqueue"
	"road/internal/storage"
)

// Result is one answer object with its network distance.
type Result struct {
	Object graph.Object
	Dist   float64
}

// Stats reports the cost of one query.
type Stats struct {
	NodesPopped int
	IO          storage.Stats
}

// Index is the network-expansion "index": the raw network with objects
// attached to node records.
type Index struct {
	g       *graph.Graph
	objects *graph.ObjectSet
	store   *storage.Store
	layout  *storage.Layout

	// BuildTime records construction time (essentially the layout pass).
	BuildTime time.Duration
}

// New builds the structure. store may be nil to skip I/O simulation.
func New(g *graph.Graph, objects *graph.ObjectSet, store *storage.Store) *Index {
	start := time.Now()
	ix := &Index{g: g, objects: objects, store: store}
	if store != nil {
		ix.layout = storage.NewLayout(store)
		for _, n := range storage.ClusterNodes(g) {
			ix.layout.Place(int64(n), ix.nodeRecordSize(n))
			ix.layout.Write(int64(n))
		}
	}
	ix.BuildTime = time.Since(start)
	return ix
}

// nodeRecordSize estimates a node record: coordinates, adjacency, and the
// objects stored with the node (those on its incident edges).
func (ix *Index) nodeRecordSize(n graph.NodeID) int {
	size := 16 + 12*len(ix.g.Neighbors(n))
	for _, half := range ix.g.Neighbors(n) {
		size += 16 * len(ix.objects.OnEdge(half.Edge))
	}
	return size
}

// IndexSizeBytes reports storage consumption: node records only (the
// baseline keeps no separate object index).
func (ix *Index) IndexSizeBytes() int64 {
	var total int64
	for n := 0; n < ix.g.NumNodes(); n++ {
		total += int64(ix.nodeRecordSize(graph.NodeID(n)))
	}
	return total
}

// Store returns the simulated page store (nil when disabled).
func (ix *Index) Store() *storage.Store { return ix.store }

type entry struct {
	node graph.NodeID
	obj  graph.ObjectID // ≥ 0 marks an object entry
}

// KNN returns the k nearest objects matching attr (0 = any) by pure
// network expansion from node q.
func (ix *Index) KNN(q graph.NodeID, attr int32, k int) ([]Result, Stats) {
	return ix.expand(q, attr, k, 0)
}

// Range returns all matching objects within radius of q.
func (ix *Index) Range(q graph.NodeID, attr int32, radius float64) ([]Result, Stats) {
	return ix.expand(q, attr, 0, radius)
}

func (ix *Index) expand(q graph.NodeID, attr int32, k int, radius float64) ([]Result, Stats) {
	var stats Stats
	var mark storage.Stats
	if ix.store != nil {
		mark = ix.store.Stats()
	}
	var pq pqueue.Queue
	visited := make(map[graph.NodeID]bool)
	seenObj := make(map[graph.ObjectID]bool)
	var res []Result
	pq.Push(entry{node: q, obj: -1}, 0)
	for pq.Len() > 0 {
		item, _ := pq.Pop()
		en := item.Value.(entry)
		d := item.Priority
		if k == 0 && d > radius {
			break
		}
		if en.obj >= 0 {
			if seenObj[en.obj] {
				continue
			}
			seenObj[en.obj] = true
			if o, ok := ix.objects.Get(en.obj); ok {
				res = append(res, Result{Object: o, Dist: d})
			}
			if k > 0 && len(res) >= k {
				break
			}
			continue
		}
		n := en.node
		if visited[n] {
			continue
		}
		visited[n] = true
		stats.NodesPopped++
		if ix.layout != nil {
			ix.layout.Read(int64(n))
		}
		for _, half := range ix.g.Neighbors(n) {
			// Objects stored with the node: those on incident edges.
			for _, oid := range ix.objects.OnEdge(half.Edge) {
				o, ok := ix.objects.Get(oid)
				if !ok || (attr != 0 && o.Attr != attr) || seenObj[oid] {
					continue
				}
				pq.Push(entry{obj: oid}, d+ix.objects.NodeDist(o, n))
			}
			pq.Push(entry{node: half.To, obj: -1}, d+ix.g.Weight(half.Edge))
		}
	}
	if ix.store != nil {
		stats.IO = ix.store.Stats().Sub(mark)
	}
	return res, stats
}

// InsertObject places an object and rewrites the affected node records.
func (ix *Index) InsertObject(e graph.EdgeID, du float64, attr int32) (graph.Object, error) {
	o, err := ix.objects.Add(e, du, attr)
	if err != nil {
		return graph.Object{}, err
	}
	ix.writeEdgeEndpoints(e)
	return o, nil
}

// DeleteObject removes an object and rewrites the affected node records.
func (ix *Index) DeleteObject(id graph.ObjectID) bool {
	o, ok := ix.objects.Get(id)
	if !ok {
		return false
	}
	ix.objects.Remove(id)
	ix.writeEdgeEndpoints(o.Edge)
	return true
}

// SetEdgeWeight updates a road distance; only the two endpoint records
// change (the baseline's cheap maintenance, Figure 16).
func (ix *Index) SetEdgeWeight(e graph.EdgeID, w float64) error {
	if err := ix.g.SetWeight(e, w); err != nil {
		return err
	}
	ix.writeEdgeEndpoints(e)
	return nil
}

// DeleteEdge removes a road segment.
func (ix *Index) DeleteEdge(e graph.EdgeID) error {
	for _, oid := range ix.objects.OnEdge(e) {
		ix.objects.Remove(oid)
	}
	if err := ix.g.RemoveEdge(e); err != nil {
		return err
	}
	ix.writeEdgeEndpoints(e)
	return nil
}

// RestoreEdge re-attaches a removed segment.
func (ix *Index) RestoreEdge(e graph.EdgeID) error {
	if err := ix.g.RestoreEdge(e); err != nil {
		return err
	}
	ix.writeEdgeEndpoints(e)
	return nil
}

func (ix *Index) writeEdgeEndpoints(e graph.EdgeID) {
	if ix.layout == nil {
		return
	}
	ed := ix.g.Edge(e)
	ix.layout.Write(int64(ed.U))
	ix.layout.Write(int64(ed.V))
}

// Graph returns the underlying network.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// ObjectSet returns the mapped objects.
func (ix *Index) ObjectSet() *graph.ObjectSet { return ix.objects }
