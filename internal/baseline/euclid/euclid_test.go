package euclid

import (
	"math"
	"sort"
	"testing"

	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/storage"
)

func brute(g *graph.Graph, objects *graph.ObjectSet, q graph.NodeID, attr int32) []Result {
	s := graph.NewSearch(g)
	s.Run(q, graph.Options{})
	var out []Result
	for _, o := range objects.All() {
		if attr != 0 && o.Attr != attr {
			continue
		}
		e := g.Edge(o.Edge)
		if e.Removed {
			continue
		}
		d := math.Inf(1)
		if du := s.Dist(e.U); !math.IsInf(du, 1) {
			d = du + o.DU
		}
		if dv := s.Dist(e.V); !math.IsInf(dv, 1) && dv+o.DV < d {
			d = dv + o.DV
		}
		if !math.IsInf(d, 1) {
			out = append(out, Result{Object: o, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Object.ID < out[j].Object.ID
	})
	return out
}

func fixture(t *testing.T, seed int64) (*Index, *graph.Graph, *graph.ObjectSet) {
	t.Helper()
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 400, Edges: 460, Seed: seed})
	objects := dataset.PlaceUniform(g, 25, seed+1, 0, 7)
	return New(g, objects, storage.NewStore(0)), g, objects
}

func TestKNNMatchesBruteForce(t *testing.T) {
	ix, g, objects := fixture(t, 1)
	for _, q := range dataset.RandomNodes(g, 25, 2) {
		for _, k := range []int{1, 5} {
			got, _ := ix.KNN(q, 0, k)
			want := brute(g, objects, q, 0)
			if len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("knn: %d results, want %d", len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*math.Max(1, want[i].Dist) {
					t.Fatalf("knn result %d dist %g, want %g", i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestKNNAttribute(t *testing.T) {
	ix, g, objects := fixture(t, 3)
	for _, q := range dataset.RandomNodes(g, 10, 4) {
		got, _ := ix.KNN(q, 7, 3)
		want := brute(g, objects, q, 7)
		if len(want) > 3 {
			want = want[:3]
		}
		if len(got) != len(want) {
			t.Fatalf("attr knn: %d results, want %d", len(got), len(want))
		}
		for _, r := range got {
			if r.Object.Attr != 7 {
				t.Fatal("attribute predicate violated")
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	ix, g, objects := fixture(t, 5)
	diam := g.EstimateDiameter()
	for _, q := range dataset.RandomNodes(g, 15, 6) {
		r := diam * 0.1
		got, _ := ix.Range(q, 0, r)
		all := brute(g, objects, q, 0)
		var want []Result
		for _, x := range all {
			if x.Dist <= r {
				want = append(want, x)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("range: %d results, want %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*math.Max(1, want[i].Dist) {
				t.Fatalf("range result %d dist mismatch", i)
			}
		}
	}
}

func TestFalseHitsObserved(t *testing.T) {
	// On road networks Euclidean proximity ≠ network proximity; across
	// many queries the baseline must encounter false candidates.
	ix, g, _ := fixture(t, 7)
	falseHits := 0
	for _, q := range dataset.RandomNodes(g, 30, 8) {
		_, st := ix.KNN(q, 0, 3)
		falseHits += st.FalseHits
	}
	if falseHits == 0 {
		t.Log("warning: no false hits observed (unusually Euclidean-friendly network)")
	}
}

func TestQueryIO(t *testing.T) {
	ix, g, _ := fixture(t, 9)
	ix.Store().DropCache()
	_, st := ix.KNN(dataset.RandomNodes(g, 1, 10)[0], 0, 3)
	if st.IO.Reads == 0 {
		t.Fatal("no I/O recorded")
	}
	if st.Candidates == 0 || st.NodesPopped == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestObjectUpdates(t *testing.T) {
	ix, g, objects := fixture(t, 11)
	o, err := ix.InsertObject(3, g.Weight(3)/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ix.KNN(g.Edge(3).U, 0, 1)
	if len(got) == 0 || got[0].Dist > g.Weight(3)/2+1e-9 {
		t.Fatalf("inserted object not found nearest: %v", got)
	}
	if !ix.DeleteObject(o.ID) {
		t.Fatal("delete failed")
	}
	// Still consistent with brute force after churn.
	for _, q := range dataset.RandomNodes(g, 10, 12) {
		got, _ := ix.KNN(q, 0, 3)
		want := brute(g, objects, q, 0)
		if len(want) > 3 {
			want = want[:3]
		}
		if len(got) != len(want) {
			t.Fatal("post-churn knn mismatch")
		}
	}
}

func TestWeightDecreaseKeepsHeuristicAdmissible(t *testing.T) {
	// Decreasing a weight can invalidate a stale heuristic scale; the
	// index must tighten it and stay exact.
	ix, g, objects := fixture(t, 13)
	e := graph.EdgeID(10)
	if err := ix.SetEdgeWeight(e, g.Weight(e)*0.05); err != nil {
		t.Fatal(err)
	}
	for _, q := range dataset.RandomNodes(g, 15, 14) {
		got, _ := ix.KNN(q, 0, 3)
		want := brute(g, objects, q, 0)
		if len(want) > 3 {
			want = want[:3]
		}
		if len(got) != len(want) {
			t.Fatalf("post-decrease knn: %d vs %d results", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9*math.Max(1, want[i].Dist) {
				t.Fatalf("post-decrease dist mismatch: %g vs %g", got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestIndexSize(t *testing.T) {
	ix, _, _ := fixture(t, 15)
	if ix.IndexSizeBytes() <= 0 {
		t.Fatal("IndexSizeBytes = 0")
	}
}
