// Package euclid implements the Euclidean distance-bound baseline
// (IER, [16,19]; §2): objects are indexed in an R-tree by map position;
// candidates are drawn in increasing Euclidean distance — a lower bound on
// network distance — and verified with A* shortest-path searches over the
// network. The approach suffers exactly the pathologies the paper
// describes: false candidates whose network distance greatly exceeds their
// Euclidean distance, and repeated A* searches over the same region.
package euclid

import (
	"math"
	"sort"
	"time"

	"road/internal/geom"
	"road/internal/graph"
	"road/internal/rtree"
	"road/internal/storage"
)

// Result is one answer object with its network distance.
type Result struct {
	Object graph.Object
	Dist   float64
}

// Stats reports the cost of one query.
type Stats struct {
	// Candidates counts objects drawn from the R-tree.
	Candidates int
	// FalseHits counts candidates that verification rejected.
	FalseHits int
	// NodesPopped counts network nodes settled across all A* runs.
	NodesPopped int
	IO          storage.Stats
}

// rtreePageBase maps R-tree node IDs into their own simulated page
// namespace.
const rtreePageBase = storage.PageID(-1) << 40

// Index is the Euclidean-bound structure: an R-tree over object positions
// plus the plain network for A* verification.
type Index struct {
	g       *graph.Graph
	objects *graph.ObjectSet
	rt      *rtree.Tree
	search  *graph.Search
	hScale  float64
	store   *storage.Store
	layout  *storage.Layout

	BuildTime time.Duration
}

// New builds the index. store may be nil to skip I/O simulation.
func New(g *graph.Graph, objects *graph.ObjectSet, store *storage.Store) *Index {
	start := time.Now()
	ix := &Index{g: g, objects: objects, store: store}
	var entries []rtree.Entry
	for _, o := range objects.All() {
		entries = append(entries, rtree.Entry{P: ix.objectPos(o), ID: o.ID})
	}
	ix.rt = rtree.BulkLoad(entries, rtree.DefaultMaxEntries)
	ix.search = graph.NewSearch(g)
	ix.hScale = graph.EuclideanScale(g)
	if store != nil {
		ix.layout = storage.NewLayout(store)
		for _, n := range storage.ClusterNodes(g) {
			ix.layout.Place(int64(n), 16+12*len(g.Neighbors(n)))
			ix.layout.Write(int64(n))
		}
		ix.rt.OnNodeVisit = func(id int32) { store.Read(rtreePageBase - storage.PageID(id)) }
	}
	ix.BuildTime = time.Since(start)
	return ix
}

// objectPos interpolates an object's map position along its edge.
func (ix *Index) objectPos(o graph.Object) geom.Point {
	e := ix.g.Edge(o.Edge)
	pu, pv := ix.g.Coord(e.U), ix.g.Coord(e.V)
	total := o.DU + o.DV
	t := 0.5
	if total > 0 {
		t = o.DU / total
	}
	return geom.Point{X: pu.X + (pv.X-pu.X)*t, Y: pu.Y + (pv.Y-pu.Y)*t}
}

// IndexSizeBytes reports storage: R-tree nodes plus network node records.
func (ix *Index) IndexSizeBytes() int64 {
	var total int64 = int64(ix.rt.Nodes()) * 512 // entries+rects per node
	for n := 0; n < ix.g.NumNodes(); n++ {
		total += int64(16 + 12*len(ix.g.Neighbors(graph.NodeID(n))))
	}
	return total
}

// Store returns the simulated page store (nil when disabled).
func (ix *Index) Store() *storage.Store { return ix.store }

// networkDist verifies one candidate: A* to each endpoint of the object's
// edge, taking the smaller endpoint-plus-offset distance. bound prunes
// searches that provably cannot beat the current result set (+Inf when no
// bound is known yet).
func (ix *Index) networkDist(q graph.NodeID, o graph.Object, bound float64, stats *Stats) float64 {
	e := ix.g.Edge(o.Edge)
	onSettle := func(graph.NodeID) {}
	if ix.layout != nil {
		onSettle = func(n graph.NodeID) { ix.layout.Read(int64(n)) }
	}
	du := ix.search.AStarBounded(q, e.U, ix.hScale, bound, onSettle)
	stats.NodesPopped += ix.search.Visited
	dv := ix.search.AStarBounded(q, e.V, ix.hScale, bound, onSettle)
	stats.NodesPopped += ix.search.Visited
	return math.Min(du+o.DU, dv+o.DV)
}

// KNN draws candidates in Euclidean order and verifies their network
// distances until the Euclidean bound exceeds the k-th best verified
// distance.
func (ix *Index) KNN(q graph.NodeID, attr int32, k int) ([]Result, Stats) {
	var stats Stats
	var mark storage.Stats
	if ix.store != nil {
		mark = ix.store.Stats()
	}
	qp := ix.g.Coord(q)
	it := ix.rt.NewNNIter(qp)
	var best []Result // sorted ascending by Dist
	for {
		e, eud, ok := it.Next()
		if !ok {
			break
		}
		// hScale×Euclidean lower-bounds network distance; once it reaches
		// the k-th best verified distance no candidate can improve.
		if len(best) == k && ix.hScale*eud >= best[k-1].Dist {
			break
		}
		o, exists := ix.objects.Get(e.ID)
		if !exists || (attr != 0 && o.Attr != attr) {
			continue
		}
		stats.Candidates++
		bound := math.Inf(1)
		if len(best) == k {
			bound = best[k-1].Dist
		}
		nd := ix.networkDist(q, o, bound, &stats)
		if math.IsInf(nd, 1) {
			stats.FalseHits++
			continue
		}
		best = append(best, Result{Object: o, Dist: nd})
		sort.Slice(best, func(i, j int) bool {
			if best[i].Dist != best[j].Dist {
				return best[i].Dist < best[j].Dist
			}
			return best[i].Object.ID < best[j].Object.ID
		})
		if len(best) > k {
			best = best[:k]
			stats.FalseHits++ // the displaced candidate was a false hit
		}
	}
	if ix.store != nil {
		stats.IO = ix.store.Stats().Sub(mark)
	}
	return best, stats
}

// Range retrieves Euclidean candidates within radius and keeps those whose
// verified network distance is within radius.
func (ix *Index) Range(q graph.NodeID, attr int32, radius float64) ([]Result, Stats) {
	var stats Stats
	var mark storage.Stats
	if ix.store != nil {
		mark = ix.store.Stats()
	}
	qp := ix.g.Coord(q)
	// Euclidean distance scaled by hScale lower-bounds network distance,
	// so the candidate disc has radius radius/hScale.
	discRadius := radius
	if ix.hScale > 0 {
		discRadius = radius / ix.hScale
	}
	var res []Result
	for _, e := range ix.rt.WithinRadius(qp, discRadius) {
		o, exists := ix.objects.Get(e.ID)
		if !exists || (attr != 0 && o.Attr != attr) {
			continue
		}
		stats.Candidates++
		nd := ix.networkDist(q, o, radius, &stats)
		if nd <= radius {
			res = append(res, Result{Object: o, Dist: nd})
		} else {
			stats.FalseHits++
		}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].Object.ID < res[j].Object.ID
	})
	if ix.store != nil {
		stats.IO = ix.store.Stats().Sub(mark)
	}
	return res, stats
}

// InsertObject adds an object to the set and the R-tree.
func (ix *Index) InsertObject(e graph.EdgeID, du float64, attr int32) (graph.Object, error) {
	o, err := ix.objects.Add(e, du, attr)
	if err != nil {
		return graph.Object{}, err
	}
	ix.rt.Insert(rtree.Entry{P: ix.objectPos(o), ID: o.ID})
	if ix.store != nil {
		ix.store.Write(rtreePageBase) // root page rewrite
	}
	return o, nil
}

// DeleteObject removes an object from the set and the R-tree.
func (ix *Index) DeleteObject(id graph.ObjectID) bool {
	o, ok := ix.objects.Get(id)
	if !ok {
		return false
	}
	ix.rt.Delete(ix.objectPos(o), id)
	ix.objects.Remove(id)
	if ix.store != nil {
		ix.store.Write(rtreePageBase)
	}
	return true
}

// SetEdgeWeight updates a road distance. The R-tree is position-based and
// unaffected; only the admissibility scale may need tightening.
func (ix *Index) SetEdgeWeight(e graph.EdgeID, w float64) error {
	if err := ix.g.SetWeight(e, w); err != nil {
		return err
	}
	ix.tightenScale(e)
	ix.writeEdgeEndpoints(e)
	return nil
}

// DeleteEdge removes a road segment (objects on it are dropped).
func (ix *Index) DeleteEdge(e graph.EdgeID) error {
	for _, oid := range ix.objects.OnEdge(e) {
		ix.DeleteObject(oid)
	}
	if err := ix.g.RemoveEdge(e); err != nil {
		return err
	}
	ix.writeEdgeEndpoints(e)
	return nil
}

// RestoreEdge re-attaches a removed segment.
func (ix *Index) RestoreEdge(e graph.EdgeID) error {
	if err := ix.g.RestoreEdge(e); err != nil {
		return err
	}
	ix.tightenScale(e)
	ix.writeEdgeEndpoints(e)
	return nil
}

// tightenScale keeps the A* heuristic admissible after weight changes: the
// scale only ever shrinks (a looser heuristic stays correct).
func (ix *Index) tightenScale(e graph.EdgeID) {
	ed := ix.g.Edge(e)
	d := ix.g.Coord(ed.U).Dist(ix.g.Coord(ed.V))
	if d > 0 {
		if r := ed.Weight / d; r < ix.hScale {
			ix.hScale = r
		}
	}
}

func (ix *Index) writeEdgeEndpoints(e graph.EdgeID) {
	if ix.layout == nil {
		return
	}
	ed := ix.g.Edge(e)
	ix.layout.Write(int64(ed.U))
	ix.layout.Write(int64(ed.V))
}

// Graph returns the underlying network.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// ObjectSet returns the mapped objects.
func (ix *Index) ObjectSet() *graph.ObjectSet { return ix.objects }
