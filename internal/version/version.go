// Package version centralizes the build identity every binary reports:
// the -version flag, the /healthz payload of shard hosts, and the
// road_build_info metric families expose the same strings.
package version

import (
	"fmt"
	"runtime"

	"road/internal/obs"
)

// Version is the release identity. Overridable at link time:
//
//	go build -ldflags "-X road/internal/version.Version=v1.2.3"
var Version = "0.6.0-dev"

// String renders the full identity line binaries print for -version.
func String(binary string) string {
	return fmt.Sprintf("%s %s (%s, %s/%s)", binary, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Register adds the road_build_info gauge to reg: constant 1, with the
// build identity carried in labels (the Prometheus info-metric idiom).
func Register(reg *obs.Registry) {
	labels := fmt.Sprintf("version=%q,go=%q", Version, runtime.Version())
	reg.Gauge("road_build_info", labels,
		"Build identity (constant 1; version and Go runtime in labels).",
		func() float64 { return 1 })
}
