package shard

import "road/internal/graph"

// Incremental border-table maintenance (the paper's §5.2 filter-and-
// refresh, applied at the shard level).
//
// A shard's derived routing state — the border distance table btable and
// the per-node nearest-border array borderDist — depends only on the
// shard's local network, so any single network mutation can invalidate
// only the entries whose shortest path ran over the touched edge. The
// whole-shard rebuild (one Dijkstra per border, B × Dijkstra(shard))
// recomputes every entry regardless; the functions in this file instead
// FILTER the entries that can possibly have changed with two Dijkstras
// from the touched edge's endpoints, then REFRESH only those.
//
// Let e = (u,v) be the touched edge and d(·,·) shortest distances in the
// shard's local graph. Two facts carry the whole scheme (positive
// weights, undirected graph, so a shortest path is simple and crosses e
// at most once, splitting into e-avoiding segments):
//
//   - Weight DECREASE (reopen and road addition are decreases from +Inf):
//     the new distance is exactly
//
//	d'(a,b) = min( d(a,b), d'(a,u)+w'+d'(v,b), d'(a,v)+w'+d'(u,b) )
//
//     — the old value, or the best path through e at its new weight.
//     Two Dijkstras from u and v on the NEW graph therefore repair every
//     btable arc and every borderDist entry with pure arithmetic: no
//     per-entry recomputation at all.
//
//   - Weight INCREASE (closure is an increase to +Inf): entries whose old
//     shortest path avoided e are untouched. An old path that crossed e
//     had length dᵉ(a,u)+w+dᵉ(v,b) (orientation as appropriate), where
//     dᵉ is the old distance avoiding e itself — which equals the NEW
//     graph's e-avoiding distance, computable after the fact. So two
//     e-excluding Dijkstras from u and v decide, per entry, whether the
//     old optimum could have crossed e; only the rows (and the
//     nearest-border array) that fail the check are recomputed, each with
//     the same bounded Dijkstra a full rebuild would spend on it.
//
// Distances are floating-point sums associated differently by the filter
// (prefix + w + suffix) than by a plain traversal, so all "could the old
// path have used e" comparisons carry refreshTol of relative slack:
// a false positive only wastes one row refresh, while a false negative
// would leave a stale arc, so the slack errs toward refreshing.
//
// Everything here runs on the mutation path, under the owning shard's
// write lock (see router.go): readers of this shard are excluded, readers
// of other shards are not — which is the point.

// netChange describes one applied network mutation in shard-local
// coordinates, with enough context to repair derived state incrementally.
type netChange struct {
	u, v graph.NodeID // endpoints of the touched edge (local IDs)
	edge graph.EdgeID // the touched edge (local ID)
	wOld float64      // weight before the mutation; +Inf if the edge did not exist (reopen, add)
	wNew float64      // weight after the mutation; +Inf if the edge is gone (closure)
	// topology marks mutations that add or remove an edge: they can move
	// nodes between the shard's internal Rnets, so the border watch set
	// must be rebuilt alongside the distance state.
	topology bool
}

// refreshTol is the relative slack of the filter comparisons, generously
// above worst-case float64 association drift on any realistic path length
// (≲1e-11) and below any meaningful distance difference.
const refreshTol = 1e-9

// maintainDerived repairs the shard's derived routing state after one
// network mutation: the filter-and-refresh counterpart of a full
// refreshDerived. Must run while readers of this shard are excluded.
func (s *Shard) maintainDerived(chg netChange) {
	s.maintainDerivedEmit(chg, false)
}

// maintainDerivedEmit is maintainDerived with an optional wire recipe:
// when emit is set (shard hosts) it returns the DerivedUpdate a remote
// mirror needs to repair its copy of btable/borderDist — the decrease
// case ships the two endpoint-distance arrays the repair arithmetic runs
// on (computed here anyway), the increase case ships the rows this
// refresh recomputed.
func (s *Shard) maintainDerivedEmit(chg netChange, emit bool) *DerivedUpdate {
	if chg.topology || s.watch == nil {
		local := make([]graph.NodeID, len(s.borders))
		for i, b := range s.borders {
			local[i] = s.localNode[b]
		}
		s.watch = s.F.NewWatchSet(local)
	}
	if s.fullRefresh {
		// Benchmark baseline: whole-shard rebuild on every mutation (the
		// pre-filter behaviour roadbench -maintain compares against).
		s.rebuildBTable()
		s.rebuildBorderDist()
		if emit {
			return s.emitAllRows()
		}
		return nil
	}
	if len(s.borders) == 0 {
		return nil // no borders: btable empty, borderDist all +Inf, nothing derived from the network
	}
	if chg.wNew <= chg.wOld {
		du := s.endpointDists(&s.du, chg.u, graph.NoEdge)
		dv := s.endpointDists(&s.dv, chg.v, graph.NoEdge)
		s.applyDecrease(du, dv, chg.wNew)
		if emit {
			return &DerivedUpdate{
				Kind: DerivedDecrease,
				W:    chg.wNew,
				DU:   append([]float64(nil), du...),
				DV:   append([]float64(nil), dv...),
			}
		}
		return nil
	}
	stale, bdRebuilt := s.refreshIncrease(chg)
	if emit {
		u := &DerivedUpdate{Kind: DerivedRows}
		for _, i := range stale {
			b := s.borders[i]
			u.Rows = append(u.Rows, BorderRow{Border: b, Arcs: append([]BorderArc(nil), s.btable[b]...)})
		}
		if bdRebuilt {
			u.BorderDist = append([]float64(nil), s.borderDist...)
		}
		return u
	}
	return nil
}

// emitAllRows snapshots the whole derived state as a DerivedRows update
// (the fullRefresh baseline's wire form).
func (s *Shard) emitAllRows() *DerivedUpdate {
	u := &DerivedUpdate{Kind: DerivedRows, BorderDist: append([]float64(nil), s.borderDist...)}
	for _, b := range s.borders {
		u.Rows = append(u.Rows, BorderRow{Border: b, Arcs: append([]BorderArc(nil), s.btable[b]...)})
	}
	return u
}

// endpointDists runs one Dijkstra from src over the live local graph
// (optionally excluding one edge) and copies the distance of every node
// into *buf, which is grown on first use and reused afterwards.
func (s *Shard) endpointDists(buf *[]float64, src graph.NodeID, exclude graph.EdgeID) []float64 {
	n := s.F.Graph().NumNodes()
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	d := (*buf)[:n]
	opt := graph.Options{}
	if exclude != graph.NoEdge {
		opt.Filter = func(e graph.EdgeID) bool { return e != exclude }
	}
	s.bsearch.Run(src, opt)
	for i := 0; i < n; i++ {
		d[i] = s.bsearch.Dist(graph.NodeID(i))
	}
	return d
}

// nearestBorder returns min over the shard's borders of d[border].
func (s *Shard) nearestBorder(d []float64) float64 {
	best := inf
	for _, b := range s.borders {
		if v := d[s.localNode[b]]; v < best {
			best = v
		}
	}
	return best
}

// applyDecrease repairs btable and borderDist after a weight decrease
// on an edge (reopen and AddRoad are decreases from +Inf). With du/dv
// the new-graph distances from the endpoints, every repaired entry is
// min(old, through-e candidate) — exact, by the decomposition above —
// so the whole repair is pure O(B² + N) arithmetic over the arrays. It
// runs identically on a full local shard (which computed du/dv with two
// Dijkstras) and on a remote mirror (which received them on the wire):
// everything it touches is identity-map and derived state.
func (s *Shard) applyDecrease(du, dv []float64, w float64) {
	// borderDist: a node's nearest border may now be cheaper through e.
	minBu, minBv := s.nearestBorder(du), s.nearestBorder(dv)
	for i := range s.borderDist {
		if c := du[i] + w + minBv; c < s.borderDist[i] {
			s.borderDist[i] = c
		}
		if c := dv[i] + w + minBu; c < s.borderDist[i] {
			s.borderDist[i] = c
		}
	}

	// btable: splice the through-e candidate into every arc, adding arcs
	// between borders the decrease newly connected.
	for _, a := range s.borders {
		la := s.localNode[a]
		dua, dva := du[la], dv[la]
		if isInf(dua) && isInf(dva) {
			continue // a cannot reach the touched edge: row unchanged
		}
		s.spliceRow(a, func(lb graph.NodeID, old float64) float64 {
			if c := dua + w + dv[lb]; c < old {
				old = c
			}
			if c := dva + w + du[lb]; c < old {
				old = c
			}
			return old
		})
	}
}

// spliceRow rewrites border a's btable row: for every other border b the
// new arc distance is next(localB, old) with old = +Inf for absent arcs;
// non-finite results stay absent. The row is assembled in session-free
// scratch first (a new arc may sort before unread old ones, so building
// in place would overwrite entries still to be merged) and copied over
// the old row only when something actually changed.
func (s *Shard) spliceRow(a graph.NodeID, next func(lb graph.NodeID, old float64) float64) {
	row := s.btable[a]
	s.rowScratch = s.rowScratch[:0]
	ri := 0 // read cursor over the old row (sorted by To, as borders are)
	changed := false
	for _, b := range s.borders {
		if b == a {
			continue
		}
		old := inf
		if ri < len(row) && row[ri].To == b {
			old = row[ri].Dist
			ri++
		}
		nd := next(s.localNode[b], old)
		if isInf(nd) {
			if !isInf(old) {
				changed = true
			}
			continue
		}
		if nd != old {
			changed = true
		}
		s.rowScratch = append(s.rowScratch, BorderArc{To: b, Dist: nd})
	}
	if changed {
		s.btable[a] = append(row[:0], s.rowScratch...)
	}
}

// refreshIncrease repairs btable and borderDist after a weight increase
// on chg.edge (closure is an increase to +Inf). Two e-excluding Dijkstras
// from the endpoints reconstruct what any old through-e optimum must have
// cost; entries that could not have crossed e are provably unchanged and
// skipped, the rest are recomputed from scratch (one bounded Dijkstra per
// stale border row, one multi-source Dijkstra if borderDist went stale).
// It reports which border rows it recomputed and whether borderDist was
// rebuilt, so hosts can ship exactly those to their router's mirror.
func (s *Shard) refreshIncrease(chg netChange) (stale []int, bdRebuilt bool) {
	// For a closure the edge is already detached from the adjacency
	// lists; for a re-weight it is live at the new weight and must be
	// excluded explicitly.
	exclude := chg.edge
	if isInf(chg.wNew) {
		exclude = graph.NoEdge
	}
	du := s.endpointDists(&s.du, chg.u, exclude)
	dv := s.endpointDists(&s.dv, chg.v, exclude)
	wOld := chg.wOld

	// borderDist filter: did ANY node's old nearest-border path cross e?
	// The old crossing cost from node i was ≥ du[i]+wOld+minBv (or the
	// v-side mirror), so if that lower bound beats the recorded distance
	// nowhere, every entry's old optimum avoided e and the array is
	// exact as-is.
	minBu, minBv := s.nearestBorder(du), s.nearestBorder(dv)
	for i, bd := range s.borderDist {
		lo := du[i] + wOld + minBv
		if alt := dv[i] + wOld + minBu; alt < lo {
			lo = alt
		}
		if !isInf(lo) && lo <= bd*(1+refreshTol) {
			s.rebuildBorderDist()
			bdRebuilt = true
			break
		}
	}

	// btable filter: a row is stale only if some arc's old optimum could
	// have crossed e. Absent arcs cannot be affected — an increase never
	// creates connectivity.
	var targets []graph.NodeID // lazily hoisted for the stale-row refreshes
	for i, a := range s.borders {
		la := s.localNode[a]
		dua, dva := du[la], dv[la]
		if isInf(dua) && isInf(dva) {
			continue // a could not reach e at all
		}
		for _, arc := range s.btable[a] {
			lb := s.localNode[arc.To]
			bound := dua + wOld + dv[lb]
			if alt := dva + wOld + du[lb]; alt < bound {
				bound = alt
			}
			if bound <= arc.Dist*(1+refreshTol) {
				if targets == nil {
					targets = s.borderTargets()
				}
				s.refreshBTableRow(i, targets)
				stale = append(stale, i)
				break
			}
		}
	}
	return stale, bdRebuilt
}
