package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"road/internal/apierr"
	"road/internal/core"
	"road/internal/graph"
	"road/internal/partition"
	"road/internal/rnet"
	"road/internal/snapshot"
)

// ErrIntegrity marks a replay whose journal and base state have diverged
// in a way that would corrupt the router's global bookkeeping (unlike an
// ordinary op failure, which replays a failure that also happened live).
// Callers must treat it as fatal: the shard set is not recovered.
var ErrIntegrity = errors.New("shard: journal does not match base state")

// Options tunes Router construction.
type Options struct {
	// Shards is the number of region shards K (a power of two ≥ 2, like
	// the partitioner's fanout).
	Shards int
	// Seed drives the deterministic shard partitioning.
	Seed int64
	// KLPasses bounds border-minimizing refinement of the shard cut
	// (negative selects the partitioner default, 0 disables).
	KLPasses int
	// Core configures each shard's framework. A zero Rnet config resolves
	// per-shard defaults sized to that shard's node count.
	Core core.Config
	// FullRefresh disables incremental border-table maintenance: every
	// network mutation rebuilds the owning shard's whole border table
	// and nearest-border array, the pre-§5.2 behaviour. Kept only as the
	// baseline roadbench -maintain measures the incremental path against.
	FullRefresh bool
}

// Router owns K region shards over one road network and dispatches
// queries and maintenance to them. Queries run on Sessions (any number
// concurrently) and mutations go through Mutate; the two are
// synchronized internally with per-shard write locks, so a mutation
// excludes only readers of its own shard (plus cross-shard readers,
// which hold every shard's read lock) — readers of the other K-1 shards
// proceed concurrently. See DESIGN.md, "Per-shard locking".
type Router struct {
	g      *graph.Graph // global network mirror (IDs + topology bookkeeping)
	shards []*Shard

	// Locking (fixed acquisition order, outermost first):
	//
	//	writeMu → shardMu[i] (ascending when several) → metaMu
	//
	// writeMu serializes mutations and whole-router exclusion, so at
	// most one shard write lock is ever contended at a time and ID
	// allocation (NextEdgeID, nextObj) is atomic with the apply.
	// shardMu[i] excludes shard i's readers from its active mutation;
	// the query fast path holds only the home shard's read lock, the
	// cross-shard path holds all of them. metaMu guards the
	// router-global bookkeeping every shard shares (the g mirror,
	// edgeShard, objLoc, nextObj); it is a leaf lock — nothing is
	// acquired while holding it.
	writeMu sync.Mutex
	shardMu []sync.RWMutex
	metaMu  sync.RWMutex

	// shardsOf maps a global node to the shards containing it: nil for
	// edge-less nodes, one entry for interior nodes, several for borders.
	// Immutable after build (node sets are fixed), so queries read it
	// without locks.
	shardsOf [][]ID
	// edgeShard maps a global edge to its owning shard (metaMu).
	edgeShard []ID

	// objLoc locates every live object: global ID -> owning shard
	// (metaMu). Local IDs are resolved through the shard's own maps.
	objLoc  map[graph.ObjectID]ID
	nextObj graph.ObjectID

	seed     int64
	klPasses int
}

// Build partitions g's active edges into opt.Shards region shards, builds
// one framework per shard, adopts objects into their owning shards, and
// wires the cross-shard routing state. The global graph and object set
// are adopted: further mutation must go through Router methods.
func Build(g *graph.Graph, objects *graph.ObjectSet, opt Options) (*Router, error) {
	if opt.Shards < 2 || opt.Shards&(opt.Shards-1) != 0 {
		return nil, fmt.Errorf("shard: shard count must be a power of two ≥ 2, got %d", opt.Shards)
	}
	active := make([]graph.EdgeID, 0, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		if !g.Edge(graph.EdgeID(e)).Removed {
			active = append(active, graph.EdgeID(e))
		}
	}
	if len(active) < opt.Shards {
		return nil, fmt.Errorf("shard: network has %d active edges, need at least %d for %d shards", len(active), opt.Shards, opt.Shards)
	}
	klPasses := opt.KLPasses
	if klPasses == 0 {
		// The shard cut is worth far more refinement than an in-shard Rnet
		// cut: every border node taxes the border tables (O(B²)), the
		// watch sets, and — worst — the fraction of queries that must take
		// the cross-shard slow path. The split runs once at build time, so
		// spend a generous pass budget minimizing it.
		klPasses = 4 * partition.DefaultKLPasses
	}
	// The shard split takes the place of the hierarchy's top level(s):
	// when the per-shard Rnet shape is left to defaults, size it for the
	// WHOLE network and subtract the levels the K-way split already
	// provides — otherwise every shard gets the full default depth and
	// leaf Rnets shrink to a handful of edges, slowing every traversal.
	if opt.Core.Rnet.Fanout == 0 && opt.Core.Rnet.Levels == 0 {
		rcfg := rnet.DefaultConfig(g.NumNodes())
		for covered := 1; covered < opt.Shards && rcfg.Levels > 1; covered *= rcfg.Fanout {
			rcfg.Levels--
		}
		rcfg.Seed = opt.Core.Rnet.Seed
		rcfg.StorePaths = opt.Core.Rnet.StorePaths
		rcfg.EdgeWeight = opt.Core.Rnet.EdgeWeight
		opt.Core.Rnet = rcfg
	}
	parts, err := partition.Split(g, active, partition.Options{
		Parts:    opt.Shards,
		KLPasses: klPasses,
		Seed:     opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	r := &Router{
		g:         g,
		shards:    make([]*Shard, 0, opt.Shards),
		shardMu:   make([]sync.RWMutex, opt.Shards),
		edgeShard: make([]ID, g.NumEdges()),
		objLoc:    make(map[graph.ObjectID]ID, objects.Len()),
		nextObj:   objects.NextID(),
		seed:      opt.Seed,
		klPasses:  klPasses,
	}
	for i := range r.edgeShard {
		r.edgeShard[i] = -1
	}
	for id, part := range parts {
		sort.Slice(part, func(i, j int) bool { return part[i] < part[j] })
		s, err := newShard(id, g, objects, part, opt.Core)
		if err != nil {
			return nil, err
		}
		s.fullRefresh = opt.FullRefresh
		r.shards = append(r.shards, s)
		for _, ge := range part {
			r.edgeShard[ge] = id
		}
		for gid := range s.localObj {
			r.objLoc[gid] = id
		}
	}
	r.wireTopology()
	return r, nil
}

// computeShardsOf rebuilds the global-node → shards index from the
// shards' node lists.
func (r *Router) computeShardsOf() {
	r.shardsOf = make([][]ID, r.g.NumNodes())
	for _, s := range r.shards {
		for _, gn := range s.globalNode {
			r.shardsOf[gn] = append(r.shardsOf[gn], s.ID)
		}
	}
}

// wireTopology recomputes shardsOf and every shard's border set from the
// shards' node lists, then refreshes per-shard derived state.
func (r *Router) wireTopology() {
	r.computeShardsOf()
	for _, s := range r.shards {
		var borders []graph.NodeID
		for _, gn := range s.globalNode {
			if len(r.shardsOf[gn]) > 1 {
				borders = append(borders, gn)
			}
		}
		s.setBorders(borders) // already sorted: globalNode is ascending
	}
}

// Graph returns the global network mirror. Its topology and IDs are
// authoritative; edge weights are kept in sync on the live mutation path
// (queries never read them — they run on the shard graphs). The caller
// must not use it concurrently with mutations; the concurrency-safe
// counters are NumEdges and NumObjects.
func (r *Router) Graph() *graph.Graph { return r.g }

// NumShards returns the number of shards.
func (r *Router) NumShards() int { return len(r.shards) }

// HomeOf returns the lowest shard containing global node gn, or -1 for
// an unknown node. Lock-free: shardsOf is immutable after assembly (the
// node set is fixed for the deployment's lifetime), so this is safe on
// the query hot path — the server uses it to label query-log records
// with their home shard.
func (r *Router) HomeOf(gn graph.NodeID) ID {
	if int(gn) < 0 || int(gn) >= len(r.shardsOf) || len(r.shardsOf[gn]) == 0 {
		return -1
	}
	return r.shardsOf[gn][0]
}

// Shard returns shard id.
func (r *Router) Shard(id ID) *Shard { return r.shards[id] }

// NumObjects returns the number of live objects across all shards. Safe
// to call concurrently with queries and mutations.
func (r *Router) NumObjects() int {
	r.metaMu.RLock()
	defer r.metaMu.RUnlock()
	return len(r.objLoc)
}

// NumEdges returns the global road-segment count, including closed
// segments. Safe to call concurrently with queries and mutations.
func (r *Router) NumEdges() int {
	r.metaMu.RLock()
	defer r.metaMu.RUnlock()
	return r.g.NumEdges()
}

// --- Locking ---

// mutateMeta runs fn under the global-bookkeeping write lock. Called
// only from the mutation path (inside Mutate's critical section).
func (r *Router) mutateMeta(fn func()) {
	r.metaMu.Lock()
	fn()
	r.metaMu.Unlock()
}

// rlockAll / runlockAll bracket a cross-shard read view: every shard's
// read lock, ascending. A mutation anywhere is excluded for its
// duration, so the gateway tables and all shard frameworks are one
// consistent snapshot.
func (r *Router) rlockAll() {
	for i := range r.shardMu {
		r.shardMu[i].RLock()
	}
}

func (r *Router) runlockAll() {
	for i := range r.shardMu {
		r.shardMu[i].RUnlock()
	}
}

// Mutate runs one mutation: encode resolves it to an owning shard and a
// journal-ready op under the router's mutation lock (so ID allocation is
// atomic with the apply), then apply runs under that shard's write lock
// — excluding only readers of that shard, which is the whole point of
// per-shard locking. The encoded op is returned even on failure so
// callers can report the IDs it allocated.
func (r *Router) Mutate(encode func() (ID, snapshot.Op, error), apply func(ID, snapshot.Op) error) (snapshot.Op, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	sid, op, err := encode()
	if err != nil {
		return op, err
	}
	r.shardMu[sid].Lock()
	defer r.shardMu[sid].Unlock()
	if err := apply(sid, op); err != nil {
		// Even a failed op can have invalidated shortcut trees (a road
		// addition whose global mirror rejected it, say); re-materialize
		// before this shard's readers resume.
		r.shards[sid].warmTrees()
		return op, err
	}
	r.shards[sid].mutations.Add(1)
	return op, nil
}

// Exclusive runs fn with the mutation lock and every shard's write lock
// held: queries and mutations are fully excluded, giving fn one
// consistent view of the whole router — the contract snapshot saves
// need.
func (r *Router) Exclusive(fn func() error) error {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	for i := range r.shardMu {
		r.shardMu[i].Lock()
	}
	defer func() {
		for i := range r.shardMu {
			r.shardMu[i].Unlock()
		}
	}()
	return fn()
}

// Epoch returns the router's maintenance epoch: the sum of the shard
// frameworks' epochs. Every successful mutation bumps exactly one shard,
// so the sum is monotonic, and it survives snapshot round-trips because
// each shard's epoch is persisted with its framework.
func (r *Router) Epoch() uint64 {
	var sum uint64
	for _, s := range r.shards {
		sum += s.epoch()
	}
	return sum
}

// IndexSizeBytes sums the shard frameworks' index sizes (host-reported
// for mirror shards). Safe to call concurrently with queries and
// mutations (per-shard read locks).
func (r *Router) IndexSizeBytes() int64 {
	var sum int64
	for i, s := range r.shards {
		r.shardMu[i].RLock()
		sum += s.indexSizeBytes()
		r.shardMu[i].RUnlock()
	}
	return sum
}

// WarmTrees re-materializes invalidated shortcut trees in every shard
// and rebuilds any CSR search slabs whose topology generation went
// stale. Single-threaded bulk use only (after build or journal replay,
// before serving): the live mutation path re-warms the mutated shard
// itself, under its write lock.
func (r *Router) WarmTrees() {
	for _, s := range r.shards {
		s.warmTrees()
	}
}

// NextObjectID returns the global ID the next inserted object will get.
func (r *Router) NextObjectID() graph.ObjectID { return r.nextObj }

// NextEdgeID returns the global ID the next added road will get.
func (r *Router) NextEdgeID() graph.EdgeID { return graph.EdgeID(r.g.NumEdges()) }

// OwnerOfEdge returns the shard owning a global edge.
func (r *Router) OwnerOfEdge(ge graph.EdgeID) (*Shard, error) {
	if ge < 0 || int(ge) >= len(r.edgeShard) || r.edgeShard[ge] < 0 {
		return nil, fmt.Errorf("shard: edge %d: %w", ge, apierr.ErrNoSuchEdge)
	}
	return r.shards[r.edgeShard[ge]], nil
}

// OwnerOfObject returns the shard holding a global object.
func (r *Router) OwnerOfObject(gid graph.ObjectID) (*Shard, error) {
	r.metaMu.RLock()
	id, ok := r.objLoc[gid]
	r.metaMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("shard: object %d: %w", gid, apierr.ErrNoSuchObject)
	}
	return r.shards[id], nil
}

// ShardForNewRoad picks the shard a new road between global nodes u and v
// will live in: the lowest-ID shard containing both endpoints. Roads
// whose endpoints share no shard are rejected — admitting them would
// change shard boundaries, which are fixed at build time.
func (r *Router) ShardForNewRoad(u, v graph.NodeID) (*Shard, error) {
	if int(u) < 0 || int(u) >= len(r.shardsOf) || int(v) < 0 || int(v) >= len(r.shardsOf) {
		return nil, fmt.Errorf("shard: endpoint out of range (%d,%d): %w", u, v, apierr.ErrNoSuchNode)
	}
	for _, su := range r.shardsOf[u] {
		for _, sv := range r.shardsOf[v] {
			if su == sv {
				return r.shards[su], nil
			}
		}
	}
	return nil, fmt.Errorf("shard: nodes %d and %d: cross-shard road additions are not supported: %w", u, v, apierr.ErrCrossShardRoad)
}

// --- Mutation application ---
//
// Every ShardedDB mutation — live or replayed from a shard's write-ahead
// journal — goes through ApplyOp with a snapshot.Op in SHARD-LOCAL
// coordinates, with the op's otherwise-unused fields carrying the global
// IDs the router must record:
//
//	OpAddRoad:      U, V local endpoints; Edge = the global edge ID
//	OpInsertObject: Edge local; Object = the global object ID
//	OpDeleteObject / OpSetObjectAttr: Object = the GLOBAL object ID
//	OpSetDistance / OpClose / OpReopen: Edge local
//
// Using one code path for both directions is what makes replay land in
// exactly the live state: the same translations, the same map updates,
// the same failure modes.

// ApplyOp itself lives in apply.go, split into the shard-side half
// (Shard.applyLocal — which also runs on shard hosts) and the
// router-side global bookkeeping.

// --- Op encoding (the live-mutation side of the unified apply path) ---
//
// Each Encode* helper resolves a global-coordinate mutation to its owning
// shard and the journal-ready local-coordinate op. The caller write-ahead
// logs the op to that shard's journal, then hands the SAME op to ApplyOp
// — so live execution and crash replay run byte-identical operations.

// EncodeSetDistance prepares an edge re-weight.
func (r *Router) EncodeSetDistance(ge graph.EdgeID, dist float64) (ID, snapshot.Op, error) {
	s, err := r.OwnerOfEdge(ge)
	if err != nil {
		return 0, snapshot.Op{}, err
	}
	return s.ID, snapshot.Op{Kind: snapshot.OpSetDistance, Edge: s.localEdge[ge], Value: dist}, nil
}

// EncodeClose prepares a road closure.
func (r *Router) EncodeClose(ge graph.EdgeID) (ID, snapshot.Op, error) {
	s, err := r.OwnerOfEdge(ge)
	if err != nil {
		return 0, snapshot.Op{}, err
	}
	return s.ID, snapshot.Op{Kind: snapshot.OpClose, Edge: s.localEdge[ge]}, nil
}

// EncodeReopen prepares a road restoration.
func (r *Router) EncodeReopen(ge graph.EdgeID) (ID, snapshot.Op, error) {
	s, err := r.OwnerOfEdge(ge)
	if err != nil {
		return 0, snapshot.Op{}, err
	}
	return s.ID, snapshot.Op{Kind: snapshot.OpReopen, Edge: s.localEdge[ge]}, nil
}

// EncodeAddRoad prepares a road addition between existing global nodes;
// Op.Edge carries the global ID the new road will receive.
func (r *Router) EncodeAddRoad(u, v graph.NodeID, dist float64) (ID, snapshot.Op, error) {
	s, err := r.ShardForNewRoad(u, v)
	if err != nil {
		return 0, snapshot.Op{}, err
	}
	op := snapshot.Op{
		Kind:  snapshot.OpAddRoad,
		U:     s.localNode[u],
		V:     s.localNode[v],
		Value: dist,
		Edge:  r.NextEdgeID(),
	}
	return s.ID, op, nil
}

// EncodeInsertObject prepares an object insertion; Op.Object carries the
// global ID the object will receive.
func (r *Router) EncodeInsertObject(ge graph.EdgeID, du float64, attr int32) (ID, snapshot.Op, error) {
	s, err := r.OwnerOfEdge(ge)
	if err != nil {
		return 0, snapshot.Op{}, err
	}
	op := snapshot.Op{
		Kind:   snapshot.OpInsertObject,
		Edge:   s.localEdge[ge],
		Value:  du,
		Attr:   attr,
		Object: r.nextObj,
	}
	return s.ID, op, nil
}

// EncodeDeleteObject prepares an object deletion (global ID).
func (r *Router) EncodeDeleteObject(gid graph.ObjectID) (ID, snapshot.Op, error) {
	s, err := r.OwnerOfObject(gid)
	if err != nil {
		return 0, snapshot.Op{}, err
	}
	return s.ID, snapshot.Op{Kind: snapshot.OpDeleteObject, Object: gid}, nil
}

// EncodeSetObjectAttr prepares an attribute change (global ID).
func (r *Router) EncodeSetObjectAttr(gid graph.ObjectID, attr int32) (ID, snapshot.Op, error) {
	s, err := r.OwnerOfObject(gid)
	if err != nil {
		return 0, snapshot.Op{}, err
	}
	return s.ID, snapshot.Op{Kind: snapshot.OpSetObjectAttr, Object: gid, Attr: attr}, nil
}

// Object returns a live object by global ID, in global coordinates.
// Safe to call concurrently with queries and mutations: the owning shard
// is resolved under the bookkeeping lock, then re-verified under that
// shard's read lock (the object may be deleted between the two).
func (r *Router) Object(gid graph.ObjectID) (graph.Object, bool) {
	o, ok, _ := r.ObjectErr(gid)
	return o, ok
}

// ObjectErr is Object with the transport error surfaced: for a mirror
// shard the payload lives on the host, and "not found" must stay
// distinguishable from "host unreachable".
func (r *Router) ObjectErr(gid graph.ObjectID) (graph.Object, bool, error) {
	r.metaMu.RLock()
	sid, ok := r.objLoc[gid]
	r.metaMu.RUnlock()
	if !ok {
		return graph.Object{}, false, nil
	}
	r.shardMu[sid].RLock()
	defer r.shardMu[sid].RUnlock()
	return r.objectInShard(sid, gid)
}

// ObjectInShard resolves a global object known to live in shard sid,
// taking no locks: for callers already inside that shard's lock — a
// Mutate apply callback reading back the object it just inserted, say.
func (r *Router) ObjectInShard(sid ID, gid graph.ObjectID) (graph.Object, bool) {
	o, ok, _ := r.objectInShard(sid, gid)
	return o, ok
}

func (r *Router) objectInShard(sid ID, gid graph.ObjectID) (graph.Object, bool, error) {
	s := r.shards[sid]
	lo, ok := s.localObj[gid]
	if !ok {
		return graph.Object{}, false, nil
	}
	var o graph.Object
	if s.F != nil {
		o, ok = s.F.Objects().Get(lo)
	} else {
		var err error
		o, ok, err = s.remote.Object(lo)
		if err != nil {
			return graph.Object{}, false, err
		}
	}
	if !ok {
		return graph.Object{}, false, nil
	}
	o.ID = gid
	o.Edge = s.globalEdge[o.Edge]
	return o, true, nil
}

// RefreshAll rebuilds every shard's derived routing state (watch sets and
// border tables) and re-warms shortcut trees — the bulk counterpart of
// per-op refresh, for after journal replay. Mirror shards are skipped:
// their derived state arrives from the host (adoption and ApplyReply).
func (r *Router) RefreshAll() {
	for _, s := range r.shards {
		if s.F == nil {
			continue
		}
		s.refreshDerived(true)
		s.F.WarmTrees()
	}
}

// Info describes one shard for monitoring (/stats).
type Info struct {
	ID            ID     `json:"id"`
	Nodes         int    `json:"nodes"`
	Edges         int    `json:"edges"`
	Objects       int    `json:"objects"`
	Borders       int    `json:"borders"`
	Epoch         uint64 `json:"epoch"`
	IndexKB       int64  `json:"index_kb"`
	Host          string `json:"host,omitempty"` // serving host (mirror shards)
	HomeQueries   uint64 `json:"home_queries"`
	RemoteEntries uint64 `json:"remote_entries"`
	Escalations   uint64 `json:"escalations"`
	Mutations     uint64 `json:"mutations"`
}

// Infos snapshots per-shard state and load counters. Safe to call
// concurrently with queries and mutations (per-shard read locks).
func (r *Router) Infos() []Info {
	out := make([]Info, len(r.shards))
	for i, s := range r.shards {
		r.shardMu[i].RLock()
		out[i] = Info{
			ID:            s.ID,
			Nodes:         s.numNodes(),
			Edges:         s.numEdges(),
			Objects:       s.numObjects(),
			Borders:       len(s.borders),
			Epoch:         s.epoch(),
			IndexKB:       s.indexSizeBytes() / 1024,
			HomeQueries:   s.homeQueries.Load(),
			RemoteEntries: s.remoteEntries.Load(),
			Escalations:   s.escalations.Load(),
			Mutations:     s.mutations.Load(),
		}
		if s.F == nil {
			out[i].Host = s.remote.Host()
		}
		r.shardMu[i].RUnlock()
	}
	return out
}
