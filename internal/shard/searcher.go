package shard

import (
	"context"
	"fmt"

	"road/internal/apierr"
	"road/internal/core"
	"road/internal/graph"
)

// A Searcher is one query session's handle onto one shard's compute
// surface, in SHARD-LOCAL coordinates. The cross-shard Session machinery
// (query.go, path.go) runs entirely against this seam: for an in-process
// shard it is backed by a core.Session plus a plain Dijkstra workspace;
// for an out-of-process shard (internal/shard/remote) every call is an
// RPC to the host that owns the shard. A Searcher serves one goroutine
// at a time, like the Session that owns it.
//
// All identity translation (local↔global) stays on the router side: the
// Session owns the shard's identity maps whether the compute is local or
// remote, so only search work crosses the process boundary.
type Searcher interface {
	// Search runs one watched or plain framework search (the kNN/range
	// building block). Partial results may accompany a budget or
	// cancellation error, exactly like core.Session.SearchSeededLimited.
	Search(ctx context.Context, req SearchReq) (SearchResp, error)
	// Leg runs one plain Dijkstra leg on the shard's live local graph
	// (the PathTo building block).
	Leg(ctx context.Context, req LegReq) (LegResp, error)
}

// SearchReq describes one per-shard framework search. Seeds are
// shard-local nodes with the global distance already accumulated to
// reach them (a single zero-distance seed for home searches).
type SearchReq struct {
	Seeds []core.Seed `json:"seeds"`
	Attr  int32       `json:"attr,omitempty"`
	// K caps the result count (0 for range queries).
	K int `json:"k,omitempty"`
	// Radius bounds the expansion (0 = unbounded): the range-query radius,
	// or a kNN re-run's stop-at cap.
	Radius float64 `json:"radius,omitempty"`
	// Watch asks for the exact distance to every border node settled
	// below the search's stopping distance (the gateway's seed data).
	Watch bool `json:"watch,omitempty"`
	// Budget is the remaining node-settlement budget for this sub-search
	// (0 = unlimited). The caller tracks the query-wide budget across
	// shards and passes down what is left.
	Budget int `json:"budget,omitempty"`
}

// SearchResp is a Search result in shard-local coordinates.
//
// Watched may alias searcher-owned scratch: it is valid until the next
// Search call on the same Searcher, so consume (or serialize) it first.
type SearchResp struct {
	Results []core.Result   `json:"results,omitempty"`
	Watched []WatchDist     `json:"watched,omitempty"`
	Stats   core.QueryStats `json:"stats"`
}

// WatchDist is one watched border's exact distance from the query seeds
// (shard-local node ID). A slice, not a map, so the order-independent
// min-merge on the router side works the same locally and over the wire.
type WatchDist struct {
	Node graph.NodeID `json:"node"`
	Dist float64      `json:"dist"`
}

// LegReq describes one plain Dijkstra leg. Exactly one of three shapes:
//
//   - Targets only: distances to each target (head-borders leg).
//   - PathTo (with Targets = {PathTo}): distances plus the shortest path
//     to that node (gateway hop legs).
//   - Object ≥ 0: the leg targets the object's edge endpoints, resolved
//     shard-side, and returns the path to the cheaper endpoint plus the
//     full object distance (direct and tail legs).
//
// Constructors must set PathTo to graph.NoNode and Object to -1 when
// unused: the zero values are valid IDs.
type LegReq struct {
	Seeds   []core.Seed    `json:"seeds"`
	Targets []graph.NodeID `json:"targets,omitempty"`
	PathTo  graph.NodeID   `json:"path_to"`
	Object  graph.ObjectID `json:"object"`
	Budget  int            `json:"budget,omitempty"`
}

// LegResp is a Leg result in shard-local coordinates. Dist is +Inf when
// the requested path target (or object) is unreachable; the wire layer
// encodes +Inf as -1, but in-process values are real infinities.
type LegResp struct {
	// Dists is aligned with LegReq.Targets (+Inf = unreachable).
	Dists []float64 `json:"dists,omitempty"`
	// Path is the node sequence (local IDs) to PathTo or to the object's
	// cheaper edge endpoint; Path[0] is the seed it was reached from.
	Path []graph.NodeID `json:"path,omitempty"`
	// Dist is the distance Path realizes — for Object legs, including the
	// along-edge offset to the object itself.
	Dist float64 `json:"dist"`
	// Pops is the number of nodes the leg settled.
	Pops int `json:"pops"`
}

// localSearcher is the in-process Searcher: the pre-RPC query machinery
// folded behind the seam. Shard hosts use it too — their HTTP handlers
// drive the exact same code the in-process router runs. The session
// rides internal/core's CSR hot path (flat slabs, zero-alloc inner
// loops); the sharding layer needs no awareness of it beyond the
// post-mutation WarmTrees fence that keeps the slabs current.
type localSearcher struct {
	sh      *Shard
	sess    *core.Session
	gs      *graph.Search // lazy: only path legs need it
	wdist   map[graph.NodeID]float64
	watched []WatchDist
}

// newLocalSearcher builds a Searcher over a full local shard. Callers
// must hold the shard's read exclusion: the first session per framework
// materializes shortcut trees.
func (s *Shard) newLocalSearcher() *localSearcher {
	return &localSearcher{sh: s, sess: s.F.NewSession()}
}

// NewLocalSearcher is newLocalSearcher for shard hosts (package remote),
// which pool searchers per shard for their search handlers.
func (s *Shard) NewLocalSearcher() Searcher { return s.newLocalSearcher() }

func (ls *localSearcher) Search(ctx context.Context, req SearchReq) (SearchResp, error) {
	lim := core.Limits{Ctx: ctx, Budget: req.Budget}
	var watch *core.WatchSet
	var wdist map[graph.NodeID]float64
	if req.Watch {
		watch = ls.sh.watch
		if ls.wdist == nil {
			ls.wdist = make(map[graph.NodeID]float64)
		} else {
			clear(ls.wdist)
		}
		wdist = ls.wdist
	}
	res, st, err := ls.sess.SearchSeededLimited(req.Seeds, req.Attr, req.K, req.Radius, watch, wdist, lim)
	resp := SearchResp{Results: res, Stats: st}
	if len(wdist) > 0 {
		ls.watched = ls.watched[:0]
		for n, d := range wdist {
			ls.watched = append(ls.watched, WatchDist{Node: n, Dist: d})
		}
		resp.Watched = ls.watched
	}
	return resp, err
}

func (ls *localSearcher) Leg(ctx context.Context, req LegReq) (LegResp, error) {
	if ls.gs == nil {
		ls.gs = graph.NewSearch(ls.sh.F.Graph())
	}
	gs := ls.gs
	resp := LegResp{Dist: inf}

	targets := req.Targets
	var o graph.Object
	var le graph.Edge
	if req.Object >= 0 {
		var ok bool
		o, ok = ls.sh.F.Objects().Get(req.Object)
		if !ok {
			return resp, fmt.Errorf("shard %d: object %d: %w", ls.sh.ID, req.Object, apierr.ErrNoSuchObject)
		}
		le = ls.sh.F.Graph().Edge(o.Edge)
		targets = []graph.NodeID{le.U, le.V}
	}

	opt := graph.Options{Targets: targets}
	lim := core.Limits{Ctx: ctx, Budget: req.Budget}
	aborted := false
	if ctx != nil || req.Budget > 0 {
		settled := 0
		opt.OnSettle = func(graph.NodeID, float64) bool {
			settled++
			if err := lim.Stop(settled); err != nil {
				aborted = true
				return false
			}
			return true
		}
	}
	gs.RunSeeded(req.Seeds, opt)
	resp.Pops = gs.Visited
	if aborted {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return resp, fmt.Errorf("%w: %w", apierr.ErrCanceled, err)
			}
		}
		return resp, apierr.ErrBudgetExhausted
	}

	switch {
	case req.Object >= 0:
		if end, d := closerEnd(gs.Dist(le.U)+o.DU, gs.Dist(le.V)+o.DV, le); !isInf(d) {
			resp.Dist = d
			resp.Path = gs.Path(end)
		}
	case req.PathTo != graph.NoNode:
		if d := gs.Dist(req.PathTo); !isInf(d) {
			resp.Dist = d
			resp.Path = gs.Path(req.PathTo)
		}
	}
	if len(req.Targets) > 0 {
		resp.Dists = make([]float64, len(req.Targets))
		for i, t := range req.Targets {
			resp.Dists[i] = gs.Dist(t)
		}
	}
	return resp, nil
}

// closerEnd picks the object-edge endpoint through which the object is
// cheaper to reach. Ties and the degenerate single-endpoint case resolve
// toward U, matching the single-framework search's settling order.
func closerEnd(viaU, viaV float64, e graph.Edge) (graph.NodeID, float64) {
	if viaU <= viaV {
		return e.U, viaU
	}
	return e.V, viaV
}
