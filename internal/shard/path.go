package shard

import (
	"fmt"
	"math"

	"road/internal/apierr"
	"road/internal/core"
	"road/internal/graph"
	"road/internal/obs"
)

// gatewayPred records how a border was best reached during a
// predecessor-tracking gateway run: over which shard's border table, from
// which previous border (NoNode for seed borders, whose "previous hop" is
// the query node inside via).
type gatewayPred struct {
	prev graph.NodeID
	via  ID
}

// PathTo computes the detailed shortest route (as a global node sequence)
// from a global intersection to a global object, plus its network
// distance. Cross-shard routes are assembled from per-shard legs: the
// head leg inside the query's home shard, one leg per border-to-border
// gateway hop, and the tail leg inside the object's shard. Unlike
// road.DB.PathTo this does not require the shards to store shortcut
// waypoints: legs are recomputed with plain Dijkstra on the shard-local
// graphs, which are a fraction of the network each.
func (s *Session) PathTo(from graph.NodeID, gid graph.ObjectID) ([]graph.NodeID, float64, error) {
	path, dist, _, err := s.PathToLimited(from, gid, core.Limits{})
	return path, dist, err
}

// PathToLimited is PathTo under core.Limits, reporting traversal
// statistics: NodesPopped sums the nodes settled by every per-shard
// Dijkstra leg, and ShardsSearched counts the shard graphs those legs ran
// on — the same metrics a single-index path query reports, which the
// plain PathTo predates and drops.
//
// Locking: a route can thread any subset of shards (head leg, gateway
// hops, tail leg), so the whole query runs under the whole-router read
// view — mutations anywhere are excluded for its duration.
func (s *Session) PathToLimited(from graph.NodeID, gid graph.ObjectID, lim core.Limits) ([]graph.NodeID, float64, core.QueryStats, error) {
	s.r.rlockAll()
	defer s.r.runlockAll()
	return s.pathToLocked(from, gid, lim)
}

func (s *Session) pathToLocked(from graph.NodeID, gid graph.ObjectID, lim core.Limits) ([]graph.NodeID, float64, core.QueryStats, error) {
	var stats core.QueryStats
	target, err := s.r.OwnerOfObject(gid)
	if err != nil {
		return nil, 0, stats, err
	}
	lo := target.localObj[gid]
	o, _ := target.F.Objects().Get(lo)
	le := target.F.Graph().Edge(o.Edge)

	if int(from) < 0 || int(from) >= len(s.r.shardsOf) {
		return nil, 0, stats, fmt.Errorf("shard: node %d: %w", from, apierr.ErrNoSuchNode)
	}
	homes := s.r.shardsOf[from]
	if len(homes) == 0 {
		return nil, math.Inf(1), stats, fmt.Errorf("shard: object %d unreachable from node %d: %w", gid, from, apierr.ErrUnreachable)
	}

	bestDist := math.Inf(1)
	var bestPath []graph.NodeID

	// Direct candidate: from and the object share a shard.
	for _, h := range homes {
		if h != target.ID {
			continue
		}
		gs := s.search(h)
		lf := target.localNode[from]
		if err := s.runLeg(h, gs, &stats, lim, func(opt graph.Options) {
			gs.Run(lf, opt)
		}, graph.Options{Targets: []graph.NodeID{le.U, le.V}}); err != nil {
			return nil, 0, stats, err
		}
		if end, d := closerEnd(gs.Dist(le.U)+o.DU, gs.Dist(le.V)+o.DV, le); d < bestDist {
			bestDist = d
			bestPath = s.translatePath(target, gs.Path(end))
		}
	}

	// Border route: exact distances from the query node to its home
	// borders, a predecessor-tracking gateway run, then a multi-seed
	// Dijkstra inside the object's shard.
	clear(s.gdist)
	homeOf := make(map[graph.NodeID]ID) // seed border -> home shard it was reached through
	for _, h := range homes {
		sh := s.r.shards[h]
		if len(sh.borders) == 0 {
			continue
		}
		gs := s.search(h)
		targets := make([]graph.NodeID, len(sh.borders))
		for i, b := range sh.borders {
			targets[i] = sh.localNode[b]
		}
		if err := s.runLeg(h, gs, &stats, lim, func(opt graph.Options) {
			gs.Run(sh.localNode[from], opt)
		}, graph.Options{Targets: targets}); err != nil {
			return nil, 0, stats, err
		}
		for i, b := range sh.borders {
			if d := gs.Dist(targets[i]); !isInf(d) {
				if cur, ok := s.gdist[b]; !ok || d < cur {
					s.gdist[b] = d
					homeOf[b] = h
				}
			}
		}
	}
	if len(s.gdist) == 0 {
		if bestPath == nil {
			return nil, math.Inf(1), stats, fmt.Errorf("shard: object %d unreachable from node %d: %w", gid, from, apierr.ErrUnreachable)
		}
		return bestPath, bestDist, stats, nil
	}
	pred := make(map[graph.NodeID]gatewayPred, len(s.gdist))
	if err := s.gateway(bestDist, pred, lim); err != nil {
		stats.Truncated = true
		return nil, 0, stats, err
	}

	seeds := make([]graph.Seed, 0, len(target.borders))
	for _, b := range target.borders {
		if d, ok := s.gdist[b]; ok && d < bestDist {
			seeds = append(seeds, graph.Seed{Node: target.localNode[b], Dist: d})
		}
	}
	if len(seeds) > 0 {
		gs := s.search(target.ID)
		if err := s.runLeg(target.ID, gs, &stats, lim, func(opt graph.Options) {
			gs.RunSeeded(seeds, opt)
		}, graph.Options{Targets: []graph.NodeID{le.U, le.V}}); err != nil {
			return nil, 0, stats, err
		}
		if end, d := closerEnd(gs.Dist(le.U)+o.DU, gs.Dist(le.V)+o.DV, le); d < bestDist {
			// Tail leg first (the workspace is reused per leg below).
			tail := gs.Path(end)
			entry := tail[0] // local ID of the winning seed border
			route, err := s.assemble(target, entry, tail, pred, homeOf, from, &stats, lim)
			if err != nil {
				return nil, 0, stats, err
			}
			bestDist = d
			bestPath = route
		}
	}

	if bestPath == nil {
		return nil, math.Inf(1), stats, fmt.Errorf("shard: object %d unreachable from node %d: %w", gid, from, apierr.ErrUnreachable)
	}
	return bestPath, bestDist, stats, nil
}

// runLeg executes one per-shard Dijkstra leg (run receives the final
// options) with cooperative cancellation and records its cost: settled
// nodes into stats.NodesPopped, one more searched shard, the traversal
// budget shared with the rest of the query, and — when the query
// carries a trace — a timed "path_leg" record for shard sid.
func (s *Session) runLeg(sid ID, gs *graph.Search, stats *core.QueryStats, lim core.Limits, run func(graph.Options), opt graph.Options) error {
	done := obs.FromContext(lim.Ctx).StartLeg("path_leg", int(sid))
	aborted := false
	if lim.Ctx != nil || lim.Budget > 0 {
		settled := 0
		base := stats.NodesPopped
		opt.OnSettle = func(graph.NodeID, float64) bool {
			settled++
			if err := lim.Stop(base + settled); err != nil {
				aborted = true
				return false
			}
			return true
		}
	}
	run(opt)
	stats.NodesPopped += gs.Visited
	stats.ShardsSearched++
	done(gs.Visited)
	if aborted {
		stats.Truncated = true
		if lim.Ctx != nil {
			if err := lim.Ctx.Err(); err != nil {
				return fmt.Errorf("%w: %w", apierr.ErrCanceled, err)
			}
		}
		return apierr.ErrBudgetExhausted
	}
	return nil
}

// closerEnd picks the object-edge endpoint through which the object is
// cheaper to reach. Ties and the degenerate single-endpoint case resolve
// toward U, matching the single-framework search's settling order.
func closerEnd(viaU, viaV float64, e graph.Edge) (graph.NodeID, float64) {
	if viaU <= viaV {
		return e.U, viaU
	}
	return e.V, viaV
}

// assemble stitches the full global route: head leg (query node to the
// first border inside its home shard), one leg per gateway hop, then the
// already-computed tail leg inside the target shard.
func (s *Session) assemble(target *Shard, entryLocal graph.NodeID, tail []graph.NodeID, pred map[graph.NodeID]gatewayPred, homeOf map[graph.NodeID]ID, from graph.NodeID, stats *core.QueryStats, lim core.Limits) ([]graph.NodeID, error) {
	// Walk the gateway chain backward from the entry border to a seed.
	entry := target.globalNode[entryLocal]
	type hop struct {
		from, to graph.NodeID // global border IDs
		via      ID
	}
	var hops []hop
	cur := entry
	for {
		p, ok := pred[cur]
		if !ok {
			return nil, fmt.Errorf("shard: broken gateway chain at border %d", cur)
		}
		if p.prev == graph.NoNode {
			break
		}
		hops = append(hops, hop{from: p.prev, to: cur, via: p.via})
		cur = p.prev
	}
	// The walk collected hops target-to-source; reverse into travel order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}

	// Head leg: from -> first border, inside the home shard that supplied
	// the seed distance.
	first := cur
	home, ok := homeOf[first]
	if !ok {
		return nil, fmt.Errorf("shard: gateway seed %d has no home shard", first)
	}
	route, err := s.legPath(home, from, first, stats, lim)
	if err != nil {
		return nil, err
	}

	// Gateway legs.
	for _, hp := range hops {
		leg, err := s.legPath(hp.via, hp.from, hp.to, stats, lim)
		if err != nil {
			return nil, err
		}
		route = append(route, leg[1:]...) // drop duplicated junction
	}

	// Tail leg (local IDs, already computed).
	gtail := s.translatePath(target, tail)
	if len(route) > 0 && len(gtail) > 0 && route[len(route)-1] == gtail[0] {
		gtail = gtail[1:]
	}
	return append(route, gtail...), nil
}

// legPath recomputes the shortest within-shard path between two global
// nodes of shard sid and returns it in global IDs.
func (s *Session) legPath(sid ID, a, b graph.NodeID, stats *core.QueryStats, lim core.Limits) ([]graph.NodeID, error) {
	sh := s.r.shards[sid]
	la, okA := sh.localNode[a]
	lb, okB := sh.localNode[b]
	if !okA || !okB {
		return nil, fmt.Errorf("shard: leg %d->%d not inside shard %d", a, b, sid)
	}
	gs := s.search(sid)
	if err := s.runLeg(sid, gs, stats, lim, func(opt graph.Options) {
		gs.Run(la, opt)
	}, graph.Options{Targets: []graph.NodeID{lb}}); err != nil {
		return nil, err
	}
	path, d := gs.Path(lb), gs.Dist(lb)
	if isInf(d) {
		return nil, fmt.Errorf("shard: leg %d->%d no longer connected inside shard %d", a, b, sid)
	}
	return s.translatePath(sh, path), nil
}

// search returns the session's plain Dijkstra workspace for shard sid,
// creating it on first use.
func (s *Session) search(sid ID) *graph.Search {
	if s.gs[sid] == nil {
		s.gs[sid] = graph.NewSearch(s.r.shards[sid].F.Graph())
	}
	return s.gs[sid]
}

// translatePath converts a shard-local node sequence to global IDs.
func (s *Session) translatePath(sh *Shard, path []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(path))
	for i, n := range path {
		out[i] = sh.globalNode[n]
	}
	return out
}
