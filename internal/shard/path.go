package shard

import (
	"errors"
	"fmt"
	"math"

	"road/internal/apierr"
	"road/internal/core"
	"road/internal/graph"
	"road/internal/obs"
)

// gatewayPred records how a border was best reached during a
// predecessor-tracking gateway run: over which shard's border table, from
// which previous border (NoNode for seed borders, whose "previous hop" is
// the query node inside via).
type gatewayPred struct {
	prev graph.NodeID
	via  ID
}

// PathTo computes the detailed shortest route (as a global node sequence)
// from a global intersection to a global object, plus its network
// distance. Cross-shard routes are assembled from per-shard legs: the
// head leg inside the query's home shard, one leg per border-to-border
// gateway hop, and the tail leg inside the object's shard. Unlike
// road.DB.PathTo this does not require the shards to store shortcut
// waypoints: legs are recomputed with plain Dijkstra on the shard-local
// graphs, which are a fraction of the network each.
func (s *Session) PathTo(from graph.NodeID, gid graph.ObjectID) ([]graph.NodeID, float64, error) {
	path, dist, _, err := s.PathToLimited(from, gid, core.Limits{})
	return path, dist, err
}

// PathToLimited is PathTo under core.Limits, reporting traversal
// statistics: NodesPopped sums the nodes settled by every per-shard
// Dijkstra leg, and ShardsSearched counts the shard graphs those legs ran
// on — the same metrics a single-index path query reports, which the
// plain PathTo predates and drops.
//
// Locking: a route can thread any subset of shards (head leg, gateway
// hops, tail leg), so the whole query runs under the whole-router read
// view — mutations anywhere are excluded for its duration.
func (s *Session) PathToLimited(from graph.NodeID, gid graph.ObjectID, lim core.Limits) ([]graph.NodeID, float64, core.QueryStats, error) {
	s.r.rlockAll()
	defer s.r.runlockAll()
	return s.pathToLocked(from, gid, lim)
}

func (s *Session) pathToLocked(from graph.NodeID, gid graph.ObjectID, lim core.Limits) ([]graph.NodeID, float64, core.QueryStats, error) {
	var stats core.QueryStats
	target, err := s.r.OwnerOfObject(gid)
	if err != nil {
		return nil, 0, stats, err
	}
	lo := target.localObj[gid]

	if int(from) < 0 || int(from) >= len(s.r.shardsOf) {
		return nil, 0, stats, fmt.Errorf("shard: node %d: %w", from, apierr.ErrNoSuchNode)
	}
	homes := s.r.shardsOf[from]
	if len(homes) == 0 {
		return nil, math.Inf(1), stats, fmt.Errorf("shard: object %d unreachable from node %d: %w", gid, from, apierr.ErrUnreachable)
	}

	bestDist := math.Inf(1)
	var bestPath []graph.NodeID

	// Direct candidate: from and the object share a shard. The object's
	// edge endpoints are resolved shard-side (the mirror tracks object
	// identities, not payloads), and the returned distance includes the
	// along-edge offset.
	for _, h := range homes {
		if h != target.ID {
			continue
		}
		resp, err := s.legCall(h, LegReq{
			Seeds:  s.seed1(target.localNode[from]),
			PathTo: graph.NoNode,
			Object: lo,
		}, &stats, lim)
		if err != nil {
			return nil, 0, stats, err
		}
		if resp.Dist < bestDist {
			bestDist = resp.Dist
			bestPath = s.translatePath(target, resp.Path)
		}
	}

	// Border route: exact distances from the query node to its home
	// borders, a predecessor-tracking gateway run, then a multi-seed
	// Dijkstra inside the object's shard.
	clear(s.gdist)
	homeOf := make(map[graph.NodeID]ID) // seed border -> home shard it was reached through
	for _, h := range homes {
		sh := s.r.shards[h]
		if len(sh.borders) == 0 {
			continue
		}
		resp, err := s.legCall(h, LegReq{
			Seeds:   s.seed1(sh.localNode[from]),
			Targets: sh.borderTargets(),
			PathTo:  graph.NoNode,
			Object:  -1,
		}, &stats, lim)
		if err != nil {
			return nil, 0, stats, err
		}
		for i, b := range sh.borders {
			if d := resp.Dists[i]; !isInf(d) {
				if cur, ok := s.gdist[b]; !ok || d < cur {
					s.gdist[b] = d
					homeOf[b] = h
				}
			}
		}
	}
	if len(s.gdist) == 0 {
		if bestPath == nil {
			return nil, math.Inf(1), stats, fmt.Errorf("shard: object %d unreachable from node %d: %w", gid, from, apierr.ErrUnreachable)
		}
		return bestPath, bestDist, stats, nil
	}
	pred := make(map[graph.NodeID]gatewayPred, len(s.gdist))
	if err := s.gateway(bestDist, pred, lim); err != nil {
		stats.Truncated = true
		return nil, 0, stats, err
	}

	seeds := make([]core.Seed, 0, len(target.borders))
	for _, b := range target.borders {
		if d, ok := s.gdist[b]; ok && d < bestDist {
			seeds = append(seeds, core.Seed{Node: target.localNode[b], Dist: d})
		}
	}
	if len(seeds) > 0 {
		resp, err := s.legCall(target.ID, LegReq{
			Seeds:  seeds,
			PathTo: graph.NoNode,
			Object: lo,
		}, &stats, lim)
		if err != nil {
			return nil, 0, stats, err
		}
		if resp.Dist < bestDist {
			tail := resp.Path
			entry := tail[0] // local ID of the winning seed border
			route, err := s.assemble(target, entry, tail, pred, homeOf, from, &stats, lim)
			if err != nil {
				return nil, 0, stats, err
			}
			bestDist = resp.Dist
			bestPath = route
		}
	}

	if bestPath == nil {
		return nil, math.Inf(1), stats, fmt.Errorf("shard: object %d unreachable from node %d: %w", gid, from, apierr.ErrUnreachable)
	}
	return bestPath, bestDist, stats, nil
}

// legCall runs one per-shard Dijkstra leg through the shard's Searcher,
// passing down the remaining traversal budget and recording its cost:
// settled nodes into stats.NodesPopped, one more searched shard, and —
// when the query carries a trace — a timed "path_leg" record for the
// shard. Budget exhaustion and cancellation mark the stats truncated;
// other errors (a vanished object, an unreachable host) pass through
// untouched.
func (s *Session) legCall(sid ID, req LegReq, stats *core.QueryStats, lim core.Limits) (LegResp, error) {
	req.Budget = remainingBudget(lim, stats)
	done := obs.FromContext(lim.Ctx).StartLeg(obs.LegPathLeg, int(sid))
	resp, err := s.q[sid].Leg(lim.Ctx, req)
	stats.NodesPopped += resp.Pops
	stats.ShardsSearched++
	done(resp.Pops)
	if err != nil {
		if errors.Is(err, apierr.ErrBudgetExhausted) || errors.Is(err, apierr.ErrCanceled) {
			stats.Truncated = true
		}
		return resp, err
	}
	return resp, nil
}

// assemble stitches the full global route: head leg (query node to the
// first border inside its home shard), one leg per gateway hop, then the
// already-computed tail leg inside the target shard.
func (s *Session) assemble(target *Shard, entryLocal graph.NodeID, tail []graph.NodeID, pred map[graph.NodeID]gatewayPred, homeOf map[graph.NodeID]ID, from graph.NodeID, stats *core.QueryStats, lim core.Limits) ([]graph.NodeID, error) {
	// Walk the gateway chain backward from the entry border to a seed.
	entry := target.globalNode[entryLocal]
	type hop struct {
		from, to graph.NodeID // global border IDs
		via      ID
	}
	var hops []hop
	cur := entry
	for {
		p, ok := pred[cur]
		if !ok {
			return nil, fmt.Errorf("shard: broken gateway chain at border %d", cur)
		}
		if p.prev == graph.NoNode {
			break
		}
		hops = append(hops, hop{from: p.prev, to: cur, via: p.via})
		cur = p.prev
	}
	// The walk collected hops target-to-source; reverse into travel order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}

	// Head leg: from -> first border, inside the home shard that supplied
	// the seed distance.
	first := cur
	home, ok := homeOf[first]
	if !ok {
		return nil, fmt.Errorf("shard: gateway seed %d has no home shard", first)
	}
	route, err := s.legPath(home, from, first, stats, lim)
	if err != nil {
		return nil, err
	}

	// Gateway legs.
	for _, hp := range hops {
		leg, err := s.legPath(hp.via, hp.from, hp.to, stats, lim)
		if err != nil {
			return nil, err
		}
		route = append(route, leg[1:]...) // drop duplicated junction
	}

	// Tail leg (local IDs, already computed).
	gtail := s.translatePath(target, tail)
	if len(route) > 0 && len(gtail) > 0 && route[len(route)-1] == gtail[0] {
		gtail = gtail[1:]
	}
	return append(route, gtail...), nil
}

// legPath recomputes the shortest within-shard path between two global
// nodes of shard sid and returns it in global IDs.
func (s *Session) legPath(sid ID, a, b graph.NodeID, stats *core.QueryStats, lim core.Limits) ([]graph.NodeID, error) {
	sh := s.r.shards[sid]
	la, okA := sh.localNode[a]
	lb, okB := sh.localNode[b]
	if !okA || !okB {
		return nil, fmt.Errorf("shard: leg %d->%d not inside shard %d", a, b, sid)
	}
	resp, err := s.legCall(sid, LegReq{
		Seeds:  s.seed1(la),
		PathTo: lb,
		Object: -1,
	}, stats, lim)
	if err != nil {
		return nil, err
	}
	if isInf(resp.Dist) {
		return nil, fmt.Errorf("shard: leg %d->%d no longer connected inside shard %d", a, b, sid)
	}
	return s.translatePath(sh, resp.Path), nil
}

// translatePath converts a shard-local node sequence to global IDs.
func (s *Session) translatePath(sh *Shard, path []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(path))
	for i, n := range path {
		out[i] = sh.globalNode[n]
	}
	return out
}
