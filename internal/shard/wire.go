package shard

import (
	"road/internal/graph"
	"road/internal/snapshot"
)

// A RemoteShard is the router's handle onto one out-of-process shard: the
// mutation/maintenance surface that complements the per-session Searcher.
// The Shard struct it backs is a MIRROR — it keeps the identity maps,
// borders, border distance table and nearest-border array router-side
// (queries and op encoding read them constantly), and only compute
// crosses the process boundary. Implementations (internal/shard/remote)
// must return apierr-typed errors: op failures decoded from the host,
// transport failures wrapped in apierr.ErrShardUnavailable.
type RemoteShard interface {
	// NewSearcher returns a per-session query handle. Must be cheap (no
	// I/O): it is called under the shard's read lock.
	NewSearcher() Searcher
	// Apply ships one journal-encoded op to the host, which write-ahead
	// logs and applies it. The reply carries what the router's mirror
	// needs to stay exact.
	Apply(op snapshot.Op) (ApplyReply, error)
	// Object fetches one object by shard-local ID (for attribute checks
	// and read-backs; the mirror tracks identities, not object payloads).
	Object(lo graph.ObjectID) (graph.Object, bool, error)
	// Host names the host serving this shard (for traces and errors).
	Host() string
}

// ApplyReply is the host's answer to one applied op: the host-assigned
// local IDs and side effects the router's mirror must record, plus the
// derived-state repair recipe and the freshness header the router caches.
type ApplyReply struct {
	// LocalEdge is the host-assigned local edge ID (OpAddRoad).
	LocalEdge graph.EdgeID `json:"local_edge,omitempty"`
	// LocalObj is the host-assigned local object ID (OpInsertObject).
	LocalObj graph.ObjectID `json:"local_obj,omitempty"`
	// Doomed lists the GLOBAL IDs of objects dropped with a closed edge
	// (OpClose): the mirror has no object→edge association of its own.
	Doomed []graph.ObjectID `json:"doomed,omitempty"`
	// Derived repairs the mirror's btable/borderDist after a network
	// mutation; nil for object churn (and borderless shards).
	Derived *DerivedUpdate `json:"derived,omitempty"`

	Epoch        uint64 `json:"epoch"`
	Seq          uint64 `json:"seq"`
	IndexBytes   int64  `json:"index_bytes"`
	JournalBytes int64  `json:"journal_bytes"`
}

// DerivedUpdate kinds.
const (
	// DerivedDecrease ships the two endpoint-distance arrays of a weight
	// decrease: the mirror repairs every btable arc and borderDist entry
	// with the same exact arithmetic the host ran (§5.2 decrease case) —
	// no recomputation, and the host computed the arrays anyway.
	DerivedDecrease = "decrease"
	// DerivedRows ships recomputed border-table rows (weight increase:
	// only the filtered-stale rows; full refresh: all of them), plus the
	// whole nearest-border array when it was rebuilt.
	DerivedRows = "rows"
)

// DerivedUpdate is the wire form of one incremental border-table repair,
// mirroring maintain.go's filter-and-refresh outcomes. Distances may be
// +Inf (unreachable); the wire layer encodes +Inf as -1.
type DerivedUpdate struct {
	Kind string `json:"kind"`
	// W, DU, DV: the decrease recipe — new edge weight and the two
	// endpoint-distance arrays (indexed by local node).
	W  float64   `json:"w,omitempty"`
	DU []float64 `json:"du,omitempty"`
	DV []float64 `json:"dv,omitempty"`
	// Rows: recomputed border-table rows (global border IDs).
	Rows []BorderRow `json:"rows,omitempty"`
	// BorderDist, when non-nil, replaces the nearest-border array.
	BorderDist []float64 `json:"border_dist,omitempty"`
}

// BorderRow is one border's recomputed distance-table row.
type BorderRow struct {
	Border graph.NodeID `json:"border"`
	Arcs   []BorderArc  `json:"arcs"`
}

// applyDerivedUpdate repairs a mirror shard's derived routing state from
// the host's recipe. Must run while readers of this shard are excluded
// (the mutation path's write lock, like maintainDerived).
func (s *Shard) applyDerivedUpdate(u *DerivedUpdate) {
	if u == nil {
		return
	}
	switch u.Kind {
	case DerivedDecrease:
		s.applyDecrease(u.DU, u.DV, u.W)
	case DerivedRows:
		for _, row := range u.Rows {
			s.btable[row.Border] = row.Arcs
		}
		if u.BorderDist != nil {
			s.borderDist = u.BorderDist
		}
	}
}

// RemoteEpoch, RemoteSeq, RemoteJournalBytes expose the freshness header
// cached from the last ApplyReply / adopted state (mirror shards only).
func (s *Shard) RemoteSeq() uint64         { return s.rseq.Load() }
func (s *Shard) RemoteJournalBytes() int64 { return s.rjbytes.Load() }
