// Package shard splits one road network into K region shards along the
// same partition boundaries the ROAD Rnet hierarchy is built from, runs
// an independent core.Framework per shard, and routes queries across them.
//
// Each shard is a self-contained sub-network: the partitioner assigns
// every edge to exactly one shard, nodes incident to edges of two or more
// shards become border nodes shared by all of them (Definition 4 of the
// paper, applied one level above the in-shard hierarchy). A shard keeps a
// distance table between its own border nodes — the shard-level analogue
// of the paper's shortcuts — and the Router stitches those tables into a
// gateway graph that carries a search from the query's home shard into
// any shard that might still hold a closer object. A result set is final
// only when every unexplored shard's entry distance exceeds the current
// kth-best (or the range radius): the cross-shard merge bound.
//
// The subsystem is deliberately framework-per-shard rather than one big
// framework: every shard has its own epoch, its own snapshot, and its own
// write-ahead journal, which is the seam that later lets shards move
// out-of-process.
package shard

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"road/internal/core"
	"road/internal/graph"
)

// ID identifies a shard within a Router (dense, starting at 0).
type ID = int

// BorderArc is one entry of a shard's border distance table: the shortest
// within-shard distance from one border node to another. Arcs to borders
// unreachable inside the shard are simply absent.
type BorderArc struct {
	To   graph.NodeID // global ID of the destination border
	Dist float64
}

// Shard is one region of the network: a local graph (with its own dense
// node/edge IDs), an object set, and a full ROAD framework over them,
// plus the identity maps that translate between shard-local and global
// IDs.
type Shard struct {
	ID ID
	// F is the shard's framework — non-nil for in-process shards. A nil F
	// marks a MIRROR of an out-of-process shard: identity maps, borders,
	// btable and borderDist are kept here (queries and op encoding read
	// them constantly), while all compute goes through remote.
	F *core.Framework

	// remote is the out-of-process handle backing a mirror shard.
	remote RemoteShard
	// Freshness header cached from the host's last ApplyReply / adopted
	// state (mirror shards only; atomics — the read paths take no locks).
	repoch  atomic.Uint64
	rbytes  atomic.Int64
	rseq    atomic.Uint64
	rjbytes atomic.Int64

	// Identity maps. Node sets are fixed at build time (roads may be
	// added, but only between existing intersections); edge and object
	// sets grow.
	globalNode []graph.NodeID                // local node -> global node
	localNode  map[graph.NodeID]graph.NodeID // global node -> local node
	globalEdge []graph.EdgeID                // local edge -> global edge
	localEdge  map[graph.EdgeID]graph.EdgeID // global edge -> local edge
	// globalObj maps local object IDs (dense, never reused) to global
	// IDs; -1 marks deleted slots. A slice, not a map: it sits on the
	// per-result translation path of every query.
	globalObj []graph.ObjectID
	localObj  map[graph.ObjectID]graph.ObjectID // global object -> local object

	// borders lists the global IDs of this shard's border nodes (nodes
	// shared with at least one other shard), sorted ascending. The set is
	// static: border membership follows node presence, and nodes never
	// move between shards.
	borders []graph.NodeID

	// watch marks the borders (in local IDs) for the home-shard search;
	// rebuilt after topology mutations, which can move nodes between the
	// shard's internal Rnets.
	watch *core.WatchSet

	// btable holds, per border (global ID), the within-shard shortest
	// distances to the shard's other borders — the arcs of the Router's
	// gateway graph. Rebuilt after any network mutation in this shard.
	btable map[graph.NodeID][]BorderArc

	// borderDist[local node] is the within-shard distance to the shard's
	// nearest border (+Inf when no border is reachable). It is the fast
	// path's lower bound: a query whose kth result is closer than every
	// border cannot be improved by any other shard, proven with one array
	// lookup instead of a watched search.
	borderDist []float64

	// bsearch is the Dijkstra workspace btable rebuilds and incremental
	// refreshes run on. It is used only on the Router's mutation path
	// (single-threaded under the router's mutation lock, with this
	// shard's readers excluded by its write lock), never by query
	// sessions.
	bsearch *graph.Search

	// du, dv and rowScratch are the filter-and-refresh scratch buffers
	// (maintain.go): distances from the touched edge's endpoints, and
	// the row under reassembly. Same locking discipline as bsearch.
	du, dv     []float64
	rowScratch []BorderArc

	// fullRefresh disables filter-and-refresh: every network mutation
	// rebuilds the whole border table, as before the incremental path
	// existed. Kept as the roadbench -maintain baseline.
	fullRefresh bool

	// Load counters (read path, hence atomic): queries whose query node
	// lives in this shard, cross-shard expansions entering it, home
	// queries that escalated past the nearest-border fast path, and
	// mutations applied to it.
	homeQueries   atomic.Uint64
	remoteEntries atomic.Uint64
	escalations   atomic.Uint64
	mutations     atomic.Uint64
}

// GlobalNodes returns the shard's local-to-global node map (owned by the
// shard; callers must not mutate).
func (s *Shard) GlobalNodes() []graph.NodeID { return s.globalNode }

// GlobalEdges returns the shard's local-to-global edge map.
func (s *Shard) GlobalEdges() []graph.EdgeID { return s.globalEdge }

// Borders returns the global IDs of the shard's border nodes.
func (s *Shard) Borders() []graph.NodeID { return s.borders }

// LocalNode translates a global node ID, reporting whether the node is
// present in this shard.
func (s *Shard) LocalNode(g graph.NodeID) (graph.NodeID, bool) {
	l, ok := s.localNode[g]
	return l, ok
}

// IsRemote reports whether this Shard is a mirror of an out-of-process
// shard (compute lives on a host, reached through Remote()).
func (s *Shard) IsRemote() bool { return s.F == nil }

// Remote returns the out-of-process handle backing a mirror shard (nil
// for in-process shards).
func (s *Shard) Remote() RemoteShard { return s.remote }

// The accessors below paper over the local/mirror split for the router's
// aggregate surfaces (Epoch, Infos, sizes).

func (s *Shard) epoch() uint64 {
	if s.F != nil {
		return s.F.Epoch()
	}
	return s.repoch.Load()
}

func (s *Shard) indexSizeBytes() int64 {
	if s.F != nil {
		return s.F.IndexSizeBytes()
	}
	return s.rbytes.Load()
}

func (s *Shard) warmTrees() {
	if s.F != nil {
		s.F.WarmTrees()
	}
}

func (s *Shard) numNodes() int { return len(s.globalNode) }
func (s *Shard) numEdges() int { return len(s.globalEdge) }

func (s *Shard) numObjects() int {
	if s.F != nil {
		return s.F.Objects().Len()
	}
	return len(s.localObj)
}

// newSearcher returns the shard's per-session query handle: in-process
// compute, or the remote client's RPC-backed searcher.
func (s *Shard) newSearcher() Searcher {
	if s.F != nil {
		return s.newLocalSearcher()
	}
	return s.remote.NewSearcher()
}

// newShard assembles one shard from its slice of the global network.
// edges must be the shard's global edge IDs sorted ascending; objects is
// the global object set (only objects on the shard's edges are adopted).
func newShard(id ID, g *graph.Graph, objects *graph.ObjectSet, edges []graph.EdgeID, cfg core.Config) (*Shard, error) {
	s := &Shard{
		ID:        id,
		localNode: make(map[graph.NodeID]graph.NodeID),
		localEdge: make(map[graph.EdgeID]graph.EdgeID, len(edges)),
		localObj:  make(map[graph.ObjectID]graph.ObjectID),
	}

	// Collect the node set (sorted ascending so local IDs are stable and
	// deterministic), then materialize the local graph.
	nodeSet := make(map[graph.NodeID]bool)
	for _, e := range edges {
		ed := g.Edge(e)
		nodeSet[ed.U] = true
		nodeSet[ed.V] = true
	}
	s.globalNode = make([]graph.NodeID, 0, len(nodeSet))
	for n := range nodeSet {
		s.globalNode = append(s.globalNode, n)
	}
	sort.Slice(s.globalNode, func(i, j int) bool { return s.globalNode[i] < s.globalNode[j] })

	lg := graph.New(len(s.globalNode), len(edges))
	for li, gn := range s.globalNode {
		lg.AddNode(g.Coord(gn))
		s.localNode[gn] = graph.NodeID(li)
	}
	s.globalEdge = make([]graph.EdgeID, 0, len(edges))
	lset := graph.NewObjectSet(lg)
	for _, ge := range edges {
		ed := g.Edge(ge)
		le, err := lg.AddEdge(s.localNode[ed.U], s.localNode[ed.V], ed.Weight)
		if err != nil {
			return nil, fmt.Errorf("shard %d: adopting edge %d: %w", id, ge, err)
		}
		s.localEdge[ge] = le
		s.globalEdge = append(s.globalEdge, ge)
		for _, gid := range objects.OnEdge(ge) {
			o, _ := objects.Get(gid)
			lo, err := lset.Add(le, o.DU, o.Attr)
			if err != nil {
				return nil, fmt.Errorf("shard %d: adopting object %d: %w", id, gid, err)
			}
			s.setGlobalObj(lo.ID, gid)
			s.localObj[gid] = lo.ID
		}
	}

	f, err := core.Build(lg, lset, cfg)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	s.F = f
	s.bsearch = graph.NewSearch(lg)
	return s, nil
}

// setGlobalObj records the global identity of a local object, growing
// the dense translation table as needed.
func (s *Shard) setGlobalObj(lo, gid graph.ObjectID) {
	for int(lo) >= len(s.globalObj) {
		s.globalObj = append(s.globalObj, -1)
	}
	s.globalObj[lo] = gid
}

// setBorders installs the shard's border set (global IDs, sorted) and
// builds the derived watch set and border distance table.
func (s *Shard) setBorders(borders []graph.NodeID) {
	s.borders = borders
	s.refreshDerived(true)
}

// refreshDerived rebuilds the border distance table and per-node
// nearest-border distances — and, when topology changed, the watch set
// (Rnet membership of borders may have moved). Must run while readers
// are excluded: query sessions consult all three.
func (s *Shard) refreshDerived(topology bool) {
	if topology || s.watch == nil {
		local := make([]graph.NodeID, len(s.borders))
		for i, b := range s.borders {
			local[i] = s.localNode[b]
		}
		s.watch = s.F.NewWatchSet(local)
	}
	s.rebuildBTable()
	s.rebuildBorderDist()
}

// rebuildBorderDist recomputes every local node's distance to the
// shard's nearest border: one multi-source Dijkstra from all borders.
func (s *Shard) rebuildBorderDist() {
	n := s.F.Graph().NumNodes()
	if s.borderDist == nil {
		s.borderDist = make([]float64, n)
	}
	if len(s.borders) == 0 {
		for i := range s.borderDist {
			s.borderDist[i] = inf
		}
		return
	}
	seeds := make([]graph.Seed, len(s.borders))
	for i, b := range s.borders {
		seeds[i] = graph.Seed{Node: s.localNode[b]}
	}
	s.bsearch.RunSeeded(seeds, graph.Options{})
	for i := 0; i < n; i++ {
		s.borderDist[i] = s.bsearch.Dist(graph.NodeID(i))
	}
}

// rebuildBTable recomputes the within-shard shortest distances between
// every pair of the shard's border nodes by one Dijkstra per border over
// the shard's live local graph. The incremental path (maintain.go)
// instead refreshes only the rows a mutation could have changed.
func (s *Shard) rebuildBTable() {
	s.btable = make(map[graph.NodeID][]BorderArc, len(s.borders))
	if len(s.borders) < 2 {
		return
	}
	targets := s.borderTargets()
	for i := range s.borders {
		s.refreshBTableRow(i, targets)
	}
}

// refreshBTableRow recomputes border i's btable row with one Dijkstra
// from that border, target-pruned to targets (the shard's borders in
// local IDs, hoisted by the caller).
func (s *Shard) refreshBTableRow(i int, targets []graph.NodeID) {
	s.bsearch.Run(targets[i], graph.Options{Targets: targets})
	arcs := make([]BorderArc, 0, len(s.borders)-1)
	for j, to := range s.borders {
		if i == j {
			continue
		}
		if d := s.bsearch.Dist(targets[j]); !isInf(d) {
			arcs = append(arcs, BorderArc{To: to, Dist: d})
		}
	}
	s.btable[s.borders[i]] = arcs
}

// borderTargets returns the shard's borders in local IDs.
func (s *Shard) borderTargets() []graph.NodeID {
	targets := make([]graph.NodeID, len(s.borders))
	for i, b := range s.borders {
		targets[i] = s.localNode[b]
	}
	return targets
}

func isInf(d float64) bool { return d > maxFinite }

// maxFinite is a practical "unreachable" threshold: all real network
// distances are far below it, and +Inf compares above it.
const maxFinite = 1e300

var inf = math.Inf(1)
