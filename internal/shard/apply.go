package shard

import (
	"fmt"

	"road/internal/apierr"
	"road/internal/graph"
	"road/internal/snapshot"
)

// Mutation application is split along the process boundary:
//
//   - Shard.applyLocal is the shard-side half — framework mutation plus
//     the shard's own identity-map updates, in shard-local coordinates.
//     It runs in-process for local shards and ON THE HOST for remote
//     ones (via HostApply).
//   - Router.ApplyOp wraps it with the router-side half: the global
//     graph mirror, edge/object location tables, ID-sequence bookkeeping
//     and integrity checks — which stay router-side in both deployments.
//
// Op encoding is unchanged (see router.go): local coordinates with the
// otherwise-unused fields carrying global IDs.

// applyResult reports the shard-side effects ApplyOp's router half (or a
// host's ApplyReply) needs.
type applyResult struct {
	// network marks weight/topology changes: derived routing state stale.
	network bool
	chg     netChange
	// doomed lists global IDs of objects dropped with a closed edge.
	doomed []graph.ObjectID
	// le is the new local edge (OpAddRoad); lo the new local object
	// (OpInsertObject).
	le graph.EdgeID
	lo graph.ObjectID
}

// checkEdge validates a shard-local edge ID against the shard's edge
// space (identity maps, so it works on mirrors too).
func (s *Shard) checkEdge(le graph.EdgeID) error {
	if le < 0 || int(le) >= len(s.globalEdge) {
		return fmt.Errorf("shard %d: edge %d outside shard state (%d edges)", s.ID, le, len(s.globalEdge))
	}
	return nil
}

// applyLocal applies one journal-encoded op to a full local shard:
// framework mutation plus shard-side identity maps. Runs under the
// shard's write exclusion (router-side lock in-process, host-side lock
// on a shard host).
func (s *Shard) applyLocal(op snapshot.Op) (applyResult, error) {
	var res applyResult
	switch op.Kind {
	case snapshot.OpSetDistance:
		if err := s.checkEdge(op.Edge); err != nil {
			return res, err
		}
		ed := s.F.Graph().Edge(op.Edge)
		if _, err := s.F.SetEdgeWeight(op.Edge, op.Value); err != nil {
			return res, err
		}
		res.network = true
		res.chg = netChange{u: ed.U, v: ed.V, edge: op.Edge, wOld: ed.Weight, wNew: op.Value}

	case snapshot.OpClose:
		if err := s.checkEdge(op.Edge); err != nil {
			return res, err
		}
		ed := s.F.Graph().Edge(op.Edge)
		// The framework drops objects on the edge; drop their identities
		// alongside and report them (the router's location table, and a
		// remote mirror, must drop them too).
		doomedLocal := s.F.Objects().OnEdge(op.Edge)
		if _, err := s.F.DeleteEdge(op.Edge); err != nil {
			return res, err
		}
		for _, lo := range doomedLocal {
			gid := s.globalObj[lo]
			res.doomed = append(res.doomed, gid)
			delete(s.localObj, gid)
			s.globalObj[lo] = -1
		}
		res.network = true
		res.chg = netChange{u: ed.U, v: ed.V, edge: op.Edge, wOld: ed.Weight, wNew: inf, topology: true}

	case snapshot.OpReopen:
		if err := s.checkEdge(op.Edge); err != nil {
			return res, err
		}
		if _, err := s.F.RestoreEdge(op.Edge); err != nil {
			return res, err
		}
		ed := s.F.Graph().Edge(op.Edge)
		res.network = true
		res.chg = netChange{u: ed.U, v: ed.V, edge: op.Edge, wOld: inf, wNew: ed.Weight, topology: true}

	case snapshot.OpAddRoad:
		// op.Edge carries the GLOBAL ID the road was allocated; the shard
		// records the identity pairing and trusts the router (which
		// validates against its mirror) or the journal (validated when
		// first applied) for global uniqueness.
		le, _, err := s.F.AddEdge(op.U, op.V, op.Value)
		if err != nil {
			return res, err
		}
		s.localEdge[op.Edge] = le
		s.globalEdge = append(s.globalEdge, op.Edge)
		res.le = le
		res.network = true
		res.chg = netChange{u: op.U, v: op.V, edge: le, wOld: inf, wNew: op.Value, topology: true}

	case snapshot.OpInsertObject:
		if err := s.checkEdge(op.Edge); err != nil {
			return res, err
		}
		if _, dup := s.localObj[op.Object]; dup {
			return res, fmt.Errorf("%w: shard %d: global object %d already exists", ErrIntegrity, s.ID, op.Object)
		}
		o, err := s.F.InsertObject(op.Edge, op.Value, op.Attr)
		if err != nil {
			return res, err
		}
		s.setGlobalObj(o.ID, op.Object)
		s.localObj[op.Object] = o.ID
		res.lo = o.ID

	case snapshot.OpDeleteObject:
		lo, ok := s.localObj[op.Object]
		if !ok {
			return res, fmt.Errorf("shard %d: object %d: %w", s.ID, op.Object, apierr.ErrNoSuchObject)
		}
		if err := s.F.DeleteObject(lo); err != nil {
			return res, err
		}
		delete(s.localObj, op.Object)
		s.globalObj[lo] = -1

	case snapshot.OpSetObjectAttr:
		lo, ok := s.localObj[op.Object]
		if !ok {
			return res, fmt.Errorf("shard %d: object %d: %w", s.ID, op.Object, apierr.ErrNoSuchObject)
		}
		if err := s.F.UpdateObjectAttr(lo, op.Attr); err != nil {
			return res, err
		}

	default:
		return res, fmt.Errorf("shard %d: %w: %d", s.ID, snapshot.ErrUnknownOp, op.Kind)
	}
	return res, nil
}

// HostApply applies one op to a full local shard on behalf of a shard
// host: framework + identity maps + incremental derived-state repair +
// shortcut re-warm, emitting the mirror repair recipe the router needs.
// The caller holds the host-side write exclusion for this shard and has
// already write-ahead logged op; it fills the reply's Seq/JournalBytes.
func (s *Shard) HostApply(op snapshot.Op) (ApplyReply, error) {
	res, err := s.applyLocal(op)
	if err != nil {
		// Even a failed op can have invalidated shortcut trees (see
		// Router.Mutate); re-materialize before readers resume.
		s.F.WarmTrees()
		return ApplyReply{}, err
	}
	rep := ApplyReply{LocalEdge: res.le, LocalObj: res.lo, Doomed: res.doomed}
	if res.network {
		rep.Derived = s.maintainDerivedEmit(res.chg, true)
	}
	s.F.WarmTrees()
	rep.Epoch = s.F.Epoch()
	rep.IndexBytes = s.F.IndexSizeBytes()
	return rep, nil
}

// ReplayApply applies one journal entry during host boot, without
// per-op derived refresh; finish with RefreshDerived.
func (s *Shard) ReplayApply(op snapshot.Op) error {
	_, err := s.applyLocal(op)
	return err
}

// RefreshDerived rebuilds the shard's derived routing state and re-warms
// shortcut trees — the bulk counterpart of per-op maintenance, for after
// host-side journal replay.
func (s *Shard) RefreshDerived() {
	s.refreshDerived(true)
	s.F.WarmTrees()
}

// ApplyOp applies one journal-encoded mutation to shard id — in-process
// or, for a mirror shard, on its host — and updates the router's global
// bookkeeping. When refresh is false (bulk replay), the shard's derived
// state is NOT rebuilt; the caller must RefreshAll at the end.
func (r *Router) ApplyOp(id ID, op snapshot.Op, refresh bool) error {
	s := r.shards[id]
	// Router-side pre-check shared by both paths: global object-ID
	// uniqueness spans shards, which only the router can see.
	if op.Kind == snapshot.OpInsertObject {
		if _, dup := r.objLoc[op.Object]; dup {
			return fmt.Errorf("%w: shard %d: global object %d already exists", ErrIntegrity, id, op.Object)
		}
	}

	var res applyResult
	if s.F != nil {
		var err error
		res, err = s.applyLocal(op)
		if err != nil {
			return err
		}
	} else {
		// Mirror-side validations mirror applyLocal's cheap ones, so a
		// bad request never crosses the wire.
		switch op.Kind {
		case snapshot.OpSetDistance, snapshot.OpClose, snapshot.OpReopen, snapshot.OpInsertObject:
			if err := s.checkEdge(op.Edge); err != nil {
				return err
			}
		case snapshot.OpDeleteObject, snapshot.OpSetObjectAttr:
			if _, ok := s.localObj[op.Object]; !ok {
				return fmt.Errorf("shard %d: object %d: %w", id, op.Object, apierr.ErrNoSuchObject)
			}
		}
		rep, err := s.remote.Apply(op)
		if err != nil {
			return err
		}
		res = applyResult{doomed: rep.Doomed, le: rep.LocalEdge, lo: rep.LocalObj}
		// Mirror the shard-side identity updates applyLocal performed on
		// the host.
		switch op.Kind {
		case snapshot.OpClose:
			for _, gid := range rep.Doomed {
				if lo, ok := s.localObj[gid]; ok {
					s.globalObj[lo] = -1
				}
				delete(s.localObj, gid)
			}
		case snapshot.OpAddRoad:
			s.localEdge[op.Edge] = rep.LocalEdge
			s.globalEdge = append(s.globalEdge, op.Edge)
		case snapshot.OpInsertObject:
			s.setGlobalObj(rep.LocalObj, op.Object)
			s.localObj[op.Object] = rep.LocalObj
		case snapshot.OpDeleteObject:
			if lo, ok := s.localObj[op.Object]; ok {
				s.globalObj[lo] = -1
			}
			delete(s.localObj, op.Object)
		}
		if refresh {
			s.applyDerivedUpdate(rep.Derived)
		}
		s.repoch.Store(rep.Epoch)
		s.rbytes.Store(rep.IndexBytes)
		s.rseq.Store(rep.Seq)
		s.rjbytes.Store(rep.JournalBytes)
	}

	// Router-side global bookkeeping, identical for both paths.
	switch op.Kind {
	case snapshot.OpSetDistance:
		r.mutateMeta(func() { r.g.SetWeight(s.globalEdge[op.Edge], op.Value) })

	case snapshot.OpClose:
		r.mutateMeta(func() {
			for _, gid := range res.doomed {
				delete(r.objLoc, gid)
			}
			r.g.RemoveEdge(s.globalEdge[op.Edge])
		})

	case snapshot.OpReopen:
		r.mutateMeta(func() { r.g.RestoreEdge(s.globalEdge[op.Edge]) })

	case snapshot.OpAddRoad:
		var ge graph.EdgeID
		var addErr error
		r.mutateMeta(func() {
			ge, addErr = r.g.AddEdge(s.globalNode[op.U], s.globalNode[op.V], op.Value)
			if addErr == nil && ge == op.Edge {
				r.edgeShard = append(r.edgeShard, id)
			}
		})
		if addErr != nil {
			return fmt.Errorf("%w: shard %d: global mirror rejected road: %v", ErrIntegrity, id, addErr)
		}
		if ge != op.Edge {
			return fmt.Errorf("%w: shard %d: replayed road got global edge %d, journal says %d", ErrIntegrity, id, ge, op.Edge)
		}

	case snapshot.OpInsertObject:
		r.mutateMeta(func() {
			r.objLoc[op.Object] = id
			if op.Object >= r.nextObj {
				r.nextObj = op.Object + 1
			}
		})

	case snapshot.OpDeleteObject:
		r.mutateMeta(func() { delete(r.objLoc, op.Object) })
	}

	if refresh && s.F != nil {
		// Object churn leaves the routing state intact: border tables and
		// nearest-border distances depend only on the network, so only
		// network mutations pay a derived-state refresh — and that refresh
		// is incremental (maintain.go): filter the border arcs whose
		// shortest path could have crossed the touched edge, recompute
		// only those.
		if res.network {
			s.maintainDerived(res.chg)
		}
		s.F.WarmTrees()
	}
	return nil
}
