package shard

import (
	"fmt"
	"sort"
	"sync"

	"road/internal/core"
	"road/internal/geom"
	"road/internal/graph"
)

// ManifestVersion is the current sharded-deployment manifest format.
const ManifestVersion = 1

// Manifest is the global-identity side of a sharded deployment's
// persistent state. Each shard's framework is persisted as an ordinary
// snapshot in shard-LOCAL coordinates; the manifest records how local
// IDs map back to the one global namespace clients speak, so a reopened
// router answers with the same node, edge and object IDs it served
// before the restart. Derived routing state (borders, border distance
// tables, watch sets) is deliberately absent: it is recomputed from the
// loaded shards, which cannot drift from a stale copy.
type Manifest struct {
	Version  int   `json:"version"`
	Shards   int   `json:"shards"`
	Seed     int64 `json:"seed"`
	NumNodes int   `json:"num_nodes"`
	NumEdges int   `json:"num_edges"`

	// NextObj continues the global object ID sequence, including gaps
	// left by deletions.
	NextObj graph.ObjectID `json:"next_obj"`

	// Isolated preserves the coordinates of global nodes that belong to
	// no shard (intersections without roads): no shard snapshot carries
	// them, and the global mirror must still allocate their IDs.
	Isolated []IsolatedNode `json:"isolated,omitempty"`

	PerShard []ShardManifest `json:"per_shard"`
}

// IsolatedNode is a shard-less global node.
type IsolatedNode struct {
	ID graph.NodeID `json:"id"`
	X  float64      `json:"x"`
	Y  float64      `json:"y"`
}

// ShardManifest maps one shard's local ID spaces to the global ones.
type ShardManifest struct {
	GlobalNode []graph.NodeID `json:"global_node"` // local node -> global
	GlobalEdge []graph.EdgeID `json:"global_edge"` // local edge -> global
	// Objects pairs (local ID, global ID), sorted by local ID.
	Objects [][2]graph.ObjectID `json:"objects"`
}

// Manifest exports the router's global-identity state. Call it under the
// same exclusion as a snapshot save, so the two are consistent.
func (r *Router) Manifest() *Manifest {
	m := &Manifest{
		Version:  ManifestVersion,
		Shards:   len(r.shards),
		Seed:     r.seed,
		NumNodes: r.g.NumNodes(),
		NumEdges: r.g.NumEdges(),
		NextObj:  r.nextObj,
	}
	for n := 0; n < r.g.NumNodes(); n++ {
		if len(r.shardsOf[n]) == 0 {
			p := r.g.Coord(graph.NodeID(n))
			m.Isolated = append(m.Isolated, IsolatedNode{ID: graph.NodeID(n), X: p.X, Y: p.Y})
		}
	}
	for _, s := range r.shards {
		sm := ShardManifest{
			GlobalNode: append([]graph.NodeID(nil), s.globalNode...),
			GlobalEdge: append([]graph.EdgeID(nil), s.globalEdge...),
		}
		for gid, lo := range s.localObj {
			sm.Objects = append(sm.Objects, [2]graph.ObjectID{lo, gid})
		}
		sort.Slice(sm.Objects, func(i, j int) bool { return sm.Objects[i][0] < sm.Objects[j][0] })
		m.PerShard = append(m.PerShard, sm)
	}
	return m
}

// Reassemble reconstructs a Router from per-shard frameworks (loaded
// from their snapshots) and the manifest saved alongside them. Derived
// routing state is recomputed; the caller replays any per-shard journals
// afterwards via ApplyOp and finishes with RefreshAll.
func Reassemble(frameworks []*core.Framework, m *Manifest) (*Router, error) {
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d not supported (this build reads %d)", m.Version, ManifestVersion)
	}
	if len(frameworks) != m.Shards || len(m.PerShard) != m.Shards {
		return nil, fmt.Errorf("shard: manifest names %d shards, got %d frameworks and %d shard manifests",
			m.Shards, len(frameworks), len(m.PerShard))
	}

	// Rebuild the global mirror: coordinates from the shards (plus the
	// isolated list), then every edge at its exact global ID.
	coords := make([]geom.Point, m.NumNodes)
	seen := make([]bool, m.NumNodes)
	for i, f := range frameworks {
		sm := &m.PerShard[i]
		lg := f.Graph()
		if len(sm.GlobalNode) != lg.NumNodes() {
			return nil, fmt.Errorf("shard %d: manifest maps %d nodes, snapshot has %d", i, len(sm.GlobalNode), lg.NumNodes())
		}
		if len(sm.GlobalEdge) != lg.NumEdges() {
			return nil, fmt.Errorf("shard %d: manifest maps %d edges, snapshot has %d", i, len(sm.GlobalEdge), lg.NumEdges())
		}
		for li, gn := range sm.GlobalNode {
			if int(gn) < 0 || int(gn) >= m.NumNodes {
				return nil, fmt.Errorf("shard %d: global node %d out of range", i, gn)
			}
			coords[gn] = lg.Coord(graph.NodeID(li))
			seen[gn] = true
		}
	}
	for _, iso := range m.Isolated {
		if int(iso.ID) < 0 || int(iso.ID) >= m.NumNodes {
			return nil, fmt.Errorf("shard: isolated node %d out of range", iso.ID)
		}
		coords[iso.ID] = geom.Point{X: iso.X, Y: iso.Y}
		seen[iso.ID] = true
	}
	for n, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("shard: global node %d appears in no shard and is not listed as isolated", n)
		}
	}

	type edgeRec struct {
		shard   ID
		local   graph.EdgeID
		u, v    graph.NodeID // global
		weight  float64
		removed bool
	}
	edges := make([]edgeRec, m.NumEdges)
	seenE := make([]bool, m.NumEdges)
	for i, f := range frameworks {
		sm := &m.PerShard[i]
		lg := f.Graph()
		for li, ge := range sm.GlobalEdge {
			if int(ge) < 0 || int(ge) >= m.NumEdges {
				return nil, fmt.Errorf("shard %d: global edge %d out of range", i, ge)
			}
			if seenE[ge] {
				return nil, fmt.Errorf("shard %d: global edge %d claimed twice", i, ge)
			}
			seenE[ge] = true
			ed := lg.Edge(graph.EdgeID(li))
			edges[ge] = edgeRec{
				shard:   i,
				local:   graph.EdgeID(li),
				u:       sm.GlobalNode[ed.U],
				v:       sm.GlobalNode[ed.V],
				weight:  ed.Weight,
				removed: ed.Removed,
			}
		}
	}
	for e, ok := range seenE {
		if !ok {
			return nil, fmt.Errorf("shard: global edge %d owned by no shard", e)
		}
	}

	g := graph.New(m.NumNodes, m.NumEdges)
	for _, p := range coords {
		g.AddNode(p)
	}
	for ge, rec := range edges {
		id, err := g.AddEdge(rec.u, rec.v, rec.weight)
		if err != nil {
			return nil, fmt.Errorf("shard: rebuilding global edge %d: %w", ge, err)
		}
		if int(id) != ge {
			return nil, fmt.Errorf("shard: global edge %d rebuilt as %d", ge, id)
		}
		if rec.removed {
			g.RemoveEdge(id)
		}
	}

	r := &Router{
		g:         g,
		shards:    make([]*Shard, m.Shards),
		shardMu:   make([]sync.RWMutex, m.Shards),
		edgeShard: make([]ID, m.NumEdges),
		objLoc:    make(map[graph.ObjectID]ID),
		nextObj:   m.NextObj,
		seed:      m.Seed,
		klPasses:  -1,
	}
	for ge, rec := range edges {
		r.edgeShard[ge] = rec.shard
	}
	for i, f := range frameworks {
		sm := &m.PerShard[i]
		s := &Shard{
			ID:         i,
			F:          f,
			globalNode: append([]graph.NodeID(nil), sm.GlobalNode...),
			localNode:  make(map[graph.NodeID]graph.NodeID, len(sm.GlobalNode)),
			globalEdge: append([]graph.EdgeID(nil), sm.GlobalEdge...),
			localEdge:  make(map[graph.EdgeID]graph.EdgeID, len(sm.GlobalEdge)),
			localObj:   make(map[graph.ObjectID]graph.ObjectID, len(sm.Objects)),
		}
		for li, gn := range sm.GlobalNode {
			s.localNode[gn] = graph.NodeID(li)
		}
		for li, ge := range sm.GlobalEdge {
			s.localEdge[ge] = graph.EdgeID(li)
		}
		if f.Objects().Len() != len(sm.Objects) {
			return nil, fmt.Errorf("shard %d: manifest maps %d objects, snapshot has %d", i, len(sm.Objects), f.Objects().Len())
		}
		for _, pair := range sm.Objects {
			lo, gid := pair[0], pair[1]
			if _, ok := f.Objects().Get(lo); !ok {
				return nil, fmt.Errorf("shard %d: manifest object %d (global %d) missing from snapshot", i, lo, gid)
			}
			if _, dup := r.objLoc[gid]; dup {
				return nil, fmt.Errorf("shard %d: global object %d claimed twice in manifest", i, gid)
			}
			s.setGlobalObj(lo, gid)
			s.localObj[gid] = lo
			r.objLoc[gid] = i
			if gid >= r.nextObj {
				r.nextObj = gid + 1
			}
		}
		s.bsearch = graph.NewSearch(f.Graph())
		r.shards[i] = s
	}
	r.wireTopology()
	return r, nil
}
