package shard

import (
	"fmt"
	"sort"
	"sync"

	"road/internal/core"
	"road/internal/geom"
	"road/internal/graph"
)

// ManifestVersion is the current sharded-deployment manifest format.
const ManifestVersion = 1

// Manifest is the global-identity side of a sharded deployment's
// persistent state. Each shard's framework is persisted as an ordinary
// snapshot in shard-LOCAL coordinates; the manifest records how local
// IDs map back to the one global namespace clients speak, so a reopened
// router answers with the same node, edge and object IDs it served
// before the restart. Derived routing state (borders, border distance
// tables, watch sets) is deliberately absent: it is recomputed from the
// loaded shards, which cannot drift from a stale copy.
type Manifest struct {
	Version  int   `json:"version"`
	Shards   int   `json:"shards"`
	Seed     int64 `json:"seed"`
	NumNodes int   `json:"num_nodes"`
	NumEdges int   `json:"num_edges"`

	// NextObj continues the global object ID sequence, including gaps
	// left by deletions.
	NextObj graph.ObjectID `json:"next_obj"`

	// Isolated preserves the coordinates of global nodes that belong to
	// no shard (intersections without roads): no shard snapshot carries
	// them, and the global mirror must still allocate their IDs.
	Isolated []IsolatedNode `json:"isolated,omitempty"`

	PerShard []ShardManifest `json:"per_shard"`
}

// IsolatedNode is a shard-less global node.
type IsolatedNode struct {
	ID graph.NodeID `json:"id"`
	X  float64      `json:"x"`
	Y  float64      `json:"y"`
}

// ShardManifest maps one shard's local ID spaces to the global ones.
type ShardManifest struct {
	GlobalNode []graph.NodeID `json:"global_node"` // local node -> global
	GlobalEdge []graph.EdgeID `json:"global_edge"` // local edge -> global
	// Objects pairs (local ID, global ID), sorted by local ID.
	Objects [][2]graph.ObjectID `json:"objects"`
}

// Manifest exports the router's global-identity state. Call it under the
// same exclusion as a snapshot save, so the two are consistent.
func (r *Router) Manifest() *Manifest {
	m := &Manifest{
		Version:  ManifestVersion,
		Shards:   len(r.shards),
		Seed:     r.seed,
		NumNodes: r.g.NumNodes(),
		NumEdges: r.g.NumEdges(),
		NextObj:  r.nextObj,
	}
	for n := 0; n < r.g.NumNodes(); n++ {
		if len(r.shardsOf[n]) == 0 {
			p := r.g.Coord(graph.NodeID(n))
			m.Isolated = append(m.Isolated, IsolatedNode{ID: graph.NodeID(n), X: p.X, Y: p.Y})
		}
	}
	for _, s := range r.shards {
		sm := ShardManifest{
			GlobalNode: append([]graph.NodeID(nil), s.globalNode...),
			GlobalEdge: append([]graph.EdgeID(nil), s.globalEdge...),
		}
		for gid, lo := range s.localObj {
			sm.Objects = append(sm.Objects, [2]graph.ObjectID{lo, gid})
		}
		sort.Slice(sm.Objects, func(i, j int) bool { return sm.Objects[i][0] < sm.Objects[j][0] })
		m.PerShard = append(m.PerShard, sm)
	}
	return m
}

// Reassemble reconstructs a Router from per-shard frameworks (loaded
// from their snapshots) and the manifest saved alongside them. Derived
// routing state is recomputed; the caller replays any per-shard journals
// afterwards via ApplyOp and finishes with RefreshAll.
func Reassemble(frameworks []*core.Framework, m *Manifest) (*Router, error) {
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d not supported (this build reads %d)", m.Version, ManifestVersion)
	}
	if len(frameworks) != m.Shards || len(m.PerShard) != m.Shards {
		return nil, fmt.Errorf("shard: manifest names %d shards, got %d frameworks and %d shard manifests",
			m.Shards, len(frameworks), len(m.PerShard))
	}

	// Rebuild the global mirror: coordinates from the shards (plus the
	// isolated list), then every edge at its exact global ID.
	coords := make([]geom.Point, m.NumNodes)
	seen := make([]bool, m.NumNodes)
	for i, f := range frameworks {
		sm := &m.PerShard[i]
		lg := f.Graph()
		if len(sm.GlobalNode) != lg.NumNodes() {
			return nil, fmt.Errorf("shard %d: manifest maps %d nodes, snapshot has %d", i, len(sm.GlobalNode), lg.NumNodes())
		}
		if len(sm.GlobalEdge) != lg.NumEdges() {
			return nil, fmt.Errorf("shard %d: manifest maps %d edges, snapshot has %d", i, len(sm.GlobalEdge), lg.NumEdges())
		}
		for li, gn := range sm.GlobalNode {
			if int(gn) < 0 || int(gn) >= m.NumNodes {
				return nil, fmt.Errorf("shard %d: global node %d out of range", i, gn)
			}
			coords[gn] = lg.Coord(graph.NodeID(li))
			seen[gn] = true
		}
	}
	for _, iso := range m.Isolated {
		if int(iso.ID) < 0 || int(iso.ID) >= m.NumNodes {
			return nil, fmt.Errorf("shard: isolated node %d out of range", iso.ID)
		}
		coords[iso.ID] = geom.Point{X: iso.X, Y: iso.Y}
		seen[iso.ID] = true
	}
	for n, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("shard: global node %d appears in no shard and is not listed as isolated", n)
		}
	}

	type edgeRec struct {
		shard   ID
		local   graph.EdgeID
		u, v    graph.NodeID // global
		weight  float64
		removed bool
	}
	edges := make([]edgeRec, m.NumEdges)
	seenE := make([]bool, m.NumEdges)
	for i, f := range frameworks {
		sm := &m.PerShard[i]
		lg := f.Graph()
		for li, ge := range sm.GlobalEdge {
			if int(ge) < 0 || int(ge) >= m.NumEdges {
				return nil, fmt.Errorf("shard %d: global edge %d out of range", i, ge)
			}
			if seenE[ge] {
				return nil, fmt.Errorf("shard %d: global edge %d claimed twice", i, ge)
			}
			seenE[ge] = true
			ed := lg.Edge(graph.EdgeID(li))
			edges[ge] = edgeRec{
				shard:   i,
				local:   graph.EdgeID(li),
				u:       sm.GlobalNode[ed.U],
				v:       sm.GlobalNode[ed.V],
				weight:  ed.Weight,
				removed: ed.Removed,
			}
		}
	}
	for e, ok := range seenE {
		if !ok {
			return nil, fmt.Errorf("shard: global edge %d owned by no shard", e)
		}
	}

	g := graph.New(m.NumNodes, m.NumEdges)
	for _, p := range coords {
		g.AddNode(p)
	}
	for ge, rec := range edges {
		id, err := g.AddEdge(rec.u, rec.v, rec.weight)
		if err != nil {
			return nil, fmt.Errorf("shard: rebuilding global edge %d: %w", ge, err)
		}
		if int(id) != ge {
			return nil, fmt.Errorf("shard: global edge %d rebuilt as %d", ge, id)
		}
		if rec.removed {
			g.RemoveEdge(id)
		}
	}

	r := &Router{
		g:         g,
		shards:    make([]*Shard, m.Shards),
		shardMu:   make([]sync.RWMutex, m.Shards),
		edgeShard: make([]ID, m.NumEdges),
		objLoc:    make(map[graph.ObjectID]ID),
		nextObj:   m.NextObj,
		seed:      m.Seed,
		klPasses:  -1,
	}
	for ge, rec := range edges {
		r.edgeShard[ge] = rec.shard
	}
	for i, f := range frameworks {
		sm := &m.PerShard[i]
		s := &Shard{
			ID:         i,
			F:          f,
			globalNode: append([]graph.NodeID(nil), sm.GlobalNode...),
			localNode:  make(map[graph.NodeID]graph.NodeID, len(sm.GlobalNode)),
			globalEdge: append([]graph.EdgeID(nil), sm.GlobalEdge...),
			localEdge:  make(map[graph.EdgeID]graph.EdgeID, len(sm.GlobalEdge)),
			localObj:   make(map[graph.ObjectID]graph.ObjectID, len(sm.Objects)),
		}
		for li, gn := range sm.GlobalNode {
			s.localNode[gn] = graph.NodeID(li)
		}
		for li, ge := range sm.GlobalEdge {
			s.localEdge[ge] = graph.EdgeID(li)
		}
		if f.Objects().Len() != len(sm.Objects) {
			return nil, fmt.Errorf("shard %d: manifest maps %d objects, snapshot has %d", i, len(sm.Objects), f.Objects().Len())
		}
		for _, pair := range sm.Objects {
			lo, gid := pair[0], pair[1]
			if _, ok := f.Objects().Get(lo); !ok {
				return nil, fmt.Errorf("shard %d: manifest object %d (global %d) missing from snapshot", i, lo, gid)
			}
			if _, dup := r.objLoc[gid]; dup {
				return nil, fmt.Errorf("shard %d: global object %d claimed twice in manifest", i, gid)
			}
			s.setGlobalObj(lo, gid)
			s.localObj[gid] = lo
			r.objLoc[gid] = i
			if gid >= r.nextObj {
				r.nextObj = gid + 1
			}
		}
		s.bsearch = graph.NewSearch(f.Graph())
		r.shards[i] = s
	}
	r.wireTopology()
	return r, nil
}

// --- Out-of-process deployments ---
//
// A shard host owns a subset of the shards: it loads the SAME manifest
// the router wrote (the global header and every shard's static node list
// — needed to derive borders), its shards' snapshots, per-shard identity
// sidecars (the growing edge/object maps, which go stale in the
// manifest), and its shards' journals. The router, instead of loading
// frameworks, adopts each remote shard's exported ShardState into a
// mirror Shard: identity maps plus derived routing state, no framework.

// ShardState is one shard's complete identity and derived routing state
// as exported by its host — everything a router needs to build (or
// re-adopt) the shard's mirror. Distances may be +Inf; the wire layer
// (internal/shard/remote) encodes +Inf as -1.
type ShardState struct {
	ID ID `json:"id"`
	// Deployment header, copied from the host's manifest so the router
	// can cross-check that host and router serve the same deployment.
	Shards   int            `json:"shards"`
	Seed     int64          `json:"seed"`
	NumNodes int            `json:"num_nodes"` // global node count
	NextObj  graph.ObjectID `json:"next_obj"`  // manifest floor; adoption bumps past live objects
	Isolated []IsolatedNode `json:"isolated,omitempty"`

	// Identity maps and local topology (the mirror's inputs).
	GlobalNode []graph.NodeID      `json:"global_node"`
	GlobalEdge []graph.EdgeID      `json:"global_edge"`
	Coords     [][2]float64        `json:"coords"` // per local node
	Edges      []StateEdge         `json:"edges"`  // per local edge
	Objects    [][2]graph.ObjectID `json:"objects"`

	// Derived routing state (adopted verbatim: the host maintains it).
	Borders    []graph.NodeID               `json:"borders"`
	BTable     map[graph.NodeID][]BorderArc `json:"btable"`
	BorderDist []float64                    `json:"border_dist"`

	// Freshness header: the shard's maintenance epoch, its journal
	// sequence/size, the snapshot fingerprint, and the index size.
	Epoch        uint64 `json:"epoch"`
	Seq          uint64 `json:"seq"`
	Fingerprint  string `json:"fingerprint,omitempty"`
	IndexBytes   int64  `json:"index_bytes"`
	JournalBytes int64  `json:"journal_bytes"`
}

// StateEdge is one shard-local edge in an exported ShardState.
type StateEdge struct {
	U       graph.NodeID `json:"u"`
	V       graph.NodeID `json:"v"`
	W       float64      `json:"w"`
	Removed bool         `json:"removed,omitempty"`
}

// ExportState exports a full local shard's identity and derived state
// for router adoption. The caller (a shard host) holds the shard's read
// exclusion and fills the deployment and journal header fields.
func (s *Shard) ExportState() *ShardState {
	lg := s.F.Graph()
	st := &ShardState{
		ID:         s.ID,
		GlobalNode: append([]graph.NodeID(nil), s.globalNode...),
		GlobalEdge: append([]graph.EdgeID(nil), s.globalEdge...),
		Borders:    append([]graph.NodeID(nil), s.borders...),
		BorderDist: append([]float64(nil), s.borderDist...),
		BTable:     make(map[graph.NodeID][]BorderArc, len(s.btable)),
		Epoch:      s.F.Epoch(),
		IndexBytes: s.F.IndexSizeBytes(),
	}
	st.Coords = make([][2]float64, lg.NumNodes())
	for i := range st.Coords {
		p := lg.Coord(graph.NodeID(i))
		st.Coords[i] = [2]float64{p.X, p.Y}
	}
	st.Edges = make([]StateEdge, lg.NumEdges())
	for i := range st.Edges {
		ed := lg.Edge(graph.EdgeID(i))
		st.Edges[i] = StateEdge{U: ed.U, V: ed.V, W: ed.Weight, Removed: ed.Removed}
	}
	for gid, lo := range s.localObj {
		st.Objects = append(st.Objects, [2]graph.ObjectID{lo, gid})
	}
	sort.Slice(st.Objects, func(i, j int) bool { return st.Objects[i][0] < st.Objects[j][0] })
	for b, arcs := range s.btable {
		st.BTable[b] = append([]BorderArc(nil), arcs...)
	}
	return st
}

// IdentityManifest exports the shard's live identity maps in the
// manifest's per-shard form — the sidecar a shard host persists next to
// each snapshot, because the deployment manifest's edge and object maps
// go stale as the host applies journaled mutations (its node map never
// does). The caller holds the shard's read exclusion.
func (s *Shard) IdentityManifest() *ShardManifest {
	sm := &ShardManifest{
		GlobalNode: append([]graph.NodeID(nil), s.globalNode...),
		GlobalEdge: append([]graph.EdgeID(nil), s.globalEdge...),
	}
	for gid, lo := range s.localObj {
		sm.Objects = append(sm.Objects, [2]graph.ObjectID{lo, gid})
	}
	sort.Slice(sm.Objects, func(i, j int) bool { return sm.Objects[i][0] < sm.Objects[j][0] })
	return sm
}

// manifestBorders derives every shard's border set from the manifest's
// static per-shard node lists: a node is a border of each shard it
// appears in when it appears in more than one. Node sets never change,
// so the manifest stays authoritative for borders across any number of
// journal replays.
func manifestBorders(m *Manifest) map[graph.NodeID]int {
	count := make(map[graph.NodeID]int)
	for i := range m.PerShard {
		for _, gn := range m.PerShard[i].GlobalNode {
			count[gn]++
		}
	}
	return count
}

// AssembleHostShards reconstructs full local Shards for the subset of a
// deployment a host owns: frameworks loaded from their snapshots keyed
// by shard ID, identity maps from the per-shard sidecars (which, unlike
// the manifest, track post-snapshot edge/object growth), and borders
// derived from the manifest's static node lists. Derived routing state
// is NOT built here — the host replays journals first (ReplayApply) and
// then calls RefreshDerived per shard.
func AssembleHostShards(m *Manifest, frameworks map[ID]*core.Framework, idents map[ID]*ShardManifest) (map[ID]*Shard, error) {
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("shard: manifest version %d not supported (this build reads %d)", m.Version, ManifestVersion)
	}
	if len(m.PerShard) != m.Shards {
		return nil, fmt.Errorf("shard: manifest names %d shards but lists %d", m.Shards, len(m.PerShard))
	}
	count := manifestBorders(m)
	out := make(map[ID]*Shard, len(frameworks))
	for id, f := range frameworks {
		if id < 0 || id >= m.Shards {
			return nil, fmt.Errorf("shard: host owns shard %d outside deployment of %d", id, m.Shards)
		}
		sm := idents[id]
		if sm == nil {
			sm = &m.PerShard[id]
		}
		lg := f.Graph()
		if len(sm.GlobalNode) != lg.NumNodes() {
			return nil, fmt.Errorf("shard %d: identity maps %d nodes, snapshot has %d", id, len(sm.GlobalNode), lg.NumNodes())
		}
		if len(sm.GlobalEdge) != lg.NumEdges() {
			return nil, fmt.Errorf("shard %d: identity maps %d edges, snapshot has %d", id, len(sm.GlobalEdge), lg.NumEdges())
		}
		// The node set is static: the sidecar and manifest must agree on it.
		for li, gn := range m.PerShard[id].GlobalNode {
			if sm.GlobalNode[li] != gn {
				return nil, fmt.Errorf("shard %d: identity node map diverges from manifest at local %d (%d vs %d)", id, li, sm.GlobalNode[li], gn)
			}
		}
		s := &Shard{
			ID:         id,
			F:          f,
			globalNode: append([]graph.NodeID(nil), sm.GlobalNode...),
			localNode:  make(map[graph.NodeID]graph.NodeID, len(sm.GlobalNode)),
			globalEdge: append([]graph.EdgeID(nil), sm.GlobalEdge...),
			localEdge:  make(map[graph.EdgeID]graph.EdgeID, len(sm.GlobalEdge)),
			localObj:   make(map[graph.ObjectID]graph.ObjectID, len(sm.Objects)),
		}
		for li, gn := range sm.GlobalNode {
			s.localNode[gn] = graph.NodeID(li)
			if count[gn] > 1 {
				s.borders = append(s.borders, gn) // ascending: globalNode is sorted
			}
		}
		for li, ge := range sm.GlobalEdge {
			s.localEdge[ge] = graph.EdgeID(li)
		}
		if f.Objects().Len() != len(sm.Objects) {
			return nil, fmt.Errorf("shard %d: identity maps %d objects, snapshot has %d", id, len(sm.Objects), f.Objects().Len())
		}
		for _, pair := range sm.Objects {
			lo, gid := pair[0], pair[1]
			if _, ok := f.Objects().Get(lo); !ok {
				return nil, fmt.Errorf("shard %d: identity object %d (global %d) missing from snapshot", id, lo, gid)
			}
			s.setGlobalObj(lo, gid)
			s.localObj[gid] = lo
		}
		s.bsearch = graph.NewSearch(lg)
		out[id] = s
	}
	return out, nil
}

// AssembleRemote builds a Router whose shards are all mirrors of
// out-of-process shards: states are the hosts' exported ShardStates
// (indexed by shard ID) and remotes the matching RemoteShard handles.
// The global graph mirror is rebuilt from the states' local topology the
// same way Reassemble rebuilds it from snapshots, and each mirror adopts
// its state's identity maps and derived routing state verbatim.
func AssembleRemote(states []*ShardState, remotes []RemoteShard) (*Router, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("shard: no shard states to assemble")
	}
	if len(remotes) != len(states) {
		return nil, fmt.Errorf("shard: %d states but %d remote handles", len(states), len(remotes))
	}
	head := states[0]
	if head.Shards != len(states) {
		return nil, fmt.Errorf("shard: deployment names %d shards, got %d states", head.Shards, len(states))
	}
	numEdges := 0
	for i, st := range states {
		if st.ID != i {
			return nil, fmt.Errorf("shard: state %d carries ID %d", i, st.ID)
		}
		if st.Shards != head.Shards || st.Seed != head.Seed || st.NumNodes != head.NumNodes {
			return nil, fmt.Errorf("%w: shard %d disagrees on the deployment header (shards/seed/nodes %d/%d/%d vs %d/%d/%d)",
				ErrIntegrity, i, st.Shards, st.Seed, st.NumNodes, head.Shards, head.Seed, head.NumNodes)
		}
		if len(st.GlobalNode) != len(st.Coords) {
			return nil, fmt.Errorf("shard %d: %d nodes but %d coordinates", i, len(st.GlobalNode), len(st.Coords))
		}
		if len(st.GlobalEdge) != len(st.Edges) {
			return nil, fmt.Errorf("shard %d: %d edge IDs but %d edges", i, len(st.GlobalEdge), len(st.Edges))
		}
		numEdges += len(st.GlobalEdge)
	}

	// Rebuild the global mirror (same validation pattern as Reassemble).
	coords := make([]geom.Point, head.NumNodes)
	seen := make([]bool, head.NumNodes)
	for i, st := range states {
		for li, gn := range st.GlobalNode {
			if int(gn) < 0 || int(gn) >= head.NumNodes {
				return nil, fmt.Errorf("shard %d: global node %d out of range", i, gn)
			}
			coords[gn] = geom.Point{X: st.Coords[li][0], Y: st.Coords[li][1]}
			seen[gn] = true
		}
	}
	for _, iso := range head.Isolated {
		if int(iso.ID) < 0 || int(iso.ID) >= head.NumNodes {
			return nil, fmt.Errorf("shard: isolated node %d out of range", iso.ID)
		}
		coords[iso.ID] = geom.Point{X: iso.X, Y: iso.Y}
		seen[iso.ID] = true
	}
	for n, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("shard: global node %d appears in no shard and is not listed as isolated", n)
		}
	}

	type edgeRec struct {
		shard   ID
		u, v    graph.NodeID // global
		weight  float64
		removed bool
	}
	edges := make([]edgeRec, numEdges)
	seenE := make([]bool, numEdges)
	for i, st := range states {
		for li, ge := range st.GlobalEdge {
			if int(ge) < 0 || int(ge) >= numEdges {
				return nil, fmt.Errorf("shard %d: global edge %d out of range", i, ge)
			}
			if seenE[ge] {
				return nil, fmt.Errorf("shard %d: global edge %d claimed twice", i, ge)
			}
			seenE[ge] = true
			se := st.Edges[li]
			edges[ge] = edgeRec{
				shard:   i,
				u:       st.GlobalNode[se.U],
				v:       st.GlobalNode[se.V],
				weight:  se.W,
				removed: se.Removed,
			}
		}
	}
	for e, ok := range seenE {
		if !ok {
			return nil, fmt.Errorf("shard: global edge %d owned by no shard", e)
		}
	}

	g := graph.New(head.NumNodes, numEdges)
	for _, p := range coords {
		g.AddNode(p)
	}
	for ge, rec := range edges {
		id, err := g.AddEdge(rec.u, rec.v, rec.weight)
		if err != nil {
			return nil, fmt.Errorf("shard: rebuilding global edge %d: %w", ge, err)
		}
		if int(id) != ge {
			return nil, fmt.Errorf("shard: global edge %d rebuilt as %d", ge, id)
		}
		if rec.removed {
			g.RemoveEdge(id)
		}
	}

	r := &Router{
		g:         g,
		shards:    make([]*Shard, len(states)),
		shardMu:   make([]sync.RWMutex, len(states)),
		edgeShard: make([]ID, numEdges),
		objLoc:    make(map[graph.ObjectID]ID),
		nextObj:   head.NextObj,
		seed:      head.Seed,
		klPasses:  -1,
	}
	for ge, rec := range edges {
		r.edgeShard[ge] = rec.shard
	}
	for i, st := range states {
		s := &Shard{
			ID:         i,
			remote:     remotes[i],
			globalNode: append([]graph.NodeID(nil), st.GlobalNode...),
			localNode:  make(map[graph.NodeID]graph.NodeID, len(st.GlobalNode)),
			globalEdge: append([]graph.EdgeID(nil), st.GlobalEdge...),
			localEdge:  make(map[graph.EdgeID]graph.EdgeID, len(st.GlobalEdge)),
			localObj:   make(map[graph.ObjectID]graph.ObjectID, len(st.Objects)),
		}
		for li, gn := range st.GlobalNode {
			s.localNode[gn] = graph.NodeID(li)
		}
		for li, ge := range st.GlobalEdge {
			s.localEdge[ge] = graph.EdgeID(li)
		}
		for _, pair := range st.Objects {
			lo, gid := pair[0], pair[1]
			if owner, dup := r.objLoc[gid]; dup {
				return nil, fmt.Errorf("%w: global object %d claimed by shards %d and %d", ErrIntegrity, gid, owner, i)
			}
			s.setGlobalObj(lo, gid)
			s.localObj[gid] = lo
			r.objLoc[gid] = i
			if gid >= r.nextObj {
				r.nextObj = gid + 1
			}
		}
		if err := s.adoptDerived(st); err != nil {
			return nil, err
		}
		r.shards[i] = s
	}
	r.computeShardsOf()
	// The hosts' border sets must match what the node lists imply: a
	// mismatch means host and router disagree on the partition itself.
	for _, s := range r.shards {
		var want []graph.NodeID
		for _, gn := range s.globalNode {
			if len(r.shardsOf[gn]) > 1 {
				want = append(want, gn)
			}
		}
		if len(want) != len(s.borders) {
			return nil, fmt.Errorf("%w: shard %d reports %d borders, topology implies %d", ErrIntegrity, s.ID, len(s.borders), len(want))
		}
		for i := range want {
			if want[i] != s.borders[i] {
				return nil, fmt.Errorf("%w: shard %d border set diverges at %d (%d vs %d)", ErrIntegrity, s.ID, i, s.borders[i], want[i])
			}
		}
	}
	return r, nil
}

// adoptDerived installs an exported state's derived routing state and
// freshness header into a mirror shard.
func (s *Shard) adoptDerived(st *ShardState) error {
	if len(st.BorderDist) != len(st.GlobalNode) {
		return fmt.Errorf("shard %d: border-distance array covers %d nodes, shard has %d", s.ID, len(st.BorderDist), len(st.GlobalNode))
	}
	s.borders = append([]graph.NodeID(nil), st.Borders...)
	s.borderDist = append([]float64(nil), st.BorderDist...)
	s.btable = make(map[graph.NodeID][]BorderArc, len(st.BTable))
	for b, arcs := range st.BTable {
		s.btable[b] = append([]BorderArc(nil), arcs...)
	}
	s.repoch.Store(st.Epoch)
	s.rbytes.Store(st.IndexBytes)
	s.rseq.Store(st.Seq)
	s.rjbytes.Store(st.JournalBytes)
	return nil
}

// Readopt reconciles a mirror shard with a recovered host's exported
// state: the host may have applied mutations whose acknowledgements the
// router never saw (it journals before replying), so the host's state is
// allowed to be AHEAD of the mirror — never behind, and never divergent.
// Runs under Router.Exclusive.
func (r *Router) Readopt(id ID, st *ShardState) error {
	s := r.shards[id]
	if s.F != nil {
		return fmt.Errorf("shard %d: readopt of an in-process shard", id)
	}
	if st.Seq < s.rseq.Load() {
		return fmt.Errorf("%w: shard %d host came back at journal seq %d, router has acked %d (stale snapshot?)",
			ErrIntegrity, id, st.Seq, s.rseq.Load())
	}
	// The node set is fixed for the deployment's lifetime.
	if len(st.GlobalNode) != len(s.globalNode) {
		return fmt.Errorf("%w: shard %d host reports %d nodes, mirror has %d", ErrIntegrity, id, len(st.GlobalNode), len(s.globalNode))
	}
	for i := range st.GlobalNode {
		if st.GlobalNode[i] != s.globalNode[i] {
			return fmt.Errorf("%w: shard %d node map diverges at local %d", ErrIntegrity, id, i)
		}
	}
	if len(st.Borders) != len(s.borders) {
		return fmt.Errorf("%w: shard %d host reports %d borders, mirror has %d", ErrIntegrity, id, len(st.Borders), len(s.borders))
	}
	for i := range st.Borders {
		if st.Borders[i] != s.borders[i] {
			return fmt.Errorf("%w: shard %d border set diverges at %d", ErrIntegrity, id, i)
		}
	}
	// Edges: the mirror's map must be a prefix of the host's (lost-ack
	// AddRoads can only append). New global edges are grafted onto the
	// global mirror; an ID the router has meanwhile handed to another
	// shard is fatal.
	if len(st.GlobalEdge) < len(s.globalEdge) {
		return fmt.Errorf("%w: shard %d host reports %d edges, mirror has %d", ErrIntegrity, id, len(st.GlobalEdge), len(s.globalEdge))
	}
	if len(st.Edges) != len(st.GlobalEdge) {
		return fmt.Errorf("shard %d: %d edge IDs but %d edges", id, len(st.GlobalEdge), len(st.Edges))
	}
	for li := range s.globalEdge {
		if st.GlobalEdge[li] != s.globalEdge[li] {
			return fmt.Errorf("%w: shard %d edge map diverges at local %d", ErrIntegrity, id, li)
		}
	}
	var err error
	r.mutateMeta(func() {
		for li := len(s.globalEdge); li < len(st.GlobalEdge); li++ {
			ge := st.GlobalEdge[li]
			se := st.Edges[li]
			if int(ge) != r.g.NumEdges() {
				err = fmt.Errorf("%w: shard %d lost-ack road landed on global edge %d, router is at %d",
					ErrIntegrity, id, ge, r.g.NumEdges())
				return
			}
			got, addErr := r.g.AddEdge(s.globalNode[se.U], s.globalNode[se.V], se.W)
			if addErr != nil {
				err = fmt.Errorf("%w: shard %d grafting lost-ack edge %d: %v", ErrIntegrity, id, ge, addErr)
				return
			}
			if got != ge {
				err = fmt.Errorf("%w: shard %d lost-ack edge %d grafted as %d", ErrIntegrity, id, ge, got)
				return
			}
			s.localEdge[ge] = graph.EdgeID(li)
			s.globalEdge = append(s.globalEdge, ge)
			r.edgeShard = append(r.edgeShard, id)
		}
		// Re-sync every edge's weight and open/closed state: ops the
		// router acked are already reflected, lost-ack ones are not.
		for li, ge := range s.globalEdge {
			se := st.Edges[li]
			med := r.g.Edge(ge)
			if med.Removed != se.Removed {
				if se.Removed {
					r.g.RemoveEdge(ge)
				} else {
					r.g.RestoreEdge(ge)
				}
			}
			if !se.Removed && med.Weight != se.W {
				r.g.SetWeight(ge, se.W)
			}
		}
		// Objects: rebuild the mirror's maps from the host's live set,
		// dropping mirror entries the host no longer has and adopting
		// lost-ack inserts (checking cross-shard uniqueness).
		for gid := range s.localObj {
			delete(r.objLoc, gid)
		}
		s.localObj = make(map[graph.ObjectID]graph.ObjectID, len(st.Objects))
		s.globalObj = s.globalObj[:0]
		for _, pair := range st.Objects {
			lo, gid := pair[0], pair[1]
			if owner, dup := r.objLoc[gid]; dup {
				err = fmt.Errorf("%w: shard %d host holds global object %d owned by shard %d", ErrIntegrity, id, gid, owner)
				return
			}
			s.setGlobalObj(lo, gid)
			s.localObj[gid] = lo
			r.objLoc[gid] = id
			if gid >= r.nextObj {
				r.nextObj = gid + 1
			}
		}
	})
	if err != nil {
		return err
	}
	return s.adoptDerived(st)
}
