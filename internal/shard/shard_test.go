package shard

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"road/internal/core"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/snapshot"
)

// buildPair generates a random network with objects and returns a
// monolithic framework plus a router over the same data (each on its own
// graph copy, so they cannot alias).
func buildPair(t *testing.T, seed int64, nodes, objects, shards int) (*core.Framework, *Router, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := dataset.MustGenerate(dataset.Spec{
		Name:  "equiv",
		Nodes: nodes,
		Edges: nodes + rng.Intn(nodes/2+1),
		Seed:  seed,
	})
	set := dataset.PlaceUniform(g, objects, seed, 0, 1, 2, 3)

	gMono := g.Clone()
	setMono := set.Clone(gMono)
	mono, err := core.Build(gMono, setMono, core.Config{BufferPages: -1})
	if err != nil {
		t.Fatalf("mono build: %v", err)
	}

	r, err := Build(g, set, Options{Shards: shards, Seed: seed, Core: core.Config{BufferPages: -1}})
	if err != nil {
		t.Fatalf("router build: %v", err)
	}
	return mono, r, g
}

// sameResults compares two result lists as distance-sorted multisets,
// tolerating floating-point drift from differently-associated distance
// sums and arbitrary tie order at equal distances.
func sameResults(t *testing.T, label string, want, got []core.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d results, want %d\n got:  %v\nwant: %v", label, len(got), len(want), ids(got), ids(want))
	}
	const eps = 1e-9
	for i := range want {
		if math.Abs(want[i].Dist-got[i].Dist) > eps*math.Max(1, want[i].Dist) {
			t.Fatalf("%s: result %d dist %g != %g", label, i, got[i].Dist, want[i].Dist)
		}
	}
	// Same object sets within each distance-tie group.
	wantIDs := make(map[graph.ObjectID]bool, len(want))
	gotIDs := make(map[graph.ObjectID]bool, len(got))
	for i := range want {
		wantIDs[want[i].Object.ID] = true
		gotIDs[got[i].Object.ID] = true
	}
	for id := range wantIDs {
		if !gotIDs[id] {
			// Only acceptable when the missing object ties with the last
			// returned distance (kNN boundary ties pick arbitrarily).
			last := want[len(want)-1].Dist
			var d float64 = -1
			for i := range want {
				if want[i].Object.ID == id {
					d = want[i].Dist
				}
			}
			if math.Abs(d-last) > eps*math.Max(1, last) {
				t.Fatalf("%s: object %d (dist %g) missing from sharded results %v", label, id, d, ids(got))
			}
		}
	}
}

func ids(res []core.Result) []graph.ObjectID {
	out := make([]graph.ObjectID, len(res))
	for i, r := range res {
		out[i] = r.Object.ID
	}
	return out
}

// queryNodes picks a node sample that always includes border nodes, so
// cross-shard behaviour is exercised every run.
func queryNodes(r *Router, rng *rand.Rand, n int) []graph.NodeID {
	var out []graph.NodeID
	for _, s := range r.shards {
		out = append(out, s.borders...)
		if len(out) >= n {
			break
		}
	}
	for len(out) < 2*n {
		out = append(out, graph.NodeID(rng.Intn(r.g.NumNodes())))
	}
	return out
}

func TestBuildPartitionInvariants(t *testing.T) {
	_, r, g := buildPair(t, 7, 300, 60, 4)
	owned := 0
	for _, s := range r.shards {
		owned += len(s.globalEdge)
	}
	if owned != g.NumEdges() {
		t.Fatalf("shards own %d edges, network has %d", owned, g.NumEdges())
	}
	for e := 0; e < g.NumEdges(); e++ {
		sid := r.edgeShard[e]
		if sid < 0 {
			t.Fatalf("edge %d owned by no shard", e)
		}
		s := r.shards[sid]
		le := s.localEdge[graph.EdgeID(e)]
		if s.globalEdge[le] != graph.EdgeID(e) {
			t.Fatalf("edge %d round-trips to %d", e, s.globalEdge[le])
		}
		led := s.F.Graph().Edge(le)
		ged := g.Edge(graph.EdgeID(e))
		if s.globalNode[led.U] != ged.U && s.globalNode[led.U] != ged.V {
			t.Fatalf("edge %d endpoints do not round-trip", e)
		}
		if led.Weight != ged.Weight {
			t.Fatalf("edge %d weight %g != %g", e, led.Weight, ged.Weight)
		}
	}
	// A border must be present in every shard that claims it, and every
	// multi-shard node must be a border.
	for n := 0; n < g.NumNodes(); n++ {
		if len(r.shardsOf[n]) > 1 {
			for _, sid := range r.shardsOf[n] {
				found := false
				for _, b := range r.shards[sid].borders {
					if b == graph.NodeID(n) {
						found = true
					}
				}
				if !found {
					t.Fatalf("node %d in %d shards but missing from shard %d borders", n, len(r.shardsOf[n]), sid)
				}
			}
		}
	}
}

func TestBorderTableExact(t *testing.T) {
	_, r, g := buildPair(t, 11, 250, 40, 4)
	gs := graph.NewSearch(g)
	checked := 0
	for _, s := range r.shards {
		for from, arcs := range s.btable {
			for _, arc := range arcs {
				// The table distance must be a realizable global walk...
				want := gs.ShortestDist(from, arc.To)
				if arc.Dist < want-1e-9 {
					t.Fatalf("shard %d: btable %d->%d = %g below global shortest %g", s.ID, from, arc.To, arc.Dist, want)
				}
				checked++
				if checked > 200 {
					return
				}
			}
		}
	}
}

func TestRandomizedEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 42} {
		mono, r, _ := buildPair(t, seed, 300, 50, 4)
		rng := rand.New(rand.NewSource(seed * 31))
		rs := r.NewSession()
		diam := r.g.EstimateDiameter()

		for _, n := range queryNodes(r, rng, 25) {
			for _, k := range []int{1, 3, 8} {
				attr := int32(rng.Intn(3)) // 0 = any
				want, _ := mono.KNN(core.Query{Node: n, Attr: attr}, k)
				got, _ := rs.KNN(n, k, attr)
				sameResults(t, "knn", want, got)
			}
			radius := diam * (0.02 + rng.Float64()*0.15)
			want, _ := mono.Range(core.Query{Node: n}, radius)
			got, _ := rs.Within(n, radius, 0)
			sameResults(t, "within", want, got)
		}
	}
}

func TestPathToEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := dataset.MustGenerate(dataset.Spec{Name: "path", Nodes: 260, Edges: 340, Seed: 5})
	set := dataset.PlaceUniform(g, 40, 5, 0, 1)

	gMono := g.Clone()
	setMono := set.Clone(gMono)
	mono, err := core.Build(gMono, setMono, core.Config{BufferPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	_ = mono
	r, err := Build(g, set, Options{Shards: 4, Seed: 5, Core: core.Config{BufferPages: -1}})
	if err != nil {
		t.Fatal(err)
	}
	rs := r.NewSession()
	gs := graph.NewSearch(g)

	objs := set.All()
	for i := 0; i < 60; i++ {
		n := graph.NodeID(rng.Intn(g.NumNodes()))
		o := objs[rng.Intn(len(objs))]
		path, dist, err := rs.PathTo(n, o.ID)
		// Oracle distance via plain global Dijkstra.
		e := g.Edge(o.Edge)
		gs.Run(n, graph.Options{Targets: []graph.NodeID{e.U, e.V}})
		want := math.Min(gs.Dist(e.U)+o.DU, gs.Dist(e.V)+o.DV)
		if math.IsInf(want, 1) {
			if err == nil {
				t.Fatalf("PathTo(%d,%d) found a path to an unreachable object", n, o.ID)
			}
			continue
		}
		if err != nil {
			t.Fatalf("PathTo(%d,%d): %v", n, o.ID, err)
		}
		if math.Abs(dist-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("PathTo(%d,%d) dist %g, oracle %g", n, o.ID, dist, want)
		}
		validatePath(t, g, path, o, dist)
	}
}

// validatePath checks the returned route is a real walk in the global
// network whose length (plus the final object offset) equals dist.
func validatePath(t *testing.T, g *graph.Graph, path []graph.NodeID, o graph.Object, dist float64) {
	t.Helper()
	if len(path) == 0 {
		t.Fatalf("empty path")
	}
	e := g.Edge(o.Edge)
	last := path[len(path)-1]
	var offset float64
	switch last {
	case e.U:
		offset = o.DU
	case e.V:
		offset = o.DV
	default:
		t.Fatalf("path ends at node %d, not an endpoint of object edge %d", last, o.Edge)
	}
	var sum float64
	for i := 1; i < len(path); i++ {
		eid := g.EdgeBetween(path[i-1], path[i])
		if eid == graph.NoEdge {
			t.Fatalf("path hop %d->%d has no live edge", path[i-1], path[i])
		}
		sum += g.Weight(eid)
	}
	if math.Abs(sum+offset-dist) > 1e-6*math.Max(1, dist) {
		t.Fatalf("path length %g + offset %g != dist %g", sum, offset, dist)
	}
}

// TestMutationEquivalence applies the same maintenance stream to the
// monolithic framework and the router (via the journal-op entry point)
// and re-checks query equivalence, exercising border-table refresh.
func TestMutationEquivalence(t *testing.T) {
	mono, r, _ := buildPair(t, 9, 280, 45, 4)
	rng := rand.New(rand.NewSource(99))

	for i := 0; i < 25; i++ {
		ge := graph.EdgeID(rng.Intn(r.g.NumEdges()))
		s, err := r.OwnerOfEdge(ge)
		if err != nil {
			t.Fatal(err)
		}
		le := s.localEdge[ge]
		switch rng.Intn(3) {
		case 0: // re-weight
			w := 0.2 + rng.Float64()*3
			if _, err := mono.SetEdgeWeight(ge, w); err != nil {
				t.Fatal(err)
			}
			if err := r.ApplyOp(s.ID, opSetDistance(le, w), true); err != nil {
				t.Fatal(err)
			}
		case 1: // close (skip if already removed)
			if r.g.Edge(ge).Removed {
				continue
			}
			if _, err := mono.DeleteEdge(ge); err != nil {
				t.Fatal(err)
			}
			if err := r.ApplyOp(s.ID, opClose(le), true); err != nil {
				t.Fatal(err)
			}
		case 2: // reopen
			if !r.g.Edge(ge).Removed {
				continue
			}
			_, errM := mono.RestoreEdge(ge)
			errR := r.ApplyOp(s.ID, opReopen(le), true)
			if (errM == nil) != (errR == nil) {
				t.Fatalf("restore divergence: mono=%v router=%v", errM, errR)
			}
		}
	}

	rs := r.NewSession()
	diam := r.g.EstimateDiameter()
	for _, n := range queryNodes(r, rng, 20) {
		want, _ := mono.KNN(core.Query{Node: n}, 5)
		got, _ := rs.KNN(n, 5, 0)
		sameResults(t, "knn after mutations", want, got)
		radius := diam * 0.1
		wantW, _ := mono.Range(core.Query{Node: n}, radius)
		gotW, _ := rs.Within(n, radius, 0)
		sameResults(t, "within after mutations", wantW, gotW)
	}
}

func opSetDistance(le graph.EdgeID, w float64) snapshot.Op {
	return snapshot.Op{Kind: snapshot.OpSetDistance, Edge: le, Value: w}
}
func opClose(le graph.EdgeID) snapshot.Op {
	return snapshot.Op{Kind: snapshot.OpClose, Edge: le}
}
func opReopen(le graph.EdgeID) snapshot.Op {
	return snapshot.Op{Kind: snapshot.OpReopen, Edge: le}
}

// TestConcurrentSessions hammers the router from many goroutines — the
// -race CI target for the read path.
func TestConcurrentSessions(t *testing.T) {
	mono, r, _ := buildPair(t, 21, 220, 40, 4)
	diam := r.g.EstimateDiameter()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			rs := r.NewSession()
			for i := 0; i < 40; i++ {
				n := graph.NodeID(rng.Intn(r.g.NumNodes()))
				if rng.Intn(2) == 0 {
					rs.KNN(n, 1+rng.Intn(6), 0)
				} else {
					rs.Within(n, diam*0.05, 0)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	_ = mono
}
