package shard

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"road/internal/core"
	"road/internal/graph"
	"road/internal/snapshot"
)

// snapshotDerived deep-copies a shard's derived routing state so it can
// be compared against a from-scratch rebuild.
func snapshotDerived(s *Shard) (map[graph.NodeID][]BorderArc, []float64) {
	bt := make(map[graph.NodeID][]BorderArc, len(s.btable))
	for b, arcs := range s.btable {
		bt[b] = append([]BorderArc(nil), arcs...)
	}
	return bt, append([]float64(nil), s.borderDist...)
}

// assertDerivedEqual compares incrementally-maintained derived state with
// a from-scratch rebuild, within the FP tolerance of differently
// associated sums (filter candidates sum prefix + w + suffix; a rebuild
// sums strictly along the path).
func assertDerivedEqual(t *testing.T, label string, s *Shard, bt map[graph.NodeID][]BorderArc, bd []float64) {
	t.Helper()
	const eps = 1e-9
	close := func(a, b float64) bool {
		if math.IsInf(a, 1) || math.IsInf(b, 1) {
			return math.IsInf(a, 1) && math.IsInf(b, 1)
		}
		return math.Abs(a-b) <= eps*math.Max(1, math.Max(a, b))
	}
	if len(bt) != len(s.btable) {
		t.Fatalf("%s: shard %d: maintained btable has %d rows, rebuild %d", label, s.ID, len(bt), len(s.btable))
	}
	for b, want := range s.btable {
		got := bt[b]
		if len(got) != len(want) {
			t.Fatalf("%s: shard %d: border %d row has %d arcs, rebuild %d (%v vs %v)",
				label, s.ID, b, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i].To != want[i].To || !close(got[i].Dist, want[i].Dist) {
				t.Fatalf("%s: shard %d: border %d arc %d = %+v, rebuild %+v",
					label, s.ID, b, i, got[i], want[i])
			}
		}
	}
	for i := range bd {
		if !close(bd[i], s.borderDist[i]) {
			t.Fatalf("%s: shard %d: borderDist[%d] = %g, rebuild %g", label, s.ID, i, bd[i], s.borderDist[i])
		}
	}
}

// randomNetOp draws one network mutation for the router's current state:
// re-weights (up and down), closures, reopenings and road additions, in
// journal-op form addressed to the owning shard.
func randomNetOp(r *Router, rng *rand.Rand) (ID, snapshot.Op, bool) {
	switch rng.Intn(4) {
	case 0: // re-weight
		ge := graph.EdgeID(rng.Intn(r.g.NumEdges()))
		if r.g.Edge(ge).Removed {
			return 0, snapshot.Op{}, false
		}
		s, _ := r.OwnerOfEdge(ge)
		w := 0.05 + rng.Float64()*4
		return s.ID, snapshot.Op{Kind: snapshot.OpSetDistance, Edge: s.localEdge[ge], Value: w}, true
	case 1: // close
		ge := graph.EdgeID(rng.Intn(r.g.NumEdges()))
		if r.g.Edge(ge).Removed {
			return 0, snapshot.Op{}, false
		}
		s, _ := r.OwnerOfEdge(ge)
		return s.ID, snapshot.Op{Kind: snapshot.OpClose, Edge: s.localEdge[ge]}, true
	case 2: // reopen
		ge := graph.EdgeID(rng.Intn(r.g.NumEdges()))
		if !r.g.Edge(ge).Removed {
			return 0, snapshot.Op{}, false
		}
		s, _ := r.OwnerOfEdge(ge)
		return s.ID, snapshot.Op{Kind: snapshot.OpReopen, Edge: s.localEdge[ge]}, true
	default: // add a road between two nodes of one shard
		sid := ID(rng.Intn(len(r.shards)))
		s := r.shards[sid]
		n := s.F.Graph().NumNodes()
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u == v {
			return 0, snapshot.Op{}, false
		}
		return sid, snapshot.Op{
			Kind:  snapshot.OpAddRoad,
			U:     u,
			V:     v,
			Value: 0.1 + rng.Float64()*2,
			Edge:  r.NextEdgeID(),
		}, true
	}
}

// TestFilterRefreshExact is the exactness property test of the §5.2
// filter-and-refresh maintenance: after EVERY mutation of a random
// stream, the incrementally-maintained btable and borderDist of the
// touched shard must equal a from-scratch refreshDerived rebuild.
func TestFilterRefreshExact(t *testing.T) {
	for _, seed := range []int64{1, 8, 23} {
		_, r, _ := buildPair(t, seed, 260, 40, 4)
		rng := rand.New(rand.NewSource(seed * 7))
		applied := 0
		for i := 0; i < 120 && applied < 60; i++ {
			sid, op, ok := randomNetOp(r, rng)
			if !ok {
				continue
			}
			if err := r.ApplyOp(sid, op, true); err != nil {
				// Per-op failures (already-closed edge, rejected road) are
				// part of the workload; derived state must still be sound.
				continue
			}
			applied++
			s := r.shards[sid]
			bt, bd := snapshotDerived(s)
			s.refreshDerived(true)
			assertDerivedEqual(t, "after op", s, bt, bd)
			// Put the maintained state back so later increments build on
			// their own output, not the rebuild's (catches drift
			// compounding across a long mutation stream).
			s.btable, s.borderDist = bt, bd
		}
		if applied < 20 {
			t.Fatalf("seed %d: only %d mutations applied", seed, applied)
		}
		// Final sweep: every shard, not just touched ones.
		for _, s := range r.shards {
			bt, bd := snapshotDerived(s)
			s.refreshDerived(true)
			assertDerivedEqual(t, "final", s, bt, bd)
		}
	}
}

// TestPerShardLockConcurrency hammers the router with concurrent
// cross-shard queries WHILE mutations stream through Router.Mutate — the
// -race acceptance target for per-shard write locking. Results are
// checked for internal soundness (sorted distances); exactness under
// mutation is TestFilterRefreshExact's and the equivalence suites' job.
func TestPerShardLockConcurrency(t *testing.T) {
	_, r, _ := buildPair(t, 31, 240, 50, 4)
	diam := r.g.EstimateDiameter()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			rs := r.NewSession()
			for i := 0; i < 300; i++ {
				n := graph.NodeID(rng.Intn(r.g.NumNodes()))
				var res []core.Result
				switch rng.Intn(3) {
				case 0:
					res, _ = rs.KNN(n, 1+rng.Intn(6), 0)
				case 1:
					res, _ = rs.Within(n, diam*0.08, 0)
				default:
					o := graph.ObjectID(rng.Intn(50))
					if _, ok := r.Object(o); ok {
						rs.PathTo(n, o)
					}
				}
				for j := 1; j < len(res); j++ {
					if res[j].Dist < res[j-1].Dist {
						t.Errorf("unsorted result under concurrent mutation: %g after %g", res[j].Dist, res[j-1].Dist)
						return
					}
				}
			}
		}(int64(w))
	}

	// Mutation stream through the locked path, concurrent with readers.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		sid, op, ok := randomNetOp(r, rng)
		if !ok {
			continue
		}
		r.Mutate(
			func() (ID, snapshot.Op, error) { return sid, op, nil },
			func(id ID, op snapshot.Op) error { return r.ApplyOp(id, op, true) },
		)
	}
	wg.Wait()

	// The maintained tables must still be exact after the storm.
	for _, s := range r.shards {
		bt, bd := snapshotDerived(s)
		s.refreshDerived(true)
		assertDerivedEqual(t, "post-storm", s, bt, bd)
	}
}
