package shard

import (
	"math"
	"sort"

	"road/internal/core"
	"road/internal/graph"
	"road/internal/obs"
	"road/internal/pqueue"
)

// Session is a read-only cross-shard query context: one Searcher per
// shard plus the gateway scratch state. Any number of Sessions may query
// concurrently, and queries may overlap Router mutations: each query
// synchronizes itself against them with the router's per-shard read
// locks (home shard only on the nearest-border fast path, all shards on
// the cross-shard path), so a mutation stalls only readers of its own
// shard plus cross-shard readers. One Session still serves one goroutine
// at a time — its scratch state is not shared.
//
// The Session never touches shard compute directly: every expansion goes
// through the shard's Searcher (in-process core.Session or an RPC to the
// shard's host), while all identity translation and the gateway Dijkstra
// stay here, on the router side.
type Session struct {
	r       *Router
	q       []Searcher               // per-shard compute handles
	gdist   map[graph.NodeID]float64 // per-query: gateway distances, GLOBAL IDs
	gpq     pqueue.Queue
	m       merger       // per-query candidate merge (scratch reused)
	entry   []shardEntry // per-query entry-order scratch
	oneSeed []core.Seed  // single-seed scratch for home searches
}

// NewSession returns an independent concurrent query context. Safe to
// call while other sessions query and mutations run: each shard's
// searcher is constructed under that shard's read lock (the first
// construction per framework materializes shortcut trees).
func (r *Router) NewSession() *Session {
	q := make([]Searcher, len(r.shards))
	for i, s := range r.shards {
		r.shardMu[i].RLock()
		q[i] = s.newSearcher()
		r.shardMu[i].RUnlock()
	}
	return &Session{
		r:     r,
		q:     q,
		gdist: make(map[graph.NodeID]float64),
		m:     merger{at: make(map[graph.ObjectID]int)},
	}
}

// Epoch returns the router's maintenance epoch as seen by this session.
func (s *Session) Epoch() uint64 { return s.r.Epoch() }

// merger accumulates per-shard candidate lists, keeping the minimum
// distance per global object (the home shard can be searched twice: once
// directly from the query node, once re-entered through its borders; an
// object near a border is found by several shard searches). It is
// session-owned scratch: reset() recycles the map and slices, and take()
// hands results out in a fresh slice so callers (and the serving layer's
// result cache) never alias the scratch.
type merger struct {
	at    map[graph.ObjectID]int
	items []core.Result
	dists []float64 // kth scratch
}

func (m *merger) reset() {
	clear(m.at)
	m.items = m.items[:0]
}

// addFrom merges shard-local results, translated to global identities on
// the fly (no intermediate slice).
func (m *merger) addFrom(sh *Shard, res []core.Result) {
	for _, r := range res {
		r.Object.ID = sh.globalObj[r.Object.ID]
		r.Object.Edge = sh.globalEdge[r.Object.Edge]
		if i, ok := m.at[r.Object.ID]; ok {
			if r.Dist < m.items[i].Dist {
				m.items[i] = r
			}
			continue
		}
		m.at[r.Object.ID] = len(m.items)
		m.items = append(m.items, r)
	}
}

// take sorts the candidates by (distance, object ID) and returns the
// first ≤ max of them in a freshly allocated slice.
func (m *merger) take(max int) []core.Result {
	sort.Slice(m.items, func(i, j int) bool {
		if m.items[i].Dist != m.items[j].Dist {
			return m.items[i].Dist < m.items[j].Dist
		}
		return m.items[i].Object.ID < m.items[j].Object.ID
	})
	n := len(m.items)
	if max >= 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]core.Result, n)
	copy(out, m.items[:n])
	return out
}

// kth returns the current kth-smallest candidate distance, or +Inf while
// fewer than k candidates are known — the cross-shard merge bound. It
// leaves the candidate order untouched (the dedup index stays valid).
func (m *merger) kth(k int) float64 {
	if len(m.items) < k {
		return math.Inf(1)
	}
	m.dists = m.dists[:0]
	for i := range m.items {
		m.dists = append(m.dists, m.items[i].Dist)
	}
	sort.Float64s(m.dists)
	return m.dists[k-1]
}

// searchShard runs one per-shard expansion through the shard's Searcher,
// passing down whatever traversal budget the nodes already settled leave
// over, timing it as a trace leg, and folding its stats into the query's.
func (s *Session) searchShard(h ID, leg obs.LegName, req SearchReq, lim core.Limits, stats *core.QueryStats) (SearchResp, error) {
	req.Budget = remainingBudget(lim, stats)
	done := obs.FromContext(lim.Ctx).StartLeg(leg, int(h))
	resp, err := s.q[h].Search(lim.Ctx, req)
	accumulate(stats, resp.Stats)
	done(resp.Stats.NodesPopped)
	return resp, err
}

// remainingBudget derives the node-settlement budget for the next
// per-shard sub-search from the query-wide budget and the work done so
// far. Zero means "unlimited", so an exhausted budget is represented as
// the smallest positive bound — the sub-search stops on its first pop
// and reports ErrBudgetExhausted.
func remainingBudget(lim core.Limits, stats *core.QueryStats) int {
	if lim.Budget <= 0 {
		return 0
	}
	remaining := lim.Budget - stats.NodesPopped
	if remaining < 1 {
		remaining = 1
	}
	return remaining
}

// mergeWatched folds one shard's watched border distances (local IDs)
// into the global gateway seed map, keeping the minimum per border.
func (s *Session) mergeWatched(sh *Shard, watched []WatchDist) {
	for _, wd := range watched {
		gb := sh.globalNode[wd.Node]
		if cur, ok := s.gdist[gb]; !ok || wd.Dist < cur {
			s.gdist[gb] = wd.Dist
		}
	}
}

// KNN answers a cross-shard k-nearest-neighbour query from a global node.
//
// Phase 1 searches the query node's home shard(s) directly, watching
// their border nodes: by the Dijkstra settling order this yields the k
// locally nearest objects AND the exact distance to every border closer
// than the local kth result — precisely the gateways a globally closer
// object could be reached through. Phase 2 runs Dijkstra over the border
// gateway graph (per-shard border distance tables), capped at the local
// kth distance. Phase 3 enters remaining shards in ascending entry
// distance, seeding each shard's framework at its borders; a shard whose
// entry distance is at or beyond the current kth-best is skipped, and
// because shards are processed in entry order the first skip finalizes
// the result set.
func (s *Session) KNN(from graph.NodeID, k int, attr int32) ([]core.Result, core.QueryStats) {
	res, stats, _ := s.KNNLimited(from, k, attr, core.Limits{})
	return res, stats
}

// KNNLimited is KNN under core.Limits: the context is polled inside every
// per-shard expansion and between phases, and the budget caps the total
// nodes settled across all shards the query touches. On truncation the
// candidates merged so far are returned (a valid, possibly incomplete,
// subset) with Stats.Truncated set.
//
// Locking: the query first tries the nearest-border fast path under the
// home shard's read lock alone; only when cross-shard machinery is
// needed does it take the whole-router read view — at which point it
// reruns the home search from scratch, because a mutation may have
// slipped into the home shard between the two views. The nodes the
// discarded fast attempt settled are carried into the locked phase's
// stats, so the traversal budget caps the query's TOTAL work and
// NodesPopped reports it.
func (s *Session) KNNLimited(from graph.NodeID, k int, attr int32, lim core.Limits) ([]core.Result, core.QueryStats, error) {
	var stats core.QueryStats
	if k <= 0 || int(from) < 0 || int(from) >= len(s.r.shardsOf) {
		return nil, stats, nil
	}
	homes := s.r.shardsOf[from]
	if len(homes) == 0 {
		return nil, stats, nil // isolated intersection: nothing is reachable
	}
	carried := 0
	if len(homes) == 1 {
		s.r.shardMu[homes[0]].RLock()
		res, st, err, final := s.knnFast(homes[0], from, k, attr, lim)
		s.r.shardMu[homes[0]].RUnlock()
		if final {
			return res, st, err
		}
		s.r.shards[homes[0]].escalations.Add(1)
		carried = st.NodesPopped
	}
	s.r.rlockAll()
	defer s.r.runlockAll()
	if len(homes) == 1 {
		return s.knnHomeLocked(homes[0], from, k, attr, lim, carried)
	}
	return s.knnSlowMulti(homes, from, k, attr, stats, lim)
}

// knnFast is the nearest-border fast path, runnable under the home
// shard's read lock alone: one home shard whose nearest border lies at
// or beyond the local kth result — the vast majority of queries on
// well-cut shards. The plain (unwatched) local search is then globally
// final: any path to another shard passes a border, so every foreign
// object is at least the nearest-border distance away — a bound that
// depends only on this shard's network, which the held lock keeps
// stable. final is also true on error (the partial prefix is the
// answer); when false the caller escalates to the cross-shard path.
func (s *Session) knnFast(h ID, from graph.NodeID, k int, attr int32, lim core.Limits) ([]core.Result, core.QueryStats, error, bool) {
	var stats core.QueryStats
	sh := s.r.shards[h]
	sh.homeQueries.Add(1)
	lf := sh.localNode[from]
	resp, err := s.searchShard(h, obs.LegHomeFast, SearchReq{Seeds: s.seed1(lf), Attr: attr, K: k}, lim, &stats)
	res := resp.Results
	if err != nil {
		return translateInPlace(sh, res), stats, err, true
	}
	if len(res) >= k && sh.borderDist[lf] >= res[k-1].Dist {
		return translateInPlace(sh, res), stats, nil, true
	}
	return nil, stats, nil, false
}

// knnHomeLocked is the single-home cross-shard path, run under the
// whole-router read view: plain home search (rerun — the fast attempt's
// result may predate a home-shard mutation), the fast-path check again
// (a mutation may have made it final), then the watched re-run and the
// gateway machinery. carried is the node count the discarded fast
// attempt settled: folded into stats up front so the budget spans both
// phases.
func (s *Session) knnHomeLocked(h ID, from graph.NodeID, k int, attr int32, lim core.Limits, carried int) ([]core.Result, core.QueryStats, error) {
	var stats core.QueryStats
	stats.NodesPopped = carried
	sh := s.r.shards[h]
	lf := sh.localNode[from]
	resp, err := s.searchShard(h, obs.LegHomeLocked, SearchReq{Seeds: s.seed1(lf), Attr: attr, K: k}, lim, &stats)
	res := resp.Results
	if err != nil {
		return translateInPlace(sh, res), stats, err
	}
	if len(res) >= k && sh.borderDist[lf] >= res[k-1].Dist {
		return translateInPlace(sh, res), stats, nil
	}
	// A border may be closer than the kth result: re-run watched and
	// capped just above the known kth distance, purely to learn the
	// exact border distances the gateway needs. The margin matters:
	// the watched expansion can reach the same object over descended
	// edges instead of shortcuts, summing to a distance one ulp above
	// the plain search's — a strict cap could clip it mid-search. The
	// plain result stays the authoritative local answer.
	stopAt := 0.0
	if len(res) >= k {
		stopAt = res[k-1].Dist * (1 + 1e-12)
	}
	wresp, err := s.searchShard(h, obs.LegHomeWatched,
		SearchReq{Seeds: s.seed1(lf), Attr: attr, K: k, Radius: stopAt, Watch: true}, lim, &stats)
	// The watched re-run revisits the SAME home shard (its pops are
	// real cost and stay counted); only distinct shards entered count
	// toward ShardsSearched, so a query that never leaves its home
	// shard reports 1.
	stats.ShardsSearched--
	if err != nil {
		return translateInPlace(sh, res), stats, err
	}
	if len(wresp.Watched) == 0 {
		return translateInPlace(sh, res), stats, nil
	}
	return s.knnSlow(sh, res, wresp.Watched, k, attr, stats, lim)
}

// knnSlow is the cross-shard continuation for a single home shard: the
// watched home search already ran (preRes plus the watched border
// distances). The gateway runs first — if no shard's entry distance
// beats the local kth bound, the home answer is final without touching
// the merge machinery (the usual outcome when a border is merely near).
func (s *Session) knnSlow(sh *Shard, preRes []core.Result, watched []WatchDist, k int, attr int32, stats core.QueryStats, lim core.Limits) ([]core.Result, core.QueryStats, error) {
	clear(s.gdist)
	for _, wd := range watched {
		s.gdist[sh.globalNode[wd.Node]] = wd.Dist
	}
	bound := math.Inf(1)
	if len(preRes) >= k {
		bound = preRes[k-1].Dist
	}
	if err := s.gateway(bound, nil, lim); err != nil {
		stats.Truncated = true
		return translateInPlace(sh, preRes), stats, err
	}
	entries := s.entryOrder()
	if len(entries) == 0 || entries[0].dist >= bound {
		return translateInPlace(sh, preRes), stats, nil
	}
	s.m.reset()
	s.m.addFrom(sh, preRes)
	return s.knnFinish(k, attr, stats, lim)
}

// knnSlowMulti handles a query node that is itself a global border:
// every containing shard is searched with its borders watched, then the
// merge runs over the combined gateway.
func (s *Session) knnSlowMulti(homes []ID, from graph.NodeID, k int, attr int32, stats core.QueryStats, lim core.Limits) ([]core.Result, core.QueryStats, error) {
	m := &s.m
	m.reset()
	clear(s.gdist)
	for _, h := range homes {
		sh := s.r.shards[h]
		sh.homeQueries.Add(1)
		resp, err := s.searchShard(h, obs.LegHomeWatched,
			SearchReq{Seeds: s.seed1(sh.localNode[from]), Attr: attr, K: k, Watch: true}, lim, &stats)
		m.addFrom(sh, resp.Results)
		if err != nil {
			return m.take(k), stats, err
		}
		s.mergeWatched(sh, resp.Watched)
	}
	if len(s.gdist) == 0 {
		// No border reachable: the merged home answers are final.
		return m.take(k), stats, nil
	}
	if err := s.gateway(m.kth(k), nil, lim); err != nil {
		stats.Truncated = true
		return m.take(k), stats, err
	}
	return s.knnFinish(k, attr, stats, lim)
}

// knnFinish runs the merge-bound loop: shards are searched in ascending
// entry order, each seeded at its borders with their global distances
// and capped at the current kth-best, until no unexplored shard could
// still improve the candidate set.
func (s *Session) knnFinish(k int, attr int32, stats core.QueryStats, lim core.Limits) ([]core.Result, core.QueryStats, error) {
	m := &s.m
	for _, en := range s.entryOrder() {
		bound := m.kth(k)
		if en.dist >= bound {
			break // merge bound: no unexplored shard can improve the set
		}
		sh := s.r.shards[en.id]
		seeds := s.borderSeeds(sh, bound)
		if len(seeds) == 0 {
			continue
		}
		// With fewer than k candidates the bound is +Inf and stopAt stays
		// 0 (unbounded).
		stopAt := 0.0
		if !math.IsInf(bound, 1) {
			stopAt = bound
		}
		sh.remoteEntries.Add(1)
		resp, err := s.searchShard(en.id, obs.LegEnter,
			SearchReq{Seeds: seeds, Attr: attr, K: k, Radius: stopAt}, lim, &stats)
		m.addFrom(sh, resp.Results)
		if err != nil {
			return m.take(k), stats, err
		}
	}
	return m.take(k), stats, nil
}

// Within answers a cross-shard range query: all objects within the given
// network distance, closest first. The radius plays the role of the merge
// bound: shards whose entry distance exceeds it are never searched.
func (s *Session) Within(from graph.NodeID, radius float64, attr int32) ([]core.Result, core.QueryStats) {
	res, stats, _ := s.WithinLimited(from, radius, attr, core.Limits{})
	return res, stats
}

// WithinLimited is Within under core.Limits; see KNNLimited for the
// truncation contract and the two-phase locking scheme. Range queries
// escalate more cheaply than kNN: the radius is known up front, so the
// fast-path attempt is a single nearest-border array lookup — no search
// is wasted when the query must go cross-shard.
func (s *Session) WithinLimited(from graph.NodeID, radius float64, attr int32, lim core.Limits) ([]core.Result, core.QueryStats, error) {
	var stats core.QueryStats
	if int(from) < 0 || int(from) >= len(s.r.shardsOf) || !(radius >= 0) {
		return nil, stats, nil
	}
	homes := s.r.shardsOf[from]
	if len(homes) == 0 {
		return nil, stats, nil
	}
	if len(homes) == 1 {
		s.r.shardMu[homes[0]].RLock()
		res, st, err, final := s.withinFast(homes[0], from, radius, attr, lim)
		s.r.shardMu[homes[0]].RUnlock()
		if final {
			return res, st, err
		}
		s.r.shards[homes[0]].escalations.Add(1)
	}
	s.r.rlockAll()
	defer s.r.runlockAll()
	if len(homes) == 1 {
		return s.withinHomeLocked(homes[0], from, radius, attr, lim)
	}
	return s.withinSlowMulti(homes, from, radius, attr, stats, lim)
}

// withinFast answers a range query under the home shard's read lock
// alone when the shard-local nearest border lies beyond the radius — no
// path can leave the shard within range, so the plain bounded search is
// globally final.
func (s *Session) withinFast(h ID, from graph.NodeID, radius float64, attr int32, lim core.Limits) ([]core.Result, core.QueryStats, error, bool) {
	var stats core.QueryStats
	sh := s.r.shards[h]
	lf := sh.localNode[from]
	if sh.borderDist[lf] <= radius {
		return nil, stats, nil, false
	}
	sh.homeQueries.Add(1)
	resp, err := s.searchShard(h, obs.LegHomeFast,
		SearchReq{Seeds: s.seed1(lf), Attr: attr, Radius: radius}, lim, &stats)
	return translateInPlace(sh, resp.Results), stats, err, true
}

// withinHomeLocked is the single-home range path under the whole-router
// read view; the nearest-border check is retried first, since a
// mutation between the two lock phases may have pushed the borders out
// of range.
func (s *Session) withinHomeLocked(h ID, from graph.NodeID, radius float64, attr int32, lim core.Limits) ([]core.Result, core.QueryStats, error) {
	var stats core.QueryStats
	sh := s.r.shards[h]
	sh.homeQueries.Add(1)
	lf := sh.localNode[from]
	if sh.borderDist[lf] > radius {
		resp, err := s.searchShard(h, obs.LegHomeLocked,
			SearchReq{Seeds: s.seed1(lf), Attr: attr, Radius: radius}, lim, &stats)
		return translateInPlace(sh, resp.Results), stats, err
	}
	resp, err := s.searchShard(h, obs.LegHomeWatched,
		SearchReq{Seeds: s.seed1(lf), Attr: attr, Radius: radius, Watch: true}, lim, &stats)
	res := resp.Results
	if err != nil {
		return translateInPlace(sh, res), stats, err
	}
	if len(resp.Watched) == 0 {
		return translateInPlace(sh, res), stats, nil
	}
	clear(s.gdist)
	for _, wd := range resp.Watched {
		s.gdist[sh.globalNode[wd.Node]] = wd.Dist
	}
	s.m.reset()
	s.m.addFrom(sh, res)
	return s.withinFinish(radius, attr, stats, lim)
}

// withinSlowMulti is the multi-home (border query node) range path.
func (s *Session) withinSlowMulti(homes []ID, from graph.NodeID, radius float64, attr int32, stats core.QueryStats, lim core.Limits) ([]core.Result, core.QueryStats, error) {
	m := &s.m
	m.reset()
	clear(s.gdist)
	for _, h := range homes {
		sh := s.r.shards[h]
		sh.homeQueries.Add(1)
		resp, err := s.searchShard(h, obs.LegHomeWatched,
			SearchReq{Seeds: s.seed1(sh.localNode[from]), Attr: attr, Radius: radius, Watch: true}, lim, &stats)
		m.addFrom(sh, resp.Results)
		if err != nil {
			return m.take(-1), stats, err
		}
		s.mergeWatched(sh, resp.Watched)
	}
	if len(s.gdist) == 0 {
		return m.take(-1), stats, nil
	}
	return s.withinFinish(radius, attr, stats, lim)
}

// withinFinish expands the range query through the gateway into every
// shard whose entry distance is within the radius, then merges.
func (s *Session) withinFinish(radius float64, attr int32, stats core.QueryStats, lim core.Limits) ([]core.Result, core.QueryStats, error) {
	m := &s.m
	if err := s.gateway(radius, nil, lim); err != nil {
		stats.Truncated = true
		return m.take(-1), stats, err
	}
	for _, en := range s.entryOrder() {
		if en.dist > radius {
			break
		}
		sh := s.r.shards[en.id]
		seeds := s.borderSeeds(sh, math.Nextafter(radius, math.Inf(1)))
		if len(seeds) == 0 {
			continue
		}
		sh.remoteEntries.Add(1)
		resp, err := s.searchShard(en.id, obs.LegEnter,
			SearchReq{Seeds: seeds, Attr: attr, Radius: radius}, lim, &stats)
		m.addFrom(sh, resp.Results)
		if err != nil {
			return m.take(-1), stats, err
		}
	}
	// Drop candidates the double-entry merge may have pulled in beyond
	// the radius (a re-entered home search never can, but stay defensive).
	out := m.take(-1)
	for len(out) > 0 && out[len(out)-1].Dist > radius {
		out = out[:len(out)-1]
	}
	return out, stats, nil
}

// gateway extends s.gdist — seeded with exact distances from the query
// node to its home shard's borders — to every border node reachable
// within cap, by Dijkstra over the shards' border distance tables. The
// result is the exact global network distance to each reached border:
// any q-to-border path decomposes into maximal single-shard segments
// whose endpoints are borders, and each segment is bounded below by (and
// realized through) its shard's border table arc.
//
// When pred is non-nil every relaxation is recorded in it (seed borders
// get prev == NoNode), so PathTo can reconstruct the border chain;
// queries pass nil and skip the bookkeeping.
//
// The gateway graph is tiny next to the shard networks (borders only),
// but it still honours lim's context so a canceled query cannot stall in
// a pathological border mesh; the traversal budget does not apply here —
// gateway pops are border-table lookups, not network-node settlements.
// The border tables it reads live router-side for remote shards too, so
// the gateway never blocks on the network.
func (s *Session) gateway(cap float64, pred map[graph.NodeID]gatewayPred, lim core.Limits) error {
	s.gpq.Reset()
	for b, d := range s.gdist {
		s.gpq.Push(b, d)
		if pred != nil {
			pred[b] = gatewayPred{prev: graph.NoNode}
		}
	}
	pops := 0
	if tr := obs.FromContext(lim.Ctx); tr != nil {
		done := tr.StartLeg(obs.LegGateway, -1)
		defer func() { done(pops) }()
	}
	for s.gpq.Len() > 0 {
		item, _ := s.gpq.Pop()
		d := item.Priority
		if d > cap {
			break
		}
		pops++
		if err := (core.Limits{Ctx: lim.Ctx}).Stop(pops); err != nil {
			return err
		}
		b := item.Value.(graph.NodeID)
		if d > s.gdist[b] {
			continue // superseded entry
		}
		for _, sid := range s.r.shardsOf[b] {
			for _, arc := range s.r.shards[sid].btable[b] {
				nd := d + arc.Dist
				if nd > cap {
					continue
				}
				if cur, ok := s.gdist[arc.To]; !ok || nd < cur {
					s.gdist[arc.To] = nd
					if pred != nil {
						pred[arc.To] = gatewayPred{prev: b, via: sid}
					}
					s.gpq.Push(arc.To, nd)
				}
			}
		}
	}
	return nil
}

// shardEntry is a shard's entry distance: the cheapest gateway distance
// among its borders.
type shardEntry struct {
	id   ID
	dist float64
}

// entryOrder derives per-shard entry distances from the gateway result,
// ascending (into session scratch). Every listed shard has at least one
// reached border.
func (s *Session) entryOrder() []shardEntry {
	s.entry = s.entry[:0]
	for b, d := range s.gdist {
		for _, sid := range s.r.shardsOf[b] {
			found := false
			for i := range s.entry {
				if s.entry[i].id == sid {
					if d < s.entry[i].dist {
						s.entry[i].dist = d
					}
					found = true
					break
				}
			}
			if !found {
				s.entry = append(s.entry, shardEntry{id: sid, dist: d})
			}
		}
	}
	sort.Slice(s.entry, func(i, j int) bool {
		if s.entry[i].dist != s.entry[j].dist {
			return s.entry[i].dist < s.entry[j].dist
		}
		return s.entry[i].id < s.entry[j].id
	})
	return s.entry
}

// borderSeeds assembles the seed list for entering sh: its borders the
// gateway reached strictly below the bound, at their global distances,
// translated to shard-local IDs.
func (s *Session) borderSeeds(sh *Shard, bound float64) []core.Seed {
	var seeds []core.Seed
	for _, b := range sh.borders {
		if d, ok := s.gdist[b]; ok && d < bound {
			seeds = append(seeds, core.Seed{Node: sh.localNode[b], Dist: d})
		}
	}
	return seeds
}

// seed1 returns the session's single-seed scratch holding just node n.
func (s *Session) seed1(n graph.NodeID) []core.Seed {
	if s.oneSeed == nil {
		s.oneSeed = make([]core.Seed, 1)
	}
	s.oneSeed[0] = core.Seed{Node: n}
	return s.oneSeed
}

// translateInPlace rewrites shard-local identities to global ones inside
// res — which the search freshly allocated, so handing it to the caller
// (and the serving layer's cache) is safe.
func translateInPlace(sh *Shard, res []core.Result) []core.Result {
	for i := range res {
		res[i].Object.ID = sh.globalObj[res[i].Object.ID]
		res[i].Object.Edge = sh.globalEdge[res[i].Object.Edge]
	}
	return res
}

func accumulate(dst *core.QueryStats, st core.QueryStats) {
	dst.NodesPopped += st.NodesPopped
	dst.RnetsBypassed += st.RnetsBypassed
	dst.RnetsDescended += st.RnetsDescended
	dst.ShardsSearched += st.ShardsSearched
	dst.Truncated = dst.Truncated || st.Truncated
}
