package shard

import (
	"testing"

	"road/internal/core"
	"road/internal/dataset"
	"road/internal/graph"
)

// benchScale mirrors the HTTP benchmark default (full CA).
const benchScale = 1.0

// benchPair builds the serving benchmark's network and object set.
func benchPair(b *testing.B) (*core.Session, *Session, []graph.NodeID) {
	b.Helper()
	spec := dataset.Scaled(dataset.CA(), benchScale)
	g := dataset.MustGenerate(spec)
	set := dataset.PlaceUniform(g, 2000, 1, 0, 1, 2, 3)
	gM := g.Clone()
	setM := set.Clone(gM)
	mono, err := core.Build(gM, setM, core.Config{BufferPages: -1})
	if err != nil {
		b.Fatal(err)
	}
	r, err := Build(g, set, Options{Shards: 4, Seed: 1, Core: core.Config{BufferPages: -1}})
	if err != nil {
		b.Fatal(err)
	}
	return mono.NewSession(), r.NewSession(), dataset.RandomNodes(g, 512, 7)
}

func BenchmarkKNNSingle(b *testing.B) {
	ms, _, nodes := benchPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.KNN(core.Query{Node: nodes[i%len(nodes)]}, 5)
	}
}

func BenchmarkKNNSharded(b *testing.B) {
	_, rs, nodes := benchPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.KNN(nodes[i%len(nodes)], 5, 0)
	}
}

func BenchmarkWithinSingle(b *testing.B) {
	ms, _, nodes := benchPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.Range(core.Query{Node: nodes[i%len(nodes)]}, 0.4)
	}
}

func BenchmarkWithinSharded(b *testing.B) {
	_, rs, nodes := benchPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Within(nodes[i%len(nodes)], 0.4, 0)
	}
}
