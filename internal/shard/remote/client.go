package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"road/internal/apierr"
	"road/internal/graph"
	"road/internal/obs"
	"road/internal/shard"
	"road/internal/snapshot"
)

// Per-call timeout tiers. Reads are bounded tightly (queries have their
// own budgets and contexts on top); applies allow for derived-state
// repair on big shards; state exports ship whole identity maps.
const (
	readTimeout   = 15 * time.Second
	applyTimeout  = 60 * time.Second
	stateTimeout  = 120 * time.Second
	healthTimeout = 2 * time.Second
	snapTimeout   = 300 * time.Second
)

// Hedging policy: duplicate a straggler read once its latency passes the
// observed p99, clamped to sane bounds, and only once the histogram has
// enough samples to mean anything.
const (
	hedgeQuantile   = 0.99
	hedgeMinDelay   = time.Millisecond
	hedgeMaxDelay   = 2 * time.Second
	hedgeMinSamples = 64
)

// Read retry policy: transport errors only (op errors are final), with
// short backoff — the health checker handles sustained outages.
var readBackoff = [...]time.Duration{25 * time.Millisecond, 100 * time.Millisecond}

// rpcHistBounds bucket RPC wall times (seconds).
var rpcHistBounds = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// clientMetrics is the road_remote_* family shared by a fleet's clients.
type clientMetrics struct {
	reg       *obs.Registry
	mu        sync.Mutex
	hists     map[string]*obs.Histogram
	errs      map[string]*obs.Counter
	hedges    *obs.Counter
	hedgeWins *obs.Counter
	readopts  *obs.Counter
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &clientMetrics{
		reg:   reg,
		hists: make(map[string]*obs.Histogram),
		errs:  make(map[string]*obs.Counter),
		hedges: reg.Counter("road_remote_hedges_total", "",
			"Hedge requests launched for straggler reads."),
		hedgeWins: reg.Counter("road_remote_hedge_wins_total", "",
			"Hedge requests that answered before the primary."),
		readopts: reg.Counter("road_remote_readopts_total", "",
			"Recovered hosts re-adopted into the fleet."),
	}
}

func hostLabel(host string) string { return fmt.Sprintf("host=%q", host) }

func (m *clientMetrics) rpcHist(host string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[host]
	if !ok {
		//roadvet:ignore memoized per-host family: registered once per host ever seen, and Registry dedupes by name+labels
		h = m.reg.Histogram("road_remote_rpc_seconds", hostLabel(host),
			"Shard RPC wall time (successful exchanges).", rpcHistBounds)
		m.hists[host] = h
	}
	return h
}

func (m *clientMetrics) errCounter(host string) *obs.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.errs[host]
	if !ok {
		//roadvet:ignore memoized per-host family: registered once per host ever seen, and Registry dedupes by name+labels
		c = m.reg.Counter("road_remote_errors_total", hostLabel(host),
			"Shard RPC transport failures.")
		m.errs[host] = c
	}
	return c
}

// HostClient is the router-side handle onto one shard host: a pooled
// HTTP client with per-call timeouts, bounded retry on idempotent reads,
// hedged duplicates for straggler reads, and the down-marker the fleet's
// health checker flips.
type HostClient struct {
	addr string // host:port, as dialed (trace/metric identity)
	base string // http://addr
	hc   *http.Client
	hist *obs.Histogram
	errs *obs.Counter
	m    *clientMetrics
	down atomic.Bool
}

// NewHostClient builds a client for one host address ("host:port").
func NewHostClient(addr string, m *clientMetrics) *HostClient {
	if m == nil {
		m = newClientMetrics(nil)
	}
	return &HostClient{
		addr: addr,
		base: "http://" + addr,
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}},
		hist: m.rpcHist(addr),
		errs: m.errCounter(addr),
		m:    m,
	}
}

// Addr returns the host address the client dials.
func (c *HostClient) Addr() string { return c.addr }

// Down reports whether the health checker has marked the host down.
func (c *HostClient) Down() bool { return c.down.Load() }

func (c *HostClient) unavailable(err error) error {
	return fmt.Errorf("%w: host %s: %v", apierr.ErrShardUnavailable, c.addr, err)
}

type callOpts struct {
	timeout time.Duration
	// read marks idempotent calls: eligible for retry and hedging.
	read bool
	// force bypasses the down-marker (health probes, recovery state
	// fetches — the paths that decide whether the host is back).
	force bool
}

// roundTrip is one HTTP exchange: no retry, no hedging, no down check.
// A transport-level failure (network error, non-200, undecodable body)
// returns an error; an op error inside the envelope does not.
func (c *HostClient) roundTrip(ctx context.Context, method, path string, body []byte, timeout time.Duration) (envelope, time.Duration, error) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.base+path, rd)
	if err != nil {
		return envelope{}, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tr := obs.FromContext(ctx); tr != nil {
		id := tr.ID()
		if id == "" {
			id = "1"
		}
		req.Header.Set(TraceHeader, id)
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return envelope{}, time.Since(start), err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	dur := time.Since(start)
	if err != nil {
		return envelope{}, dur, err
	}
	if resp.StatusCode != http.StatusOK {
		return envelope{}, dur, fmt.Errorf("%s %s: HTTP %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(data))
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return envelope{}, dur, fmt.Errorf("%s %s: decoding envelope: %w", method, path, err)
	}
	return env, dur, nil
}

// hedgedTrip runs one exchange with a hedged duplicate: if the primary
// has not answered after the host's observed p99, a second identical
// request launches and the first answer wins (the loser is canceled via
// the shared context when hedgedTrip returns).
func (c *HostClient) hedgedTrip(ctx context.Context, method, path string, body []byte, timeout time.Duration) (envelope, time.Duration, error) {
	delay, ok := c.hedgeDelay()
	if !ok {
		return c.roundTrip(ctx, method, path, body, timeout)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		env   envelope
		dur   time.Duration
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(hedge bool) {
		go func() {
			env, dur, err := c.roundTrip(hctx, method, path, body, timeout)
			ch <- result{env, dur, err, hedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	inflight := 1
	hedged := false
	var firstErr result
	for {
		select {
		case res := <-ch:
			if res.err == nil {
				if res.hedge {
					c.m.hedgeWins.Inc()
				}
				return res.env, res.dur, nil
			}
			inflight--
			if firstErr.err == nil {
				firstErr = res
			}
			if inflight == 0 {
				return firstErr.env, firstErr.dur, firstErr.err
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				inflight++
				c.m.hedges.Inc()
				launch(true)
			}
		}
	}
}

// hedgeDelay derives the hedge trigger from the host's RPC latency
// histogram: the p99, clamped to [1ms, 2s], once at least 64 successful
// exchanges have been observed.
func (c *HostClient) hedgeDelay() (time.Duration, bool) {
	if c.hist.Count() < hedgeMinSamples {
		return 0, false
	}
	d := time.Duration(c.hist.Quantile(hedgeQuantile) * float64(time.Second))
	if d < hedgeMinDelay {
		d = hedgeMinDelay
	}
	if d > hedgeMaxDelay {
		d = hedgeMaxDelay
	}
	return d, true
}

// call is the full client policy: fail fast when the host is marked
// down, hedge and retry idempotent reads on transport errors, record
// latency and error metrics, and wrap terminal transport failures in
// apierr.ErrShardUnavailable.
func (c *HostClient) call(ctx context.Context, method, path string, body []byte, opt callOpts) (envelope, time.Duration, error) {
	// The search layers drop never-canceled contexts from core.Limits so
	// the in-process hot loop skips polling; the per-call timeout below
	// still needs a parent.
	if ctx == nil {
		//roadvet:ignore nil means an unlimited core.Limits query: there is no caller context to sever, only a per-call timeout to anchor
		ctx = context.Background()
	}
	if !opt.force && c.down.Load() {
		return envelope{}, 0, c.unavailable(fmt.Errorf("marked down"))
	}
	attempts := 1
	if opt.read {
		attempts = 1 + len(readBackoff)
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return envelope{}, 0, fmt.Errorf("%w: %w", apierr.ErrCanceled, ctx.Err())
			case <-time.After(readBackoff[attempt-1]):
			}
		}
		var env envelope
		var dur time.Duration
		var err error
		if opt.read {
			env, dur, err = c.hedgedTrip(ctx, method, path, body, opt.timeout)
		} else {
			env, dur, err = c.roundTrip(ctx, method, path, body, opt.timeout)
		}
		if err == nil {
			c.hist.Observe(dur.Seconds())
			return env, dur, nil
		}
		c.errs.Inc()
		lastErr = err
		// The caller's own cancellation is not the host's fault: surface
		// it as a cancellation, not an unavailable host, and stop.
		if ctx.Err() != nil {
			return envelope{}, dur, fmt.Errorf("%w: %w", apierr.ErrCanceled, ctx.Err())
		}
	}
	return envelope{}, 0, c.unavailable(lastErr)
}

// rpcInfo carries a call's timing split (and, when the call was traced,
// the host-side legs) for trace stitching.
type rpcInfo struct {
	wallUS    int64
	computeUS int64
	legs      []obs.Leg
}

func info(dur time.Duration, env envelope) rpcInfo {
	return rpcInfo{wallUS: dur.Microseconds(), computeUS: env.ComputeUS, legs: env.Legs}
}

// decodeEnvelope unmarshals the typed response (when present) and
// decodes the op error (when present). Both may be set: budget and
// cancellation errors ship their valid partial result.
func decodeEnvelope(env envelope, resp any) error {
	if env.Resp != nil && resp != nil {
		if err := json.Unmarshal(env.Resp, resp); err != nil {
			return err
		}
	}
	if env.Err != "" {
		return decodeErr(env.Err, env.Msg)
	}
	return nil
}

// Search runs one framework search on shard id.
func (c *HostClient) Search(ctx context.Context, id int, req shard.SearchReq) (shard.SearchResp, rpcInfo, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return shard.SearchResp{}, rpcInfo{}, err
	}
	env, dur, err := c.call(ctx, http.MethodPost, fmt.Sprintf("/shard/%d/search", id), body, callOpts{timeout: readTimeout, read: true})
	if err != nil {
		return shard.SearchResp{}, info(dur, env), err
	}
	var resp shard.SearchResp
	return resp, info(dur, env), decodeEnvelope(env, &resp)
}

// Leg runs one plain Dijkstra leg on shard id.
func (c *HostClient) Leg(ctx context.Context, id int, req shard.LegReq) (shard.LegResp, rpcInfo, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return shard.LegResp{}, rpcInfo{}, err
	}
	env, dur, err := c.call(ctx, http.MethodPost, fmt.Sprintf("/shard/%d/leg", id), body, callOpts{timeout: readTimeout, read: true})
	if err != nil {
		return shard.LegResp{}, info(dur, env), err
	}
	var resp shard.LegResp
	derr := decodeEnvelope(env, &resp)
	decLegResp(&resp)
	return resp, info(dur, env), derr
}

// Apply ships one journal-encoded op to shard id. Not idempotent: no
// retry, no hedging — a transport failure leaves the op's fate unknown
// until the health loop re-adopts the host and reconciles.
func (c *HostClient) Apply(ctx context.Context, id int, op snapshot.Op) (shard.ApplyReply, error) {
	body, err := json.Marshal(op)
	if err != nil {
		return shard.ApplyReply{}, err
	}
	env, _, err := c.call(ctx, http.MethodPost, fmt.Sprintf("/shard/%d/apply", id), body, callOpts{timeout: applyTimeout})
	if err != nil {
		return shard.ApplyReply{}, err
	}
	var rep shard.ApplyReply
	if err := decodeEnvelope(env, &rep); err != nil {
		return shard.ApplyReply{}, err
	}
	decDerived(rep.Derived)
	return rep, nil
}

// Object fetches one object of shard id by shard-local ID.
func (c *HostClient) Object(ctx context.Context, id int, lo graph.ObjectID) (graph.Object, bool, error) {
	env, _, err := c.call(ctx, http.MethodGet, fmt.Sprintf("/shard/%d/object/%d", id, lo), nil, callOpts{timeout: readTimeout, read: true})
	if err != nil {
		return graph.Object{}, false, err
	}
	var resp objectResponse
	if err := decodeEnvelope(env, &resp); err != nil {
		return graph.Object{}, false, err
	}
	return resp.Object, resp.OK, nil
}

// State fetches shard id's exported state (force: it is the recovery
// path's first call while the host is still marked down).
func (c *HostClient) State(ctx context.Context, id int) (*shard.ShardState, error) {
	env, _, err := c.call(ctx, http.MethodGet, fmt.Sprintf("/state/%d", id), nil, callOpts{timeout: stateTimeout, force: true})
	if err != nil {
		return nil, err
	}
	st := &shard.ShardState{}
	if err := decodeEnvelope(env, st); err != nil {
		return nil, err
	}
	decState(st)
	return st, nil
}

// Health probes the host directly (no retry, no hedging, no metrics —
// probe latencies must not feed the hedge quantile) and reports the
// shards it serves.
func (c *HostClient) Health(ctx context.Context) (healthResponse, error) {
	rctx, cancel := context.WithTimeout(ctx, healthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return healthResponse{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return healthResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return healthResponse{}, fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return healthResponse{}, err
	}
	return hr, nil
}

// Snapshot asks the host to snapshot every shard it serves and rotate
// the journals.
func (c *HostClient) Snapshot(ctx context.Context) error {
	env, _, err := c.call(ctx, http.MethodPost, "/admin/snapshot", nil, callOpts{timeout: snapTimeout})
	if err != nil {
		return err
	}
	return decodeEnvelope(env, nil)
}
