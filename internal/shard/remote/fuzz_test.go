package remote

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"road/internal/shard"
)

// FuzzEnvelopeDecode throws arbitrary bytes at the client's envelope
// path: whatever a host (or a middlebox mangling its response) sends,
// decoding must not panic, an envelope error must surface as a non-nil
// typed error, and a decoded known-code error must re-encode to the
// same code — the property that keeps errors.Is stable across hops.
func FuzzEnvelopeDecode(f *testing.F) {
	f.Add([]byte(`{"resp":{"dists":[1.5,-1]},"compute_us":42}`))
	f.Add([]byte(`{"err":"budget_exhausted","msg":"road: budget exhausted after 100 pops"}`))
	f.Add([]byte(`{"resp":{"ids":[7]},"err":"canceled","msg":"partial"}`))
	f.Add([]byte(`{"legs":[{"name":"host_search","shard":0,"duration_us":12,"pops":3}]}`))
	f.Add([]byte(`{"err":"never_heard_of_it","msg":"future code"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var env envelope
		if json.Unmarshal(data, &env) != nil {
			return
		}
		var resp shard.SearchResp
		err := decodeEnvelope(env, &resp)
		if env.Err != "" && err == nil {
			t.Fatalf("envelope err %q decoded to nil error", env.Err)
		}
		if err == nil {
			return
		}
		code, msg := encodeErr(err)
		for _, wc := range wireCodes {
			if env.Err == wc.code {
				if code != env.Err {
					t.Fatalf("code %q re-encoded as %q", env.Err, code)
				}
				if !errors.Is(err, wc.err) {
					t.Fatalf("code %q lost sentinel identity %v", env.Err, wc.err)
				}
				if msg != env.Msg {
					t.Fatalf("message %q re-encoded as %q", env.Msg, msg)
				}
			}
		}
	})
}

// FuzzWireErrorRoundTrip pins the typed-error codec: decode never
// returns nil, preserves the message byte-for-byte, restores sentinel
// identity for known codes, and re-encodes to the original code (or
// codeOther for unknown ones).
func FuzzWireErrorRoundTrip(f *testing.F) {
	for _, wc := range wireCodes {
		f.Add(wc.code, wc.err.Error())
	}
	f.Add(codeOther, "opaque host failure")
	f.Add("", "")
	f.Add("no_such_code", "msg with \x00 and ☃")
	f.Fuzz(func(t *testing.T, code, msg string) {
		err := decodeErr(code, msg)
		if err == nil {
			t.Fatal("decodeErr returned nil")
		}
		if err.Error() != msg {
			t.Fatalf("message %q decoded as %q", msg, err.Error())
		}
		code2, msg2 := encodeErr(err)
		if msg2 != msg {
			t.Fatalf("message %q re-encoded as %q", msg, msg2)
		}
		known := false
		for _, wc := range wireCodes {
			if code == wc.code {
				known = true
				if !errors.Is(err, wc.err) {
					t.Fatalf("code %q did not restore sentinel %v", code, wc.err)
				}
			}
		}
		if known && code2 != code {
			t.Fatalf("known code %q re-encoded as %q", code, code2)
		}
		if !known && code2 != codeOther {
			t.Fatalf("unknown code %q re-encoded as %q, want %q", code, code2, codeOther)
		}
	})
}

// FuzzDistRoundTrip pins the ±Inf wire translation: every legal
// distance (non-negative or +Inf) survives encode/decode exactly, the
// encoded form is always JSON-representable, and the decoder is total —
// any negative wire value means +Inf, never a negative distance.
func FuzzDistRoundTrip(f *testing.F) {
	f.Add(0.0)
	f.Add(1.5)
	f.Add(math.MaxFloat64)
	f.Add(math.Inf(1))
	f.Add(-1.0)
	f.Add(-0.0)
	f.Add(5e-324)
	f.Fuzz(func(t *testing.T, v float64) {
		if math.IsNaN(v) {
			return
		}
		if v >= 0 || math.IsInf(v, 1) {
			enc := encDist(v)
			if math.IsInf(enc, 0) || math.IsNaN(enc) {
				t.Fatalf("encDist(%v) = %v is not JSON-representable", v, enc)
			}
			if got := decDist(enc); got != v {
				t.Fatalf("decDist(encDist(%v)) = %v", v, got)
			}
		} else if got := decDist(v); !math.IsInf(got, 1) {
			t.Fatalf("decDist(%v) = %v, want +Inf (negative wire values all mean +Inf)", v, got)
		}
	})
}
