package remote

import (
	"errors"
	"math"
	"testing"

	"road/internal/apierr"
)

// TestWireErrorRoundTrip checks that every typed sentinel survives the
// encode/decode cycle with its errors.Is identity AND its message
// intact — the property the serving layer's status mapping and the
// Router's divergence checks both depend on.
func TestWireErrorRoundTrip(t *testing.T) {
	for _, wc := range wireCodes {
		wrapped := errors.Join(errors.New("context"), wc.err)
		code, msg := encodeErr(wrapped)
		if code != wc.code {
			t.Fatalf("%v encoded as %q, want %q", wc.err, code, wc.code)
		}
		dec := decodeErr(code, msg)
		if !errors.Is(dec, wc.err) {
			t.Fatalf("decoded %q lost identity of %v", code, wc.err)
		}
		if dec.Error() != wrapped.Error() {
			t.Fatalf("decoded message %q, want %q", dec.Error(), wrapped.Error())
		}
	}
}

// TestWireErrorUnknown checks that an error with no sentinel identity
// crosses the wire as a plain error that is NOT errors.Is any sentinel.
func TestWireErrorUnknown(t *testing.T) {
	code, msg := encodeErr(errors.New("something host-specific"))
	if code != codeOther {
		t.Fatalf("untyped error encoded as %q, want %q", code, codeOther)
	}
	dec := decodeErr(code, msg)
	if dec.Error() != "something host-specific" {
		t.Fatalf("decoded message %q", dec.Error())
	}
	if errors.Is(dec, apierr.ErrShardUnavailable) || errors.Is(dec, apierr.ErrNoSuchObject) {
		t.Fatal("untyped error gained a sentinel identity")
	}
}

// TestWireDistRoundTrip checks the ±Inf translation: border-distance
// arrays ship +Inf (unreachable border) as -1 because JSON has no Inf.
func TestWireDistRoundTrip(t *testing.T) {
	in := []float64{0, 1.5, math.Inf(1), 2.25, math.Inf(1)}
	d := append([]float64(nil), in...)
	encDists(d)
	for _, v := range d {
		if math.IsInf(v, 0) {
			t.Fatalf("encoded slice still contains Inf: %v", d)
		}
	}
	decDists(d)
	for i := range in {
		if d[i] != in[i] && !(math.IsInf(d[i], 1) && math.IsInf(in[i], 1)) {
			t.Fatalf("round trip [%d]: %v, want %v", i, d[i], in[i])
		}
	}
}

// TestHedgeDelayBounds checks the hedging trigger: no hedge until the
// histogram has enough samples, then a p99-derived delay clamped to
// [1ms, 2s].
func TestHedgeDelayBounds(t *testing.T) {
	c := NewHostClient("127.0.0.1:1", nil)
	if _, ok := c.hedgeDelay(); ok {
		t.Fatal("hedge armed with an empty latency histogram")
	}
	// Fill with microsecond-scale samples: the clamp must floor at 1ms.
	for i := 0; i < 200; i++ {
		c.hist.Observe(50e-6)
	}
	d, ok := c.hedgeDelay()
	if !ok {
		t.Fatal("hedge not armed after 200 samples")
	}
	if d < hedgeMinDelay || d > hedgeMaxDelay {
		t.Fatalf("hedge delay %v outside [%v, %v]", d, hedgeMinDelay, hedgeMaxDelay)
	}
}
