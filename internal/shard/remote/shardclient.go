package remote

import (
	"context"

	"road/internal/graph"
	"road/internal/obs"
	"road/internal/shard"
	"road/internal/snapshot"
)

// remoteShard implements shard.RemoteShard over a HostClient: the
// router-side handle backing one mirror shard. The interface methods
// carry no context (the router calls them under its own locking), so
// their RPCs run under the fleet's lifecycle context and abort when the
// fleet closes.
type remoteShard struct {
	id   int
	c    *HostClient
	lctx context.Context
}

func (rs *remoteShard) NewSearcher() shard.Searcher { return &remoteSearcher{rs: rs} }

func (rs *remoteShard) Apply(op snapshot.Op) (shard.ApplyReply, error) {
	return rs.c.Apply(rs.lctx, rs.id, op)
}

func (rs *remoteShard) Object(lo graph.ObjectID) (graph.Object, bool, error) {
	return rs.c.Object(rs.lctx, rs.id, lo)
}

func (rs *remoteShard) Host() string { return rs.c.Addr() }

// remoteSearcher implements shard.Searcher as RPCs. The Session-side
// machinery already records the semantic leg (home_fast, enter,
// path_leg, …); on traced queries the searcher adds one "rpc" leg per
// call, labelled with the host and the wire share of the wall time, so
// cross-process latency is attributable separately from shard compute.
type remoteSearcher struct {
	rs *remoteShard
}

func (q *remoteSearcher) traceRPC(ctx context.Context, ri rpcInfo, pops int) {
	tr := obs.FromContext(ctx)
	if tr == nil {
		return
	}
	wire := ri.wallUS - ri.computeUS
	if wire < 0 {
		wire = 0
	}
	// Host-side legs (queue wait, search compute) ride back in the
	// envelope; stamp them with the host and nest them under this hop so
	// the trace shows the full cross-process tree.
	sub := ri.legs
	for i := range sub {
		sub[i].Host = q.rs.c.Addr()
	}
	tr.Add(obs.Leg{
		Name:       obs.LegRPC,
		Shard:      q.rs.id,
		DurationUS: ri.wallUS,
		Pops:       pops,
		Host:       q.rs.c.Addr(),
		WireUS:     wire,
		Sub:        sub,
	})
}

func (q *remoteSearcher) Search(ctx context.Context, req shard.SearchReq) (shard.SearchResp, error) {
	resp, ri, err := q.rs.c.Search(ctx, q.rs.id, req)
	q.traceRPC(ctx, ri, resp.Stats.NodesPopped)
	return resp, err
}

func (q *remoteSearcher) Leg(ctx context.Context, req shard.LegReq) (shard.LegResp, error) {
	resp, ri, err := q.rs.c.Leg(ctx, q.rs.id, req)
	q.traceRPC(ctx, ri, resp.Pops)
	return resp, err
}
