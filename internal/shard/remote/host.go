package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"road/internal/core"
	"road/internal/graph"
	"road/internal/obs"
	"road/internal/shard"
	"road/internal/snapshot"
	"road/internal/version"
)

// HostConfig configures a shard host.
type HostConfig struct {
	// SnapshotPrefix locates the deployment's persistent state: the
	// manifest at <prefix>.manifest, shard i's snapshot at <prefix>.i and
	// its identity sidecar at <prefix>.i.ids (same layout the router-side
	// ShardedDB writes, so a host can boot straight off a router-saved
	// deployment).
	SnapshotPrefix string
	// JournalPrefix locates shard i's write-ahead journal at <prefix>.i.
	JournalPrefix string
	// SyncJournal fsyncs every journal append before acknowledging.
	SyncJournal bool
	// Registry receives the host's metrics (nil: a private registry).
	Registry *obs.Registry
}

// hostShard is one served shard: the full local shard, its journal, and
// the host-side exclusion that orders applies against searches.
type hostShard struct {
	// mu is the host-side reader/writer exclusion: searches, legs, object
	// reads and state exports hold it shared; applies and snapshots hold
	// it exclusively.
	mu      sync.RWMutex
	s       *shard.Shard
	j       *snapshot.Journal
	baseSeq uint64 // journal seq the loaded snapshot covers

	// searchers pools per-session compute handles; Get/Put run under mu
	// (shared), satisfying NewLocalSearcher's exclusion requirement.
	searchers sync.Pool

	snapPath, sidecarPath string
}

// Host serves a subset of a deployment's shards over HTTP: the compute
// surface the Fleet's remote shards call, plus state export, health and
// snapshot administration.
type Host struct {
	cfg    HostConfig
	m      *shard.Manifest
	shards map[int]*hostShard
	ids    []int // sorted owned shard IDs
	mux    *http.ServeMux
	reg    *obs.Registry
	start  time.Time

	applied  *obs.Counter
	searches *obs.Counter

	// Host-side cost breakdown, binned with the same layouts the router
	// uses so the two /metrics expositions compare series-for-series.
	rpcSearch     *obs.Histogram // compute inside Search RPCs
	rpcLeg        *obs.Histogram // compute inside Leg RPCs
	rpcApply      *obs.Histogram // compute inside Apply RPCs (post-journal)
	queueWait     *obs.Histogram // wait for the shard lock + a searcher
	journalAppend *obs.Histogram // journal append incl. fsync when enabled
	searchPops    *obs.Histogram
	snapshots     *obs.Counter
}

func sidecarPath(prefix string, i int) string { return fmt.Sprintf("%s.%d.ids", prefix, i) }
func snapPath(prefix string, i int) string    { return fmt.Sprintf("%s.%d", prefix, i) }
func journalPath(prefix string, i int) string { return fmt.Sprintf("%s.%d", prefix, i) }
func manifestPath(prefix string) string       { return prefix + ".manifest" }
func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// OpenHost boots a host for the given shard IDs: manifest, snapshots,
// identity sidecars (falling back to the manifest's maps when absent —
// a deployment the router just saved has exact ones), journal replay,
// then a full derived-state refresh and shortcut warm-up.
func OpenHost(ids []int, cfg HostConfig) (*Host, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("remote: host must own at least one shard")
	}
	m := &shard.Manifest{}
	if err := readJSONFile(manifestPath(cfg.SnapshotPrefix), m); err != nil {
		return nil, fmt.Errorf("remote: reading manifest: %w", err)
	}

	frameworks := make(map[int]*core.Framework, len(ids))
	idents := make(map[int]*shard.ShardManifest, len(ids))
	baseSeqs := make(map[int]uint64, len(ids))
	for _, id := range ids {
		f, baseSeq, err := snapshot.LoadFile(snapPath(cfg.SnapshotPrefix, id))
		if err != nil {
			return nil, fmt.Errorf("remote: shard %d snapshot: %w", id, err)
		}
		frameworks[id] = f
		baseSeqs[id] = baseSeq
		sm := &shard.ShardManifest{}
		switch err := readJSONFile(sidecarPath(cfg.SnapshotPrefix, id), sm); {
		case err == nil:
			idents[id] = sm
		case os.IsNotExist(err):
			// AssembleHostShards falls back to the manifest's maps.
		default:
			return nil, fmt.Errorf("remote: shard %d identity sidecar: %w", id, err)
		}
	}
	assembled, err := shard.AssembleHostShards(m, frameworks, idents)
	if err != nil {
		return nil, err
	}

	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	h := &Host{
		cfg:      cfg,
		m:        m,
		shards:   make(map[int]*hostShard, len(ids)),
		ids:      append([]int(nil), ids...),
		reg:      reg,
		start:    time.Now(),
		applied:  reg.Counter("road_host_ops_applied_total", "", "Mutations applied by this shard host."),
		searches: reg.Counter("road_host_searches_total", "", "Search/leg RPCs served by this shard host."),
		rpcSearch: reg.Histogram("road_host_rpc_seconds", `rpc="search"`,
			"Host-side compute per RPC, by RPC kind.", obs.LatencyBuckets),
		rpcLeg: reg.Histogram("road_host_rpc_seconds", `rpc="leg"`,
			"Host-side compute per RPC, by RPC kind.", obs.LatencyBuckets),
		rpcApply: reg.Histogram("road_host_rpc_seconds", `rpc="apply"`,
			"Host-side compute per RPC, by RPC kind.", obs.LatencyBuckets),
		queueWait: reg.Histogram("road_host_queue_seconds", "",
			"Wait for the shard lock and a pooled searcher before compute starts.", obs.LatencyBuckets),
		journalAppend: reg.Histogram("road_host_journal_append_seconds", "",
			"Write-ahead journal append time (includes fsync when -journal-sync).", obs.LatencyBuckets),
		searchPops: reg.Histogram("road_host_search_pops", "",
			"Heap pops (settled nodes) per search RPC.", obs.PopsBuckets),
		snapshots: reg.Counter("road_host_snapshots_total", "", "Per-shard snapshots written by this host."),
	}
	sort.Ints(h.ids)
	version.Register(reg)
	reg.Gauge("road_host_uptime_seconds", "", "Seconds since the shard host started.",
		func() float64 { return time.Since(h.start).Seconds() })

	for _, id := range h.ids {
		s := assembled[id]
		j, err := snapshot.OpenJournal(journalPath(cfg.JournalPrefix, id))
		if err != nil {
			h.closeJournals()
			return nil, fmt.Errorf("remote: shard %d journal: %w", id, err)
		}
		j.SyncEachAppend = cfg.SyncJournal
		if err := j.CheckBase(s.F, baseSeqs[id]); err != nil {
			j.Close()
			h.closeJournals()
			return nil, fmt.Errorf("remote: shard %d: %w", id, err)
		}
		// Replay post-snapshot entries. An op that fails here failed
		// identically when first applied (it was journaled before being
		// applied), so op errors are not fatal; corruption is.
		replayErr := j.Entries(baseSeqs[id], func(seq uint64, op snapshot.Op) error {
			if err := s.ReplayApply(op); err != nil {
				// An op that fails here failed identically when first
				// applied (it was journaled before being applied); only an
				// integrity violation means the journal and snapshot have
				// truly diverged.
				if errors.Is(err, shard.ErrIntegrity) {
					return fmt.Errorf("replaying seq %d: %w", seq, err)
				}
			}
			return nil
		})
		if replayErr != nil {
			j.Close()
			h.closeJournals()
			return nil, fmt.Errorf("remote: shard %d replay: %w", id, replayErr)
		}
		j.EnsureSeq(baseSeqs[id])
		if err := j.BindBase(s.F, baseSeqs[id]); err != nil {
			j.Close()
			h.closeJournals()
			return nil, fmt.Errorf("remote: shard %d: %w", id, err)
		}
		s.RefreshDerived()
		h.shards[id] = &hostShard{
			s:           s,
			j:           j,
			baseSeq:     baseSeqs[id],
			snapPath:    snapPath(cfg.SnapshotPrefix, id),
			sidecarPath: sidecarPath(cfg.SnapshotPrefix, id),
		}
		hs := h.shards[id]
		hs.searchers.New = func() any { return hs.s.NewLocalSearcher() }
	}
	h.registerJournalGauges()
	h.buildMux()
	return h, nil
}

// registerJournalGauges exposes per-shard journal and snapshot-base
// series. Closures read under the shard lock so a scrape racing
// shutdown (Close nils the journal) stays safe.
func (h *Host) registerJournalGauges() {
	journalVec := func(get func(*hostShard) float64) func() []obs.Sample {
		return func() []obs.Sample {
			out := make([]obs.Sample, 0, len(h.ids))
			for _, id := range h.ids {
				hs := h.shards[id]
				hs.mu.RLock()
				if hs.j != nil {
					out = append(out, obs.Sample{
						Labels: `shard="` + strconv.Itoa(id) + `"`,
						Value:  get(hs),
					})
				}
				hs.mu.RUnlock()
			}
			return out
		}
	}
	h.reg.CollectorVec("road_host_journal_seq", "gauge",
		"Write-ahead journal sequence per served shard.",
		journalVec(func(hs *hostShard) float64 { return float64(hs.j.LastSeq()) }))
	h.reg.CollectorVec("road_host_journal_bytes", "gauge",
		"Write-ahead journal size in bytes per served shard.",
		journalVec(func(hs *hostShard) float64 { return float64(hs.j.Size()) }))
	h.reg.CollectorVec("road_host_snapshot_base_seq", "gauge",
		"Journal sequence the on-disk snapshot covers, per served shard.",
		journalVec(func(hs *hostShard) float64 { return float64(hs.baseSeq) }))
}

// Handler returns the host's HTTP surface.
func (h *Host) Handler() http.Handler { return h.mux }

// ShardIDs returns the shard IDs this host serves (sorted).
func (h *Host) ShardIDs() []int { return append([]int(nil), h.ids...) }

// Close closes the host's journals. Callers stop the HTTP server first.
func (h *Host) Close() error { return h.closeJournals() }

func (h *Host) closeJournals() error {
	var first error
	for _, hs := range h.shards {
		hs.mu.Lock() // excludes metric scrapes reading hs.j
		if hs.j != nil {
			if err := hs.j.Close(); err != nil && first == nil {
				first = err
			}
			hs.j = nil
		}
		hs.mu.Unlock()
	}
	return first
}

func (h *Host) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.handleHealth)
	mux.HandleFunc("GET /state/{id}", h.handleState)
	mux.HandleFunc("POST /shard/{id}/search", h.handleSearch)
	mux.HandleFunc("POST /shard/{id}/leg", h.handleLeg)
	mux.HandleFunc("POST /shard/{id}/apply", h.handleApply)
	mux.HandleFunc("GET /shard/{id}/object/{lo}", h.handleObject)
	mux.HandleFunc("POST /admin/snapshot", h.handleSnapshot)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		h.reg.Write(w)
	})
	h.mux = mux
}

// shardOf resolves the {id} path value to a served shard, or answers 404
// (a non-200 status is a transport-level error to the client, which is
// right: a request for a shard this host does not own means the fleet's
// ownership map and the host disagree).
func (h *Host) shardOf(w http.ResponseWriter, r *http.Request) (*hostShard, int) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad shard id", http.StatusBadRequest)
		return nil, 0
	}
	hs := h.shards[id]
	if hs == nil {
		http.Error(w, fmt.Sprintf("shard %d not served by this host", id), http.StatusNotFound)
		return nil, 0
	}
	return hs, id
}

// traced reports whether the RPC carries trace context (the client sets
// TraceHeader only when its own context does).
func traced(r *http.Request) bool { return r.Header.Get(TraceHeader) != "" }

// hostLeg builds one host-side trace leg.
func hostLeg(name obs.LegName, shard int, d time.Duration) obs.Leg {
	return obs.Leg{Name: name, Shard: shard, DurationUS: d.Microseconds()}
}

// writeEnvelope answers one RPC: the typed response (already wire-encoded
// — no ±Inf), the error mapped to its wire code, and the compute time.
func writeEnvelope(w http.ResponseWriter, resp any, err error, compute time.Duration) {
	writeEnvelopeLegs(w, resp, err, compute, nil)
}

// writeEnvelopeLegs is writeEnvelope plus the host-side trace legs of a
// traced call.
func writeEnvelopeLegs(w http.ResponseWriter, resp any, err error, compute time.Duration, legs []obs.Leg) {
	env := envelope{ComputeUS: compute.Microseconds(), Legs: legs}
	if resp != nil {
		raw, mErr := json.Marshal(resp)
		if mErr != nil {
			http.Error(w, mErr.Error(), http.StatusInternalServerError)
			return
		}
		env.Resp = raw
	}
	if err != nil {
		env.Err, env.Msg = encodeErr(err)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(env)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (h *Host) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Shards: h.ids, Seqs: make(map[int]uint64, len(h.ids)), Version: version.Version}
	for id, hs := range h.shards {
		resp.Seqs[id] = hs.j.LastSeq()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (h *Host) handleState(w http.ResponseWriter, r *http.Request) {
	hs, _ := h.shardOf(w, r)
	if hs == nil {
		return
	}
	hs.mu.RLock()
	st := hs.s.ExportState()
	st.Shards = h.m.Shards
	st.Seed = h.m.Seed
	st.NumNodes = h.m.NumNodes
	st.NextObj = h.m.NextObj
	st.Isolated = h.m.Isolated
	st.Seq = hs.j.LastSeq()
	st.JournalBytes = hs.j.Size()
	st.Fingerprint = fmt.Sprintf("%016x", snapshot.Fingerprint(hs.s.F))
	hs.mu.RUnlock()
	encState(st)
	writeEnvelope(w, st, nil, 0)
}

func (h *Host) handleSearch(w http.ResponseWriter, r *http.Request) {
	hs, id := h.shardOf(w, r)
	if hs == nil {
		return
	}
	var req shard.SearchReq
	if !decodeBody(w, r, &req) {
		return
	}
	h.searches.Inc()
	arrive := time.Now()
	hs.mu.RLock()
	q := hs.searchers.Get().(shard.Searcher)
	queue := time.Since(arrive)
	start := time.Now()
	resp, err := q.Search(r.Context(), req)
	compute := time.Since(start)
	// Serialize before returning the searcher: Watched may alias its
	// scratch, which the next Search on this searcher overwrites.
	env := struct {
		resp shard.SearchResp
		err  error
	}{resp, err}
	raw, mErr := json.Marshal(env.resp)
	hs.searchers.Put(q)
	hs.mu.RUnlock()
	h.queueWait.Observe(queue.Seconds())
	h.rpcSearch.Observe(compute.Seconds())
	h.searchPops.Observe(float64(resp.Stats.NodesPopped))
	if mErr != nil {
		http.Error(w, mErr.Error(), http.StatusInternalServerError)
		return
	}
	out := envelope{Resp: raw, ComputeUS: compute.Microseconds()}
	if traced(r) {
		searchLeg := hostLeg(obs.LegHostSearch, id, compute)
		searchLeg.Pops = resp.Stats.NodesPopped
		searchLeg.Reads = resp.Stats.IO.Reads
		out.Legs = []obs.Leg{hostLeg(obs.LegHostQueue, id, queue), searchLeg}
	}
	if env.err != nil {
		out.Err, out.Msg = encodeErr(env.err)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (h *Host) handleLeg(w http.ResponseWriter, r *http.Request) {
	hs, id := h.shardOf(w, r)
	if hs == nil {
		return
	}
	var req shard.LegReq
	if !decodeBody(w, r, &req) {
		return
	}
	h.searches.Inc()
	arrive := time.Now()
	hs.mu.RLock()
	q := hs.searchers.Get().(shard.Searcher)
	queue := time.Since(arrive)
	start := time.Now()
	resp, err := q.Leg(r.Context(), req)
	compute := time.Since(start)
	hs.searchers.Put(q)
	hs.mu.RUnlock()
	h.queueWait.Observe(queue.Seconds())
	h.rpcLeg.Observe(compute.Seconds())
	encLegResp(&resp)
	var legs []obs.Leg
	if traced(r) {
		legLeg := hostLeg(obs.LegHostLeg, id, compute)
		legLeg.Pops = resp.Pops
		legs = []obs.Leg{hostLeg(obs.LegHostQueue, id, queue), legLeg}
	}
	writeEnvelopeLegs(w, &resp, err, compute, legs)
}

func (h *Host) handleApply(w http.ResponseWriter, r *http.Request) {
	hs, id := h.shardOf(w, r)
	if hs == nil {
		return
	}
	var op snapshot.Op
	if !decodeBody(w, r, &op) {
		return
	}
	arrive := time.Now()
	hs.mu.Lock()
	queue := time.Since(arrive)
	// Write-ahead: the op is durable before it is applied or
	// acknowledged, so a host crash between journal and reply replays it
	// on boot and the router's Readopt reconciles the lost ack.
	jStart := time.Now()
	if _, err := hs.j.Append(op); err != nil {
		hs.mu.Unlock()
		http.Error(w, "journal append: "+err.Error(), http.StatusInternalServerError)
		return
	}
	journal := time.Since(jStart)
	start := time.Now()
	rep, err := hs.s.HostApply(op)
	compute := time.Since(start)
	rep.Seq = hs.j.LastSeq()
	rep.JournalBytes = hs.j.Size()
	hs.mu.Unlock()
	h.applied.Inc()
	h.queueWait.Observe(queue.Seconds())
	h.journalAppend.Observe(journal.Seconds())
	h.rpcApply.Observe(compute.Seconds())
	var legs []obs.Leg
	if traced(r) {
		legs = []obs.Leg{
			hostLeg(obs.LegHostQueue, id, queue),
			hostLeg(obs.LegHostJournal, id, journal),
			hostLeg(obs.LegHostApply, id, compute),
		}
	}
	if err != nil {
		writeEnvelopeLegs(w, nil, err, compute, legs)
		return
	}
	encDerived(rep.Derived)
	writeEnvelopeLegs(w, &rep, nil, compute, legs)
}

func (h *Host) handleObject(w http.ResponseWriter, r *http.Request) {
	hs, _ := h.shardOf(w, r)
	if hs == nil {
		return
	}
	lo, err := strconv.Atoi(r.PathValue("lo"))
	if err != nil {
		http.Error(w, "bad object id", http.StatusBadRequest)
		return
	}
	hs.mu.RLock()
	o, ok := hs.s.F.Objects().Get(graph.ObjectID(lo))
	hs.mu.RUnlock()
	writeEnvelope(w, &objectResponse{Object: o, OK: ok}, nil, 0)
}

// SnapshotAll snapshots every served shard — framework image plus
// identity sidecar, staged and renamed — and rotates its journal down to
// the entries the new snapshot already covers. The router's fleet-wide
// snapshot and the host's own shutdown path both funnel here.
func (h *Host) SnapshotAll() error {
	for _, id := range h.ids {
		hs := h.shards[id]
		hs.mu.Lock()
		err := hs.snapshotLocked()
		hs.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", id, err)
		}
		h.snapshots.Inc()
	}
	return nil
}

func (h *Host) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if err := h.SnapshotAll(); err != nil {
		writeEnvelope(w, nil, err, 0)
		return
	}
	writeEnvelope(w, map[string]bool{"ok": true}, nil, 0)
}

func (hs *hostShard) snapshotLocked() error {
	upTo := hs.j.LastSeq()
	staging := hs.snapPath + ".saving"
	if err := snapshot.SaveFile(hs.s.F, upTo, staging); err != nil {
		return err
	}
	sidecar, err := json.Marshal(hs.s.IdentityManifest())
	if err != nil {
		os.Remove(staging)
		return err
	}
	sideStaging := hs.sidecarPath + ".saving"
	if err := os.WriteFile(sideStaging, sidecar, 0o644); err != nil {
		os.Remove(staging)
		return err
	}
	if err := os.Rename(staging, hs.snapPath); err != nil {
		os.Remove(staging)
		os.Remove(sideStaging)
		return err
	}
	if err := os.Rename(sideStaging, hs.sidecarPath); err != nil {
		os.Remove(sideStaging)
		return err
	}
	hs.baseSeq = upTo
	return hs.j.Rotate(hs.s.F, upTo)
}
