// Package remote moves shard compute out of process. A Host owns a
// subset of a sharded deployment's shards — full local shards with
// frameworks, journals and snapshots — and exposes their query/mutation/
// maintenance surface over HTTP/JSON. A Fleet is the router side: it
// discovers which host serves which shard, adopts each shard's exported
// state into a router of mirror shards (shard.AssembleRemote), and backs
// every mirror with a RemoteShard whose calls are RPCs. The existing
// Session/Router machinery runs unmodified over either deployment shape;
// only compute crosses the wire.
//
// Wire conventions:
//
//   - Every RPC answers 200 with an envelope {resp, err, msg, compute_us}.
//     Partial-result errors (budget exhaustion, cancellation) carry BOTH
//     the valid prefix and an error code, mirroring the in-process
//     contract. Non-200 statuses mean the exchange itself failed (unknown
//     shard, undecodable body) and are treated as transport errors.
//   - JSON cannot carry ±Inf, so the wire encodes +Inf distances as -1
//     (distances are non-negative, making -1 unambiguous). Translation
//     happens ONLY in this package: shard-package types always hold real
//     infinities in process.
package remote

import (
	"encoding/json"
	"errors"
	"math"

	"road/internal/apierr"
	"road/internal/graph"
	"road/internal/obs"
	"road/internal/shard"
	"road/internal/snapshot"
)

// TraceHeader is the request header that carries trace context across
// the wire. Its value is the request ID (or "1" for an anonymous
// trace); presence alone tells the host to time its legs.
const TraceHeader = "X-Road-Trace"

// envelope is the uniform RPC response wrapper.
type envelope struct {
	Resp json.RawMessage `json:"resp,omitempty"`
	Err  string          `json:"err,omitempty"`
	Msg  string          `json:"msg,omitempty"`
	// ComputeUS is the host-side time spent inside the shard call, so the
	// client can attribute wire time (total − compute) separately.
	ComputeUS int64 `json:"compute_us,omitempty"`
	// Legs is the host-side timing breakdown of a traced call (queue
	// wait, search compute, journal append …); the client nests it under
	// the rpc hop's Sub so &trace=1 shows the cross-process tree.
	Legs []obs.Leg `json:"legs,omitempty"`
}

// healthResponse is GET /healthz: the shards this host serves and their
// journal sequences, plus the build version for fleet diagnostics.
type healthResponse struct {
	Shards  []int          `json:"shards"`
	Seqs    map[int]uint64 `json:"seqs,omitempty"`
	Version string         `json:"version,omitempty"`
}

// objectResponse is GET /shard/{id}/object/{lo}.
type objectResponse struct {
	Object graph.Object `json:"object"`
	OK     bool         `json:"ok"`
}

// --- Typed error codes ---
//
// The host encodes an op or query error as a stable code plus its
// message; the client decodes the code back to the SAME apierr sentinel,
// so errors.Is works identically across the process boundary.

var wireCodes = []struct {
	err  error
	code string
}{
	{apierr.ErrCanceled, "canceled"},
	{apierr.ErrBudgetExhausted, "budget_exhausted"},
	{apierr.ErrInvalidRequest, "invalid_request"},
	{apierr.ErrNoSuchNode, "no_such_node"},
	{apierr.ErrNoSuchEdge, "no_such_edge"},
	{apierr.ErrNoSuchObject, "no_such_object"},
	{apierr.ErrEdgeClosed, "edge_closed"},
	{apierr.ErrEdgeNotClosed, "edge_not_closed"},
	{apierr.ErrAttrMismatch, "attr_mismatch"},
	{apierr.ErrUnreachable, "unreachable"},
	{apierr.ErrCrossShardRoad, "cross_shard_road"},
	{apierr.ErrPathsNotStored, "paths_not_stored"},
	{apierr.ErrShardUnavailable, "shard_unavailable"},
	{shard.ErrIntegrity, "integrity"},
	{snapshot.ErrUnknownOp, "unknown_op"},
}

// codeOther marks errors with no sentinel identity; they decode to a
// plain error carrying the host's message.
const codeOther = "error"

func encodeErr(err error) (code, msg string) {
	for _, wc := range wireCodes {
		if errors.Is(err, wc.err) {
			return wc.code, err.Error()
		}
	}
	return codeOther, err.Error()
}

// wireError is a decoded remote error: the host's full message with the
// sentinel's identity restored for errors.Is.
type wireError struct {
	sentinel error
	msg      string
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

func decodeErr(code, msg string) error {
	for _, wc := range wireCodes {
		if code == wc.code {
			return &wireError{sentinel: wc.err, msg: msg}
		}
	}
	return errors.New(msg)
}

// --- ±Inf translation ---

// wireInf encodes +Inf on the wire.
const wireInf = -1

func encDist(v float64) float64 {
	if math.IsInf(v, 1) {
		return wireInf
	}
	return v
}

func decDist(v float64) float64 {
	if v < 0 {
		return math.Inf(1)
	}
	return v
}

func encDists(d []float64) {
	for i, v := range d {
		d[i] = encDist(v)
	}
}

func decDists(d []float64) {
	for i, v := range d {
		d[i] = decDist(v)
	}
}

// encLegResp / decLegResp translate the two fields of a leg result that
// may be infinite. The host encodes in place (both are response-owned).
func encLegResp(r *shard.LegResp) {
	r.Dist = encDist(r.Dist)
	encDists(r.Dists)
}

func decLegResp(r *shard.LegResp) {
	r.Dist = decDist(r.Dist)
	decDists(r.Dists)
}

// encDerived / decDerived translate a DerivedUpdate's distance arrays
// (endpoint distances and the nearest-border array may hold +Inf for
// unreachable nodes; border-table arcs are finite by construction).
func encDerived(u *shard.DerivedUpdate) {
	if u == nil {
		return
	}
	encDists(u.DU)
	encDists(u.DV)
	encDists(u.BorderDist)
}

func decDerived(u *shard.DerivedUpdate) {
	if u == nil {
		return
	}
	decDists(u.DU)
	decDists(u.DV)
	decDists(u.BorderDist)
}

// encState / decState translate an exported ShardState's nearest-border
// array, the only per-node distance field it carries.
func encState(st *shard.ShardState) { encDists(st.BorderDist) }
func decState(st *shard.ShardState) { decDists(st.BorderDist) }
