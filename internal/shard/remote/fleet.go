package remote

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"road/internal/obs"
	"road/internal/shard"
)

// FleetConfig configures the router side of an out-of-process
// deployment.
type FleetConfig struct {
	// Registry receives the road_remote_* metric families (nil: private).
	Registry *obs.Registry
	// HealthInterval is the per-host probe period (default 1s).
	HealthInterval time.Duration
	// DownAfter is the number of consecutive failed probes that mark a
	// host down (default 2).
	DownAfter int
	// Logf receives health transitions (default log.Printf).
	Logf func(format string, args ...any)
}

// Fleet is a set of shard hosts assembled into one Router of mirror
// shards, plus the health checker that marks hosts down on sustained
// probe failure and re-adopts them — snapshot-fingerprint and journal-seq
// checked — when they come back, without losing the rest of the fleet.
type Fleet struct {
	cfg    FleetConfig
	r      *shard.Router
	hosts  []*HostClient
	owners map[int]*HostClient // shard ID -> serving host
	m      *clientMetrics

	// lctx is the fleet's lifecycle context: derived from ConnectFleet's
	// ctx with its cancellation severed (the connect deadline must not
	// kill the health loops) and canceled by Close. Background RPCs the
	// Store interface gives no per-call context for — health probes,
	// re-adoption state fetches, interface-shaped Apply/Object — run
	// under it so Close reliably unsticks them.
	lctx   context.Context
	cancel context.CancelFunc

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// ConnectFleet discovers which host serves which shard (via /healthz),
// fetches every shard's exported state, assembles the mirror router and
// starts the health loops. Every shard of the deployment must be served
// by exactly one host.
func ConnectFleet(ctx context.Context, addrs []string, cfg FleetConfig) (*Fleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("remote: no shard hosts given")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	m := newClientMetrics(cfg.Registry)
	lctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &Fleet{
		cfg:    cfg,
		owners: make(map[int]*HostClient),
		m:      m,
		lctx:   lctx,
		cancel: cancel,
		stopc:  make(chan struct{}),
	}
	connected := false
	defer func() {
		if !connected {
			cancel()
		}
	}()
	for _, addr := range addrs {
		c := NewHostClient(addr, m)
		hr, err := c.Health(ctx)
		if err != nil {
			return nil, fmt.Errorf("remote: host %s: %w", addr, err)
		}
		for _, id := range hr.Shards {
			if prev, dup := f.owners[id]; dup {
				return nil, fmt.Errorf("remote: shard %d served by both %s and %s", id, prev.Addr(), addr)
			}
			f.owners[id] = c
		}
		f.hosts = append(f.hosts, c)
	}
	if len(f.owners) == 0 {
		return nil, fmt.Errorf("remote: hosts serve no shards")
	}

	states := make([]*shard.ShardState, len(f.owners))
	remotes := make([]shard.RemoteShard, len(f.owners))
	for id := 0; id < len(f.owners); id++ {
		c, ok := f.owners[id]
		if !ok {
			return nil, fmt.Errorf("remote: shard %d served by no host (%d shards discovered)", id, len(f.owners))
		}
		st, err := c.State(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("remote: shard %d state from %s: %w", id, c.Addr(), err)
		}
		states[id] = st
		remotes[id] = &remoteShard{id: id, c: c, lctx: lctx}
	}
	r, err := shard.AssembleRemote(states, remotes)
	if err != nil {
		return nil, err
	}
	f.r = r

	for _, c := range f.hosts {
		c := c
		m.reg.Gauge("road_remote_host_up", hostLabel(c.Addr()),
			"1 when the shard host answers health probes, 0 while marked down.",
			func() float64 {
				if c.Down() {
					return 0
				}
				return 1
			})
		f.wg.Add(1)
		go f.watch(c)
	}
	connected = true
	return f, nil
}

// Context returns the fleet's lifecycle context: alive until Close,
// carrying ConnectFleet's values but not its deadline. Use it for
// background work on the fleet's behalf when no per-call context exists.
func (f *Fleet) Context() context.Context { return f.lctx }

// Router returns the assembled mirror router. Safe for the same
// concurrent use as an in-process router.
func (f *Fleet) Router() *shard.Router { return f.r }

// Hosts returns the fleet's host clients.
func (f *Fleet) Hosts() []*HostClient { return f.hosts }

// ShardsOf returns the shard IDs host c serves, ascending.
func (f *Fleet) ShardsOf(c *HostClient) []int {
	var ids []int
	for id := 0; id < len(f.owners); id++ {
		if f.owners[id] == c {
			ids = append(ids, id)
		}
	}
	return ids
}

// HostStatus is one host's health and RPC-latency summary for /fleet.
type HostStatus struct {
	Addr   string `json:"addr"`
	Up     bool   `json:"up"`
	Shards []int  `json:"shards"`
	RPCs   uint64 `json:"rpcs"`
	Errors uint64 `json:"errors"`
	P50US  int64  `json:"p50_us"`
	P95US  int64  `json:"p95_us"`
	P99US  int64  `json:"p99_us"`
}

// FleetStatus summarizes the fleet for roadd's /fleet endpoint.
type FleetStatus struct {
	Hosts     []HostStatus `json:"hosts"`
	Hedges    uint64       `json:"hedges"`
	HedgeWins uint64       `json:"hedge_wins"`
	Readopts  uint64       `json:"readopts"`
}

// Status reports per-host health, RPC volume, error counts and latency
// percentiles (from the same histograms that calibrate hedging), plus
// fleet-wide hedge and re-adoption counters.
func (f *Fleet) Status() FleetStatus {
	st := FleetStatus{
		Hedges:    f.m.hedges.Value(),
		HedgeWins: f.m.hedgeWins.Value(),
		Readopts:  f.m.readopts.Value(),
	}
	usOf := func(h *obs.Histogram, q float64) int64 {
		return int64(h.Quantile(q) * 1e6)
	}
	for _, c := range f.hosts {
		hs := HostStatus{
			Addr:   c.Addr(),
			Up:     !c.Down(),
			Shards: f.ShardsOf(c),
			RPCs:   c.hist.Count(),
			Errors: c.errs.Value(),
		}
		if hs.RPCs > 0 {
			hs.P50US = usOf(c.hist, 0.50)
			hs.P95US = usOf(c.hist, 0.95)
			hs.P99US = usOf(c.hist, 0.99)
		}
		st.Hosts = append(st.Hosts, hs)
	}
	return st
}

// Snapshot asks every host to snapshot its shards and rotate journals.
func (f *Fleet) Snapshot(ctx context.Context) error {
	for _, c := range f.hosts {
		if err := c.Snapshot(ctx); err != nil {
			return fmt.Errorf("remote: snapshot on %s: %w", c.Addr(), err)
		}
	}
	return nil
}

// Close stops the health loops and cancels the fleet's lifecycle
// context; background RPCs abort, in-flight caller RPCs finish on their
// own timeouts.
func (f *Fleet) Close() {
	f.stopOnce.Do(func() {
		close(f.stopc)
		f.cancel()
	})
	f.wg.Wait()
}

// watch is one host's health loop: DownAfter consecutive probe failures
// mark the host down (callers fail fast with ErrShardUnavailable instead
// of burning timeouts); the first successful probe afterwards triggers
// re-adoption, and only a fully reconciled host serves again.
func (f *Fleet) watch(c *HostClient) {
	defer f.wg.Done()
	fails := 0
	t := time.NewTicker(f.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stopc:
			return
		case <-t.C:
		}
		_, err := c.Health(f.lctx)
		if err != nil {
			fails++
			if fails >= f.cfg.DownAfter && !c.Down() {
				c.down.Store(true)
				f.cfg.Logf("road: shard host %s marked down after %d failed probes: %v", c.Addr(), fails, err)
			}
			continue
		}
		fails = 0
		if !c.Down() {
			continue
		}
		if err := f.readopt(c); err != nil {
			f.cfg.Logf("road: shard host %s answered probes but re-adoption failed: %v", c.Addr(), err)
			continue
		}
		c.down.Store(false)
		f.m.readopts.Inc()
		f.cfg.Logf("road: shard host %s re-adopted", c.Addr())
	}
}

// readopt reconciles a recovered host's shards into the router: fetch
// each shard's exported state (the host has replayed its journal, so the
// state reflects every op it durably logged — including ones whose acks
// the router never saw) and fold it into the mirror under full exclusion.
func (f *Fleet) readopt(c *HostClient) error {
	ids := f.ShardsOf(c)
	states := make([]*shard.ShardState, 0, len(ids))
	for _, id := range ids {
		st, err := c.State(f.lctx, id)
		if err != nil {
			return fmt.Errorf("shard %d state: %w", id, err)
		}
		states = append(states, st)
	}
	return f.r.Exclusive(func() error {
		for i, id := range ids {
			if err := f.r.Readopt(id, states[i]); err != nil {
				return err
			}
		}
		return nil
	})
}
