// Package storage is an EVALUATION ARTIFACT: it simulates the disk
// environment of the paper's evaluation (§6) — fixed-size 4 KB pages
// behind an LRU buffer of 50 pages, with logical-read, page-fault and
// write accounting. Index structures register variable-size records into
// a Layout that packs them onto pages (in a caller-chosen order — the
// CCAM-style connectivity clustering of [18] is approximated by Hilbert
// ordering of node coordinates, see ClusterNodes), and route every
// record access through a Store so the I/O metrics the paper reports
// (pages read per query, index size in pages) come out of the same
// machinery for every competing approach.
//
// The serving query path does NOT come through here: sessions traverse
// the CSR slabs in internal/core/csr.go, which bake the same overlay
// into flat arrays with no page indirection. Only report-mode framework
// queries (the paper's experiments, roadbench figures) and snapshot
// sizing still consult the simulated store — demoting it from the hot
// path is what the CSR overhaul was for.
package storage

import (
	"fmt"
	"sort"

	"road/internal/geom"
	"road/internal/graph"
)

// PageSize is the simulated disk page size in bytes (4 KB, as in §6).
const PageSize = 4096

// DefaultBufferPages is the evaluation's LRU buffer capacity (50 pages).
const DefaultBufferPages = 50

// PageID identifies a simulated disk page.
type PageID = int64

// Stats accumulates I/O counters for one store.
type Stats struct {
	// Reads counts logical page reads (buffer hits + faults).
	Reads int64
	// Faults counts reads that missed the buffer (physical I/O).
	Faults int64
	// Writes counts page writes (always physical; write-through).
	Writes int64
}

// Sub returns the difference s − t, for measuring an interval.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Faults: s.Faults - t.Faults, Writes: s.Writes - t.Writes}
}

// lruBuffer is a fixed-capacity LRU page cache.
type lruBuffer struct {
	capacity int
	entries  map[PageID]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
}

type lruNode struct {
	page       PageID
	prev, next *lruNode
}

func newLRU(capacity int) *lruBuffer {
	return &lruBuffer{capacity: capacity, entries: make(map[PageID]*lruNode, capacity)}
}

// touch records an access to page p, returning true on a hit.
// On a miss the page is admitted, evicting the LRU page when full.
func (b *lruBuffer) touch(p PageID) bool {
	if n, ok := b.entries[p]; ok {
		b.moveToFront(n)
		return true
	}
	if b.capacity <= 0 {
		return false
	}
	if len(b.entries) >= b.capacity {
		evict := b.tail
		b.unlink(evict)
		delete(b.entries, evict.page)
	}
	n := &lruNode{page: p}
	b.entries[p] = n
	b.pushFront(n)
	return false
}

func (b *lruBuffer) contains(p PageID) bool {
	_, ok := b.entries[p]
	return ok
}

func (b *lruBuffer) reset() {
	b.entries = make(map[PageID]*lruNode, b.capacity)
	b.head, b.tail = nil, nil
}

func (b *lruBuffer) pushFront(n *lruNode) {
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

func (b *lruBuffer) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
}

func (b *lruBuffer) moveToFront(n *lruNode) {
	if b.head == n {
		return
	}
	b.unlink(n)
	b.pushFront(n)
}

// Store is a simulated paged disk with an LRU buffer and I/O counters.
type Store struct {
	buf   *lruBuffer
	stats Stats
	pages PageID // number of allocated pages
}

// NewStore returns a store buffering up to bufferPages pages
// (DefaultBufferPages when 0).
func NewStore(bufferPages int) *Store {
	if bufferPages == 0 {
		bufferPages = DefaultBufferPages
	}
	return &Store{buf: newLRU(bufferPages)}
}

// Capacity returns the buffer capacity in pages, so a snapshot can record
// the store configuration and rebuild an equivalent store on load.
func (s *Store) Capacity() int { return s.buf.capacity }

// Allocated returns the page allocation watermark (equals NumPages); a
// snapshot records it so a restored store hands out the same page IDs.
func (s *Store) Allocated() PageID { return s.pages }

// SetAllocated forces the allocation watermark during snapshot restore.
func (s *Store) SetAllocated(p PageID) { s.pages = p }

// Alloc reserves n fresh pages and returns the ID of the first.
func (s *Store) Alloc(n int) PageID {
	first := s.pages
	s.pages += PageID(n)
	return first
}

// NumPages returns the number of allocated pages (the index-size metric:
// NumPages × PageSize bytes).
func (s *Store) NumPages() int64 { return int64(s.pages) }

// SizeBytes returns the total allocated size in bytes.
func (s *Store) SizeBytes() int64 { return int64(s.pages) * PageSize }

// Read records a logical read of page p through the buffer.
func (s *Store) Read(p PageID) {
	s.stats.Reads++
	if !s.buf.touch(p) {
		s.stats.Faults++
	}
}

// Write records a write of page p (write-through: always physical).
// The written page is also admitted to the buffer.
func (s *Store) Write(p PageID) {
	s.stats.Writes++
	s.buf.touch(p)
}

// Cached reports whether page p is currently buffered.
func (s *Store) Cached(p PageID) bool { return s.buf.contains(p) }

// Stats returns the accumulated counters.
func (s *Store) Stats() Stats { return s.stats }

// ResetStats zeroes the counters, keeping buffer contents.
func (s *Store) ResetStats() { s.stats = Stats{} }

// DropCache empties the buffer (the paper starts every query run with an
// empty cache) without touching counters.
func (s *Store) DropCache() { s.buf.reset() }

// Layout packs variable-size records onto consecutive pages of a Store and
// remembers which pages each record occupies. Records are laid out in the
// order Place is called; callers choose that order to control clustering.
type Layout struct {
	store   *Store
	first   PageID
	curPage PageID
	curUsed int
	spans   map[int64]span
	bytes   int64
}

type span struct {
	first PageID
	count int32
}

// NewLayout starts a layout on fresh pages of store.
func NewLayout(store *Store) *Layout {
	l := &Layout{store: store, spans: make(map[int64]span)}
	l.first = store.Alloc(1)
	l.curPage = l.first
	return l
}

// Place appends a record of size bytes under the given key and returns the
// first page it occupies. Records larger than a page span multiple pages;
// small records share pages. Size 0 records are rounded up to 1 byte so
// every record is addressable.
func (l *Layout) Place(key int64, size int) PageID {
	if size <= 0 {
		size = 1
	}
	if _, dup := l.spans[key]; dup {
		panic(fmt.Sprintf("storage: duplicate record key %d", key))
	}
	l.bytes += int64(size)
	if l.curUsed+size > PageSize && l.curUsed > 0 {
		// Does not fit in the remainder: start a new page.
		l.curPage = l.store.Alloc(1)
		l.curUsed = 0
	}
	first := l.curPage
	remaining := size - (PageSize - l.curUsed)
	pages := int32(1)
	for remaining > 0 {
		l.curPage = l.store.Alloc(1)
		l.curUsed = 0
		pages++
		remaining -= PageSize
	}
	l.curUsed += size
	for l.curUsed > PageSize {
		l.curUsed -= PageSize
	}
	l.spans[key] = span{first: first, count: pages}
	return first
}

// Read routes a read of the record under key through the store's buffer,
// touching every page the record spans. Unknown keys are a no-op (the
// Association Directory omits empty nodes/Rnets entirely).
func (l *Layout) Read(key int64) {
	sp, ok := l.spans[key]
	if !ok {
		return
	}
	for i := int32(0); i < sp.count; i++ {
		l.store.Read(sp.first + PageID(i))
	}
}

// Write routes a write of the record under key through the store.
// Unknown keys are a no-op.
func (l *Layout) Write(key int64) {
	sp, ok := l.spans[key]
	if !ok {
		return
	}
	for i := int32(0); i < sp.count; i++ {
		l.store.Write(sp.first + PageID(i))
	}
}

// Has reports whether a record was placed under key.
func (l *Layout) Has(key int64) bool {
	_, ok := l.spans[key]
	return ok
}

// Pages returns the number of pages spanned by the record under key
// (0 if absent).
func (l *Layout) Pages(key int64) int {
	return int(l.spans[key].count)
}

// Bytes returns the total record payload placed so far.
func (l *Layout) Bytes() int64 { return l.bytes }

// LayoutState is the explicit, serializable form of a Layout: every
// record span plus the append cursor, so a restored layout reproduces the
// exact simulated page placement — including where the next record will
// land — without re-deriving record sizes (which would force expensive
// reconstruction of the structures being sized).
type LayoutState struct {
	First   PageID
	CurPage PageID
	CurUsed int
	Bytes   int64
	Spans   []SpanState
}

// SpanState is one record's page span.
type SpanState struct {
	Key   int64
	First PageID
	Pages int32
}

// ExportState captures the layout for snapshotting, with spans sorted by
// key for deterministic encoding.
func (l *Layout) ExportState() *LayoutState {
	st := &LayoutState{First: l.first, CurPage: l.curPage, CurUsed: l.curUsed, Bytes: l.bytes}
	for key, sp := range l.spans {
		st.Spans = append(st.Spans, SpanState{Key: key, First: sp.first, Pages: sp.count})
	}
	sort.Slice(st.Spans, func(i, j int) bool { return st.Spans[i].Key < st.Spans[j].Key })
	return st
}

// RestoreLayout reassembles a layout on store from exported state,
// validating spans against the store's allocation watermark.
func RestoreLayout(store *Store, st *LayoutState) (*Layout, error) {
	l := &Layout{
		store:   store,
		first:   st.First,
		curPage: st.CurPage,
		curUsed: st.CurUsed,
		bytes:   st.Bytes,
		spans:   make(map[int64]span, len(st.Spans)),
	}
	if st.CurUsed < 0 || st.CurUsed > PageSize {
		return nil, fmt.Errorf("storage: layout cursor %d outside page", st.CurUsed)
	}
	if st.CurPage < 0 || st.CurPage >= store.Allocated() {
		return nil, fmt.Errorf("storage: layout cursor page %d beyond allocation %d", st.CurPage, store.Allocated())
	}
	for _, sp := range st.Spans {
		if sp.Pages <= 0 || sp.First < 0 || sp.First+PageID(sp.Pages) > store.Allocated() {
			return nil, fmt.Errorf("storage: record %d span [%d,+%d) beyond allocation %d",
				sp.Key, sp.First, sp.Pages, store.Allocated())
		}
		if _, dup := l.spans[sp.Key]; dup {
			return nil, fmt.Errorf("storage: duplicate record key %d in layout state", sp.Key)
		}
		l.spans[sp.Key] = span{first: sp.First, count: sp.Pages}
	}
	return l, nil
}

// ClusterNodes returns the graph's node IDs ordered by Hilbert rank of
// their coordinates — the storage order approximating CCAM's
// connectivity-clustered access method [18]: nodes adjacent on the map
// land on the same or neighbouring pages.
func ClusterNodes(g *graph.Graph) []graph.NodeID {
	bounds := g.Bounds()
	const order = 16
	type ranked struct {
		id   graph.NodeID
		rank uint64
	}
	rs := make([]ranked, g.NumNodes())
	for i := range rs {
		id := graph.NodeID(i)
		rs[i] = ranked{id: id, rank: geom.HilbertRank(order, bounds, g.Coord(id))}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].rank != rs[j].rank {
			return rs[i].rank < rs[j].rank
		}
		return rs[i].id < rs[j].id
	})
	out := make([]graph.NodeID, len(rs))
	for i, r := range rs {
		out[i] = r.id
	}
	return out
}
