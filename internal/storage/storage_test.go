package storage

import (
	"math/rand"
	"testing"

	"road/internal/geom"
	"road/internal/graph"
)

func TestLRUHitMiss(t *testing.T) {
	s := NewStore(2)
	p := s.Alloc(3)
	s.Read(p)     // miss
	s.Read(p)     // hit
	s.Read(p + 1) // miss
	s.Read(p)     // hit
	s.Read(p + 2) // miss, evicts p+1 (LRU)
	s.Read(p + 1) // miss
	st := s.Stats()
	if st.Reads != 6 {
		t.Fatalf("Reads = %d, want 6", st.Reads)
	}
	if st.Faults != 4 {
		t.Fatalf("Faults = %d, want 4", st.Faults)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	s := NewStore(2)
	p := s.Alloc(3)
	s.Read(p)
	s.Read(p + 1)
	s.Read(p) // p becomes MRU; p+1 is LRU
	s.Read(p + 2)
	if s.Cached(p + 1) {
		t.Fatal("LRU page p+1 not evicted")
	}
	if !s.Cached(p) || !s.Cached(p+2) {
		t.Fatal("MRU pages evicted")
	}
}

func TestLRUAgainstReferenceSimulator(t *testing.T) {
	// Drive random accesses against a slow but obviously correct simulator.
	const capacity = 8
	s := NewStore(capacity)
	base := s.Alloc(32)
	var ref []PageID // ref[0] is MRU
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		p := base + PageID(rng.Intn(32))
		before := s.Stats().Faults
		s.Read(p)
		faulted := s.Stats().Faults > before

		// Reference model.
		idx := -1
		for j, q := range ref {
			if q == p {
				idx = j
				break
			}
		}
		wantFault := idx == -1
		if idx >= 0 {
			ref = append(ref[:idx], ref[idx+1:]...)
		} else if len(ref) == capacity {
			ref = ref[:capacity-1]
		}
		ref = append([]PageID{p}, ref...)

		if faulted != wantFault {
			t.Fatalf("access %d page %d: fault=%v want %v", i, p, faulted, wantFault)
		}
	}
}

func TestStoreWriteCountsAndCaches(t *testing.T) {
	s := NewStore(4)
	p := s.Alloc(1)
	s.Write(p)
	s.Write(p)
	if st := s.Stats(); st.Writes != 2 {
		t.Fatalf("Writes = %d, want 2", st.Writes)
	}
	// Written page should now be a buffer hit.
	before := s.Stats().Faults
	s.Read(p)
	if s.Stats().Faults != before {
		t.Fatal("read after write faulted; write should admit page to buffer")
	}
}

func TestDropCache(t *testing.T) {
	s := NewStore(4)
	p := s.Alloc(1)
	s.Read(p)
	s.DropCache()
	before := s.Stats().Faults
	s.Read(p)
	if s.Stats().Faults != before+1 {
		t.Fatal("read after DropCache did not fault")
	}
}

func TestStatsSubAndReset(t *testing.T) {
	s := NewStore(4)
	p := s.Alloc(2)
	s.Read(p)
	mark := s.Stats()
	s.Read(p + 1)
	s.Write(p)
	d := s.Stats().Sub(mark)
	if d.Reads != 1 || d.Faults != 1 || d.Writes != 1 {
		t.Fatalf("delta = %+v", d)
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Fatalf("stats after reset = %+v", s.Stats())
	}
}

func TestZeroCapacityBufferAlwaysFaults(t *testing.T) {
	s := NewStore(-1) // negative capacity: buffer disabled
	p := s.Alloc(1)
	s.Read(p)
	s.Read(p)
	if st := s.Stats(); st.Faults != 2 {
		t.Fatalf("Faults = %d, want 2 with no buffer", st.Faults)
	}
}

func TestLayoutPacksSmallRecords(t *testing.T) {
	s := NewStore(4)
	l := NewLayout(s)
	// 4 records of 1000 bytes fit in one 4096-byte page; the 5th spills.
	var pages []PageID
	for k := int64(0); k < 5; k++ {
		pages = append(pages, l.Place(k, 1000))
	}
	if pages[0] != pages[3] {
		t.Fatalf("first four records on pages %v, want same page", pages[:4])
	}
	if pages[4] == pages[0] {
		t.Fatal("fifth record did not spill to a new page")
	}
	if l.Bytes() != 5000 {
		t.Fatalf("Bytes = %d, want 5000", l.Bytes())
	}
}

func TestLayoutLargeRecordSpansPages(t *testing.T) {
	s := NewStore(4)
	l := NewLayout(s)
	l.Place(1, PageSize*2+100) // spans 3 pages
	if got := l.Pages(1); got != 3 {
		t.Fatalf("Pages = %d, want 3", got)
	}
	before := s.Stats()
	l.Read(1)
	d := s.Stats().Sub(before)
	if d.Reads != 3 {
		t.Fatalf("Reads for spanning record = %d, want 3", d.Reads)
	}
}

func TestLayoutUnknownKeyNoop(t *testing.T) {
	s := NewStore(4)
	l := NewLayout(s)
	l.Read(42)
	l.Write(42)
	if st := s.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("unknown key performed I/O: %+v", st)
	}
	if l.Has(42) {
		t.Fatal("Has(42) true for unplaced key")
	}
	if l.Pages(42) != 0 {
		t.Fatal("Pages(42) nonzero for unplaced key")
	}
}

func TestLayoutDuplicateKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate key did not panic")
		}
	}()
	s := NewStore(4)
	l := NewLayout(s)
	l.Place(1, 10)
	l.Place(1, 10)
}

func TestLayoutZeroSizeRecord(t *testing.T) {
	s := NewStore(4)
	l := NewLayout(s)
	l.Place(7, 0)
	if !l.Has(7) {
		t.Fatal("zero-size record not addressable")
	}
	before := s.Stats()
	l.Read(7)
	if s.Stats().Sub(before).Reads != 1 {
		t.Fatal("zero-size record read did not touch its page")
	}
}

func TestLayoutWriteTouchesAllPages(t *testing.T) {
	s := NewStore(8)
	l := NewLayout(s)
	l.Place(1, PageSize+1) // 2 pages
	before := s.Stats()
	l.Write(1)
	if d := s.Stats().Sub(before); d.Writes != 2 {
		t.Fatalf("Writes = %d, want 2", d.Writes)
	}
}

func TestClusterNodesIsPermutation(t *testing.T) {
	g := graph.New(0, 0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		g.AddNode(geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50})
	}
	order := ClusterNodes(g)
	if len(order) != 200 {
		t.Fatalf("order len = %d", len(order))
	}
	seen := make(map[graph.NodeID]bool)
	for _, id := range order {
		if seen[id] {
			t.Fatalf("node %d appears twice", id)
		}
		seen[id] = true
	}
}

func TestClusterNodesLocality(t *testing.T) {
	// Consecutive nodes in cluster order should on average be much closer
	// than random pairs.
	g := graph.New(0, 0)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 1000; i++ {
		g.AddNode(geom.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	order := ClusterNodes(g)
	var adjSum, randSum float64
	for i := 1; i < len(order); i++ {
		adjSum += g.Coord(order[i-1]).Dist(g.Coord(order[i]))
		a := graph.NodeID(rng.Intn(1000))
		b := graph.NodeID(rng.Intn(1000))
		randSum += g.Coord(a).Dist(g.Coord(b))
	}
	if adjSum*2 >= randSum {
		t.Fatalf("cluster order locality weak: adjacent sum %g vs random sum %g", adjSum, randSum)
	}
}
