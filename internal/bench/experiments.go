package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"road/internal/dataset"
	"road/internal/graph"
)

// Options tunes experiment scale.
type Options struct {
	// Full runs NA/SF at the paper's node counts; otherwise they are
	// scaled to ≈21k nodes (CA is always full scale — it builds in
	// well under a second).
	Full bool
	// Queries per data point (the paper uses 100).
	Queries int
	// Trials per update experiment (the paper uses 100).
	Trials int
	// MaxApproachSeconds soft-caps how long repeated update trials may run
	// per approach; expensive baselines get fewer trials rather than
	// stalling the harness.
	MaxApproachSeconds float64
}

// DefaultOptions reads ROAD_FULLSCALE from the environment and picks
// laptop-friendly trial counts.
func DefaultOptions() Options {
	return Options{
		Full:               os.Getenv("ROAD_FULLSCALE") == "1",
		Queries:            50,
		Trials:             20,
		MaxApproachSeconds: 30,
	}
}

// NetworkCase pairs a dataset spec with its hierarchy depth (Table 1:
// l = 4 for CA, 8 for NA and SF; scaled stand-ins use 6).
type NetworkCase struct {
	Name   string
	Spec   dataset.Spec
	Levels int
}

// Cases returns the evaluation's three networks.
func Cases(full bool) []NetworkCase {
	if full {
		return []NetworkCase{
			{Name: "CA", Spec: dataset.CA(), Levels: 4},
			{Name: "NA", Spec: dataset.NA(), Levels: 8},
			{Name: "SF", Spec: dataset.SF(), Levels: 8},
		}
	}
	return []NetworkCase{
		{Name: "CA", Spec: dataset.CA(), Levels: 4},
		{Name: "NA~", Spec: dataset.Scaled(dataset.NA(), 0.12), Levels: 6},
		{Name: "SF~", Spec: dataset.Scaled(dataset.SF(), 0.12), Levels: 6},
	}
}

// Table is one experiment's output: rows of formatted cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], cell))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Columns)
	dashes := make([]string, len(t.Columns))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	line(dashes)
	for _, row := range t.Rows {
		line(row)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// buildAll constructs all four approaches over one network + object set.
func buildAll(g *graph.Graph, objects *graph.ObjectSet, levels int) (map[string]Approach, error) {
	out := make(map[string]Approach, len(ApproachNames))
	for _, name := range ApproachNames {
		a, err := BuildApproach(name, g, objects, levels)
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", name, err)
		}
		out[name] = a
	}
	return out, nil
}

// checkAgreement verifies all approaches returned the same result
// distances for the same query — a live integration check folded into
// every query experiment.
func checkAgreement(results map[string][]float64) error {
	var refName string
	var ref []float64
	for _, name := range ApproachNames {
		ds, ok := results[name]
		if !ok {
			continue
		}
		if ref == nil {
			refName, ref = name, ds
			continue
		}
		if len(ds) != len(ref) {
			return fmt.Errorf("%s returned %d results, %s returned %d", name, len(ds), refName, len(ref))
		}
		for i := range ds {
			if math.Abs(ds[i]-ref[i]) > 1e-6*math.Max(1, ref[i]) {
				return fmt.Errorf("%s result %d = %g, %s = %g", name, i, ds[i], refName, ref[i])
			}
		}
	}
	return nil
}

// measureKNN times opt.Queries kNN queries (cold cache each, as in §6)
// and returns mean latency and mean page reads per query.
func measureKNN(a Approach, queries []graph.NodeID, k int) (time.Duration, float64, [][]float64) {
	var total time.Duration
	var pages int64
	dists := make([][]float64, 0, len(queries))
	for _, q := range queries {
		a.DropCache()
		start := time.Now()
		ds, io := a.KNN(q, k)
		total += time.Since(start)
		pages += io.Faults
		dists = append(dists, ds)
	}
	n := time.Duration(len(queries))
	return total / n, float64(pages) / float64(len(queries)), dists
}

func measureRange(a Approach, queries []graph.NodeID, radius float64) (time.Duration, float64, [][]float64) {
	var total time.Duration
	var pages int64
	dists := make([][]float64, 0, len(queries))
	for _, q := range queries {
		a.DropCache()
		start := time.Now()
		ds, io := a.Range(q, radius)
		total += time.Since(start)
		pages += io.Faults
		dists = append(dists, ds)
	}
	n := time.Duration(len(queries))
	return total / n, float64(pages) / float64(len(queries)), dists
}

// agreementAcross folds per-query distance lists into checkAgreement calls.
func agreementAcross(perApproach map[string][][]float64, nq int) error {
	for qi := 0; qi < nq; qi++ {
		results := make(map[string][]float64)
		for name, all := range perApproach {
			results[name] = all[qi]
		}
		if err := checkAgreement(results); err != nil {
			return fmt.Errorf("query %d: %w", qi, err)
		}
	}
	return nil
}

// trialsFor bounds update-trial counts by a per-trial cost estimate so the
// expensive baselines don't stall the harness.
func trialsFor(opt Options, estimate time.Duration, requested int) int {
	if estimate <= 0 {
		return requested
	}
	budget := time.Duration(opt.MaxApproachSeconds * float64(time.Second))
	max := int(budget / estimate)
	if max < 1 {
		max = 1
	}
	if max > requested {
		return requested
	}
	return max
}

// randomEdges draws n random live edges.
func randomEdges(g *graph.Graph, n int, seed int64) []graph.EdgeID {
	rng := rand.New(rand.NewSource(seed))
	out := make([]graph.EdgeID, 0, n)
	for len(out) < n {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		if !g.Edge(e).Removed {
			out = append(out, e)
		}
	}
	return out
}
