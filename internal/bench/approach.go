// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6). It builds the four competing
// approaches — ROAD, network expansion (NetExp), the Euclidean bound
// (Euclidean) and the Distance Index (DistIdx) — over identical synthetic
// networks and workloads, measures construction, storage, maintenance and
// query costs, and prints the same rows/series the paper reports.
package bench

import (
	"fmt"
	"time"

	"road/internal/baseline/distidx"
	"road/internal/baseline/euclid"
	"road/internal/baseline/netexpand"
	"road/internal/core"
	"road/internal/graph"
	"road/internal/rnet"
	"road/internal/storage"
)

// Approach is the uniform surface the harness drives; implementations wrap
// each competitor over its own private clone of the network and objects.
type Approach interface {
	Name() string
	BuildTime() time.Duration
	IndexSizeBytes() int64
	DropCache()
	// KNN and Range return result distances in ascending order plus the
	// I/O incurred.
	KNN(q graph.NodeID, k int) ([]float64, storage.Stats)
	Range(q graph.NodeID, radius float64) ([]float64, storage.Stats)
	InsertObject(e graph.EdgeID, du float64) (graph.ObjectID, error)
	DeleteObject(id graph.ObjectID) bool
	SetEdgeWeight(e graph.EdgeID, w float64) error
	DeleteEdge(e graph.EdgeID) error
	RestoreEdge(e graph.EdgeID) error
	Graph() *graph.Graph
	Objects() *graph.ObjectSet
}

// ApproachNames lists the four competitors in the paper's order.
var ApproachNames = []string{"NetExp", "Euclidean", "DistIdx", "ROAD"}

// BuildApproach constructs one named approach over private clones of g and
// objects, so per-approach mutation experiments cannot interfere.
func BuildApproach(name string, g *graph.Graph, objects *graph.ObjectSet, levels int) (Approach, error) {
	cg := g.Clone()
	cobj := objects.Clone(cg)
	store := storage.NewStore(0)
	switch name {
	case "ROAD":
		cfg := core.Config{Rnet: rnet.Config{
			Fanout:          4,
			Levels:          levels,
			KLPasses:        -1,
			PruneMaxBorders: 32,
		}}
		f, err := core.Build(cg, cobj, cfg)
		if err != nil {
			return nil, err
		}
		return &roadApproach{f: f}, nil
	case "NetExp":
		return &netexpApproach{ix: netexpand.New(cg, cobj, store)}, nil
	case "Euclidean":
		return &euclidApproach{ix: euclid.New(cg, cobj, store)}, nil
	case "DistIdx":
		return &distidxApproach{ix: distidx.New(cg, cobj, store)}, nil
	}
	return nil, fmt.Errorf("bench: unknown approach %q", name)
}

// --- ROAD adapter ---

// roadApproach deliberately queries through the FRAMEWORK surface, not
// a session: framework queries run the page-charging reference
// implementation in report mode, so the Stats.IO the paper's figures
// compare stays faithful to the 2009 evaluation. Serving latency of the
// CSR session hot path is measured separately by roadbench -hotpath.
type roadApproach struct {
	f *core.Framework
}

func (a *roadApproach) Name() string              { return "ROAD" }
func (a *roadApproach) BuildTime() time.Duration  { return a.f.BuildTime }
func (a *roadApproach) IndexSizeBytes() int64     { return a.f.IndexSizeBytes() }
func (a *roadApproach) DropCache()                { a.f.DropCache() }
func (a *roadApproach) Graph() *graph.Graph       { return a.f.Graph() }
func (a *roadApproach) Objects() *graph.ObjectSet { return a.f.Objects() }

func (a *roadApproach) KNN(q graph.NodeID, k int) ([]float64, storage.Stats) {
	res, st := a.f.KNN(core.Query{Node: q}, k)
	return coreDists(res), st.IO
}

func (a *roadApproach) Range(q graph.NodeID, radius float64) ([]float64, storage.Stats) {
	res, st := a.f.Range(core.Query{Node: q}, radius)
	return coreDists(res), st.IO
}

func (a *roadApproach) InsertObject(e graph.EdgeID, du float64) (graph.ObjectID, error) {
	o, err := a.f.InsertObject(e, du, 0)
	return o.ID, err
}

func (a *roadApproach) DeleteObject(id graph.ObjectID) bool {
	return a.f.DeleteObject(id) == nil
}

func (a *roadApproach) SetEdgeWeight(e graph.EdgeID, w float64) error {
	_, err := a.f.SetEdgeWeight(e, w)
	return err
}

func (a *roadApproach) DeleteEdge(e graph.EdgeID) error {
	_, err := a.f.DeleteEdge(e)
	return err
}

func (a *roadApproach) RestoreEdge(e graph.EdgeID) error {
	_, err := a.f.RestoreEdge(e)
	return err
}

func coreDists(res []core.Result) []float64 {
	out := make([]float64, len(res))
	for i, r := range res {
		out[i] = r.Dist
	}
	return out
}

// --- NetExp adapter ---

type netexpApproach struct {
	ix *netexpand.Index
}

func (a *netexpApproach) Name() string              { return "NetExp" }
func (a *netexpApproach) BuildTime() time.Duration  { return a.ix.BuildTime }
func (a *netexpApproach) IndexSizeBytes() int64     { return a.ix.IndexSizeBytes() }
func (a *netexpApproach) DropCache()                { a.ix.Store().DropCache() }
func (a *netexpApproach) Graph() *graph.Graph       { return a.ix.Graph() }
func (a *netexpApproach) Objects() *graph.ObjectSet { return a.ix.ObjectSet() }

func (a *netexpApproach) KNN(q graph.NodeID, k int) ([]float64, storage.Stats) {
	res, st := a.ix.KNN(q, 0, k)
	dists := make([]float64, len(res))
	for i, r := range res {
		dists[i] = r.Dist
	}
	return dists, st.IO
}

func (a *netexpApproach) Range(q graph.NodeID, radius float64) ([]float64, storage.Stats) {
	res, st := a.ix.Range(q, 0, radius)
	dists := make([]float64, len(res))
	for i, r := range res {
		dists[i] = r.Dist
	}
	return dists, st.IO
}

func (a *netexpApproach) InsertObject(e graph.EdgeID, du float64) (graph.ObjectID, error) {
	o, err := a.ix.InsertObject(e, du, 0)
	return o.ID, err
}

func (a *netexpApproach) DeleteObject(id graph.ObjectID) bool { return a.ix.DeleteObject(id) }
func (a *netexpApproach) SetEdgeWeight(e graph.EdgeID, w float64) error {
	return a.ix.SetEdgeWeight(e, w)
}
func (a *netexpApproach) DeleteEdge(e graph.EdgeID) error  { return a.ix.DeleteEdge(e) }
func (a *netexpApproach) RestoreEdge(e graph.EdgeID) error { return a.ix.RestoreEdge(e) }

// --- Euclidean adapter ---

type euclidApproach struct {
	ix *euclid.Index
}

func (a *euclidApproach) Name() string              { return "Euclidean" }
func (a *euclidApproach) BuildTime() time.Duration  { return a.ix.BuildTime }
func (a *euclidApproach) IndexSizeBytes() int64     { return a.ix.IndexSizeBytes() }
func (a *euclidApproach) DropCache()                { a.ix.Store().DropCache() }
func (a *euclidApproach) Graph() *graph.Graph       { return a.ix.Graph() }
func (a *euclidApproach) Objects() *graph.ObjectSet { return a.ix.ObjectSet() }

func (a *euclidApproach) KNN(q graph.NodeID, k int) ([]float64, storage.Stats) {
	res, st := a.ix.KNN(q, 0, k)
	dists := make([]float64, len(res))
	for i, r := range res {
		dists[i] = r.Dist
	}
	return dists, st.IO
}

func (a *euclidApproach) Range(q graph.NodeID, radius float64) ([]float64, storage.Stats) {
	res, st := a.ix.Range(q, 0, radius)
	dists := make([]float64, len(res))
	for i, r := range res {
		dists[i] = r.Dist
	}
	return dists, st.IO
}

func (a *euclidApproach) InsertObject(e graph.EdgeID, du float64) (graph.ObjectID, error) {
	o, err := a.ix.InsertObject(e, du, 0)
	return o.ID, err
}

func (a *euclidApproach) DeleteObject(id graph.ObjectID) bool { return a.ix.DeleteObject(id) }
func (a *euclidApproach) SetEdgeWeight(e graph.EdgeID, w float64) error {
	return a.ix.SetEdgeWeight(e, w)
}
func (a *euclidApproach) DeleteEdge(e graph.EdgeID) error  { return a.ix.DeleteEdge(e) }
func (a *euclidApproach) RestoreEdge(e graph.EdgeID) error { return a.ix.RestoreEdge(e) }

// --- DistIdx adapter ---

type distidxApproach struct {
	ix *distidx.Index
}

func (a *distidxApproach) Name() string              { return "DistIdx" }
func (a *distidxApproach) BuildTime() time.Duration  { return a.ix.BuildTime }
func (a *distidxApproach) IndexSizeBytes() int64     { return a.ix.IndexSizeBytes() }
func (a *distidxApproach) DropCache()                { a.ix.Store().DropCache() }
func (a *distidxApproach) Graph() *graph.Graph       { return a.ix.Graph() }
func (a *distidxApproach) Objects() *graph.ObjectSet { return a.ix.ObjectSet() }

func (a *distidxApproach) KNN(q graph.NodeID, k int) ([]float64, storage.Stats) {
	res, st := a.ix.KNN(q, 0, k)
	dists := make([]float64, len(res))
	for i, r := range res {
		dists[i] = r.Dist
	}
	return dists, st.IO
}

func (a *distidxApproach) Range(q graph.NodeID, radius float64) ([]float64, storage.Stats) {
	res, st := a.ix.Range(q, 0, radius)
	dists := make([]float64, len(res))
	for i, r := range res {
		dists[i] = r.Dist
	}
	return dists, st.IO
}

func (a *distidxApproach) InsertObject(e graph.EdgeID, du float64) (graph.ObjectID, error) {
	o, err := a.ix.InsertObject(e, du, 0)
	return o.ID, err
}

func (a *distidxApproach) DeleteObject(id graph.ObjectID) bool { return a.ix.DeleteObject(id) }
func (a *distidxApproach) SetEdgeWeight(e graph.EdgeID, w float64) error {
	return a.ix.SetEdgeWeight(e, w)
}
func (a *distidxApproach) DeleteEdge(e graph.EdgeID) error  { return a.ix.DeleteEdge(e) }
func (a *distidxApproach) RestoreEdge(e graph.EdgeID) error { return a.ix.RestoreEdge(e) }
