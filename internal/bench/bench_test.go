package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"road/internal/dataset"
)

// tinyOptions shrinks every experiment so the full registry can run inside
// the unit-test budget.
func tinyOptions() Options {
	return Options{Queries: 3, Trials: 2, MaxApproachSeconds: 5}
}

func TestCases(t *testing.T) {
	fast := Cases(false)
	if len(fast) != 3 || fast[0].Name != "CA" {
		t.Fatalf("Cases(false) = %+v", fast)
	}
	full := Cases(true)
	if full[1].Spec.Nodes != dataset.NA().Nodes {
		t.Fatal("Cases(true) does not use full NA")
	}
	if fast[1].Spec.Nodes >= full[1].Spec.Nodes {
		t.Fatal("scaled NA not smaller than full NA")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "bbbb"}}
	tbl.AddRow("x", "y")
	tbl.AddRow("longcell", "z")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "T") || !strings.Contains(out, "longcell") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, dashes, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtDur(1500 * time.Millisecond); got != "1.50s" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtDur(2500 * time.Microsecond); got != "2.50ms" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtDur(900 * time.Nanosecond); got != "0.9µs" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.0MB" {
		t.Fatalf("fmtBytes = %q", got)
	}
	if got := fmtBytes(2048); got != "2.0KB" {
		t.Fatalf("fmtBytes = %q", got)
	}
	if got := fmtBytes(12); got != "12B" {
		t.Fatalf("fmtBytes = %q", got)
	}
}

func TestCheckAgreement(t *testing.T) {
	ok := map[string][]float64{"ROAD": {1, 2}, "NetExp": {1, 2 + 1e-12}}
	if err := checkAgreement(ok); err != nil {
		t.Fatalf("agreement rejected: %v", err)
	}
	badLen := map[string][]float64{"ROAD": {1}, "NetExp": {1, 2}}
	if err := checkAgreement(badLen); err == nil {
		t.Fatal("length mismatch accepted")
	}
	badVal := map[string][]float64{"ROAD": {1, 2}, "NetExp": {1, 3}}
	if err := checkAgreement(badVal); err == nil {
		t.Fatal("value mismatch accepted")
	}
}

func TestTrialsFor(t *testing.T) {
	opt := Options{MaxApproachSeconds: 1}
	if got := trialsFor(opt, 0, 50); got != 50 {
		t.Fatalf("zero estimate: %d", got)
	}
	if got := trialsFor(opt, 100*time.Millisecond, 50); got != 10 {
		t.Fatalf("budgeted trials = %d, want 10", got)
	}
	if got := trialsFor(opt, 10*time.Second, 50); got != 1 {
		t.Fatalf("over-budget trials = %d, want 1", got)
	}
}

func TestBuildApproachUnknown(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 64, Edges: 70, Seed: 1})
	objects := dataset.PlaceUniform(g, 5, 2)
	if _, err := BuildApproach("Nope", g, objects, 2); err == nil {
		t.Fatal("unknown approach accepted")
	}
}

func TestApproachesAgreeOnSmallNetwork(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 300, Edges: 340, Seed: 3})
	objects := dataset.PlaceUniform(g, 20, 4)
	approaches, err := buildAll(g, objects, 3)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.RandomNodes(g, 10, 5)
	for _, k := range []int{1, 5} {
		per := make(map[string][][]float64)
		for _, name := range ApproachNames {
			_, _, dists := measureKNN(approaches[name], queries, k)
			per[name] = dists
		}
		if err := agreementAcross(per, len(queries)); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	diam := g.EstimateDiameter()
	per := make(map[string][][]float64)
	for _, name := range ApproachNames {
		_, _, dists := measureRange(approaches[name], queries, diam*0.1)
		per[name] = dists
	}
	if err := agreementAcross(per, len(queries)); err != nil {
		t.Fatalf("range: %v", err)
	}
}

// TestRegistryRunsTiny executes the cheap experiments end-to-end with tiny
// workloads so regressions in any runner surface in unit tests. The CA-full
// sweeps (fig13, fig17b, fig18b build 20 indices over 21k nodes) are
// exercised by the root bench suite instead.
func TestRegistryRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke skipped in -short")
	}
	opt := tinyOptions()
	for _, id := range []string{"fig11", "fig17a", "fig19", "ablation-pruning", "ablation-partition"} {
		run, ok := Registry[id]
		if !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
		tbl, err := run(opt)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

func TestOrderCoversRegistry(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order has %d entries, Registry %d", len(Order), len(Registry))
	}
	for _, id := range Order {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("Order entry %s not in Registry", id)
		}
	}
}
