package bench

import (
	"fmt"
	"time"

	"road/internal/core"
	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/partition"
	"road/internal/rnet"
)

// Fig11 reproduces the 3NN illustration of Figure 11: a single 3NN query
// over CA with 5 objects, reporting per-approach time, page reads and the
// traversal footprint.
func Fig11(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0] // CA
	g := dataset.MustGenerate(cs.Spec)
	objects := dataset.PlaceUniform(g, 5, 11)
	approaches, err := buildAll(g, objects, cs.Levels)
	if err != nil {
		return nil, err
	}
	q := dataset.RandomNodes(g, 1, 7)[0]
	t := &Table{
		Title:   "Figure 11 — 3NN query illustration (CA, |O|=5)",
		Columns: []string{"approach", "time", "page faults"},
	}
	results := make(map[string][]float64)
	for _, name := range ApproachNames {
		a := approaches[name]
		a.DropCache()
		start := time.Now()
		ds, io := a.KNN(q, 3)
		elapsed := time.Since(start)
		results[name] = ds
		t.AddRow(name, fmtDur(elapsed), fmt.Sprintf("%d", io.Faults))
	}
	if err := checkAgreement(results); err != nil {
		return nil, fmt.Errorf("fig11 agreement: %w", err)
	}
	return t, nil
}

// Fig13 reproduces Figure 13: index construction time and size on CA as
// the object count sweeps 10..1000 — DistIdx explodes, the others stay
// flat.
func Fig13(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0]
	g := dataset.MustGenerate(cs.Spec)
	t := &Table{
		Title:   "Figure 13 — index construction time and size vs |O| (CA)",
		Columns: []string{"|O|", "approach", "index time", "index size"},
	}
	for _, numObjects := range []int{10, 50, 100, 500, 1000} {
		objects := dataset.PlaceUniform(g, numObjects, int64(numObjects))
		for _, name := range ApproachNames {
			a, err := BuildApproach(name, g, objects, cs.Levels)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", numObjects), name,
				fmtDur(a.BuildTime()), fmtBytes(a.IndexSizeBytes()))
		}
	}
	return t, nil
}

// Fig14 reproduces Figure 14: index construction time and size across
// networks at |O|=100.
func Fig14(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 14 — index construction time and size vs network (|O|=100)",
		Columns: []string{"network", "approach", "index time", "index size"},
	}
	for _, cs := range Cases(opt.Full) {
		g := dataset.MustGenerate(cs.Spec)
		objects := dataset.PlaceUniform(g, 100, 14)
		for _, name := range ApproachNames {
			a, err := BuildApproach(name, g, objects, cs.Levels)
			if err != nil {
				return nil, err
			}
			t.AddRow(cs.Name, name, fmtDur(a.BuildTime()), fmtBytes(a.IndexSizeBytes()))
		}
	}
	return t, nil
}

// Fig15 reproduces Figure 15: average object deletion and insertion time
// per network (delete a random object, re-insert at a random location).
func Fig15(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 15 — object update time (|O|=100)",
		Columns: []string{"network", "approach", "delete avg", "insert avg", "trials"},
	}
	for _, cs := range Cases(opt.Full) {
		g := dataset.MustGenerate(cs.Spec)
		objects := dataset.PlaceUniform(g, 100, 15)
		for _, name := range ApproachNames {
			a, err := BuildApproach(name, g, objects, cs.Levels)
			if err != nil {
				return nil, err
			}
			// Estimate one trial to budget the loop (DistIdx is slow).
			all := a.Objects().All()
			est := time.Now()
			a.DeleteObject(all[0].ID)
			e0 := a.Graph().Edge(all[0].Edge)
			a.InsertObject(all[0].Edge, e0.Weight/2)
			perTrial := time.Since(est)
			trials := trialsFor(opt, perTrial, opt.Trials)

			edges := randomEdges(a.Graph(), trials, 151)
			var delTotal, insTotal time.Duration
			for i := 0; i < trials; i++ {
				objs := a.Objects().All()
				victim := objs[i%len(objs)]
				start := time.Now()
				a.DeleteObject(victim.ID)
				delTotal += time.Since(start)
				e := a.Graph().Edge(edges[i])
				start = time.Now()
				if _, err := a.InsertObject(edges[i], e.Weight/2); err != nil {
					return nil, err
				}
				insTotal += time.Since(start)
			}
			t.AddRow(cs.Name, name,
				fmtDur(delTotal/time.Duration(trials)),
				fmtDur(insTotal/time.Duration(trials)),
				fmt.Sprintf("%d", trials))
		}
	}
	return t, nil
}

// Fig16 reproduces Figure 16: average edge deletion and insertion time per
// network (remove a random edge, then restore it).
func Fig16(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 16 — network update time (|O|=100)",
		Columns: []string{"network", "approach", "edge delete avg", "edge insert avg", "trials"},
	}
	for _, cs := range Cases(opt.Full) {
		g := dataset.MustGenerate(cs.Spec)
		objects := dataset.PlaceUniform(g, 100, 16)
		for _, name := range ApproachNames {
			a, err := BuildApproach(name, g, objects, cs.Levels)
			if err != nil {
				return nil, err
			}
			candidates := safeEdges(a, opt.Trials+8, 161)
			if len(candidates) == 0 {
				return nil, fmt.Errorf("no removable edges on %s", cs.Name)
			}
			// Budget with one estimated trial.
			est := time.Now()
			if err := a.DeleteEdge(candidates[0]); err != nil {
				return nil, err
			}
			if err := a.RestoreEdge(candidates[0]); err != nil {
				return nil, err
			}
			perTrial := time.Since(est)
			trials := trialsFor(opt, perTrial, opt.Trials)
			if trials > len(candidates) {
				trials = len(candidates)
			}
			var delTotal, insTotal time.Duration
			for i := 0; i < trials; i++ {
				e := candidates[i]
				start := time.Now()
				if err := a.DeleteEdge(e); err != nil {
					return nil, err
				}
				delTotal += time.Since(start)
				start = time.Now()
				if err := a.RestoreEdge(e); err != nil {
					return nil, err
				}
				insTotal += time.Since(start)
			}
			t.AddRow(cs.Name, name,
				fmtDur(delTotal/time.Duration(trials)),
				fmtDur(insTotal/time.Duration(trials)),
				fmt.Sprintf("%d", trials))
		}
	}
	return t, nil
}

// safeEdges returns object-free edges whose endpoints keep other
// connections, so delete/restore cycles cannot strand objects or nodes.
func safeEdges(a Approach, n int, seed int64) []graph.EdgeID {
	g := a.Graph()
	var out []graph.EdgeID
	for _, e := range randomEdges(g, n*4, seed) {
		ed := g.Edge(e)
		if g.Degree(ed.U) > 1 && g.Degree(ed.V) > 1 && len(a.Objects().OnEdge(e)) == 0 {
			out = append(out, e)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// Fig17a reproduces Figure 17(a): kNN processing time vs k on CA.
func Fig17a(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0]
	g := dataset.MustGenerate(cs.Spec)
	objects := dataset.PlaceUniform(g, 100, 17)
	approaches, err := buildAll(g, objects, cs.Levels)
	if err != nil {
		return nil, err
	}
	queries := dataset.RandomNodes(g, opt.Queries, 171)
	t := &Table{
		Title:   "Figure 17(a) — kNN processing time vs k (CA, |O|=100)",
		Columns: []string{"k", "approach", "time/query", "faults/query"},
	}
	for _, k := range []int{1, 5, 10} {
		per := make(map[string][][]float64)
		for _, name := range ApproachNames {
			mean, pages, dists := measureKNN(approaches[name], queries, k)
			per[name] = dists
			t.AddRow(fmt.Sprintf("%d", k), name, fmtDur(mean), fmt.Sprintf("%.1f", pages))
		}
		if err := agreementAcross(per, len(queries)); err != nil {
			return nil, fmt.Errorf("fig17a k=%d: %w", k, err)
		}
	}
	return t, nil
}

// Fig17b reproduces Figure 17(b): kNN time vs object cardinality on CA.
func Fig17b(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0]
	g := dataset.MustGenerate(cs.Spec)
	queries := dataset.RandomNodes(g, opt.Queries, 172)
	t := &Table{
		Title:   "Figure 17(b) — kNN processing time vs |O| (CA, k=5)",
		Columns: []string{"|O|", "approach", "time/query", "faults/query"},
	}
	for _, numObjects := range []int{10, 50, 100, 500, 1000} {
		objects := dataset.PlaceUniform(g, numObjects, int64(numObjects)*3)
		approaches, err := buildAll(g, objects, cs.Levels)
		if err != nil {
			return nil, err
		}
		per := make(map[string][][]float64)
		for _, name := range ApproachNames {
			mean, pages, dists := measureKNN(approaches[name], queries, 5)
			per[name] = dists
			t.AddRow(fmt.Sprintf("%d", numObjects), name, fmtDur(mean), fmt.Sprintf("%.1f", pages))
		}
		if err := agreementAcross(per, len(queries)); err != nil {
			return nil, fmt.Errorf("fig17b |O|=%d: %w", numObjects, err)
		}
	}
	return t, nil
}

// Fig17c reproduces Figure 17(c): kNN time per network.
func Fig17c(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 17(c) — kNN processing time vs network (|O|=100, k=5)",
		Columns: []string{"network", "approach", "time/query", "faults/query"},
	}
	for _, cs := range Cases(opt.Full) {
		g := dataset.MustGenerate(cs.Spec)
		objects := dataset.PlaceUniform(g, 100, 173)
		approaches, err := buildAll(g, objects, cs.Levels)
		if err != nil {
			return nil, err
		}
		queries := dataset.RandomNodes(g, opt.Queries, 174)
		per := make(map[string][][]float64)
		for _, name := range ApproachNames {
			mean, pages, dists := measureKNN(approaches[name], queries, 5)
			per[name] = dists
			t.AddRow(cs.Name, name, fmtDur(mean), fmt.Sprintf("%.1f", pages))
		}
		if err := agreementAcross(per, len(queries)); err != nil {
			return nil, fmt.Errorf("fig17c %s: %w", cs.Name, err)
		}
	}
	return t, nil
}

// Fig18a reproduces Figure 18(a): range query time vs radius fraction.
func Fig18a(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0]
	g := dataset.MustGenerate(cs.Spec)
	objects := dataset.PlaceUniform(g, 100, 18)
	approaches, err := buildAll(g, objects, cs.Levels)
	if err != nil {
		return nil, err
	}
	diam := g.EstimateDiameter()
	queries := dataset.RandomNodes(g, opt.Queries, 181)
	t := &Table{
		Title:   "Figure 18(a) — range query time vs r (CA, |O|=100)",
		Columns: []string{"r", "approach", "time/query", "faults/query"},
	}
	for _, frac := range []float64{0.05, 0.1, 0.2} {
		radius := diam * frac
		per := make(map[string][][]float64)
		for _, name := range ApproachNames {
			mean, pages, dists := measureRange(approaches[name], queries, radius)
			per[name] = dists
			t.AddRow(fmt.Sprintf("%.2f", frac), name, fmtDur(mean), fmt.Sprintf("%.1f", pages))
		}
		if err := agreementAcross(per, len(queries)); err != nil {
			return nil, fmt.Errorf("fig18a r=%.2f: %w", frac, err)
		}
	}
	return t, nil
}

// Fig18b reproduces Figure 18(b): range query time vs object cardinality.
func Fig18b(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0]
	g := dataset.MustGenerate(cs.Spec)
	diam := g.EstimateDiameter()
	queries := dataset.RandomNodes(g, opt.Queries, 182)
	t := &Table{
		Title:   "Figure 18(b) — range query time vs |O| (CA, r=0.1)",
		Columns: []string{"|O|", "approach", "time/query", "faults/query"},
	}
	for _, numObjects := range []int{10, 50, 100, 500, 1000} {
		objects := dataset.PlaceUniform(g, numObjects, int64(numObjects)*5)
		approaches, err := buildAll(g, objects, cs.Levels)
		if err != nil {
			return nil, err
		}
		per := make(map[string][][]float64)
		for _, name := range ApproachNames {
			mean, pages, dists := measureRange(approaches[name], queries, diam*0.1)
			per[name] = dists
			t.AddRow(fmt.Sprintf("%d", numObjects), name, fmtDur(mean), fmt.Sprintf("%.1f", pages))
		}
		if err := agreementAcross(per, len(queries)); err != nil {
			return nil, fmt.Errorf("fig18b |O|=%d: %w", numObjects, err)
		}
	}
	return t, nil
}

// Fig18c reproduces Figure 18(c): range query time per network.
func Fig18c(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 18(c) — range query time vs network (|O|=100, r=0.1)",
		Columns: []string{"network", "approach", "time/query", "faults/query"},
	}
	for _, cs := range Cases(opt.Full) {
		g := dataset.MustGenerate(cs.Spec)
		objects := dataset.PlaceUniform(g, 100, 183)
		approaches, err := buildAll(g, objects, cs.Levels)
		if err != nil {
			return nil, err
		}
		diam := g.EstimateDiameter()
		queries := dataset.RandomNodes(g, opt.Queries, 184)
		per := make(map[string][][]float64)
		for _, name := range ApproachNames {
			mean, pages, dists := measureRange(approaches[name], queries, diam*0.1)
			per[name] = dists
			t.AddRow(cs.Name, name, fmtDur(mean), fmt.Sprintf("%.1f", pages))
		}
		if err := agreementAcross(per, len(queries)); err != nil {
			return nil, fmt.Errorf("fig18c %s: %w", cs.Name, err)
		}
	}
	return t, nil
}

// Fig19 reproduces Figure 19: the effect of the Rnet hierarchy depth l on
// ROAD's index construction time and kNN time (p=4, |O|=100, k=5).
func Fig19(opt Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 19 — effect of Rnet hierarchy levels (p=4, |O|=100, k=5)",
		Columns: []string{"network", "l", "index time", "knn time/query", "shortcuts"},
	}
	for _, cs := range Cases(opt.Full) {
		g := dataset.MustGenerate(cs.Spec)
		objects := dataset.PlaceUniform(g, 100, 19)
		queries := dataset.RandomNodes(g, opt.Queries, 191)
		var levels []int
		if cs.Name == "CA" {
			levels = []int{2, 3, 4, 5, 6}
		} else if opt.Full {
			levels = []int{6, 7, 8, 9, 10}
		} else {
			levels = []int{4, 5, 6, 7, 8}
		}
		for _, l := range levels {
			f, err := core.Build(g.Clone(), objects.Clone(g), core.Config{Rnet: rnet.Config{
				Fanout: 4, Levels: l, KLPasses: -1, PruneMaxBorders: 32,
			}})
			if err != nil {
				return nil, err
			}
			a := &roadApproach{f: f}
			mean, _, _ := measureKNN(a, queries, 5)
			t.AddRow(cs.Name, fmt.Sprintf("%d", l), fmtDur(f.BuildTime), fmtDur(mean),
				fmt.Sprintf("%d", f.Hierarchy().ShortcutCount()))
		}
	}
	return t, nil
}

// AblationPruning compares Lemma-4 shortcut pruning on/off: shortcut
// count, index size and query time.
func AblationPruning(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0]
	g := dataset.MustGenerate(cs.Spec)
	objects := dataset.PlaceUniform(g, 100, 31)
	queries := dataset.RandomNodes(g, opt.Queries, 311)
	t := &Table{
		Title:   "Ablation — Lemma-4 shortcut pruning (CA, |O|=100, k=5)",
		Columns: []string{"pruning", "shortcuts", "overlay size", "knn time/query"},
	}
	for _, pr := range []struct {
		label string
		max   int
	}{{"off", 0}, {"≤32 borders", 32}, {"all Rnets", 1 << 30}} {
		f, err := core.Build(g.Clone(), objects.Clone(g), core.Config{Rnet: rnet.Config{
			Fanout: 4, Levels: cs.Levels, KLPasses: -1, PruneMaxBorders: pr.max,
		}})
		if err != nil {
			return nil, err
		}
		a := &roadApproach{f: f}
		mean, _, _ := measureKNN(a, queries, 5)
		t.AddRow(pr.label, fmt.Sprintf("%d", f.Hierarchy().ShortcutCount()),
			fmtBytes(f.Overlay().SizeBytes()), fmtDur(mean))
	}
	return t, nil
}

// AblationAbstract compares object-abstract representations: directory
// size and attribute-filtered query time.
func AblationAbstract(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0]
	g := dataset.MustGenerate(cs.Spec)
	objects := dataset.PlaceUniform(g, 500, 32, 1, 2, 3, 4, 5, 6, 7, 8)
	queries := dataset.RandomNodes(g, opt.Queries, 321)
	t := &Table{
		Title:   "Ablation — object abstract representation (CA, |O|=500, attr-filtered 5NN)",
		Columns: []string{"abstract", "directory size", "knn time/query", "rnets descended/query"},
	}
	for _, kind := range []core.AbstractKind{core.AbstractSet, core.AbstractCount, core.AbstractBloom} {
		f, err := core.Build(g.Clone(), objects.Clone(g), core.Config{
			Rnet:     rnet.Config{Fanout: 4, Levels: cs.Levels, KLPasses: -1, PruneMaxBorders: 32},
			Abstract: kind,
		})
		if err != nil {
			return nil, err
		}
		var total time.Duration
		var descended int
		for _, q := range queries {
			f.DropCache()
			start := time.Now()
			_, st := f.KNN(core.Query{Node: q, Attr: 3}, 5)
			total += time.Since(start)
			descended += st.RnetsDescended
		}
		t.AddRow(kind.String(), fmtBytes(f.Directory().SizeBytes()),
			fmtDur(total/time.Duration(len(queries))),
			fmt.Sprintf("%.1f", float64(descended)/float64(len(queries))))
	}
	return t, nil
}

// AblationPartitioner compares geometric-only partitioning against
// geometric+KL refinement: border count, build time, query time.
func AblationPartitioner(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0]
	g := dataset.MustGenerate(cs.Spec)
	objects := dataset.PlaceUniform(g, 100, 33)
	queries := dataset.RandomNodes(g, opt.Queries, 331)
	t := &Table{
		Title:   "Ablation — partitioner refinement (CA, |O|=100, k=5)",
		Columns: []string{"partitioner", "borders", "shortcuts", "index time", "knn time/query"},
	}
	for _, pc := range []struct {
		label  string
		passes int
	}{{"geometric only", 0}, {"geometric+KL", partition.DefaultKLPasses}} {
		f, err := core.Build(g.Clone(), objects.Clone(g), core.Config{Rnet: rnet.Config{
			Fanout: 4, Levels: cs.Levels, KLPasses: pc.passes, PruneMaxBorders: 32,
		}})
		if err != nil {
			return nil, err
		}
		a := &roadApproach{f: f}
		mean, _, _ := measureKNN(a, queries, 5)
		t.AddRow(pc.label, fmt.Sprintf("%d", f.Hierarchy().BorderCount()),
			fmt.Sprintf("%d", f.Hierarchy().ShortcutCount()),
			fmtDur(f.BuildTime), fmtDur(mean))
	}
	return t, nil
}

// AblationObjectSkew compares uniform and clustered object placements:
// search-space pruning pays off more when objects concentrate (footnote 3).
func AblationObjectSkew(opt Options) (*Table, error) {
	cs := Cases(opt.Full)[0]
	g := dataset.MustGenerate(cs.Spec)
	queries := dataset.RandomNodes(g, opt.Queries, 341)
	t := &Table{
		Title:   "Ablation — object distribution (CA, |O|=100, k=5, ROAD vs NetExp)",
		Columns: []string{"placement", "approach", "time/query", "faults/query"},
	}
	for _, pl := range []struct {
		label   string
		objects *graph.ObjectSet
	}{
		{"uniform", dataset.PlaceUniform(g, 100, 34)},
		{"clustered", dataset.PlaceClustered(g, 100, 3, 34)},
	} {
		for _, name := range []string{"NetExp", "ROAD"} {
			a, err := BuildApproach(name, g, pl.objects, cs.Levels)
			if err != nil {
				return nil, err
			}
			mean, pages, _ := measureKNN(a, queries, 5)
			t.AddRow(pl.label, name, fmtDur(mean), fmt.Sprintf("%.1f", pages))
		}
	}
	return t, nil
}

// Registry maps experiment IDs to runners for the CLI and bench tests.
var Registry = map[string]func(Options) (*Table, error){
	"fig11":              Fig11,
	"fig13":              Fig13,
	"fig14":              Fig14,
	"fig15":              Fig15,
	"fig16":              Fig16,
	"fig17a":             Fig17a,
	"fig17b":             Fig17b,
	"fig17c":             Fig17c,
	"fig18a":             Fig18a,
	"fig18b":             Fig18b,
	"fig18c":             Fig18c,
	"fig19":              Fig19,
	"ablation-pruning":   AblationPruning,
	"ablation-abstract":  AblationAbstract,
	"ablation-partition": AblationPartitioner,
	"ablation-skew":      AblationObjectSkew,
}

// Order lists experiment IDs in presentation order.
var Order = []string{
	"fig11", "fig13", "fig14", "fig15", "fig16",
	"fig17a", "fig17b", "fig17c", "fig18a", "fig18b", "fig18c", "fig19",
	"ablation-pruning", "ablation-abstract", "ablation-partition", "ablation-skew",
}
