// Package pqueue provides the priority queues used by every network
// traversal in the repository: a plain binary min-heap of (item, priority)
// pairs and an indexed heap supporting decrease-key, the workhorse of
// Dijkstra-style expansion.
package pqueue

// Item is an entry in a Queue: an opaque payload ordered by Priority.
// Ties are broken by insertion order (FIFO) so traversals are deterministic.
type Item struct {
	Value    any
	Priority float64
	seq      uint64
}

// Queue is a binary min-heap ordered by priority then insertion sequence.
// The zero value is an empty queue ready to use.
type Queue struct {
	items []Item
	seq   uint64
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Push adds value with the given priority.
func (q *Queue) Push(value any, priority float64) {
	q.seq++
	q.items = append(q.items, Item{Value: value, Priority: priority, seq: q.seq})
	q.up(len(q.items) - 1)
}

// Pop removes and returns the item with the smallest priority.
// It returns false if the queue is empty.
func (q *Queue) Pop() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

// Peek returns the smallest-priority item without removing it.
func (q *Queue) Peek() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	return q.items[0], true
}

// Reset empties the queue, retaining capacity.
func (q *Queue) Reset() { q.items = q.items[:0] }

func (q *Queue) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

// SearchItem is an entry of a SearchQueue: a network node or an object
// (Obj >= 0) at an accumulated distance. Fields are inline values — no
// interface boxing — so pushes and pops never allocate.
type SearchItem struct {
	Prio float64
	seq  uint64
	Node int32
	Obj  int32
}

// SearchQueue is the search engine's frontier: a binary min-heap of
// SearchItems ordered by priority then insertion sequence (FIFO on ties,
// matching Queue), with typed entries so the hot loop stays free of
// per-pop allocations. The zero value is ready to use; Reset retains
// capacity across queries.
type SearchQueue struct {
	items []SearchItem
	seq   uint64
}

// Len reports the number of queued items.
func (q *SearchQueue) Len() int { return len(q.items) }

// Push adds a node/object entry at the given priority.
func (q *SearchQueue) Push(node, obj int32, prio float64) {
	q.seq++
	q.items = append(q.items, SearchItem{Prio: prio, seq: q.seq, Node: node, Obj: obj})
	q.sup(len(q.items) - 1)
}

// Pop removes and returns the smallest-priority item; ok is false when the
// queue is empty.
func (q *SearchQueue) Pop() (SearchItem, bool) {
	if len(q.items) == 0 {
		return SearchItem{}, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.sdown(0)
	}
	return top, true
}

// Reset empties the queue, retaining capacity.
func (q *SearchQueue) Reset() { q.items = q.items[:0] }

func (q *SearchQueue) sless(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.seq < b.seq
}

func (q *SearchQueue) sup(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.sless(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *SearchQueue) sdown(i int) {
	n := len(q.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.sless(left, smallest) {
			smallest = left
		}
		if right < n && q.sless(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

// IndexedQueue is a min-heap keyed by dense int32 IDs (graph node IDs)
// supporting DecreaseKey in O(log n). IDs must be < the capacity given to
// NewIndexed. It is the standard Dijkstra frontier.
type IndexedQueue struct {
	heap []int32   // heap of ids
	pos  []int32   // id -> index in heap, -1 if absent
	prio []float64 // id -> priority
}

// NewIndexed returns an IndexedQueue accommodating ids in [0, capacity).
func NewIndexed(capacity int) *IndexedQueue {
	pos := make([]int32, capacity)
	for i := range pos {
		pos[i] = -1
	}
	return &IndexedQueue{pos: pos, prio: make([]float64, capacity)}
}

// Len reports the number of queued ids.
func (q *IndexedQueue) Len() int { return len(q.heap) }

// Contains reports whether id is currently queued.
func (q *IndexedQueue) Contains(id int32) bool { return q.pos[id] >= 0 }

// Priority returns the current priority of a queued id.
// The result is undefined if id is not queued.
func (q *IndexedQueue) Priority(id int32) float64 { return q.prio[id] }

// Push inserts id with the given priority. If id is already queued, Push
// behaves as DecreaseKey when priority is lower and is a no-op otherwise.
func (q *IndexedQueue) Push(id int32, priority float64) {
	if q.pos[id] >= 0 {
		q.DecreaseKey(id, priority)
		return
	}
	q.prio[id] = priority
	q.pos[id] = int32(len(q.heap))
	q.heap = append(q.heap, id)
	q.up(len(q.heap) - 1)
}

// DecreaseKey lowers the priority of a queued id. Priorities may only
// decrease; attempts to raise are ignored.
func (q *IndexedQueue) DecreaseKey(id int32, priority float64) {
	if priority >= q.prio[id] {
		return
	}
	q.prio[id] = priority
	q.up(int(q.pos[id]))
}

// Pop removes and returns the id with the smallest priority and that
// priority. ok is false when the queue is empty.
func (q *IndexedQueue) Pop() (id int32, priority float64, ok bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	id = q.heap[0]
	priority = q.prio[id]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.pos[q.heap[0]] = 0
	q.heap = q.heap[:last]
	q.pos[id] = -1
	if last > 0 {
		q.down(0)
	}
	return id, priority, true
}

// Reset empties the queue, retaining capacity.
func (q *IndexedQueue) Reset() {
	for _, id := range q.heap {
		q.pos[id] = -1
	}
	q.heap = q.heap[:0]
}

func (q *IndexedQueue) iless(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if q.prio[a] != q.prio[b] {
		return q.prio[a] < q.prio[b]
	}
	return a < b
}

func (q *IndexedQueue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = int32(i)
	q.pos[q.heap[j]] = int32(j)
}

func (q *IndexedQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.iless(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *IndexedQueue) down(i int) {
	n := len(q.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.iless(left, smallest) {
			smallest = left
		}
		if right < n && q.iless(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
