package pqueue

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueEmpty(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatalf("Len of empty queue = %d, want 0", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push("c", 3)
	q.Push("a", 1)
	q.Push("b", 2)
	want := []string{"a", "b", "c"}
	for _, w := range want {
		it, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed")
		}
		if it.Value.(string) != w {
			t.Fatalf("popped %v, want %v", it.Value, w)
		}
	}
}

func TestQueueFIFOTieBreak(t *testing.T) {
	var q Queue
	q.Push("first", 5)
	q.Push("second", 5)
	q.Push("third", 5)
	for _, w := range []string{"first", "second", "third"} {
		it, _ := q.Pop()
		if it.Value.(string) != w {
			t.Fatalf("tie-break popped %v, want %v", it.Value, w)
		}
	}
}

func TestQueuePeekDoesNotRemove(t *testing.T) {
	var q Queue
	q.Push("x", 1)
	it, ok := q.Peek()
	if !ok || it.Value.(string) != "x" {
		t.Fatalf("Peek = %v,%v", it, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("Peek removed item, Len = %d", q.Len())
	}
}

func TestQueueReset(t *testing.T) {
	var q Queue
	q.Push("x", 1)
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
}

func TestQueueSortsRandomInput(t *testing.T) {
	f := func(priorities []float64) bool {
		var q Queue
		for _, p := range priorities {
			q.Push(p, p)
		}
		prev := math.Inf(-1)
		for q.Len() > 0 {
			it, _ := q.Pop()
			if it.Priority < prev {
				return false
			}
			prev = it.Priority
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedBasic(t *testing.T) {
	q := NewIndexed(10)
	q.Push(3, 3.0)
	q.Push(1, 1.0)
	q.Push(2, 2.0)
	for want := int32(1); want <= 3; want++ {
		id, prio, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed")
		}
		if id != want || prio != float64(want) {
			t.Fatalf("Pop = (%d,%g), want (%d,%g)", id, prio, want, float64(want))
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty indexed queue reported ok")
	}
}

func TestIndexedDecreaseKey(t *testing.T) {
	q := NewIndexed(10)
	q.Push(0, 10)
	q.Push(1, 20)
	q.DecreaseKey(1, 5)
	id, prio, _ := q.Pop()
	if id != 1 || prio != 5 {
		t.Fatalf("Pop = (%d,%g), want (1,5)", id, prio)
	}
}

func TestIndexedDecreaseKeyIgnoresIncrease(t *testing.T) {
	q := NewIndexed(10)
	q.Push(0, 10)
	q.DecreaseKey(0, 50)
	if got := q.Priority(0); got != 10 {
		t.Fatalf("priority after attempted increase = %g, want 10", got)
	}
}

func TestIndexedPushExistingActsAsDecrease(t *testing.T) {
	q := NewIndexed(4)
	q.Push(0, 10)
	q.Push(0, 4)
	if got := q.Priority(0); got != 4 {
		t.Fatalf("priority = %g, want 4", got)
	}
	q.Push(0, 99) // must not raise
	if got := q.Priority(0); got != 4 {
		t.Fatalf("priority after push-raise = %g, want 4", got)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (no duplicate entries)", q.Len())
	}
}

func TestIndexedContains(t *testing.T) {
	q := NewIndexed(4)
	if q.Contains(2) {
		t.Fatal("Contains(2) on empty queue")
	}
	q.Push(2, 1)
	if !q.Contains(2) {
		t.Fatal("Contains(2) after push = false")
	}
	q.Pop()
	if q.Contains(2) {
		t.Fatal("Contains(2) after pop = true")
	}
}

func TestIndexedReset(t *testing.T) {
	q := NewIndexed(8)
	for i := int32(0); i < 8; i++ {
		q.Push(i, float64(i))
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	for i := int32(0); i < 8; i++ {
		if q.Contains(i) {
			t.Fatalf("Contains(%d) after Reset", i)
		}
	}
	// Queue must be reusable after Reset.
	q.Push(5, 1)
	id, _, _ := q.Pop()
	if id != 5 {
		t.Fatalf("Pop after Reset = %d, want 5", id)
	}
}

func TestIndexedMatchesSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		q := NewIndexed(n)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = rng.Float64() * 1000
			q.Push(int32(i), prios[i])
		}
		// Randomly decrease some keys.
		for j := 0; j < n/2; j++ {
			id := int32(rng.Intn(n))
			np := q.Priority(id) * rng.Float64()
			q.DecreaseKey(id, np)
			prios[id] = np
		}
		sort.Float64s(prios)
		for i := 0; i < n; i++ {
			_, prio, ok := q.Pop()
			if !ok {
				t.Fatalf("trial %d: queue drained early at %d/%d", trial, i, n)
			}
			if prio != prios[i] {
				t.Fatalf("trial %d: pop %d priority = %g, want %g", trial, i, prio, prios[i])
			}
		}
	}
}

func BenchmarkIndexedPushPop(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(1))
	prios := make([]float64, n)
	for i := range prios {
		prios[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := NewIndexed(n)
		for j := int32(0); j < n; j++ {
			q.Push(j, prios[j])
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}
