package rnet

import (
	"math"
	"sort"

	"road/internal/graph"
	"road/internal/pqueue"
)

// relTol is the relative tolerance for comparing path distances assembled
// from different float64 summation orders.
const relTol = 1e-9

func distEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale || diff == 0
}

// search returns a reusable Dijkstra workspace, recreating it if the graph
// has grown.
func (h *Hierarchy) searchWS() *graph.Search {
	if h.ws == nil || h.wsNodes != h.g.NumNodes() {
		h.ws = graph.NewSearch(h.g)
		h.wsNodes = h.g.NumNodes()
	}
	return h.ws
}

// computeAllShortcuts fills h.shortcuts bottom-up: leaf Rnets by Dijkstra
// restricted to their own edges, upper Rnets over the overlay formed by
// their children's shortcuts (Lemma 2).
func (h *Hierarchy) computeAllShortcuts() {
	h.shortcuts = make([]map[graph.NodeID][]Shortcut, len(h.rnets))
	for level := h.cfg.Levels; level >= 1; level-- {
		for _, r := range h.levels[level-1] {
			h.shortcuts[r] = h.computeShortcuts(r)
		}
	}
}

// computeShortcuts computes the full shortcut set of one Rnet from current
// graph state (leaf) or current child shortcuts (upper), applying Lemma-4
// pruning when configured.
func (h *Hierarchy) computeShortcuts(r RnetID) map[graph.NodeID][]Shortcut {
	var out map[graph.NodeID][]Shortcut
	if h.rnets[r].Level == h.cfg.Levels {
		out = h.computeLeafShortcuts(r)
	} else {
		out = h.computeUpperShortcuts(r)
	}
	if h.cfg.PruneMaxBorders > 0 && len(h.rnets[r].Borders) <= h.cfg.PruneMaxBorders {
		prune(out)
	}
	return out
}

// computeLeafShortcuts runs, for every border node of leaf Rnet r, a
// Dijkstra restricted to r's edges, recording shortest paths to the other
// border nodes.
func (h *Hierarchy) computeLeafShortcuts(r RnetID) map[graph.NodeID][]Shortcut {
	borders := h.rnets[r].Borders
	out := make(map[graph.NodeID][]Shortcut, len(borders))
	if len(borders) < 2 {
		return out
	}
	ws := h.searchWS()
	filter := func(e graph.EdgeID) bool { return h.LeafOf(e) == r }
	for _, b := range borders {
		targets := make([]graph.NodeID, 0, len(borders)-1)
		for _, b2 := range borders {
			if b2 != b {
				targets = append(targets, b2)
			}
		}
		ws.Run(b, graph.Options{Filter: filter, Targets: targets})
		var scs []Shortcut
		for _, b2 := range targets {
			d := ws.Dist(b2)
			if math.IsInf(d, 1) {
				continue // r's sub-network does not connect b to b2
			}
			sc := Shortcut{From: b, To: b2, Dist: d}
			if h.cfg.StorePaths {
				path := ws.Path(b2)
				if len(path) > 2 {
					sc.Via = append([]graph.NodeID(nil), path[1:len(path)-1]...)
				}
			}
			scs = append(scs, sc)
		}
		if len(scs) > 0 {
			out[b] = scs
		}
	}
	return out
}

// overlayArc is one edge of the child-shortcut overlay graph.
type overlayArc struct {
	to   graph.NodeID
	dist float64
}

// computeUpperShortcuts derives the shortcuts of an upper-level Rnet by
// Dijkstra over the overlay whose nodes are its children's border nodes
// and whose edges are its children's shortcuts (Lemma 2).
func (h *Hierarchy) computeUpperShortcuts(r RnetID) map[graph.NodeID][]Shortcut {
	borders := h.rnets[r].Borders
	out := make(map[graph.NodeID][]Shortcut, len(borders))
	if len(borders) < 2 {
		return out
	}
	adj := make(map[graph.NodeID][]overlayArc)
	for _, c := range h.rnets[r].Children {
		for from, scs := range h.shortcuts[c] {
			for _, sc := range scs {
				adj[from] = append(adj[from], overlayArc{to: sc.To, dist: sc.Dist})
			}
		}
	}
	isTarget := make(map[graph.NodeID]bool, len(borders))
	for _, b := range borders {
		isTarget[b] = true
	}
	for _, b := range borders {
		dist, parent := overlayDijkstra(adj, b, isTarget)
		var scs []Shortcut
		for _, b2 := range borders {
			if b2 == b {
				continue
			}
			d, ok := dist[b2]
			if !ok {
				continue
			}
			sc := Shortcut{From: b, To: b2, Dist: d}
			if h.cfg.StorePaths {
				sc.Via = overlayPath(parent, b, b2)
			}
			scs = append(scs, sc)
		}
		if len(scs) > 0 {
			out[b] = scs
		}
	}
	return out
}

// overlayDijkstra runs Dijkstra on a map-based overlay from src, stopping
// once every target is settled. It returns final distances and parents.
func overlayDijkstra(adj map[graph.NodeID][]overlayArc, src graph.NodeID, targets map[graph.NodeID]bool) (map[graph.NodeID]float64, map[graph.NodeID]graph.NodeID) {
	dist := make(map[graph.NodeID]float64)
	parent := make(map[graph.NodeID]graph.NodeID)
	settled := make(map[graph.NodeID]bool)
	remaining := 0
	for t := range targets {
		if t != src {
			remaining++
		}
	}
	var pq pqueue.Queue
	dist[src] = 0
	pq.Push(src, 0)
	for pq.Len() > 0 && remaining > 0 {
		item, _ := pq.Pop()
		n := item.Value.(graph.NodeID)
		if settled[n] {
			continue
		}
		settled[n] = true
		if targets[n] && n != src {
			remaining--
		}
		d := dist[n]
		for _, arc := range adj[n] {
			nd := d + arc.dist
			if cur, ok := dist[arc.to]; !ok || nd < cur {
				dist[arc.to] = nd
				parent[arc.to] = n
				pq.Push(arc.to, nd)
			}
		}
	}
	// Report only settled distances (others may be non-final).
	for n := range dist {
		if !settled[n] {
			delete(dist, n)
			delete(parent, n)
		}
	}
	return dist, parent
}

func overlayPath(parent map[graph.NodeID]graph.NodeID, src, dst graph.NodeID) []graph.NodeID {
	var rev []graph.NodeID
	for cur := dst; cur != src; {
		p, ok := parent[cur]
		if !ok {
			return nil
		}
		if p != src {
			rev = append(rev, p)
		}
		cur = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// prune drops transitively redundant shortcuts (Lemma 4): S(b,b″) is
// discarded when retained shortcuts S(b,b′) and original S(b′,b″) compose
// to the same distance. Dropping longest-first keeps the retained set
// distance-complete: every dropped shortcut decomposes into strictly
// shorter stored ones.
func prune(scs map[graph.NodeID][]Shortcut) {
	// Distance matrix over the full (pre-prune) set.
	dist := make(map[[2]graph.NodeID]float64)
	for from, list := range scs {
		for _, sc := range list {
			dist[[2]graph.NodeID{from, sc.To}] = sc.Dist
		}
	}
	nodes := make([]graph.NodeID, 0, len(scs))
	for from := range scs {
		nodes = append(nodes, from)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	for _, from := range nodes {
		list := scs[from]
		// Longest first so cover checks use shorter (never-dropped-later)
		// legs.
		order := make([]int, len(list))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return list[order[a]].Dist > list[order[b]].Dist })
		dropped := make([]bool, len(list))
		for _, i := range order {
			target := list[i].To
			total := list[i].Dist
			for j := range list {
				if dropped[j] || j == i {
					continue
				}
				midDist := list[j].Dist
				if midDist >= total {
					continue
				}
				rest, ok := dist[[2]graph.NodeID{list[j].To, target}]
				if ok && rest < total && distEq(midDist+rest, total) {
					dropped[i] = true
					break
				}
			}
		}
		var kept []Shortcut
		for i, sc := range list {
			if !dropped[i] {
				kept = append(kept, sc)
			}
		}
		scs[from] = kept
	}
}

// shortcutSetsEqual reports whether two shortcut maps encode the same
// (from, to, dist) triples.
func shortcutSetsEqual(a, b map[graph.NodeID][]Shortcut) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(scs []Shortcut) map[[2]graph.NodeID]float64 {
		m := make(map[[2]graph.NodeID]float64, len(scs))
		for _, sc := range scs {
			m[[2]graph.NodeID{sc.From, sc.To}] = sc.Dist
		}
		return m
	}
	for from, la := range a {
		lb, ok := b[from]
		if !ok || len(la) != len(lb) {
			return false
		}
		ma, mb := key(la), key(lb)
		for k, da := range ma {
			db, ok := mb[k]
			if !ok || !distEq(da, db) {
				return false
			}
		}
	}
	return true
}
