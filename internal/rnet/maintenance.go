package rnet

import (
	"fmt"
	"math"

	"road/internal/graph"
)

// UpdateResult summarizes the incremental work one network change caused —
// the quantities the maintenance experiments (§6.2) report.
type UpdateResult struct {
	// Filtered is true when the leaf-level filter proved no shortcut could
	// be affected and the update stopped immediately.
	Filtered bool
	// RecomputedRnets lists the Rnets whose shortcut sets were recomputed,
	// bottom-up.
	RecomputedRnets []RnetID
	// ChangedRnets lists the subset whose shortcut sets actually changed.
	ChangedRnets []RnetID
}

// SetEdgeWeight changes the weight of edge e (travel distance, trip time
// or toll, §5.2.1) and incrementally repairs affected shortcuts with the
// filter-and-refresh scheme: the exact leaf-level filter decides whether
// any shortcut of the enclosing Rnet can be affected; on a hit, the leaf
// Rnet's shortcuts are refreshed and the update propagates to ancestors
// only while their shortcut sets keep changing (Lemma 2).
func (h *Hierarchy) SetEdgeWeight(e graph.EdgeID, w float64) (UpdateResult, error) {
	old := h.g.Weight(e)
	if err := h.g.SetWeight(e, w); err != nil {
		return UpdateResult{}, err
	}
	if old == w {
		return UpdateResult{Filtered: true}, nil
	}
	// The weight is already applied; even a filtered update invalidates
	// derived indexes that bake edge weights in.
	h.topoGen++
	leaf := h.LeafOf(e)
	if leaf == NoRnet {
		return UpdateResult{Filtered: true}, nil
	}
	if !h.filterAffected(leaf, e, old, w) {
		return UpdateResult{Filtered: true}, nil
	}
	res := h.refreshChains([]RnetID{leaf})
	return res, nil
}

// filterAffected implements the §5.2.1 filter step exactly: with dn and
// dn′ the within-Rnet distances from the changed edge's endpoints to the
// Rnet's borders computed avoiding the edge itself, a stored shortcut
// S(b,b′) is affected by an increase iff its distance equals
// dn(b)+old+dn′(b′) for either edge orientation (its path ran through the
// edge), and by a decrease iff dn(b)+new+dn′(b′) beats its distance (a
// better path now runs through the edge).
func (h *Hierarchy) filterAffected(leaf RnetID, e graph.EdgeID, oldW, newW float64) bool {
	scs := h.shortcuts[leaf]
	if len(scs) == 0 {
		return false
	}
	ed := h.g.Edge(e)
	ws := h.searchWS()
	filter := func(x graph.EdgeID) bool { return x != e && h.LeafOf(x) == leaf }
	borders := h.rnets[leaf].Borders

	distFrom := func(src graph.NodeID) map[graph.NodeID]float64 {
		ws.Run(src, graph.Options{Filter: filter, Targets: borders})
		m := make(map[graph.NodeID]float64, len(borders))
		for _, b := range borders {
			if d := ws.Dist(b); !math.IsInf(d, 1) {
				m[b] = d
			}
		}
		return m
	}
	du := distFrom(ed.U)
	dv := distFrom(ed.V)

	through := func(b, b2 graph.NodeID, w float64) (float64, bool) {
		best := math.Inf(1)
		if a, ok := du[b]; ok {
			if c, ok2 := dv[b2]; ok2 {
				best = a + w + c
			}
		}
		if a, ok := dv[b]; ok {
			if c, ok2 := du[b2]; ok2 && a+w+c < best {
				best = a + w + c
			}
		}
		return best, !math.IsInf(best, 1)
	}

	for from, list := range scs {
		for _, sc := range list {
			if newW > oldW { // increase: was the stored path through e?
				if d, ok := through(from, sc.To, oldW); ok && distEq(d, sc.Dist) {
					return true
				}
			} else { // decrease: does a path through e now beat it?
				if d, ok := through(from, sc.To, newW); ok && d < sc.Dist && !distEq(d, sc.Dist) {
					return true
				}
			}
		}
	}
	// A decrease can also create connectivity where none existed (borders
	// with no stored shortcut); recompute conservatively in that rare case.
	if newW < oldW {
		for _, b := range borders {
			for _, b2 := range borders {
				if b == b2 {
					continue
				}
				if !hasShortcut(scs, b, b2) {
					if _, ok := through(b, b2, newW); ok {
						return true
					}
				}
			}
		}
	}
	return false
}

func hasShortcut(scs map[graph.NodeID][]Shortcut, from, to graph.NodeID) bool {
	for _, sc := range scs[from] {
		if sc.To == to {
			return true
		}
	}
	return false
}

// refreshChains recomputes the shortcut sets of the given dirty Rnets and
// propagates upward level by level while sets keep changing.
func (h *Hierarchy) refreshChains(dirty []RnetID) UpdateResult {
	var res UpdateResult
	pending := make(map[RnetID]bool)
	for _, r := range dirty {
		pending[r] = true
	}
	for level := h.cfg.Levels; level >= 1; level-- {
		for _, r := range h.levels[level-1] {
			if !pending[r] {
				continue
			}
			delete(pending, r)
			res.RecomputedRnets = append(res.RecomputedRnets, r)
			fresh := h.computeShortcuts(r)
			if shortcutSetsEqual(h.shortcuts[r], fresh) {
				continue
			}
			h.shortcuts[r] = fresh
			res.ChangedRnets = append(res.ChangedRnets, r)
			if p := h.rnets[r].Parent; p != NoRnet {
				pending[p] = true
			}
		}
	}
	return res
}

// AddEdge inserts a new road segment between existing nodes u and v
// (§5.2.2). When both endpoints' edges lie in the same leaf Rnet the
// change is handled like a distance change from infinity; otherwise the
// edge joins u's leaf Rnet and v is promoted to a border node of the
// Rnets it now spans, with new shortcuts created for it.
func (h *Hierarchy) AddEdge(u, v graph.NodeID, w float64) (graph.EdgeID, UpdateResult, error) {
	e, err := h.g.AddEdge(u, v, w)
	if err != nil {
		return graph.NoEdge, UpdateResult{}, err
	}
	h.ensureNodeCapacity()
	// Extend the edge-indexed maps before any failure return: even a
	// rolled-back AddEdge consumes an edge ID (the removed stub), and
	// every map must keep covering all of g.NumEdges() — snapshots export
	// them and refuse to load on a length mismatch.
	h.ensureEdgeCapacity(e)
	host := h.chooseHostLeaf(u, v)
	if host == NoRnet {
		// Roll the graph mutation back so a failed AddEdge leaves no live
		// orphan edge behind (the removed stub behaves like a closed road).
		h.g.RemoveEdge(e)
		return graph.NoEdge, UpdateResult{}, fmt.Errorf("rnet: cannot host edge (%d,%d): both endpoints isolated", u, v)
	}
	h.leafOf[e] = host
	h.originLeaf[e] = host
	h.rnets[host].Edges = append(h.rnets[host].Edges, e)
	res := h.repairAfterIncidenceChange(u, v, host)
	h.topoGen++
	return e, res, nil
}

// DeleteEdge removes a road segment (§5.2.2): shortcuts through it are
// repaired, and an endpoint whose remaining edges all fall inside one Rnet
// is demoted from border status.
func (h *Hierarchy) DeleteEdge(e graph.EdgeID) (UpdateResult, error) {
	leaf := h.LeafOf(e)
	ed := h.g.Edge(e)
	if err := h.g.RemoveEdge(e); err != nil {
		return UpdateResult{}, err
	}
	if leaf != NoRnet {
		h.removeEdgeFromLeaf(leaf, e)
		h.leafOf[e] = NoRnet
	}
	res := h.repairAfterIncidenceChange(ed.U, ed.V, leaf)
	h.topoGen++
	return res, nil
}

// RestoreEdge re-attaches a previously deleted edge with its stored weight
// (the evaluation's delete-then-reinsert workload). When every edge
// incident to both endpoints is closed — so no live edge can nominate a
// host leaf — the edge returns to the leaf Rnet it was originally
// assigned to at build (or AddEdge) time.
func (h *Hierarchy) RestoreEdge(e graph.EdgeID) (UpdateResult, error) {
	if err := h.g.RestoreEdge(e); err != nil {
		return UpdateResult{}, err
	}
	ed := h.g.Edge(e)
	host := h.chooseHostLeaf(ed.U, ed.V)
	if host == NoRnet {
		host = h.OriginLeafOf(e)
	}
	if host == NoRnet {
		// Roll the graph mutation back so a failed restore leaves the edge
		// closed rather than live-but-unindexed.
		h.g.RemoveEdge(e)
		return UpdateResult{}, fmt.Errorf("rnet: cannot host restored edge %d", e)
	}
	h.ensureEdgeCapacity(e)
	h.leafOf[e] = host
	if h.originLeaf[e] == NoRnet {
		// First successful hosting of a stub edge: this leaf becomes its
		// origin, as it would have in AddEdge.
		h.originLeaf[e] = host
	}
	h.rnets[host].Edges = append(h.rnets[host].Edges, e)
	res := h.repairAfterIncidenceChange(ed.U, ed.V, host)
	h.topoGen++
	return res, nil
}

// chooseHostLeaf picks the leaf Rnet that will own a new edge (u,v):
// a leaf shared by both endpoints if one exists (the same-Rnet case),
// otherwise u's first leaf, otherwise v's.
func (h *Hierarchy) chooseHostLeaf(u, v graph.NodeID) RnetID {
	uLeaves := h.nodeLeaves(u)
	vLeaves := h.nodeLeaves(v)
	for _, lu := range uLeaves {
		for _, lv := range vLeaves {
			if lu == lv {
				return lu
			}
		}
	}
	if len(uLeaves) > 0 {
		return uLeaves[0]
	}
	if len(vLeaves) > 0 {
		return vLeaves[0]
	}
	return NoRnet
}

// nodeLeaves returns the distinct leaf Rnets of n's live incident edges.
func (h *Hierarchy) nodeLeaves(n graph.NodeID) []RnetID {
	var out []RnetID
	for _, half := range h.g.Neighbors(n) {
		leaf := h.LeafOf(half.Edge)
		if leaf == NoRnet {
			continue
		}
		dup := false
		for _, x := range out {
			if x == leaf {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, leaf)
		}
	}
	return out
}

func (h *Hierarchy) removeEdgeFromLeaf(leaf RnetID, e graph.EdgeID) {
	edges := h.rnets[leaf].Edges
	for i, x := range edges {
		if x == e {
			edges[i] = edges[len(edges)-1]
			h.rnets[leaf].Edges = edges[:len(edges)-1]
			return
		}
	}
}

// repairAfterIncidenceChange recomputes border status of the two affected
// endpoints (promotion/demotion), refreshes shortcut sets of every Rnet
// whose border set or edge set changed, and invalidates the endpoints'
// shortcut trees.
func (h *Hierarchy) repairAfterIncidenceChange(u, v graph.NodeID, hostLeaf RnetID) UpdateResult {
	dirty := make(map[RnetID]bool)
	if hostLeaf != NoRnet {
		dirty[hostLeaf] = true
	}
	for _, n := range [2]graph.NodeID{u, v} {
		before := h.borderMemberships(n)
		h.recomputeNodeBorders(n)
		after := h.borderMemberships(n)
		for r := range symmetricDiff(before, after) {
			h.rebuildBorderList(r)
			dirty[r] = true
		}
		h.InvalidateTree(n)
	}
	var dirtyList []RnetID
	for r := range dirty {
		dirtyList = append(dirtyList, r)
	}
	// Deterministic order for reproducible update traces.
	for i := 0; i < len(dirtyList); i++ {
		for j := i + 1; j < len(dirtyList); j++ {
			if dirtyList[j] < dirtyList[i] {
				dirtyList[i], dirtyList[j] = dirtyList[j], dirtyList[i]
			}
		}
	}
	return h.refreshChains(dirtyList)
}

// borderMemberships returns the set of Rnets for which n is currently a
// border node.
func (h *Hierarchy) borderMemberships(n graph.NodeID) map[RnetID]bool {
	out := make(map[RnetID]bool, len(h.borderRnetsOf[n]))
	for _, r := range h.borderRnetsOf[n] {
		out[r] = true
	}
	return out
}

// ensureEdgeCapacity grows the edge-indexed maps to cover edge e, keeping
// the invariant len(leafOf) == len(originLeaf) == g.NumEdges() that the
// snapshot format depends on.
func (h *Hierarchy) ensureEdgeCapacity(e graph.EdgeID) {
	for int(e) >= len(h.leafOf) {
		h.leafOf = append(h.leafOf, NoRnet)
	}
	for int(e) >= len(h.originLeaf) {
		h.originLeaf = append(h.originLeaf, NoRnet)
	}
}

// ensureNodeCapacity grows per-node bookkeeping after nodes were added to
// the graph (the paper folds node changes into edge changes, §5.2.2).
func (h *Hierarchy) ensureNodeCapacity() {
	for len(h.borderRnetsOf) < h.g.NumNodes() {
		h.borderRnetsOf = append(h.borderRnetsOf, nil)
	}
	for len(h.trees) < h.g.NumNodes() {
		h.trees = append(h.trees, nil)
	}
}

func symmetricDiff(a, b map[RnetID]bool) map[RnetID]bool {
	out := make(map[RnetID]bool)
	for r := range a {
		if !b[r] {
			out[r] = true
		}
	}
	for r := range b {
		if !a[r] {
			out[r] = true
		}
	}
	return out
}
