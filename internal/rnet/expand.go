package rnet

import (
	"fmt"

	"road/internal/graph"
)

// ExpandShortcut materializes the full node sequence of a shortcut,
// endpoints included. Shortcuts are stored hierarchically — an upper-level
// shortcut's Via waypoints are child-level border nodes whose consecutive
// legs are themselves child shortcuts (Figure 5: S(n1,n3) is represented
// as S(n1,nd)·S(nd,n3)) — so expansion recurses down to leaf level, where
// Via holds the actual interior path nodes. The hierarchy must have been
// built with Config.StorePaths.
func (h *Hierarchy) ExpandShortcut(r RnetID, sc Shortcut) ([]graph.NodeID, error) {
	if !h.cfg.StorePaths {
		return nil, fmt.Errorf("rnet: hierarchy built without StorePaths")
	}
	return h.expandShortcut(r, sc)
}

func (h *Hierarchy) expandShortcut(r RnetID, sc Shortcut) ([]graph.NodeID, error) {
	if h.rnets[r].Level == h.cfg.Levels {
		// Leaf: Via already holds the interior path nodes.
		path := make([]graph.NodeID, 0, len(sc.Via)+2)
		path = append(path, sc.From)
		path = append(path, sc.Via...)
		path = append(path, sc.To)
		return path, nil
	}
	// Upper level: expand each leg between consecutive waypoints through
	// the child Rnet that carries it.
	waypoints := make([]graph.NodeID, 0, len(sc.Via)+2)
	waypoints = append(waypoints, sc.From)
	waypoints = append(waypoints, sc.Via...)
	waypoints = append(waypoints, sc.To)
	var path []graph.NodeID
	for i := 1; i < len(waypoints); i++ {
		a, b := waypoints[i-1], waypoints[i]
		childSC, childR, err := h.childShortcut(r, a, b)
		if err != nil {
			return nil, err
		}
		leg, err := h.expandShortcut(childR, childSC)
		if err != nil {
			return nil, err
		}
		if len(path) > 0 {
			leg = leg[1:] // drop the duplicated junction node
		}
		path = append(path, leg...)
	}
	return path, nil
}

// childShortcut finds, among r's children, the minimum-distance shortcut
// from a to b — the overlay arc the upper-level Dijkstra traversed.
func (h *Hierarchy) childShortcut(r RnetID, a, b graph.NodeID) (Shortcut, RnetID, error) {
	var best Shortcut
	var bestR RnetID = NoRnet
	for _, c := range h.rnets[r].Children {
		for _, sc := range h.shortcuts[c][a] {
			if sc.To != b {
				continue
			}
			if bestR == NoRnet || sc.Dist < best.Dist {
				best, bestR = sc, c
			}
		}
	}
	if bestR == NoRnet {
		return Shortcut{}, NoRnet, fmt.Errorf("rnet: no child shortcut %d->%d under Rnet %d", a, b, r)
	}
	return best, bestR, nil
}
