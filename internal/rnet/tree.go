package rnet

import (
	"sort"

	"road/internal/graph"
)

// TreeNode is one entry of a node's shortcut tree (§3.4, Figure 6). For a
// node n, the tree nests the Rnets containing n's incident edges from
// level 1 down to the leaf level: an entry for Rnet R carries whether n is
// a border of R (and therefore has shortcuts across R, fetched live via
// Hierarchy.ShortcutsFrom), the child entries one level down, and — at the
// leaf level — the physical edges of n inside that leaf Rnet.
type TreeNode struct {
	Rnet     RnetID
	Level    int
	IsBorder bool
	Children []*TreeNode
	Edges    []graph.Half // leaf level only: n's edges inside this leaf Rnet
}

// Tree returns node n's shortcut tree, building and caching it on demand.
// The returned slice holds the top-level (level-1) entries. A node with no
// live edges has an empty tree.
func (h *Hierarchy) Tree(n graph.NodeID) []*TreeNode {
	if h.trees[n] != nil {
		return h.trees[n].Children
	}
	root := h.buildTree(n)
	h.trees[n] = root
	return root.Children
}

// InvalidateTree drops the cached tree of n (after incidence or border
// changes).
func (h *Hierarchy) InvalidateTree(n graph.NodeID) {
	h.trees[n] = nil
}

// buildTree assembles the shortcut tree of n from its incident edges'
// ancestor chains. The virtual root has Level 0 and Rnet NoRnet.
func (h *Hierarchy) buildTree(n graph.NodeID) *TreeNode {
	root := &TreeNode{Rnet: NoRnet, Level: 0}
	// Group incident edges by their Rnet at each level, nesting as we go.
	for _, half := range h.g.Neighbors(n) {
		leaf := h.LeafOf(half.Edge)
		if leaf == NoRnet {
			continue
		}
		cur := root
		for level := 1; level <= h.cfg.Levels; level++ {
			r := h.AncestorAt(leaf, level)
			cur = cur.childFor(r, level)
			cur.IsBorder = h.isBorder[r][n]
		}
		cur.Edges = append(cur.Edges, half)
	}
	sortTree(root)
	return root
}

// childFor finds or creates the child entry for Rnet r.
func (t *TreeNode) childFor(r RnetID, level int) *TreeNode {
	for _, c := range t.Children {
		if c.Rnet == r {
			return c
		}
	}
	c := &TreeNode{Rnet: r, Level: level}
	t.Children = append(t.Children, c)
	return c
}

// sortTree orders children by Rnet ID and edges by edge ID so traversal
// order — and therefore every query answer — is deterministic.
func sortTree(t *TreeNode) {
	sort.Slice(t.Children, func(i, j int) bool { return t.Children[i].Rnet < t.Children[j].Rnet })
	sort.Slice(t.Edges, func(i, j int) bool { return t.Edges[i].Edge < t.Edges[j].Edge })
	for _, c := range t.Children {
		sortTree(c)
	}
}

// TreeSizeBytes estimates the storage footprint of node n's shortcut tree
// record (entries plus edge references), for the index-size metric.
func (h *Hierarchy) TreeSizeBytes(n graph.NodeID) int {
	var walk func(t *TreeNode) int
	walk = func(t *TreeNode) int {
		size := 12 + 8*len(t.Edges) // rnet id + flags + (edge,node) pairs
		for _, c := range t.Children {
			size += walk(c)
		}
		return size
	}
	size := 0
	for _, c := range h.Tree(n) {
		size += walk(c)
	}
	if size == 0 {
		size = 4
	}
	return size
}
