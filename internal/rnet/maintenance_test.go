package rnet

import (
	"math"
	"math/rand"
	"testing"

	"road/internal/graph"
)

// verifyInvariants checks, after any sequence of maintenance operations,
// that the hierarchy still satisfies its defining properties: borders match
// Definition 1, leaf edge sets partition the live edges, and every stored
// shortcut distance equals the within-Rnet shortest-path oracle with full
// pair coverage (tests use PruneMaxBorders=0 so coverage is total).
func verifyInvariants(t *testing.T, h *Hierarchy) {
	t.Helper()
	g := h.Graph()

	// Leaf partition covers exactly the live edges.
	seen := make(map[graph.EdgeID]bool)
	for _, id := range h.AtLevel(h.Levels()) {
		for _, e := range h.Rnet(id).Edges {
			if seen[e] {
				t.Fatalf("edge %d in two leaf Rnets", e)
			}
			seen[e] = true
			if g.Edge(e).Removed {
				t.Fatalf("removed edge %d still in leaf Rnet", e)
			}
		}
	}
	if len(seen) != g.CountActiveEdges() {
		t.Fatalf("leaves cover %d edges, live count %d", len(seen), g.CountActiveEdges())
	}

	// Borders match Definition 1 at every level.
	for level := 1; level <= h.Levels(); level++ {
		inout := make(map[graph.NodeID][2]bool) // per Rnet below
		for _, id := range h.AtLevel(level) {
			for k := range inout {
				delete(inout, k)
			}
			for e := 0; e < g.NumEdges(); e++ {
				eid := graph.EdgeID(e)
				if g.Edge(eid).Removed {
					continue
				}
				leaf := h.LeafOf(eid)
				if leaf == NoRnet {
					continue
				}
				ed := g.Edge(eid)
				inside := h.AncestorAt(leaf, level) == id
				for _, n := range [2]graph.NodeID{ed.U, ed.V} {
					v := inout[n]
					if inside {
						v[0] = true
					} else {
						v[1] = true
					}
					inout[n] = v
				}
			}
			for n, v := range inout {
				want := v[0] && v[1]
				if got := h.IsBorder(id, n); got != want {
					t.Fatalf("level %d Rnet %d node %d: IsBorder=%v want %v", level, id, n, got, want)
				}
			}
		}
	}

	// Shortcut distances and coverage.
	for level := 1; level <= h.Levels(); level++ {
		for _, id := range h.AtLevel(level) {
			borders := h.Rnet(id).Borders
			for _, b := range borders {
				stored := make(map[graph.NodeID]float64)
				for _, sc := range h.ShortcutsFrom(id, b) {
					stored[sc.To] = sc.Dist
				}
				for _, b2 := range borders {
					if b2 == b {
						continue
					}
					want := shortcutOracleDist(h, g, id, b, b2)
					got, ok := stored[b2]
					if math.IsInf(want, 1) {
						if ok {
							t.Fatalf("Rnet %d: shortcut %d->%d stored but pair disconnected", id, b, b2)
						}
						continue
					}
					if !ok {
						t.Fatalf("Rnet %d: missing shortcut %d->%d (dist %g)", id, b, b2, want)
					}
					if math.Abs(got-want) > 1e-9*math.Max(1, want) {
						t.Fatalf("Rnet %d: shortcut %d->%d dist %g, oracle %g", id, b, b2, got, want)
					}
				}
			}
		}
	}
}

func maintenanceFixture(t *testing.T, seed int64) *Hierarchy {
	g := testNetwork(t, 250, 290, seed)
	return build(t, g, Config{Fanout: 2, Levels: 3, KLPasses: -1, PruneMaxBorders: 0})
}

func TestSetEdgeWeightIncrease(t *testing.T) {
	h := maintenanceFixture(t, 20)
	g := h.Graph()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		if _, err := h.SetEdgeWeight(e, g.Weight(e)*3); err != nil {
			t.Fatal(err)
		}
	}
	verifyInvariants(t, h)
}

func TestSetEdgeWeightDecrease(t *testing.T) {
	h := maintenanceFixture(t, 21)
	g := h.Graph()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		if _, err := h.SetEdgeWeight(e, g.Weight(e)/4); err != nil {
			t.Fatal(err)
		}
	}
	verifyInvariants(t, h)
}

func TestSetEdgeWeightNoopFiltered(t *testing.T) {
	h := maintenanceFixture(t, 22)
	g := h.Graph()
	e := graph.EdgeID(0)
	res, err := h.SetEdgeWeight(e, g.Weight(e))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Filtered {
		t.Fatal("identical weight not filtered")
	}
}

func TestSetEdgeWeightFilterSkipsUncoveredEdges(t *testing.T) {
	// An edge covered by no shortcut (e.g. a dead-end spur inside an Rnet)
	// must be filtered without any recomputation when its weight grows.
	h := maintenanceFixture(t, 23)
	g := h.Graph()
	filteredCount := 0
	for e := 0; e < g.NumEdges(); e++ {
		eid := graph.EdgeID(e)
		old := g.Weight(eid)
		res, err := h.SetEdgeWeight(eid, old*1.001)
		if err != nil {
			t.Fatal(err)
		}
		if res.Filtered {
			filteredCount++
			if len(res.RecomputedRnets) != 0 {
				t.Fatal("filtered update recomputed Rnets")
			}
		}
		// Restore.
		if _, err := h.SetEdgeWeight(eid, old); err != nil {
			t.Fatal(err)
		}
	}
	if filteredCount == 0 {
		t.Fatal("filter never fired; expected some uncovered edges")
	}
	verifyInvariants(t, h)
}

func TestSetEdgeWeightRejectsInvalid(t *testing.T) {
	h := maintenanceFixture(t, 24)
	if _, err := h.SetEdgeWeight(0, -5); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestUpdatePropagationStopsWhenUnchanged(t *testing.T) {
	// Weight changes that alter only leaf-level shortcuts must not ripple
	// to the root: RecomputedRnets stays shallow for most updates.
	h := maintenanceFixture(t, 25)
	g := h.Graph()
	deeper := 0
	for e := 0; e < 40; e++ {
		eid := graph.EdgeID(e)
		res, err := h.SetEdgeWeight(eid, g.Weight(eid)*1.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.RecomputedRnets) > 1 {
			deeper++
		}
	}
	if deeper == 40 {
		t.Fatal("every update propagated above the leaf; change detection broken")
	}
	verifyInvariants(t, h)
}

func TestDeleteAndRestoreEdge(t *testing.T) {
	h := maintenanceFixture(t, 26)
	g := h.Graph()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		if g.Edge(e).Removed {
			continue
		}
		if _, err := h.DeleteEdge(e); err != nil {
			t.Fatal(err)
		}
		if _, err := h.RestoreEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	verifyInvariants(t, h)
}

// TestRestoreEdgeAfterFullIsolation: closing every edge incident to both
// endpoints leaves chooseHostLeaf with no live edge to nominate a leaf;
// the restore must fall back to the edge's build-time origin leaf instead
// of failing (the ROADMAP-pinned reopen-after-full-isolation bug).
func TestRestoreEdgeAfterFullIsolation(t *testing.T) {
	h := maintenanceFixture(t, 31)
	g := h.Graph()
	e := graph.EdgeID(0)
	ed := g.Edge(e)
	origin := h.OriginLeafOf(e)
	if origin == NoRnet {
		t.Fatalf("edge %d has no origin leaf", e)
	}
	// Close every live edge touching either endpoint (e included).
	for _, n := range [2]graph.NodeID{ed.U, ed.V} {
		for len(g.Neighbors(n)) > 0 {
			if _, err := h.DeleteEdge(g.Neighbors(n)[0].Edge); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := h.RestoreEdge(e); err != nil {
		t.Fatalf("RestoreEdge after full isolation: %v", err)
	}
	if got := h.LeafOf(e); got != origin {
		t.Fatalf("restored edge hosted by Rnet %d, want origin leaf %d", got, origin)
	}
	verifyInvariants(t, h)
}

func TestDeleteEdgePermanent(t *testing.T) {
	h := maintenanceFixture(t, 27)
	g := h.Graph()
	rng := rand.New(rand.NewSource(4))
	removed := 0
	for removed < 5 {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		if g.Edge(e).Removed {
			continue
		}
		if _, err := h.DeleteEdge(e); err != nil {
			t.Fatal(err)
		}
		removed++
	}
	verifyInvariants(t, h)
}

func TestDeleteEdgeDemotesBorder(t *testing.T) {
	// Find a border node of some leaf Rnet with exactly one edge crossing
	// out of it; deleting that edge must demote the node.
	h := maintenanceFixture(t, 28)
	g := h.Graph()
	leafLevel := h.Levels()
	for _, id := range h.AtLevel(leafLevel) {
		for _, b := range h.Rnet(id).Borders {
			outside := []graph.EdgeID{}
			for _, half := range g.Neighbors(b) {
				if h.LeafOf(half.Edge) != id {
					outside = append(outside, half.Edge)
				}
			}
			if len(outside) != 1 {
				continue
			}
			if _, err := h.DeleteEdge(outside[0]); err != nil {
				t.Fatal(err)
			}
			// b may still be a border of id at leaf level through another
			// mechanism only if it still has edges outside; it does not.
			if h.IsBorder(id, b) {
				t.Fatalf("node %d not demoted after losing its only outside edge", b)
			}
			verifyInvariants(t, h)
			return
		}
	}
	t.Skip("no single-outside-edge border in fixture")
}

func TestAddEdgeSameLeaf(t *testing.T) {
	h := maintenanceFixture(t, 29)
	g := h.Graph()
	// Pick two nodes inside the same leaf Rnet, not already adjacent.
	leaf := h.AtLevel(h.Levels())[0]
	edges := h.Rnet(leaf).Edges
	if len(edges) < 2 {
		t.Skip("leaf too small")
	}
	u := g.Edge(edges[0]).U
	var v graph.NodeID = graph.NoNode
	for _, e := range edges[1:] {
		cand := g.Edge(e).V
		if cand != u && g.EdgeBetween(u, cand) == graph.NoEdge {
			v = cand
			break
		}
	}
	if v == graph.NoNode {
		t.Skip("no same-leaf non-adjacent pair")
	}
	e, _, err := h.AddEdge(u, v, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.LeafOf(e) != leaf {
		t.Fatalf("new edge assigned to leaf %d, want %d", h.LeafOf(e), leaf)
	}
	verifyInvariants(t, h)
}

func TestAddEdgeCrossLeafPromotesBorder(t *testing.T) {
	h := maintenanceFixture(t, 30)
	g := h.Graph()
	// Find two interior (non-border at leaf level) nodes in different
	// leaf Rnets.
	leafLevel := h.Levels()
	interior := func(n graph.NodeID) (RnetID, bool) {
		leaves := h.nodeLeaves(n)
		if len(leaves) != 1 {
			return NoRnet, false
		}
		return leaves[0], !h.IsBorder(leaves[0], n)
	}
	var u, v graph.NodeID = graph.NoNode, graph.NoNode
	var uLeaf RnetID
	for n := 0; n < g.NumNodes() && v == graph.NoNode; n++ {
		nid := graph.NodeID(n)
		leaf, ok := interior(nid)
		if !ok {
			continue
		}
		if u == graph.NoNode {
			u, uLeaf = nid, leaf
			continue
		}
		if leaf != uLeaf && g.EdgeBetween(u, nid) == graph.NoEdge {
			v = nid
		}
	}
	if v == graph.NoNode {
		t.Skip("no suitable interior pair")
	}
	e, _, err := h.AddEdge(u, v, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	host := h.LeafOf(e)
	if host != uLeaf {
		t.Fatalf("cross edge hosted in %d, want u's leaf %d", host, uLeaf)
	}
	// v now has an edge outside its own leaf: promoted to border of both.
	if !h.IsBorder(h.nodeLeaves(v)[0], v) && !h.IsBorder(host, v) {
		t.Fatalf("node %d not promoted to border at leaf level %d", v, leafLevel)
	}
	verifyInvariants(t, h)
}

func TestRandomizedMaintenanceSequence(t *testing.T) {
	// Mixed random updates; invariants verified at the end. This is the
	// failure-injection soak for the maintenance machinery.
	h := maintenanceFixture(t, 31)
	g := h.Graph()
	rng := rand.New(rand.NewSource(5))
	var deleted []graph.EdgeID
	for op := 0; op < 60; op++ {
		switch rng.Intn(4) {
		case 0: // increase
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			if !g.Edge(e).Removed {
				if _, err := h.SetEdgeWeight(e, g.Weight(e)*(1+rng.Float64()*2)); err != nil {
					t.Fatal(err)
				}
			}
		case 1: // decrease
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			if !g.Edge(e).Removed {
				if _, err := h.SetEdgeWeight(e, g.Weight(e)*(0.1+rng.Float64()*0.8)); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // delete
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			if !g.Edge(e).Removed && g.Degree(g.Edge(e).U) > 1 && g.Degree(g.Edge(e).V) > 1 {
				if _, err := h.DeleteEdge(e); err != nil {
					t.Fatal(err)
				}
				deleted = append(deleted, e)
			}
		case 3: // restore
			if len(deleted) > 0 {
				e := deleted[len(deleted)-1]
				deleted = deleted[:len(deleted)-1]
				if _, err := h.RestoreEdge(e); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	verifyInvariants(t, h)
}

func TestTreeInvalidationAfterStructuralChange(t *testing.T) {
	h := maintenanceFixture(t, 32)
	g := h.Graph()
	// Build a tree, delete one of the node's edges, tree must reflect it.
	var n graph.NodeID = graph.NoNode
	for i := 0; i < g.NumNodes(); i++ {
		if g.Degree(graph.NodeID(i)) >= 2 {
			n = graph.NodeID(i)
			break
		}
	}
	if n == graph.NoNode {
		t.Skip("no multi-degree node")
	}
	countEdges := func() int {
		total := 0
		var walk func(tn *TreeNode)
		walk = func(tn *TreeNode) {
			total += len(tn.Edges)
			for _, c := range tn.Children {
				walk(c)
			}
		}
		for _, top := range h.Tree(n) {
			walk(top)
		}
		return total
	}
	before := countEdges()
	e := g.Neighbors(n)[0].Edge
	if _, err := h.DeleteEdge(e); err != nil {
		t.Fatal(err)
	}
	after := countEdges()
	if after != before-1 {
		t.Fatalf("tree edges %d -> %d after delete, want %d", before, after, before-1)
	}
}
