package rnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"road/internal/dataset"
	"road/internal/graph"
)

// TestQuickHierarchyInvariants builds hierarchies with random shapes over
// random networks and checks the defining invariants of Definitions 1 and
// 4 plus shortcut exactness on a sample.
func TestQuickHierarchyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 60 + rng.Intn(150)
		g := dataset.MustGenerate(dataset.Spec{
			Name:  "q",
			Nodes: nodes,
			Edges: nodes + rng.Intn(nodes/3+1),
			Seed:  seed,
		})
		cfg := Config{
			Fanout:          2 << rng.Intn(2),
			Levels:          1 + rng.Intn(3),
			KLPasses:        rng.Intn(3),
			PruneMaxBorders: 0,
			Seed:            seed,
		}
		h, err := Build(g, cfg)
		if err != nil {
			return false
		}
		// Leaf partition covers every edge exactly once.
		covered := 0
		for _, id := range h.AtLevel(h.Levels()) {
			covered += len(h.Rnet(id).Edges)
		}
		if covered != g.NumEdges() {
			return false
		}
		// Every level partitions edges via ancestors.
		for level := 1; level <= h.Levels(); level++ {
			counts := make(map[RnetID]int)
			for e := 0; e < g.NumEdges(); e++ {
				counts[h.AncestorAt(h.LeafOf(graph.EdgeID(e)), level)]++
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != g.NumEdges() {
				return false
			}
		}
		// Sampled shortcut exactness.
		for i := 0; i < 10; i++ {
			level := 1 + rng.Intn(h.Levels())
			ids := h.AtLevel(level)
			r := ids[rng.Intn(len(ids))]
			borders := h.Rnet(r).Borders
			if len(borders) == 0 {
				continue
			}
			b := borders[rng.Intn(len(borders))]
			scs := h.ShortcutsFrom(r, b)
			if len(scs) == 0 {
				continue
			}
			sc := scs[rng.Intn(len(scs))]
			want := shortcutOracleDist(h, g, r, sc.From, sc.To)
			if math.Abs(want-sc.Dist) > 1e-9*math.Max(1, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMaintenancePreservesShortcuts applies a random weight change
// and verifies a sampled set of shortcuts stays exact.
func TestQuickMaintenancePreservesShortcuts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dataset.MustGenerate(dataset.Spec{Name: "q", Nodes: 100, Edges: 115, Seed: seed})
		h, err := Build(g, Config{Fanout: 2, Levels: 2, PruneMaxBorders: 0, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			factor := 0.2 + rng.Float64()*3
			if _, err := h.SetEdgeWeight(e, g.Weight(e)*factor); err != nil {
				return false
			}
		}
		for level := 1; level <= h.Levels(); level++ {
			for _, id := range h.AtLevel(level) {
				for _, b := range h.Rnet(id).Borders {
					for _, sc := range h.ShortcutsFrom(id, b) {
						want := shortcutOracleDist(h, g, id, sc.From, sc.To)
						if math.Abs(want-sc.Dist) > 1e-9*math.Max(1, want) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
