package rnet

import (
	"fmt"
	"sort"

	"road/internal/graph"
)

// HierarchyState is the explicit, serializable form of a built Hierarchy:
// everything that cannot be rederived cheaply from the graph — the Rnet
// tree, edge-to-leaf assignments (current and build-time origin), and
// every shortcut set with optional Via waypoints. Border sets, per-level
// indices and shortcut trees are derived state and are reconstructed on
// import. Config.EdgeWeight (a function) does not survive serialization;
// it only influences partitioning, which is already fixed by the state.
type HierarchyState struct {
	Config     Config
	Rnets      []Rnet
	LeafOf     []RnetID
	OriginLeaf []RnetID
	// Shortcuts holds, per Rnet (indexed by RnetID), the outgoing shortcut
	// lists keyed by border node, flattened with sorted keys so encoding
	// is deterministic.
	Shortcuts []ShortcutSet
}

// ShortcutSet is one Rnet's shortcut map flattened for serialization.
type ShortcutSet struct {
	Entries []ShortcutEntry
}

// ShortcutEntry is one border node's outgoing shortcut list, in the exact
// slice order the live hierarchy stores (traversal order matters for
// reproducible query statistics).
type ShortcutEntry struct {
	From      graph.NodeID
	Shortcuts []Shortcut
}

// ExportState captures the hierarchy's private state for snapshotting.
// The returned state shares no mutable slices with the hierarchy.
func (h *Hierarchy) ExportState() *HierarchyState {
	st := &HierarchyState{
		Config:     h.cfg,
		Rnets:      make([]Rnet, len(h.rnets)),
		LeafOf:     append([]RnetID(nil), h.leafOf...),
		OriginLeaf: append([]RnetID(nil), h.originLeaf...),
		Shortcuts:  make([]ShortcutSet, len(h.shortcuts)),
	}
	st.Config.EdgeWeight = nil
	for i := range h.rnets {
		r := h.rnets[i]
		r.Children = append([]RnetID(nil), r.Children...)
		r.Borders = append([]graph.NodeID(nil), r.Borders...)
		r.Edges = append([]graph.EdgeID(nil), r.Edges...)
		st.Rnets[i] = r
	}
	for i, m := range h.shortcuts {
		keys := make([]graph.NodeID, 0, len(m))
		for from := range m {
			keys = append(keys, from)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		set := ShortcutSet{Entries: make([]ShortcutEntry, 0, len(keys))}
		for _, from := range keys {
			scs := make([]Shortcut, len(m[from]))
			for j, sc := range m[from] {
				sc.Via = append([]graph.NodeID(nil), sc.Via...)
				scs[j] = sc
			}
			set.Entries = append(set.Entries, ShortcutEntry{From: from, Shortcuts: scs})
		}
		st.Shortcuts[i] = set
	}
	return st
}

// ImportHierarchy reassembles a Hierarchy over g from exported state,
// validating every cross-reference so corrupt state yields an error, never
// a panic. Border sets and per-level indices are rederived; shortcut trees
// rebuild lazily (or eagerly via the framework's WarmTrees).
//
// ImportHierarchy takes ownership of st and the slices it references —
// snapshot loading is its only caller and decodes fresh state each time;
// avoiding a second copy of every shortcut and border list keeps restart
// O(load).
func ImportHierarchy(g *graph.Graph, st *HierarchyState) (*Hierarchy, error) {
	cfg := st.Config
	if cfg.Fanout < 2 || cfg.Fanout&(cfg.Fanout-1) != 0 {
		return nil, fmt.Errorf("rnet: state: fanout %d not a power of two ≥ 2", cfg.Fanout)
	}
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("rnet: state: levels %d < 1", cfg.Levels)
	}
	numRnets := len(st.Rnets)
	if numRnets == 0 {
		return nil, fmt.Errorf("rnet: state: no Rnets")
	}
	if len(st.LeafOf) != g.NumEdges() || len(st.OriginLeaf) != g.NumEdges() {
		return nil, fmt.Errorf("rnet: state: leaf maps cover %d/%d edges, graph has %d",
			len(st.LeafOf), len(st.OriginLeaf), g.NumEdges())
	}
	if len(st.Shortcuts) != numRnets {
		return nil, fmt.Errorf("rnet: state: %d shortcut sets for %d Rnets", len(st.Shortcuts), numRnets)
	}

	validRnet := func(r RnetID) bool { return r >= 0 && int(r) < numRnets }
	validNode := func(n graph.NodeID) bool { return n >= 0 && int(n) < g.NumNodes() }
	validEdge := func(e graph.EdgeID) bool { return e >= 0 && int(e) < g.NumEdges() }

	h := &Hierarchy{g: g, cfg: cfg}
	h.rnets = make([]Rnet, numRnets)
	h.levels = make([][]RnetID, cfg.Levels)
	for i := range st.Rnets {
		r := st.Rnets[i]
		if r.ID != RnetID(i) {
			return nil, fmt.Errorf("rnet: state: Rnet %d stored at index %d", r.ID, i)
		}
		if r.Level < 1 || r.Level > cfg.Levels {
			return nil, fmt.Errorf("rnet: state: Rnet %d level %d out of range", i, r.Level)
		}
		if r.Level == 1 {
			if r.Parent != NoRnet {
				return nil, fmt.Errorf("rnet: state: level-1 Rnet %d has parent %d", i, r.Parent)
			}
		} else if !validRnet(r.Parent) || st.Rnets[r.Parent].Level != r.Level-1 {
			return nil, fmt.Errorf("rnet: state: Rnet %d has invalid parent %d", i, r.Parent)
		}
		for _, c := range r.Children {
			if !validRnet(c) || st.Rnets[c].Parent != RnetID(i) {
				return nil, fmt.Errorf("rnet: state: Rnet %d has invalid child %d", i, c)
			}
		}
		for _, b := range r.Borders {
			if !validNode(b) {
				return nil, fmt.Errorf("rnet: state: Rnet %d border node %d out of range", i, b)
			}
		}
		if r.Level == cfg.Levels {
			for _, e := range r.Edges {
				if !validEdge(e) {
					return nil, fmt.Errorf("rnet: state: Rnet %d edge %d out of range", i, e)
				}
				if st.LeafOf[e] != RnetID(i) {
					return nil, fmt.Errorf("rnet: state: edge %d listed in leaf %d but assigned to %d", e, i, st.LeafOf[e])
				}
			}
		} else if len(r.Edges) != 0 {
			return nil, fmt.Errorf("rnet: state: non-leaf Rnet %d has materialized edges", i)
		}
		h.rnets[i] = r
		h.levels[r.Level-1] = append(h.levels[r.Level-1], RnetID(i))
	}
	for e, leaf := range st.LeafOf {
		if leaf == NoRnet {
			continue
		}
		if !validRnet(leaf) || h.rnets[leaf].Level != cfg.Levels {
			return nil, fmt.Errorf("rnet: state: edge %d assigned to invalid leaf %d", e, leaf)
		}
		if g.Edge(graph.EdgeID(e)).Removed {
			return nil, fmt.Errorf("rnet: state: removed edge %d still assigned to leaf %d", e, leaf)
		}
	}
	for e, leaf := range st.OriginLeaf {
		if leaf != NoRnet && (!validRnet(leaf) || h.rnets[leaf].Level != cfg.Levels) {
			return nil, fmt.Errorf("rnet: state: edge %d origin leaf %d invalid", e, leaf)
		}
	}
	h.leafOf = st.LeafOf
	h.originLeaf = st.OriginLeaf

	h.shortcuts = make([]map[graph.NodeID][]Shortcut, numRnets)
	for i, set := range st.Shortcuts {
		m := make(map[graph.NodeID][]Shortcut, len(set.Entries))
		for _, entry := range set.Entries {
			if !validNode(entry.From) {
				return nil, fmt.Errorf("rnet: state: Rnet %d shortcut source %d out of range", i, entry.From)
			}
			if _, dup := m[entry.From]; dup {
				return nil, fmt.Errorf("rnet: state: Rnet %d duplicate shortcut source %d", i, entry.From)
			}
			for _, sc := range entry.Shortcuts {
				if sc.From != entry.From || !validNode(sc.To) {
					return nil, fmt.Errorf("rnet: state: Rnet %d shortcut %d->%d malformed", i, sc.From, sc.To)
				}
				if !(sc.Dist >= 0) { // rejects NaN and negatives
					return nil, fmt.Errorf("rnet: state: Rnet %d shortcut %d->%d distance %v invalid", i, sc.From, sc.To, sc.Dist)
				}
				for _, via := range sc.Via {
					if !validNode(via) {
						return nil, fmt.Errorf("rnet: state: Rnet %d shortcut via node %d out of range", i, via)
					}
				}
			}
			m[entry.From] = entry.Shortcuts
		}
		h.shortcuts[i] = m
	}

	// Derived state: border membership indices and empty tree cache.
	h.isBorder = make([]map[graph.NodeID]bool, numRnets)
	for i := range h.isBorder {
		h.isBorder[i] = make(map[graph.NodeID]bool, len(h.rnets[i].Borders))
		for _, b := range h.rnets[i].Borders {
			h.isBorder[i][b] = true
		}
	}
	h.borderRnetsOf = make([][]RnetID, g.NumNodes())
	for i := range h.rnets {
		for _, b := range h.rnets[i].Borders {
			h.borderRnetsOf[b] = append(h.borderRnetsOf[b], RnetID(i))
		}
	}
	h.trees = make([]*TreeNode, g.NumNodes())
	return h, nil
}
