// Package rnet builds and maintains the Rnet hierarchy at the heart of
// ROAD (§3.2–3.3): the road network is recursively partitioned into
// regional sub-networks (Rnets), each bounded by border nodes; every Rnet
// carries shortcuts — shortest paths between its border nodes — computed
// bottom-up level by level (Lemma 2), optionally pruned of transitively
// redundant entries (Lemma 4). Per-node shortcut trees organize each
// node's view of the hierarchy for the traversal algorithm, and
// incremental maintenance (§5.2) keeps shortcuts correct across edge
// re-weights, additions and deletions using the filter-and-refresh scheme.
package rnet

import (
	"fmt"
	"sort"

	"road/internal/graph"
	"road/internal/partition"
)

// RnetID identifies an Rnet within a Hierarchy. Level-1 Rnets come first,
// then level 2, and so on; the implicit level-0 Rnet (the whole network,
// which has no border nodes) is not materialized.
type RnetID = int32

// NoRnet marks the absence of an Rnet.
const NoRnet RnetID = -1

// Rnet is one regional sub-network (Definition 1): a set of edges bounded
// by border nodes. Edge sets are materialized at the leaf level only;
// membership at upper levels follows from the parent chain.
type Rnet struct {
	ID       RnetID
	Level    int // 1..Levels
	Parent   RnetID
	Children []RnetID
	Borders  []graph.NodeID
	Edges    []graph.EdgeID // leaf level only
}

// Shortcut is the shortest path between two border nodes of one Rnet
// (Definition 3), computed over the sub-network the Rnet encloses. Via
// holds intermediate waypoints — interior path nodes at the leaf level,
// child-level border nodes above — when the hierarchy stores paths.
type Shortcut struct {
	From, To graph.NodeID
	Dist     float64
	Via      []graph.NodeID
}

// Config controls hierarchy construction.
type Config struct {
	// Fanout is the partitioning factor p (a power of two ≥ 2; the paper's
	// default is 4).
	Fanout int
	// Levels is the hierarchy depth l ≥ 1 (the paper defaults to 4 for CA
	// and 8 for NA/SF).
	Levels int
	// KLPasses bounds Kernighan–Lin refinement during partitioning;
	// negative selects the partitioner default, 0 disables refinement.
	KLPasses int
	// Seed makes partitioning deterministic.
	Seed int64
	// StorePaths records Via waypoints on shortcuts, enabling full path
	// reconstruction at the cost of memory.
	StorePaths bool
	// PruneMaxBorders applies Lemma-4 transitive pruning in Rnets with at
	// most this many border nodes (the O(B³) test is restricted to small
	// Rnets). 0 disables pruning.
	PruneMaxBorders int
	// EdgeWeight, when non-nil, biases partitioning balance by per-edge
	// weight instead of edge count — the paper's future-work object-based
	// partitioning (weight edges by object load so object-dense areas get
	// finer Rnets). The hierarchy build captures the weights once; later
	// object churn does not re-partition.
	EdgeWeight func(graph.EdgeID) float64
}

// DefaultConfig returns the paper's default settings for a network of the
// given node count: p=4, l=4 below 50k nodes and l=8 at or above.
func DefaultConfig(numNodes int) Config {
	l := 4
	if numNodes >= 50000 {
		l = 8
	}
	return Config{Fanout: 4, Levels: l, KLPasses: -1, PruneMaxBorders: 32}
}

// Hierarchy is the built Rnet hierarchy over one graph.
type Hierarchy struct {
	g   *graph.Graph
	cfg Config

	rnets  []Rnet
	levels [][]RnetID // level (1-based) -> Rnet IDs
	leafOf []RnetID   // edge -> leaf Rnet (NoRnet for never-assigned edges)

	// originLeaf remembers the leaf Rnet each edge was first assigned to
	// (at build time, or when an added edge was hosted). RestoreEdge falls
	// back to it when every edge incident to both endpoints is closed, so
	// a fully isolated road can always be reopened into its original Rnet.
	originLeaf []RnetID

	// shortcuts[r] maps a border node of Rnet r to its outgoing shortcuts.
	shortcuts []map[graph.NodeID][]Shortcut

	// trees caches per-node shortcut trees (built on demand).
	trees []*TreeNode

	// isBorder[r] is the border set of Rnet r for O(1) membership tests;
	// borderRnetsOf[n] is the inverse: the Rnets n is a border of.
	isBorder      []map[graph.NodeID]bool
	borderRnetsOf [][]RnetID

	// ws is the reusable Dijkstra workspace for shortcut computation,
	// recreated when the graph gains nodes.
	ws      *graph.Search
	wsNodes int

	// topoGen counts completed topology and weight mutations (edge weight
	// changes, additions, closures, reopenings). Derived flat indexes —
	// the core CSR slabs bake shortcut distances and edge weights in —
	// compare generations to detect staleness without subscribing to
	// individual invalidations.
	topoGen uint64
}

// TopoGen returns the hierarchy's topology generation: incremented by
// every successful SetEdgeWeight (when the weight actually changed),
// AddEdge, DeleteEdge and RestoreEdge. A derived structure recording the
// generation it was built at is stale iff the generations differ.
func (h *Hierarchy) TopoGen() uint64 { return h.topoGen }

// Build constructs the Rnet hierarchy for g.
func Build(g *graph.Graph, cfg Config) (*Hierarchy, error) {
	if cfg.Fanout < 2 || cfg.Fanout&(cfg.Fanout-1) != 0 {
		return nil, fmt.Errorf("rnet: fanout must be a power of two ≥ 2, got %d", cfg.Fanout)
	}
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("rnet: levels must be ≥ 1, got %d", cfg.Levels)
	}
	h := &Hierarchy{g: g, cfg: cfg}
	if err := h.partition(); err != nil {
		return nil, err
	}
	h.originLeaf = append([]RnetID(nil), h.leafOf...)
	h.computeBorders()
	h.computeAllShortcuts()
	h.trees = make([]*TreeNode, g.NumNodes())
	return h, nil
}

// Graph returns the underlying road network.
func (h *Hierarchy) Graph() *graph.Graph { return h.g }

// Config returns the configuration the hierarchy was built with.
func (h *Hierarchy) Config() Config { return h.cfg }

// Levels returns the hierarchy depth l.
func (h *Hierarchy) Levels() int { return h.cfg.Levels }

// NumRnets returns the number of materialized Rnets across all levels.
func (h *Hierarchy) NumRnets() int { return len(h.rnets) }

// Rnet returns the Rnet with the given ID.
func (h *Hierarchy) Rnet(id RnetID) *Rnet { return &h.rnets[id] }

// AtLevel returns the IDs of all Rnets at the given level (1-based).
func (h *Hierarchy) AtLevel(level int) []RnetID { return h.levels[level-1] }

// LeafOf returns the leaf Rnet containing edge e, or NoRnet if the edge was
// added to the graph without being registered with the hierarchy.
func (h *Hierarchy) LeafOf(e graph.EdgeID) RnetID {
	if int(e) >= len(h.leafOf) {
		return NoRnet
	}
	return h.leafOf[e]
}

// OriginLeafOf returns the leaf Rnet edge e was originally assigned to
// (NoRnet for edges never hosted by the hierarchy). Unlike LeafOf it is
// stable across closures: a closed edge keeps its origin.
func (h *Hierarchy) OriginLeafOf(e graph.EdgeID) RnetID {
	if int(e) >= len(h.originLeaf) {
		return NoRnet
	}
	return h.originLeaf[e]
}

// AncestorAt returns the ancestor of Rnet r at the given level (which must
// be ≤ r's level).
func (h *Hierarchy) AncestorAt(r RnetID, level int) RnetID {
	for h.rnets[r].Level > level {
		r = h.rnets[r].Parent
	}
	return r
}

// AncestorChain returns r and its ancestors ordered leaf-to-root
// (level l first, level 1 last) starting from leaf Rnet r.
func (h *Hierarchy) AncestorChain(r RnetID) []RnetID {
	var out []RnetID
	for r != NoRnet {
		out = append(out, r)
		r = h.rnets[r].Parent
	}
	return out
}

// IsBorder reports whether n is a border node of Rnet r.
func (h *Hierarchy) IsBorder(r RnetID, n graph.NodeID) bool {
	return h.isBorder[r][n]
}

// ShortcutsFrom returns the shortcuts leaving border node n across Rnet r.
// The slice is owned by the hierarchy.
func (h *Hierarchy) ShortcutsFrom(r RnetID, n graph.NodeID) []Shortcut {
	return h.shortcuts[r][n]
}

// ShortcutCount returns the total number of stored shortcuts.
func (h *Hierarchy) ShortcutCount() int {
	total := 0
	for _, m := range h.shortcuts {
		for _, scs := range m {
			total += len(scs)
		}
	}
	return total
}

// BorderCount returns the total number of (Rnet, border) incidences.
func (h *Hierarchy) BorderCount() int {
	total := 0
	for i := range h.rnets {
		total += len(h.rnets[i].Borders)
	}
	return total
}

// SizeBytes estimates the hierarchy's storage footprint: Rnet records,
// border lists and shortcuts (with Via waypoints when stored). It is the
// Route-Overlay component of the paper's index-size metric.
func (h *Hierarchy) SizeBytes() int64 {
	const (
		nodeIDSize   = 4
		shortcutSize = 4 + 4 + 8 // from + to + dist
		rnetFixed    = 24
	)
	var total int64
	for i := range h.rnets {
		r := &h.rnets[i]
		total += rnetFixed
		total += int64(len(r.Borders)) * nodeIDSize
		total += int64(len(r.Edges)) * 4
	}
	for _, m := range h.shortcuts {
		for _, scs := range m {
			for _, sc := range scs {
				total += shortcutSize
				total += int64(len(sc.Via)) * nodeIDSize
			}
		}
	}
	return total
}

// partition recursively splits the edge set into the Rnet tree.
func (h *Hierarchy) partition() error {
	all := make([]graph.EdgeID, 0, h.g.NumEdges())
	for e := 0; e < h.g.NumEdges(); e++ {
		if !h.g.Edge(graph.EdgeID(e)).Removed {
			all = append(all, graph.EdgeID(e))
		}
	}
	h.leafOf = make([]RnetID, h.g.NumEdges())
	for i := range h.leafOf {
		h.leafOf[i] = NoRnet
	}
	h.levels = make([][]RnetID, h.cfg.Levels)

	type job struct {
		parent RnetID
		level  int
		edges  []graph.EdgeID
	}
	jobs := []job{{parent: NoRnet, level: 1, edges: all}}
	for len(jobs) > 0 {
		j := jobs[0]
		jobs = jobs[1:]
		parts, err := partition.Split(h.g, j.edges, partition.Options{
			Parts:    h.cfg.Fanout,
			KLPasses: h.cfg.KLPasses,
			Seed:     h.cfg.Seed + int64(j.parent)*7919 + int64(j.level),
			Weight:   h.cfg.EdgeWeight,
		})
		if err != nil {
			return err
		}
		for _, p := range parts {
			id := RnetID(len(h.rnets))
			r := Rnet{ID: id, Level: j.level, Parent: j.parent}
			if j.level == h.cfg.Levels {
				r.Edges = p
				for _, e := range p {
					h.leafOf[e] = id
				}
			}
			h.rnets = append(h.rnets, r)
			h.levels[j.level-1] = append(h.levels[j.level-1], id)
			if j.parent != NoRnet {
				h.rnets[j.parent].Children = append(h.rnets[j.parent].Children, id)
			}
			if j.level < h.cfg.Levels {
				jobs = append(jobs, job{parent: id, level: j.level + 1, edges: p})
			}
		}
	}
	return nil
}

// computeBorders derives border sets for every Rnet at every level: node n
// is a border of level-i Rnet R exactly when n has incident edges both
// inside and outside R (Definition 1).
func (h *Hierarchy) computeBorders() {
	h.isBorder = make([]map[graph.NodeID]bool, len(h.rnets))
	for i := range h.isBorder {
		h.isBorder[i] = make(map[graph.NodeID]bool)
	}
	h.borderRnetsOf = make([][]RnetID, h.g.NumNodes())
	for n := 0; n < h.g.NumNodes(); n++ {
		h.recomputeNodeBorders(graph.NodeID(n))
	}
	h.rebuildBorderLists()
}

// recomputeNodeBorders updates the border membership of one node in
// h.isBorder (but not the per-Rnet Borders slices; see rebuildBorderLists).
func (h *Hierarchy) recomputeNodeBorders(n graph.NodeID) {
	// Drop any existing membership.
	for _, r := range h.borderRnetsOf[n] {
		delete(h.isBorder[r], n)
	}
	h.borderRnetsOf[n] = h.borderRnetsOf[n][:0]
	for level := 1; level <= h.cfg.Levels; level++ {
		rnets := h.nodeRnetsAt(n, level)
		if len(rnets) > 1 {
			for _, r := range rnets {
				h.isBorder[r][n] = true
				h.borderRnetsOf[n] = append(h.borderRnetsOf[n], r)
			}
		}
	}
}

// nodeRnetsAt returns the distinct level-i Rnets containing edges incident
// to n, sorted ascending.
func (h *Hierarchy) nodeRnetsAt(n graph.NodeID, level int) []RnetID {
	var out []RnetID
	for _, half := range h.g.Neighbors(n) {
		leaf := h.LeafOf(half.Edge)
		if leaf == NoRnet {
			continue
		}
		r := h.AncestorAt(leaf, level)
		found := false
		for _, x := range out {
			if x == r {
				found = true
				break
			}
		}
		if !found {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rebuildBorderLists regenerates every Rnet's Borders slice from isBorder.
func (h *Hierarchy) rebuildBorderLists() {
	for i := range h.rnets {
		h.rebuildBorderList(RnetID(i))
	}
}

func (h *Hierarchy) rebuildBorderList(r RnetID) {
	set := h.isBorder[r]
	bs := make([]graph.NodeID, 0, len(set))
	for n := range set {
		bs = append(bs, n)
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	h.rnets[r].Borders = bs
}
