package rnet

import (
	"math"
	"math/rand"
	"testing"

	"road/internal/dataset"
	"road/internal/graph"
)

func testNetwork(t testing.TB, nodes, edges int, seed int64) *graph.Graph {
	t.Helper()
	return dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: nodes, Edges: edges, Seed: seed})
}

func build(t testing.TB, g *graph.Graph, cfg Config) *Hierarchy {
	t.Helper()
	h, err := Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildRejectsBadConfig(t *testing.T) {
	g := testNetwork(t, 50, 60, 1)
	if _, err := Build(g, Config{Fanout: 3, Levels: 2}); err == nil {
		t.Fatal("non-power-of-two fanout accepted")
	}
	if _, err := Build(g, Config{Fanout: 4, Levels: 0}); err == nil {
		t.Fatal("zero levels accepted")
	}
}

func TestHierarchyStructure(t *testing.T) {
	g := testNetwork(t, 500, 570, 2)
	h := build(t, g, Config{Fanout: 4, Levels: 3, KLPasses: -1})
	// Rnet counts per level: 4, 16, 64.
	want := 4
	for level := 1; level <= 3; level++ {
		if got := len(h.AtLevel(level)); got != want {
			t.Fatalf("level %d has %d Rnets, want %d", level, got, want)
		}
		want *= 4
	}
	if h.NumRnets() != 4+16+64 {
		t.Fatalf("NumRnets = %d", h.NumRnets())
	}
	// Parent/child links are mutually consistent.
	for i := 0; i < h.NumRnets(); i++ {
		r := h.Rnet(RnetID(i))
		for _, c := range r.Children {
			if h.Rnet(c).Parent != r.ID {
				t.Fatalf("child %d of %d has parent %d", c, r.ID, h.Rnet(c).Parent)
			}
			if h.Rnet(c).Level != r.Level+1 {
				t.Fatalf("child level mismatch")
			}
		}
		if r.Level == 1 && r.Parent != NoRnet {
			t.Fatalf("level-1 Rnet %d has parent %d", r.ID, r.Parent)
		}
	}
}

func TestLeafEdgesPartitionNetwork(t *testing.T) {
	// Definition 4: leaf edge sets are disjoint and cover every edge.
	g := testNetwork(t, 600, 690, 3)
	h := build(t, g, Config{Fanout: 4, Levels: 3, KLPasses: -1})
	seen := make(map[graph.EdgeID]RnetID)
	for _, id := range h.AtLevel(3) {
		for _, e := range h.Rnet(id).Edges {
			if prev, dup := seen[e]; dup {
				t.Fatalf("edge %d in leaf Rnets %d and %d", e, prev, id)
			}
			seen[e] = id
			if h.LeafOf(e) != id {
				t.Fatalf("LeafOf(%d) = %d, want %d", e, h.LeafOf(e), id)
			}
		}
	}
	if len(seen) != g.NumEdges() {
		t.Fatalf("leaves cover %d edges, want %d", len(seen), g.NumEdges())
	}
}

func TestBordersMatchDefinition(t *testing.T) {
	// A node is a border of Rnet R iff it has incident edges inside and
	// outside R (Definition 1), for every level.
	g := testNetwork(t, 400, 460, 4)
	h := build(t, g, Config{Fanout: 2, Levels: 3, KLPasses: -1})
	for level := 1; level <= 3; level++ {
		for _, id := range h.AtLevel(level) {
			inSet := make(map[graph.NodeID]bool)
			outSet := make(map[graph.NodeID]bool)
			for e := 0; e < g.NumEdges(); e++ {
				leaf := h.LeafOf(graph.EdgeID(e))
				ed := g.Edge(graph.EdgeID(e))
				if h.AncestorAt(leaf, level) == id {
					inSet[ed.U] = true
					inSet[ed.V] = true
				} else {
					outSet[ed.U] = true
					outSet[ed.V] = true
				}
			}
			for n := 0; n < g.NumNodes(); n++ {
				nid := graph.NodeID(n)
				want := inSet[nid] && outSet[nid]
				if got := h.IsBorder(id, nid); got != want {
					t.Fatalf("level %d Rnet %d node %d: IsBorder=%v want %v", level, id, n, got, want)
				}
			}
			// Borders slice matches the membership map.
			for _, b := range h.Rnet(id).Borders {
				if !h.IsBorder(id, b) {
					t.Fatalf("border list of %d contains non-border %d", id, b)
				}
			}
		}
	}
}

func TestBordersOfParentAreBordersOfChildren(t *testing.T) {
	// Definition 4(3): every border of a parent Rnet is a border of one of
	// its children.
	g := testNetwork(t, 500, 560, 5)
	h := build(t, g, Config{Fanout: 4, Levels: 3, KLPasses: -1})
	for level := 1; level < 3; level++ {
		for _, id := range h.AtLevel(level) {
			r := h.Rnet(id)
			for _, b := range r.Borders {
				found := false
				for _, c := range r.Children {
					if h.IsBorder(c, b) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("border %d of level-%d Rnet %d is border of no child", b, level, id)
				}
			}
		}
	}
}

// shortcutOracleDist computes the within-Rnet shortest distance between two
// nodes using a fresh Dijkstra restricted to the Rnet's edge set.
func shortcutOracleDist(h *Hierarchy, g *graph.Graph, r RnetID, from, to graph.NodeID) float64 {
	s := graph.NewSearch(g)
	level := h.Rnet(r).Level
	s.Run(from, graph.Options{
		Filter: func(e graph.EdgeID) bool {
			leaf := h.LeafOf(e)
			return leaf != NoRnet && h.AncestorAt(leaf, level) == r
		},
		Targets: []graph.NodeID{to},
	})
	return s.Dist(to)
}

func TestShortcutDistancesMatchRestrictedDijkstra(t *testing.T) {
	// Core invariant: every stored shortcut's distance equals the true
	// shortest-path distance within its Rnet's sub-network — at every
	// level, even though upper levels are computed from child overlays
	// (Lemma 2).
	g := testNetwork(t, 700, 800, 6)
	h := build(t, g, Config{Fanout: 4, Levels: 3, KLPasses: -1, PruneMaxBorders: 0})
	rng := rand.New(rand.NewSource(1))
	checked := 0
	for level := 1; level <= 3; level++ {
		for _, id := range h.AtLevel(level) {
			for _, b := range h.Rnet(id).Borders {
				scs := h.ShortcutsFrom(id, b)
				for _, sc := range scs {
					if rng.Intn(10) != 0 { // sample to keep runtime bounded
						continue
					}
					want := shortcutOracleDist(h, g, id, sc.From, sc.To)
					if math.Abs(want-sc.Dist) > 1e-9*math.Max(1, want) {
						t.Fatalf("level %d Rnet %d shortcut %d->%d: dist %g, oracle %g",
							level, id, sc.From, sc.To, sc.Dist, want)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no shortcuts sampled; test vacuous")
	}
}

func TestShortcutsCoverConnectedBorderPairs(t *testing.T) {
	// Without pruning, every pair of borders connected within the Rnet
	// must have a shortcut.
	g := testNetwork(t, 300, 340, 7)
	h := build(t, g, Config{Fanout: 4, Levels: 2, KLPasses: -1, PruneMaxBorders: 0})
	for level := 1; level <= 2; level++ {
		for _, id := range h.AtLevel(level) {
			borders := h.Rnet(id).Borders
			for _, b := range borders {
				for _, b2 := range borders {
					if b == b2 {
						continue
					}
					d := shortcutOracleDist(h, g, id, b, b2)
					if math.IsInf(d, 1) {
						continue
					}
					if !hasShortcut(h.shortcuts[id], b, b2) {
						t.Fatalf("missing shortcut %d->%d in Rnet %d (dist %g)", b, b2, id, d)
					}
				}
			}
		}
	}
}

func TestPrunedShortcutsPreserveDistances(t *testing.T) {
	// Lemma 4: after pruning, every border pair's distance is still
	// realized by a chain of retained shortcuts.
	g := testNetwork(t, 300, 340, 8)
	full := build(t, g, Config{Fanout: 4, Levels: 2, KLPasses: -1, PruneMaxBorders: 0})
	pruned := build(t, g, Config{Fanout: 4, Levels: 2, KLPasses: -1, PruneMaxBorders: 1 << 30})
	if pruned.ShortcutCount() > full.ShortcutCount() {
		t.Fatalf("pruning increased shortcuts: %d -> %d", full.ShortcutCount(), pruned.ShortcutCount())
	}
	for level := 1; level <= 2; level++ {
		for _, id := range pruned.AtLevel(level) {
			borders := pruned.Rnet(id).Borders
			// All-pairs over retained shortcuts via Floyd-like relaxation
			// through Dijkstra on the retained set.
			adj := make(map[graph.NodeID][]overlayArc)
			for from, scs := range pruned.shortcuts[id] {
				for _, sc := range scs {
					adj[from] = append(adj[from], overlayArc{to: sc.To, dist: sc.Dist})
				}
			}
			targets := make(map[graph.NodeID]bool)
			for _, b := range borders {
				targets[b] = true
			}
			for _, b := range borders {
				dist, _ := overlayDijkstra(adj, b, targets)
				for _, sc := range full.shortcuts[id][b] {
					got, ok := dist[sc.To]
					if !ok {
						t.Fatalf("Rnet %d: retained set disconnects %d->%d", id, b, sc.To)
					}
					if math.Abs(got-sc.Dist) > 1e-9*math.Max(1, sc.Dist) {
						t.Fatalf("Rnet %d: retained dist %d->%d = %g, full %g", id, b, sc.To, got, sc.Dist)
					}
				}
			}
		}
	}
}

func TestShortcutTreeShape(t *testing.T) {
	g := testNetwork(t, 400, 460, 9)
	h := build(t, g, Config{Fanout: 4, Levels: 3, KLPasses: -1})
	for n := 0; n < g.NumNodes(); n++ {
		nid := graph.NodeID(n)
		tree := h.Tree(nid)
		// Collect edges at tree leaves; must equal the node's adjacency.
		got := make(map[graph.EdgeID]bool)
		var walk func(tn *TreeNode)
		walk = func(tn *TreeNode) {
			if tn.Level == h.Levels() {
				if len(tn.Children) != 0 {
					t.Fatalf("leaf-level entry has children")
				}
				for _, half := range tn.Edges {
					got[half.Edge] = true
				}
				return
			}
			if len(tn.Edges) != 0 {
				t.Fatalf("non-leaf entry carries edges")
			}
			for _, c := range tn.Children {
				walk(c)
			}
		}
		for _, top := range tree {
			if top.Level != 1 {
				t.Fatalf("top entry at level %d", top.Level)
			}
			walk(top)
		}
		want := make(map[graph.EdgeID]bool)
		for _, half := range g.Neighbors(nid) {
			want[half.Edge] = true
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: tree covers %d edges, adjacency has %d", n, len(got), len(want))
		}
		for e := range want {
			if !got[e] {
				t.Fatalf("node %d: edge %d missing from tree", n, e)
			}
		}
		// IsBorder flags must match hierarchy membership.
		var check func(tn *TreeNode)
		check = func(tn *TreeNode) {
			if tn.IsBorder != h.IsBorder(tn.Rnet, nid) {
				t.Fatalf("node %d Rnet %d: tree IsBorder=%v, hierarchy %v",
					n, tn.Rnet, tn.IsBorder, h.IsBorder(tn.Rnet, nid))
			}
			for _, c := range tn.Children {
				check(c)
			}
		}
		for _, top := range tree {
			check(top)
		}
	}
}

func TestTreeBranchingMatchesBorderLevels(t *testing.T) {
	// A node that is a border at level i must have ≥ 2 entries at level i.
	g := testNetwork(t, 300, 340, 10)
	h := build(t, g, Config{Fanout: 2, Levels: 3, KLPasses: -1})
	for n := 0; n < g.NumNodes(); n++ {
		nid := graph.NodeID(n)
		level := h.Tree(nid)
		for lv := 1; lv <= 3; lv++ {
			isBorderAtLevel := false
			for _, r := range h.AtLevel(lv) {
				if h.IsBorder(r, nid) {
					isBorderAtLevel = true
					break
				}
			}
			// A border at level lv has edges in ≥ 2 distinct level-lv
			// Rnets, so the tree holds ≥ 2 entries at that depth overall.
			if isBorderAtLevel && len(level) < 2 {
				t.Fatalf("node %d border at level %d but tree has %d entries there", n, lv, len(level))
			}
			var next []*TreeNode
			for _, e := range level {
				next = append(next, e.Children...)
			}
			level = next
		}
	}
}

func TestAncestorHelpers(t *testing.T) {
	g := testNetwork(t, 200, 230, 11)
	h := build(t, g, Config{Fanout: 4, Levels: 3, KLPasses: -1})
	leaf := h.AtLevel(3)[7]
	chain := h.AncestorChain(leaf)
	if len(chain) != 3 {
		t.Fatalf("chain length = %d, want 3", len(chain))
	}
	if chain[0] != leaf {
		t.Fatal("chain does not start at leaf")
	}
	for i := 1; i < len(chain); i++ {
		if h.Rnet(chain[i]).Level != h.Rnet(chain[i-1]).Level-1 {
			t.Fatal("chain levels not decreasing")
		}
	}
	if h.AncestorAt(leaf, 1) != chain[2] {
		t.Fatal("AncestorAt(leaf,1) mismatch")
	}
	if h.AncestorAt(leaf, 3) != leaf {
		t.Fatal("AncestorAt(leaf,3) should be identity")
	}
}

func TestSizeAndCountStats(t *testing.T) {
	g := testNetwork(t, 300, 340, 12)
	h := build(t, g, Config{Fanout: 4, Levels: 2, KLPasses: -1})
	if h.ShortcutCount() <= 0 {
		t.Fatal("no shortcuts built")
	}
	if h.BorderCount() <= 0 {
		t.Fatal("no borders")
	}
	if h.SizeBytes() <= 0 {
		t.Fatal("SizeBytes = 0")
	}
	if h.TreeSizeBytes(0) <= 0 {
		t.Fatal("TreeSizeBytes = 0")
	}
}

func TestDefaultConfig(t *testing.T) {
	small := DefaultConfig(21048)
	if small.Levels != 4 || small.Fanout != 4 {
		t.Fatalf("small config = %+v", small)
	}
	big := DefaultConfig(175813)
	if big.Levels != 8 {
		t.Fatalf("big config levels = %d", big.Levels)
	}
}

func TestStorePathsViaWaypoints(t *testing.T) {
	g := testNetwork(t, 300, 340, 13)
	h := build(t, g, Config{Fanout: 4, Levels: 2, KLPasses: -1, StorePaths: true, PruneMaxBorders: 0})
	s := graph.NewSearch(g)
	// Leaf-level Via chains must be real paths with matching length.
	for _, id := range h.AtLevel(2) {
		for _, b := range h.Rnet(id).Borders {
			for _, sc := range h.ShortcutsFrom(id, b) {
				nodes := append([]graph.NodeID{sc.From}, sc.Via...)
				nodes = append(nodes, sc.To)
				var total float64
				ok := true
				for i := 1; i < len(nodes); i++ {
					e := g.EdgeBetween(nodes[i-1], nodes[i])
					if e == graph.NoEdge {
						ok = false
						break
					}
					total += g.Weight(e)
				}
				if !ok {
					continue // upper-level via chains are border sequences, skip
				}
				if math.Abs(total-sc.Dist) > 1e-9*math.Max(1, sc.Dist) {
					want := s.ShortestDist(sc.From, sc.To)
					t.Fatalf("via path length %g != shortcut dist %g (true %g)", total, sc.Dist, want)
				}
			}
		}
	}
}
