package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"road"
)

// buildLattice returns a 4×4 lattice DB with irregular weights (no two
// alternative routes tie, so query answers are unique) and a few objects.
func buildLattice(t *testing.T) *road.DB {
	t.Helper()
	b := road.NewNetworkBuilder()
	const n = 4
	var ids [n][n]road.NodeID
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			ids[y][x] = b.AddNode(float64(x), float64(y))
		}
	}
	w := func(i int) float64 { return 1 + 0.37*float64(i%5) + 0.013*float64(i%11) }
	i := 0
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if x+1 < n {
				b.AddRoad(ids[y][x], ids[y][x+1], w(i))
				i++
			}
			if y+1 < n {
				b.AddRoad(ids[y][x], ids[y+1][x], w(i))
				i++
			}
		}
	}
	db, err := road.Open(b, road.Options{Levels: 2, StorePaths: true, Seed: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, e := range []road.EdgeID{0, 5, 11, 17, 22} {
		if _, err := db.AddObject(e, 0.3, int32(e%3)+1); err != nil {
			t.Fatalf("AddObject(%d): %v", e, err)
		}
	}
	return db
}

// TestSnapshotRestartEquivalence exercises the full roadd durability flow
// in-process: serve with a journal attached, mutate over HTTP, snapshot
// mid-stream via /admin/snapshot, mutate more (including an op that
// fails), then "restart" — load the snapshot, replay the journal tail —
// and require the restarted server to answer every query identically.
func TestSnapshotRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "index.snap")
	jPath := filepath.Join(dir, "ops.wal")

	db := buildLattice(t)
	journal, err := road.OpenJournal(jPath)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer journal.Close()
	if err := db.AttachJournal(journal); err != nil {
		t.Fatal(err)
	}

	srvA := New(db, Options{SnapshotSave: func() (int64, error) { return 0, db.SaveSnapshotFile(snapPath) }})
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	// Pre-snapshot mutations.
	postJSON[MaintenanceResponse](t, tsA, "/maintenance/set-distance", MaintenanceRequest{Edge: 2, Dist: 3.3}, http.StatusOK)
	postJSON[MaintenanceResponse](t, tsA, "/maintenance/close", MaintenanceRequest{Edge: 7}, http.StatusOK)
	ins := postJSON[MaintenanceResponse](t, tsA, "/maintenance/insert-object", MaintenanceRequest{Edge: 4, Offset: 0.6, Attr: 2}, http.StatusOK)

	snap := postJSON[SnapshotResponse](t, tsA, "/admin/snapshot", struct{}{}, http.StatusOK)
	if !snap.OK || snap.JournalSeq == 0 {
		t.Fatalf("snapshot response %+v", snap)
	}

	// Post-snapshot mutations — these must come back via journal replay.
	postJSON[MaintenanceResponse](t, tsA, "/maintenance/reopen", MaintenanceRequest{Edge: 7}, http.StatusOK)
	postJSON[MaintenanceResponse](t, tsA, "/maintenance/close", MaintenanceRequest{Edge: 13}, http.StatusOK)
	// A failing op: closing the same edge again. It is journaled (write-
	// ahead) and must fail identically on replay.
	postJSON[ErrorResponse](t, tsA, "/maintenance/close", MaintenanceRequest{Edge: 13}, http.StatusUnprocessableEntity)
	add := postJSON[MaintenanceResponse](t, tsA, "/maintenance/add-road", MaintenanceRequest{U: 0, V: 5, Dist: 0.9}, http.StatusOK)
	postJSON[MaintenanceResponse](t, tsA, "/maintenance/insert-object", MaintenanceRequest{Edge: add.Edge, Offset: 0.2, Attr: 1}, http.StatusOK)
	postJSON[MaintenanceResponse](t, tsA, "/maintenance/set-attr", MaintenanceRequest{Object: ins.Object, Attr: 3}, http.StatusOK)
	postJSON[MaintenanceResponse](t, tsA, "/maintenance/delete-object", MaintenanceRequest{Object: 1}, http.StatusOK)

	// "Restart": reopen from snapshot + journal, exactly as roadd does.
	db2, err := road.OpenSnapshotFile(snapPath)
	if err != nil {
		t.Fatalf("OpenSnapshotFile: %v", err)
	}
	journal2, err := road.OpenJournal(jPath)
	if err != nil {
		t.Fatalf("OpenJournal (restart): %v", err)
	}
	defer journal2.Close()
	applied, rerr := db2.ReplayJournal(journal2)
	if rerr == nil {
		t.Fatal("replay should report the deliberately failing op")
	}
	if applied == 0 {
		t.Fatal("replay applied nothing")
	}
	if err := db2.AttachJournal(journal2); err != nil {
		t.Fatal(err)
	}

	if db.Epoch() != db2.Epoch() {
		t.Fatalf("epoch diverged after restart: %d vs %d", db.Epoch(), db2.Epoch())
	}

	tsB := httptest.NewServer(New(db2, Options{}).Handler())
	defer tsB.Close()

	nodes := db.Framework().Graph().NumNodes()
	for node := 0; node < nodes; node++ {
		for _, q := range []string{
			fmt.Sprintf("/knn?node=%d&k=3", node),
			fmt.Sprintf("/knn?node=%d&k=2&attr=1", node),
			fmt.Sprintf("/within?node=%d&radius=2.5", node),
			fmt.Sprintf("/within?node=%d&radius=4&attr=3", node),
		} {
			a := getJSON[QueryResponse](t, tsA, q, http.StatusOK)
			b := getJSON[QueryResponse](t, tsB, q, http.StatusOK)
			if !reflect.DeepEqual(a.Results, b.Results) {
				t.Fatalf("GET %s diverged after restart:\n  pre:  %+v\n  post: %+v", q, a.Results, b.Results)
			}
			if a.Epoch != b.Epoch {
				t.Fatalf("GET %s epoch diverged: %d vs %d", q, a.Epoch, b.Epoch)
			}
		}
	}
	// Paths too (StorePaths survived the snapshot).
	pq := fmt.Sprintf("/path?node=0&object=%d", ins.Object)
	a := getJSON[PathResponse](t, tsA, pq, http.StatusOK)
	b := getJSON[PathResponse](t, tsB, pq, http.StatusOK)
	if a.Dist != b.Dist || !reflect.DeepEqual(a.Path, b.Path) {
		t.Fatalf("GET %s diverged after restart:\n  pre:  %+v\n  post: %+v", pq, a, b)
	}

	// Both servers keep accepting maintenance afterwards, staying in sync.
	ra := postJSON[MaintenanceResponse](t, tsA, "/maintenance/set-distance", MaintenanceRequest{Edge: 2, Dist: 1.1}, http.StatusOK)
	rb := postJSON[MaintenanceResponse](t, tsB, "/maintenance/set-distance", MaintenanceRequest{Edge: 2, Dist: 1.1}, http.StatusOK)
	if ra.Epoch != rb.Epoch {
		t.Fatalf("post-restart maintenance epochs diverged: %d vs %d", ra.Epoch, rb.Epoch)
	}
}

// TestAdminSnapshotUnconfigured: without a SnapshotSave callback the
// endpoint reports 501, not a panic or a silent no-op.
func TestAdminSnapshotUnconfigured(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()
	postJSON[ErrorResponse](t, ts, "/admin/snapshot", struct{}{}, http.StatusNotImplemented)
}
