package server

import "sync"

// Coordinator is the epoch-guarded reader/writer layer that lifts the
// library's "sessions must not overlap with maintenance" contract into an
// enforced guarantee. Any number of readers (queries on pooled sessions)
// run concurrently under the read lock; a writer (maintenance operation)
// waits for in-flight readers, runs exclusively, and advances the
// maintenance epoch before readers resume.
//
// The epoch itself is owned by the underlying road.DB — every successful
// mutation bumps it — so the Coordinator only observes it. Observing
// under the read lock gives readers a crucial property: the epoch they
// see is the epoch their whole query executes under, because no writer
// can intervene while they hold the lock. That snapshot consistency is
// what makes epoch-keyed result caching sound.
type Coordinator struct {
	mu    sync.RWMutex
	epoch func() uint64
}

// NewCoordinator wraps an epoch source, typically (*road.DB).Epoch.
func NewCoordinator(epoch func() uint64) *Coordinator {
	return &Coordinator{epoch: epoch}
}

// Read runs fn under the shared read lock. The epoch passed to fn is
// stable for fn's whole execution: maintenance cannot run until fn
// returns, so any result fn computes is valid at exactly that epoch.
func (c *Coordinator) Read(fn func(epoch uint64)) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	fn(c.epoch())
}

// Write runs fn exclusively: it waits out all in-flight readers, blocks
// new ones, and returns the post-mutation epoch alongside fn's error.
func (c *Coordinator) Write(fn func() error) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := fn()
	return c.epoch(), err
}

// Epoch returns the current maintenance epoch without taking the lock;
// use it for monitoring, not for tagging query results.
func (c *Coordinator) Epoch() uint64 { return c.epoch() }
