package server

import "sync"

// Coordinator is the reader/writer layer between the HTTP handlers and
// the served road.Store. It runs in one of two modes, chosen by how much
// synchronization the store itself provides:
//
//   - Externally coordinated (NewCoordinator; road.DB): the store does no
//     internal locking, so the Coordinator lifts the library's "sessions
//     must not overlap with maintenance" contract into an enforced
//     guarantee with one store-wide RWMutex. Any number of readers run
//     concurrently under the read lock; a writer waits out in-flight
//     readers and runs exclusively.
//
//   - Self-coordinated (NewSelfCoordinated; road.ShardedDB and any other
//     road.Synchronized store): queries and mutations synchronize
//     internally with per-shard write locks, so the Coordinator imposes
//     no locking at all — a mutation stalls only readers of its own
//     shard, not the whole server. Whole-store exclusion (snapshot
//     saves) delegates to the store's Exclusive.
//
// The epoch itself is owned by the underlying store — every successful
// mutation bumps it — so the Coordinator only observes it. In the locked
// mode the epoch a reader sees is the epoch its whole query executes
// under, because no writer can intervene while it holds the read lock.
// In the self-coordinated mode that guarantee is replaced by Read's
// return value: it reports whether the epoch was stable across the
// reader's execution, and the result cache only admits answers from
// stable reads — which keeps epoch-keyed caching sound in both modes.
type Coordinator struct {
	mu        *sync.RWMutex // nil in self-coordinated mode
	epoch     func() uint64
	exclusive func(fn func() error) error // non-nil in self-coordinated mode
}

// NewCoordinator wraps an epoch source (typically the served
// road.Store's Epoch method) in the externally-coordinated mode: one
// store-wide reader/writer lock.
func NewCoordinator(epoch func() uint64) *Coordinator {
	return &Coordinator{mu: &sync.RWMutex{}, epoch: epoch}
}

// NewSelfCoordinated returns a pass-through Coordinator for stores that
// synchronize internally (road.Synchronized): Read and Write impose no
// locking, Exclusive delegates to the store's own whole-store exclusion.
func NewSelfCoordinated(epoch func() uint64, exclusive func(fn func() error) error) *Coordinator {
	return &Coordinator{epoch: epoch, exclusive: exclusive}
}

// Read runs fn as a reader and reports whether the epoch passed to fn
// was stable for fn's whole execution. In the locked mode that is always
// true (maintenance cannot run until fn returns); in the self-coordinated
// mode it is true exactly when no mutation completed while fn ran, which
// is the condition under which fn's results may be cached at that epoch.
func (c *Coordinator) Read(fn func(epoch uint64)) bool {
	if c.mu != nil {
		c.mu.RLock()
		defer c.mu.RUnlock()
		fn(c.epoch())
		return true
	}
	e := c.epoch()
	fn(e)
	return c.epoch() == e
}

// Write runs one mutation and returns the post-mutation epoch alongside
// fn's error. In the locked mode fn runs exclusively, after in-flight
// readers drain; in the self-coordinated mode fn runs directly — the
// store's own per-shard locks provide the exclusion, scoped to the shard
// the mutation actually touches.
func (c *Coordinator) Write(fn func() error) (uint64, error) {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		err := fn()
		return c.epoch(), err
	}
	err := fn()
	return c.epoch(), err
}

// Exclusive runs fn with the entire store quiesced — no overlapping
// queries or mutations in either mode — for operations that need one
// consistent whole-store view, such as snapshot saves.
func (c *Coordinator) Exclusive(fn func() error) (uint64, error) {
	if c.mu != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		err := fn()
		return c.epoch(), err
	}
	err := c.exclusive(fn)
	return c.epoch(), err
}

// Epoch returns the current maintenance epoch without coordinating; use
// it for monitoring, not for tagging query results.
func (c *Coordinator) Epoch() uint64 { return c.epoch() }
