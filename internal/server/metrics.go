package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"road"
	"road/internal/obs"
	"road/internal/shard"
	"road/internal/version"
)

// endpoint indexes the hot-path metric arrays; endpointNames supplies
// the Prometheus label values.
type endpoint int

const (
	epKNN endpoint = iota
	epWithin
	epPath
	epBatch
	epMaint
	epCount
)

var endpointNames = [epCount]string{"knn", "within", "path", "batch", "maintenance"}

// Bucket layouts live in obs (LatencyBuckets and friends) so the shard
// hosts' /metrics bin the same quantities identically.

// metrics bundles the server's obs registry and the instruments updated
// on the request hot path: per-endpoint request counters and latency
// histograms, per-query cost histograms, and whole-process traversal
// totals. Everything else (cache, pool, journal, network size, per-shard
// load) is read off the live structures only at scrape time.
type metrics struct {
	reg *obs.Registry

	requests [epCount]*obs.Counter
	latency  [epCount]*obs.Histogram
	errors   *obs.Counter
	timeouts *obs.Counter

	nodesPopped    *obs.Counter
	rnetsBypassed  *obs.Counter
	rnetsDescended *obs.Counter
	shardsSearched *obs.Counter
	ioReads        *obs.Counter
	ioFaults       *obs.Counter

	queryPops  *obs.Histogram
	queryReads *obs.Histogram
}

// newMetrics builds the registry over a constructed server. Collector
// callbacks read s's live state; store-touching ones are safe because
// handleMetrics scrapes under the coordinator's read view.
func newMetrics(s *Server) *metrics {
	m := &metrics{reg: obs.NewRegistry()}
	r := m.reg

	version.Register(r)
	r.Gauge("road_uptime_seconds", "", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.Gauge("road_epoch", "", "Store maintenance epoch; every successful mutation bumps it.",
		func() float64 { return float64(s.coord.Epoch()) })
	r.Gauge("road_network_nodes", "", "Intersections in the served network.",
		func() float64 { return float64(s.b.NumNodes()) })
	r.Gauge("road_network_edges", "", "Road segments in the served network.",
		func() float64 { return float64(s.b.NumRoads()) })
	r.Gauge("road_network_objects", "", "Live objects in the served network.",
		func() float64 { return float64(s.b.NumObjects()) })
	r.Gauge("road_index_bytes", "", "Estimated index size in bytes.",
		func() float64 { return float64(s.b.IndexSizeBytes()) })

	for ep := epKNN; ep < epCount; ep++ {
		lbl := `endpoint="` + endpointNames[ep] + `"`
		m.requests[ep] = r.Counter("road_requests_total", lbl, "Requests served, by endpoint.")
	}
	m.errors = r.Counter("road_request_errors_total", "", "Requests that failed (any endpoint).")
	m.timeouts = r.Counter("road_request_timeouts_total", "", "Queries aborted by the -query-timeout deadline.")
	for ep := epKNN; ep < epCount; ep++ {
		lbl := `endpoint="` + endpointNames[ep] + `"`
		m.latency[ep] = r.Histogram("road_request_duration_seconds", lbl,
			"Request wall time in seconds, by endpoint.", obs.LatencyBuckets)
	}

	m.queryPops = r.Histogram("road_query_node_pops", "",
		"Heap pops (settled nodes) per uncached query — the paper's CPU cost metric.", obs.PopsBuckets)
	m.queryReads = r.Histogram("road_query_page_reads", "",
		"Simulated page reads per uncached query — the paper's I/O cost metric.", obs.ReadsBuckets)

	m.nodesPopped = r.Counter("road_traversal_nodes_popped_total", "", "Total heap pops across all queries.")
	m.rnetsBypassed = r.Counter("road_traversal_rnets_bypassed_total", "", "Total Rnet shortcut hops taken.")
	m.rnetsDescended = r.Counter("road_traversal_rnets_descended_total", "", "Total Rnet descents.")
	m.shardsSearched = r.Counter("road_traversal_shards_searched_total", "", "Total shard graphs searched.")
	m.ioReads = r.Counter("road_traversal_io_reads_total", "", "Total simulated page reads.")
	m.ioFaults = r.Counter("road_traversal_io_faults_total", "", "Total simulated page faults.")

	cacheSample := func(get func(CacheStats) float64) func() []obs.Sample {
		return func() []obs.Sample {
			if s.cache == nil {
				return nil
			}
			return []obs.Sample{{Value: get(s.cache.Stats())}}
		}
	}
	r.CollectorVec("road_cache_hits_total", "counter", "Result-cache hits.",
		cacheSample(func(st CacheStats) float64 { return float64(st.Hits) }))
	r.CollectorVec("road_cache_misses_total", "counter", "Result-cache misses.",
		cacheSample(func(st CacheStats) float64 { return float64(st.Misses) }))
	r.CollectorVec("road_cache_evictions_total", "counter", "Result-cache LRU evictions.",
		cacheSample(func(st CacheStats) float64 { return float64(st.Evictions) }))
	r.CollectorVec("road_cache_invalidations_total", "counter", "Result-cache epoch purges.",
		cacheSample(func(st CacheStats) float64 { return float64(st.Invalidations) }))
	r.CollectorVec("road_cache_entries", "gauge", "Result-cache live entries.",
		cacheSample(func(st CacheStats) float64 { return float64(st.Entries) }))

	r.CollectorVec("road_pool_sessions_created_total", "counter", "Sessions created by the pool.",
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.pool.Stats().Created)}} })
	r.CollectorVec("road_pool_sessions_reused_total", "counter", "Sessions reused from the pool free list.",
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.pool.Stats().Reused)}} })
	r.Gauge("road_pool_idle_sessions", "", "Sessions currently idle in the pool.",
		func() float64 { return float64(s.pool.Stats().Idle) })

	r.Gauge("road_journal_seq", "", "Write-ahead journal sequence number (entries logged).",
		func() float64 { return float64(s.b.JournalSeq()) })
	r.Gauge("road_journal_bytes", "", "Write-ahead journal size in bytes (summed across shards).",
		func() float64 { return float64(s.b.JournalSizeBytes()) })

	if sp, ok := s.b.(shardInfoProvider); ok {
		shardVec := func(get func(shard.Info) float64) func() []obs.Sample {
			return func() []obs.Sample {
				infos := sp.ShardInfos()
				out := make([]obs.Sample, len(infos))
				for i, inf := range infos {
					out[i] = obs.Sample{
						Labels: `shard="` + strconv.Itoa(int(inf.ID)) + `"`,
						Value:  get(inf),
					}
				}
				return out
			}
		}
		r.CollectorVec("road_shard_home_queries_total", "counter",
			"Queries whose query node lives in this shard.",
			shardVec(func(i shard.Info) float64 { return float64(i.HomeQueries) }))
		r.CollectorVec("road_shard_remote_entries_total", "counter",
			"Cross-shard expansions entering this shard through its borders.",
			shardVec(func(i shard.Info) float64 { return float64(i.RemoteEntries) }))
		r.CollectorVec("road_shard_escalations_total", "counter",
			"Home queries that escalated past the nearest-border fast path.",
			shardVec(func(i shard.Info) float64 { return float64(i.Escalations) }))
		r.CollectorVec("road_shard_mutations_total", "counter",
			"Mutations applied to this shard.",
			shardVec(func(i shard.Info) float64 { return float64(i.Mutations) }))
		r.CollectorVec("road_shard_epoch", "gauge", "Per-shard maintenance epoch.",
			shardVec(func(i shard.Info) float64 { return float64(i.Epoch) }))
		r.CollectorVec("road_shard_objects", "gauge", "Live objects per shard.",
			shardVec(func(i shard.Info) float64 { return float64(i.Objects) }))
		r.CollectorVec("road_shard_borders", "gauge", "Border nodes per shard.",
			shardVec(func(i shard.Info) float64 { return float64(i.Borders) }))
	}

	return m
}

// record folds one query's road.Stats into the traversal totals and the
// per-query cost histograms — a handful of atomic adds.
func (m *metrics) record(st road.Stats) {
	m.nodesPopped.Add(uint64(st.NodesPopped))
	m.rnetsBypassed.Add(uint64(st.RnetsBypassed))
	m.rnetsDescended.Add(uint64(st.RnetsDescended))
	m.shardsSearched.Add(uint64(st.ShardsSearched))
	m.ioReads.Add(uint64(st.IO.Reads))
	m.ioFaults.Add(uint64(st.IO.Faults))
	m.queryPops.Observe(float64(st.NodesPopped))
	m.queryReads.Observe(float64(st.IO.Reads))
}

// handleMetrics renders the registry in the Prometheus text exposition
// format. The scrape runs under the coordinator's read view so gauges
// that touch the store observe one consistent epoch; the rendering goes
// to a buffer first so no lock is held while writing to the client.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	var werr error
	s.coord.Read(func(uint64) {
		werr = s.met.reg.Write(&buf)
		for _, aux := range s.auxMet {
			if werr == nil {
				werr = aux.Write(&buf)
			}
		}
	})
	if werr != nil {
		s.writeErr(w, http.StatusInternalServerError, "rendering metrics: %v", werr)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// slowQueryEntry is one line of the slow-query log: the request
// identity — including the request ID that joins it to the query log
// and the client-visible response — plus the per-leg trace,
// JSON-encoded to the configured writer.
type slowQueryEntry struct {
	TS         string    `json:"ts"`
	ID         string    `json:"id,omitempty"`
	Op         string    `json:"op"`
	Node       int64     `json:"node"`
	DurationUS int64     `json:"duration_us"`
	Pops       int       `json:"pops"`
	Shards     int       `json:"shards,omitempty"`
	Legs       []obs.Leg `json:"legs"`
}

// logSlow emits a slow-query line when the threshold is configured and
// exceeded. The write is best-effort and serialized by the writer.
func (s *Server) logSlow(id, op string, node int64, elapsed time.Duration, st road.Stats, tr *obs.Trace) {
	if s.slowThresh <= 0 || elapsed < s.slowThresh || s.slowW == nil {
		return
	}
	entry := slowQueryEntry{
		TS:         time.Now().UTC().Format(time.RFC3339Nano),
		ID:         id,
		Op:         op,
		Node:       node,
		DurationUS: elapsed.Microseconds(),
		Pops:       st.NodesPopped,
		Shards:     st.ShardsSearched,
		Legs:       tr.Legs(),
	}
	b, err := json.Marshal(entry)
	if err != nil {
		return
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	fmt.Fprintf(s.slowW, "slow query: %s\n", b)
}
