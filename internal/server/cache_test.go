package server

import (
	"testing"

	"road"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := NewResultCache(2)
	k1 := KNNKey(1, 1, 0)
	k2 := KNNKey(2, 1, 0)
	k3 := KNNKey(3, 1, 0)
	c.Put(k1, 0, CachedAnswer{})
	c.Put(k2, 0, CachedAnswer{})
	c.Get(k1, 0) // refresh k1: k2 becomes LRU
	c.Put(k3, 0, CachedAnswer{})
	if _, ok := c.Get(k2, 0); ok {
		t.Fatal("LRU entry k2 survived eviction")
	}
	if _, ok := c.Get(k1, 0); !ok {
		t.Fatal("recently used k1 was evicted")
	}
	if _, ok := c.Get(k3, 0); !ok {
		t.Fatal("newest entry k3 missing")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestResultCacheEpochInvalidation(t *testing.T) {
	c := NewResultCache(8)
	key := WithinKey(5, 1.25, 2)
	c.Put(key, 1, CachedAnswer{Results: []road.Result{{Dist: 1}}})
	if _, ok := c.Get(key, 1); !ok {
		t.Fatal("entry missing at its own epoch")
	}
	if _, ok := c.Get(key, 2); ok {
		t.Fatal("entry survived an epoch bump")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	// A straggler writing a stale answer after the bump must be ignored.
	c.Put(key, 1, CachedAnswer{Results: []road.Result{{Dist: 99}}})
	if _, ok := c.Get(key, 2); ok {
		t.Fatal("stale-epoch Put was accepted")
	}
}

func TestResultCacheDistinctKeys(t *testing.T) {
	c := NewResultCache(16)
	c.Put(KNNKey(1, 1, 0), 0, CachedAnswer{Results: []road.Result{{Dist: 1}}})
	if _, ok := c.Get(KNNKey(1, 2, 0), 0); ok {
		t.Fatal("k=2 hit a k=1 entry")
	}
	if _, ok := c.Get(KNNKey(1, 1, 3), 0); ok {
		t.Fatal("attr=3 hit an attr=0 entry")
	}
	if _, ok := c.Get(WithinKey(1, 1, 0), 0); ok {
		t.Fatal("within hit a knn entry")
	}
}

func TestSessionPoolReuse(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	p := NewSessionPool(db, 2)
	s1 := p.Get()
	s2 := p.Get()
	p.Put(s1)
	p.Put(s2)
	if got := p.Get(); got != s2 {
		t.Fatal("pool is not LIFO")
	}
	p.Put(s2)
	st := p.Stats()
	if st.Created != 2 || st.Reused != 1 {
		t.Fatalf("pool stats = %+v, want 2 created / 1 reused", st)
	}
	// Beyond maxIdle, sessions are dropped rather than retained.
	p.Put(db.OpenSession())
	p.Put(db.OpenSession())
	if st := p.Stats(); st.Idle != 2 {
		t.Fatalf("idle = %d, want maxIdle cap of 2", st.Idle)
	}
}

func TestCoordinatorEpochSnapshot(t *testing.T) {
	db, _, _, e01 := buildSquare(t, road.Options{})
	coord := NewCoordinator(db.Epoch)
	var seen uint64
	coord.Read(func(epoch uint64) { seen = epoch })
	if seen != db.Epoch() {
		t.Fatalf("read epoch %d, want %d", seen, db.Epoch())
	}
	after, err := coord.Write(func() error { return db.SetRoadDistance(e01, 2) })
	if err != nil {
		t.Fatal(err)
	}
	if after != seen+1 {
		t.Fatalf("post-write epoch %d, want %d", after, seen+1)
	}
}
