package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"road"
)

// buildGrid returns an n×n grid DB (unit-ish edge weights) with one
// object per row, StorePaths on, plus the edge and object ID ranges.
func buildGrid(t *testing.T, n int) (*road.DB, []road.EdgeID, []road.ObjectID) {
	t.Helper()
	b := road.NewNetworkBuilder()
	ids := make([][]road.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = make([]road.NodeID, n)
		for j := 0; j < n; j++ {
			ids[i][j] = b.AddNode(float64(i), float64(j))
		}
	}
	var edges []road.EdgeID
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				e, err := b.AddRoad(ids[i][j], ids[i+1][j], 1+0.1*float64((i+j)%3))
				if err != nil {
					t.Fatal(err)
				}
				edges = append(edges, e)
			}
			if j+1 < n {
				e, err := b.AddRoad(ids[i][j], ids[i][j+1], 1+0.1*float64((i*j)%3))
				if err != nil {
					t.Fatal(err)
				}
				edges = append(edges, e)
			}
		}
	}
	db, err := road.Open(b, road.Options{StorePaths: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var objs []road.ObjectID
	for i := 0; i < n; i++ {
		o, err := db.AddObject(edges[(i*13)%len(edges)], 0.3, int32(i%3))
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o.ID)
	}
	return db, edges, objs
}

// TestConcurrentQueriesAndMaintenance races many concurrent KNN / Within /
// PathTo requests against SetRoadDistance and CloseRoad/ReopenRoad
// mutations, all through the coordination layer; run with -race this
// verifies the serving subsystem's central guarantee.
func TestConcurrentQueriesAndMaintenance(t *testing.T) {
	const gridSide = 6
	db, edges, objs := buildGrid(t, gridSide)
	runMaintenanceStorm(t, db, gridSide*gridSide, edges, objs)
}

// TestConcurrentQueriesAndMaintenanceSharded is the same storm over a
// road.ShardedDB — which the server runs WITHOUT its store-wide lock
// (road.Synchronized): queries synchronize against mutations through the
// router's per-shard write locks, and with -race this verifies that
// locking end to end, incremental border-table refresh included.
func TestConcurrentQueriesAndMaintenanceSharded(t *testing.T) {
	const gridSide = 8
	b := road.NewNetworkBuilder()
	ids := make([][]road.NodeID, gridSide)
	for i := 0; i < gridSide; i++ {
		ids[i] = make([]road.NodeID, gridSide)
		for j := 0; j < gridSide; j++ {
			ids[i][j] = b.AddNode(float64(i), float64(j))
		}
	}
	var edges []road.EdgeID
	for i := 0; i < gridSide; i++ {
		for j := 0; j < gridSide; j++ {
			if i+1 < gridSide {
				e, err := b.AddRoad(ids[i][j], ids[i+1][j], 1+0.1*float64((i+j)%3))
				if err != nil {
					t.Fatal(err)
				}
				edges = append(edges, e)
			}
			if j+1 < gridSide {
				e, err := b.AddRoad(ids[i][j], ids[i][j+1], 1+0.1*float64((i*j)%3))
				if err != nil {
					t.Fatal(err)
				}
				edges = append(edges, e)
			}
		}
	}
	sdb, err := road.OpenSharded(b, road.Options{Seed: 42}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var objs []road.ObjectID
	for i := 0; i < gridSide; i++ {
		o, err := sdb.AddObject(edges[(i*13)%len(edges)], 0.3, int32(i%3))
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o.ID)
	}
	runMaintenanceStorm(t, sdb, gridSide*gridSide, edges, objs)
}

// runMaintenanceStorm drives concurrent reads and mutations at a served
// store and checks the system still answers afterwards.
func runMaintenanceStorm(t *testing.T, store road.Store, numNodes int, edges []road.EdgeID, objs []road.ObjectID) {
	t.Helper()
	srv := New(store, Options{CacheSize: 128})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	do := func(t *testing.T, method, path string, body any) int {
		var (
			resp *http.Response
			err  error
		)
		if method == http.MethodPost {
			buf, _ := json.Marshal(body)
			resp, err = ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		} else {
			resp, err = ts.Client().Get(ts.URL + path)
		}
		if err != nil {
			t.Errorf("%s %s: %v", method, path, err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Errorf("%s %s: server error %d", method, path, resp.StatusCode)
		}
		return resp.StatusCode
	}

	var wg sync.WaitGroup
	const readers, iters = 8, 40
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for i := 0; i < iters; i++ {
				node := rng.Intn(numNodes)
				switch rng.Intn(4) {
				case 0:
					do(t, http.MethodGet, fmt.Sprintf("/knn?node=%d&k=3", node), nil)
				case 1:
					do(t, http.MethodGet, fmt.Sprintf("/within?node=%d&radius=2.5", node), nil)
				case 2:
					// Objects may have been dropped by a road closure;
					// 422 is a legal answer, 5xx (or a race crash) is not.
					obj := objs[rng.Intn(len(objs))]
					do(t, http.MethodGet, fmt.Sprintf("/path?node=%d&object=%d", node, obj), nil)
				case 3:
					do(t, http.MethodGet, "/stats", nil)
				}
			}
		}(r)
	}

	// Writer 1: re-weight random edges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1001))
		for i := 0; i < 25; i++ {
			e := edges[rng.Intn(len(edges))]
			w := 0.5 + rng.Float64()*2
			do(t, http.MethodPost, "/maintenance/set-distance", MaintenanceRequest{Edge: e, Dist: w})
		}
	}()

	// Writer 2: close and reopen roads (edges without objects, so /path
	// targets stay mostly alive; closures may still legally fail).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2002))
		for i := 0; i < 15; i++ {
			e := edges[rng.Intn(len(edges))]
			do(t, http.MethodPost, "/maintenance/close", MaintenanceRequest{Edge: e})
			do(t, http.MethodPost, "/maintenance/reopen", MaintenanceRequest{Edge: e})
		}
	}()

	wg.Wait()

	// The system must still answer correctly after the storm.
	st := getJSON[StatsResponse](t, ts, "/stats", http.StatusOK)
	wantQueries := uint64(0)
	gotQueries := st.Requests.KNN + st.Requests.Within + st.Requests.Path
	if gotQueries <= wantQueries {
		t.Fatalf("no queries recorded: %+v", st.Requests)
	}
	if code := do(t, http.MethodGet, "/knn?node=0&k=2", nil); code != http.StatusOK {
		t.Fatalf("post-storm query failed with %d", code)
	}
}
