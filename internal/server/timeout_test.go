package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"road"
)

// TestQueryTimeout503: with a per-request deadline configured, an
// expired query answers 503 with the typed error body — the wire face of
// the ctx plumbing (roadd's -query-timeout flag).
func TestQueryTimeout503(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	// A nanosecond deadline is always already expired when the search
	// makes its first cooperative check.
	ts := httptest.NewServer(New(db, Options{QueryTimeout: time.Nanosecond}).Handler())
	defer ts.Close()

	errResp := getJSON[ErrorResponse](t, ts, "/knn?node=0&k=1", http.StatusServiceUnavailable)
	if errResp.Code != "deadline_exceeded" {
		t.Fatalf("code = %q, want deadline_exceeded", errResp.Code)
	}
	if errResp.Error == "" {
		t.Fatal("error body empty")
	}

	// /stats counts the timeout.
	st := getJSON[StatsResponse](t, ts, "/stats", http.StatusOK)
	if st.Requests.Timeouts == 0 {
		t.Fatal("timeout not counted in /stats")
	}
}

// TestQueryTimeoutGenerous: a sane deadline leaves small queries alone.
func TestQueryTimeoutGenerous(t *testing.T) {
	db, aID, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{QueryTimeout: 5 * time.Second}).Handler())
	defer ts.Close()

	resp := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	if len(resp.Results) != 1 || resp.Results[0].Object != aID {
		t.Fatalf("results = %+v", resp.Results)
	}
	if resp.Stats.Truncated {
		t.Fatal("untimed-out query marked truncated")
	}
}

// TestBatchEndpoint: one POST answers several queries on one session at
// one epoch, with per-entry typed failures inline.
func TestBatchEndpoint(t *testing.T) {
	db, aID, _, _ := buildSquare(t, road.Options{StorePaths: true})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	knn := road.KNNRequest{From: 0, K: 1}
	within := road.WithinRequest{From: 0, Radius: 10}
	path := road.PathRequest{From: 0, Object: aID}
	bad := road.KNNRequest{From: 9999, K: 1}
	batch := []road.Request{
		{KNN: &knn},
		{Within: &within},
		{Path: &path},
		{KNN: &bad},
	}
	resp := postJSON[BatchResponse](t, ts, "/batch", batch, http.StatusOK)
	if len(resp.Responses) != 4 {
		t.Fatalf("%d responses, want 4", len(resp.Responses))
	}
	if len(resp.Responses[0].Results) != 1 || resp.Responses[0].Results[0].Object != aID {
		t.Fatalf("knn entry = %+v", resp.Responses[0])
	}
	if len(resp.Responses[1].Results) == 0 {
		t.Fatalf("within entry = %+v", resp.Responses[1])
	}
	if len(resp.Responses[2].Path) == 0 || resp.Responses[2].Dist <= 0 {
		t.Fatalf("path entry = %+v", resp.Responses[2])
	}
	if resp.Responses[3].Code != "no_such_node" || resp.Responses[3].Error == "" {
		t.Fatalf("bad entry = %+v", resp.Responses[3])
	}

	// Single-query answers agree with the batch.
	single := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	if single.Results[0] != resp.Responses[0].Results[0] {
		t.Fatalf("batch vs single mismatch: %+v / %+v", resp.Responses[0].Results[0], single.Results[0])
	}

	// Malformed and empty batches are rejected up front.
	postJSON[ErrorResponse](t, ts, "/batch", []road.Request{}, http.StatusBadRequest)
}
