package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"road"
)

// Options tunes a Server. The zero value serves with a
// DefaultCacheSize-entry result cache and DefaultMaxIdleSessions pooled
// sessions.
type Options struct {
	// CacheSize bounds the LRU result cache in entries
	// (DefaultCacheSize when 0); negative disables result caching.
	CacheSize int
	// MaxIdleSessions bounds the session free list
	// (DefaultMaxIdleSessions when 0).
	MaxIdleSessions int
	// SnapshotSave, when set, enables POST /admin/snapshot and
	// snapshot-on-shutdown: it is invoked under the coordinator's write
	// lock — readers drained, maintenance excluded — so the image it
	// persists is consistent at exactly one epoch, and returns the number
	// of bytes written (reported in the snapshot acknowledgement). roadd
	// wires this to an atomic write of its -snapshot file(s), followed by
	// journal rotation.
	SnapshotSave func() (int64, error)
}

// Server serves one database — a single-index road.DB or a sharded
// road.ShardedDB — over HTTP/JSON. Reads (kNN, within, path) run
// concurrently on pooled sessions under the Coordinator's read lock;
// maintenance runs exclusively under its write lock and implicitly
// invalidates the result cache by advancing the backend epoch.
type Server struct {
	b        Backend
	coord    *Coordinator
	pool     *SessionPool
	cache    *ResultCache          // nil when disabled
	snapshot func() (int64, error) // nil when persistence is not configured
	start    time.Time

	knnCount    atomic.Uint64
	withinCount atomic.Uint64
	pathCount   atomic.Uint64
	maintCount  atomic.Uint64
	errCount    atomic.Uint64

	nodesPopped    atomic.Int64
	rnetsBypassed  atomic.Int64
	rnetsDescended atomic.Int64
	ioReads        atomic.Int64
	ioFaults       atomic.Int64
}

// New wires a serving subsystem around an opened single-index DB.
func New(db *road.DB, opts Options) *Server {
	return NewWithBackend(DBBackend(db), opts)
}

// NewSharded wires a serving subsystem around a sharded database: the
// same API, with queries routed across region shards and /stats gaining
// a per-shard load section.
func NewSharded(db *road.ShardedDB, opts Options) *Server {
	return NewWithBackend(ShardedBackend(db), opts)
}

// NewWithBackend wires a serving subsystem around any Backend.
func NewWithBackend(b Backend, opts Options) *Server {
	s := &Server{
		b:        b,
		coord:    NewCoordinator(b.Epoch),
		pool:     NewSessionPool(b, opts.MaxIdleSessions),
		snapshot: opts.SnapshotSave,
		start:    time.Now(),
	}
	if opts.CacheSize >= 0 {
		s.cache = NewResultCache(opts.CacheSize)
	}
	return s
}

// Coordinator exposes the coordination layer (tests and embedders).
func (s *Server) Coordinator() *Coordinator { return s.coord }

// Handler returns the HTTP API:
//
//	GET  /knn?node=N&k=K[&attr=A]          k nearest objects
//	GET  /within?node=N&radius=R[&attr=A]  objects within network distance R
//	GET  /path?node=N&object=O             detailed route (needs StorePaths)
//	POST /maintenance/set-distance         {"edge":E,"dist":D}
//	POST /maintenance/close                {"edge":E}
//	POST /maintenance/reopen               {"edge":E}
//	POST /maintenance/add-road             {"u":U,"v":V,"dist":D}
//	POST /maintenance/insert-object        {"edge":E,"offset":F,"attr":A}
//	POST /maintenance/delete-object        {"object":O}
//	POST /maintenance/set-attr             {"object":O,"attr":A}
//	GET  /stats                            serving statistics
//	GET  /healthz                          liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /knn", s.handleKNN)
	mux.HandleFunc("GET /within", s.handleWithin)
	mux.HandleFunc("GET /path", s.handlePath)
	mux.HandleFunc("POST /maintenance/set-distance", s.maintenance(s.opSetDistance))
	mux.HandleFunc("POST /maintenance/close", s.maintenance(s.opClose))
	mux.HandleFunc("POST /maintenance/reopen", s.maintenance(s.opReopen))
	mux.HandleFunc("POST /maintenance/add-road", s.maintenance(s.opAddRoad))
	mux.HandleFunc("POST /maintenance/insert-object", s.maintenance(s.opInsertObject))
	mux.HandleFunc("POST /maintenance/delete-object", s.maintenance(s.opDeleteObject))
	mux.HandleFunc("POST /maintenance/set-attr", s.maintenance(s.opSetAttr))
	mux.HandleFunc("POST /admin/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// TakeSnapshot persists the index through the configured SnapshotSave
// callback under the write lock, returning the epoch and journal sequence
// the image captured and the number of snapshot bytes written. It is the
// engine behind /admin/snapshot, roadd's snapshot-on-SIGTERM and the
// -journal-max-bytes auto-snapshot trigger.
func (s *Server) TakeSnapshot() (epoch, seq uint64, bytes int64, err error) {
	if s.snapshot == nil {
		return 0, 0, 0, fmt.Errorf("snapshot persistence not configured (start roadd with -snapshot)")
	}
	epoch, err = s.coord.Write(func() error {
		seq = s.b.JournalSeq()
		var serr error
		bytes, serr = s.snapshot()
		return serr
	})
	return epoch, seq, bytes, err
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	epoch, seq, bytes, err := s.TakeSnapshot()
	if err != nil {
		if s.snapshot == nil {
			s.writeErr(w, http.StatusNotImplemented, "%v", err)
		} else {
			s.writeErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, SnapshotResponse{
		OK:         true,
		Epoch:      epoch,
		JournalSeq: seq,
		Bytes:      bytes,
		ElapsedUS:  time.Since(start).Microseconds(),
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	s.errCount.Add(1)
	s.writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) recordStats(st road.Stats) {
	s.nodesPopped.Add(int64(st.NodesPopped))
	s.rnetsBypassed.Add(int64(st.RnetsBypassed))
	s.rnetsDescended.Add(int64(st.RnetsDescended))
	s.ioReads.Add(st.IO.Reads)
	s.ioFaults.Add(st.IO.Faults)
}

// queryInt parses a required integer query parameter.
func queryInt(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// queryAttr parses the optional attr parameter (default AnyAttr).
func queryAttr(r *http.Request) (int32, error) {
	raw := r.URL.Query().Get("attr")
	if raw == "" {
		return road.AnyAttr, nil
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter \"attr\": %v", err)
	}
	return int32(v), nil
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := queryInt(r, "k")
	if err != nil || k < 1 {
		s.writeErr(w, http.StatusBadRequest, "parameter \"k\" must be a positive integer")
		return
	}
	attr, err := queryAttr(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.knnCount.Add(1)
	s.serveQuery(w, road.NodeID(node), KNNKey(road.NodeID(node), int(k), attr),
		func(sess Querier) ([]road.Result, road.Stats) {
			return sess.KNN(road.NodeID(node), int(k), attr)
		})
}

func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := strconv.ParseFloat(r.URL.Query().Get("radius"), 64)
	if err != nil || !(radius > 0) || math.IsInf(radius, 1) {
		s.writeErr(w, http.StatusBadRequest, "parameter \"radius\" must be a positive finite number")
		return
	}
	attr, err := queryAttr(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.withinCount.Add(1)
	s.serveQuery(w, road.NodeID(node), WithinKey(road.NodeID(node), radius, attr),
		func(sess Querier) ([]road.Result, road.Stats) {
			return sess.Within(road.NodeID(node), radius, attr)
		})
}

// serveQuery runs one read query under the coordination layer: cache
// probe, pooled-session execution on miss, cache fill — all at one
// consistent epoch.
func (s *Server) serveQuery(w http.ResponseWriter, node road.NodeID, key CacheKey, run func(Querier) ([]road.Result, road.Stats)) {
	start := time.Now()
	var resp QueryResponse
	var badNode bool
	s.coord.Read(func(epoch uint64) {
		if int(node) < 0 || int(node) >= s.b.NumNodes() {
			badNode = true
			return
		}
		resp.Node = node
		resp.Epoch = epoch
		if s.cache != nil {
			if ans, ok := s.cache.Get(key, epoch); ok {
				resp.Cached = true
				resp.Results = resultsJSON(ans.Results)
				resp.Stats = statsJSON(ans.Stats)
				return
			}
		}
		sess := s.pool.Get()
		res, st := run(sess)
		s.pool.Put(sess)
		s.recordStats(st)
		if s.cache != nil {
			s.cache.Put(key, epoch, CachedAnswer{Results: res, Stats: st})
		}
		resp.Results = resultsJSON(res)
		resp.Stats = statsJSON(st)
	})
	if badNode {
		s.writeErr(w, http.StatusNotFound, "node %d does not exist", node)
		return
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	if resp.Results == nil {
		resp.Results = []ResultJSON{}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	obj, err := queryInt(r, "object")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.pathCount.Add(1)
	start := time.Now()
	var resp PathResponse
	var badNode bool
	var pathErr error
	s.coord.Read(func(epoch uint64) {
		if int(node) < 0 || int(node) >= s.b.NumNodes() {
			badNode = true
			return
		}
		sess := s.pool.Get()
		path, dist, err := sess.PathTo(road.NodeID(node), road.ObjectID(obj))
		s.pool.Put(sess)
		if err != nil {
			pathErr = err
			return
		}
		resp = PathResponse{
			Node:   road.NodeID(node),
			Object: road.ObjectID(obj),
			Epoch:  epoch,
			Dist:   dist,
			Path:   path,
		}
	})
	switch {
	case badNode:
		s.writeErr(w, http.StatusNotFound, "node %d does not exist", node)
	case pathErr != nil:
		s.writeErr(w, http.StatusUnprocessableEntity, "%v", pathErr)
	default:
		resp.ElapsedUS = time.Since(start).Microseconds()
		s.writeJSON(w, http.StatusOK, resp)
	}
}

// maintenance wraps one mutation op in body decoding, the write lock and
// the acknowledgement envelope.
func (s *Server) maintenance(op func(*MaintenanceRequest, *MaintenanceResponse) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req MaintenanceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeErr(w, http.StatusBadRequest, "decoding request body: %v", err)
			return
		}
		s.maintCount.Add(1)
		// IDs start at 0, so "not applicable" needs an explicit -1 marker;
		// each op overwrites the fields it concerns.
		resp := MaintenanceResponse{Edge: road.NoEdge, Object: -1}
		epoch, err := s.coord.Write(func() error {
			opErr := op(&req, &resp)
			// Re-materialize any shortcut trees the mutation invalidated
			// while readers are still excluded — even on error, a partial
			// mutation may have invalidated some — so concurrent sessions
			// never trigger a lazy rebuild.
			s.b.WarmAfterMutation()
			return opErr
		})
		if err != nil {
			s.writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		resp.OK = true
		resp.Epoch = epoch
		s.writeJSON(w, http.StatusOK, resp)
	}
}

// checkEdge guards the trust boundary: edge IDs index dense arrays in
// the graph layer, which panics on out-of-range IDs rather than erroring.
// Must run under the coordination lock (it reads the edge count).
func (s *Server) checkEdge(e road.EdgeID) error {
	if int(e) < 0 || int(e) >= s.b.NumEdges() {
		return fmt.Errorf("edge %d does not exist", e)
	}
	return nil
}

func (s *Server) opSetDistance(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if !(req.Dist > 0) {
		return fmt.Errorf("dist must be positive")
	}
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	return s.b.SetRoadDistance(req.Edge, req.Dist)
}

func (s *Server) opClose(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	return s.b.CloseRoad(req.Edge)
}

func (s *Server) opReopen(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	return s.b.ReopenRoad(req.Edge)
}

func (s *Server) opAddRoad(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if !(req.Dist > 0) {
		return fmt.Errorf("dist must be positive")
	}
	e, err := s.b.AddRoad(req.U, req.V, req.Dist)
	resp.Edge = e
	return err
}

func (s *Server) opInsertObject(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	o, err := s.b.AddObject(req.Edge, req.Offset, req.Attr)
	resp.Object = o.ID
	return err
}

func (s *Server) opDeleteObject(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	resp.Object = req.Object
	return s.b.RemoveObject(req.Object)
}

func (s *Server) opSetAttr(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	resp.Object = req.Object
	return s.b.SetObjectAttr(req.Object, req.Attr)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	s.coord.Read(func(epoch uint64) {
		resp.Epoch = epoch
		resp.Network.Nodes = s.b.NumNodes()
		resp.Network.Edges = s.b.NumEdges()
		resp.Network.Objects = s.b.NumObjects()
		resp.Network.IndexKB = s.b.IndexSizeBytes() / 1024
		if sp, ok := s.b.(shardInfoProvider); ok {
			resp.Shards = sp.ShardInfos()
		}
	})
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.Requests.KNN = s.knnCount.Load()
	resp.Requests.Within = s.withinCount.Load()
	resp.Requests.Path = s.pathCount.Load()
	resp.Requests.Maintenance = s.maintCount.Load()
	resp.Requests.Errors = s.errCount.Load()
	resp.Traversal.NodesPopped = s.nodesPopped.Load()
	resp.Traversal.RnetsBypassed = s.rnetsBypassed.Load()
	resp.Traversal.RnetsDescended = s.rnetsDescended.Load()
	resp.Traversal.IOReads = s.ioReads.Load()
	resp.Traversal.IOFaults = s.ioFaults.Load()
	if s.cache != nil {
		resp.Cache = s.cache.Stats()
	}
	resp.Pool = s.pool.Stats()
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": s.coord.Epoch()})
}
