package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"time"

	"road"
	"road/internal/obs"
	"road/internal/obs/analytics"
	"road/internal/shard/remote"
)

// Options tunes a Server. The zero value serves with a
// DefaultCacheSize-entry result cache and DefaultMaxIdleSessions pooled
// sessions.
type Options struct {
	// CacheSize bounds the LRU result cache in entries
	// (DefaultCacheSize when 0); negative disables result caching.
	CacheSize int
	// MaxIdleSessions bounds the session free list
	// (DefaultMaxIdleSessions when 0).
	MaxIdleSessions int
	// QueryTimeout bounds every read query (kNN, within, path, batch
	// entries): the request context is wrapped in a deadline, the search
	// aborts cooperatively mid-expansion, and the client receives HTTP
	// 503 with a typed error body (code "deadline_exceeded"). Zero
	// disables the bound.
	QueryTimeout time.Duration
	// SnapshotSave, when set, enables POST /admin/snapshot and
	// snapshot-on-shutdown: it is invoked under the coordinator's write
	// lock — readers drained, maintenance excluded — so the image it
	// persists is consistent at exactly one epoch, and returns the number
	// of bytes written (reported in the snapshot acknowledgement). roadd
	// wires this to an atomic write of its -snapshot file(s), followed by
	// journal rotation.
	SnapshotSave func() (int64, error)
	// SlowQueryThreshold, when positive, makes every read query carry a
	// trace (internal/obs) and logs queries at least this slow — with
	// their per-leg timings — to SlowQueryWriter as one JSON line each.
	SlowQueryThreshold time.Duration
	// SlowQueryWriter receives slow-query lines (os.Stderr when nil and
	// SlowQueryThreshold is set).
	SlowQueryWriter io.Writer
	// QueryLog, when non-nil, receives a sampled obs.QueryRecord for
	// every read query served. The server does not close it.
	QueryLog *obs.QueryLog
	// AuxMetrics registries are rendered after the server's own on GET
	// /metrics. roadd's -shard-hosts mode passes the fleet registry here
	// so the road_remote_* families (per-host RPC latency, errors,
	// hedges, up/down) ride the same scrape.
	AuxMetrics []*obs.Registry
	// WorkloadWindow sizes the in-memory rolling window of query records
	// behind GET /admin/workload (DefaultWorkloadWindow when 0); negative
	// disables the endpoint. The window sees every read query — it is
	// independent of the query log and its sampling.
	WorkloadWindow int
	// Pprof mounts net/http/pprof under /debug/pprof/ on the API mux.
	Pprof bool
}

// DefaultWorkloadWindow is the /admin/workload rolling-window size used
// when Options.WorkloadWindow is 0.
const DefaultWorkloadWindow = 4096

// Server serves one road.Store — a single-index road.DB or a sharded
// road.ShardedDB, the two deployment shapes behind the same interface —
// over HTTP/JSON. Reads (kNN, within, path, batch) run concurrently on
// pooled sessions; maintenance implicitly invalidates the result cache
// by advancing the store epoch. How reads and maintenance exclude each
// other depends on the store: a road.DB is guarded by the Coordinator's
// store-wide reader/writer lock, while a road.Synchronized store
// (road.ShardedDB) locks internally per shard, so a mutation stalls only
// the readers of the shard it touches.
type Server struct {
	b        road.Store
	coord    *Coordinator
	pool     *SessionPool
	cache    *ResultCache          // nil when disabled
	snapshot func() (int64, error) // nil when persistence is not configured
	timeout  time.Duration         // zero = unbounded queries
	start    time.Time

	met    *metrics        // request counters, latency/cost histograms, /metrics registry
	auxMet []*obs.Registry // extra registries appended to /metrics (fleet RPC metrics)

	slowThresh time.Duration // zero = slow-query logging off
	slowW      io.Writer
	slowMu     sync.Mutex
	qlog       *obs.QueryLog     // nil = query logging off
	window     *analytics.Window // nil = /admin/workload disabled
	homes      homeShardProvider // nil on single-index stores
	pprof      bool
}

// homeShardProvider is the optional road.Store extension sharded stores
// implement; query-log records and the workload model use it to
// attribute each query to its home shard.
type homeShardProvider interface {
	HomeShardOf(road.NodeID) int
}

// fleetStatusProvider is the optional road.Store extension a
// remote-fleet store implements; GET /fleet surfaces it.
type fleetStatusProvider interface {
	FleetStatus() remote.FleetStatus
}

// New wires a serving subsystem around any road.Store: an opened
// single-index road.DB, a road.ShardedDB, or any other implementation.
// Stores that synchronize internally (road.Synchronized) are served
// without the store-wide reader/writer lock.
func New(store road.Store, opts Options) *Server {
	coord := NewCoordinator(store.Epoch)
	if synced, ok := store.(road.Synchronized); ok {
		coord = NewSelfCoordinated(store.Epoch, synced.Exclusive)
	}
	s := &Server{
		b:          store,
		coord:      coord,
		pool:       NewSessionPool(store, opts.MaxIdleSessions),
		snapshot:   opts.SnapshotSave,
		timeout:    opts.QueryTimeout,
		start:      time.Now(),
		slowThresh: opts.SlowQueryThreshold,
		slowW:      opts.SlowQueryWriter,
		qlog:       opts.QueryLog,
		auxMet:     opts.AuxMetrics,
		pprof:      opts.Pprof,
	}
	if s.slowThresh > 0 && s.slowW == nil {
		s.slowW = os.Stderr
	}
	if opts.WorkloadWindow >= 0 {
		n := opts.WorkloadWindow
		if n == 0 {
			n = DefaultWorkloadWindow
		}
		s.window = analytics.NewWindow(n)
	}
	s.homes, _ = store.(homeShardProvider)
	if opts.CacheSize >= 0 {
		s.cache = NewResultCache(opts.CacheSize)
	}
	s.met = newMetrics(s)
	return s
}

// Coordinator exposes the coordination layer (tests and embedders).
func (s *Server) Coordinator() *Coordinator { return s.coord }

// Handler returns the HTTP API:
//
//	GET  /knn?node=N&k=K[&attr=A][&budget=B]     k nearest objects
//	GET  /within?node=N&radius=R[&attr=A][&budget=B]
//	                                             objects within distance R
//	GET  /path?node=N&object=O                   detailed route
//	POST /batch                                  [{"knn":{...}},...] on one session
//	POST /maintenance/set-distance               {"edge":E,"dist":D}
//	POST /maintenance/close                      {"edge":E}
//	POST /maintenance/reopen                     {"edge":E}
//	POST /maintenance/add-road                   {"u":U,"v":V,"dist":D}
//	POST /maintenance/insert-object              {"edge":E,"offset":F,"attr":A}
//	POST /maintenance/delete-object              {"object":O}
//	POST /maintenance/set-attr                   {"object":O,"attr":A}
//	GET  /stats                                  serving statistics
//	GET  /metrics                                Prometheus text exposition
//	GET  /fleet                                  shard-host fleet summary (remote deployments)
//	GET  /admin/workload[?top=N]                 live workload model over recent queries
//	GET  /healthz                                liveness probe
//
// The read endpoints (/knn, /within, /path) accept &trace=1, which
// bypasses the result cache and returns the query's per-leg trace
// (phase timings and settled-node counts) in the response; on a remote
// deployment each rpc hop nests the host-side legs under sub. With
// Options.Pprof the /debug/pprof/ endpoints are mounted too.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /knn", s.handleKNN)
	mux.HandleFunc("GET /within", s.handleWithin)
	mux.HandleFunc("GET /path", s.handlePath)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("POST /maintenance/set-distance", s.maintenance(s.opSetDistance))
	mux.HandleFunc("POST /maintenance/close", s.maintenance(s.opClose))
	mux.HandleFunc("POST /maintenance/reopen", s.maintenance(s.opReopen))
	mux.HandleFunc("POST /maintenance/add-road", s.maintenance(s.opAddRoad))
	mux.HandleFunc("POST /maintenance/insert-object", s.maintenance(s.opInsertObject))
	mux.HandleFunc("POST /maintenance/delete-object", s.maintenance(s.opDeleteObject))
	mux.HandleFunc("POST /maintenance/set-attr", s.maintenance(s.opSetAttr))
	mux.HandleFunc("POST /admin/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /admin/workload", s.handleWorkload)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleWorkload serves the live workload model built over the rolling
// window of recent queries — the same shape roadlog emits offline.
// ?top=N bounds the hot-node and repeat-query lists.
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	if s.window == nil {
		s.writeErr(w, http.StatusNotImplemented, "workload window disabled (-workload-window < 0)")
		return
	}
	var cfg analytics.Config
	if raw := r.URL.Query().Get("top"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			s.writeErr(w, http.StatusBadRequest, "parameter \"top\" must be a positive integer")
			return
		}
		cfg.TopK = n
	}
	s.writeJSON(w, http.StatusOK, s.window.Model(cfg))
}

// handleFleet summarizes the shard-host fleet: per-host health, RPC
// latency percentiles, hedge and re-adoption counters. 404 on
// deployments without remote shard hosts.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	fp, ok := s.b.(fleetStatusProvider)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "not a fleet deployment (no shard hosts)")
		return
	}
	s.writeJSON(w, http.StatusOK, fp.FleetStatus())
}

// TakeSnapshot persists the index through the configured SnapshotSave
// callback with the whole store quiesced (Coordinator.Exclusive),
// returning the epoch and journal sequence the image captured and the
// number of snapshot bytes written. It is the engine behind
// /admin/snapshot, roadd's snapshot-on-SIGTERM and the
// -journal-max-bytes auto-snapshot trigger.
func (s *Server) TakeSnapshot() (epoch, seq uint64, bytes int64, err error) {
	if s.snapshot == nil {
		return 0, 0, 0, fmt.Errorf("snapshot persistence not configured (start roadd with -snapshot)")
	}
	epoch, err = s.coord.Exclusive(func() error {
		seq = s.b.JournalSeq()
		var serr error
		bytes, serr = s.snapshot()
		return serr
	})
	return epoch, seq, bytes, err
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	epoch, seq, bytes, err := s.TakeSnapshot()
	if err != nil {
		if s.snapshot == nil {
			s.writeErr(w, http.StatusNotImplemented, "%v", err)
		} else {
			s.writeErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, SnapshotResponse{
		OK:         true,
		Epoch:      epoch,
		JournalSeq: seq,
		Bytes:      bytes,
		ElapsedUS:  time.Since(start).Microseconds(),
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	s.met.errors.Inc()
	s.writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeQueryErr maps a typed query error to its HTTP status and wire code
// — the error-contract half of the v1 API on the wire.
func (s *Server) writeQueryErr(w http.ResponseWriter, err error) {
	s.met.errors.Inc()
	status, code := queryErrStatus(err)
	s.countTimeout(code)
	s.writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}

// countTimeout feeds /stats requests.timeouts: only genuine deadline
// expiries — not client disconnects or budget stops — count.
func (s *Server) countTimeout(code string) {
	if code == "deadline_exceeded" {
		s.met.timeouts.Inc()
	}
}

// queryErrStatus classifies a typed query error. A canceled query is
// "deadline_exceeded" only when the deadline actually expired; a client
// that went away mid-search is plain "canceled".
func queryErrStatus(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, "deadline_exceeded"
	case errors.Is(err, road.ErrCanceled):
		return http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, road.ErrBudgetExhausted):
		return http.StatusServiceUnavailable, "budget_exhausted"
	case errors.Is(err, road.ErrShardUnavailable):
		return http.StatusServiceUnavailable, "shard_unavailable"
	case errors.Is(err, road.ErrNoSuchNode):
		return http.StatusNotFound, "no_such_node"
	case errors.Is(err, road.ErrNoSuchObject):
		return http.StatusNotFound, "no_such_object"
	case errors.Is(err, road.ErrInvalidRequest):
		return http.StatusBadRequest, "invalid_request"
	default:
		return http.StatusUnprocessableEntity, "query_failed"
	}
}

func (s *Server) recordStats(st road.Stats) { s.met.record(st) }

// logQuery stamps one query record and submits it to the sampled query
// log and the /admin/workload rolling window (each nil-safe; the window
// sees every query, the log only its sample).
func (s *Server) logQuery(rec obs.QueryRecord) {
	if s.qlog == nil && s.window == nil {
		return
	}
	rec.TS = time.Now().UTC().Format(time.RFC3339Nano)
	s.window.Add(rec)
	s.qlog.Log(rec)
}

// homeOf resolves a query node's home shard, or -1 when the store
// cannot say (single-index deployments).
func (s *Server) homeOf(node road.NodeID) int {
	if s.homes == nil {
		return -1
	}
	return s.homes.HomeShardOf(node)
}

// traceCtx attaches a query trace to ctx when this request needs one:
// the client asked for it (&trace=1) or slow-query logging is on (every
// query carries a trace so an offender's legs can be logged).
func (s *Server) traceCtx(ctx context.Context, wantTrace bool) (context.Context, *obs.Trace) {
	if !wantTrace && s.slowThresh <= 0 {
		return ctx, nil
	}
	return obs.WithTrace(ctx)
}

// wantTrace reports whether the client asked for the per-leg trace.
func wantTrace(r *http.Request) bool { return r.URL.Query().Get("trace") == "1" }

// queryCtx derives the context one read query runs under: the client's
// request context (canceled when the client goes away), bounded by the
// configured per-request timeout.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// queryInt parses a required integer query parameter.
func queryInt(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// queryAttr parses the optional attr parameter (default AnyAttr).
func queryAttr(r *http.Request) (int32, error) {
	raw := r.URL.Query().Get("attr")
	if raw == "" {
		return road.AnyAttr, nil
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter \"attr\": %v", err)
	}
	return int32(v), nil
}

// queryBudget parses the optional budget parameter (0 = unlimited).
func queryBudget(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("budget")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("parameter \"budget\" must be a non-negative integer")
	}
	return int(v), nil
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := queryInt(r, "k")
	if err != nil || k < 1 {
		s.writeErr(w, http.StatusBadRequest, "parameter \"k\" must be a positive integer")
		return
	}
	attr, err := queryAttr(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	budget, err := queryBudget(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.requests[epKNN].Inc()
	req := road.KNNRequest{From: road.NodeID(node), K: int(k), Attr: attr, Budget: budget}
	s.serveQuery(w, r, epKNN, KNNKey(req.From, req.K, attr), budget == 0,
		func(ctx context.Context, sess road.Querier) ([]road.Result, road.Stats, error) {
			return sess.KNNContext(ctx, req)
		})
}

func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := strconv.ParseFloat(r.URL.Query().Get("radius"), 64)
	if err != nil || !(radius > 0) || math.IsInf(radius, 1) {
		s.writeErr(w, http.StatusBadRequest, "parameter \"radius\" must be a positive finite number")
		return
	}
	attr, err := queryAttr(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	budget, err := queryBudget(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.requests[epWithin].Inc()
	req := road.WithinRequest{From: road.NodeID(node), Radius: radius, Attr: attr, Budget: budget}
	s.serveQuery(w, r, epWithin, WithinKey(req.From, radius, attr), budget == 0,
		func(ctx context.Context, sess road.Querier) ([]road.Result, road.Stats, error) {
			return sess.WithinContext(ctx, req)
		})
}

// serveQuery runs one read query under the coordination layer: cache
// probe, pooled-session execution on miss, cache fill — all at one
// consistent epoch. cacheable excludes budget-limited answers (their
// truncation point is caller-specific, so they must not be shared), and
// truncated answers are never cached either. For self-coordinated stores
// a mutation may complete mid-query; the answer is still valid (it was
// correct at the observed epoch), but it is only admitted to the cache
// when Read reports the epoch stayed stable across the execution.
//
// Trace-carrying requests (&trace=1) bypass the cache entirely — both
// probe and fill — so every leg in the returned trace reflects work this
// request actually performed.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, ep endpoint, key CacheKey, cacheable bool, run func(context.Context, road.Querier) ([]road.Result, road.Stats, error)) {
	start := time.Now()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	traced := wantTrace(r)
	ctx, tr := s.traceCtx(ctx, traced)
	id := obs.NewRequestID()
	tr.SetID(id)
	useCache := cacheable && s.cache != nil && !traced
	cacheOutcome := "bypass"
	var resp QueryResponse
	var queryErr error
	var fill *CachedAnswer
	var st road.Stats
	stable := s.coord.Read(func(epoch uint64) {
		resp.Epoch = epoch
		if useCache {
			if ans, ok := s.cache.Get(key, epoch); ok {
				cacheOutcome = "hit"
				resp.Cached = true
				resp.Results = resultsJSON(ans.Results)
				resp.Stats = statsJSON(ans.Stats)
				return
			}
			cacheOutcome = "miss"
		}
		sess := s.pool.Get()
		res, qst, err := run(ctx, sess)
		s.pool.Put(sess)
		st = qst
		if err != nil {
			queryErr = err
			return
		}
		s.recordStats(st)
		if useCache && !st.Truncated {
			fill = &CachedAnswer{Results: res, Stats: st}
		}
		resp.Results = resultsJSON(res)
		resp.Stats = statsJSON(st)
	})
	elapsed := time.Since(start)
	s.met.latency[ep].Observe(elapsed.Seconds())
	rec := obs.QueryRecord{
		ID:         id,
		Op:         endpointNames[ep],
		Node:       int64(key.Node),
		Home:       s.homeOf(key.Node),
		Attr:       key.Attr,
		Shards:     st.ShardsSearched,
		Pops:       st.NodesPopped,
		DurationUS: elapsed.Microseconds(),
		Cache:      cacheOutcome,
		Truncated:  st.Truncated,
	}
	switch key.Kind {
	case 'k':
		rec.K = key.K
	case 'w':
		rec.Radius = math.Float64frombits(key.RadiusBits)
	}
	if queryErr != nil {
		_, rec.Code = queryErrStatus(queryErr)
		s.logQuery(rec)
		s.writeQueryErr(w, queryErr)
		return
	}
	rec.Results = len(resp.Results)
	s.logQuery(rec)
	s.logSlow(id, rec.Op, rec.Node, elapsed, st, tr)
	if fill != nil && stable {
		s.cache.Put(key, resp.Epoch, *fill)
	}
	resp.Node = key.Node
	resp.ID = id
	resp.ElapsedUS = elapsed.Microseconds()
	if traced {
		resp.Trace = tr.Legs()
	}
	if resp.Results == nil {
		resp.Results = []ResultJSON{}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	obj, err := queryInt(r, "object")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.requests[epPath].Inc()
	start := time.Now()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	traced := wantTrace(r)
	ctx, tr := s.traceCtx(ctx, traced)
	id := obs.NewRequestID()
	tr.SetID(id)
	var resp PathResponse
	var pathErr error
	var st road.Stats
	s.coord.Read(func(epoch uint64) {
		sess := s.pool.Get()
		p, qst, err := sess.PathToContext(ctx, road.PathRequest{From: road.NodeID(node), Object: road.ObjectID(obj)})
		s.pool.Put(sess)
		st = qst
		if err != nil {
			pathErr = err
			return
		}
		s.recordStats(st)
		resp = PathResponse{
			Node:   road.NodeID(node),
			Object: road.ObjectID(obj),
			Epoch:  epoch,
			Dist:   p.Dist,
			Path:   p.Nodes,
			Stats:  statsJSON(st),
		}
	})
	elapsed := time.Since(start)
	s.met.latency[epPath].Observe(elapsed.Seconds())
	rec := obs.QueryRecord{
		ID:         id,
		Op:         endpointNames[epPath],
		Node:       node,
		Home:       s.homeOf(road.NodeID(node)),
		Shards:     st.ShardsSearched,
		Pops:       st.NodesPopped,
		DurationUS: elapsed.Microseconds(),
		Truncated:  st.Truncated,
	}
	if pathErr != nil {
		_, rec.Code = queryErrStatus(pathErr)
		s.logQuery(rec)
		s.writeQueryErr(w, pathErr)
		return
	}
	rec.Results = len(resp.Path)
	s.logQuery(rec)
	s.logSlow(id, rec.Op, node, elapsed, st, tr)
	resp.ID = id
	resp.ElapsedUS = elapsed.Microseconds()
	if traced {
		resp.Trace = tr.Legs()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleBatch answers a JSON array of road.Requests on ONE pooled session
// under ONE read-lock acquisition — the HTTP face of road.Store.Query.
// Per-entry failures are reported inline (the batch itself is always 200
// once decoded), so a mixed batch never loses its good answers.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []road.Request
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		s.writeErr(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if len(reqs) == 0 {
		s.writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	s.met.requests[epBatch].Inc()
	start := time.Now()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	var resp BatchResponse
	var totalPops, totalShards int
	s.coord.Read(func(epoch uint64) {
		sess := s.pool.Get()
		answers := road.RunBatch(ctx, sess, reqs)
		s.pool.Put(sess)
		resp.Epoch = epoch
		resp.Responses = make([]BatchItemJSON, len(answers))
		for i, a := range answers {
			item := BatchItemJSON{
				Stats: statsJSON(a.Stats),
			}
			if a.Err != nil {
				s.met.errors.Inc()
				_, code := queryErrStatus(a.Err)
				s.countTimeout(code)
				item.Error = a.Err.Error()
				item.Code = code
			} else if reqs[i].Path != nil {
				item.Path = a.Path
				item.Dist = a.Dist
			} else {
				item.Results = resultsJSON(a.Results)
			}
			if item.Results == nil {
				item.Results = []ResultJSON{}
			}
			s.recordStats(a.Stats)
			totalPops += a.Stats.NodesPopped
			totalShards += a.Stats.ShardsSearched
			resp.Responses[i] = item
		}
	})
	elapsed := time.Since(start)
	s.met.latency[epBatch].Observe(elapsed.Seconds())
	// One record for the whole batch: Node is the entry count (a batch has
	// no single origin), Pops/Shards the summed cost.
	s.logQuery(obs.QueryRecord{
		ID:         obs.NewRequestID(),
		Op:         endpointNames[epBatch],
		Node:       int64(len(reqs)),
		Home:       -1,
		Shards:     totalShards,
		Pops:       totalPops,
		Results:    len(resp.Responses),
		DurationUS: elapsed.Microseconds(),
	})
	resp.ElapsedUS = elapsed.Microseconds()
	s.writeJSON(w, http.StatusOK, resp)
}

// maintenance wraps one mutation op in body decoding, the coordinator's
// write path (a store-wide lock for road.DB; the store's own per-shard
// locks for a road.Synchronized store) and the acknowledgement envelope.
func (s *Server) maintenance(op func(*MaintenanceRequest, *MaintenanceResponse) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req MaintenanceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeErr(w, http.StatusBadRequest, "decoding request body: %v", err)
			return
		}
		s.met.requests[epMaint].Inc()
		start := time.Now()
		defer func() { s.met.latency[epMaint].Observe(time.Since(start).Seconds()) }()
		// IDs start at 0, so "not applicable" needs an explicit -1 marker;
		// each op overwrites the fields it concerns.
		resp := MaintenanceResponse{Edge: road.NoEdge, Object: -1}
		epoch, err := s.coord.Write(func() error {
			opErr := op(&req, &resp)
			// Re-materialize any shortcut trees the mutation invalidated
			// while readers are still excluded — even on error, a partial
			// mutation may have invalidated some — so concurrent sessions
			// never trigger a lazy rebuild. (A no-op for internally
			// synchronized stores, which re-warm under their own locks.)
			s.b.WarmAfterMutation()
			return opErr
		})
		if err != nil {
			s.writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		resp.OK = true
		resp.Epoch = epoch
		s.writeJSON(w, http.StatusOK, resp)
	}
}

// checkEdge guards the trust boundary: edge IDs index dense arrays in
// the graph layer, which panics on out-of-range IDs rather than erroring.
// Runs inside the coordinator's write path, where the edge count is
// stable (NumRoads is itself safe against concurrent mutations on
// self-coordinated stores).
func (s *Server) checkEdge(e road.EdgeID) error {
	if int(e) < 0 || int(e) >= s.b.NumRoads() {
		return fmt.Errorf("edge %d does not exist: %w", e, road.ErrNoSuchEdge)
	}
	return nil
}

func (s *Server) opSetDistance(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if !(req.Dist > 0) {
		return fmt.Errorf("dist must be positive")
	}
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	return s.b.SetRoadDistance(req.Edge, req.Dist)
}

func (s *Server) opClose(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	return s.b.CloseRoad(req.Edge)
}

func (s *Server) opReopen(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	return s.b.ReopenRoad(req.Edge)
}

func (s *Server) opAddRoad(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if !(req.Dist > 0) {
		return fmt.Errorf("dist must be positive")
	}
	e, err := s.b.AddRoad(req.U, req.V, req.Dist)
	resp.Edge = e
	return err
}

func (s *Server) opInsertObject(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	o, err := s.b.AddObject(req.Edge, req.Offset, req.Attr)
	resp.Object = o.ID
	return err
}

func (s *Server) opDeleteObject(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	resp.Object = req.Object
	return s.b.RemoveObject(req.Object)
}

func (s *Server) opSetAttr(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	resp.Object = req.Object
	return s.b.SetObjectAttr(req.Object, req.Attr)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	s.coord.Read(func(epoch uint64) {
		resp.Epoch = epoch
		resp.Network.Nodes = s.b.NumNodes()
		resp.Network.Edges = s.b.NumRoads()
		resp.Network.Objects = s.b.NumObjects()
		resp.Network.IndexKB = s.b.IndexSizeBytes() / 1024
		if sp, ok := s.b.(shardInfoProvider); ok {
			resp.Shards = sp.ShardInfos()
		}
	})
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.Requests.KNN = s.met.requests[epKNN].Value()
	resp.Requests.Within = s.met.requests[epWithin].Value()
	resp.Requests.Path = s.met.requests[epPath].Value()
	resp.Requests.Batch = s.met.requests[epBatch].Value()
	resp.Requests.Maintenance = s.met.requests[epMaint].Value()
	resp.Requests.Errors = s.met.errors.Value()
	resp.Requests.Timeouts = s.met.timeouts.Value()
	resp.Traversal.NodesPopped = int64(s.met.nodesPopped.Value())
	resp.Traversal.RnetsBypassed = int64(s.met.rnetsBypassed.Value())
	resp.Traversal.RnetsDescended = int64(s.met.rnetsDescended.Value())
	resp.Traversal.ShardsSearched = int64(s.met.shardsSearched.Value())
	resp.Traversal.IOReads = int64(s.met.ioReads.Value())
	resp.Traversal.IOFaults = int64(s.met.ioFaults.Value())
	if s.cache != nil {
		resp.Cache = s.cache.Stats()
	}
	resp.Pool = s.pool.Stats()
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": s.coord.Epoch()})
}
