package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"road"
)

// Options tunes a Server. The zero value serves with a
// DefaultCacheSize-entry result cache and DefaultMaxIdleSessions pooled
// sessions.
type Options struct {
	// CacheSize bounds the LRU result cache in entries
	// (DefaultCacheSize when 0); negative disables result caching.
	CacheSize int
	// MaxIdleSessions bounds the session free list
	// (DefaultMaxIdleSessions when 0).
	MaxIdleSessions int
	// QueryTimeout bounds every read query (kNN, within, path, batch
	// entries): the request context is wrapped in a deadline, the search
	// aborts cooperatively mid-expansion, and the client receives HTTP
	// 503 with a typed error body (code "deadline_exceeded"). Zero
	// disables the bound.
	QueryTimeout time.Duration
	// SnapshotSave, when set, enables POST /admin/snapshot and
	// snapshot-on-shutdown: it is invoked under the coordinator's write
	// lock — readers drained, maintenance excluded — so the image it
	// persists is consistent at exactly one epoch, and returns the number
	// of bytes written (reported in the snapshot acknowledgement). roadd
	// wires this to an atomic write of its -snapshot file(s), followed by
	// journal rotation.
	SnapshotSave func() (int64, error)
}

// Server serves one road.Store — a single-index road.DB or a sharded
// road.ShardedDB, the two deployment shapes behind the same interface —
// over HTTP/JSON. Reads (kNN, within, path, batch) run concurrently on
// pooled sessions; maintenance implicitly invalidates the result cache
// by advancing the store epoch. How reads and maintenance exclude each
// other depends on the store: a road.DB is guarded by the Coordinator's
// store-wide reader/writer lock, while a road.Synchronized store
// (road.ShardedDB) locks internally per shard, so a mutation stalls only
// the readers of the shard it touches.
type Server struct {
	b        road.Store
	coord    *Coordinator
	pool     *SessionPool
	cache    *ResultCache          // nil when disabled
	snapshot func() (int64, error) // nil when persistence is not configured
	timeout  time.Duration         // zero = unbounded queries
	start    time.Time

	knnCount    atomic.Uint64
	withinCount atomic.Uint64
	pathCount   atomic.Uint64
	batchCount  atomic.Uint64
	maintCount  atomic.Uint64
	errCount    atomic.Uint64
	timeoutCnt  atomic.Uint64

	nodesPopped    atomic.Int64
	rnetsBypassed  atomic.Int64
	rnetsDescended atomic.Int64
	shardsSearched atomic.Int64
	ioReads        atomic.Int64
	ioFaults       atomic.Int64
}

// New wires a serving subsystem around any road.Store: an opened
// single-index road.DB, a road.ShardedDB, or any other implementation.
// Stores that synchronize internally (road.Synchronized) are served
// without the store-wide reader/writer lock.
func New(store road.Store, opts Options) *Server {
	coord := NewCoordinator(store.Epoch)
	if synced, ok := store.(road.Synchronized); ok {
		coord = NewSelfCoordinated(store.Epoch, synced.Exclusive)
	}
	s := &Server{
		b:        store,
		coord:    coord,
		pool:     NewSessionPool(store, opts.MaxIdleSessions),
		snapshot: opts.SnapshotSave,
		timeout:  opts.QueryTimeout,
		start:    time.Now(),
	}
	if opts.CacheSize >= 0 {
		s.cache = NewResultCache(opts.CacheSize)
	}
	return s
}

// NewSharded wires a serving subsystem around a sharded database.
//
// Deprecated: road.ShardedDB satisfies road.Store — call New directly.
func NewSharded(db *road.ShardedDB, opts Options) *Server {
	return New(db, opts)
}

// Coordinator exposes the coordination layer (tests and embedders).
func (s *Server) Coordinator() *Coordinator { return s.coord }

// Handler returns the HTTP API:
//
//	GET  /knn?node=N&k=K[&attr=A][&budget=B]     k nearest objects
//	GET  /within?node=N&radius=R[&attr=A][&budget=B]
//	                                             objects within distance R
//	GET  /path?node=N&object=O                   detailed route
//	POST /batch                                  [{"knn":{...}},...] on one session
//	POST /maintenance/set-distance               {"edge":E,"dist":D}
//	POST /maintenance/close                      {"edge":E}
//	POST /maintenance/reopen                     {"edge":E}
//	POST /maintenance/add-road                   {"u":U,"v":V,"dist":D}
//	POST /maintenance/insert-object              {"edge":E,"offset":F,"attr":A}
//	POST /maintenance/delete-object              {"object":O}
//	POST /maintenance/set-attr                   {"object":O,"attr":A}
//	GET  /stats                                  serving statistics
//	GET  /healthz                                liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /knn", s.handleKNN)
	mux.HandleFunc("GET /within", s.handleWithin)
	mux.HandleFunc("GET /path", s.handlePath)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("POST /maintenance/set-distance", s.maintenance(s.opSetDistance))
	mux.HandleFunc("POST /maintenance/close", s.maintenance(s.opClose))
	mux.HandleFunc("POST /maintenance/reopen", s.maintenance(s.opReopen))
	mux.HandleFunc("POST /maintenance/add-road", s.maintenance(s.opAddRoad))
	mux.HandleFunc("POST /maintenance/insert-object", s.maintenance(s.opInsertObject))
	mux.HandleFunc("POST /maintenance/delete-object", s.maintenance(s.opDeleteObject))
	mux.HandleFunc("POST /maintenance/set-attr", s.maintenance(s.opSetAttr))
	mux.HandleFunc("POST /admin/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// TakeSnapshot persists the index through the configured SnapshotSave
// callback with the whole store quiesced (Coordinator.Exclusive),
// returning the epoch and journal sequence the image captured and the
// number of snapshot bytes written. It is the engine behind
// /admin/snapshot, roadd's snapshot-on-SIGTERM and the
// -journal-max-bytes auto-snapshot trigger.
func (s *Server) TakeSnapshot() (epoch, seq uint64, bytes int64, err error) {
	if s.snapshot == nil {
		return 0, 0, 0, fmt.Errorf("snapshot persistence not configured (start roadd with -snapshot)")
	}
	epoch, err = s.coord.Exclusive(func() error {
		seq = s.b.JournalSeq()
		var serr error
		bytes, serr = s.snapshot()
		return serr
	})
	return epoch, seq, bytes, err
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	epoch, seq, bytes, err := s.TakeSnapshot()
	if err != nil {
		if s.snapshot == nil {
			s.writeErr(w, http.StatusNotImplemented, "%v", err)
		} else {
			s.writeErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, SnapshotResponse{
		OK:         true,
		Epoch:      epoch,
		JournalSeq: seq,
		Bytes:      bytes,
		ElapsedUS:  time.Since(start).Microseconds(),
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	s.errCount.Add(1)
	s.writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeQueryErr maps a typed query error to its HTTP status and wire code
// — the error-contract half of the v1 API on the wire.
func (s *Server) writeQueryErr(w http.ResponseWriter, err error) {
	s.errCount.Add(1)
	status, code := queryErrStatus(err)
	s.countTimeout(code)
	s.writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}

// countTimeout feeds /stats requests.timeouts: only genuine deadline
// expiries — not client disconnects or budget stops — count.
func (s *Server) countTimeout(code string) {
	if code == "deadline_exceeded" {
		s.timeoutCnt.Add(1)
	}
}

// queryErrStatus classifies a typed query error. A canceled query is
// "deadline_exceeded" only when the deadline actually expired; a client
// that went away mid-search is plain "canceled".
func queryErrStatus(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, "deadline_exceeded"
	case errors.Is(err, road.ErrCanceled):
		return http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, road.ErrBudgetExhausted):
		return http.StatusServiceUnavailable, "budget_exhausted"
	case errors.Is(err, road.ErrNoSuchNode):
		return http.StatusNotFound, "no_such_node"
	case errors.Is(err, road.ErrNoSuchObject):
		return http.StatusNotFound, "no_such_object"
	case errors.Is(err, road.ErrInvalidRequest):
		return http.StatusBadRequest, "invalid_request"
	default:
		return http.StatusUnprocessableEntity, "query_failed"
	}
}

func (s *Server) recordStats(st road.Stats) {
	s.nodesPopped.Add(int64(st.NodesPopped))
	s.rnetsBypassed.Add(int64(st.RnetsBypassed))
	s.rnetsDescended.Add(int64(st.RnetsDescended))
	s.shardsSearched.Add(int64(st.ShardsSearched))
	s.ioReads.Add(st.IO.Reads)
	s.ioFaults.Add(st.IO.Faults)
}

// queryCtx derives the context one read query runs under: the client's
// request context (canceled when the client goes away), bounded by the
// configured per-request timeout.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// queryInt parses a required integer query parameter.
func queryInt(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// queryAttr parses the optional attr parameter (default AnyAttr).
func queryAttr(r *http.Request) (int32, error) {
	raw := r.URL.Query().Get("attr")
	if raw == "" {
		return road.AnyAttr, nil
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter \"attr\": %v", err)
	}
	return int32(v), nil
}

// queryBudget parses the optional budget parameter (0 = unlimited).
func queryBudget(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("budget")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("parameter \"budget\" must be a non-negative integer")
	}
	return int(v), nil
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := queryInt(r, "k")
	if err != nil || k < 1 {
		s.writeErr(w, http.StatusBadRequest, "parameter \"k\" must be a positive integer")
		return
	}
	attr, err := queryAttr(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	budget, err := queryBudget(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.knnCount.Add(1)
	req := road.KNNRequest{From: road.NodeID(node), K: int(k), Attr: attr, Budget: budget}
	s.serveQuery(w, r, KNNKey(req.From, req.K, attr), budget == 0,
		func(ctx context.Context, sess road.Querier) ([]road.Result, road.Stats, error) {
			return sess.KNNContext(ctx, req)
		})
}

func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	radius, err := strconv.ParseFloat(r.URL.Query().Get("radius"), 64)
	if err != nil || !(radius > 0) || math.IsInf(radius, 1) {
		s.writeErr(w, http.StatusBadRequest, "parameter \"radius\" must be a positive finite number")
		return
	}
	attr, err := queryAttr(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	budget, err := queryBudget(r)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.withinCount.Add(1)
	req := road.WithinRequest{From: road.NodeID(node), Radius: radius, Attr: attr, Budget: budget}
	s.serveQuery(w, r, WithinKey(req.From, radius, attr), budget == 0,
		func(ctx context.Context, sess road.Querier) ([]road.Result, road.Stats, error) {
			return sess.WithinContext(ctx, req)
		})
}

// serveQuery runs one read query under the coordination layer: cache
// probe, pooled-session execution on miss, cache fill — all at one
// consistent epoch. cacheable excludes budget-limited answers (their
// truncation point is caller-specific, so they must not be shared), and
// truncated answers are never cached either. For self-coordinated stores
// a mutation may complete mid-query; the answer is still valid (it was
// correct at the observed epoch), but it is only admitted to the cache
// when Read reports the epoch stayed stable across the execution.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, key CacheKey, cacheable bool, run func(context.Context, road.Querier) ([]road.Result, road.Stats, error)) {
	start := time.Now()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	var resp QueryResponse
	var queryErr error
	var fill *CachedAnswer
	stable := s.coord.Read(func(epoch uint64) {
		resp.Epoch = epoch
		if cacheable && s.cache != nil {
			if ans, ok := s.cache.Get(key, epoch); ok {
				resp.Cached = true
				resp.Results = resultsJSON(ans.Results)
				resp.Stats = statsJSON(ans.Stats)
				return
			}
		}
		sess := s.pool.Get()
		res, st, err := run(ctx, sess)
		s.pool.Put(sess)
		if err != nil {
			queryErr = err
			return
		}
		s.recordStats(st)
		if cacheable && s.cache != nil && !st.Truncated {
			fill = &CachedAnswer{Results: res, Stats: st}
		}
		resp.Results = resultsJSON(res)
		resp.Stats = statsJSON(st)
	})
	if queryErr != nil {
		s.writeQueryErr(w, queryErr)
		return
	}
	if fill != nil && stable {
		s.cache.Put(key, resp.Epoch, *fill)
	}
	resp.Node = key.Node
	resp.ElapsedUS = time.Since(start).Microseconds()
	if resp.Results == nil {
		resp.Results = []ResultJSON{}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	obj, err := queryInt(r, "object")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.pathCount.Add(1)
	start := time.Now()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	var resp PathResponse
	var pathErr error
	s.coord.Read(func(epoch uint64) {
		sess := s.pool.Get()
		p, st, err := sess.PathToContext(ctx, road.PathRequest{From: road.NodeID(node), Object: road.ObjectID(obj)})
		s.pool.Put(sess)
		if err != nil {
			pathErr = err
			return
		}
		s.recordStats(st)
		resp = PathResponse{
			Node:   road.NodeID(node),
			Object: road.ObjectID(obj),
			Epoch:  epoch,
			Dist:   p.Dist,
			Path:   p.Nodes,
			Stats:  statsJSON(st),
		}
	})
	if pathErr != nil {
		s.writeQueryErr(w, pathErr)
		return
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	s.writeJSON(w, http.StatusOK, resp)
}

// handleBatch answers a JSON array of road.Requests on ONE pooled session
// under ONE read-lock acquisition — the HTTP face of road.Store.Query.
// Per-entry failures are reported inline (the batch itself is always 200
// once decoded), so a mixed batch never loses its good answers.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []road.Request
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		s.writeErr(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if len(reqs) == 0 {
		s.writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	s.batchCount.Add(1)
	start := time.Now()
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	var resp BatchResponse
	s.coord.Read(func(epoch uint64) {
		sess := s.pool.Get()
		answers := road.RunBatch(ctx, sess, reqs)
		s.pool.Put(sess)
		resp.Epoch = epoch
		resp.Responses = make([]BatchItemJSON, len(answers))
		for i, a := range answers {
			item := BatchItemJSON{
				Stats: statsJSON(a.Stats),
			}
			if a.Err != nil {
				s.errCount.Add(1)
				_, code := queryErrStatus(a.Err)
				s.countTimeout(code)
				item.Error = a.Err.Error()
				item.Code = code
			} else if reqs[i].Path != nil {
				item.Path = a.Path
				item.Dist = a.Dist
			} else {
				item.Results = resultsJSON(a.Results)
			}
			if item.Results == nil {
				item.Results = []ResultJSON{}
			}
			s.recordStats(a.Stats)
			resp.Responses[i] = item
		}
	})
	resp.ElapsedUS = time.Since(start).Microseconds()
	s.writeJSON(w, http.StatusOK, resp)
}

// maintenance wraps one mutation op in body decoding, the coordinator's
// write path (a store-wide lock for road.DB; the store's own per-shard
// locks for a road.Synchronized store) and the acknowledgement envelope.
func (s *Server) maintenance(op func(*MaintenanceRequest, *MaintenanceResponse) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req MaintenanceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeErr(w, http.StatusBadRequest, "decoding request body: %v", err)
			return
		}
		s.maintCount.Add(1)
		// IDs start at 0, so "not applicable" needs an explicit -1 marker;
		// each op overwrites the fields it concerns.
		resp := MaintenanceResponse{Edge: road.NoEdge, Object: -1}
		epoch, err := s.coord.Write(func() error {
			opErr := op(&req, &resp)
			// Re-materialize any shortcut trees the mutation invalidated
			// while readers are still excluded — even on error, a partial
			// mutation may have invalidated some — so concurrent sessions
			// never trigger a lazy rebuild. (A no-op for internally
			// synchronized stores, which re-warm under their own locks.)
			s.b.WarmAfterMutation()
			return opErr
		})
		if err != nil {
			s.writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		resp.OK = true
		resp.Epoch = epoch
		s.writeJSON(w, http.StatusOK, resp)
	}
}

// checkEdge guards the trust boundary: edge IDs index dense arrays in
// the graph layer, which panics on out-of-range IDs rather than erroring.
// Runs inside the coordinator's write path, where the edge count is
// stable (NumRoads is itself safe against concurrent mutations on
// self-coordinated stores).
func (s *Server) checkEdge(e road.EdgeID) error {
	if int(e) < 0 || int(e) >= s.b.NumRoads() {
		return fmt.Errorf("edge %d does not exist: %w", e, road.ErrNoSuchEdge)
	}
	return nil
}

func (s *Server) opSetDistance(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if !(req.Dist > 0) {
		return fmt.Errorf("dist must be positive")
	}
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	return s.b.SetRoadDistance(req.Edge, req.Dist)
}

func (s *Server) opClose(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	return s.b.CloseRoad(req.Edge)
}

func (s *Server) opReopen(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	return s.b.ReopenRoad(req.Edge)
}

func (s *Server) opAddRoad(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if !(req.Dist > 0) {
		return fmt.Errorf("dist must be positive")
	}
	e, err := s.b.AddRoad(req.U, req.V, req.Dist)
	resp.Edge = e
	return err
}

func (s *Server) opInsertObject(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	if err := s.checkEdge(req.Edge); err != nil {
		return err
	}
	resp.Edge = req.Edge
	o, err := s.b.AddObject(req.Edge, req.Offset, req.Attr)
	resp.Object = o.ID
	return err
}

func (s *Server) opDeleteObject(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	resp.Object = req.Object
	return s.b.RemoveObject(req.Object)
}

func (s *Server) opSetAttr(req *MaintenanceRequest, resp *MaintenanceResponse) error {
	resp.Object = req.Object
	return s.b.SetObjectAttr(req.Object, req.Attr)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	s.coord.Read(func(epoch uint64) {
		resp.Epoch = epoch
		resp.Network.Nodes = s.b.NumNodes()
		resp.Network.Edges = s.b.NumRoads()
		resp.Network.Objects = s.b.NumObjects()
		resp.Network.IndexKB = s.b.IndexSizeBytes() / 1024
		if sp, ok := s.b.(shardInfoProvider); ok {
			resp.Shards = sp.ShardInfos()
		}
	})
	resp.UptimeSeconds = time.Since(s.start).Seconds()
	resp.Requests.KNN = s.knnCount.Load()
	resp.Requests.Within = s.withinCount.Load()
	resp.Requests.Path = s.pathCount.Load()
	resp.Requests.Batch = s.batchCount.Load()
	resp.Requests.Maintenance = s.maintCount.Load()
	resp.Requests.Errors = s.errCount.Load()
	resp.Requests.Timeouts = s.timeoutCnt.Load()
	resp.Traversal.NodesPopped = s.nodesPopped.Load()
	resp.Traversal.RnetsBypassed = s.rnetsBypassed.Load()
	resp.Traversal.RnetsDescended = s.rnetsDescended.Load()
	resp.Traversal.ShardsSearched = s.shardsSearched.Load()
	resp.Traversal.IOReads = s.ioReads.Load()
	resp.Traversal.IOFaults = s.ioFaults.Load()
	if s.cache != nil {
		resp.Cache = s.cache.Stats()
	}
	resp.Pool = s.pool.Stats()
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": s.coord.Epoch()})
}
