package server

import (
	"container/list"
	"math"
	"sync"

	"road"
)

// CacheKey identifies one query shape. Radius is stored as float bits so
// the struct is comparable and NaN-free keys hash consistently.
type CacheKey struct {
	Kind       byte // 'k' = kNN, 'w' = within
	Node       road.NodeID
	K          int
	RadiusBits uint64
	Attr       int32
}

// KNNKey builds the cache key for a kNN query.
func KNNKey(node road.NodeID, k int, attr int32) CacheKey {
	return CacheKey{Kind: 'k', Node: node, K: k, Attr: attr}
}

// WithinKey builds the cache key for a range query.
func WithinKey(node road.NodeID, radius float64, attr int32) CacheKey {
	return CacheKey{Kind: 'w', Node: node, RadiusBits: math.Float64bits(radius), Attr: attr}
}

// CachedAnswer is a memoized query result. Results are shared read-only
// slices: handlers must not mutate them.
type CachedAnswer struct {
	Results []road.Result
	Stats   road.Stats
}

// ResultCache is an LRU memo of query answers, valid for exactly one
// maintenance epoch. Instead of tagging entries individually, the cache
// remembers the epoch its whole contents belong to and purges itself the
// first time it is consulted at a newer epoch — maintenance operations
// pay nothing, and readers pay one cheap comparison. Epochs only grow
// (the DB counter is monotonic), so a purge can never resurrect stale
// answers.
type ResultCache struct {
	mu    sync.Mutex
	cap   int
	epoch uint64
	ll    *list.List // front = most recently used
	items map[CacheKey]*list.Element

	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64
}

type cacheEntry struct {
	key CacheKey
	val CachedAnswer
}

// DefaultCacheSize bounds the cache when Options leave it zero.
const DefaultCacheSize = 4096

// NewResultCache returns an LRU cache holding up to capacity answers
// (DefaultCacheSize when 0; capacity < 0 is treated as a disabled cache
// of size 0 by the Server, not here).
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &ResultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[CacheKey]*list.Element, capacity),
	}
}

// Get looks up key at the given maintenance epoch. A lookup at a newer
// epoch than the cache contents purges everything first.
func (c *ResultCache) Get(key CacheKey, epoch uint64) (CachedAnswer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncEpoch(epoch)
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return CachedAnswer{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).val, true
}

// Put stores an answer computed at the given epoch, evicting the least
// recently used entry when full. An answer from an older epoch than the
// cache has already seen is dropped — it is stale by definition.
func (c *ResultCache) Put(key CacheKey, epoch uint64, val CachedAnswer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncEpoch(epoch)
	if epoch < c.epoch {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
}

// syncEpoch purges the cache if the observed epoch has moved past the
// contents. Caller holds c.mu.
func (c *ResultCache) syncEpoch(epoch uint64) {
	if epoch <= c.epoch {
		return
	}
	if c.ll.Len() > 0 {
		c.invalidations++
		c.ll.Init()
		clear(c.items)
	}
	c.epoch = epoch
}

// Len returns the current number of cached answers.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	Entries       int     `json:"entries"`
	Capacity      int     `json:"capacity"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Entries:       c.ll.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
	if total := c.hits + c.misses; total > 0 {
		st.HitRate = float64(c.hits) / float64(total)
	}
	return st
}
