package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"road"
	"road/internal/shard/remote"
)

// startFleetServer builds a sharded deployment, persists it, boots each
// half of its shards in a separate remote.Host behind a real TCP
// listener, assembles a RemoteDB router over the two hosts and serves it
// — the full multi-process topology (router process + 2 shard-host
// processes), minus fork/exec.
func startFleetServer(t *testing.T, opts Options) (*httptest.Server, []road.ObjectID) {
	t.Helper()
	sdb, objs := buildShardedGrid(t, 8, 4)
	dir := t.TempDir()
	snap := filepath.Join(dir, "fleet")
	wal := filepath.Join(dir, "wal")
	if err := sdb.SaveSnapshotFiles(snap); err != nil {
		t.Fatalf("SaveSnapshotFiles: %v", err)
	}

	var addrs []string
	for _, ids := range [][]int{{0, 1}, {2, 3}} {
		host, err := remote.OpenHost(ids, remote.HostConfig{
			SnapshotPrefix: snap,
			JournalPrefix:  wal,
		})
		if err != nil {
			t.Fatalf("OpenHost %v: %v", ids, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			host.Close()
			t.Fatalf("listen: %v", err)
		}
		srv := &http.Server{Handler: host.Handler()}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close(); host.Close() })
		addrs = append(addrs, ln.Addr().String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rdb, err := road.OpenRemote(ctx, addrs, road.RemoteOptions{})
	if err != nil {
		t.Fatalf("OpenRemote: %v", err)
	}
	t.Cleanup(rdb.Close)

	ts := httptest.NewServer(New(rdb, opts).Handler())
	t.Cleanup(ts.Close)
	return ts, objs
}

// TestFleetTraceStitching is the cross-process acceptance check: a
// traced query through a router over two real shard-host processes must
// come back with the host-side compute legs nested under the rpc hops
// that carried them, with wire time separated from host compute and the
// nested legs fitting inside their hop's wall time.
func TestFleetTraceStitching(t *testing.T) {
	ts, objs := startFleetServer(t, Options{})

	// Every object forces cross-shard fan-out: several rpc hops.
	got := getJSON[QueryResponse](t, ts, fmt.Sprintf("/knn?node=0&k=%d&trace=1", len(objs)), http.StatusOK)
	if len(got.Results) != len(objs) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(objs))
	}
	if got.ID == "" {
		t.Fatal("traced response missing request ID")
	}
	var rpcs, stitched int
	for _, leg := range got.Trace {
		switch leg.Name {
		case "rpc":
			rpcs++
			if leg.Host == "" {
				t.Errorf("rpc leg without a host: %+v", leg)
			}
			if leg.WireUS < 0 || leg.WireUS > leg.DurationUS {
				t.Errorf("rpc wire time %dµs outside [0, wall %dµs]", leg.WireUS, leg.DurationUS)
			}
			if len(leg.Sub) == 0 {
				t.Errorf("rpc leg has no nested host legs: %+v", leg)
				continue
			}
			stitched++
			var subSum int64
			var sawSearch bool
			for _, sub := range leg.Sub {
				subSum += sub.DurationUS
				switch sub.Name {
				case "host_queue":
				case "host_search":
					sawSearch = true
					if sub.Pops <= 0 {
						t.Errorf("host_search leg reports no pops: %+v", sub)
					}
				case "host_leg", "host_journal", "host_apply":
				default:
					t.Errorf("unexpected host leg %q under rpc hop: %+v", sub.Name, leg.Sub)
				}
				if sub.Host != leg.Host {
					t.Errorf("nested leg host %q != rpc hop host %q", sub.Host, leg.Host)
				}
				if sub.Shard != leg.Shard {
					t.Errorf("nested leg shard %d != rpc hop shard %d", sub.Shard, leg.Shard)
				}
			}
			if !sawSearch {
				t.Errorf("rpc search hop carries no host_search leg: %+v", leg.Sub)
			}
			// Host-measured time fits inside the hop's wall time (+1µs
			// truncation slack): the host cannot have computed for longer
			// than the client waited.
			if subSum > leg.DurationUS+1 {
				t.Errorf("host legs sum to %dµs, exceeding rpc wall %dµs", subSum, leg.DurationUS)
			}
		case "home_fast", "home_locked", "home_watched", "gateway", "enter":
		default:
			t.Errorf("unexpected leg %q in fleet trace", leg.Name)
		}
	}
	if rpcs < 2 {
		t.Fatalf("cross-shard traced query produced %d rpc hops, want >= 2\nlegs: %+v", rpcs, got.Trace)
	}
	if stitched != rpcs {
		t.Fatalf("%d of %d rpc hops carry nested host legs", stitched, rpcs)
	}

	// Untraced queries must come back bare: the host only computes and
	// returns legs when the trace header rode in.
	plain := getJSON[QueryResponse](t, ts, "/knn?node=0&k=2", http.StatusOK)
	if len(plain.Trace) != 0 {
		t.Fatalf("untraced fleet query returned trace %+v", plain.Trace)
	}
}

// TestFleetEndpoint checks GET /fleet on a router deployment: both hosts
// up with their shard assignments and RPC counters moving, and 404 on a
// deployment without shard hosts.
func TestFleetEndpoint(t *testing.T) {
	ts, objs := startFleetServer(t, Options{})
	for i := 0; i < 4; i++ {
		getJSON[QueryResponse](t, ts, fmt.Sprintf("/knn?node=%d&k=%d&trace=1", i*7, len(objs)), http.StatusOK)
	}

	fs := getJSON[remote.FleetStatus](t, ts, "/fleet", http.StatusOK)
	if len(fs.Hosts) != 2 {
		t.Fatalf("fleet reports %d hosts, want 2: %+v", len(fs.Hosts), fs)
	}
	shardsSeen := make(map[int]bool)
	var rpcs uint64
	for _, h := range fs.Hosts {
		if !h.Up {
			t.Errorf("host %s reported down", h.Addr)
		}
		if h.Addr == "" {
			t.Error("host with empty address")
		}
		for _, id := range h.Shards {
			if shardsSeen[id] {
				t.Errorf("shard %d served by two hosts", id)
			}
			shardsSeen[id] = true
		}
		rpcs += h.RPCs
	}
	if len(shardsSeen) != 4 {
		t.Errorf("fleet serves shards %v, want all of 0..3", shardsSeen)
	}
	if rpcs == 0 {
		t.Error("no RPCs recorded across the fleet after traffic")
	}

	// A plain single-index deployment is not a fleet.
	db, _, _, _ := buildSquare(t, road.Options{})
	single := httptest.NewServer(New(db, Options{}).Handler())
	defer single.Close()
	getJSON[ErrorResponse](t, single, "/fleet", http.StatusNotFound)
}
