package server

import (
	"road"
	"road/internal/shard"
)

// Querier is one concurrent read context over a served database: the
// query surface of road.Session and road.ShardedSession.
type Querier interface {
	KNN(from road.NodeID, k int, attr int32) ([]road.Result, road.Stats)
	Within(from road.NodeID, radius float64, attr int32) ([]road.Result, road.Stats)
	PathTo(from road.NodeID, obj road.ObjectID) ([]road.NodeID, float64, error)
}

// Backend is the database contract the serving subsystem runs on. Both
// road.DB (one index) and road.ShardedDB (a router over per-region
// shards) serve through it; the coordinator, session pool, result cache
// and handlers are identical either way.
type Backend interface {
	Epoch() uint64
	JournalSeq() uint64
	NumNodes() int
	NumEdges() int
	NumObjects() int
	IndexSizeBytes() int64

	// NewQuerier returns a fresh concurrent read context (pooled by the
	// serving layer).
	NewQuerier() Querier

	// WarmAfterMutation re-materializes lazily-rebuilt read-path state
	// (shortcut trees) while readers are still excluded, even after a
	// failed op — partial mutations invalidate too.
	WarmAfterMutation()

	SetRoadDistance(e road.EdgeID, dist float64) error
	AddRoad(u, v road.NodeID, dist float64) (road.EdgeID, error)
	CloseRoad(e road.EdgeID) error
	ReopenRoad(e road.EdgeID) error
	AddObject(e road.EdgeID, offset float64, attr int32) (road.Object, error)
	RemoveObject(id road.ObjectID) error
	SetObjectAttr(id road.ObjectID, attr int32) error
}

// shardInfoProvider is the optional Backend extension a sharded database
// implements; /stats surfaces its per-shard load section.
type shardInfoProvider interface {
	ShardInfos() []shard.Info
}

// DBBackend adapts a single-index road.DB to the Backend contract.
func DBBackend(db *road.DB) Backend { return dbBackend{db} }

type dbBackend struct{ db *road.DB }

func (b dbBackend) Epoch() uint64         { return b.db.Epoch() }
func (b dbBackend) JournalSeq() uint64    { return b.db.JournalSeq() }
func (b dbBackend) NumNodes() int         { return b.db.Framework().Graph().NumNodes() }
func (b dbBackend) NumEdges() int         { return b.db.Framework().Graph().NumEdges() }
func (b dbBackend) NumObjects() int       { return b.db.Framework().Objects().Len() }
func (b dbBackend) IndexSizeBytes() int64 { return b.db.IndexSizeBytes() }
func (b dbBackend) NewQuerier() Querier   { return b.db.NewSession() }
func (b dbBackend) WarmAfterMutation()    { b.db.Framework().WarmTrees() }

func (b dbBackend) SetRoadDistance(e road.EdgeID, dist float64) error {
	return b.db.SetRoadDistance(e, dist)
}
func (b dbBackend) AddRoad(u, v road.NodeID, dist float64) (road.EdgeID, error) {
	return b.db.AddRoad(u, v, dist)
}
func (b dbBackend) CloseRoad(e road.EdgeID) error  { return b.db.CloseRoad(e) }
func (b dbBackend) ReopenRoad(e road.EdgeID) error { return b.db.ReopenRoad(e) }
func (b dbBackend) AddObject(e road.EdgeID, offset float64, attr int32) (road.Object, error) {
	return b.db.AddObject(e, offset, attr)
}
func (b dbBackend) RemoveObject(id road.ObjectID) error { return b.db.RemoveObject(id) }
func (b dbBackend) SetObjectAttr(id road.ObjectID, attr int32) error {
	return b.db.SetObjectAttr(id, attr)
}

// ShardedBackend adapts a road.ShardedDB to the Backend contract, with
// per-shard load reporting.
func ShardedBackend(db *road.ShardedDB) Backend { return shardedBackend{db} }

type shardedBackend struct{ db *road.ShardedDB }

func (b shardedBackend) Epoch() uint64         { return b.db.Epoch() }
func (b shardedBackend) JournalSeq() uint64    { return b.db.JournalSeq() }
func (b shardedBackend) NumNodes() int         { return b.db.NumNodes() }
func (b shardedBackend) NumEdges() int         { return b.db.NumRoads() }
func (b shardedBackend) NumObjects() int       { return b.db.NumObjects() }
func (b shardedBackend) IndexSizeBytes() int64 { return b.db.IndexSizeBytes() }
func (b shardedBackend) NewQuerier() Querier   { return b.db.NewSession() }
func (b shardedBackend) WarmAfterMutation()    { b.db.Router().WarmTrees() }

func (b shardedBackend) SetRoadDistance(e road.EdgeID, dist float64) error {
	return b.db.SetRoadDistance(e, dist)
}
func (b shardedBackend) AddRoad(u, v road.NodeID, dist float64) (road.EdgeID, error) {
	return b.db.AddRoad(u, v, dist)
}
func (b shardedBackend) CloseRoad(e road.EdgeID) error  { return b.db.CloseRoad(e) }
func (b shardedBackend) ReopenRoad(e road.EdgeID) error { return b.db.ReopenRoad(e) }
func (b shardedBackend) AddObject(e road.EdgeID, offset float64, attr int32) (road.Object, error) {
	return b.db.AddObject(e, offset, attr)
}
func (b shardedBackend) RemoveObject(id road.ObjectID) error { return b.db.RemoveObject(id) }
func (b shardedBackend) SetObjectAttr(id road.ObjectID, attr int32) error {
	return b.db.SetObjectAttr(id, attr)
}
func (b shardedBackend) ShardInfos() []shard.Info { return b.db.ShardInfos() }
