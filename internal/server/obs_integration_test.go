package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"road"
	"road/internal/obs"
)

// scrapeText fetches /metrics and returns the body after asserting the
// exposition Content-Type.
func scrapeText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	return string(body)
}

// parseExposition asserts every line of a /metrics body is a well-formed
// comment or sample and returns the samples keyed by `name` or
// `name{labels}`.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		key := line[:sp]
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		out[key] = v
	}
	return out
}

// TestMetricsEndpoint drives a little of every endpoint at a served DB
// and checks the /metrics exposition carries the counters that work
// should have produced.
func TestMetricsEndpoint(t *testing.T) {
	db, _, bID, e01 := buildSquare(t, road.Options{StorePaths: true})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK) // cache hit
	getJSON[QueryResponse](t, ts, "/within?node=0&radius=1.0", http.StatusOK)
	getJSON[PathResponse](t, ts, fmt.Sprintf("/path?node=0&object=%d", bID), http.StatusOK)
	postJSON[MaintenanceResponse](t, ts, "/maintenance/set-distance",
		MaintenanceRequest{Edge: e01, Dist: 2}, http.StatusOK)

	m := parseExposition(t, scrapeText(t, ts))

	want := map[string]float64{
		`road_requests_total{endpoint="knn"}`:                 2,
		`road_requests_total{endpoint="within"}`:              1,
		`road_requests_total{endpoint="path"}`:                1,
		`road_requests_total{endpoint="maintenance"}`:         1,
		`road_request_duration_seconds_count{endpoint="knn"}`: 2,
		`road_cache_hits_total`:                               1,
		`road_cache_misses_total`:                             2, // first kNN + the within probe
		`road_epoch`:                                          3, // two AddObject setups + set-distance
		`road_network_nodes`:                                  4,
		`road_network_objects`:                                2,
		// 3 uncached queries fed the cost histograms.
		`road_query_node_pops_count`: 3,
	}
	for series, v := range want {
		if got, ok := m[series]; !ok {
			t.Errorf("series %s missing from /metrics", series)
		} else if got != v {
			t.Errorf("%s = %g, want %g", series, got, v)
		}
	}
	if m[`road_traversal_nodes_popped_total`] <= 0 {
		t.Errorf("road_traversal_nodes_popped_total = %g, want > 0",
			m[`road_traversal_nodes_popped_total`])
	}

	// Histogram integrity: buckets cumulative, +Inf equals _count.
	var prev float64
	for _, le := range []string{"0.0001", "0.00025", "0.0005"} {
		key := fmt.Sprintf(`road_request_duration_seconds_bucket{endpoint="knn",le="%s"}`, le)
		v, ok := m[key]
		if !ok {
			t.Fatalf("bucket %s missing", key)
		}
		if v < prev {
			t.Fatalf("bucket %s = %g not cumulative (prev %g)", key, v, prev)
		}
		prev = v
	}
	inf := m[`road_request_duration_seconds_bucket{endpoint="knn",le="+Inf"}`]
	if cnt := m[`road_request_duration_seconds_count{endpoint="knn"}`]; inf != cnt {
		t.Fatalf("+Inf bucket %g != _count %g", inf, cnt)
	}
}

// TestMetricsShardSeries checks a sharded deployment exposes per-shard
// labelled series and that home-query counters move under load.
func TestMetricsShardSeries(t *testing.T) {
	sdb, objs := buildShardedGrid(t, 8, 4)
	ts := httptest.NewServer(New(sdb, Options{}).Handler())
	defer ts.Close()

	for n := 0; n < 16; n++ {
		getJSON[QueryResponse](t, ts, fmt.Sprintf("/knn?node=%d&k=%d", n*3, len(objs)), http.StatusOK)
	}
	m := parseExposition(t, scrapeText(t, ts))

	var homeTotal float64
	for shard := 0; shard < 4; shard++ {
		key := fmt.Sprintf(`road_shard_home_queries_total{shard="%d"}`, shard)
		v, ok := m[key]
		if !ok {
			t.Fatalf("series %s missing from /metrics", key)
		}
		homeTotal += v
		if _, ok := m[fmt.Sprintf(`road_shard_epoch{shard="%d"}`, shard)]; !ok {
			t.Fatalf("road_shard_epoch{shard=\"%d\"} missing", shard)
		}
	}
	if homeTotal <= 0 {
		t.Fatalf("no home queries recorded across shards")
	}
}

// TestMetricsScrapeDuringLoad races /metrics scrapes against queries and
// mutations; under -race this verifies every collector callback and
// hot-path counter is safe to read mid-flight.
func TestMetricsScrapeDuringLoad(t *testing.T) {
	sdb, objs := buildShardedGrid(t, 8, 4)
	ts := httptest.NewServer(New(sdb, Options{CacheSize: 64}).Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for i := 0; i < 30; i++ {
				node := rng.Intn(64)
				switch rng.Intn(3) {
				case 0:
					getJSON[QueryResponse](t, ts, fmt.Sprintf("/knn?node=%d&k=3", node), http.StatusOK)
				case 1:
					getJSON[QueryResponse](t, ts, fmt.Sprintf("/within?node=%d&radius=2.5", node), http.StatusOK)
				case 2:
					resp, err := ts.Client().Get(ts.URL + fmt.Sprintf("/path?node=%d&object=%d&trace=1", node, objs[rng.Intn(len(objs))]))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			postJSON[MaintenanceResponse](t, ts, "/maintenance/set-distance",
				MaintenanceRequest{Edge: road.EdgeID(i), Dist: 1.5}, http.StatusOK)
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				parseExposition(t, scrapeText(t, ts))
			}
		}()
	}
	wg.Wait()

	m := parseExposition(t, scrapeText(t, ts))
	if m[`road_requests_total{endpoint="knn"}`] <= 0 {
		t.Fatal("no kNN requests recorded after load")
	}
}

// TestTraceSingleIndex checks &trace=1 on a single-index deployment: the
// response carries the search leg, its pops match the reported stats,
// leg durations fit inside the request wall time, and the cache is
// bypassed both ways.
func TestTraceSingleIndex(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		got := getJSON[QueryResponse](t, ts, "/knn?node=0&k=2&trace=1", http.StatusOK)
		if got.Cached {
			t.Fatalf("trace request %d served from cache", i)
		}
		if len(got.Trace) == 0 {
			t.Fatalf("trace request %d returned no legs", i)
		}
		var sumUS int64
		var pops int
		for _, leg := range got.Trace {
			sumUS += leg.DurationUS
			pops += leg.Pops
		}
		if got.Trace[0].Name != "search" || got.Trace[0].Shard != -1 {
			t.Fatalf("single-index trace = %+v, want one \"search\" leg with shard -1", got.Trace)
		}
		if pops != got.Stats.NodesPopped {
			t.Fatalf("trace pops = %d, stats report %d", pops, got.Stats.NodesPopped)
		}
		if sumUS > got.ElapsedUS+1 {
			t.Fatalf("trace legs sum to %dµs, exceeding request elapsed %dµs", sumUS, got.ElapsedUS)
		}
	}

	// Plain requests are unaffected: no trace, and caching still works.
	first := getJSON[QueryResponse](t, ts, "/knn?node=0&k=2", http.StatusOK)
	if len(first.Trace) != 0 {
		t.Fatalf("untraced request returned trace %+v", first.Trace)
	}
	if first.Cached {
		t.Fatal("trace requests must not fill the cache")
	}
	if again := getJSON[QueryResponse](t, ts, "/knn?node=0&k=2", http.StatusOK); !again.Cached {
		t.Fatal("second untraced request not served from cache")
	}
}

// TestTraceSharded checks &trace=1 on a sharded deployment: the legs
// name the router's phases, and the distinct shards they touch agree
// with Stats.ShardsSearched.
func TestTraceSharded(t *testing.T) {
	sdb, objs := buildShardedGrid(t, 8, 4)
	ts := httptest.NewServer(New(sdb, Options{}).Handler())
	defer ts.Close()

	// Asking for every object forces the search across shard borders.
	got := getJSON[QueryResponse](t, ts, fmt.Sprintf("/knn?node=0&k=%d&trace=1", len(objs)), http.StatusOK)
	if len(got.Results) != len(objs) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(objs))
	}
	if got.Stats.ShardsSearched < 2 {
		t.Fatalf("expected a cross-shard query, stats = %+v", got.Stats)
	}
	if len(got.Trace) == 0 {
		t.Fatal("sharded trace empty")
	}
	// ShardsSearched counts each home shard once (the locked and watched
	// re-runs of a home are one search) plus one per border re-entry —
	// which can revisit the home shard. The trace must account for
	// exactly that: distinct home-leg shards + enter legs.
	homes := make(map[int]bool)
	enters := 0
	for _, leg := range got.Trace {
		switch leg.Name {
		case "home_fast", "home_locked", "home_watched":
			homes[leg.Shard] = true
		case "enter":
			enters++
		case "gateway":
		default:
			t.Fatalf("unexpected leg name %q in %+v", leg.Name, got.Trace)
		}
	}
	if wantShards := len(homes) + enters; wantShards != got.Stats.ShardsSearched {
		t.Fatalf("trace shows %d home shard(s) + %d entries = %d searches, stats report %d\nlegs: %+v",
			len(homes), enters, wantShards, got.Stats.ShardsSearched, got.Trace)
	}

	// Path queries trace their per-shard Dijkstra legs (plus the border
	// gateway search when the route crosses shards).
	pr := getJSON[PathResponse](t, ts, fmt.Sprintf("/path?node=0&object=%d&trace=1", objs[len(objs)-1]), http.StatusOK)
	pathLegs := 0
	for _, leg := range pr.Trace {
		switch leg.Name {
		case "path_leg":
			if leg.Shard < 0 {
				t.Fatalf("path_leg without a shard: %+v", leg)
			}
			pathLegs++
		case "gateway":
		default:
			t.Fatalf("unexpected path trace leg %+v", leg)
		}
	}
	if pathLegs == 0 {
		t.Fatalf("sharded path trace has no path_leg entries: %+v", pr.Trace)
	}
}

// TestServerQueryLog routes queries through a server with a query log
// attached and checks the sampled JSONL records describe them.
func TestServerQueryLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.log")
	qlog, err := obs.OpenQueryLog(path, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	db, _, bID, _ := buildSquare(t, road.Options{StorePaths: true})
	ts := httptest.NewServer(New(db, Options{QueryLog: qlog}).Handler())

	getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK) // hit
	getJSON[QueryResponse](t, ts, "/within?node=2&radius=1.0&attr=1", http.StatusOK)
	getJSON[PathResponse](t, ts, fmt.Sprintf("/path?node=0&object=%d", bID), http.StatusOK)
	getJSON[ErrorResponse](t, ts, "/knn?node=999&k=1", http.StatusNotFound)
	ts.Close()
	if err := qlog.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []obs.QueryRecord
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec obs.QueryRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad query log line %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 5 {
		t.Fatalf("query log has %d records, want 5:\n%s", len(recs), data)
	}
	assertRec := func(i int, op, cache, code string, node int64) {
		t.Helper()
		r := recs[i]
		if r.Op != op || r.Cache != cache || r.Code != code || r.Node != node {
			t.Fatalf("record %d = %+v, want op=%s cache=%s code=%q node=%d", i, r, op, cache, code, node)
		}
		if r.TS == "" {
			t.Fatalf("record %d missing timestamp", i)
		}
		if _, err := time.Parse(time.RFC3339Nano, r.TS); err != nil {
			t.Fatalf("record %d timestamp %q: %v", i, r.TS, err)
		}
	}
	assertRec(0, "knn", "miss", "", 0)
	assertRec(1, "knn", "hit", "", 0)
	assertRec(2, "within", "miss", "", 2)
	assertRec(3, "path", "", "", 0)
	assertRec(4, "knn", "miss", "no_such_node", 999)
	if recs[0].K != 1 || recs[0].Pops == 0 || recs[0].Results != 1 {
		t.Fatalf("kNN miss record lacks detail: %+v", recs[0])
	}
	if recs[1].Pops != 0 {
		t.Fatalf("cache-hit record reports pops %d, want 0", recs[1].Pops)
	}
	if recs[2].Radius != 1.0 || recs[2].Attr != 1 {
		t.Fatalf("within record lacks radius/attr: %+v", recs[2])
	}
}

// TestSlowQueryLog checks the -slow-query path: with a threshold every
// query exceeds, each one is logged as a JSON line carrying its trace.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryWriter:    &buf,
	}).Handler())
	defer ts.Close()

	getJSON[QueryResponse](t, ts, "/knn?node=0&k=2", http.StatusOK)

	line := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(line, "slow query: ") {
		t.Fatalf("slow-query output = %q", line)
	}
	var entry struct {
		Op   string    `json:"op"`
		Legs []obs.Leg `json:"legs"`
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "slow query: ")), &entry); err != nil {
		t.Fatalf("slow-query line not JSON: %v (%q)", err, line)
	}
	if entry.Op != "knn" || len(entry.Legs) == 0 {
		t.Fatalf("slow-query entry = %+v, want op knn with legs", entry)
	}
}

// buildShardedGrid returns a side×side grid network split into the given
// number of region shards, with objects scattered across it.
func buildShardedGrid(t *testing.T, side, shards int) (*road.ShardedDB, []road.ObjectID) {
	t.Helper()
	b := road.NewNetworkBuilder()
	ids := make([][]road.NodeID, side)
	for i := 0; i < side; i++ {
		ids[i] = make([]road.NodeID, side)
		for j := 0; j < side; j++ {
			ids[i][j] = b.AddNode(float64(i), float64(j))
		}
	}
	var edges []road.EdgeID
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if i+1 < side {
				e, err := b.AddRoad(ids[i][j], ids[i+1][j], 1+0.1*float64((i+j)%3))
				if err != nil {
					t.Fatal(err)
				}
				edges = append(edges, e)
			}
			if j+1 < side {
				e, err := b.AddRoad(ids[i][j], ids[i][j+1], 1+0.1*float64((i*j)%3))
				if err != nil {
					t.Fatal(err)
				}
				edges = append(edges, e)
			}
		}
	}
	sdb, err := road.OpenSharded(b, road.Options{Seed: 42}, shards)
	if err != nil {
		t.Fatal(err)
	}
	var objs []road.ObjectID
	for i := 0; i < side; i++ {
		o, err := sdb.AddObject(edges[(i*13)%len(edges)], 0.3, 0)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o.ID)
	}
	return sdb, objs
}
