package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"road"
	"road/internal/obs"
	"road/internal/obs/analytics"
)

// TestWorkloadEndpoint drives a sharded server and checks /admin/workload
// reports the live model: query counts, mix, per-shard attribution and
// hot nodes — all without any query log configured (the window is
// independent of log sampling).
func TestWorkloadEndpoint(t *testing.T) {
	sdb, objs := buildShardedGrid(t, 8, 4)
	ts := httptest.NewServer(New(sdb, Options{}).Handler())
	defer ts.Close()

	// A hot node queried repeatedly plus scattered traffic.
	for i := 0; i < 12; i++ {
		getJSON[QueryResponse](t, ts, "/knn?node=0&k=2", http.StatusOK)
	}
	for n := 1; n < 8; n++ {
		getJSON[QueryResponse](t, ts, fmt.Sprintf("/within?node=%d&radius=2.0", n*8), http.StatusOK)
	}
	getJSON[PathResponse](t, ts, fmt.Sprintf("/path?node=0&object=%d", objs[0]), http.StatusOK)

	m := getJSON[analytics.Model](t, ts, "/admin/workload", http.StatusOK)
	if m.Queries != 20 {
		t.Fatalf("workload queries = %d, want 20", m.Queries)
	}
	if m.Mix["knn"] != 12 || m.Mix["within"] != 7 || m.Mix["path"] != 1 {
		t.Errorf("mix = %v, want knn:12 within:7 path:1", m.Mix)
	}
	// 11 of the 12 identical kNNs hit the result cache.
	if m.Cache.Hits != 11 {
		t.Errorf("cache hits = %d, want 11", m.Cache.Hits)
	}
	// Every query node belongs to some shard on a sharded store.
	if len(m.Shards) == 0 {
		t.Fatal("workload model has no per-shard attribution")
	}
	var shardTotal int64
	for _, sh := range m.Shards {
		shardTotal += sh.Queries
	}
	if shardTotal != m.Queries {
		t.Errorf("per-shard queries sum to %d, want %d (every node has a home shard)", shardTotal, m.Queries)
	}
	if len(m.HotNodes) == 0 || m.HotNodes[0].Key != 0 || m.HotNodes[0].Count != 13 {
		t.Errorf("hot nodes = %+v, want node 0 first with 13 queries (12 knn + 1 path)", m.HotNodes)
	}
	// The repeated kNN is a semantic-cache candidate.
	var cacheAction bool
	for _, a := range m.Actions {
		if a.Kind == "semantic-cache" && strings.Contains(a.Target, "n=0") {
			cacheAction = true
		}
	}
	if !cacheAction {
		t.Errorf("no semantic-cache action for the repeated query: %+v", m.Actions)
	}

	// ?top bounds the lists; bad values are rejected.
	if m := getJSON[analytics.Model](t, ts, "/admin/workload?top=1", http.StatusOK); len(m.HotNodes) > 1 {
		t.Errorf("top=1 returned %d hot nodes", len(m.HotNodes))
	}
	getJSON[ErrorResponse](t, ts, "/admin/workload?top=zero", http.StatusBadRequest)
	getJSON[ErrorResponse](t, ts, "/admin/workload?top=-3", http.StatusBadRequest)
}

// TestWorkloadWindowDisabled checks WorkloadWindow < 0 turns the
// endpoint off (501) without touching anything else.
func TestWorkloadWindowDisabled(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{WorkloadWindow: -1}).Handler())
	defer ts.Close()
	getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	getJSON[ErrorResponse](t, ts, "/admin/workload", http.StatusNotImplemented)
}

// TestWorkloadWindowBound checks the rolling window evicts the oldest
// queries once it is full.
func TestWorkloadWindowBound(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{WorkloadWindow: 5, CacheSize: -1}).Handler())
	defer ts.Close()
	for i := 0; i < 9; i++ {
		getJSON[QueryResponse](t, ts, fmt.Sprintf("/knn?node=%d&k=1", i%4), http.StatusOK)
	}
	m := getJSON[analytics.Model](t, ts, "/admin/workload", http.StatusOK)
	if m.Queries != 5 {
		t.Fatalf("window of 5 reports %d queries after 9", m.Queries)
	}
}

// TestRequestIDJoin checks the request ID is one join key across all
// three views of a query: the client response, the query-log record and
// the slow-query line.
func TestRequestIDJoin(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "q.jsonl")
	qlog, err := obs.OpenQueryLog(logPath, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var slow bytes.Buffer
	db, _, bID, _ := buildSquare(t, road.Options{StorePaths: true})
	ts := httptest.NewServer(New(db, Options{
		QueryLog:           qlog,
		SlowQueryThreshold: time.Nanosecond, // every query is "slow"
		SlowQueryWriter:    &slow,
	}).Handler())

	qr := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	pr := getJSON[PathResponse](t, ts, fmt.Sprintf("/path?node=0&object=%d", bID), http.StatusOK)
	ts.Close()
	if err := qlog.Close(); err != nil {
		t.Fatal(err)
	}
	if qr.ID == "" || pr.ID == "" {
		t.Fatalf("responses missing request IDs: knn=%q path=%q", qr.ID, pr.ID)
	}
	if qr.ID == pr.ID {
		t.Fatalf("two queries share request ID %q", qr.ID)
	}

	// Query log: one record per query, carrying the same IDs.
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	logIDs := make(map[string]string) // id -> op
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec obs.QueryRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad query log line %q: %v", line, err)
		}
		logIDs[rec.ID] = rec.Op
	}
	if logIDs[qr.ID] != "knn" || logIDs[pr.ID] != "path" {
		t.Fatalf("query log IDs %v don't join to responses (knn=%s path=%s)", logIDs, qr.ID, pr.ID)
	}

	// Slow log: same IDs again.
	slowIDs := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(slow.String()), "\n") {
		var entry slowQueryEntry
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "slow query: ")), &entry); err != nil {
			t.Fatalf("bad slow-query line %q: %v", line, err)
		}
		slowIDs[entry.ID] = true
	}
	if !slowIDs[qr.ID] || !slowIDs[pr.ID] {
		t.Fatalf("slow-query IDs %v don't join to responses (%s, %s)", slowIDs, qr.ID, pr.ID)
	}
}
