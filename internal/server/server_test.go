package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"road"
)

// buildSquare returns a 4-node cycle DB with two attr-1 objects:
//
//	n0 --e01(1)-- n1
//	 |             |
//	e30(1)       e12(1)
//	 |             |
//	n3 --e23(1)-- n2
//
// Object A sits mid-e01 (0.5 from n0), object B mid-e23 (1.5 from n0 via
// n3). Returned alongside are A's and B's IDs and e01.
func buildSquare(t *testing.T, opts road.Options) (*road.DB, road.ObjectID, road.ObjectID, road.EdgeID) {
	t.Helper()
	b := road.NewNetworkBuilder()
	n0 := b.AddNode(0, 0)
	n1 := b.AddNode(1, 0)
	n2 := b.AddNode(1, 1)
	n3 := b.AddNode(0, 1)
	e01, _ := b.AddRoad(n0, n1, 1)
	b.AddRoad(n1, n2, 1)
	e23, _ := b.AddRoad(n2, n3, 1)
	b.AddRoad(n3, n0, 1)
	db, err := road.Open(b, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	a, err := db.AddObject(e01, 0.5, 1)
	if err != nil {
		t.Fatalf("AddObject A: %v", err)
	}
	bb, err := db.AddObject(e23, 0.5, 1)
	if err != nil {
		t.Fatalf("AddObject B: %v", err)
	}
	return db, a.ID, bb.ID, e01
}

func getJSON[T any](t *testing.T, ts *httptest.Server, path string, wantStatus int) T {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decoding: %v", path, err)
	}
	return out
}

func postJSON[T any](t *testing.T, ts *httptest.Server, path string, body any, wantStatus int) T {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding: %v", path, err)
	}
	return out
}

func TestKNNEndpoint(t *testing.T) {
	db, aID, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	got := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	if len(got.Results) != 1 || got.Results[0].Object != aID {
		t.Fatalf("KNN(0,1) = %+v, want object %d", got.Results, aID)
	}
	if math.Abs(got.Results[0].Dist-0.5) > 1e-9 {
		t.Fatalf("KNN(0,1) dist = %g, want 0.5", got.Results[0].Dist)
	}
	if got.Cached {
		t.Fatal("first query reported cached")
	}
	if got.Stats.NodesPopped == 0 {
		t.Fatal("stats not reported")
	}

	again := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	if !again.Cached {
		t.Fatal("identical second query not served from cache")
	}
	if len(again.Results) != 1 || again.Results[0].Object != aID {
		t.Fatalf("cached KNN(0,1) = %+v, want object %d", again.Results, aID)
	}
}

func TestWithinEndpoint(t *testing.T) {
	db, aID, bID, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	got := getJSON[QueryResponse](t, ts, "/within?node=0&radius=1.0", http.StatusOK)
	if len(got.Results) != 1 || got.Results[0].Object != aID {
		t.Fatalf("Within(0,1.0) = %+v, want only object %d", got.Results, aID)
	}
	wide := getJSON[QueryResponse](t, ts, "/within?node=0&radius=2.0", http.StatusOK)
	if len(wide.Results) != 2 {
		t.Fatalf("Within(0,2.0) = %+v, want objects %d and %d", wide.Results, aID, bID)
	}
}

// TestCacheInvalidationOnEdgeWeight is the acceptance test: a cached kNN
// answer must change after a maintenance call re-weights the edge that
// made it nearest.
func TestCacheInvalidationOnEdgeWeight(t *testing.T) {
	db, aID, bID, e01 := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	first := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	if first.Results[0].Object != aID {
		t.Fatalf("before update: nearest = %d, want %d", first.Results[0].Object, aID)
	}
	cached := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	if !cached.Cached || cached.Results[0].Object != aID {
		t.Fatalf("warm query: cached=%v object=%d, want cached A", cached.Cached, cached.Results[0].Object)
	}

	// Stretch e01 to 10: A rescales to 5.0 from n0, B (1.5) becomes nearest.
	ack := postJSON[MaintenanceResponse](t, ts, "/maintenance/set-distance",
		MaintenanceRequest{Edge: e01, Dist: 10}, http.StatusOK)
	if !ack.OK || ack.Epoch <= first.Epoch {
		t.Fatalf("maintenance ack = %+v, want ok with epoch > %d", ack, first.Epoch)
	}

	after := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	if after.Cached {
		t.Fatal("query after maintenance served from a stale cache")
	}
	if after.Results[0].Object != bID {
		t.Fatalf("after update: nearest = %d, want %d", after.Results[0].Object, bID)
	}
	if math.Abs(after.Results[0].Dist-1.5) > 1e-9 {
		t.Fatalf("after update: dist = %g, want 1.5", after.Results[0].Dist)
	}
	if after.Epoch != ack.Epoch {
		t.Fatalf("query epoch %d, want maintenance epoch %d", after.Epoch, ack.Epoch)
	}
}

func TestCloseAndReopenRoad(t *testing.T) {
	db, _, bID, e01 := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	postJSON[MaintenanceResponse](t, ts, "/maintenance/close",
		MaintenanceRequest{Edge: e01}, http.StatusOK)
	got := getJSON[QueryResponse](t, ts, "/knn?node=0&k=2", http.StatusOK)
	// A lived on the closed road and is dropped with it; only B remains.
	if len(got.Results) != 1 || got.Results[0].Object != bID {
		t.Fatalf("after close: %+v, want only object %d", got.Results, bID)
	}

	postJSON[MaintenanceResponse](t, ts, "/maintenance/reopen",
		MaintenanceRequest{Edge: e01}, http.StatusOK)
	reopened := getJSON[QueryResponse](t, ts, "/knn?node=0&k=2", http.StatusOK)
	// n0—n1 is traversable again (1.5 to B via n3 unchanged, but B now
	// also reachable the other way); A stays dropped.
	if len(reopened.Results) != 1 || reopened.Results[0].Object != bID {
		t.Fatalf("after reopen: %+v, want only object %d", reopened.Results, bID)
	}
}

func TestObjectChurn(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	ack := postJSON[MaintenanceResponse](t, ts, "/maintenance/insert-object",
		MaintenanceRequest{Edge: 1, Offset: 0.25, Attr: 7}, http.StatusOK)
	got := getJSON[QueryResponse](t, ts, "/knn?node=1&k=1&attr=7", http.StatusOK)
	if len(got.Results) != 1 || got.Results[0].Object != ack.Object {
		t.Fatalf("attr-7 nearest = %+v, want inserted object %d", got.Results, ack.Object)
	}
	if math.Abs(got.Results[0].Dist-0.25) > 1e-9 {
		t.Fatalf("inserted object dist = %g, want 0.25", got.Results[0].Dist)
	}

	postJSON[MaintenanceResponse](t, ts, "/maintenance/delete-object",
		MaintenanceRequest{Object: ack.Object}, http.StatusOK)
	gone := getJSON[QueryResponse](t, ts, "/knn?node=1&k=1&attr=7", http.StatusOK)
	if len(gone.Results) != 0 {
		t.Fatalf("deleted object still returned: %+v", gone.Results)
	}
}

func TestPathEndpoint(t *testing.T) {
	db, _, bID, _ := buildSquare(t, road.Options{StorePaths: true})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	got := getJSON[PathResponse](t, ts, fmt.Sprintf("/path?node=0&object=%d", bID), http.StatusOK)
	if math.Abs(got.Dist-1.5) > 1e-9 {
		t.Fatalf("path dist = %g, want 1.5", got.Dist)
	}
	if len(got.Path) < 2 || got.Path[0] != 0 {
		t.Fatalf("path = %v, want to start at node 0", got.Path)
	}
}

func TestPathWithoutStorePaths(t *testing.T) {
	db, _, bID, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()
	getJSON[ErrorResponse](t, ts, fmt.Sprintf("/path?node=0&object=%d", bID), http.StatusUnprocessableEntity)
}

func TestBadRequests(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	getJSON[ErrorResponse](t, ts, "/knn?node=99&k=1", http.StatusNotFound)
	getJSON[ErrorResponse](t, ts, "/knn?node=0", http.StatusBadRequest)
	getJSON[ErrorResponse](t, ts, "/knn?node=0&k=0", http.StatusBadRequest)
	getJSON[ErrorResponse](t, ts, "/within?node=0", http.StatusBadRequest)
	getJSON[ErrorResponse](t, ts, "/within?node=0&radius=-1", http.StatusBadRequest)
	getJSON[ErrorResponse](t, ts, "/within?node=0&radius=Inf", http.StatusBadRequest)
	getJSON[ErrorResponse](t, ts, "/within?node=0&radius=NaN", http.StatusBadRequest)

	resp, err := ts.Client().Get(ts.URL + "/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nosuch: status %d, want 404", resp.StatusCode)
	}
}

// TestMaintenanceBogusIDs: IDs from untrusted clients must produce 422s,
// never reach the graph layer's panicking array indexing.
func TestMaintenanceBogusIDs(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	for _, path := range []string{
		"/maintenance/set-distance", "/maintenance/close", "/maintenance/reopen",
	} {
		postJSON[ErrorResponse](t, ts, path,
			MaintenanceRequest{Edge: 99999, Dist: 2}, http.StatusUnprocessableEntity)
		postJSON[ErrorResponse](t, ts, path,
			MaintenanceRequest{Edge: -1, Dist: 2}, http.StatusUnprocessableEntity)
	}
	postJSON[ErrorResponse](t, ts, "/maintenance/insert-object",
		MaintenanceRequest{Edge: 99999, Offset: 0.5}, http.StatusUnprocessableEntity)
	postJSON[ErrorResponse](t, ts, "/maintenance/insert-object",
		MaintenanceRequest{Edge: 0, Offset: 50}, http.StatusUnprocessableEntity) // offset beyond edge
	postJSON[ErrorResponse](t, ts, "/maintenance/delete-object",
		MaintenanceRequest{Object: 4040}, http.StatusUnprocessableEntity)

	// The server must still answer afterwards.
	getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
}

// TestAddRoadBetweenIsolatedNodes: a failed add-road must not leave a
// live orphan edge behind (the graph mutation is rolled back).
func TestAddRoadBetweenIsolatedNodes(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	// Close every road: all four nodes become isolated.
	for e := road.EdgeID(0); e < 4; e++ {
		postJSON[MaintenanceResponse](t, ts, "/maintenance/close",
			MaintenanceRequest{Edge: e}, http.StatusOK)
	}
	postJSON[ErrorResponse](t, ts, "/maintenance/add-road",
		MaintenanceRequest{U: 0, V: 2, Dist: 1}, http.StatusUnprocessableEntity)

	// The rolled-back edge must not be usable: any stub left behind
	// behaves like a closed road, and the server keeps answering.
	postJSON[ErrorResponse](t, ts, "/maintenance/set-distance",
		MaintenanceRequest{Edge: 4, Dist: 2}, http.StatusUnprocessableEntity)
	got := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	if len(got.Results) != 0 {
		t.Fatalf("results on a fully closed network: %+v", got.Results)
	}
	// Even with every incident edge closed, a reopen finds its host via
	// the build-time origin leaf and succeeds; the reopened road is
	// immediately queryable again.
	postJSON[MaintenanceResponse](t, ts, "/maintenance/reopen",
		MaintenanceRequest{Edge: 0}, http.StatusOK)
	ins := postJSON[MaintenanceResponse](t, ts, "/maintenance/insert-object",
		MaintenanceRequest{Edge: 0, Offset: 0.25, Attr: 1}, http.StatusOK)
	got = getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	if len(got.Results) != 1 || got.Results[0].Object != ins.Object {
		t.Fatalf("KNN after isolated reopen = %+v, want object %d", got.Results, ins.Object)
	}
	if math.Abs(got.Results[0].Dist-0.25) > 1e-9 {
		t.Fatalf("KNN after isolated reopen dist = %g, want 0.25", got.Results[0].Dist)
	}
}

func TestStatsEndpoint(t *testing.T) {
	db, _, _, e01 := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()

	getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK) // cache hit
	getJSON[QueryResponse](t, ts, "/within?node=0&radius=1.0", http.StatusOK)
	postJSON[MaintenanceResponse](t, ts, "/maintenance/set-distance",
		MaintenanceRequest{Edge: e01, Dist: 2}, http.StatusOK)

	st := getJSON[StatsResponse](t, ts, "/stats", http.StatusOK)
	if st.Network.Nodes != 4 || st.Network.Edges != 4 || st.Network.Objects != 2 {
		t.Fatalf("network stats = %+v", st.Network)
	}
	if st.Requests.KNN != 2 || st.Requests.Within != 1 || st.Requests.Maintenance != 1 {
		t.Fatalf("request counters = %+v", st.Requests)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 2 {
		t.Fatalf("cache counters = %+v", st.Cache)
	}
	if st.Cache.Invalidations != 0 {
		// Invalidation is lazy: it shows up only after the next query.
		t.Fatalf("invalidations = %d before any post-maintenance query", st.Cache.Invalidations)
	}
	if st.Traversal.NodesPopped == 0 {
		t.Fatal("traversal aggregates empty")
	}
	if st.Pool.Created == 0 {
		t.Fatal("pool created no sessions")
	}
	if st.Epoch == 0 {
		t.Fatal("epoch not advanced by maintenance")
	}

	getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
	st2 := getJSON[StatsResponse](t, ts, "/stats", http.StatusOK)
	if st2.Cache.Invalidations != 1 {
		t.Fatalf("invalidations = %d after post-maintenance query, want 1", st2.Cache.Invalidations)
	}
}

func TestHealthz(t *testing.T) {
	db, _, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()
	got := getJSON[map[string]any](t, ts, "/healthz", http.StatusOK)
	if got["ok"] != true {
		t.Fatalf("healthz = %v", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	db, aID, _, _ := buildSquare(t, road.Options{})
	ts := httptest.NewServer(New(db, Options{CacheSize: -1}).Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		got := getJSON[QueryResponse](t, ts, "/knn?node=0&k=1", http.StatusOK)
		if got.Cached {
			t.Fatal("disabled cache served a hit")
		}
		if got.Results[0].Object != aID {
			t.Fatalf("nearest = %d, want %d", got.Results[0].Object, aID)
		}
	}
}
