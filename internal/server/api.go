// Package server is roadd's serving subsystem: an HTTP/JSON API over any
// road.Store — a single-index road.DB or a sharded road.ShardedDB. Read
// queries (kNN, range, path, batch) run concurrently with each other on
// pooled sessions; how maintenance operations (edge weight updates, road
// closures, object churn) exclude them depends on the store. A road.DB
// is guarded by the Coordinator's epoch-guarded store-wide reader/writer
// lock; a road.Synchronized store (road.ShardedDB) locks internally per
// shard, so a mutation stalls only readers of the shard it touches.
// Query answers are memoized in an LRU cache that the maintenance epoch
// invalidates wholesale, and /stats surfaces aggregate traversal
// statistics, cache and session-pool behaviour.
package server

import (
	"road"
	"road/internal/obs"
	"road/internal/shard"
)

// Wire types shared by the roadd handlers, the roadquery -json output and
// the load generator, so every tool in the repo speaks one encoding.

// ResultJSON is one query answer on the wire.
type ResultJSON struct {
	Object road.ObjectID `json:"object"`
	Edge   road.EdgeID   `json:"edge"`
	Attr   int32         `json:"attr"`
	Offset float64       `json:"offset"` // distance from the edge's U endpoint
	Dist   float64       `json:"dist"`   // network distance from the query node
}

// StatsJSON is the per-query cost report on the wire.
type StatsJSON struct {
	NodesPopped    int   `json:"nodes_popped"`
	RnetsBypassed  int   `json:"rnets_bypassed"`
	RnetsDescended int   `json:"rnets_descended"`
	ShardsSearched int   `json:"shards_searched,omitempty"`
	Truncated      bool  `json:"truncated,omitempty"`
	IOReads        int64 `json:"io_reads,omitempty"`
	IOFaults       int64 `json:"io_faults,omitempty"`
	IOWrites       int64 `json:"io_writes,omitempty"`
}

// QueryResponse answers /knn and /within. ID is the server-assigned
// request ID — the join key against the query log and any slow-query
// line. Trace is present only when the request asked for it (&trace=1):
// the query's per-leg breakdown — which phases and shards it visited,
// and what each cost; on remote deployments each rpc leg nests the
// host-side legs under sub.
type QueryResponse struct {
	Node      road.NodeID  `json:"node"`
	ID        string       `json:"id,omitempty"`
	Epoch     uint64       `json:"epoch"`
	Cached    bool         `json:"cached"`
	Results   []ResultJSON `json:"results"`
	Stats     StatsJSON    `json:"stats"`
	ElapsedUS int64        `json:"elapsed_us"`
	Trace     []obs.Leg    `json:"trace,omitempty"`
}

// PathResponse answers /path. Trace is present only when the request
// asked for it (&trace=1).
type PathResponse struct {
	Node      road.NodeID   `json:"node"`
	ID        string        `json:"id,omitempty"`
	Object    road.ObjectID `json:"object"`
	Epoch     uint64        `json:"epoch"`
	Dist      float64       `json:"dist"`
	Path      []road.NodeID `json:"path"`
	Stats     StatsJSON     `json:"stats"`
	ElapsedUS int64         `json:"elapsed_us"`
	Trace     []obs.Leg     `json:"trace,omitempty"`
}

// BatchResponse answers POST /batch: one entry per request, all computed
// on one session at one epoch.
type BatchResponse struct {
	Epoch     uint64          `json:"epoch"`
	Responses []BatchItemJSON `json:"responses"`
	ElapsedUS int64           `json:"elapsed_us"`
}

// BatchItemJSON is one batch answer. Exactly one of Results / Path /
// Error is meaningful; Code carries the typed error class (the same
// classification single-query endpoints report via HTTP status).
type BatchItemJSON struct {
	Results []ResultJSON  `json:"results,omitempty"`
	Path    []road.NodeID `json:"path,omitempty"`
	Dist    float64       `json:"dist,omitempty"`
	Stats   StatsJSON     `json:"stats"`
	Error   string        `json:"error,omitempty"`
	Code    string        `json:"code,omitempty"`
}

// MaintenanceRequest is the body of every POST /maintenance/* call; each
// route reads the fields it needs.
type MaintenanceRequest struct {
	Edge   road.EdgeID   `json:"edge,omitempty"`
	U      road.NodeID   `json:"u,omitempty"`
	V      road.NodeID   `json:"v,omitempty"`
	Dist   float64       `json:"dist,omitempty"`
	Offset float64       `json:"offset,omitempty"`
	Attr   int32         `json:"attr,omitempty"`
	Object road.ObjectID `json:"object,omitempty"`
}

// MaintenanceResponse acknowledges a mutation with the epoch it produced
// and the IDs the op concerned. Edge/Object echo the request's target —
// or carry the newly assigned ID for add-road and insert-object — and are
// always emitted: IDs start at 0, so omitempty would swallow the very
// first edge or object a client creates.
type MaintenanceResponse struct {
	OK     bool          `json:"ok"`
	Epoch  uint64        `json:"epoch"`
	Edge   road.EdgeID   `json:"edge"`
	Object road.ObjectID `json:"object"`
}

// ErrorResponse is the uniform error envelope. Code, when present,
// classifies typed query failures machine-readably: "deadline_exceeded",
// "canceled" (client went away mid-search), "budget_exhausted",
// "no_such_node", "no_such_object", "invalid_request",
// "shard_unavailable" (a remote shard host is down) or "query_failed".
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// SnapshotResponse acknowledges /admin/snapshot: the snapshot was written
// at exactly this epoch and journal sequence (readers were excluded while
// it was taken, so the image is epoch-consistent), and Bytes is the total
// size of the snapshot file(s) written — summed across shards on a
// sharded deployment.
type SnapshotResponse struct {
	OK         bool   `json:"ok"`
	Epoch      uint64 `json:"epoch"`
	JournalSeq uint64 `json:"journal_seq"`
	Bytes      int64  `json:"bytes"`
	ElapsedUS  int64  `json:"elapsed_us"`
}

// StatsResponse answers /stats: a snapshot of the serving subsystem.
type StatsResponse struct {
	Epoch         uint64  `json:"epoch"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Network struct {
		Nodes   int   `json:"nodes"`
		Edges   int   `json:"edges"`
		Objects int   `json:"objects"`
		IndexKB int64 `json:"index_kb"`
	} `json:"network"`

	Requests struct {
		KNN         uint64 `json:"knn"`
		Within      uint64 `json:"within"`
		Path        uint64 `json:"path"`
		Batch       uint64 `json:"batch"`
		Maintenance uint64 `json:"maintenance"`
		Errors      uint64 `json:"errors"`
		Timeouts    uint64 `json:"timeouts"`
	} `json:"requests"`

	// Traversal aggregates core.QueryStats over every uncached query served.
	Traversal struct {
		NodesPopped    int64 `json:"nodes_popped"`
		RnetsBypassed  int64 `json:"rnets_bypassed"` // shortcut hops taken
		RnetsDescended int64 `json:"rnets_descended"`
		ShardsSearched int64 `json:"shards_searched"`
		IOReads        int64 `json:"io_reads"`
		IOFaults       int64 `json:"io_faults"`
	} `json:"traversal"`

	Cache CacheStats `json:"cache"`
	Pool  PoolStats  `json:"pool"`

	// Shards reports per-shard size, epoch and load when serving a
	// sharded database (absent on a single-index deployment).
	Shards []shard.Info `json:"shards,omitempty"`
}

func resultsJSON(res []road.Result) []ResultJSON {
	out := make([]ResultJSON, len(res))
	for i, r := range res {
		out[i] = ResultJSON{
			Object: r.Object.ID,
			Edge:   r.Object.Edge,
			Attr:   r.Object.Attr,
			Offset: r.Object.DU,
			Dist:   r.Dist,
		}
	}
	return out
}

func statsJSON(st road.Stats) StatsJSON {
	return StatsJSON{
		NodesPopped:    st.NodesPopped,
		RnetsBypassed:  st.RnetsBypassed,
		RnetsDescended: st.RnetsDescended,
		ShardsSearched: st.ShardsSearched,
		Truncated:      st.Truncated,
		IOReads:        st.IO.Reads,
		IOFaults:       st.IO.Faults,
		IOWrites:       st.IO.Writes,
	}
}

// shardInfoProvider is the optional road.Store extension a sharded store
// implements; /stats surfaces its per-shard load section.
type shardInfoProvider interface {
	ShardInfos() []shard.Info
}

// EncodeResults converts query answers to their wire form (used by
// roadquery -json so CLI and server output stay byte-compatible).
func EncodeResults(res []road.Result) []ResultJSON { return resultsJSON(res) }

// EncodeStats converts per-query stats to their wire form.
func EncodeStats(st road.Stats) StatsJSON { return statsJSON(st) }
