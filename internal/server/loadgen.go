package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"road/internal/obs"
)

// LoadOptions configures a load-generation run against a roadd server.
type LoadOptions struct {
	// Target is the server's base URL, e.g. "http://localhost:7070".
	Target string
	// Concurrency is the number of parallel client workers (default 8).
	Concurrency int
	// Duration bounds the run (default 5s); Requests, when > 0, bounds
	// the total request count instead.
	Duration time.Duration
	Requests int
	// Mix selects the workload: "knn", "within" or "mixed" (default).
	Mix string
	// K is the kNN depth (default 5); Radius the range-query radius
	// (default 0.05 × an arbitrary scale — pass a radius meaningful for
	// the served network when using within/mixed).
	K      int
	Radius float64
	// Attr is the attribute predicate sent with every query.
	Attr int32
	// Seed makes the generated query stream deterministic.
	Seed int64
}

// LoadReport summarizes a load-generation run; it is the schema of
// roadbench's BENCH_serve.json.
type LoadReport struct {
	Target      string  `json:"target"`
	Mix         string  `json:"mix"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Seconds     float64 `json:"seconds"`
	QPS         float64 `json:"qps"`
	MeanUS      float64 `json:"mean_us"`
	P50US       int64   `json:"p50_us"`
	P90US       int64   `json:"p90_us"`
	P95US       int64   `json:"p95_us"`
	P99US       int64   `json:"p99_us"`
	P999US      int64   `json:"p999_us"`
	MaxUS       int64   `json:"max_us"`
	// CacheHitRate covers this run only: the delta of the server's
	// /stats cache counters between run start and run end.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// RunLoad fires queries at a roadd server and reports throughput and
// latency percentiles. It learns the served network's node count from
// /stats, then draws query nodes uniformly.
func RunLoad(opts LoadOptions) (LoadReport, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	switch opts.Mix {
	case "":
		opts.Mix = "mixed"
	case "knn", "within", "mixed":
	default:
		return LoadReport{}, fmt.Errorf("unknown mix %q (want knn, within or mixed)", opts.Mix)
	}
	if opts.K <= 0 {
		opts.K = 5
	}
	if opts.Radius <= 0 {
		opts.Radius = 0.05
	}

	before, err := fetchStats(opts.Target)
	if err != nil {
		return LoadReport{}, fmt.Errorf("probing %s/stats: %w", opts.Target, err)
	}
	numNodes := before.Network.Nodes
	if numNodes < 1 {
		return LoadReport{}, fmt.Errorf("server reports an empty network")
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		errors    int
	)
	deadline := time.Now().Add(opts.Duration)
	// budget caps total requests across workers when Requests is set.
	budget := make(chan struct{}, max(opts.Requests, 0))
	for i := 0; i < opts.Requests; i++ {
		budget <- struct{}{}
	}
	takeBudget := func() bool {
		if opts.Requests <= 0 {
			return true
		}
		select {
		case <-budget:
			return true
		default:
			return false
		}
	}

	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(worker)*7919))
			client := &http.Client{Timeout: 30 * time.Second}
			var local []time.Duration
			localErrs := 0
			for (opts.Requests > 0 || time.Now().Before(deadline)) && takeBudget() {
				q := url.Values{}
				q.Set("node", fmt.Sprint(rng.Intn(numNodes)))
				if opts.Attr != 0 {
					q.Set("attr", fmt.Sprint(opts.Attr))
				}
				endpoint := "/knn"
				useKNN := opts.Mix == "knn" || (opts.Mix != "within" && rng.Intn(2) == 0)
				if useKNN {
					q.Set("k", fmt.Sprint(opts.K))
				} else {
					endpoint = "/within"
					q.Set("radius", fmt.Sprint(opts.Radius))
				}
				reqStart := time.Now()
				resp, err := client.Get(opts.Target + endpoint + "?" + q.Encode())
				if err != nil {
					localErrs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					localErrs++
					continue
				}
				local = append(local, time.Since(reqStart))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			errors += localErrs
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := LoadReport{
		Target:      opts.Target,
		Mix:         opts.Mix,
		Concurrency: opts.Concurrency,
		Requests:    len(latencies),
		Errors:      errors,
		Seconds:     elapsed.Seconds(),
	}
	if elapsed > 0 {
		report.QPS = float64(len(latencies)) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		obs.SortDurations(latencies)
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		report.MeanUS = float64(sum.Microseconds()) / float64(len(latencies))
		report.P50US = obs.PercentileDuration(latencies, 0.50).Microseconds()
		report.P90US = obs.PercentileDuration(latencies, 0.90).Microseconds()
		report.P95US = obs.PercentileDuration(latencies, 0.95).Microseconds()
		report.P99US = obs.PercentileDuration(latencies, 0.99).Microseconds()
		report.P999US = obs.PercentileDuration(latencies, 0.999).Microseconds()
		report.MaxUS = latencies[len(latencies)-1].Microseconds()
	}
	if after, err := fetchStats(opts.Target); err == nil {
		hits := after.Cache.Hits - before.Cache.Hits
		if total := hits + after.Cache.Misses - before.Cache.Misses; total > 0 {
			report.CacheHitRate = float64(hits) / float64(total)
		}
	}
	return report, nil
}

// ScrapeMetrics fetches target's /metrics endpoint and returns the
// single-valued series as a flat map keyed by `name` or `name{labels}`.
// Histogram bucket series (`..._bucket`) are skipped — callers wanting
// distribution detail should read the `_sum`/`_count` pairs, which are
// returned. Used by roadbench to fold server-side counters into its
// reports.
func ScrapeMetrics(target string) (map[string]float64, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Series are `name value` or `name{labels} value`; the value is
		// always the last space-separated field.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		key := strings.TrimSpace(line[:sp])
		name := key
		if b := strings.IndexByte(name, '{'); b >= 0 {
			name = name[:b]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
		if err != nil {
			continue
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func fetchStats(target string) (StatsResponse, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(target + "/stats")
	if err != nil {
		return StatsResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return StatsResponse{}, fmt.Errorf("GET /stats: %s", resp.Status)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return StatsResponse{}, err
	}
	return st, nil
}
