package server

import (
	"sync"
	"sync/atomic"

	"road"
)

// SessionPool reuses query-context allocations across requests. A querier
// (road.Session, or one cross-shard session per shard for a sharded
// store) carries per-query scratch state (priority queue, visited-node
// epochs, verdict maps) sized to the network, so constructing one per
// request would dominate small-query latency; the pool keeps a bounded
// free list and hands queriers out LIFO so the hottest scratch memory is
// reused.
type SessionPool struct {
	store   road.Store
	maxIdle int

	mu   sync.Mutex
	free []road.Querier

	created atomic.Uint64
	reused  atomic.Uint64
}

// DefaultMaxIdleSessions bounds the free list when Options leave it zero.
const DefaultMaxIdleSessions = 64

// NewSessionPool returns a pool opening sessions on store. maxIdle bounds
// the number of idle queriers retained (DefaultMaxIdleSessions when 0).
func NewSessionPool(store road.Store, maxIdle int) *SessionPool {
	if maxIdle <= 0 {
		maxIdle = DefaultMaxIdleSessions
	}
	return &SessionPool{store: store, maxIdle: maxIdle}
}

// Get returns a querier, reusing an idle one when available.
func (p *SessionPool) Get() road.Querier {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.reused.Add(1)
		return s
	}
	p.mu.Unlock()
	p.created.Add(1)
	return p.store.OpenSession()
}

// Put returns a querier to the pool; beyond maxIdle it is dropped for the
// garbage collector.
func (p *SessionPool) Put(s road.Querier) {
	if s == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.maxIdle {
		p.free = append(p.free, s)
	}
	p.mu.Unlock()
}

// PoolStats reports session reuse behaviour.
type PoolStats struct {
	Created uint64 `json:"created"`
	Reused  uint64 `json:"reused"`
	Idle    int    `json:"idle"`
}

// Stats snapshots the pool counters.
func (p *SessionPool) Stats() PoolStats {
	p.mu.Lock()
	idle := len(p.free)
	p.mu.Unlock()
	return PoolStats{
		Created: p.created.Load(),
		Reused:  p.reused.Load(),
		Idle:    idle,
	}
}
