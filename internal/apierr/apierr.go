// Package apierr defines the typed sentinel errors of the road.Store v1
// API. They live in a leaf package (no dependencies beyond the standard
// library) so every layer — graph, core, shard, the public road package
// and the serving subsystem — can wrap and test for the same identities
// with errors.Is, instead of growing layer-private fmt.Errorf strings.
//
// The road package re-exports each sentinel under the same name; callers
// outside this module should test against road.Err*.
package apierr

import "errors"

var (
	// ErrCanceled marks a query aborted by its context (cancellation or
	// deadline). Search loops check cooperatively every few heap pops, so
	// the partial result returned alongside it is a valid prefix of the
	// full answer and Stats.Truncated is set. The context's own error is
	// wrapped too: errors.Is(err, context.Canceled) (or DeadlineExceeded)
	// also holds.
	ErrCanceled = errors.New("query canceled")

	// ErrBudgetExhausted marks a query stopped by its traversal budget
	// (Request.Budget settled nodes) before completing. As with
	// ErrCanceled, the partial result is a valid prefix and
	// Stats.Truncated is set.
	ErrBudgetExhausted = errors.New("traversal budget exhausted")

	// ErrInvalidRequest marks a structurally invalid request (k < 1, a
	// negative or non-finite radius, an empty batch entry).
	ErrInvalidRequest = errors.New("invalid request")

	// ErrNoSuchNode marks a query from an intersection the network does
	// not contain.
	ErrNoSuchNode = errors.New("no such node")

	// ErrNoSuchEdge marks an operation on a road segment the network does
	// not contain.
	ErrNoSuchEdge = errors.New("no such edge")

	// ErrNoSuchObject marks an operation on (or a path query to) an
	// object that does not exist — never created, or already removed.
	ErrNoSuchObject = errors.New("no such object")

	// ErrEdgeClosed marks an operation that needs a live road segment —
	// placing an object, re-weighting, closing again — applied to a
	// closed (removed) one.
	ErrEdgeClosed = errors.New("edge closed")

	// ErrEdgeNotClosed marks a reopen of a segment that is not closed.
	ErrEdgeNotClosed = errors.New("edge not closed")

	// ErrAttrMismatch marks a path query whose target object does not
	// match the request's attribute predicate.
	ErrAttrMismatch = errors.New("attribute mismatch")

	// ErrUnreachable marks a path query whose target cannot be reached
	// from the query node on the live network.
	ErrUnreachable = errors.New("object unreachable")

	// ErrPathsNotStored marks a detailed-route query against a DB opened
	// without Options.StorePaths (sharded stores reconstruct routes and
	// never return this).
	ErrPathsNotStored = errors.New("paths not stored (open with Options.StorePaths)")

	// ErrCrossShardRoad marks an AddRoad whose endpoints share no shard:
	// shard boundaries are fixed at build time, so such roads are
	// rejected by sharded stores.
	ErrCrossShardRoad = errors.New("endpoints share no shard")

	// ErrShardUnavailable marks a call that needed a shard host currently
	// marked down (or that failed talking to one). Queries that never
	// touch the dead shard are unaffected; the fleet health loop re-adopts
	// the host when it comes back.
	ErrShardUnavailable = errors.New("shard host unavailable")
)
