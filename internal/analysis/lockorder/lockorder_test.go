package lockorder_test

import (
	"testing"

	"road/internal/analysis/analysistest"
	"road/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", lockorder.Analyzer, "locks")
}
