// Package locks is the lockorder fixture: a miniature of the shard
// router's lock layout with both clean acquisitions (the documented
// writeMu → shardMu[i] → metaMu order) and seeded inversions.
package locks

import "sync"

type router struct {
	writeMu sync.Mutex
	shardMu []sync.RWMutex
	metaMu  sync.RWMutex
}

// cleanMutate follows the documented order exactly.
func (r *router) cleanMutate(sid int) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.shardMu[sid].Lock()
	defer r.shardMu[sid].Unlock()
	r.metaMu.Lock()
	r.metaMu.Unlock()
}

// cleanExclusive locks every shard after writeMu, ascending — the
// router's Exclusive pattern.
func (r *router) cleanExclusive() {
	r.writeMu.Lock()
	for i := range r.shardMu {
		r.shardMu[i].Lock()
	}
	for i := range r.shardMu {
		r.shardMu[i].Unlock()
	}
	r.writeMu.Unlock()
}

// cleanSequential releases metaMu before taking a shard lock, so no
// inversion exists even though metaMu is touched first.
func (r *router) cleanSequential(sid int) {
	r.metaMu.RLock()
	r.metaMu.RUnlock()
	r.shardMu[sid].RLock()
	r.shardMu[sid].RUnlock()
}

// invertedShardUnderMeta takes a shard lock while still holding metaMu —
// the seeded inversion the analyzer exists to catch.
func (r *router) invertedShardUnderMeta(sid int) {
	r.metaMu.RLock()
	defer r.metaMu.RUnlock()
	r.shardMu[sid].RLock() // want `acquires shardMu while holding metaMu`
	r.shardMu[sid].RUnlock()
}

// invertedWriteUnderShard acquires writeMu after a shard lock.
func (r *router) invertedWriteUnderShard(sid int) {
	r.shardMu[sid].Lock()
	r.writeMu.Lock() // want `acquires writeMu while holding shardMu`
	r.writeMu.Unlock()
	r.shardMu[sid].Unlock()
}

// selfDeadlock reacquires a non-shard lock it already holds.
func (r *router) selfDeadlock() {
	r.writeMu.Lock()
	r.writeMu.Lock() // want `reacquires writeMu already held`
	r.writeMu.Unlock()
}

// lockMeta is a helper whose acquisition must be visible to callers.
func (r *router) lockMeta() {
	r.metaMu.RLock()
	r.metaMu.RUnlock()
}

// lockShard acquires a shard lock; calling it under metaMu is an
// inversion even though the acquisition is one call away.
func (r *router) lockShard(sid int) {
	r.shardMu[sid].RLock()
	r.shardMu[sid].RUnlock()
}

// indirectClean: helper acquires a HIGHER rank than held — fine.
func (r *router) indirectClean(sid int) {
	r.shardMu[sid].RLock()
	r.lockMeta()
	r.shardMu[sid].RUnlock()
}

// indirectInversion: the shard lock hides behind a call.
func (r *router) indirectInversion(sid int) {
	r.metaMu.RLock()
	r.lockShard(sid) // want `calls lockShard .* while holding metaMu`
	r.metaMu.RUnlock()
}

// branchRelease unlocks on the error path before escalating — clean.
func (r *router) branchRelease(sid int, bad bool) {
	r.metaMu.RLock()
	if bad {
		r.metaMu.RUnlock()
		return
	}
	r.metaMu.RUnlock()
	r.shardMu[sid].RLock()
	r.shardMu[sid].RUnlock()
}
