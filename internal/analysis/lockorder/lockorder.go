// Package lockorder enforces the router's documented lock hierarchy
// (internal/shard/DESIGN.md):
//
//	writeMu → shardMu[i] (ascending when several) → metaMu
//
// A function may only acquire locks in increasing hierarchy rank: taking
// writeMu or a shard lock while holding metaMu, or writeMu while holding
// a shard lock, is an inversion that can deadlock against the documented
// path — exactly the class of bug the PR-3 hardening pass fixed by hand.
// The check is a forward walk over each function body tracking the held
// set (defer-released locks stay held to function end), plus a
// transitive call summary so an inversion hidden behind a same-package
// helper call is still caught.
//
// Repeated acquisitions of shardMu are allowed (the router takes them in
// ascending index order); re-acquiring writeMu or metaMu is self-
// deadlock and flagged.
package lockorder

import (
	"go/ast"
	"go/types"
	"math"

	"road/internal/analysis"
)

// rank orders the hierarchy: locks must be acquired in increasing rank.
var rank = map[string]int{
	"writeMu": 0,
	"shardMu": 1,
	"metaMu":  2,
}

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "enforce the writeMu → shardMu[i] → metaMu acquisition order documented in internal/shard/DESIGN.md, " +
		"including through same-package helper calls",
	Run: run,
}

func run(pass *analysis.Pass) {
	// Pass 1: per-function direct summaries (min rank acquired, callees)
	// and the declarations to walk.
	sums := map[*types.Func]*summary{}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			decls = append(decls, fd)
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				sums[obj] = summarize(pass, fd)
			}
		}
	}
	// Pass 2: propagate min-acquired rank through same-package calls to
	// a fixpoint, so w.minAcq reflects transitive acquisitions.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for callee := range s.calls {
				cs, ok := sums[callee]
				if ok && cs.minAcq < s.minAcq {
					s.minAcq = cs.minAcq
					changed = true
				}
			}
		}
	}
	// Pass 3: walk each body tracking the held set.
	for _, fd := range decls {
		w := &walker{pass: pass, sums: sums}
		w.stmts(fd.Body.List, map[string]bool{})
	}
}

// summary is one function's lock footprint: the minimum hierarchy rank
// it (transitively) acquires, and the same-package functions it calls.
type summary struct {
	minAcq int
	calls  map[*types.Func]bool
}

func summarize(pass *analysis.Pass, fd *ast.FuncDecl) *summary {
	s := &summary{minAcq: math.MaxInt, calls: map[*types.Func]bool{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, acquire := lockEvent(call); acquire {
			if r, ok := rank[name]; ok && r < s.minAcq {
				s.minAcq = r
			}
			return true
		}
		if callee := calleeFunc(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
			s.calls[callee] = true
		}
		return true
	})
	return s
}

// lockEvent classifies call as a Lock/RLock (acquire=true) or
// Unlock/RUnlock (acquire=false) on a tracked mutex and returns the
// mutex's hierarchy name. The name is the last field in the receiver
// chain: r.shardMu[i].RLock() → "shardMu".
func lockEvent(call *ast.CallExpr) (name string, acquire bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false
	}
	recv := sel.X
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ix.X
	}
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	default:
		return "", false
	}
	if _, tracked := rank[name]; !tracked {
		return "", false
	}
	return name, acquire
}

// calleeFunc resolves a call to its *types.Func, or nil for builtins,
// conversions and dynamic calls.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// walker tracks the held-lock set through one function body. The walk
// is a forward pass: sequential statements thread one held set; if/
// switch branches get copies and fall-through results are intersected;
// loop bodies get copies whose acquisitions are unioned back (the
// lock-all/unlock-all loops in router.go acquire across iterations).
type walker struct {
	pass *analysis.Pass
	sums map[*types.Func]*summary
}

func maxHeld(held map[string]bool) (string, int) {
	name, r := "", -1
	for h, on := range held {
		if on && rank[h] > r {
			name, r = h, rank[h]
		}
	}
	return name, r
}

// event applies one lock/unlock/call event to the held set, reporting
// inversions.
func (w *walker) event(call *ast.CallExpr, held map[string]bool) {
	if name, acquire := lockEvent(call); name != "" {
		if !acquire {
			delete(held, name)
			return
		}
		hName, hRank := maxHeld(held)
		if hRank > rank[name] {
			w.pass.Reportf(call.Pos(), "acquires %s while holding %s: lock order is writeMu → shardMu[i] → metaMu (internal/shard/DESIGN.md)", name, hName)
		} else if held[name] && name != "shardMu" {
			w.pass.Reportf(call.Pos(), "reacquires %s already held: self-deadlock", name)
		}
		held[name] = true
		return
	}
	callee := calleeFunc(w.pass, call)
	if callee == nil || callee.Pkg() != w.pass.Pkg {
		return
	}
	if s, ok := w.sums[callee]; ok && s.minAcq != math.MaxInt {
		if hName, hRank := maxHeld(held); hRank > s.minAcq {
			w.pass.Reportf(call.Pos(), "calls %s (which acquires a rank-%d lock) while holding %s: lock order is writeMu → shardMu[i] → metaMu", callee.Name(), s.minAcq, hName)
		}
	}
}

// stmtEvents applies every lock-relevant call in one statement, in
// source order, skipping function literals (they run later, with their
// own held set) and deferred calls (handled by the caller).
func (w *walker) stmtEvents(n ast.Node, held map[string]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			w.stmts(x.Body.List, map[string]bool{})
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			w.event(x, held)
		}
		return true
	})
}

// terminal reports whether a statement list definitely leaves the
// function (return or panic as its last statement), so its branch
// result does not constrain the post-branch held set.
func terminal(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		if v {
			c[k] = true
		}
	}
	return c
}

// merge intersects the fall-through branch results into held.
func merge(held map[string]bool, results []map[string]bool) {
	if len(results) == 0 {
		return
	}
	for k := range rank {
		all := true
		for _, r := range results {
			if !r[k] {
				all = false
				break
			}
		}
		if all {
			held[k] = true
		} else if !held[k] {
			delete(held, k)
		} else {
			// Held before the branch and released on some path: assume
			// released (under-approximating avoids false inversions).
			delete(held, k)
		}
	}
}

func (w *walker) stmts(stmts []ast.Stmt, held map[string]bool) {
	for _, st := range stmts {
		w.stmt(st, held)
	}
}

func (w *walker) stmt(st ast.Stmt, held map[string]bool) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmtEvents(s.Init, held)
		}
		w.stmtEvents(s.Cond, held)
		var results []map[string]bool
		thenHeld := copyHeld(held)
		w.stmts(s.Body.List, thenHeld)
		if !terminal(s.Body.List) {
			results = append(results, thenHeld)
		}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseHeld := copyHeld(held)
			w.stmts(e.List, elseHeld)
			if !terminal(e.List) {
				results = append(results, elseHeld)
			}
		case *ast.IfStmt:
			elseHeld := copyHeld(held)
			w.stmt(e, elseHeld)
			results = append(results, elseHeld)
		case nil:
			results = append(results, copyHeld(held))
		}
		merge(held, results)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmtEvents(s.Init, held)
		}
		body := copyHeld(held)
		w.stmts(s.Body.List, body)
		// Acquisitions survive the loop (the router's lock-all loops);
		// releases inside one iteration are iteration-local.
		for k, v := range body {
			if v {
				held[k] = true
			}
		}
	case *ast.RangeStmt:
		body := copyHeld(held)
		w.stmts(s.Body.List, body)
		for k, v := range body {
			if v {
				held[k] = true
			}
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var results []map[string]bool
		body := switchBody(st)
		for _, cl := range body {
			clHeld := copyHeld(held)
			w.stmts(caseBody(cl), clHeld)
			if !terminal(caseBody(cl)) {
				results = append(results, clHeld)
			}
		}
		results = append(results, copyHeld(held)) // no case taken / default absent
		merge(held, results)
	case *ast.DeferStmt:
		// A deferred unlock releases at return: the lock stays held for
		// the rest of the walk, which is exactly what we want. A deferred
		// anything-else is not executed here.
		if _, acquire := lockEvent(s.Call); acquire {
			w.event(s.Call, held) // defer x.Lock() — almost surely a bug; check it anyway
		}
	case *ast.GoStmt:
		// The goroutine starts with its own empty held set.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, map[string]bool{})
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	default:
		if st != nil {
			w.stmtEvents(st, held)
		}
	}
}

func switchBody(st ast.Stmt) []ast.Stmt {
	switch s := st.(type) {
	case *ast.SwitchStmt:
		return s.Body.List
	case *ast.TypeSwitchStmt:
		return s.Body.List
	case *ast.SelectStmt:
		return s.Body.List
	}
	return nil
}

func caseBody(cl ast.Stmt) []ast.Stmt {
	switch c := cl.(type) {
	case *ast.CaseClause:
		return c.Body
	case *ast.CommClause:
		return c.Body
	}
	return nil
}
