// Package mutator is the journalorder fixture: write-ahead mutators in
// clean and seeded-violation form.
package mutator

// Op is a journal-encoded mutation.
type Op struct{ Kind int }

// Journal is the write-ahead log; the analyzer matches on the type name.
type Journal struct{}

// Append durably logs an op.
func (j *Journal) Append(op Op) (uint64, error) { return 0, nil }

// State is live query state.
type State struct{}

// ApplyOp mutates live state.
func (s *State) ApplyOp(op Op) error { return nil }

// InsertObject mutates live state.
func (s *State) InsertObject(op Op) error { return nil }

// goodMutator journals before applying — the write-ahead contract.
func goodMutator(j *Journal, st *State, op Op) error {
	if _, err := j.Append(op); err != nil {
		return err
	}
	return st.ApplyOp(op)
}

// badMutator applies before the op is durable: a crash between the two
// acks a mutation that replay then silently loses.
func badMutator(j *Journal, st *State, op Op) error {
	if err := st.ApplyOp(op); err != nil { // want `state apply before journal append`
		return err
	}
	_, err := j.Append(op)
	return err
}

// logOp is the helper indirection the real DB.logOp uses.
func logOp(j *Journal, op Op) error {
	_, err := j.Append(op)
	return err
}

// goodIndirect appends through a helper — still clean.
func goodIndirect(j *Journal, st *State, op Op) error {
	if err := logOp(j, op); err != nil {
		return err
	}
	return st.InsertObject(op)
}

// badIndirect applies first even though the append hides in a helper.
func badIndirect(j *Journal, st *State, op Op) error {
	if err := st.InsertObject(op); err != nil { // want `state apply before journal append`
		return err
	}
	return logOp(j, op)
}

// branchMutator only journals on one path: the apply is not dominated.
func branchMutator(j *Journal, st *State, op Op, durable bool) error {
	if durable {
		if _, err := j.Append(op); err != nil {
			return err
		}
	}
	return st.ApplyOp(op) // want `state apply before journal append`
}

// deferredAppend journals at return time — after the apply ran.
func deferredAppend(j *Journal, st *State, op Op) error {
	defer j.Append(op)
	return st.ApplyOp(op) // want `state apply before journal append`
}

// replay applies without any journaling: recovery re-applies ops that
// are already durable, so this is clean by construction.
func replay(st *State, ops []Op) error {
	for _, op := range ops {
		if err := st.ApplyOp(op); err != nil {
			return err
		}
	}
	return nil
}
