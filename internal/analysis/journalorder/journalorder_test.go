package journalorder_test

import (
	"testing"

	"road/internal/analysis/analysistest"
	"road/internal/analysis/journalorder"
)

func TestJournalOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", journalorder.Analyzer, "mutator")
}
