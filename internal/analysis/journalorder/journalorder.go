// Package journalorder enforces write-ahead discipline as a dataflow
// property: in any function that both journals an op and applies it to
// live state, the journal append must happen first on every path. A
// mutator that applies before (or without finishing) its append can ack
// a mutation that a crash then silently loses — the exact contract the
// snapshot/journal recovery design (PR 2) and host-side journaling
// (PR 7) depend on.
//
// Journal appends are calls to Append on a *Journal (or to a same-
// package helper that transitively appends, like DB.logOp or
// ShardedDB.journalAndApply). State applies are the framework and
// router mutators (InsertObject, SetEdgeWeight, ApplyOp, HostApply, …)
// or helpers that transitively apply. Functions that apply WITHOUT any
// append — journal replay, snapshot load — are exempt by construction:
// the check only fires where both kinds of call are present.
package journalorder

import (
	"go/ast"
	"go/types"

	"road/internal/analysis"
)

// Analyzer is the journalorder check.
var Analyzer = &analysis.Analyzer{
	Name: "journalorder",
	Doc: "in mutator bodies the journal Append must dominate the state apply " +
		"(write-ahead: an op is durable before it is applied or acked)",
	Run: run,
}

// applyMethods are the state-mutating calls whose receiver holds live
// query state: the core framework's mutators and the shard-layer apply
// entry points.
var applyMethods = map[string]bool{
	"InsertObject":     true,
	"DeleteObject":     true,
	"UpdateObjectAttr": true,
	"SetEdgeWeight":    true,
	"AddEdge":          true,
	"DeleteEdge":       true,
	"RestoreEdge":      true,
	"ApplyOp":          true,
	"HostApply":        true,
	"applyLocal":       true,
}

type summary struct {
	appends bool
	applies bool
	calls   map[*types.Func]bool
}

func run(pass *analysis.Pass) {
	sums := map[*types.Func]*summary{}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			decls = append(decls, fd)
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				sums[obj] = summarize(pass, fd)
			}
		}
	}
	// Propagate appends/applies through same-package calls to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for callee := range s.calls {
				if cs, ok := sums[callee]; ok {
					if cs.appends && !s.appends {
						s.appends = true
						changed = true
					}
					if cs.applies && !s.applies {
						s.applies = true
						changed = true
					}
				}
			}
		}
	}
	for _, fd := range decls {
		checkOrder(pass, fd, sums)
	}
}

func summarize(pass *analysis.Pass, fd *ast.FuncDecl) *summary {
	s := &summary{calls: map[*types.Func]bool{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch classify(pass, call, nil) {
		case kindAppend:
			s.appends = true
		case kindApply:
			s.applies = true
		default:
			if callee := calleeFunc(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
				s.calls[callee] = true
			}
		}
		return true
	})
	return s
}

type callKind int

const (
	kindNone callKind = iota
	kindAppend
	kindApply
	kindBoth
)

// classify identifies call as a journal append, a state apply, or (via
// sums, when non-nil) a same-package helper that transitively does one.
func classify(pass *analysis.Pass, call *ast.CallExpr, sums map[*types.Func]*summary) callKind {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Append" && receiverIsJournal(pass, sel) {
			return kindAppend
		}
		if applyMethods[sel.Sel.Name] {
			return kindApply
		}
	} else if id, ok := call.Fun.(*ast.Ident); ok && applyMethods[id.Name] {
		return kindApply
	}
	if sums != nil {
		if callee := calleeFunc(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
			if s, ok := sums[callee]; ok {
				switch {
				case s.appends && s.applies:
					return kindBoth
				case s.appends:
					return kindAppend
				case s.applies:
					return kindApply
				}
			}
		}
	}
	return kindNone
}

// receiverIsJournal reports whether sel's receiver type is named
// Journal (any package — the fixture and snapshot package both match).
func receiverIsJournal(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Journal"
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// checkOrder walks a function that both appends and applies, verifying
// every apply is dominated by an append.
func checkOrder(pass *analysis.Pass, fd *ast.FuncDecl, sums map[*types.Func]*summary) {
	hasAppend := false
	hasApply := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch classify(pass, call, sums) {
			case kindAppend:
				hasAppend = true
			case kindApply:
				hasApply = true
			case kindBoth:
				hasAppend = true
				hasApply = true
			}
		}
		return true
	})
	if !hasAppend || !hasApply {
		return // not a journaled mutator (replay and load apply without appending)
	}
	w := &orderWalker{pass: pass, sums: sums}
	w.stmts(fd.Body.List, false)
}

// orderWalker threads the "definitely appended" fact through a body.
type orderWalker struct {
	pass *analysis.Pass
	sums map[*types.Func]*summary
}

// exprEvents processes calls inside one statement in source order,
// returning the updated appended fact.
func (w *orderWalker) exprEvents(n ast.Node, appended bool) bool {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			w.stmts(x.Body.List, false)
			return false
		case *ast.CallExpr:
			switch classify(w.pass, x, w.sums) {
			case kindAppend, kindBoth:
				// kindBoth helpers (journalAndApply) order internally;
				// their own bodies are checked separately.
				appended = true
			case kindApply:
				if !appended {
					w.pass.Reportf(x.Pos(), "state apply before journal append: write-ahead discipline requires the op be durable before it mutates live state (see internal/snapshot)")
				}
			}
		}
		return true
	})
	return appended
}

func (w *orderWalker) stmts(stmts []ast.Stmt, appended bool) bool {
	for _, st := range stmts {
		appended = w.stmt(st, appended)
	}
	return appended
}

func (w *orderWalker) stmt(st ast.Stmt, appended bool) bool {
	switch s := st.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, appended)
	case *ast.IfStmt:
		if s.Init != nil {
			appended = w.exprEvents(s.Init, appended)
		}
		appended = w.exprEvents(s.Cond, appended)
		thenApp := w.stmts(s.Body.List, appended)
		elseApp := appended
		if s.Else != nil {
			elseApp = w.stmt(s.Else, appended)
		}
		// Appended holds after the if only when both arms guarantee it
		// (an arm that returns guarantees it vacuously).
		if terminal(s.Body.List) {
			return elseApp
		}
		if s.Else != nil && stmtTerminal(s.Else) {
			return thenApp
		}
		return thenApp && elseApp
	case *ast.ForStmt:
		if s.Init != nil {
			appended = w.exprEvents(s.Init, appended)
		}
		// A loop body may run zero times: appends inside do not carry out.
		w.stmts(s.Body.List, appended)
		return appended
	case *ast.RangeStmt:
		w.stmts(s.Body.List, appended)
		return appended
	case *ast.SwitchStmt:
		return w.branches(s.Body.List, appended)
	case *ast.TypeSwitchStmt:
		return w.branches(s.Body.List, appended)
	case *ast.SelectStmt:
		return w.branches(s.Body.List, appended)
	case *ast.DeferStmt:
		// Deferred work runs at return, after everything else: a deferred
		// append cannot precede any apply in the body.
		w.exprEvents(s.Call, false)
		return appended
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, appended)
	default:
		if st != nil {
			return w.exprEvents(st, appended)
		}
		return appended
	}
}

func (w *orderWalker) branches(clauses []ast.Stmt, appended bool) bool {
	all := true
	for _, cl := range clauses {
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		if !w.stmts(body, appended) && !terminal(body) {
			all = false
		}
	}
	return appended || (all && len(clauses) > 0)
}

func terminal(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminal(stmts[len(stmts)-1])
}

func stmtTerminal(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		return terminal(s.List)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
