package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed and type-checked package, ready for
// analyzers.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over patterns and
// returns the decoded package stream. -export populates each package's
// compiled export data from the build cache, which is what lets the
// loader type-check offline without compiling dependencies itself.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup builds the gc-importer lookup over an import-path →
// export-file map.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// checkFiles parses and type-checks one package from source, resolving
// imports through imp.
func checkFiles(fset *token.FileSet, importPath, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, af)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		PkgPath: importPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// Load lists patterns in module directory dir (e.g. "./..."), and
// returns every matched non-dep package parsed and type-checked.
// Dependencies are imported from compiled export data, so only the
// matched packages themselves are re-checked from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listPkg
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			if len(p.CgoFiles) > 0 {
				return nil, fmt.Errorf("loading %s: cgo packages are not supported", p.ImportPath)
			}
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// fixtureImporter resolves a fixture package's imports: paths that exist
// as sibling directories under the testdata/src root are type-checked
// from source (recursively, cached); everything else is expected to be
// standard library and resolved from export data.
type fixtureImporter struct {
	root    string // testdata/src
	fset    *token.FileSet
	std     types.Importer
	checked map[string]*Package
	loading map[string]bool
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.checked[path]; ok {
		return pkg.Types, nil
	}
	dir := filepath.Join(fi.root, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := fi.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.std.Import(path)
}

func (fi *fixtureImporter) load(path, dir string) (*Package, error) {
	if fi.loading[path] {
		return nil, fmt.Errorf("import cycle through fixture %q", path)
	}
	fi.loading[path] = true
	defer delete(fi.loading, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %q has no .go files", path)
	}
	pkg, err := checkFiles(fi.fset, path, dir, names, fi)
	if err != nil {
		return nil, err
	}
	fi.checked[path] = pkg
	return pkg, nil
}

// LoadFixture loads the fixture package at <srcRoot>/<path> (and,
// transitively, fixture packages it imports from the same root).
// Standard-library imports come from `go list -export` data, so fixture
// loading works offline exactly like real-tree loading.
func LoadFixture(srcRoot, path string) (*Package, error) {
	fset := token.NewFileSet()
	// One `go list` over std resolves every stdlib import any fixture
	// makes; the build cache makes repeat runs cheap.
	listed, err := goList(srcRoot, []string{"std"})
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fi := &fixtureImporter{
		root:    srcRoot,
		fset:    fset,
		std:     importer.ForCompiler(fset, "gc", exportLookup(exports)),
		checked: make(map[string]*Package),
		loading: make(map[string]bool),
	}
	return fi.load(path, filepath.Join(srcRoot, path))
}

// LoadFromParts type-checks one package from an explicit file list with
// imports resolved through an import-path → export-file map (after
// applying importMap renames). This is the entry point for the
// `go vet -vettool` unitchecker protocol, where cmd/go supplies both
// maps in the .cfg file.
func LoadFromParts(importPath, dir string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := packageFile[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return checkFiles(fset, importPath, dir, goFiles, imp)
}
