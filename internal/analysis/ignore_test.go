package analysis_test

import (
	"go/ast"
	"testing"

	"road/internal/analysis"
)

// flagCalls reports every call to a function literal-named "flagme" — a
// minimal analyzer used to probe the suppression machinery itself.
var flagCalls = &analysis.Analyzer{
	Name: "flagcalls",
	Doc:  "test analyzer: flags calls to flagme",
	Run: func(p *analysis.Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
					p.Reportf(call.Pos(), "call to flagme")
				}
				return true
			})
		}
	},
}

// TestIgnoreDirective pins the escape-hatch contract: a directive with a
// reason suppresses the finding on its line and records the reason; a
// bare directive suppresses nothing and is itself a finding, so every
// suppression in the tree must say why.
func TestIgnoreDirective(t *testing.T) {
	pkg, err := analysis.LoadFixture("testdata/src", "ignorefix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{flagCalls})

	var suppressed, active, ignoreFindings int
	var reason string
	for _, d := range diags {
		switch {
		case d.Analyzer == "ignore":
			ignoreFindings++
		case d.Suppressed:
			suppressed++
			reason = d.IgnoreReason
		default:
			active++
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed findings = %d, want 1 (the directive with a reason)", suppressed)
	}
	if want := "exercised by TestIgnoreDirective"; reason != want {
		t.Errorf("IgnoreReason = %q, want %q", reason, want)
	}
	// The bare directive must not suppress its line, so both the
	// bareDirective and unsuppressed calls stay active.
	if active != 2 {
		t.Errorf("active findings = %d, want 2 (bare directive must not suppress)", active)
	}
	if ignoreFindings != 1 {
		t.Errorf("empty-reason directive findings = %d, want 1: //roadvet:ignore requires a reason", ignoreFindings)
	}
}
