// Package analysistest runs a road analyzer over fixture packages under
// a testdata/src root and checks its findings against expectations
// written in the fixtures themselves — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the project's
// dependency-free analysis framework.
//
// An expectation is a comment on the flagged line:
//
//	x.metaMu.Lock() // want `lock order`
//
// The backquoted text is a regexp that must match a diagnostic reported
// on that line. Every expectation must be matched and every diagnostic
// must be expected; fixtures therefore document both the flagged and the
// clean form of each invariant.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"road/internal/analysis"
)

// wantRe locates the expectation list in a `// want ...` comment;
// patternRe then extracts each backquoted pattern from the remainder,
// so one comment can carry several expectations:
//
//	x() // want `first` `second`
var (
	wantRe    = regexp.MustCompile("// want (`.*)$")
	patternRe = regexp.MustCompile("`([^`]*)`")
)

// expectation is one `// want` comment: a position and a pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package at <srcRoot>/<path>, applies the
// analyzer, and reports any mismatch between findings and `// want`
// expectations as test failures. Suppressed findings (//roadvet:ignore)
// are treated as absent, so fixtures can exercise the escape hatch too.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		pkg, err := analysis.LoadFixture(srcRoot, path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		checkExpectations(t, pkg, path, diags)
	}
}

func checkExpectations(t *testing.T, pkg *analysis.Package, path string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(pkg, c)...)
			}
		}
	}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		if !matchWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic [%s] %s", d.Position, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s/%s:%d: expected diagnostic matching %q, got none", path, w.file, w.line, w.pattern)
		}
	}
}

func parseWants(pkg *analysis.Package, c *ast.Comment) []*expectation {
	if !strings.Contains(c.Text, "// want ") {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	tail := wantRe.FindStringSubmatch(c.Text)
	if tail == nil {
		panic(fmt.Sprintf("%s: malformed want comment %q: no backquoted pattern", pos, c.Text))
	}
	var out []*expectation
	for _, m := range patternRe.FindAllStringSubmatch(tail[1], -1) {
		re, err := regexp.Compile(m[1])
		if err != nil {
			panic(fmt.Sprintf("%s: bad want pattern %q: %v", pos, m[1], err))
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
	}
	return out
}

func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Position.Line || w.file != d.Position.Filename {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
