package obsnames_test

import (
	"testing"

	"road/internal/analysis/analysistest"
	"road/internal/analysis/obsnames"
)

func TestObsNames(t *testing.T) {
	analysistest.Run(t, "testdata/src", obsnames.Analyzer, "metrics")
}
