// Package metrics is the flagged+clean obsnames fixture.
package metrics

import "obs"

type server struct {
	reqs *int
}

// newMetrics registers in a constructor — the clean context.
func newMetrics(reg *obs.Registry) *server {
	s := &server{}
	s.reqs = reg.Counter("road_requests_total", `endpoint="knn"`, "Requests served.")
	reg.Gauge("road_uptime_seconds", "", "Uptime.", func() float64 { return 0 })
	reg.Counter("requests_total", "", "Missing namespace.")         // want `metric name "requests_total" does not match road_`
	reg.Counter("road_bad_labels_total", `Endpoint="knn"`, "Help.") // want `label key "Endpoint" is not lower snake_case`
	name := dynamicName()
	reg.Counter(name, "", "Dynamic.") // want `metric name must be a compile-time constant`
	return s
}

func dynamicName() string { return "road_dynamic_total" }

// handleRequest registers on the request path — flagged regardless of
// the name being well-formed.
func handleRequest(reg *obs.Registry) {
	reg.Counter("road_lazy_total", "", "Registered per-request.") // want `metric registered inside handleRequest`
}

// trace exercises the leg vocabulary rule.
func trace(t *obs.Trace) {
	done := t.StartLeg(obs.LegSearch, -1) // vocabulary constant — clean
	done(0)
	t.StartLeg("adhoc", -1) // want `trace leg name "adhoc" must be a declared obs\.Leg\* vocabulary constant`
	_ = obs.Leg{Name: obs.LegGateway}
	_ = obs.Leg{Name: "drifted"} // want `trace leg name "drifted" must be a declared obs\.Leg\* vocabulary constant`
}
