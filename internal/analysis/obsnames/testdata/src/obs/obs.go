// Package obs is the obsnames fixture's miniature observability layer:
// a Registry with the real registration surface and the LegName
// vocabulary type. The analyzer matches on the type names Registry and
// LegName, so this fixture exercises exactly the real contract.
package obs

// Registry mirrors the real obs.Registry registration surface.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name, labels, help string) *int { return new(int) }

// Gauge registers a gauge.
func (r *Registry) Gauge(name, labels, help string, fn func() float64) {}

// Histogram registers a histogram.
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *int { return new(int) }

// CollectorVec registers a scrape-time family.
func (r *Registry) CollectorVec(name, typ, help string, collect func() []float64) {}

// LegName is the trace-leg vocabulary type; the constants below are its
// only legitimate literal values.
type LegName string

// The declared vocabulary.
const (
	LegSearch  LegName = "search"
	LegGateway LegName = "gateway"
)

// Leg is one timed phase.
type Leg struct {
	Name LegName
}

// Trace accumulates legs.
type Trace struct{}

// StartLeg begins timing a named leg.
func (t *Trace) StartLeg(name LegName, shard int) func(int) { return func(int) {} }
