// Package obsnames keeps the observability surface mechanically
// consistent:
//
//   - Metric names registered on an obs.Registry are compile-time
//     constants matching road_[a-z0-9_]+, and constant label strings use
//     lower snake_case keys — so every series the fleet exports shares
//     one grep-able namespace with bounded label keys.
//   - Registration happens in constructor/init contexts (New*, Open*,
//     Connect*, Register, init), never on the request path: the registry
//     takes a lock per registration, and per-request registration is how
//     unbounded series are born.
//   - Trace leg names are drawn from the obs.LegName vocabulary
//     constants, never ad-hoc string literals, so router legs and
//     host legs cannot drift apart (the cross-process trace stitching
//     of PR 8 joins on these names).
package obsnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"road/internal/analysis"
)

// Analyzer is the obsnames check.
var Analyzer = &analysis.Analyzer{
	Name: "obsnames",
	Doc: "metric names are road_[a-z0-9_]+ constants registered at init, label keys are bounded snake_case, " +
		"and trace leg names come from the obs.LegName vocabulary",
	Run: run,
}

var (
	metricNameRe = regexp.MustCompile(`^road_[a-z0-9_]+$`)
	labelKeyRe   = regexp.MustCompile(`(^|,)\s*([A-Za-z0-9_]+)=`)
	snakeKeyRe   = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	// initContextRe matches function names allowed to register metrics.
	initContextRe = regexp.MustCompile(`^(New|new|Open|open|Connect|connect|Register|register|init|Init)`)
)

// registration methods on a type named Registry, with the index of the
// labels argument (-1 for none).
var regMethods = map[string]int{
	"Counter":      1,
	"Gauge":        1,
	"Histogram":    1,
	"CollectorVec": -1,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				name := d.Name.Name
				ast.Inspect(d.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						checkRegistration(pass, call, name)
					}
					checkLegName(pass, n)
					return true
				})
			case *ast.GenDecl:
				// Package-level var initializers are init context by
				// definition; still validate names and leg vocabulary.
				ast.Inspect(d, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						checkRegistration(pass, call, "init")
					}
					checkLegName(pass, n)
					return true
				})
			}
		}
	}
}

// isRegistryMethod reports whether call is a registration method on a
// type named Registry, returning the labels-argument index.
func isRegistryMethod(pass *analysis.Pass, call *ast.CallExpr) (labelsArg int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, false
	}
	labelsArg, isReg := regMethods[sel.Sel.Name]
	if !isReg {
		return 0, false
	}
	selection, isMethod := pass.Info.Selections[sel]
	if !isMethod {
		return 0, false
	}
	recv := selection.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Name() != "Registry" {
		return 0, false
	}
	return labelsArg, true
}

func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, enclosing string) {
	labelsArg, ok := isRegistryMethod(pass, call)
	if !ok || len(call.Args) == 0 {
		return
	}
	if !initContextRe.MatchString(enclosing) {
		pass.Reportf(call.Pos(), "metric registered inside %s: registration belongs in a constructor or init, not the request path", enclosing)
	}
	name, isConst := constString(pass, call.Args[0])
	switch {
	case !isConst:
		pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time constant so the exported namespace is auditable")
	case !metricNameRe.MatchString(name):
		pass.Reportf(call.Args[0].Pos(), "metric name %q does not match road_[a-z0-9_]+: all fleet series share the road_ namespace", name)
	}
	if labelsArg > 0 && labelsArg < len(call.Args) {
		if labels, isConst := constString(pass, call.Args[labelsArg]); isConst && labels != "" {
			for _, m := range labelKeyRe.FindAllStringSubmatch(labels, -1) {
				if !snakeKeyRe.MatchString(m[2]) {
					pass.Reportf(call.Args[labelsArg].Pos(), "label key %q is not lower snake_case", m[2])
				}
			}
		}
	}
}

// checkLegName flags untyped string literals flowing into obs.LegName:
// every leg name must reference a declared vocabulary constant, so the
// set of leg names stays closed and greppable in one place.
func checkLegName(pass *analysis.Pass, n ast.Node) {
	lit, ok := n.(*ast.BasicLit)
	if !ok {
		return
	}
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "LegName" {
		return
	}
	// The vocabulary declaration itself (const block in the defining
	// package) is the one legitimate literal site.
	if pass.Pkg == named.Obj().Pkg() {
		return
	}
	pass.Reportf(lit.Pos(), "trace leg name %s must be a declared obs.Leg* vocabulary constant, not an ad-hoc literal: router and host legs join on these names", lit.Value)
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
