// Package ignorefix exercises the //roadvet:ignore escape hatch: a
// suppression with a reason, a bare directive (itself a finding), and an
// unsuppressed call.
package ignorefix

func flagme() {}

func withReason() {
	flagme() //roadvet:ignore exercised by TestIgnoreDirective
}

func bareDirective() {
	//roadvet:ignore
	flagme()
}

func unsuppressed() {
	flagme()
}
