// The binary edge is where contexts are born: package main may call
// context.Background freely.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
