// Package lib is the ctxflow fixture for library code: contexts flow
// in as first parameters and are never minted internally.
package lib

import "context"

// Query takes ctx first — clean.
func Query(ctx context.Context, node int) error {
	return ctx.Err()
}

// Misplaced takes ctx second.
func Misplaced(node int, ctx context.Context) error { // want `context.Context must be the first parameter`
	return ctx.Err()
}

// Severed mints its own context.
func Severed(node int) error {
	ctx := context.Background() // want `context.Background\(\) in library code`
	return ctxErr(ctx, node)
}

// Undecided punts with TODO.
func Undecided(node int) error {
	return ctxErr(context.TODO(), node) // want `context.TODO\(\) in library code`
}

func ctxErr(ctx context.Context, _ int) error { return ctx.Err() }
