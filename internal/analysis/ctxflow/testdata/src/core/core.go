// Package core is the ctxflow hot-loop fixture: heap-drain loops in the
// search engine must poll their limits.
package core

import "context"

// Limits mirrors the real core.Limits poll surface.
type Limits struct {
	Ctx    context.Context
	Budget int
}

// Stop is the cooperative poll.
func (l Limits) Stop(popped int) error { return nil }

type pq struct{ items []int }

func (q *pq) Len() int { return len(q.items) }
func (q *pq) Pop() int {
	v := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return v
}

// drainPolled polls Limits.Stop every pop — clean.
func drainPolled(q *pq, lim Limits) error {
	pops := 0
	for q.Len() > 0 {
		_ = q.Pop()
		pops++
		if err := lim.Stop(pops); err != nil {
			return err
		}
	}
	return nil
}

// drainUnpollable pops forever without consulting limits or context.
func drainUnpollable(q *pq) int {
	sum := 0
	for q.Len() > 0 { // want `heap-drain loop never polls Limits.Stop or ctx.Err`
		sum += q.Pop()
	}
	return sum
}

// drainCtx polls the context directly — also acceptable.
func drainCtx(ctx context.Context, q *pq) error {
	for q.Len() > 0 {
		_ = q.Pop()
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// typedItem / typedQueue mirror the CSR hot path's pooled typed heap
// (pqueue.SearchQueue): value returns instead of interface boxing, a
// two-value Pop. The analyzer must see through the different Pop shape.
type typedItem struct {
	Prio float64
	Node int32
}

type typedQueue struct{ items []typedItem }

func (q *typedQueue) Len() int { return len(q.items) }
func (q *typedQueue) Pop() (typedItem, bool) {
	if len(q.items) == 0 {
		return typedItem{}, false
	}
	v := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// drainTypedPolled is the searchCSR shape: pop the typed heap until
// empty, polling Limits.Stop on every settled node — clean.
func drainTypedPolled(q *typedQueue, lim Limits) (float64, error) {
	var sum float64
	pops := 0
	for q.Len() > 0 {
		it, ok := q.Pop()
		if !ok {
			break
		}
		sum += it.Prio
		pops++
		if err := lim.Stop(pops); err != nil {
			return sum, err
		}
	}
	return sum, nil
}

// drainTypedUnpollable drains the typed heap without ever polling —
// the zero-alloc refactor must not become an excuse to drop the poll.
func drainTypedUnpollable(q *typedQueue) float64 {
	var sum float64
	for q.Len() > 0 { // want `heap-drain loop never polls Limits.Stop or ctx.Err`
		it, _ := q.Pop()
		sum += it.Prio
	}
	return sum
}
