// Package core is the ctxflow hot-loop fixture: heap-drain loops in the
// search engine must poll their limits.
package core

import "context"

// Limits mirrors the real core.Limits poll surface.
type Limits struct {
	Ctx    context.Context
	Budget int
}

// Stop is the cooperative poll.
func (l Limits) Stop(popped int) error { return nil }

type pq struct{ items []int }

func (q *pq) Len() int { return len(q.items) }
func (q *pq) Pop() int {
	v := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return v
}

// drainPolled polls Limits.Stop every pop — clean.
func drainPolled(q *pq, lim Limits) error {
	pops := 0
	for q.Len() > 0 {
		_ = q.Pop()
		pops++
		if err := lim.Stop(pops); err != nil {
			return err
		}
	}
	return nil
}

// drainUnpollable pops forever without consulting limits or context.
func drainUnpollable(q *pq) int {
	sum := 0
	for q.Len() > 0 { // want `heap-drain loop never polls Limits.Stop or ctx.Err`
		sum += q.Pop()
	}
	return sum
}

// drainCtx polls the context directly — also acceptable.
func drainCtx(ctx context.Context, q *pq) error {
	for q.Len() > 0 {
		_ = q.Pop()
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}
