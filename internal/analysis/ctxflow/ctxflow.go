// Package ctxflow enforces the query path's context discipline:
//
//   - A function that takes a context.Context takes it as its FIRST
//     parameter (the Go convention the whole v1 API follows).
//   - Library code (any non-main package) never calls
//     context.Background() or context.TODO(): those sever the caller's
//     cancellation, deadline and trace baggage exactly where the v1 API
//     promises cooperative cancellation. Contexts enter at the binary
//     edge (package main) and flow down.
//   - In the search engine (packages core and shard), a heap-drain loop
//     — one that pops a priority queue — must poll its Limits (Stop) or
//     context (Err) inside the loop, so no hot loop is unpollable.
package ctxflow

import (
	"go/ast"
	"go/types"

	"road/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "context.Context first parameter, no context.Background()/TODO() in library code, " +
		"and every heap-drain loop in the search engine polls Limits.Stop/ctx.Err",
	Run: run,
}

// hotPackages are the search-engine packages whose pop loops must poll.
var hotPackages = map[string]bool{"core": true, "shard": true}

func run(pass *analysis.Pass) {
	libCode := pass.Pkg.Name() != "main"
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxFirst(pass, n.Type)
			case *ast.FuncLit:
				checkCtxFirst(pass, n.Type)
			case *ast.CallExpr:
				if libCode {
					checkNoBackground(pass, n)
				}
			case *ast.ForStmt:
				if hotPackages[pass.Pkg.Name()] {
					checkPollable(pass, n)
				}
			}
			return true
		})
	}
}

// isContextType reports whether the parameter type is context.Context.
func isContextType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.Info.Types[e].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkCtxFirst(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && pos > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter so call sites read uniformly")
		}
		pos += n
	}
}

func checkNoBackground(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		pass.Reportf(call.Pos(), "context.%s() in library code severs the caller's cancellation and trace context: accept a ctx and flow it down", fn.Name())
	}
}

// checkPollable flags a for-loop that pops a priority queue but never
// consults Limits.Stop or a context's Err inside its body.
func checkPollable(pass *analysis.Pass, loop *ast.ForStmt) {
	pops, polls := false, false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Pop":
				pops = true
			case "Stop", "Err":
				polls = true
			}
		}
		return true
	})
	if pops && !polls {
		pass.Reportf(loop.Pos(), "heap-drain loop never polls Limits.Stop or ctx.Err: the hot path must stay cancellable (core.Limits)")
	}
}
