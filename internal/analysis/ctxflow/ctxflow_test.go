package ctxflow_test

import (
	"testing"

	"road/internal/analysis/analysistest"
	"road/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src", ctxflow.Analyzer, "lib", "mainpkg", "core")
}
