package errwire_test

import (
	"testing"

	"road/internal/analysis/analysistest"
	"road/internal/analysis/errwire"
)

func TestErrWire(t *testing.T) {
	analysistest.Run(t, "testdata/src", errwire.Analyzer, "wire", "wirebad", "road")
}
