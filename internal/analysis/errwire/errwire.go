// Package errwire guards the typed-error contract that lets errors.Is
// work identically in-process and across the RPC wire:
//
//   - Wherever a `wireCodes` translation table is declared (the remote
//     package's wire.go), every apierr sentinel must have exactly one
//     stable snake_case wire code, no code may repeat, and the reserved
//     fallback code "error" may not be claimed — otherwise a sentinel
//     silently decodes to an untyped error on the far side.
//   - On the public Store surface (methods in package road), errors must
//     wrap a sentinel: a bare errors.New or a fmt.Errorf without %w
//     produces an error no caller, cache layer or wire codec can
//     classify.
package errwire

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path"
	"regexp"
	"strings"

	"road/internal/analysis"
)

// Analyzer is the errwire check.
var Analyzer = &analysis.Analyzer{
	Name: "errwire",
	Doc: "every apierr sentinel has exactly one stable wire code in the wireCodes table and no untyped error " +
		"escapes a road.Store method (wrap a sentinel with %w)",
	Run: run,
}

func run(pass *analysis.Pass) {
	if pass.Pkg.Name() == "road" {
		checkStoreSurface(pass)
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "wireCodes" && i < len(vs.Values) {
						if lit, ok := vs.Values[i].(*ast.CompositeLit); ok {
							checkWireTable(pass, name, lit)
						}
					}
				}
			}
		}
	}
}

// codePattern is the stable wire-code shape: lower snake_case, starting
// with a letter.
var codePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// codeOther is the reserved fallback for errors with no sentinel
// identity (see internal/shard/remote/wire.go); the table may not claim
// it, or typed and untyped errors become indistinguishable.
const codeOther = "error"

func checkWireTable(pass *analysis.Pass, name *ast.Ident, lit *ast.CompositeLit) {
	codes := map[string]ast.Expr{}
	sentinels := map[string]ast.Expr{}
	for _, elt := range lit.Elts {
		row, ok := elt.(*ast.CompositeLit)
		if !ok || len(row.Elts) != 2 {
			continue
		}
		errExpr, codeExpr := row.Elts[0], row.Elts[1]

		sentinel := sentinelKey(pass, errExpr)
		if sentinel == "" {
			pass.Reportf(errExpr.Pos(), "wireCodes entry is not a reference to an error sentinel variable")
		} else if _, dup := sentinels[sentinel]; dup {
			pass.Reportf(errExpr.Pos(), "sentinel %s has more than one wire code: codes must be stable and unique", sentinel)
		} else {
			sentinels[sentinel] = errExpr
		}

		code, ok := constString(pass, codeExpr)
		switch {
		case !ok:
			pass.Reportf(codeExpr.Pos(), "wire code must be a compile-time string constant")
		case !codePattern.MatchString(code):
			pass.Reportf(codeExpr.Pos(), "wire code %q is not lower snake_case: codes are a public wire contract", code)
		case code == codeOther:
			pass.Reportf(codeExpr.Pos(), "wire code %q is reserved for errors with no sentinel identity", code)
		default:
			if _, dup := codes[code]; dup {
				pass.Reportf(codeExpr.Pos(), "wire code %q assigned to more than one sentinel: decode would be ambiguous", code)
			}
			codes[code] = codeExpr
		}
	}

	// Coverage: every exported error sentinel of an imported apierr
	// package must appear in the table — a missing one round-trips the
	// wire as an untyped "error" and breaks errors.Is on the client.
	for _, imp := range pass.Pkg.Imports() {
		if path.Base(imp.Path()) != "apierr" {
			continue
		}
		scope := imp.Scope()
		for _, n := range scope.Names() {
			v, ok := scope.Lookup(n).(*types.Var)
			if !ok || !v.Exported() || !isErrorType(v.Type()) {
				continue
			}
			key := imp.Path() + "." + n
			if _, ok := sentinels[key]; !ok {
				pass.Reportf(name.Pos(), "apierr sentinel %s has no wire code: it would decode as an untyped error across the RPC boundary", n)
			}
		}
	}
}

// sentinelKey resolves a wireCodes err expression to "pkgpath.Name", or
// "" when it is not a reference to an error-typed variable.
func sentinelKey(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || !isErrorType(v.Type()) {
		return ""
	}
	pkgPath := ""
	if v.Pkg() != nil {
		pkgPath = v.Pkg().Path()
	}
	return pkgPath + "." + v.Name()
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkStoreSurface flags untyped error construction inside methods of
// the public road package.
func checkStoreSurface(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch calleeFullName(pass, call) {
				case "errors.New":
					pass.Reportf(call.Pos(), "errors.New on the Store surface: wrap an apierr sentinel with fmt.Errorf(%%w) so errors.Is works across layers and the wire")
				case "fmt.Errorf":
					if fstr, ok := formatString(pass, call); ok && !strings.Contains(fstr, "%w") {
						pass.Reportf(call.Pos(), "fmt.Errorf without %%w on the Store surface: wrap an apierr sentinel so the error stays typed")
					}
				}
				return true
			})
		}
	}
}

func calleeFullName(pass *analysis.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func formatString(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	return constString(pass, call.Args[0])
}
