// Package road is the errwire fixture for the public-surface rule: no
// untyped error may escape a Store method.
package road

import (
	"errors"
	"fmt"
)

// ErrBad is the fixture sentinel methods should wrap.
var ErrBad = errors.New("bad request")

// DB stands in for the real road.DB.
type DB struct{}

// Lookup wraps the sentinel — clean.
func (db *DB) Lookup(id int) error {
	if id < 0 {
		return fmt.Errorf("road: id %d: %w", id, ErrBad)
	}
	return nil
}

// NakedNew constructs an untyped error on the Store surface.
func (db *DB) NakedNew() error {
	return errors.New("something went wrong") // want `errors.New on the Store surface`
}

// NakedErrorf formats without wrapping.
func (db *DB) NakedErrorf(id int) error {
	return fmt.Errorf("road: id %d is broken", id) // want `fmt.Errorf without %w on the Store surface`
}

// Open is a package function, not a Store method: config errors at the
// module boundary may stay untyped.
func Open(path string) error {
	if path == "" {
		return errors.New("road: empty path")
	}
	return nil
}
