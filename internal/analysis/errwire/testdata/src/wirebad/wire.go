// Package wirebad is the flagged errwire fixture: every way a wire
// table can rot.
package wirebad

import "apierr"

var wireCodes = []struct { // want `apierr sentinel ErrGamma has no wire code`
	err  error
	code string
}{
	{apierr.ErrAlpha, "alpha"},
	{apierr.ErrAlpha, "alpha_again"}, // want `sentinel apierr.ErrAlpha has more than one wire code`
	{apierr.ErrBeta, "alpha"},        // want `wire code "alpha" assigned to more than one sentinel`
	{apierr.ErrBeta, "NotSnake"},     // want `sentinel apierr.ErrBeta has more than one wire code` `wire code "NotSnake" is not lower snake_case`
	{apierr.ErrBeta, "error"},        // want `sentinel apierr.ErrBeta has more than one wire code` `wire code "error" is reserved`
}

var _ = wireCodes
