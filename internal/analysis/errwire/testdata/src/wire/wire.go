// Package wire is the clean errwire fixture: a complete, unambiguous
// translation table.
package wire

import (
	"errors"

	"apierr"
)

// ErrLocal is a package-local sentinel; non-apierr sentinels may appear
// in the table freely.
var ErrLocal = errors.New("local")

var wireCodes = []struct {
	err  error
	code string
}{
	{apierr.ErrAlpha, "alpha"},
	{apierr.ErrBeta, "beta_2"},
	{apierr.ErrGamma, "gamma"},
	{ErrLocal, "local"},
}

var _ = wireCodes
