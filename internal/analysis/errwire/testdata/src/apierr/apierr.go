// Package apierr is the errwire fixture's sentinel package, mirroring
// the real internal/apierr leaf.
package apierr

import "errors"

var (
	// ErrAlpha is a fixture sentinel.
	ErrAlpha = errors.New("alpha")
	// ErrBeta is a fixture sentinel.
	ErrBeta = errors.New("beta")
	// ErrGamma is a fixture sentinel the bad wire table forgets.
	ErrGamma = errors.New("gamma")
)
