// Package analysis is the project's static-analysis framework: the
// substrate under cmd/roadvet and the five road-specific analyzers that
// mechanically enforce invariants the design docs state in prose — the
// lock hierarchy, write-ahead journaling, typed-error wire fidelity,
// context discipline and observability naming.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers could be ported to the
// upstream framework mechanically, but it is built on the standard
// library alone: this module serves traffic dependency-free, and its
// tooling stays dependency-free too. Packages are loaded offline with
// `go list -export` (compiled export data from the build cache) and
// type-checked with go/types, so a roadvet run needs no network and no
// third-party code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer is one named, self-contained check. Run inspects a single
// type-checked package through its Pass and reports findings with
// Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output; it
	// must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by `roadvet -list`:
	// the invariant enforced and the design doc it encodes.
	Doc string
	// Run performs the check. It is called once per loaded package.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// A Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
	// Suppressed marks a finding covered by a //roadvet:ignore directive;
	// the driver counts these instead of failing on them.
	Suppressed bool
	// IgnoreReason is the directive's reason when Suppressed.
	IgnoreReason string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file. The roadvet
// analyzers enforce library invariants; test scaffolding is exempt.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ignoreDirective matches the escape hatch: `//roadvet:ignore <reason>`
// on the flagged line or the line above suppresses a finding, and the
// driver reports the suppression count. The reason is mandatory: an
// empty one is itself a diagnostic, so every suppression records WHY
// the invariant does not apply.
var ignoreDirective = regexp.MustCompile(`^//roadvet:ignore(.*)$`)

// ignoreIndex maps "file:line" to the directive's reason for one package.
type ignoreIndex map[string]string

// buildIgnoreIndex scans a package's comments for //roadvet:ignore
// directives. Empty-reason directives are reported as findings of the
// pseudo-analyzer "ignore" (they fail the run like any other finding).
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				reason := strings.TrimSpace(m[1])
				pos := fset.Position(c.Pos())
				if reason == "" {
					*diags = append(*diags, Diagnostic{
						Analyzer: "ignore",
						Pos:      c.Pos(),
						Position: pos,
						Message:  "//roadvet:ignore requires a reason explaining why the invariant does not apply here",
					})
					continue
				}
				// The directive covers its own line and the next one, so
				// it works both inline and as a preceding comment line.
				idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = reason
				idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = reason
			}
		}
	}
	return idx
}

// applyIgnores marks findings on directive-covered lines suppressed.
func applyIgnores(diags []Diagnostic, idx ignoreIndex) {
	for i := range diags {
		if diags[i].Analyzer == "ignore" {
			continue
		}
		key := fmt.Sprintf("%s:%d", diags[i].Position.Filename, diags[i].Position.Line)
		if reason, ok := idx[key]; ok {
			diags[i].Suppressed = true
			diags[i].IgnoreReason = reason
		}
	}
}

// RunAnalyzers applies every analyzer to one loaded package and returns
// its findings, with //roadvet:ignore suppressions resolved.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	idx := buildIgnoreIndex(pkg.Fset, pkg.Files, &diags)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			diags:    &diags,
		}
		a.Run(pass)
	}
	applyIgnores(diags, idx)
	return diags
}
