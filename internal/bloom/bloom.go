// Package bloom implements the Bloom filter [1] that the paper suggests as
// a compact representation of object abstracts (§3.4): an Rnet's abstract
// can be stored as a filter over object attribute categories so a search
// can test "does this region contain any object of interest?" in O(k) with
// a bounded false-positive rate and no false negatives.
package bloom

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Filter is a Bloom filter over uint64 keys using double hashing
// (Kirsch–Mitzenmacher) on two FNV-1a halves.
type Filter struct {
	bits   []uint64
	m      uint64 // number of bits
	k      int    // number of hash functions
	nAdded int
}

// New returns a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64; minimums of 64 bits and 1 hash apply.
func New(m uint64, k int) *Filter {
	if m < 64 {
		m = 64
	}
	m = (m + 63) &^ 63
	if k < 1 {
		k = 1
	}
	return &Filter{bits: make([]uint64, m/64), m: m, k: k}
}

// NewForRate sizes a filter for n expected keys at target false-positive
// rate p, using the standard m = −n·ln p ⁄ ln²2 and k = (m/n)·ln 2 formulas.
func NewForRate(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	ln2 := math.Ln2
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (ln2 * ln2)))
	k := int(math.Round(float64(m) / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

func hash2(key uint64) (uint64, uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	h := fnv.New64a()
	h.Write(buf[:])
	h1 := h.Sum64()
	h.Write(buf[:]) // extend the stream for an independent second half
	h2 := h.Sum64() | 1
	return h1, h2
}

// Add inserts key.
func (f *Filter) Add(key uint64) {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.nAdded++
}

// Contains reports whether key may be present. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Union ORs other into f. Both filters must have identical geometry
// (same m and k); Union reports whether the merge was performed. Parent
// Rnet abstracts are unions of their children's (Lemma 1).
func (f *Filter) Union(other *Filter) bool {
	if f.m != other.m || f.k != other.k {
		return false
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.nAdded += other.nAdded
	return true
}

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	c := &Filter{bits: append([]uint64(nil), f.bits...), m: f.m, k: f.k, nAdded: f.nAdded}
	return c
}

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.nAdded = 0
}

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// SizeBytes returns the storage footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// EstimatedFPR returns the expected false-positive rate given the number
// of keys added: (1 − e^(−kn/m))^k.
func (f *Filter) EstimatedFPR() float64 {
	if f.nAdded == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.nAdded)/float64(f.m)), float64(f.k))
}
