package bloom

import (
	"math/rand"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewForRate(1000, 0.01)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 5000
	f := NewForRate(n, 0.01)
	rng := rand.New(rand.NewSource(2))
	present := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		present[k] = true
		f.Add(k)
	}
	fp := 0
	const probes = 100000
	for i := 0; i < probes; i++ {
		k := rng.Uint64()
		if present[k] {
			continue
		}
		if f.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %g, want ≈0.01", rate)
	}
	est := f.EstimatedFPR()
	if est <= 0 || est > 0.05 {
		t.Fatalf("EstimatedFPR = %g", est)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := New(1024, 4)
	for k := uint64(0); k < 1000; k++ {
		if f.Contains(k) {
			t.Fatalf("empty filter claims to contain %d", k)
		}
	}
	if f.EstimatedFPR() != 0 {
		t.Fatalf("EstimatedFPR on empty = %g", f.EstimatedFPR())
	}
}

func TestUnionCoversBoth(t *testing.T) {
	a := New(2048, 3)
	b := New(2048, 3)
	for k := uint64(0); k < 100; k++ {
		a.Add(k)
	}
	for k := uint64(100); k < 200; k++ {
		b.Add(k)
	}
	if !a.Union(b) {
		t.Fatal("Union of same-geometry filters failed")
	}
	for k := uint64(0); k < 200; k++ {
		if !a.Contains(k) {
			t.Fatalf("union missing key %d", k)
		}
	}
}

func TestUnionRejectsMismatchedGeometry(t *testing.T) {
	a := New(1024, 3)
	b := New(2048, 3)
	if a.Union(b) {
		t.Fatal("Union accepted mismatched m")
	}
	c := New(1024, 4)
	if a.Union(c) {
		t.Fatal("Union accepted mismatched k")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(1024, 3)
	a.Add(42)
	b := a.Clone()
	b.Add(43)
	if a.Contains(43) && !a.Contains(42) {
		t.Fatal("clone mutated original")
	}
	if !b.Contains(42) || !b.Contains(43) {
		t.Fatal("clone lost keys")
	}
}

func TestReset(t *testing.T) {
	f := New(1024, 3)
	f.Add(7)
	f.Reset()
	if f.Contains(7) {
		t.Fatal("Contains(7) after Reset")
	}
}

func TestSizing(t *testing.T) {
	f := New(100, 0) // rounds m up to 128, k up to 1
	if f.Bits() != 128 {
		t.Fatalf("Bits = %d, want 128", f.Bits())
	}
	if f.SizeBytes() != 16 {
		t.Fatalf("SizeBytes = %d, want 16", f.SizeBytes())
	}
	g := NewForRate(0, 2.0) // degenerate args fall back to defaults
	g.Add(1)
	if !g.Contains(1) {
		t.Fatal("degenerate-arg filter unusable")
	}
}
