// Package btree implements the B+-tree that both of ROAD's index
// components are built on: the Route Overlay keys it by node ID to reach
// per-node shortcut trees, and the Association Directory keys it by node
// and Rnet IDs to reach objects and object abstracts (paper §3.4).
//
// Keys are int64; values are generic. Every structural node carries a dense
// ID and an optional access hook so callers can charge simulated page I/O
// for each node visited on the root-to-leaf path.
package btree

// DefaultOrder is the default maximum number of children per internal node.
// With 8-byte keys and pointers it roughly matches one 4 KB page per node.
const DefaultOrder = 128

type node[V any] struct {
	id       int64
	leaf     bool
	keys     []int64
	vals     []V        // parallel to keys; leaves only
	children []*node[V] // len(keys)+1; internal only
	next     *node[V]   // leaf sibling chain
}

// Tree is a B+-tree from int64 keys to values of type V.
type Tree[V any] struct {
	order  int
	root   *node[V]
	size   int
	nextID int64

	// OnAccess, when non-nil, is invoked with the ID of every tree node
	// visited by Get, Put, Delete and scans — one call per simulated page.
	OnAccess func(nodeID int64)
}

// New returns an empty tree with the given order (maximum children per
// internal node). Orders below 3 are raised to 3; 0 selects DefaultOrder.
func New[V any](order int) *Tree[V] {
	if order == 0 {
		order = DefaultOrder
	}
	if order < 3 {
		order = 3
	}
	t := &Tree[V]{order: order}
	t.root = t.newNode(true)
	return t
}

func (t *Tree[V]) newNode(leaf bool) *node[V] {
	n := &node[V]{id: t.nextID, leaf: leaf}
	t.nextID++
	return n
}

// Len returns the number of stored keys.
func (t *Tree[V]) Len() int { return t.size }

// Nodes returns the number of tree nodes ever allocated; with OnAccess wired
// to a storage layout this is the page count of the index.
func (t *Tree[V]) Nodes() int64 { return t.nextID }

// Height returns the number of levels (1 for a lone leaf root).
func (t *Tree[V]) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

func (t *Tree[V]) access(n *node[V]) {
	if t.OnAccess != nil {
		t.OnAccess(n.id)
	}
}

// search returns the index of the first key ≥ k in n.keys.
func search[V any](n *node[V], k int64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under k.
func (t *Tree[V]) Get(k int64) (V, bool) {
	n := t.root
	for {
		t.access(n)
		i := search(n, k)
		if n.leaf {
			if i < len(n.keys) && n.keys[i] == k {
				return n.vals[i], true
			}
			var zero V
			return zero, false
		}
		if i < len(n.keys) && n.keys[i] == k {
			i++ // internal separator equal to k: key lives in right subtree
		}
		n = n.children[i]
	}
}

// Has reports whether k is stored.
func (t *Tree[V]) Has(k int64) bool {
	_, ok := t.Get(k)
	return ok
}

// Put stores v under k, replacing any existing value. It reports whether a
// new key was inserted (false = replacement).
func (t *Tree[V]) Put(k int64, v V) bool {
	inserted, splitKey, sibling := t.insert(t.root, k, v)
	if sibling != nil {
		newRoot := t.newNode(false)
		newRoot.keys = append(newRoot.keys, splitKey)
		newRoot.children = append(newRoot.children, t.root, sibling)
		t.root = newRoot
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert adds k/v below n. If n splits, it returns the separator key and
// the new right sibling.
func (t *Tree[V]) insert(n *node[V], k int64, v V) (inserted bool, splitKey int64, sibling *node[V]) {
	t.access(n)
	i := search(n, k)
	if n.leaf {
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = v
			return false, 0, nil
		}
		n.keys = insertAt(n.keys, i, k)
		n.vals = insertAt(n.vals, i, v)
		if len(n.keys) >= t.order {
			sk, sib := t.splitLeaf(n)
			return true, sk, sib
		}
		return true, 0, nil
	}
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	inserted, csk, csib := t.insert(n.children[i], k, v)
	if csib != nil {
		n.keys = insertAt(n.keys, i, csk)
		n.children = insertAt(n.children, i+1, csib)
		if len(n.keys) >= t.order {
			sk, sib := t.splitInternal(n)
			return inserted, sk, sib
		}
	}
	return inserted, 0, nil
}

func (t *Tree[V]) splitLeaf(n *node[V]) (int64, *node[V]) {
	mid := len(n.keys) / 2
	sib := t.newNode(true)
	sib.keys = append(sib.keys, n.keys[mid:]...)
	sib.vals = append(sib.vals, n.vals[mid:]...)
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	sib.next = n.next
	n.next = sib
	return sib.keys[0], sib
}

func (t *Tree[V]) splitInternal(n *node[V]) (int64, *node[V]) {
	mid := len(n.keys) / 2
	sk := n.keys[mid]
	sib := t.newNode(false)
	sib.keys = append(sib.keys, n.keys[mid+1:]...)
	sib.children = append(sib.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sk, sib
}

func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// Delete removes k. It reports whether the key was present.
func (t *Tree[V]) Delete(k int64) bool {
	deleted := t.remove(t.root, k)
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree[V]) minKeys() int { return (t.order - 1) / 2 }

func (t *Tree[V]) remove(n *node[V], k int64) bool {
	t.access(n)
	i := search(n, k)
	if n.leaf {
		if i >= len(n.keys) || n.keys[i] != k {
			return false
		}
		n.keys = removeAt(n.keys, i)
		n.vals = removeAt(n.vals, i)
		return true
	}
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	child := n.children[i]
	deleted := t.remove(child, k)
	if t.underflow(child) {
		t.rebalance(n, i)
	}
	return deleted
}

func (t *Tree[V]) underflow(n *node[V]) bool {
	return len(n.keys) < t.minKeys()
}

// rebalance fixes an underflowing child at position i of parent p by
// borrowing from a sibling or merging with one.
func (t *Tree[V]) rebalance(p *node[V], i int) {
	child := p.children[i]
	// Try borrowing from the left sibling.
	if i > 0 {
		left := p.children[i-1]
		if len(left.keys) > t.minKeys() {
			t.access(left)
			if child.leaf {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, left.keys[last])
				child.vals = insertAt(child.vals, 0, left.vals[last])
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				p.keys[i-1] = child.keys[0]
			} else {
				child.keys = insertAt(child.keys, 0, p.keys[i-1])
				child.children = insertAt(child.children, 0, left.children[len(left.children)-1])
				p.keys[i-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.children = left.children[:len(left.children)-1]
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if i < len(p.children)-1 {
		right := p.children[i+1]
		if len(right.keys) > t.minKeys() {
			t.access(right)
			if child.leaf {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = removeAt(right.keys, 0)
				right.vals = removeAt(right.vals, 0)
				p.keys[i] = right.keys[0]
			} else {
				child.keys = append(child.keys, p.keys[i])
				child.children = append(child.children, right.children[0])
				p.keys[i] = right.keys[0]
				right.keys = removeAt(right.keys, 0)
				right.children = removeAt(right.children, 0)
			}
			return
		}
	}
	// Merge with a sibling.
	if i > 0 {
		t.merge(p, i-1)
	} else {
		t.merge(p, i)
	}
}

// merge folds p.children[i+1] into p.children[i].
func (t *Tree[V]) merge(p *node[V], i int) {
	left, right := p.children[i], p.children[i+1]
	t.access(left)
	t.access(right)
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, p.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	p.keys = removeAt(p.keys, i)
	p.children = removeAt(p.children, i+1)
}

// AscendRange calls fn for every key in [from, to] in ascending order,
// stopping early if fn returns false.
func (t *Tree[V]) AscendRange(from, to int64, fn func(k int64, v V) bool) {
	n := t.root
	for !n.leaf {
		t.access(n)
		i := search(n, from)
		if i < len(n.keys) && n.keys[i] == from {
			i++
		}
		n = n.children[i]
	}
	for n != nil {
		t.access(n)
		for i, k := range n.keys {
			if k < from {
				continue
			}
			if k > to {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Ascend calls fn for every key in ascending order, stopping early if fn
// returns false.
func (t *Tree[V]) Ascend(fn func(k int64, v V) bool) {
	t.AscendRange(-1<<63, 1<<63-1, fn)
}

// Min returns the smallest key, or ok=false when empty.
func (t *Tree[V]) Min() (k int64, v V, ok bool) {
	n := t.root
	for !n.leaf {
		t.access(n)
		n = n.children[0]
	}
	t.access(n)
	if len(n.keys) == 0 {
		return 0, v, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key, or ok=false when empty.
func (t *Tree[V]) Max() (k int64, v V, ok bool) {
	n := t.root
	for !n.leaf {
		t.access(n)
		n = n.children[len(n.children)-1]
	}
	t.access(n)
	if len(n.keys) == 0 {
		return 0, v, false
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
}
