package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[string](4)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree found a key")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree returned true")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree ok")
	}
	if tr.Height() != 1 {
		t.Fatalf("Height = %d, want 1", tr.Height())
	}
}

func TestPutGetReplace(t *testing.T) {
	tr := New[string](4)
	if !tr.Put(5, "a") {
		t.Fatal("first Put reported replacement")
	}
	if tr.Put(5, "b") {
		t.Fatal("second Put reported insertion")
	}
	v, ok := tr.Get(5)
	if !ok || v != "b" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestOrderClamping(t *testing.T) {
	tr := New[int](1) // clamped to 3
	for i := int64(0); i < 100; i++ {
		tr.Put(i, int(i))
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr2 := New[int](0) // default order
	tr2.Put(1, 1)
	if !tr2.Has(1) {
		t.Fatal("default-order tree broken")
	}
}

func TestSequentialInsertAscendingScan(t *testing.T) {
	tr := New[int64](5)
	const n = 1000
	for i := int64(0); i < n; i++ {
		tr.Put(i, i*10)
	}
	var got []int64
	tr.Ascend(func(k int64, v int64) bool {
		if v != k*10 {
			t.Fatalf("value mismatch at %d: %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != n {
		t.Fatalf("scan returned %d keys, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != int64(i) {
			t.Fatalf("scan[%d] = %d", i, got[i])
		}
	}
}

func TestReverseInsert(t *testing.T) {
	tr := New[int](4)
	for i := int64(999); i >= 0; i-- {
		tr.Put(i, int(i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		if v, ok := tr.Get(i); !ok || v != int(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestAscendRangeBounds(t *testing.T) {
	tr := New[int](4)
	for i := int64(0); i < 100; i += 2 { // even keys only
		tr.Put(i, int(i))
	}
	var got []int64
	tr.AscendRange(10, 20, func(k int64, v int) bool {
		got = append(got, k)
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("range scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range scan = %v, want %v", got, want)
		}
	}
	// Bounds between keys.
	got = got[:0]
	tr.AscendRange(11, 13, func(k int64, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 1 || got[0] != 12 {
		t.Fatalf("between-keys scan = %v, want [12]", got)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int](4)
	for i := int64(0); i < 100; i++ {
		tr.Put(i, int(i))
	}
	count := 0
	tr.Ascend(func(k int64, v int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d, want 7", count)
	}
}

func TestDeleteAllAscending(t *testing.T) {
	tr := New[int](4)
	const n = 500
	for i := int64(0); i < n; i++ {
		tr.Put(i, int(i))
	}
	for i := int64(0); i < n; i++ {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
		if tr.Has(i) {
			t.Fatalf("key %d present after delete", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestDeleteAllDescending(t *testing.T) {
	tr := New[int](4)
	const n = 500
	for i := int64(0); i < n; i++ {
		tr.Put(i, int(i))
	}
	for i := int64(n - 1); i >= 0; i-- {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int](4)
	keys := []int64{42, 7, 99, 3, 57}
	for _, k := range keys {
		tr.Put(k, int(k))
	}
	if k, _, _ := tr.Min(); k != 3 {
		t.Fatalf("Min = %d, want 3", k)
	}
	if k, _, _ := tr.Max(); k != 99 {
		t.Fatalf("Max = %d, want 99", k)
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := New[int](4)
	for i := int64(-50); i <= 50; i++ {
		tr.Put(i, int(i))
	}
	if k, _, _ := tr.Min(); k != -50 {
		t.Fatalf("Min = %d", k)
	}
	var got []int64
	tr.AscendRange(-3, 3, func(k int64, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 7 || got[0] != -3 || got[6] != 3 {
		t.Fatalf("negative range scan = %v", got)
	}
}

// TestAgainstMapOracle drives random Put/Get/Delete against a map and
// verifies every answer plus full sorted iteration, across several orders.
func TestAgainstMapOracle(t *testing.T) {
	for _, order := range []int{3, 4, 5, 16, 128} {
		rng := rand.New(rand.NewSource(int64(order)))
		tr := New[int](order)
		oracle := make(map[int64]int)
		const ops = 20000
		for i := 0; i < ops; i++ {
			k := int64(rng.Intn(2000))
			switch rng.Intn(3) {
			case 0: // put
				v := rng.Int()
				tr.Put(k, v)
				oracle[k] = v
			case 1: // get
				got, ok := tr.Get(k)
				want, wok := oracle[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("order %d op %d: Get(%d) = %d,%v want %d,%v", order, i, k, got, ok, want, wok)
				}
			case 2: // delete
				got := tr.Delete(k)
				_, want := oracle[k]
				if got != want {
					t.Fatalf("order %d op %d: Delete(%d) = %v want %v", order, i, k, got, want)
				}
				delete(oracle, k)
			}
			if tr.Len() != len(oracle) {
				t.Fatalf("order %d op %d: Len = %d oracle %d", order, i, tr.Len(), len(oracle))
			}
		}
		// Final structural check: sorted iteration matches oracle.
		var wantKeys []int64
		for k := range oracle {
			wantKeys = append(wantKeys, k)
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		var gotKeys []int64
		tr.Ascend(func(k int64, v int) bool {
			if v != oracle[k] {
				t.Fatalf("order %d: iter value mismatch at %d", order, k)
			}
			gotKeys = append(gotKeys, k)
			return true
		})
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("order %d: iter %d keys, oracle %d", order, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("order %d: iter[%d] = %d want %d", order, i, gotKeys[i], wantKeys[i])
			}
		}
	}
}

func TestQuickPutHasDelete(t *testing.T) {
	f := func(keys []int64) bool {
		tr := New[bool](6)
		uniq := make(map[int64]bool)
		for _, k := range keys {
			tr.Put(k, true)
			uniq[k] = true
		}
		if tr.Len() != len(uniq) {
			return false
		}
		for k := range uniq {
			if !tr.Has(k) {
				return false
			}
			if !tr.Delete(k) {
				return false
			}
		}
		return tr.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New[int](128)
	for i := int64(0); i < 100000; i++ {
		tr.Put(i, 0)
	}
	if h := tr.Height(); h > 4 {
		t.Fatalf("height %d too large for 100k keys at order 128", h)
	}
}

func TestOnAccessFiresPerLevel(t *testing.T) {
	tr := New[int](4)
	for i := int64(0); i < 1000; i++ {
		tr.Put(i, 0)
	}
	visited := 0
	tr.OnAccess = func(id int64) { visited++ }
	tr.Get(500)
	if visited != tr.Height() {
		t.Fatalf("Get touched %d nodes, height is %d", visited, tr.Height())
	}
}

func TestNodesCounterGrows(t *testing.T) {
	tr := New[int](4)
	before := tr.Nodes()
	for i := int64(0); i < 100; i++ {
		tr.Put(i, 0)
	}
	if tr.Nodes() <= before {
		t.Fatal("Nodes did not grow with inserts")
	}
}

func BenchmarkPut(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int64, 100000)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New[int](DefaultOrder)
		for _, k := range keys {
			tr.Put(k, 0)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int](DefaultOrder)
	for i := int64(0); i < 100000; i++ {
		tr.Put(i, int(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i % 100000))
	}
}
