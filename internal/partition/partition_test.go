package partition

import (
	"testing"

	"road/internal/dataset"
	"road/internal/graph"
)

func testGraph(t *testing.T, nodes, edges int) *graph.Graph {
	t.Helper()
	return dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: nodes, Edges: edges, Seed: 1})
}

func allEdges(g *graph.Graph) []graph.EdgeID {
	out := make([]graph.EdgeID, g.NumEdges())
	for i := range out {
		out[i] = graph.EdgeID(i)
	}
	return out
}

func TestSplitRejectsBadParts(t *testing.T) {
	g := testGraph(t, 50, 60)
	for _, parts := range []int{0, 1, 3, 6, -4} {
		if _, err := Split(g, allEdges(g), Options{Parts: parts}); err == nil {
			t.Fatalf("parts=%d accepted", parts)
		}
	}
}

func TestSplitIsPartition(t *testing.T) {
	g := testGraph(t, 400, 460)
	edges := allEdges(g)
	for _, parts := range []int{2, 4, 8, 16} {
		got, err := Split(g, edges, Options{Parts: parts, KLPasses: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != parts {
			t.Fatalf("parts = %d, want %d", len(got), parts)
		}
		seen := make(map[graph.EdgeID]int)
		total := 0
		for pi, p := range got {
			for _, e := range p {
				if prev, dup := seen[e]; dup {
					t.Fatalf("edge %d in parts %d and %d", e, prev, pi)
				}
				seen[e] = pi
				total++
			}
		}
		if total != len(edges) {
			t.Fatalf("partition covers %d edges, want %d", total, len(edges))
		}
	}
}

func TestSplitRoughlyBalanced(t *testing.T) {
	g := testGraph(t, 1000, 1150)
	got, err := Split(g, allEdges(g), Options{Parts: 4, KLPasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := g.NumEdges() / 4
	for i, p := range got {
		if len(p) < want/2 || len(p) > want*2 {
			t.Fatalf("part %d has %d edges, want ≈%d", i, len(p), want)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	g := testGraph(t, 300, 340)
	opt := Options{Parts: 4, KLPasses: -1, Seed: 9}
	a, _ := Split(g, allEdges(g), opt)
	b, _ := Split(g, allEdges(g), opt)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("part %d sizes differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("part %d element %d differs", i, j)
			}
		}
	}
}

func TestKLRefinementReducesBorders(t *testing.T) {
	g := testGraph(t, 2000, 2300)
	edges := allEdges(g)
	noKL, err := Split(g, edges, Options{Parts: 8, KLPasses: 0})
	if err != nil {
		t.Fatal(err)
	}
	withKL, err := Split(g, edges, Options{Parts: 8, KLPasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	b0 := BorderCount(g, noKL)
	b1 := BorderCount(g, withKL)
	if b1 > b0 {
		t.Fatalf("KL refinement increased borders: %d -> %d", b0, b1)
	}
	if b1 == 0 {
		t.Fatal("zero borders on a connected network is impossible")
	}
}

func TestSplitTinyInputs(t *testing.T) {
	g := testGraph(t, 16, 15)
	// More parts than edges: empty parts allowed, coverage still exact.
	got, err := Split(g, allEdges(g)[:3], Options{Parts: 8})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range got {
		total += len(p)
	}
	if total != 3 {
		t.Fatalf("covered %d edges, want 3", total)
	}
	// Single edge.
	got, err = Split(g, allEdges(g)[:1], Options{Parts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0])+len(got[1]) != 1 {
		t.Fatal("single edge lost")
	}
}

func TestSplitSubsetOfEdges(t *testing.T) {
	// Splitting a subset (as the recursive hierarchy build does) must only
	// ever use the given edges.
	g := testGraph(t, 200, 240)
	subset := allEdges(g)[:100]
	got, err := Split(g, subset, Options{Parts: 4, KLPasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	in := make(map[graph.EdgeID]bool)
	for _, e := range subset {
		in[e] = true
	}
	for _, p := range got {
		for _, e := range p {
			if !in[e] {
				t.Fatalf("edge %d not in input subset", e)
			}
		}
	}
}

func TestBorderCountManual(t *testing.T) {
	// Path 0-1-2-3: split {01,12} | {23} has exactly one border (node 2).
	g := graph.New(4, 3)
	for i := 0; i < 4; i++ {
		g.AddNode(g.Bounds().Min) // coordinates irrelevant here
	}
	e01 := g.MustAddEdge(0, 1, 1)
	e12 := g.MustAddEdge(1, 2, 1)
	e23 := g.MustAddEdge(2, 3, 1)
	parts := [][]graph.EdgeID{{e01, e12}, {e23}}
	if got := BorderCount(g, parts); got != 1 {
		t.Fatalf("BorderCount = %d, want 1", got)
	}
}

func TestGeometricSplitSeparatesSpace(t *testing.T) {
	// On a wide grid, a 2-way geometric split should put geometrically
	// distant edges in different parts.
	g := testGraph(t, 900, 1000)
	got, err := Split(g, allEdges(g), Options{Parts: 2, KLPasses: 0})
	if err != nil {
		t.Fatal(err)
	}
	// The two sides' mean midpoints must differ substantially along the
	// split axis (whichever axis the splitter chose).
	mean := func(part []graph.EdgeID) (x, y float64) {
		for _, e := range part {
			ed := g.Edge(e)
			x += (g.Coord(ed.U).X + g.Coord(ed.V).X) / 2
			y += (g.Coord(ed.U).Y + g.Coord(ed.V).Y) / 2
		}
		n := float64(len(part))
		return x / n, y / n
	}
	ax, ay := mean(got[0])
	bx, by := mean(got[1])
	spanX := g.Bounds().Max.X - g.Bounds().Min.X
	spanY := g.Bounds().Max.Y - g.Bounds().Min.Y
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dx < spanX*0.2 && dy < spanY*0.2 {
		t.Fatalf("geometric split not spatial: Δx=%g Δy=%g", dx, dy)
	}
}

func TestWeightedSplitBalancesWeight(t *testing.T) {
	g := testGraph(t, 600, 690)
	edges := allEdges(g)
	// Concentrate weight on low-numbered edges.
	weight := func(e graph.EdgeID) float64 {
		if e < 100 {
			return 10
		}
		return 1
	}
	got, err := Split(g, edges, Options{Parts: 2, KLPasses: 0, Weight: weight})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(part []graph.EdgeID) float64 {
		var s float64
		for _, e := range part {
			s += weight(e)
		}
		return s
	}
	a, b := sum(got[0]), sum(got[1])
	total := a + b
	if a < total*0.3 || b < total*0.3 {
		t.Fatalf("weighted split unbalanced: %g vs %g", a, b)
	}
	// Edge-count balance should be sacrificed: the heavy side has fewer
	// edges.
	if len(got[0]) == len(got[1]) {
		t.Log("note: equal edge counts despite weights (possible but unusual)")
	}
}

func TestWeightedSplitStillPartitions(t *testing.T) {
	g := testGraph(t, 400, 460)
	edges := allEdges(g)
	weight := func(e graph.EdgeID) float64 { return 1 + float64(e%7) }
	got, err := Split(g, edges, Options{Parts: 8, KLPasses: -1, Weight: weight})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.EdgeID]bool)
	for _, p := range got {
		for _, e := range p {
			if seen[e] {
				t.Fatalf("edge %d duplicated", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != len(edges) {
		t.Fatalf("covered %d of %d edges", len(seen), len(edges))
	}
}

func TestBalanceClamped(t *testing.T) {
	g := testGraph(t, 100, 120)
	// Absurd balance must not allow a side to empty.
	got, err := Split(g, allEdges(g), Options{Parts: 2, KLPasses: -1, Balance: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) == 0 || len(got[1]) == 0 {
		t.Fatal("a side emptied under extreme balance setting")
	}
}
