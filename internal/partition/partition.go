// Package partition divides a road network's edge set into regional
// sub-networks, the Rnet-forming step of §3.3: edges are first split
// geometrically into two equal halves (the approach of [8]) and the cut is
// then refined with Kernighan–Lin-style local moves [12] that minimize the
// number of border nodes (nodes with incident edges on both sides).
// Recursive binary splitting yields p = 2^x parts, exactly as the paper
// prescribes; nodes are shared between parts, edges never are
// (Definition 4).
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"road/internal/graph"
)

// Options tunes a Split call.
type Options struct {
	// Parts is the number of parts to produce; it must be a power of two
	// of at least 2 (the paper sets p = 2^x and splits recursively).
	Parts int
	// KLPasses bounds the refinement sweeps per binary split; 0 disables
	// refinement (geometric split only — the ablation baseline).
	KLPasses int
	// Balance is the largest fraction by which a side may shrink below an
	// even split during refinement (default 0.1: sides stay within 40–60%).
	Balance float64
	// Seed drives the deterministic move ordering.
	Seed int64
	// Weight, when non-nil, assigns each edge a positive balance weight;
	// splits then equalize total weight instead of edge counts. This is
	// the object-based partitioning the paper leaves as future work
	// (§3.3): weighting edges by their object load yields finer Rnets in
	// object-dense areas and coarser ones in empty areas.
	Weight func(graph.EdgeID) float64
}

// DefaultKLPasses is the refinement budget used when Options.KLPasses is
// negative (callers pass -1 for "default").
const DefaultKLPasses = 8

// Split partitions the given edges of g into opt.Parts parts. Every input
// edge appears in exactly one output part; parts can be empty only if the
// input has fewer edges than parts. The same inputs always produce the
// same partition.
func Split(g *graph.Graph, edges []graph.EdgeID, opt Options) ([][]graph.EdgeID, error) {
	if opt.Parts < 2 || opt.Parts&(opt.Parts-1) != 0 {
		return nil, fmt.Errorf("partition: parts must be a power of two ≥ 2, got %d", opt.Parts)
	}
	if opt.Balance <= 0 {
		opt.Balance = 0.1
	}
	if opt.Balance >= 0.5 {
		opt.Balance = 0.4 // keep both sides non-empty
	}
	if opt.KLPasses < 0 {
		opt.KLPasses = DefaultKLPasses
	}
	work := append([]graph.EdgeID(nil), edges...)
	parts := [][]graph.EdgeID{work}
	rng := rand.New(rand.NewSource(opt.Seed))
	for len(parts) < opt.Parts {
		var next [][]graph.EdgeID
		for _, p := range parts {
			a, b := bisect(g, p, opt, rng)
			next = append(next, a, b)
		}
		parts = next
	}
	return parts, nil
}

// BorderCount returns the number of border nodes induced by a partition of
// edge sets: nodes incident to edges of two or more different parts.
func BorderCount(g *graph.Graph, parts [][]graph.EdgeID) int {
	side := make(map[graph.NodeID]int)
	borders := make(map[graph.NodeID]bool)
	for i, part := range parts {
		for _, e := range part {
			ed := g.Edge(e)
			for _, n := range [2]graph.NodeID{ed.U, ed.V} {
				if s, ok := side[n]; ok {
					if s != i {
						borders[n] = true
					}
				} else {
					side[n] = i
				}
			}
		}
	}
	return len(borders)
}

// bisect splits one edge list into two near-equal halves, geometrically
// first then KL-refined.
func bisect(g *graph.Graph, edges []graph.EdgeID, opt Options, rng *rand.Rand) ([]graph.EdgeID, []graph.EdgeID) {
	if len(edges) < 2 {
		return edges, nil
	}
	// Geometric step: order edge midpoints along the axis of larger spread
	// and cut at the median, giving equal edge counts [8].
	type mid struct {
		e    graph.EdgeID
		x, y float64
	}
	mids := make([]mid, len(edges))
	minX, maxX := 1e300, -1e300
	minY, maxY := 1e300, -1e300
	for i, e := range edges {
		ed := g.Edge(e)
		pu, pv := g.Coord(ed.U), g.Coord(ed.V)
		m := mid{e: e, x: (pu.X + pv.X) / 2, y: (pu.Y + pv.Y) / 2}
		mids[i] = m
		minX, maxX = minf(minX, m.x), maxf(maxX, m.x)
		minY, maxY = minf(minY, m.y), maxf(maxY, m.y)
	}
	byX := maxX-minX >= maxY-minY
	sort.Slice(mids, func(i, j int) bool {
		if byX {
			if mids[i].x != mids[j].x {
				return mids[i].x < mids[j].x
			}
		} else {
			if mids[i].y != mids[j].y {
				return mids[i].y < mids[j].y
			}
		}
		return mids[i].e < mids[j].e
	})
	// Cut at the median edge — or, with weights, at the half-weight point
	// (keeping at least one edge per side).
	half := len(mids) / 2
	if opt.Weight != nil {
		var total float64
		for _, m := range mids {
			total += opt.Weight(m.e)
		}
		var acc float64
		half = len(mids) - 1
		for i, m := range mids {
			acc += opt.Weight(m.e)
			if acc >= total/2 {
				half = i + 1
				break
			}
		}
		if half < 1 {
			half = 1
		}
		if half >= len(mids) {
			half = len(mids) - 1
		}
	}
	side := make([]bool, len(mids)) // false = A (first half), true = B
	for i := half; i < len(mids); i++ {
		side[i] = true
	}
	localEdges := make([]graph.EdgeID, len(mids))
	for i, m := range mids {
		localEdges[i] = m.e
	}

	if opt.KLPasses > 0 {
		refine(g, localEdges, side, opt, rng)
	}

	var a, b []graph.EdgeID
	for i, e := range localEdges {
		if side[i] {
			b = append(b, e)
		} else {
			a = append(a, e)
		}
	}
	return a, b
}

// refine runs KL-style passes moving single edges across the cut whenever
// the move reduces the border-node count and balance permits.
func refine(g *graph.Graph, edges []graph.EdgeID, side []bool, opt Options, rng *rand.Rand) {
	// cnt[n] = incident edge counts on side A and B within this subproblem.
	cnt := make(map[graph.NodeID]*[2]int, len(edges))
	weight := func(e graph.EdgeID) float64 {
		if opt.Weight != nil {
			return opt.Weight(e)
		}
		return 1
	}
	sizes := [2]float64{}
	var totalWeight float64
	for i, e := range edges {
		ed := g.Edge(e)
		s := boolToInt(side[i])
		sizes[s] += weight(e)
		totalWeight += weight(e)
		for _, n := range [2]graph.NodeID{ed.U, ed.V} {
			c := cnt[n]
			if c == nil {
				c = new([2]int)
				cnt[n] = c
			}
			c[s]++
		}
	}
	minSize := totalWeight * (0.5 - opt.Balance)
	if minSize <= 0 {
		minSize = 0
	}

	isBorder := func(c *[2]int) bool { return c[0] > 0 && c[1] > 0 }

	// gain of moving edge at index i to the opposite side: reduction in
	// border nodes among its two endpoints.
	gain := func(i int) int {
		ed := g.Edge(edges[i])
		from := boolToInt(side[i])
		to := 1 - from
		gn := 0
		for _, n := range [2]graph.NodeID{ed.U, ed.V} {
			c := cnt[n]
			before := isBorder(c)
			var after bool
			if ed.U == ed.V { // cannot occur (no self-loops) but stay safe
				after = before
			} else {
				cc := *c
				cc[from]--
				cc[to]++
				after = isBorder(&cc)
			}
			if before && !after {
				gn++
			} else if !before && after {
				gn--
			}
		}
		return gn
	}

	apply := func(i int) {
		ed := g.Edge(edges[i])
		from := boolToInt(side[i])
		to := 1 - from
		for _, n := range [2]graph.NodeID{ed.U, ed.V} {
			c := cnt[n]
			c[from]--
			c[to]++
		}
		w := weight(edges[i])
		sizes[from] -= w
		sizes[to] += w
		side[i] = !side[i]
	}

	order := rng.Perm(len(edges))
	for pass := 0; pass < opt.KLPasses; pass++ {
		moved := 0
		for _, i := range order {
			from := boolToInt(side[i])
			if sizes[from]-weight(edges[i]) < minSize {
				continue
			}
			if gain(i) > 0 {
				apply(i)
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
