package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"road/internal/apierr"
	"road/internal/graph"
	"road/internal/rnet"
	"road/internal/storage"
)

// Config tunes framework construction.
type Config struct {
	// Rnet configures the hierarchy (fanout p, levels l, partitioning,
	// pruning). Zero value selects rnet.DefaultConfig for the network size.
	Rnet rnet.Config
	// Abstract selects the object-abstract representation.
	Abstract AbstractKind
	// BufferPages sizes the simulated LRU buffer
	// (storage.DefaultBufferPages when 0); negative disables simulation.
	BufferPages int
	// ObjectAwarePartitioning biases Rnet partitioning by the objects
	// present at build time: edges carrying objects weigh more, so
	// object-dense areas get finer Rnets (the paper's future-work
	// object-based partitioning). Ignored if Rnet.EdgeWeight is set.
	ObjectAwarePartitioning bool
}

// Framework is a built ROAD instance: one road network organized as an
// Rnet hierarchy behind a Route Overlay, plus one Association Directory
// mapping an object set onto it. Further Association Directories for other
// object sets can be attached to the same overlay with AttachObjects —
// the separation of network from objects the paper's architecture is
// designed around.
type Framework struct {
	g       *graph.Graph
	h       *rnet.Hierarchy
	objects *graph.ObjectSet
	ro      *RouteOverlay
	ad      *AssocDir
	store   *storage.Store
	csr     *csrBox
	qws     *queryWorkspace
	prewarm prewarmOnce
	epoch   atomic.Uint64

	// BuildTime records how long construction took (the paper's index
	// construction time metric).
	BuildTime time.Duration
}

// Build constructs the ROAD framework over g and objects.
func Build(g *graph.Graph, objects *graph.ObjectSet, cfg Config) (*Framework, error) {
	start := time.Now()
	rcfg := cfg.Rnet
	if rcfg.Fanout == 0 && rcfg.Levels == 0 {
		defaults := rnet.DefaultConfig(g.NumNodes())
		defaults.StorePaths = rcfg.StorePaths
		defaults.Seed = rcfg.Seed
		defaults.EdgeWeight = rcfg.EdgeWeight
		rcfg = defaults
	}
	if cfg.ObjectAwarePartitioning && rcfg.EdgeWeight == nil {
		rcfg.EdgeWeight = func(e graph.EdgeID) float64 {
			return 1 + 4*float64(len(objects.OnEdge(e)))
		}
	}
	h, err := rnet.Build(g, rcfg)
	if err != nil {
		return nil, fmt.Errorf("core: building hierarchy: %w", err)
	}
	var store *storage.Store
	if cfg.BufferPages >= 0 {
		store = storage.NewStore(cfg.BufferPages)
	}
	f := &Framework{
		g:       g,
		h:       h,
		objects: objects,
		store:   store,
		csr:     &csrBox{},
	}
	f.ro = NewRouteOverlay(h, store)
	f.ad = NewAssocDir(h, objects, cfg.Abstract, store)
	f.BuildTime = time.Since(start)
	return f, nil
}

// Graph returns the underlying network.
func (f *Framework) Graph() *graph.Graph { return f.g }

// Hierarchy returns the Rnet hierarchy.
func (f *Framework) Hierarchy() *rnet.Hierarchy { return f.h }

// Objects returns the mapped object set.
func (f *Framework) Objects() *graph.ObjectSet { return f.objects }

// Directory returns the Association Directory.
func (f *Framework) Directory() *AssocDir { return f.ad }

// Overlay returns the Route Overlay.
func (f *Framework) Overlay() *RouteOverlay { return f.ro }

// Store returns the simulated page store (nil when disabled).
func (f *Framework) Store() *storage.Store { return f.store }

// Rebind returns a framework sharing f's network, hierarchy, overlay and
// page store, but serving a different object set through a fresh
// Association Directory — the network/object separation at work.
func Rebind(f *Framework, objects *graph.ObjectSet, kind AbstractKind) *Framework {
	return &Framework{
		g:         f.g,
		h:         f.h,
		objects:   objects,
		ro:        f.ro,
		ad:        NewAssocDir(f.h, objects, kind, f.store),
		store:     f.store,
		csr:       f.csr, // same overlay, same flat slabs
		BuildTime: f.BuildTime,
	}
}

// AttachObjects builds an additional Association Directory for another
// object set over the same Route Overlay (multiple content providers on
// one map, §3.4). The returned directory can be passed to KNNOn/RangeOn.
func (f *Framework) AttachObjects(objects *graph.ObjectSet, kind AbstractKind) *AssocDir {
	return NewAssocDir(f.h, objects, kind, f.store)
}

// IndexSizeBytes estimates total index storage: Route Overlay plus
// Association Directory (the paper's index size metric).
func (f *Framework) IndexSizeBytes() int64 {
	return f.ro.SizeBytes() + f.ad.SizeBytes()
}

// DropCache empties the simulated buffer — the evaluation starts every
// query with a cold cache.
func (f *Framework) DropCache() {
	if f.store != nil {
		f.store.DropCache()
	}
}

// Epoch returns the framework's maintenance epoch: a counter incremented
// by every successful mutation (object churn, edge weight changes, road
// closures). Readers that cached derived results — query answers, plans —
// can compare epochs to detect staleness. The counter itself is safe to
// read concurrently; coordinating queries against the mutations it counts
// is the caller's job (see Session and road's serving layer).
func (f *Framework) Epoch() uint64 { return f.epoch.Load() }

// bumpEpoch marks a completed mutation.
func (f *Framework) bumpEpoch() { f.epoch.Add(1) }

// WarmTrees materializes every node's shortcut tree and refreshes the CSR
// hot-path index from them. Maintenance operations invalidate the trees of
// affected nodes (and bump the hierarchy's topology generation, staling
// the CSR slabs); an invalidated tree is otherwise rebuilt lazily on first
// access — a hidden write that would race with concurrent session queries.
// A serving layer that interleaves maintenance with concurrent sessions
// must call WarmTrees after each mutation, while still excluding readers,
// so the read path never mutates shared state. Warm trees are skipped with
// a pointer check and a current CSR index with a generation compare, so
// the call is cheap when nothing was invalidated.
func (f *Framework) WarmTrees() {
	for n := 0; n < f.g.NumNodes(); n++ {
		f.h.Tree(graph.NodeID(n))
	}
	f.ensureCSR()
}

// --- Object maintenance (§5.1) ---

// InsertObject places a new object on edge e at offset du from the edge's
// U endpoint and registers it in the Association Directory.
func (f *Framework) InsertObject(e graph.EdgeID, du float64, attr int32) (graph.Object, error) {
	o, err := f.objects.Add(e, du, attr)
	if err != nil {
		return graph.Object{}, err
	}
	f.ad.Insert(o)
	f.bumpEpoch()
	return o, nil
}

// DeleteObject removes an object from the set and the directory.
func (f *Framework) DeleteObject(id graph.ObjectID) error {
	o, ok := f.objects.Get(id)
	if !ok {
		return fmt.Errorf("core: object %d: %w", id, apierr.ErrNoSuchObject)
	}
	f.ad.Remove(o)
	f.objects.Remove(id)
	f.bumpEpoch()
	return nil
}

// UpdateObjectAttr changes an object's attribute category.
func (f *Framework) UpdateObjectAttr(id graph.ObjectID, attr int32) error {
	o, ok := f.objects.Get(id)
	if !ok {
		return fmt.Errorf("core: object %d: %w", id, apierr.ErrNoSuchObject)
	}
	f.ad.UpdateAttr(o, attr)
	f.objects.SetAttr(id, attr)
	f.bumpEpoch()
	return nil
}

// --- Network maintenance (§5.2) ---

// SetEdgeWeight changes a road segment's distance and repairs shortcuts
// incrementally (filter-and-refresh). Objects on the edge keep their
// relative positions: offsets are rescaled proportionally and their
// directory entries refreshed.
func (f *Framework) SetEdgeWeight(e graph.EdgeID, w float64) (rnet.UpdateResult, error) {
	onEdge := f.objects.OnEdge(e)
	var detached []graph.Object
	for _, id := range onEdge {
		if o, ok := f.objects.Get(id); ok {
			f.ad.Remove(o)
			detached = append(detached, o)
		}
	}
	res, err := f.h.SetEdgeWeight(e, w)
	if err != nil {
		// Reattach with unchanged geometry.
		for _, o := range detached {
			f.ad.Insert(o)
		}
		return res, err
	}
	// Bump before reattaching: the hierarchy is already mutated, so even
	// the partial-failure return below must invalidate cached answers.
	f.bumpEpoch()
	for _, o := range detached {
		factor := 1.0
		if oldW := o.DU + o.DV; oldW > 0 {
			factor = w / oldW
		}
		if err := f.objects.Relocate(o.ID, e, o.DU*factor); err != nil {
			return res, fmt.Errorf("core: rescaling object %d: %w", o.ID, err)
		}
		scaled, _ := f.objects.Get(o.ID)
		f.ad.Insert(scaled)
	}
	return res, nil
}

// AddEdge inserts a new road segment between existing nodes and repairs
// the hierarchy (border promotion, new shortcuts).
func (f *Framework) AddEdge(u, v graph.NodeID, w float64) (graph.EdgeID, rnet.UpdateResult, error) {
	e, res, err := f.h.AddEdge(u, v, w)
	if err == nil {
		f.bumpEpoch()
	}
	return e, res, err
}

// DeleteEdge removes a road segment. Objects residing on it are deleted
// (their road no longer exists).
func (f *Framework) DeleteEdge(e graph.EdgeID) (rnet.UpdateResult, error) {
	for _, id := range f.objects.OnEdge(e) {
		if o, ok := f.objects.Get(id); ok {
			f.ad.Remove(o)
			f.objects.Remove(id)
		}
	}
	res, err := f.h.DeleteEdge(e)
	if err == nil {
		f.bumpEpoch()
	}
	return res, err
}

// RestoreEdge re-attaches a previously deleted edge.
func (f *Framework) RestoreEdge(e graph.EdgeID) (rnet.UpdateResult, error) {
	res, err := f.h.RestoreEdge(e)
	if err == nil {
		f.bumpEpoch()
	}
	return res, err
}
