package core

import (
	"fmt"
	"math"

	"road/internal/apierr"
	"road/internal/graph"
	"road/internal/pqueue"
	"road/internal/rnet"
)

// parentLink records how a node was best reached: over a physical edge or
// across an Rnet via one of the previous node's shortcuts.
type parentLink struct {
	prev graph.NodeID
	edge graph.EdgeID // NoEdge when the hop was a shortcut
	rnet rnet.RnetID  // the bypassed Rnet (shortcut hops)
	dist float64
}

// PathTo computes the detailed shortest path from q.Node to the given
// object using the ROAD search with parent tracking: the returned node
// sequence walks physical intersections all the way (shortcut hops are
// expanded recursively through the hierarchy per Lemma 2's representation),
// ending at the endpoint of the object's edge through which the object is
// reached; the returned distance includes the final offset along that
// edge. The framework must have been built with Rnet.StorePaths.
func (f *Framework) PathTo(q Query, target graph.ObjectID) ([]graph.NodeID, float64, error) {
	path, dist, _, err := f.pathTo(q, target, true, Limits{})
	return path, dist, err
}

// PathToLimited is PathTo under Limits, reporting traversal statistics.
func (f *Framework) PathToLimited(q Query, target graph.ObjectID, lim Limits) ([]graph.NodeID, float64, QueryStats, error) {
	return f.pathTo(q, target, true, lim)
}

// pathTo is the shared path computation. chargeIO routes shortcut-tree
// visits and abstract probes through the simulated page store; Sessions
// pass false so concurrent path queries never touch shared buffer state.
func (f *Framework) pathTo(q Query, target graph.ObjectID, chargeIO bool, lim Limits) ([]graph.NodeID, float64, QueryStats, error) {
	stats := QueryStats{ShardsSearched: 1}
	if !f.h.Config().StorePaths {
		return nil, 0, stats, fmt.Errorf("core: framework built without StorePaths: %w", apierr.ErrPathsNotStored)
	}
	o, ok := f.objects.Get(target)
	if !ok {
		return nil, 0, stats, fmt.Errorf("core: object %d: %w", target, apierr.ErrNoSuchObject)
	}
	if q.Attr != 0 && o.Attr != q.Attr {
		return nil, 0, stats, fmt.Errorf("core: object %d does not match attribute %d: %w", target, q.Attr, apierr.ErrAttrMismatch)
	}

	links := make(map[graph.NodeID]parentLink)
	visited := make(map[graph.NodeID]bool)
	var pq pqueue.Queue
	pq.Push(q.Node, 0.0)
	links[q.Node] = parentLink{prev: graph.NoNode, edge: graph.NoEdge}

	e := f.g.Edge(o.Edge)
	// The search runs directed at the object's two endpoint nodes; the
	// Rnet bypass decisions use the object's own attribute so regions
	// containing only the target stay explorable.
	bestEnd := graph.NoNode
	bestDist := math.Inf(1)
	verdicts := make(map[rnet.RnetID]bool)

	relax := func(n graph.NodeID, nd float64, link parentLink) {
		if cur, ok := links[n]; ok && cur.prev != graph.NoNode && cur.dist <= nd {
			return
		}
		if n != q.Node {
			links[n] = link
		}
		pq.Push(n, nd)
	}

	for pq.Len() > 0 {
		item, _ := pq.Pop()
		n := item.Value.(graph.NodeID)
		d := item.Priority
		if d >= bestDist {
			break // cannot improve the object's distance any further
		}
		if visited[n] {
			continue
		}
		visited[n] = true
		stats.NodesPopped++
		if err := lim.Stop(stats.NodesPopped); err != nil {
			stats.Truncated = true
			return nil, 0, stats, err
		}

		if n == e.U && d+o.DU < bestDist {
			bestDist = d + o.DU
			bestEnd = n
		}
		if n == e.V && d+o.DV < bestDist {
			bestDist = d + o.DV
			bestEnd = n
		}

		mayContain := func(r rnet.RnetID) bool {
			v, ok := verdicts[r]
			if !ok {
				// A bypass is only safe if neither the target's region nor
				// a matching object lies inside.
				v = f.ad.rnetMayContain(r, q.Attr, chargeIO) || f.rnetContainsEdge(r, o.Edge)
				verdicts[r] = v
			}
			return v
		}
		tree := f.h.Tree(n)
		if chargeIO {
			tree = f.ro.Visit(n)
		}
		for _, s := range treeStack(tree) {
			if s.IsBorder && !mayContain(s.Rnet) {
				stats.RnetsBypassed++
				for _, sc := range f.h.ShortcutsFrom(s.Rnet, n) {
					relax(sc.To, d+sc.Dist, parentLink{prev: n, edge: graph.NoEdge, rnet: s.Rnet, dist: d + sc.Dist})
				}
				continue
			}
			for _, half := range s.Edges {
				relax(half.To, d+f.g.Weight(half.Edge), parentLink{prev: n, edge: half.Edge, dist: d + f.g.Weight(half.Edge)})
			}
		}
	}
	if bestEnd == graph.NoNode {
		return nil, math.Inf(1), stats, fmt.Errorf("core: object %d unreachable from node %d: %w", target, q.Node, apierr.ErrUnreachable)
	}

	// Walk the links back to the source, expanding shortcut hops.
	var rev []graph.NodeID
	cur := bestEnd
	for cur != q.Node {
		link, ok := links[cur]
		if !ok || link.prev == graph.NoNode {
			return nil, 0, stats, fmt.Errorf("core: broken parent chain at node %d", cur)
		}
		if link.edge != graph.NoEdge {
			rev = append(rev, cur)
		} else {
			leg, err := f.expandHop(link.rnet, link.prev, cur)
			if err != nil {
				return nil, 0, stats, err
			}
			// leg runs prev..cur; append in reverse, excluding prev.
			for i := len(leg) - 1; i >= 1; i-- {
				rev = append(rev, leg[i])
			}
		}
		cur = link.prev
	}
	rev = append(rev, q.Node)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, bestDist, stats, nil
}

// expandHop expands the shortcut from a to b across Rnet r into its full
// node sequence.
func (f *Framework) expandHop(r rnet.RnetID, a, b graph.NodeID) ([]graph.NodeID, error) {
	for _, sc := range f.h.ShortcutsFrom(r, a) {
		if sc.To == b {
			return f.h.ExpandShortcut(r, sc)
		}
	}
	return nil, fmt.Errorf("core: no shortcut %d->%d in Rnet %d", a, b, r)
}

// rnetContainsEdge reports whether edge e lies inside Rnet r.
func (f *Framework) rnetContainsEdge(r rnet.RnetID, e graph.EdgeID) bool {
	leaf := f.h.LeafOf(e)
	if leaf == rnet.NoRnet {
		return false
	}
	return f.h.AncestorAt(leaf, f.h.Rnet(r).Level) == r
}

// treeStack flattens the shortcut-tree entries of one node into the
// processing order choosePath uses, resolving descent decisions lazily is
// unnecessary here because the caller filters per entry.
func treeStack(tops []*rnet.TreeNode) []*rnet.TreeNode {
	var out []*rnet.TreeNode
	var stack []*rnet.TreeNode
	stack = append(stack, tops...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, s)
		if len(s.Children) > 0 {
			stack = append(stack, s.Children...)
		}
	}
	return out
}
